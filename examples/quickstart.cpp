// Quickstart: broadcast one message across the simulated SCC with
// OC-Bcast and verify every core received it.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// The walk-through below is the minimal end-to-end use of the library:
// assemble a chip, create an algorithm, seed the root's private memory,
// spawn one coroutine per core, run the event loop, inspect results.
#include <cstdio>
#include <cstring>

#include "core/ocbcast.h"
#include "sim/condition.h"

using namespace ocb;

int main() {
  // 1. A simulated SCC with the paper's default timing (Table 1).
  scc::SccChip chip;

  // 2. OC-Bcast with the paper's preferred fan-out k = 7 and 96-line
  //    double-buffered chunks.
  core::OcBcastOptions options;
  options.k = 7;
  core::OcBcast bcast(chip, options);

  // 3. Seed the root's private off-chip memory with a message.
  //    (host_bytes is zero-simulated-cost setup access.)
  const char message[] =
      "OC-Bcast: pipelined k-ary tree broadcast over on-chip RMA (SPAA'12)";
  const std::size_t bytes = sizeof message;
  const CoreId root = 0;
  auto seed = chip.memory(root).host_bytes(0, bytes);
  std::memcpy(seed.data(), message, bytes);

  // 4. Every core calls the collective with matching arguments.
  sim::Time finish[kNumCores] = {};
  for (CoreId c = 0; c < kNumCores; ++c) {
    chip.spawn(c, [&bcast, &finish, root, bytes](scc::Core& me) -> sim::Task<void> {
      co_await bcast.run(me, root, /*offset=*/0, bytes);
      finish[me.id()] = me.now();
    });
  }

  // 5. Run the discrete-event simulation to completion.
  const sim::RunResult run = chip.run();
  if (!run.completed()) {
    std::fprintf(stderr, "broadcast deadlocked!\n");
    return 1;
  }

  // 6. Inspect: delivered bytes and the latency profile.
  int delivered = 0;
  for (CoreId c = 0; c < kNumCores; ++c) {
    const auto got = chip.memory(c).host_bytes(0, bytes);
    if (std::memcmp(got.data(), message, bytes) == 0) ++delivered;
  }
  sim::Time last = 0;
  for (sim::Time t : finish) last = std::max(last, t);

  std::printf("message: \"%s\"\n", message);
  std::printf("delivered intact on %d/%d cores\n", delivered, kNumCores);
  std::printf("broadcast latency (last core return): %.2f us\n", sim::to_us(last));
  std::printf("root returned at %.2f us; simulated %llu events\n",
              sim::to_us(finish[root]),
              static_cast<unsigned long long>(run.events_processed));
  return delivered == kNumCores ? 0 : 1;
}
