// SPMD k-means on the simulated SCC — a realistic "application" built on
// the library's public API, the way the paper's introduction motivates
// fast broadcast: every round the root broadcasts the current centroids to
// all 48 cores with OC-Bcast, each core assigns its private points and
// computes partial sums (charged as compute time), and partial results
// flow back through the two-sided layer for the root to combine.
//
// All communication is simulated byte-accurately: the centroids each
// worker uses really did travel through MPBs, and the partial sums really
// were sent back — a wrong protocol would produce wrong clusters, not just
// wrong timings.
#include <cstdio>
#include <cstring>
#include <vector>

#include "common/format.h"
#include "common/rng.h"
#include "core/ocbcast.h"
#include "rma/twosided.h"
#include "sim/condition.h"

using namespace ocb;

namespace {

constexpr int kClusters = 4;
constexpr int kDims = 8;
constexpr int kPointsPerCore = 256;
constexpr int kRounds = 6;

// Private-memory layout per core (line-aligned regions).
constexpr std::size_t kCentroidBytes = kClusters * kDims * sizeof(double);
constexpr std::size_t kPartialBytes =
    kClusters * kDims * sizeof(double) + kClusters * sizeof(double);
constexpr std::size_t kCentroidOffset = 0;
constexpr std::size_t kPartialOffset = 4096;
// Root-side inbox: one partial slot per worker.
constexpr std::size_t kInboxOffset = 8192;
constexpr std::size_t kInboxStride = 1024;

struct AppState {
  std::vector<std::array<double, kDims>> points[kNumCores];
  double compute_us[kNumCores] = {};
  double bcast_us[kNumCores] = {};
  double reduce_us[kNumCores] = {};
};

void generate_points(AppState& app, std::uint64_t seed) {
  // Four well-separated blobs; each core gets a private sample of all.
  const double centers[kClusters][2] = {{0, 0}, {10, 0}, {0, 10}, {10, 10}};
  for (CoreId c = 0; c < kNumCores; ++c) {
    Xoshiro256 rng(seed + static_cast<std::uint64_t>(c));
    app.points[c].resize(kPointsPerCore);
    for (auto& p : app.points[c]) {
      const auto blob = static_cast<std::size_t>(rng.next_below(kClusters));
      for (int d = 0; d < kDims; ++d) {
        const double base = d < 2 ? centers[blob][d] : 0.0;
        p[static_cast<std::size_t>(d)] = base + (rng.next_double() - 0.5);
      }
    }
  }
}

// Assigns points to the given centroids and fills partial sums/counts.
// Returns the number of floating-point distance terms (to charge compute).
std::size_t compute_partials(const std::vector<std::array<double, kDims>>& pts,
                             const double* centroids, double* sums,
                             double* counts) {
  std::memset(sums, 0, kClusters * kDims * sizeof(double));
  std::memset(counts, 0, kClusters * sizeof(double));
  for (const auto& p : pts) {
    int best = 0;
    double best_d = 1e300;
    for (int k = 0; k < kClusters; ++k) {
      double dist = 0;
      for (int d = 0; d < kDims; ++d) {
        const double delta = p[static_cast<std::size_t>(d)] - centroids[k * kDims + d];
        dist += delta * delta;
      }
      if (dist < best_d) {
        best_d = dist;
        best = k;
      }
    }
    for (int d = 0; d < kDims; ++d) {
      sums[best * kDims + d] += p[static_cast<std::size_t>(d)];
    }
    counts[best] += 1.0;
  }
  return pts.size() * kClusters * kDims;
}

sim::Task<void> core_program(scc::Core& me, core::OcBcast& bcast,
                             rma::TwoSided& twosided, sim::Rendezvous& sync,
                             AppState& app) {
  const CoreId root = 0;
  for (int round = 0; round < kRounds; ++round) {
    co_await sync.arrive();
    // 1. Centroid broadcast (root's buffer was updated last round).
    sim::Time t0 = me.now();
    co_await bcast.run(me, root, kCentroidOffset, kCentroidBytes);
    app.bcast_us[me.id()] += sim::to_us(me.now() - t0);

    // 2. Local assignment + partial sums; ~1.2 ns per FLOP-ish term on the
    //    P54C is charged as busy time.
    t0 = me.now();
    const auto centroid_bytes =
        me.chip().memory(me.id()).host_bytes(kCentroidOffset, kCentroidBytes);
    double centroids[kClusters * kDims];
    std::memcpy(centroids, centroid_bytes.data(), kCentroidBytes);
    auto partial =
        me.chip().memory(me.id()).host_bytes(kPartialOffset, kPartialBytes);
    double sums[kClusters * kDims];
    double counts[kClusters];
    const std::size_t terms =
        compute_partials(app.points[me.id()], centroids, sums, counts);
    std::memcpy(partial.data(), sums, sizeof sums);
    std::memcpy(partial.data() + sizeof sums, counts, sizeof counts);
    co_await me.busy(static_cast<sim::Duration>(terms) * 1200);
    app.compute_us[me.id()] += sim::to_us(me.now() - t0);

    // 3. Reduction: workers send partials to the root; the root combines
    //    and writes the new centroids into its broadcast buffer.
    t0 = me.now();
    if (me.id() != root) {
      co_await twosided.send(me, root, kPartialOffset, kPartialBytes);
    } else {
      double total_sums[kClusters * kDims];
      double total_counts[kClusters];
      std::memcpy(total_sums, sums, sizeof sums);
      std::memcpy(total_counts, counts, sizeof counts);
      for (CoreId w = 1; w < kNumCores; ++w) {
        const std::size_t slot =
            kInboxOffset + static_cast<std::size_t>(w) * kInboxStride;
        co_await twosided.recv(me, w, slot, kPartialBytes);
        const auto in = me.chip().memory(root).host_bytes(slot, kPartialBytes);
        double wsums[kClusters * kDims];
        double wcounts[kClusters];
        std::memcpy(wsums, in.data(), sizeof wsums);
        std::memcpy(wcounts, in.data() + sizeof wsums, sizeof wcounts);
        for (int i = 0; i < kClusters * kDims; ++i) total_sums[i] += wsums[i];
        for (int k = 0; k < kClusters; ++k) total_counts[k] += wcounts[k];
      }
      double next[kClusters * kDims];
      for (int k = 0; k < kClusters; ++k) {
        for (int d = 0; d < kDims; ++d) {
          next[k * kDims + d] =
              total_counts[k] > 0 ? total_sums[k * kDims + d] / total_counts[k] : 0;
        }
      }
      auto out = me.chip().memory(root).host_bytes(kCentroidOffset, kCentroidBytes);
      std::memcpy(out.data(), next, sizeof next);
      std::printf("round %d: centroid[0] = (%.2f, %.2f), centroid[3] = (%.2f, %.2f)\n",
                  round, next[0], next[1], next[3 * kDims], next[3 * kDims + 1]);
    }
    app.reduce_us[me.id()] += sim::to_us(me.now() - t0);
  }
}

}  // namespace

int main() {
  scc::SccChip chip;
  core::OcBcastOptions oc;
  oc.mpb_base_line = 0;  // OC-Bcast owns lines 0..199 (k=7)
  core::OcBcast bcast(chip, oc);
  rma::TwoSidedLayout ts_layout;
  ts_layout.ready_line = 200;  // keep clear of the OC-Bcast layout
  ts_layout.sent_line = 201;
  ts_layout.payload_line = 202;
  ts_layout.payload_lines = 54;
  rma::TwoSided twosided(chip, ts_layout);
  sim::Rendezvous sync(chip.engine(), kNumCores);

  AppState app;
  generate_points(app, 0xbeef);

  // Initial centroids: a deliberately bad guess (all near the origin).
  {
    double init[kClusters * kDims] = {};
    for (int k = 0; k < kClusters; ++k) {
      // One rough guess per quadrant so no blob starts orphaned.
      init[k * kDims] = (k % 2) * 8 + 1;
      init[k * kDims + 1] = (k / 2) * 8 + 1;
    }
    auto out = chip.memory(0).host_bytes(kCentroidOffset, kCentroidBytes);
    std::memcpy(out.data(), init, sizeof init);
  }

  for (CoreId c = 0; c < kNumCores; ++c) {
    chip.spawn(c, [&](scc::Core& me) -> sim::Task<void> {
      co_await core_program(me, bcast, twosided, sync, app);
    });
  }
  const sim::RunResult run = chip.run();
  if (!run.completed()) {
    std::fprintf(stderr, "SPMD program deadlocked\n");
    return 1;
  }

  double bcast_us = 0, compute_us = 0, reduce_us = 0;
  for (CoreId c = 0; c < kNumCores; ++c) {
    bcast_us += app.bcast_us[c];
    compute_us += app.compute_us[c];
    reduce_us += app.reduce_us[c];
  }
  std::printf("\n%d rounds of 48-core k-means on %d points "
              "(%d clusters, %d dims)\n",
              kRounds, kNumCores * kPointsPerCore, kClusters, kDims);
  std::printf("total simulated time: %.2f ms over %llu events\n",
              sim::to_seconds(run.end_time) * 1e3,
              static_cast<unsigned long long>(run.events_processed));
  std::printf("per-core-average time split per round: broadcast %.1f us, "
              "compute %.1f us, reduce %.1f us\n",
              bcast_us / kNumCores / kRounds, compute_us / kNumCores / kRounds,
              reduce_us / kNumCores / kRounds);
  std::printf("expected centroids near (0,0), (10,0), (0,10), (10,10)\n");
  return 0;
}
