// Compares the three broadcast algorithms (OC-Bcast, binomial tree,
// scatter-allgather) across message sizes, reproducing the paper's
// qualitative story in one run: OC-Bcast wins everywhere; binomial is the
// better baseline for small messages, scatter-allgather for large ones.
#include <cstdio>

#include "common/format.h"
#include "harness/measurement.h"
#include "harness/sweep.h"

using namespace ocb;

int main() {
  const std::vector<std::size_t> sizes{1, 8, 32, 96, 192, 1024, 8192};

  // Registry-keyed selection (coll/registry.h): the example no longer knows
  // any concrete algorithm class.
  const std::vector<std::string> algos{"ocbcast", "binomial",
                                       "scatter-allgather"};

  TextTable latency({"lines", "bytes", "oc-bcast_us", "binomial_us", "s-ag_us",
                     "best_baseline"});
  TextTable throughput({"lines", "oc-bcast_MBps", "binomial_MBps", "s-ag_MBps",
                        "oc/best_baseline"});

  for (std::size_t lines : sizes) {
    double lat[3] = {};
    double tput[3] = {};
    bool ok = true;
    for (std::size_t a = 0; a < algos.size(); ++a) {
      harness::BcastRunSpec spec;
      spec.algorithm_name = algos[a];
      spec.message_bytes = lines * kCacheLineBytes;
      spec.iterations = harness::default_iterations(lines);
      const harness::BcastRunResult r = run_broadcast(spec);
      lat[a] = r.latency_us.mean();
      tput[a] = r.throughput_mbps;
      ok = ok && r.content_ok;
    }
    if (!ok) {
      std::fprintf(stderr, "content verification failed at %zu lines\n", lines);
      return 1;
    }
    const bool binomial_better = lat[1] < lat[2];
    latency.add_row({std::to_string(lines), std::to_string(lines * kCacheLineBytes),
                     fmt_fixed(lat[0], 2), fmt_fixed(lat[1], 2), fmt_fixed(lat[2], 2),
                     binomial_better ? "binomial" : "s-ag"});
    const double best_baseline = std::max(tput[1], tput[2]);
    throughput.add_row({std::to_string(lines), fmt_fixed(tput[0], 2),
                        fmt_fixed(tput[1], 2), fmt_fixed(tput[2], 2),
                        fmt_fixed(tput[0] / best_baseline, 2)});
  }

  std::printf("Broadcast latency on the simulated SCC (48 cores, root 0)\n%s\n",
              latency.str().c_str());
  std::printf("Broadcast throughput (message bytes / latency)\n%s\n",
              throughput.str().c_str());
  std::printf("Expected per the paper: binomial beats s-ag for small messages and\n"
              "vice versa for large ones, while OC-Bcast dominates both at every\n"
              "size (~3x the best baseline at 1 MiB).\n");
  return 0;
}
