// Renders a per-core text timeline (a Gantt chart in ASCII) of one small
// OC-Bcast using the chip's trace facility — the notification cascade, the
// parallel MPB gets, and the trailing memory copies become visible.
//
// Legend:  .  idle      o  software overhead / compute
//          R  MPB read  W  MPB write   m  memory read  M  memory write
//          c  cache hit
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/ocbcast.h"
#include "scc/trace.h"
#include "scc/trace_json.h"

using namespace ocb;

int main() {
  scc::SccChip chip;
  scc::JsonTraceCollector trace;
  const scc::TraceSink json_sink = trace.sink();
  std::vector<scc::TraceEvent> events;
  chip.set_trace_sink([&](const scc::TraceEvent& e) {
    events.push_back(e);
    json_sink(e);
  });

  // A 12-core k=3 broadcast of 8 lines keeps the picture readable.
  core::OcBcastOptions opt;
  opt.parties = 12;
  opt.k = 3;
  core::OcBcast bcast(chip, opt);
  const std::size_t bytes = 8 * kCacheLineBytes;
  auto seed = chip.memory(0).host_bytes(0, bytes);
  for (std::size_t i = 0; i < bytes; ++i) seed[i] = static_cast<std::byte>(i);
  for (CoreId c = 0; c < opt.parties; ++c) {
    chip.spawn(c, [&bcast, bytes](scc::Core& me) -> sim::Task<void> {
      co_await bcast.run(me, 0, 0, bytes);
    });
  }
  const sim::RunResult run = chip.run();
  if (!run.completed()) {
    std::fprintf(stderr, "deadlock\n");
    return 1;
  }

  sim::Time horizon = 0;
  for (const auto& e : events) horizon = std::max(horizon, e.end);
  constexpr int kColumns = 110;
  const double scale = static_cast<double>(kColumns) / static_cast<double>(horizon);

  auto glyph = [](scc::TraceOp op) {
    switch (op) {
      case scc::TraceOp::kBusy:
        return 'o';
      case scc::TraceOp::kMpbRead:
        return 'R';
      case scc::TraceOp::kMpbWrite:
        return 'W';
      case scc::TraceOp::kMemRead:
        return 'm';
      case scc::TraceOp::kMemWrite:
        return 'M';
      case scc::TraceOp::kCacheHit:
        return 'c';
    }
    return '?';
  };

  std::vector<std::string> rows(static_cast<std::size_t>(opt.parties),
                                std::string(kColumns, '.'));
  for (const auto& e : events) {
    auto& row = rows[static_cast<std::size_t>(e.core)];
    const int from = static_cast<int>(static_cast<double>(e.start) * scale);
    int to = static_cast<int>(static_cast<double>(e.end) * scale);
    to = std::max(to, from + 1);
    for (int x = from; x < to && x < kColumns; ++x) row[static_cast<std::size_t>(x)] = glyph(e.op);
  }

  std::printf("OC-Bcast (12 cores, k=3, 8 lines) — %llu trace events over %.2f us\n\n",
              static_cast<unsigned long long>(events.size()), sim::to_us(horizon));
  std::printf("      0 us %*s %.2f us\n", kColumns - 12, "", sim::to_us(horizon));
  for (CoreId c = 0; c < opt.parties; ++c) {
    std::printf("core%2d %s\n", c, rows[static_cast<std::size_t>(c)].c_str());
  }
  std::printf("\nlegend: o overhead  R mpb-read  W mpb-write  m mem-read  "
              "M mem-write  c cache-hit  . idle\n");
  std::printf("\nRead it top-down: the root (core 0) stages the chunk (m/W),\n"
              "notification Ws fan out through the binary tree, children R the\n"
              "chunk in parallel, and every core finishes with the M block (copy\n"
              "to private memory) — the paper's critical path, drawn by the\n"
              "simulator itself.\n");

  // The same run, exported for interactive scrubbing.
  const char* json_path = "trace_timeline.trace.json";
  if (trace.write_file(json_path)) {
    std::printf("\nwrote %s — open it at chrome://tracing or "
                "https://ui.perfetto.dev for a zoomable view.\n", json_path);
  } else {
    std::fprintf(stderr, "failed to write %s\n", json_path);
  }
  return 0;
}
