// Explores the simulated SCC's floorplan and communication costs:
//  * the 6x4 tile map with core ids and memory-controller corners,
//  * X-Y routes between chosen cores,
//  * the model's cost surface (read/write completion vs. distance),
//  * per-core memory-controller assignment and distance.
#include <cstdio>

#include "common/format.h"
#include "model/primitives.h"
#include "noc/memctrl.h"
#include "noc/routing.h"

using namespace ocb;

namespace {

void print_floorplan() {
  std::printf("SCC floorplan: 24 tiles (2 cores each), memory controllers at "
              "the marked corners\n\n");
  for (int y = 0; y < kMeshRows; ++y) {
    for (int x = 0; x < kMeshCols; ++x) {
      const int tile = noc::tile_index(noc::TileCoord{x, y});
      const CoreId c0 = noc::first_core_of_tile(tile);
      bool is_mc = false;
      for (const noc::TileCoord& mc : noc::kMcTiles) {
        if (mc.x == x && mc.y == y) is_mc = true;
      }
      std::printf("[%2d,%2d%s]", c0, c0 + 1, is_mc ? "*" : " ");
    }
    std::printf("\n");
  }
  std::printf("\n(* = router with an attached DDR3 memory controller)\n\n");
}

void print_route(CoreId from, CoreId to) {
  const noc::TileCoord src = noc::tile_of_core(from);
  const noc::TileCoord dst = noc::tile_of_core(to);
  std::printf("X-Y route core %d -> core %d: ", from, to);
  for (const noc::TileCoord& t : noc::xy_route(src, dst)) {
    std::printf("(%d,%d) ", t.x, t.y);
  }
  std::printf(" [%d routers]\n", noc::routers_traversed(src, dst));
}

void print_cost_surface() {
  const model::ModelParams p = model::ModelParams::paper();
  TextTable table({"hops", "mpb_read_us", "mpb_write_us", "get96_to_mpb_us",
                   "put96_from_mem_us"});
  for (int d = 1; d <= 9; ++d) {
    table.add_row({std::to_string(d),
                   fmt_us_from_ps(model::mpb_read_completion(p, d)),
                   fmt_us_from_ps(model::mpb_write_completion(p, d)),
                   fmt_us_from_ps(model::get_to_mpb_completion(p, 96, d)),
                   d <= 4 ? fmt_us_from_ps(model::put_from_mem_completion(p, 96, d, 1))
                          : std::string("-")});
  }
  std::printf("Model cost surface (Figure 2 formulas, Table 1 parameters)\n%s\n",
              table.str().c_str());
}

void print_mc_assignment() {
  TextTable table({"core", "tile", "mc_router", "hops_to_mc"});
  for (CoreId c : {0, 5, 11, 17, 22, 24, 30, 40, 47}) {
    const noc::TileCoord t = noc::tile_of_core(c);
    const noc::TileCoord mc = noc::mc_tile_for_core(c);
    table.add_row({std::to_string(c),
                   "(" + std::to_string(t.x) + "," + std::to_string(t.y) + ")",
                   "(" + std::to_string(mc.x) + "," + std::to_string(mc.y) + ")",
                   std::to_string(noc::mem_distance(c))});
  }
  std::printf("Quadrant memory-controller assignment (sample)\n%s\n",
              table.str().c_str());
}

}  // namespace

int main() {
  print_floorplan();
  print_route(0, 47);
  print_route(12, 22);
  print_route(5, 4);
  std::printf("\n");
  print_cost_surface();
  print_mc_assignment();
  std::printf("Note the paper's §3.2 observation: the 9-hop vs 1-hop penalty for a\n"
              "fixed message is only ~30%% — distance matters far less than the\n"
              "per-line overheads, which is why §5.1 models d = 1 everywhere.\n");
  return 0;
}
