// 1D heat-diffusion stencil across all 48 cores — the classic SPMD shape:
// per iteration each core exchanges one-cell halos with its neighbours
// (two-sided send/recv), updates its private segment (charged compute),
// and every few iterations the cores agree on convergence with an
// OC-Allreduce(max) of their local residuals.
//
// The simulation result is byte-compared against a serial host reference
// at the end, so every halo byte and every reduction genuinely travelled
// through the simulated interconnect correctly.
//
// MPB layout: OC-Allreduce owns lines [0, 215) (reduce + bcast + fences);
// the two-sided halo channel sits above it.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "core/ocreduce.h"
#include "rma/twosided.h"
#include "sim/condition.h"

using namespace ocb;

namespace {

constexpr int kCellsPerCore = 8;
constexpr int kTotalCells = kNumCores * kCellsPerCore;
constexpr double kAlpha = 0.25;
constexpr int kCheckEvery = 32;
constexpr int kMaxIters = 160;
constexpr double kEps = 5e-5;

// Private-memory layout per core (all line-aligned).
constexpr std::size_t kSegOffset = 0;  // kCellsPerCore doubles
constexpr std::size_t kHaloLeftOffset = 4096;
constexpr std::size_t kHaloRightOffset = 4128;
constexpr std::size_t kResidualOffset = 8192;   // 1 double (line-aligned)
constexpr std::size_t kResidualOut = 8224;
// Line-aligned staging slots for the boundary cells (RMA ops are
// line-granular, and cell 63's natural offset is not line-aligned).
constexpr std::size_t kSendLeftOffset = 8256;
constexpr std::size_t kSendRightOffset = 8288;

double initial_value(int cell) {
  // A hot spot in the middle of the rod.
  const double x = static_cast<double>(cell) / kTotalCells;
  return std::exp(-80.0 * (x - 0.5) * (x - 0.5));
}

/// Serial reference: the exact same update sequence on the host.
std::vector<double> serial_reference(int iterations) {
  std::vector<double> rod(kTotalCells);
  for (int i = 0; i < kTotalCells; ++i) rod[static_cast<std::size_t>(i)] = initial_value(i);
  std::vector<double> next(rod.size());
  for (int it = 0; it < iterations; ++it) {
    for (int i = 0; i < kTotalCells; ++i) {
      const double left = i > 0 ? rod[static_cast<std::size_t>(i - 1)] : 0.0;
      const double right =
          i + 1 < kTotalCells ? rod[static_cast<std::size_t>(i + 1)] : 0.0;
      next[static_cast<std::size_t>(i)] =
          rod[static_cast<std::size_t>(i)] +
          kAlpha * (left - 2 * rod[static_cast<std::size_t>(i)] + right);
    }
    rod.swap(next);
  }
  return rod;
}

double load_double(scc::SccChip& chip, CoreId c, std::size_t off) {
  double v;
  const auto b = chip.memory(c).host_bytes(off, sizeof v);
  std::memcpy(&v, b.data(), sizeof v);
  return v;
}

void store_double(scc::SccChip& chip, CoreId c, std::size_t off, double v) {
  auto b = chip.memory(c).host_bytes(off, sizeof v);
  std::memcpy(b.data(), &v, sizeof v);
}

sim::Task<void> stencil_program(scc::Core& me, rma::TwoSided& halo,
                                core::OcAllreduce& allreduce, int* iters_done) {
  scc::SccChip& chip = me.chip();
  const CoreId c = me.id();
  const CoreId left = c - 1;
  const CoreId right = c + 1;

  for (int it = 0; it < kMaxIters; ++it) {
    // 1. Halo exchange (boundary cores hold fixed zero boundaries). The
    //    even/odd phase ordering keeps the rendezvous chain acyclic.
    store_double(chip, c, kHaloLeftOffset, 0.0);
    store_double(chip, c, kHaloRightOffset, 0.0);
    store_double(chip, c, kSendLeftOffset, load_double(chip, c, kSegOffset));
    store_double(chip, c, kSendRightOffset,
                 load_double(chip, c,
                             kSegOffset + (kCellsPerCore - 1) * sizeof(double)));
    auto send_left = [&]() -> sim::Task<void> {
      if (c > 0) co_await halo.send(me, left, kSendLeftOffset, sizeof(double));
    };
    auto send_right = [&]() -> sim::Task<void> {
      if (c + 1 < kNumCores) {
        co_await halo.send(me, right, kSendRightOffset, sizeof(double));
      }
    };
    auto recv_left = [&]() -> sim::Task<void> {
      if (c > 0) co_await halo.recv(me, left, kHaloLeftOffset, sizeof(double));
    };
    auto recv_right = [&]() -> sim::Task<void> {
      if (c + 1 < kNumCores) {
        co_await halo.recv(me, right, kHaloRightOffset, sizeof(double));
      }
    };
    if (c % 2 == 0) {
      co_await send_left();
      co_await send_right();
      co_await recv_left();
      co_await recv_right();
    } else {
      co_await recv_right();
      co_await recv_left();
      co_await send_right();
      co_await send_left();
    }

    // 2. Local update (host math, charged as compute).
    double seg[kCellsPerCore];
    {
      const auto b = chip.memory(c).host_bytes(kSegOffset, sizeof seg);
      std::memcpy(seg, b.data(), sizeof seg);
    }
    const double halo_l = load_double(chip, c, kHaloLeftOffset);
    const double halo_r = load_double(chip, c, kHaloRightOffset);
    double next[kCellsPerCore];
    double residual = 0.0;
    for (int i = 0; i < kCellsPerCore; ++i) {
      const double l = i > 0 ? seg[i - 1] : halo_l;
      const double r = i + 1 < kCellsPerCore ? seg[i + 1] : halo_r;
      next[i] = seg[i] + kAlpha * (l - 2 * seg[i] + r);
      residual = std::max(residual, std::abs(next[i] - seg[i]));
    }
    {
      auto b = chip.memory(c).host_bytes(kSegOffset, sizeof next);
      std::memcpy(b.data(), next, sizeof next);
    }
    co_await me.busy(kCellsPerCore * 25 * sim::kNanosecond);

    // 3. Convergence vote every kCheckEvery iterations.
    if ((it + 1) % kCheckEvery == 0) {
      store_double(chip, c, kResidualOffset, residual);
      co_await allreduce.run(me, kResidualOffset, kResidualOut, 1,
                             core::ReduceOp::kMax);
      const double global = load_double(chip, c, kResidualOut);
      if (c == 0) {
        std::printf("iter %3d: global max residual %.3e (t = %.1f us)\n", it + 1,
                    global, sim::to_us(me.now()));
      }
      *iters_done = it + 1;
      if (global < kEps) co_return;
    }
  }
}

}  // namespace

int main() {
  scc::SccChip chip;
  core::OcAllreduce allreduce(chip);
  // Two-sided halo channel stacked above the allreduce layouts
  // (reduce 105 + bcast 110 = lines [0, 215)).
  rma::TwoSidedLayout halo_layout;
  halo_layout.ready_line = 215;
  halo_layout.sent_line = 216;
  halo_layout.payload_line = 217;
  halo_layout.payload_lines = kMpbCacheLines - 217;
  rma::TwoSided halo(chip, halo_layout);

  for (CoreId c = 0; c < kNumCores; ++c) {
    auto b = chip.memory(c).host_bytes(kSegOffset, kCellsPerCore * sizeof(double));
    for (int i = 0; i < kCellsPerCore; ++i) {
      const double v = initial_value(c * kCellsPerCore + i);
      std::memcpy(b.data() + i * sizeof(double), &v, sizeof v);
    }
  }

  int iters_done = 0;
  for (CoreId c = 0; c < kNumCores; ++c) {
    chip.spawn(c, [&](scc::Core& me) -> sim::Task<void> {
      co_await stencil_program(me, halo, allreduce, &iters_done);
    });
  }
  const sim::RunResult run = chip.run();
  if (!run.completed()) {
    std::fprintf(stderr, "stencil deadlocked\n");
    return 1;
  }

  // Verify every cell against the serial reference.
  const std::vector<double> want = serial_reference(iters_done);
  double max_err = 0.0;
  for (CoreId c = 0; c < kNumCores; ++c) {
    const auto b = chip.memory(c).host_bytes(kSegOffset, kCellsPerCore * sizeof(double));
    for (int i = 0; i < kCellsPerCore; ++i) {
      double v;
      std::memcpy(&v, b.data() + i * sizeof(double), sizeof v);
      max_err = std::max(max_err,
                         std::abs(v - want[static_cast<std::size_t>(c * kCellsPerCore + i)]));
    }
  }
  std::printf("\n%d iterations over %d cells on 48 cores; %.2f ms simulated, "
              "%llu events\n",
              iters_done, kTotalCells, sim::to_seconds(run.end_time) * 1e3,
              static_cast<unsigned long long>(run.events_processed));
  std::printf("max deviation from the serial reference: %.3e %s\n", max_err,
              max_err == 0.0 ? "(bit-exact)" : "");
  return max_err == 0.0 ? 0 : 1;
}
