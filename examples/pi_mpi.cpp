// Monte-Carlo pi on the MPI-flavoured facade: a complete SPMD program in
// ~80 lines — bcast(parameters) -> local compute -> reduce_sum(hits) ->
// barrier, repeated over rounds of increasing precision.
#include <cstdio>
#include <cstring>

#include "common/rng.h"
#include "mpi/communicator.h"
#include "sim/condition.h"

using namespace ocb;

namespace {

constexpr std::size_t kParamsOffset = 0;     // [samples_per_rank, seed]
constexpr std::size_t kResultOffset = 1024;  // [hits, samples]
constexpr std::size_t kScratchOffset = 1 << 20;
constexpr int kRounds = 3;

sim::Task<void> rank_program(scc::Core& me, mpi::Communicator& comm,
                             double* pi_out) {
  for (int round = 0; round < kRounds; ++round) {
    // Parameters travel from rank 0 via OC-Bcast.
    co_await comm.bcast(me, /*root=*/0, kParamsOffset, 2 * sizeof(double));
    double params[2];
    const auto in =
        me.chip().memory(me.id()).host_bytes(kParamsOffset, sizeof params);
    std::memcpy(params, in.data(), sizeof params);
    const auto samples = static_cast<std::uint64_t>(params[0]);

    // Local sampling; ~30 ns per sample on the P54C is charged as compute.
    Xoshiro256 rng(static_cast<std::uint64_t>(params[1]) + me.id() * 977);
    std::uint64_t hits = 0;
    for (std::uint64_t s = 0; s < samples; ++s) {
      const double x = rng.next_double();
      const double y = rng.next_double();
      if (x * x + y * y <= 1.0) ++hits;
    }
    co_await me.busy(samples * 30 * sim::kNanosecond);

    double contribution[2] = {static_cast<double>(hits),
                              static_cast<double>(samples)};
    auto out =
        me.chip().memory(me.id()).host_bytes(kResultOffset, sizeof contribution);
    std::memcpy(out.data(), contribution, sizeof contribution);
    co_await comm.reduce_sum(me, /*root=*/0, kResultOffset, 2, kScratchOffset);

    if (me.id() == 0) {
      double totals[2];
      const auto res =
          me.chip().memory(0).host_bytes(kResultOffset, sizeof totals);
      std::memcpy(totals, res.data(), sizeof totals);
      const double pi = 4.0 * totals[0] / totals[1];
      *pi_out = pi;
      std::printf("round %d: %12.0f samples across 48 cores -> pi ~ %.6f "
                  "(t = %.1f us)\n",
                  round, totals[1], pi, sim::to_us(me.now()));
      // Next round: 4x the samples.
      double next[2] = {params[0] * 4.0, params[1] + 1.0};
      auto p = me.chip().memory(0).host_bytes(kParamsOffset, sizeof next);
      std::memcpy(p.data(), next, sizeof next);
    }
    co_await comm.barrier(me);
  }
}

}  // namespace

int main() {
  scc::SccChip chip;
  mpi::Communicator comm(chip);

  // Initial parameters: 2000 samples per rank, seed 7.
  double init[2] = {2000.0, 7.0};
  auto p = chip.memory(0).host_bytes(kParamsOffset, sizeof init);
  std::memcpy(p.data(), init, sizeof init);

  double pi = 0.0;
  for (CoreId c = 0; c < kNumCores; ++c) {
    chip.spawn(c, [&](scc::Core& me) -> sim::Task<void> {
      co_await rank_program(me, comm, &pi);
    });
  }
  const sim::RunResult run = chip.run();
  if (!run.completed()) {
    std::fprintf(stderr, "deadlock\n");
    return 1;
  }
  std::printf("final estimate: %.6f (%.4f%% off), %llu simulated events\n", pi,
              (pi / 3.14159265358979 - 1.0) * 100.0,
              static_cast<unsigned long long>(run.events_processed));
  return pi > 3.10 && pi < 3.18 ? 0 : 1;
}
