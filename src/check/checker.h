// ocb::check — a happens-before race checker for one-sided RMA.
//
// RaceChecker is a passive scc::TransactionObserver that watches every MPB
// cache-line transaction plus the flag semantics the synchronization layer
// reports via on_sync (rma/flags.h), and reconstructs the happens-before
// order with per-core vector clocks (DJIT+-style epochs):
//
//   * a flag RELEASE of value v joins the writer's clock into the line's
//     per-value release record, then advances the writer's own component;
//   * a flag ACQUIRE of value v joins that record into the reader's clock —
//     keyed by VALUE, so a suppressed or corrupted flag write (fault/) never
//     donates an ordering edge it did not deliver;
//   * an interrupt send queues the sender's clock at the target (FIFO, since
//     interrupts are counted, not coalesced); a consume dequeues and joins.
//
// Any two transactions on the same MPB line, from different cores, at least
// one a write, with neither ordered before the other, is reported as a
// violation (put/put, put/get, or get/put) with full provenance: cores,
// ops, event sequence numbers, simulated times, and the collective stage
// each core had announced (scc::Core::set_stage). Lines the sync layer has
// claimed as flags are exempt from the data checks (their protocol is the
// release/acquire bookkeeping itself), and a crashed core's recorded
// accesses are expunged — under the fail-stop model the survivors are
// allowed to reuse lines a dead core was touching.
//
// Private-memory transactions are ignored by construction: each core's
// off-chip private memory is a single-core address space (mem/), so program
// order alone orders every access to it.
//
//   check::RaceChecker checker(chip);
//   chip.add_observer(&checker);
//   ... run ...
//   if (!checker.violations().empty()) std::cerr << checker.report();
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "scc/observer.h"

namespace ocb::scc {
class SccChip;
class JsonTraceCollector;
}  // namespace ocb::scc

namespace ocb::check {

struct CheckOptions {
  /// Stop recording after this many violations (the state keeps advancing
  /// so later races are still *detected* and counted, just not stored).
  std::size_t max_violations = 64;
};

/// One conflicting unsynchronized pair. `first` is the earlier access in
/// simulated time, `second` the one whose arrival exposed the race.
struct Violation {
  enum class Kind : std::uint8_t { kPutPut, kPutGet, kGetPut };
  Kind kind;
  CoreId owner;        ///< MPB owner of the contested line
  std::size_t line;    ///< contested line index
  CoreId first_core;
  CoreId second_core;
  scc::TraceOp first_op;
  scc::TraceOp second_op;
  std::uint64_t first_seq;   ///< checker event sequence numbers
  std::uint64_t second_seq;
  sim::Time first_time;
  sim::Time second_time;
  const char* first_stage;   ///< scc::Core::stage() at each access
  const char* second_stage;
};

const char* violation_kind_name(Violation::Kind kind);

class RaceChecker final : public scc::TransactionObserver {
 public:
  explicit RaceChecker(scc::SccChip& chip, CheckOptions options = {});

  /// Violations recorded so far (capped at options.max_violations).
  const std::vector<Violation>& violations() const { return violations_; }
  /// Total races detected, including ones past the recording cap.
  std::uint64_t total_detected() const { return total_detected_; }

  /// Human-readable multi-line summary of every recorded violation.
  std::string report() const;

  /// Adds one flow arrow per recorded violation to a trace collector, so
  /// the race shows up as a cross-core link in chrome://tracing.
  void add_flows_to(scc::JsonTraceCollector& trace) const;

  /// Drops all per-line state and recorded violations (keeps the clocks —
  /// ordering established by a previous phase remains valid).
  void reset_accesses();

  // scc::TransactionObserver
  void on_read(const scc::LineTxn& txn, CacheLine& value) override;
  bool on_write(const scc::LineTxn& txn, CacheLine& value) override;
  void on_sync(const scc::SyncEvent& event) override;
  void on_crash(CoreId core, sim::Time now) override;

  // Capability model (scc/observer.h): the checker is passive — it never
  // mutates a value, vetoes a commit, or gates a core — and it opts out of
  // all per-line delivery on the quiescent fast path: one batched on_bulk
  // per coalesced op processes the op's MPB accesses with the issuing
  // core's epoch, stage, and optimistic flag hoisted out of the line loop
  // (they cannot change mid-op: only the core's own sync operations touch
  // them, and the op is the only thing running). Seqs are allocated in the
  // exact per-line access order, so verdicts and provenance are
  // bit-identical to the reference stream. On a busy chip the parity chain
  // dispatches the live per-line callbacks as before.
  bool is_passive() const override { return true; }
  bool needs_per_line_reads() const override { return false; }
  bool needs_per_line_writes() const override { return false; }
  bool needs_per_line_completes() const override { return false; }
  void on_bulk(const scc::BulkTxn& txn) override;

 private:
  using VectorClock = std::array<std::uint64_t, kNumCores>;

  struct Access {
    CoreId core = -1;
    std::uint64_t epoch = 0;  ///< the core's own clock component at access
    std::uint64_t seq = 0;
    sim::Time time = 0;
    scc::TraceOp op{};
    const char* stage = "";
  };

  /// Read sets are almost always tiny — pruning keeps only concurrent
  /// unordered readers — so they live inline until they outgrow kInline,
  /// then spill to the heap (and shrink back when pruned). Preserves
  /// insertion order exactly like the std::vector it replaces.
  class ReadSet {
   public:
    const Access* begin() const {
      return spilled_ ? spill_.data() : inline_.data();
    }
    const Access* end() const { return begin() + size_; }
    bool empty() const { return size_ == 0; }
    void push_back(const Access& a) {
      if (!spilled_) {
        if (size_ < kInline) {
          inline_[size_++] = a;
          return;
        }
        spill_.assign(inline_.begin(), inline_.end());
        spilled_ = true;
      }
      spill_.push_back(a);
      ++size_;
    }
    void clear() {
      size_ = 0;
      if (spilled_) {
        spill_.clear();
        spilled_ = false;
      }
    }
    template <class Pred>
    void erase_if(Pred pred) {
      Access* first = spilled_ ? spill_.data() : inline_.data();
      Access* kept = std::remove_if(first, first + size_, pred);
      size_ = static_cast<std::size_t>(kept - first);
      if (spilled_) {
        spill_.resize(size_);
        if (size_ <= kInline) {
          std::copy(spill_.begin(), spill_.end(), inline_.begin());
          spill_.clear();
          spilled_ = false;
        }
      }
    }

   private:
    static constexpr std::size_t kInline = 4;
    std::array<Access, kInline> inline_{};
    std::vector<Access> spill_;
    std::size_t size_ = 0;
    bool spilled_ = false;
  };

  struct LineState {
    bool sync = false;        ///< claimed as a flag line; data checks off
    bool has_write = false;
    Access last_write;
    ReadSet reads;
    /// Per published value: join of the clocks of every release of it.
    std::unordered_map<std::uint64_t, VectorClock> releases;
  };

  static void join(VectorClock& into, const VectorClock& from);
  /// True when `access` happens-before the current instant on `core`.
  bool ordered_before(const Access& access, CoreId core) const;

  LineState& line_state(CoreId owner, std::size_t line) {
    return lines_[static_cast<std::size_t>(owner) * kMpbCacheLines + line];
  }
  void mark_sync(LineState& ls);
  void record(Violation::Kind kind, CoreId owner, std::size_t line,
              const Access& first, const Access& second);
  Access make_access(const scc::LineTxn& txn);
  /// The shared DJIT+ hot path, identical for per-line and batched
  /// delivery: conflict checks against the line's last write / read set,
  /// then the (semantics-bearing) eager read-set prune or write update.
  void check_read(LineState& ls, CoreId owner, std::size_t line,
                  const Access& a);
  void check_write(LineState& ls, CoreId owner, std::size_t line,
                   const Access& a);

  scc::SccChip* chip_;
  CheckOptions options_;
  std::array<VectorClock, kNumCores> clocks_{};
  /// FIFO of sender clocks per interrupt target (sends precede consumes).
  std::array<std::vector<VectorClock>, kNumCores> ipi_queues_;
  /// Direct-indexed [owner * kMpbCacheLines + line]: the per-access hash
  /// lookup was the hottest single cost in checked runs.
  std::vector<LineState> lines_;
  std::array<bool, kNumCores> crashed_{};
  /// Inside a kOptimisticBegin/End section: the core's reads are
  /// protocol-validated (seqlock-style) and exempt from data checks.
  std::array<bool, kNumCores> optimistic_{};
  std::vector<Violation> violations_;
  std::uint64_t total_detected_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace ocb::check
