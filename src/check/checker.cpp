#include "check/checker.h"

#include <algorithm>
#include <sstream>

#include "scc/chip.h"
#include "scc/trace_json.h"
#include "sim/time.h"

namespace ocb::check {

const char* violation_kind_name(Violation::Kind kind) {
  switch (kind) {
    case Violation::Kind::kPutPut: return "put/put";
    case Violation::Kind::kPutGet: return "put/get";
    case Violation::Kind::kGetPut: return "get/put";
  }
  return "?";
}

RaceChecker::RaceChecker(scc::SccChip& chip, CheckOptions options)
    : chip_(&chip), options_(options) {
  // The checker's vector clocks are fixed-size arrays dimensioned for the
  // SCC; checked runs on larger topologies would need dynamic clocks (see
  // DESIGN.md §14) and are rejected rather than silently mis-indexed.
  OCB_REQUIRE(chip.topology().num_cores() <= static_cast<int>(kNumCores),
              "race checker supports chips up to kNumCores cores");
  // DJIT+ epoch initialization: each core's own component starts at 1, so a
  // fresh access (epoch 1) is NOT ordered before a core that has never
  // acquired from it (whose view of that component is still 0). All-zero
  // clocks would make every first access spuriously "ordered" (0 <= 0).
  for (std::size_t c = 0; c < kNumCores; ++c) clocks_[c][c] = 1;
  lines_.resize(static_cast<std::size_t>(kNumCores) * kMpbCacheLines);
}

void RaceChecker::join(VectorClock& into, const VectorClock& from) {
  for (std::size_t i = 0; i < into.size(); ++i) {
    into[i] = std::max(into[i], from[i]);
  }
}

bool RaceChecker::ordered_before(const Access& access, CoreId core) const {
  return access.epoch <=
         clocks_[static_cast<std::size_t>(core)][static_cast<std::size_t>(access.core)];
}

void RaceChecker::mark_sync(LineState& ls) {
  if (ls.sync) return;
  // The line is claimed as a flag: from here on the release/acquire
  // bookkeeping is its protocol, and any data accesses recorded before the
  // claim (e.g. polls that raced the claim in host order) are moot.
  ls.sync = true;
  ls.has_write = false;
  ls.reads.clear();
}

RaceChecker::Access RaceChecker::make_access(const scc::LineTxn& txn) {
  Access a;
  a.core = txn.core;
  a.epoch = clocks_[static_cast<std::size_t>(txn.core)]
                   [static_cast<std::size_t>(txn.core)];
  a.seq = next_seq_++;
  a.time = txn.now;
  a.op = txn.op;
  a.stage = chip_->core(txn.core).stage();
  return a;
}

void RaceChecker::record(Violation::Kind kind, CoreId owner, std::size_t line,
                         const Access& first, const Access& second) {
  ++total_detected_;
  if (violations_.size() >= options_.max_violations) return;
  Violation v;
  v.kind = kind;
  v.owner = owner;
  v.line = line;
  v.first_core = first.core;
  v.second_core = second.core;
  v.first_op = first.op;
  v.second_op = second.op;
  v.first_seq = first.seq;
  v.second_seq = second.seq;
  v.first_time = first.time;
  v.second_time = second.time;
  v.first_stage = first.stage;
  v.second_stage = second.stage;
  violations_.push_back(v);
}

void RaceChecker::check_read(LineState& ls, CoreId owner, std::size_t line,
                             const Access& a) {
  if (ls.has_write && ls.last_write.core != a.core &&
      !crashed_[static_cast<std::size_t>(ls.last_write.core)] &&
      !ordered_before(ls.last_write, a.core)) {
    record(Violation::Kind::kPutGet, owner, line, ls.last_write, a);
  }
  // Keep only reads this one does not dominate: a read ordered before `a`
  // is covered by `a` for every future conflict (happens-before is
  // transitive), and same-core reads are covered by program order. The
  // prune is eager because it is semantics-bearing — the surviving set is
  // exactly what a later write reports against — but with the inline
  // ReadSet the scan is allocation-free and usually 0-2 entries.
  ls.reads.erase_if([&](const Access& r) {
    return r.core == a.core || ordered_before(r, a.core);
  });
  ls.reads.push_back(a);
}

void RaceChecker::check_write(LineState& ls, CoreId owner, std::size_t line,
                              const Access& a) {
  if (ls.has_write && ls.last_write.core != a.core &&
      !crashed_[static_cast<std::size_t>(ls.last_write.core)] &&
      !ordered_before(ls.last_write, a.core)) {
    record(Violation::Kind::kPutPut, owner, line, ls.last_write, a);
  }
  for (const Access& r : ls.reads) {
    if (r.core == a.core) continue;
    if (crashed_[static_cast<std::size_t>(r.core)]) continue;
    if (ordered_before(r, a.core)) continue;
    record(Violation::Kind::kGetPut, owner, line, r, a);
  }
  ls.last_write = a;
  ls.has_write = true;
  ls.reads.clear();
}

void RaceChecker::on_read(const scc::LineTxn& txn, CacheLine& /*value*/) {
  if (txn.op != scc::TraceOp::kMpbRead) return;
  // Validated-read sections: the read may race by design (the protocol
  // discards any payload that fails its checksum), so it neither reports
  // against an unordered write nor joins the read set.
  if (optimistic_[static_cast<std::size_t>(txn.core)]) return;
  LineState& ls = line_state(txn.target, txn.index);
  if (ls.sync) return;
  check_read(ls, txn.target, txn.index, make_access(txn));
}

bool RaceChecker::on_write(const scc::LineTxn& txn, CacheLine& /*value*/) {
  if (txn.op != scc::TraceOp::kMpbWrite) return true;
  LineState& ls = line_state(txn.target, txn.index);
  if (ls.sync) return true;
  check_write(ls, txn.target, txn.index, make_access(txn));
  return true;
}

// Batched delivery for one quiescent coalesced op. Processes the op's MPB
// accesses in the exact per-line order (line-major, source half before
// destination half) so seq allocation — and therefore every verdict and
// its provenance — matches the reference stream bit for bit. The early
// outs replicate the per-line filters: mem halves never reach the checker
// (single-core address space), optimistic reads and sync lines are
// skipped BEFORE a seq is allocated, exactly as on_read/on_write do. The
// issuing core's epoch, stage, and optimistic flag are hoisted: nothing
// mid-op can change them (only the core's own sync operations do, and the
// quiescent regime means nothing else is runnable).
void RaceChecker::on_bulk(const scc::BulkTxn& txn) {
  const auto core = static_cast<std::size_t>(txn.core);
  const std::uint64_t epoch = clocks_[core][core];
  const char* stage = chip_->core(txn.core).stage();
  const bool optimistic = optimistic_[core];
  // Per-half skip decisions, hoisted out of the line loop.
  bool checked[2];
  bool is_write[2];
  for (int hi = 0; hi < 2; ++hi) {
    const scc::BulkHalfDesc& h = txn.half[hi];
    is_write[hi] = h.op == scc::TraceOp::kMpbWrite;
    checked[hi] = !h.mem && (is_write[hi] || !optimistic);
  }
  if (!checked[0] && !checked[1]) return;
  for (std::size_t l = 0; l < txn.lines; ++l) {
    for (int hi = 0; hi < 2; ++hi) {
      if (!checked[hi]) continue;
      const scc::BulkHalfDesc& h = txn.half[hi];
      const std::size_t index = h.base + l * h.stride;
      LineState& ls = line_state(h.target, index);
      if (ls.sync) continue;
      Access a;
      a.core = txn.core;
      a.epoch = epoch;
      a.seq = next_seq_++;
      a.time = txn.schedule[l * 2 + static_cast<std::size_t>(hi)].access;
      a.op = h.op;
      a.stage = stage;
      if (is_write[hi]) {
        check_write(ls, h.target, index, a);
      } else {
        check_read(ls, h.target, index, a);
      }
    }
  }
}

void RaceChecker::on_sync(const scc::SyncEvent& event) {
  switch (event.op) {
    case scc::SyncOp::kHostInit: {
      LineState& ls = line_state(event.owner, event.line);
      mark_sync(ls);
      // Register the value with the host's (all-zero) clock so acquires of
      // the initial value find an entry and proceed without an edge.
      ls.releases.try_emplace(event.value);
      break;
    }
    case scc::SyncOp::kWaitBegin:
      mark_sync(line_state(event.owner, event.line));
      break;
    case scc::SyncOp::kRelease: {
      LineState& ls = line_state(event.owner, event.line);
      mark_sync(ls);
      VectorClock& clock = clocks_[static_cast<std::size_t>(event.core)];
      join(ls.releases[event.value], clock);
      ++clock[static_cast<std::size_t>(event.core)];
      break;
    }
    case scc::SyncOp::kAcquire: {
      LineState& ls = line_state(event.owner, event.line);
      mark_sync(ls);
      const auto it = ls.releases.find(event.value);
      if (it != ls.releases.end()) {
        join(clocks_[static_cast<std::size_t>(event.core)], it->second);
      }
      break;
    }
    case scc::SyncOp::kIpiSend: {
      VectorClock& clock = clocks_[static_cast<std::size_t>(event.core)];
      ipi_queues_[static_cast<std::size_t>(event.owner)].push_back(clock);
      ++clock[static_cast<std::size_t>(event.core)];
      break;
    }
    case scc::SyncOp::kIpiConsume: {
      auto& queue = ipi_queues_[static_cast<std::size_t>(event.core)];
      if (!queue.empty()) {
        join(clocks_[static_cast<std::size_t>(event.core)], queue.front());
        queue.erase(queue.begin());
      }
      break;
    }
    case scc::SyncOp::kOptimisticBegin:
      optimistic_[static_cast<std::size_t>(event.core)] = true;
      break;
    case scc::SyncOp::kOptimisticEnd:
      optimistic_[static_cast<std::size_t>(event.core)] = false;
      break;
  }
}

void RaceChecker::on_crash(CoreId core, sim::Time /*now*/) {
  // Fail-stop: the dead core makes no further accesses, and the survivors
  // are entitled to recycle whatever it was touching. Its releases stay —
  // edges it published before dying were really delivered.
  crashed_[static_cast<std::size_t>(core)] = true;
  for (LineState& ls : lines_) {
    if (ls.has_write && ls.last_write.core == core) ls.has_write = false;
    ls.reads.erase_if([&](const Access& r) { return r.core == core; });
  }
}

void RaceChecker::reset_accesses() {
  // Field-wise reset keeps each line's allocations (read-set spill
  // capacity, release buckets) warm for the next phase.
  for (LineState& ls : lines_) {
    ls.sync = false;
    ls.has_write = false;
    ls.reads.clear();
    ls.releases.clear();
  }
  violations_.clear();
  total_detected_ = 0;
}

std::string RaceChecker::report() const {
  std::ostringstream os;
  os << "ocb::check: " << total_detected_ << " race violation(s)";
  if (total_detected_ > violations_.size()) {
    os << " (" << violations_.size() << " recorded)";
  }
  os << "\n";
  for (const Violation& v : violations_) {
    os << "  " << violation_kind_name(v.kind) << " on mpb[" << v.owner << "]:"
       << v.line << "\n"
       << "    first : core " << v.first_core << " "
       << scc::trace_op_name(v.first_op) << " seq=" << v.first_seq << " t="
       << sim::to_us(v.first_time) << "us";
    if (v.first_stage[0] != '\0') os << " stage=" << v.first_stage;
    os << "\n"
       << "    second: core " << v.second_core << " "
       << scc::trace_op_name(v.second_op) << " seq=" << v.second_seq << " t="
       << sim::to_us(v.second_time) << "us";
    if (v.second_stage[0] != '\0') os << " stage=" << v.second_stage;
    os << "\n";
  }
  return os.str();
}

void RaceChecker::add_flows_to(scc::JsonTraceCollector& trace) const {
  for (const Violation& v : violations_) {
    std::ostringstream name;
    name << "race:" << violation_kind_name(v.kind) << " mpb[" << v.owner
         << "]:" << v.line;
    trace.add_flow({name.str(), v.first_core, v.first_time, v.second_core,
                    v.second_time});
  }
}

}  // namespace ocb::check
