#include "mpi/communicator.h"

#include <cstring>
#include <vector>

#include "common/require.h"

namespace ocb::mpi {

namespace {
/// Per-element cost of the root's reduction adds (double add + loop on the
/// P54C).
constexpr sim::Duration kAddCost = 15 * sim::kNanosecond;
}  // namespace

Communicator::Communicator(scc::SccChip& chip, int size)
    : chip_(&chip), size_(size) {
  OCB_REQUIRE(size >= 2 && size <= chip.topology().num_cores(),
              "communicator size out of range");
  core::OcBcastOptions oc;
  oc.parties = size;
  oc.k = std::min(7, size - 1);
  bcast_ = std::make_unique<core::OcBcast>(chip, oc);
  // Stack the remaining layouts behind whatever OC-Bcast occupies
  // (including its root-change fence lines).
  const std::size_t barrier_base = oc.mpb_base_line + bcast_->layout_lines();
  barrier_ = std::make_unique<rma::FlagBarrier>(chip, barrier_base, size);
  rma::TwoSidedLayout layout;
  layout.ready_line = barrier_base + static_cast<std::size_t>(barrier_->rounds());
  layout.sent_line = layout.ready_line + 1;
  layout.payload_line = layout.sent_line + 1;
  OCB_REQUIRE(layout.payload_line + 16 <= kMpbCacheLines,
              "communicator layouts leave no usable two-sided payload space");
  layout.payload_lines = kMpbCacheLines - layout.payload_line;
  twosided_ = std::make_unique<rma::TwoSided>(chip, layout);
}

sim::Task<void> Communicator::send(scc::Core& self, int dst, std::size_t offset,
                                   std::size_t bytes) {
  OCB_REQUIRE(dst >= 0 && dst < size_, "destination rank out of range");
  co_await twosided_->send(self, dst, offset, bytes);
}

sim::Task<void> Communicator::recv(scc::Core& self, int src, std::size_t offset,
                                   std::size_t bytes) {
  OCB_REQUIRE(src >= 0 && src < size_, "source rank out of range");
  co_await twosided_->recv(self, src, offset, bytes);
}

sim::Task<void> Communicator::bcast(scc::Core& self, int root, std::size_t offset,
                                    std::size_t bytes) {
  co_await bcast_->run(self, root, offset, bytes);
}

sim::Task<void> Communicator::barrier(scc::Core& self) {
  co_await barrier_->wait(self);
}

sim::Task<void> Communicator::gather(scc::Core& self, int root,
                                     std::size_t send_offset,
                                     std::size_t recv_offset,
                                     std::size_t bytes_per_rank) {
  OCB_REQUIRE(root >= 0 && root < size_, "root rank out of range");
  OCB_REQUIRE(bytes_per_rank > 0, "empty gather");
  if (self.id() != root) {
    co_await twosided_->send(self, root, send_offset, bytes_per_rank);
    co_return;
  }
  // Contributions land at a line-aligned stride (the RMA granularity).
  const std::size_t stride = gather_stride(bytes_per_rank);
  // The root's own contribution moves through memory at transaction cost.
  const std::size_t own_dst = recv_offset + static_cast<std::size_t>(root) * stride;
  for (std::size_t i = 0; i < cache_lines_for(bytes_per_rank); ++i) {
    CacheLine cl;
    co_await self.mem_read_line(send_offset + i * kCacheLineBytes, cl);
    co_await self.mem_write_line(own_dst + i * kCacheLineBytes, cl);
  }
  for (int r = 0; r < size_; ++r) {
    if (r == root) continue;
    co_await twosided_->recv(self, r, recv_offset + static_cast<std::size_t>(r) * stride,
                             bytes_per_rank);
  }
}

sim::Task<void> Communicator::reduce_sum(scc::Core& self, int root,
                                         std::size_t offset, std::size_t count,
                                         std::size_t scratch_offset) {
  OCB_REQUIRE(count > 0, "empty reduction");
  const std::size_t bytes = count * sizeof(double);
  co_await gather(self, root, offset, scratch_offset, bytes);
  if (self.id() != root) co_return;
  const std::size_t stride = gather_stride(bytes);
  // Combine on the root: read each rank's contribution from the scratch
  // region (host-visible — the data genuinely arrived there through the
  // simulated interconnect) and charge the adds as compute.
  std::vector<double> acc(count, 0.0);
  for (int r = 0; r < size_; ++r) {
    const auto in = chip_->memory(root).host_bytes(
        scratch_offset + static_cast<std::size_t>(r) * stride, bytes);
    for (std::size_t i = 0; i < count; ++i) {
      double v;
      std::memcpy(&v, in.data() + i * sizeof(double), sizeof v);
      acc[i] += v;
    }
  }
  co_await self.busy(static_cast<sim::Duration>(size_) *
                     static_cast<sim::Duration>(count) * kAddCost);
  auto out = chip_->memory(root).host_bytes(offset, bytes);
  std::memcpy(out.data(), acc.data(), bytes);
}

}  // namespace ocb::mpi
