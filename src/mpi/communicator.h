// A minimal MPI-flavoured facade over the chip — the paper's conclusion
// sketches integrating OC-Bcast into an MPI library; this is that
// integration in miniature, so SPMD applications can be written without
// touching MPB layouts or flag protocols.
//
// One Communicator spans cores 0..size-1 ("MPI_COMM_WORLD"). It owns a
// coordinated MPB layout so all of its operations coexist in the 256-line
// MPB (derived at construction; for 48 cores and k = 7):
//
//   lines   0..205   OC-Bcast (notify + 7 doneFlags + 2x96 buffers + fence)
//   lines 206..211   dissemination barrier (6 rounds for 48 cores)
//   line  212        two-sided `ready`
//   line  213        two-sided `sent`
//   lines 214..255   two-sided payload (42 lines)
//
// Every collective keeps MPI's matched-call contract: all ranks call the
// same operation with compatible arguments. Offsets address each core's
// private off-chip memory; counts are bytes (line granularity applies to
// what lands in memory beyond the byte count, as everywhere in this
// library).
#pragma once

#include <memory>

#include "core/ocbcast.h"
#include "rma/barrier.h"
#include "rma/twosided.h"

namespace ocb::mpi {

class Communicator {
 public:
  /// Spans cores 0..size-1 of `chip`. The communicator must outlive the
  /// simulation run.
  explicit Communicator(scc::SccChip& chip, int size = kNumCores);

  int size() const { return size_; }
  scc::SccChip& chip() { return *chip_; }

  /// MPI_Send (blocking, matched).
  sim::Task<void> send(scc::Core& self, int dst, std::size_t offset,
                       std::size_t bytes);

  /// MPI_Recv (blocking, matched).
  sim::Task<void> recv(scc::Core& self, int src, std::size_t offset,
                       std::size_t bytes);

  /// MPI_Bcast via OC-Bcast (k = 7 pipelined tree).
  sim::Task<void> bcast(scc::Core& self, int root, std::size_t offset,
                        std::size_t bytes);

  /// MPI_Barrier (dissemination over MPB flags).
  sim::Task<void> barrier(scc::Core& self);

  /// MPI_Gather: every rank's [send_offset, +bytes_per_rank) lands at the
  /// root's recv_offset + rank * gather_stride(bytes_per_rank) — the
  /// stride is rounded up to whole cache lines, the RMA granularity. (The
  /// root copies its own contribution at memory-transaction cost.)
  sim::Task<void> gather(scc::Core& self, int root, std::size_t send_offset,
                         std::size_t recv_offset, std::size_t bytes_per_rank);

  /// MPI_Reduce(MPI_SUM, double): element-wise sum of every rank's `count`
  /// doubles at `offset` into the root's same region. Uses
  /// [scratch_offset, + size * count * 8) of the root's memory for
  /// gathered contributions; per-element adds are charged as compute.
  sim::Task<void> reduce_sum(scc::Core& self, int root, std::size_t offset,
                             std::size_t count, std::size_t scratch_offset);

  /// Line-aligned placement stride used by gather()/reduce_sum().
  static constexpr std::size_t gather_stride(std::size_t bytes_per_rank) {
    return cache_lines_for(bytes_per_rank) * kCacheLineBytes;
  }

 private:
  scc::SccChip* chip_;
  int size_;
  std::unique_ptr<core::OcBcast> bcast_;
  std::unique_ptr<rma::FlagBarrier> barrier_;
  std::unique_ptr<rma::TwoSided> twosided_;
};

}  // namespace ocb::mpi
