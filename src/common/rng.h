// Deterministic pseudo-random number generation.
//
// The simulator must be exactly reproducible across runs and platforms, so
// we ship our own small generators instead of relying on implementation-
// defined std::default_random_engine behaviour: SplitMix64 for seeding and
// xoshiro256** for the stream (public-domain algorithms by Blackman/Vigna).
#pragma once

#include <cstdint>

namespace ocb {

/// SplitMix64: used to expand a single user seed into generator state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit generator used for payload
/// generation and optional timing jitter. Deterministic given the seed.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed);

  std::uint64_t next();

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  // UniformRandomBitGenerator interface, so <algorithm> shuffles work.
  std::uint64_t operator()() { return next(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

 private:
  std::uint64_t s_[4];
};

}  // namespace ocb
