#include "common/format.h"

#include <cstdint>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/require.h"

namespace ocb {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::str() const {
  std::size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  std::vector<std::size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < r.size(); ++i) width[i] = std::max(width[i], r[i].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < cols; ++i) {
      const std::string& cell = i < r.size() ? r[i] : std::string{};
      os << std::left << std::setw(static_cast<int>(width[i])) << cell;
      if (i + 1 < cols) os << "  ";
    }
    os << '\n';
  };
  emit(header_);
  std::size_t rule = 0;
  for (std::size_t i = 0; i < cols; ++i) rule += width[i] + (i + 1 < cols ? 2 : 0);
  os << std::string(rule, '-') << '\n';
  for (const auto& r : rows_) emit(r);
  return os.str();
}

std::string fmt_fixed(double value, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return os.str();
}

std::string fmt_us_from_ps(std::uint64_t picoseconds) {
  return fmt_fixed(static_cast<double>(picoseconds) / 1e6, 3);
}

void write_csv(const std::string& path, const std::vector<std::string>& header,
               const std::vector<std::vector<std::string>>& rows) {
  std::ofstream out(path);
  OCB_REQUIRE(out.good(), "cannot open CSV output file: " + path);
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      if (i > 0) out << ',';
      out << r[i];
    }
    out << '\n';
  };
  emit(header);
  for (const auto& r : rows) emit(r);
  OCB_REQUIRE(out.good(), "CSV write failed: " + path);
}

}  // namespace ocb
