// Small statistics accumulators used by the experiment harness and the
// contention benchmarks (mean / min / max / stddev / percentiles over
// simulated-time samples).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ocb {

/// Streaming accumulator: O(1) memory, Welford mean/variance, min/max.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const;
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Sample-retaining accumulator: adds exact percentiles on top of
/// RunningStats. Fine for the sample counts the harness produces.
class SampleStats {
 public:
  void add(double x);

  std::size_t count() const { return running_.count(); }
  double mean() const { return running_.mean(); }
  double stddev() const { return running_.stddev(); }
  double min() const { return running_.min(); }
  double max() const { return running_.max(); }

  /// Exact percentile by nearest-rank; p in [0, 100].
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  RunningStats running_;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace ocb
