// Small statistics accumulators used by the experiment harness and the
// contention benchmarks (mean / min / max / stddev / percentiles over
// simulated-time samples).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ocb {

/// Streaming accumulator: O(1) memory, Welford mean/variance, min/max.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const;
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Streaming latency histogram with fixed log-scale buckets.
///
/// Samples are nonnegative 64-bit integers (the broadcast service records
/// integer nanoseconds — mean_ns/p999_ns in svc::ServiceMetrics::to_json).
/// Buckets are HDR-style: values below 8 get exact unit
/// buckets; above that, 8 sub-buckets per power of two, so every bucket's
/// width is at most 12.5% of its lower edge. Bucketing is pure integer bit
/// arithmetic — no logarithms — so identical inputs give identical
/// quantiles on every platform, which the service's same-seed ⇒
/// bit-identical-metrics guarantee relies on.
///
/// O(1) add, fixed 496-bucket footprint regardless of sample count, and
/// nearest-rank quantiles reported as the holding bucket's lower edge
/// (deterministic; min/max/mean stay exact).
class LatencyHistogram {
 public:
  void add(std::uint64_t sample);

  std::uint64_t count() const { return count_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  double mean() const;

  /// Lower edge of the bucket holding the q-quantile sample
  /// (nearest-rank; q in (0, 1]). Zero when empty.
  std::uint64_t quantile(double q) const;
  std::uint64_t p50() const { return quantile(0.50); }
  std::uint64_t p99() const { return quantile(0.99); }
  std::uint64_t p999() const { return quantile(0.999); }

  /// Merges another histogram into this one (bucket-wise).
  void merge(const LatencyHistogram& other);

  // Bucket geometry (exposed for tests).
  static constexpr std::size_t kSubBuckets = 8;  ///< per power of two
  static constexpr std::size_t kBuckets = 8 + 61 * kSubBuckets;
  static std::size_t bucket_index(std::uint64_t sample);
  static std::uint64_t bucket_lower_bound(std::size_t index);

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  /// 128-bit sample sum as a carry pair: a sustained-traffic run can push a
  /// u64 sum past 2^64 (e.g. 2^32 samples of ~2^32 ns) and a silently
  /// wrapped sum would corrupt mean() while every quantile still looked
  /// sane. add()/merge() carry into sum_hi_ instead.
  std::uint64_t sum_lo_ = 0;
  std::uint64_t sum_hi_ = 0;
  std::uint64_t min_ = ~0ULL;
  std::uint64_t max_ = 0;
};

/// Sample-retaining accumulator: adds exact percentiles on top of
/// RunningStats. Fine for the sample counts the harness produces.
class SampleStats {
 public:
  void add(double x);

  std::size_t count() const { return running_.count(); }
  double mean() const { return running_.mean(); }
  double stddev() const { return running_.stddev(); }
  double min() const { return running_.min(); }
  double max() const { return running_.max(); }

  /// Exact percentile by nearest-rank; p in [0, 100].
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  RunningStats running_;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace ocb
