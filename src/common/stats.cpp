#include "common/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/require.h"

namespace ocb {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  OCB_REQUIRE(n_ > 0, "mean of empty accumulator");
  return mean_;
}

double RunningStats::variance() const {
  OCB_REQUIRE(n_ > 0, "variance of empty accumulator");
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  OCB_REQUIRE(n_ > 0, "min of empty accumulator");
  return min_;
}

double RunningStats::max() const {
  OCB_REQUIRE(n_ > 0, "max of empty accumulator");
  return max_;
}

std::size_t LatencyHistogram::bucket_index(std::uint64_t sample) {
  if (sample < 8) return static_cast<std::size_t>(sample);
  // sample in [2^e, 2^(e+1)), e >= 3: 8 sub-buckets selected by the three
  // bits below the top bit. At e == 3 this degenerates to the unit buckets
  // 8..15, so indices are contiguous across the boundary.
  const int e = 63 - std::countl_zero(sample);
  const auto sub = static_cast<std::size_t>((sample >> (e - 3)) & 7);
  return 8 + static_cast<std::size_t>(e - 3) * kSubBuckets + sub;
}

std::uint64_t LatencyHistogram::bucket_lower_bound(std::size_t index) {
  OCB_REQUIRE(index < kBuckets, "bucket index out of range");
  if (index < 8) return index;
  const int e = 3 + static_cast<int>((index - 8) / kSubBuckets);
  const std::uint64_t sub = (index - 8) % kSubBuckets;
  return (1ULL << e) + sub * (1ULL << (e - 3));
}

void LatencyHistogram::add(std::uint64_t sample) {
  ++buckets_[bucket_index(sample)];
  ++count_;
  const std::uint64_t prev = sum_lo_;
  sum_lo_ += sample;
  if (sum_lo_ < prev) ++sum_hi_;  // carry: the sum is a 128-bit pair
  min_ = std::min(min_, sample);
  max_ = std::max(max_, sample);
}

double LatencyHistogram::mean() const {
  OCB_REQUIRE(count_ > 0, "mean of empty histogram");
  // 2^64 as a double is exact; the reconstructed sum loses only the
  // precision inherent to double, never a wrapped-around high word.
  constexpr double kTwo64 = 18446744073709551616.0;
  const double sum =
      static_cast<double>(sum_hi_) * kTwo64 + static_cast<double>(sum_lo_);
  return sum / static_cast<double>(count_);
}

std::uint64_t LatencyHistogram::quantile(double q) const {
  OCB_REQUIRE(count_ > 0, "quantile of empty histogram");
  OCB_REQUIRE(q > 0.0 && q <= 1.0, "quantile out of (0,1]");
  auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  if (rank == 0) rank = 1;
  if (rank > count_) rank = count_;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) return bucket_lower_bound(i);
  }
  return bucket_lower_bound(kBuckets - 1);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  const std::uint64_t prev = sum_lo_;
  sum_lo_ += other.sum_lo_;
  sum_hi_ += other.sum_hi_ + (sum_lo_ < prev ? 1 : 0);
  // An empty `other` contributes its min_ sentinel (~0), which std::min
  // discards; an empty `this` adopts other's min the same way.
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void SampleStats::add(double x) {
  running_.add(x);
  samples_.push_back(x);
  sorted_ = false;
}

double SampleStats::percentile(double p) const {
  OCB_REQUIRE(!samples_.empty(), "percentile of empty accumulator");
  OCB_REQUIRE(p >= 0.0 && p <= 100.0, "percentile out of [0,100]");
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (p <= 0.0) return samples_.front();
  const auto n = samples_.size();
  // Nearest-rank: smallest index i with (i+1)/n >= p/100.
  auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return samples_[rank - 1];
}

}  // namespace ocb
