#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/require.h"

namespace ocb {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  OCB_REQUIRE(n_ > 0, "mean of empty accumulator");
  return mean_;
}

double RunningStats::variance() const {
  OCB_REQUIRE(n_ > 0, "variance of empty accumulator");
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  OCB_REQUIRE(n_ > 0, "min of empty accumulator");
  return min_;
}

double RunningStats::max() const {
  OCB_REQUIRE(n_ > 0, "max of empty accumulator");
  return max_;
}

void SampleStats::add(double x) {
  running_.add(x);
  samples_.push_back(x);
  sorted_ = false;
}

double SampleStats::percentile(double p) const {
  OCB_REQUIRE(!samples_.empty(), "percentile of empty accumulator");
  OCB_REQUIRE(p >= 0.0 && p <= 100.0, "percentile out of [0,100]");
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (p <= 0.0) return samples_.front();
  const auto n = samples_.size();
  // Nearest-rank: smallest index i with (i+1)/n >= p/100.
  auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return samples_[rank - 1];
}

}  // namespace ocb
