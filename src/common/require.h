// Precondition checking for the ocbcast library.
//
// Following the C++ Core Guidelines (I.6 "Prefer Expects() for expressing
// preconditions", E.12), programmer errors are reported eagerly and loudly.
// OCB_REQUIRE throws ocb::PreconditionError with the failing expression and
// source location; it is enabled in all build types because the simulator is
// a correctness tool, not a hot production path (the per-event cost of a
// predictable branch is negligible).
#pragma once

#include <stdexcept>
#include <string>

namespace ocb {

/// Thrown when a documented API precondition is violated.
class PreconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] void require_failed(const char* expr, const char* file, int line,
                                 const std::string& message);
}  // namespace detail

}  // namespace ocb

/// Checks a documented precondition; throws ocb::PreconditionError on failure.
#define OCB_REQUIRE(expr, message)                                         \
  do {                                                                     \
    if (!(expr)) [[unlikely]] {                                            \
      ::ocb::detail::require_failed(#expr, __FILE__, __LINE__, (message)); \
    }                                                                      \
  } while (false)

/// Internal invariant check; identical behaviour, distinct spelling so that
/// readers can tell API misuse (REQUIRE) from library bugs (ENSURE).
#define OCB_ENSURE(expr, message) OCB_REQUIRE(expr, message)
