// Fundamental SCC-wide types and constants shared by every module.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>

namespace ocb {

/// Identifier of one of the 48 SCC cores (0..47). Two cores share a tile:
/// cores 2t and 2t+1 live on tile t.
using CoreId = int;

/// Number of cores on the SCC.
inline constexpr int kNumCores = 48;

/// Number of tiles (two cores each).
inline constexpr int kNumTiles = 24;

/// Mesh dimensions: 6 columns x 4 rows of tiles.
inline constexpr int kMeshCols = 6;
inline constexpr int kMeshRows = 4;

/// The unit of data transmission on the SCC: one 32-byte cache line.
inline constexpr std::size_t kCacheLineBytes = 32;

/// Per-core Message Passing Buffer capacity: 8 KB = 256 cache lines.
/// (Each 16 KB tile MPB is split equally between its two cores.)
inline constexpr std::size_t kMpbBytesPerCore = 8 * 1024;
inline constexpr std::size_t kMpbCacheLines = kMpbBytesPerCore / kCacheLineBytes;

/// One 32-byte cache line of payload. Value type; copies are cheap and the
/// simulator moves data through MPBs and private memory in these units,
/// mirroring the SCC's packet granularity.
struct CacheLine {
  std::array<std::byte, kCacheLineBytes> bytes{};

  friend bool operator==(const CacheLine&, const CacheLine&) = default;
};

/// Number of cache lines needed to hold `bytes` bytes (ceiling division).
constexpr std::size_t cache_lines_for(std::size_t bytes) {
  return (bytes + kCacheLineBytes - 1) / kCacheLineBytes;
}

/// Copies up to kCacheLineBytes from `src` into a cache line, zero-padding
/// the tail. Used when staging a partial final line of a message.
inline CacheLine cache_line_from(std::span<const std::byte> src) {
  CacheLine cl{};
  const std::size_t n = src.size() < kCacheLineBytes ? src.size() : kCacheLineBytes;
  if (n > 0) std::memcpy(cl.bytes.data(), src.data(), n);
  return cl;
}

/// Copies up to kCacheLineBytes of a cache line into `dst` (bounded by
/// dst.size()).
inline void cache_line_to(const CacheLine& cl, std::span<std::byte> dst) {
  const std::size_t n = dst.size() < kCacheLineBytes ? dst.size() : kCacheLineBytes;
  if (n > 0) std::memcpy(dst.data(), cl.bytes.data(), n);
}

}  // namespace ocb
