// Plain-text table formatting used by benches and examples to print the
// paper's tables/figures as aligned ASCII, plus CSV emission for plotting.
#pragma once

#include <string>
#include <vector>

namespace ocb {

/// Builds an aligned monospace table. Rows may be ragged; missing cells
/// render empty. Numeric formatting is the caller's responsibility.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Renders with a header rule, columns padded to the widest cell.
  std::string str() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant decimal places, trimming
/// trailing zeros is NOT done (stable column widths matter more here).
std::string fmt_fixed(double value, int digits);

/// Formats picoseconds as microseconds with 3 decimals (the paper's unit).
std::string fmt_us_from_ps(std::uint64_t picoseconds);

/// Writes rows as CSV to a file; throws PreconditionError on I/O failure.
void write_csv(const std::string& path, const std::vector<std::string>& header,
               const std::vector<std::vector<std::string>>& rows);

}  // namespace ocb
