#include "common/require.h"

#include <sstream>

namespace ocb::detail {

void require_failed(const char* expr, const char* file, int line,
                    const std::string& message) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ':' << line;
  if (!message.empty()) {
    os << " — " << message;
  }
  throw PreconditionError(os.str());
}

}  // namespace ocb::detail
