// OC-Bcast tree structure (paper §4.1, Figure 5).
//
// Message propagation uses a k-ary tree over the P participating cores,
// built from core ids: with root s, the children of the node with
// root-relative index i are the indices i*k+1 .. i*k+k (< P); index x maps
// to core (s + x) mod P.
//
// Notification uses a *binary* tree inside each group {parent, its k
// children}: the parent notifies child positions 1 and 2, and the child at
// position j notifies positions 2j+1 and 2j+2 — so the deepest child of a
// full group is ceil(log2(k+1)) flag hops from the parent. (The paper notes
// a binary fan-out is latency-optimal for the notification tree.)
//
// This class is pure structure — no timing, no simulator — shared by the
// algorithm implementation (core/ocbcast.*) and the analytical model
// (model/broadcast_model.*).
#pragma once

#include <vector>

#include "common/types.h"

namespace ocb::core {

class KaryTree {
 public:
  /// Tree over cores 0..parties-1 rooted at `root` with fan-out `k`.
  KaryTree(int parties, int k, CoreId root);

  int parties() const { return parties_; }
  int fanout() const { return k_; }
  CoreId root() const { return root_; }

  /// Root-relative index of a core / core of an index.
  int index_of(CoreId core) const;
  CoreId core_at(int index) const;

  /// Propagation parent (root has none: returns -1).
  CoreId parent_of(CoreId core) const;

  /// Propagation children, in position order (positions 1..k).
  std::vector<CoreId> children_of(CoreId core) const;
  int child_count(CoreId core) const;

  /// 1-based position of `core` among its parent's children (root: 0).
  int child_position(CoreId core) const;

  /// Level in the propagation tree (root: 0).
  int depth_of(CoreId core) const;
  /// Maximum level over all cores.
  int max_depth() const;

  /// Cores this core must notify *within its parent's group* immediately
  /// after detecting its own notification (step (i) of §4.1): the children
  /// of its position in the group's binary notification tree.
  std::vector<CoreId> notify_forward_targets(CoreId core) const;

  /// Cores this core notifies to kick off *its own* group's notification
  /// tree (step (iv)): its first min(2, #children) propagation children.
  std::vector<CoreId> notify_own_targets(CoreId core) const;

  /// Flag hops from the group parent to `core` inside the group's binary
  /// notification tree (position 1 or 2: 1 hop; root: 0).
  int notify_depth(CoreId core) const;

 private:
  int require_index(CoreId core) const;

  int parties_;
  int k_;
  CoreId root_;
};

}  // namespace ocb::core
