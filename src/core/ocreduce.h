// OC-Reduce / OC-Allreduce: the paper's conclusion proposes extending the
// OC-Bcast approach to other collective operations — this is that
// extension for reduction, built as the mirror image of OC-Bcast.
//
// Data flows leaves -> root through the same k-ary tree: each core stages
// its *combined* chunk (its own input merged with all of its children's
// contributions) in its MPB, double-buffered; the parent reads children's
// staged chunks line-by-line straight into registers (one-sided remote
// reads — no intermediate copies), merges, and stages the result for its
// own parent. Pipelining over 96-line chunks works exactly as in OC-Bcast.
//
// Synchronization mirrors OC-Bcast with the roles swapped:
//   * readyFlag[j] (k lines, parent's MPB, written by child j): "my chunk
//     seq is staged" — the parent polls locally;
//   * consumedFlag (1 line, child's MPB, written by the parent): "I have
//     read your chunk seq" — gates the child's buffer reuse.
// Values are absolute chunk sequence numbers, monotone across calls, so
// back-to-back reductions and changing roots are safe for the same reason
// as in OcBcast.
//
// MPB layout per core (same footprint as OC-Bcast):
//   line 0          consumedFlag
//   lines 1..k      readyFlag[j]
//   lines k+1..     buffer 0, buffer 1 (chunk_lines each)
//   then            fence barrier flags (dissemination rounds)
//
// Like OcBcast, a ROOT change reassigns flag-line writers, so run()
// fences with an internal dissemination barrier when the root differs
// from the previous call's.
//
// Elements are doubles; the arithmetic happens host-side at full precision
// while each merge is charged as compute time per element. A parent's cost
// per chunk grows with k (it ingests k staged chunks), so — unlike
// broadcast — *small* fan-outs maximize reduction throughput; the
// extension bench quantifies this.
#pragma once

#include <array>

#include "core/bcast.h"
#include "core/ocbcast.h"
#include "core/tree.h"
#include "rma/barrier.h"
#include "rma/flags.h"

namespace ocb::core {

enum class ReduceOp { kSum, kMin, kMax };

/// Human-readable operator name ("sum", "min", "max").
const char* reduce_op_name(ReduceOp op);

struct OcReduceOptions {
  int parties = kNumCores;
  int k = 2;  ///< reduction favours small fan-outs (see header comment)
  std::size_t chunk_lines = 96;
  std::size_t mpb_base_line = 0;
  /// Per-element merge cost charged to the combining core.
  sim::Duration op_cost = 15 * sim::kNanosecond;
};

class OcReduce {
 public:
  OcReduce(scc::SccChip& chip, OcReduceOptions options = {});

  /// Matched collective: every participant contributes `count` doubles at
  /// [in_offset, +count*8) of its private memory; the elementwise result
  /// lands at [out_offset, +count*8) of the ROOT's private memory only.
  /// in/out regions must be line-aligned and may alias only if identical.
  sim::Task<void> run(scc::Core& self, CoreId root, std::size_t in_offset,
                      std::size_t out_offset, std::size_t count, ReduceOp op);

  const OcReduceOptions& options() const { return options_; }

  std::size_t consumed_line() const { return options_.mpb_base_line; }
  std::size_t ready_line(int child_slot) const;
  std::size_t buffer_line(std::uint64_t parity) const;
  /// Total MPB lines the layout occupies starting at mpb_base_line.
  std::size_t layout_lines() const;

 private:
  scc::SccChip* chip_;
  OcReduceOptions options_;
  rma::FlagBarrier fence_;
  std::vector<std::uint64_t> chunks_so_far_;
  std::vector<CoreId> last_root_;
};

/// Allreduce = OC-Reduce to the root + OC-Bcast of the result; both
/// collectives share the chip but use disjoint MPB layouts.
struct OcAllreduceOptions {
  int parties = kNumCores;
  int reduce_k = 2;
  int bcast_k = 7;
  /// Both layouts must fit the MPB together, so the chunks are halved.
  std::size_t chunk_lines = 48;
  sim::Duration op_cost = 15 * sim::kNanosecond;
};

class OcAllreduce {
 public:
  OcAllreduce(scc::SccChip& chip, OcAllreduceOptions options = {});

  /// Every participant's [out_offset, +count*8) receives the elementwise
  /// reduction of all [in_offset, +count*8) regions.
  sim::Task<void> run(scc::Core& self, std::size_t in_offset,
                      std::size_t out_offset, std::size_t count, ReduceOp op);

 private:
  OcReduce reduce_;
  OcBcast bcast_;
};

}  // namespace ocb::core
