// RCCE_comm scatter-allgather broadcast (two-sided baseline, paper §5.3.2).
//
// Phase 1 (scatter): a binary recursive tree partitions the message into P
// contiguous slices of ceil(m/P) lines; the holder of a rank range sends
// the upper half-range's slices — one send — to the half's sub-root, so
// the root pushes out P-1 slices total along its log2(P) sends.
//
// Phase 2 (allgather): the Bruck-style shift ring the paper describes —
// P-1 rounds; in round t, rank r sends slice (r+t-1) mod P to rank r-1 and
// receives slice (r+t) mod P from rank r+1. Even ranks send-first, odd
// ranks receive-first, which breaks the rendezvous cycle on the ring.
//
// Empty tail slices (m not divisible by P) are skipped identically on both
// sides, so the pairwise send/recv matching is preserved for any size.
#pragma once

#include <memory>

#include "core/bcast.h"
#include "rma/twosided.h"

namespace ocb::core {

struct ScatterAllgatherOptions {
  int parties = kNumCores;
  rma::TwoSidedLayout layout{};
};

class ScatterAllgatherBcast final : public BroadcastAlgorithm {
 public:
  ScatterAllgatherBcast(scc::SccChip& chip, ScatterAllgatherOptions options = {});

  std::string name() const override { return "scatter-allgather"; }
  int parties() const override { return options_.parties; }
  sim::Task<void> run(scc::Core& self, CoreId root, std::size_t offset,
                      std::size_t bytes) override;

 private:
  ScatterAllgatherOptions options_;
  std::unique_ptr<rma::TwoSided> twosided_;
};

}  // namespace ocb::core
