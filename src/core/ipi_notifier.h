// Parallel inter-core-interrupt notification (paper §7's MPMD direction).
//
// In the MPMD setting, cores run unrelated work and cannot poll MPB flags
// for collective announcements. The paper's stated plan is to use
// *parallel inter-core interrupts* instead: the initiator interrupts two
// cores, each interrupted core forwards two more — the same binary-tree
// reasoning as OC-Bcast's notification tree (§4.1), so all P cores are in
// their handlers after ~log2(P) interrupt hops.
//
// IpiNotifier is that primitive: `notify(root)` kicks off the tree;
// `await(me, root)` is what a worker runs (typically between compute
// quanta via Core::poll_interrupt inside) — it returns once this core has
// taken the interrupt AND forwarded the wake-up to its subtree, after
// which the worker can join the actual collective (whose flags are by then
// already flowing).
#pragma once

#include "core/tree.h"
#include "scc/chip.h"

namespace ocb::core {

class IpiNotifier {
 public:
  explicit IpiNotifier(int parties = kNumCores);

  int parties() const { return parties_; }

  /// Initiator side: interrupt the (up to two) tree children. The root
  /// does not interrupt itself.
  sim::Task<void> notify(scc::Core& root);

  /// Worker side: wait for the wake-up interrupt (a blocking
  /// wait_interrupt) and forward it down the tree rooted at `root`.
  sim::Task<void> await(scc::Core& self, CoreId root);

  /// Worker side for compute loops: consume a pending wake-up if one has
  /// arrived (Core::poll_interrupt cost model); on success forwards to the
  /// subtree and returns true.
  sim::Task<bool> try_await(scc::Core& self, CoreId root);

 private:
  sim::Task<void> forward(scc::Core& self, CoreId root);

  int parties_;
};

}  // namespace ocb::core
