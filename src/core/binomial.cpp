#include "core/binomial.h"

#include "common/require.h"

namespace ocb::core {

BinomialBcast::BinomialBcast(scc::SccChip& chip, BinomialOptions options)
    : options_(options),
      twosided_(std::make_unique<rma::TwoSided>(chip, options.layout)) {
  OCB_REQUIRE(options_.parties >= 2 &&
                  options_.parties <= chip.topology().num_cores(),
              "party count out of range");
}

sim::Task<void> BinomialBcast::run(scc::Core& self, CoreId root, std::size_t offset,
                                   std::size_t bytes) {
  const int p = options_.parties;
  OCB_REQUIRE(self.id() < p, "core is not a participant");
  OCB_REQUIRE(root >= 0 && root < p, "root is not a participant");
  OCB_REQUIRE(bytes > 0, "empty broadcast");

  const int rel = (self.id() - root + p) % p;
  auto absolute = [&](int rank) { return (root + rank) % p; };

  // Receive phase: the set bit found first is the distance to the parent.
  self.set_stage("binomial:recv");
  int mask = 1;
  while (mask < p) {
    if ((rel & mask) != 0) {
      co_await twosided_->recv(self, absolute(rel - mask), offset, bytes);
      break;
    }
    mask <<= 1;
  }
  // Send phase: forward to progressively nearer sub-roots.
  self.set_stage("binomial:send");
  for (mask >>= 1; mask > 0; mask >>= 1) {
    if (rel + mask < p) {
      co_await twosided_->send(self, absolute(rel + mask), offset, bytes);
    }
  }
}

}  // namespace ocb::core
