// One-sided scatter-allgather broadcast — the alternative RMA design the
// paper's §5.4 sketches ("a good example of another possible broadcast
// implementation is adapting the two-sided scatter-allgather algorithm to
// use the one-sided primitives").
//
// Same two phases as the RCCE_comm baseline, but every transfer is a
// direct one-sided operation on MPBs instead of a rendezvous through the
// receiver's buffer:
//
//  * scatter — the binary recursive tree, with the parent *pushing* each
//    chunk straight into the child's MPB inbox (put) and the child
//    draining it to memory (get); flags carry (parent, sequence) values.
//
//  * allgather — the shift ring, one-sided: each round a core *stages*
//    the slice it is serving in its own MPB (double-buffered, read from
//    memory — a cache hit, because the slice arrived there one round
//    earlier: the §5.2.2 effect) and the left neighbour *gets* chunks
//    straight from the staging buffer into its private memory. Stage and
//    consume steps interleave per chunk, so each chunk's dependency spans
//    only two ring neighbours and the pipeline never serializes around
//    the ring. (A first design kept received chunks staged in the MPB to
//    skip the memory read entirely; that couples three consecutive cores
//    per chunk and collapses into one full ring traversal per round —
//    documented in EXPERIMENTS.md as a negative result.)
//
// The allgather ring's flag writers are root-independent (absolute ring
// neighbours), but the SCATTER tree's are not: run() fences with an
// internal dissemination barrier when the root changes, exactly as
// OcBcast does (see ocbcast.h for the hazard).
//
// MPB layout per core (chunk_lines = 82 so that inbox + two staging
// buffers + 4 flag lines + 6 fence lines fill the 256-line MPB):
//
//   line 0            stage_ready  (written locally; polled by the left
//                                   neighbour — value: absolute count of
//                                   chunks this core has ever staged)
//   line 1            stage_done   (written by the left neighbour — count
//                                   of this core's stages it consumed)
//   line 2            inbox_ready  (written by the scatter parent)
//   line 3            inbox_done   (written locally after draining; polled
//                                   remotely by the scatter parent)
//   lines 4..85       scatter inbox
//   lines 86..167     staging buffer S0
//   lines 168..249    staging buffer S1
//   lines 250..255    fence barrier flags
//
// Monotone absolute counters make back-to-back broadcasts and root
// changes safe, exactly as in OcBcast: every core can compute every other
// core's staging schedule from the (message size, parties) pair alone.
#pragma once

#include <array>

#include "core/bcast.h"
#include "rma/barrier.h"
#include "rma/flags.h"

namespace ocb::core {

struct OneSidedSagOptions {
  int parties = kNumCores;
  std::size_t chunk_lines = 82;
  std::size_t mpb_base_line = 0;
};

class OneSidedScatterAllgather final : public BroadcastAlgorithm {
 public:
  OneSidedScatterAllgather(scc::SccChip& chip, OneSidedSagOptions options = {});

  std::string name() const override { return "one-sided scatter-allgather"; }
  int parties() const override { return options_.parties; }
  sim::Task<void> run(scc::Core& self, CoreId root, std::size_t offset,
                      std::size_t bytes) override;

  // Layout (exposed for tests).
  std::size_t stage_ready_line() const { return options_.mpb_base_line; }
  std::size_t stage_done_line() const { return options_.mpb_base_line + 1; }
  std::size_t inbox_ready_line() const { return options_.mpb_base_line + 2; }
  std::size_t inbox_done_line() const { return options_.mpb_base_line + 3; }
  std::size_t inbox_line() const { return options_.mpb_base_line + 4; }
  std::size_t stage_line(std::uint64_t parity) const;
  std::size_t fence_line() const;

 private:
  struct SliceMap;

  /// Scatter-phase push of `lines` lines at `mem_offset` to `child`.
  sim::Task<void> push_range(scc::Core& self, CoreId child, std::size_t mem_offset,
                             std::size_t lines);
  /// Scatter-phase drain of `lines` lines from the inbox into memory.
  sim::Task<void> drain_range(scc::Core& self, CoreId parent, std::size_t mem_offset,
                              std::size_t lines);

  std::uint64_t& pair_seq(CoreId parent, CoreId child);

  scc::SccChip* chip_;
  OneSidedSagOptions options_;
  rma::FlagBarrier fence_;
  int n_;  ///< chip core count (pair-table stride)
  std::vector<CoreId> last_root_;
  // Absolute chunk counters (each entry only ever touched by that core's
  // own coroutine; the engine is single-threaded).
  std::vector<std::uint64_t> staged_;
  std::vector<std::uint64_t> consumed_from_right_;
  // Scatter (parent, child) sequence counters, advanced by the parent and
  // mirrored by the child (matched calls see identical schedules).
  std::vector<std::uint64_t> push_seq_;
  std::vector<std::uint64_t> drain_seq_;
};

}  // namespace ocb::core
