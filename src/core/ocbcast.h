// OC-Bcast: pipelined k-ary tree broadcast on one-sided RMA (paper §4).
//
// Data moves down a k-ary propagation tree: each parent stages a chunk in
// its own MPB and its k children *get* it in parallel (k chosen below the
// ~24-accessor MPB contention threshold of §3.3). Children learn of a new
// chunk through a binary notification tree inside each {parent, children}
// group, and report consumption through per-child doneFlags in the
// parent's MPB. Messages larger than a chunk are pipelined; with double
// buffering (two half-MPB buffers of 96 lines, §4.2) a parent refills one
// buffer while children drain the other.
//
// MPB layout per core (k + 1 flags, then the payload buffers — §5.1,
// plus up to 6 fence-barrier lines at the end):
//
//   line 0            notifyFlag   (written by the notify-parent)
//   lines 1..k        doneFlag[j]  (written by child at position j+1)
//   lines k+1..       buffer 0, buffer 1 (chunk_lines each)
//   then              fence barrier flags (dissemination rounds)
//
// Flag values are absolute chunk sequence numbers (monotone across
// broadcasts), so back-to-back broadcasts with the SAME root cannot race:
// a wait for sequence s can only be satisfied by this broadcast's writes,
// because each flag line keeps a fixed writer. When the ROOT changes, the
// tree changes and so do the writers — a straggler still in the previous
// broadcast could then mistake a fast core's next-call flag for its own
// missing one. run() therefore fences with an internal dissemination
// barrier whenever the root differs from the previous call's (the
// barrier's own flag lines have root-independent writers).
#pragma once

#include <cstdint>
#include <vector>

#include "core/bcast.h"
#include "core/tree.h"
#include "rma/barrier.h"
#include "rma/flags.h"

namespace ocb::core {

struct OcBcastOptions {
  int parties = kNumCores;
  int k = 7;                           ///< propagation fan-out
  std::size_t chunk_lines = 96;        ///< M_oc
  bool double_buffering = true;        ///< §4.2; off = single buffer (ablation)
  bool leaf_direct_to_memory = false;  ///< §5.4 optimization (ablation)
  /// Ablation of the binary notification tree: the parent sets all k
  /// children's notifyFlags itself, sequentially (what §4.1 argues
  /// against). Children forward nothing.
  bool sequential_notification = false;
  std::size_t mpb_base_line = 0;       ///< first MPB line used by the layout
};

class OcBcast final : public BroadcastAlgorithm {
 public:
  OcBcast(scc::SccChip& chip, OcBcastOptions options = {});

  std::string name() const override;
  int parties() const override { return options_.parties; }
  sim::Task<void> run(scc::Core& self, CoreId root, std::size_t offset,
                      std::size_t bytes) override;

  const OcBcastOptions& options() const { return options_; }

  // MPB layout (exposed for tests).
  std::size_t notify_line() const { return options_.mpb_base_line; }
  std::size_t done_line(int child_slot) const;
  std::size_t buffer_line(std::uint64_t parity) const;
  std::size_t fence_line() const;
  /// Total MPB lines the layout occupies starting at mpb_base_line.
  std::size_t layout_lines() const;

 private:
  sim::Task<void> wait_children_done(scc::Core& self,
                                     const std::vector<CoreId>& children,
                                     std::uint64_t minimum);

  scc::SccChip* chip_;
  OcBcastOptions options_;
  std::size_t buffer_count_;
  rma::FlagBarrier fence_;
  /// Per-core count of chunks broadcast so far (the absolute sequence
  /// numbering); identical on every core because collective calls match.
  std::vector<std::uint64_t> chunks_so_far_;
  /// Previous call's root per core (-1 before the first call).
  std::vector<CoreId> last_root_;
};

}  // namespace ocb::core
