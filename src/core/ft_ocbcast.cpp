#include "core/ft_ocbcast.h"

#include <cstring>
#include <sstream>

#include "common/require.h"
#include "rma/checksum.h"
#include "rma/rma.h"

namespace ocb::core {

FtOcBcast::FtOcBcast(scc::SccChip& chip, FtOcBcastOptions options)
    : chip_(&chip),
      options_(options),
      buffer_count_(options.double_buffering ? 2 : 1),
      fence_(chip,
             [&] {
               OCB_REQUIRE(options.parties >= 2 &&
                               options.parties <= chip.topology().num_cores(),
                           "party count out of range");
               OCB_REQUIRE(options.k >= 1 && options.k <= options.parties - 1,
                           "fan-out must be in [1, parties-1]");
               OCB_REQUIRE(options.chunk_lines >= 1,
                           "chunk must be at least one line");
               const std::size_t buffers = options.double_buffering ? 2 : 1;
               const std::size_t fence_base =
                   options.mpb_base_line + 1 + static_cast<std::size_t>(options.k) +
                   buffers + buffers * options.chunk_lines;
               OCB_REQUIRE(fence_base <= kMpbCacheLines,
                           "FT-OC-Bcast layout exceeds the 256-line MPB");
               return fence_base;
             }(),
             options.parties) {
  const auto n = static_cast<std::size_t>(chip.topology().num_cores());
  chunks_so_far_.assign(n, 0);
  last_root_.assign(n, -1);
  reports_.assign(n, DeliveryReport{});
  presumed_dead_.assign(n, std::vector<bool>(n, false));
  const std::size_t end = options_.mpb_base_line + layout_lines();
  OCB_REQUIRE(end <= kMpbCacheLines,
              "FT-OC-Bcast layout (flags + staged + buffers + fence) exceeds "
              "the 256-line MPB");
}

std::string FtOcBcast::name() const {
  std::ostringstream os;
  os << "ft-oc-bcast k=" << options_.k;
  if (!options_.double_buffering) os << " single-buffer";
  return os.str();
}

std::size_t FtOcBcast::done_line(int child_slot) const {
  OCB_REQUIRE(child_slot >= 0 && child_slot < options_.k, "child slot out of range");
  return options_.mpb_base_line + 1 + static_cast<std::size_t>(child_slot);
}

std::size_t FtOcBcast::staged_line(std::uint64_t parity) const {
  OCB_REQUIRE(parity < buffer_count_, "buffer parity out of range");
  return options_.mpb_base_line + 1 + static_cast<std::size_t>(options_.k) + parity;
}

std::size_t FtOcBcast::buffer_line(std::uint64_t parity) const {
  OCB_REQUIRE(parity < buffer_count_, "buffer parity out of range");
  return options_.mpb_base_line + 1 + static_cast<std::size_t>(options_.k) +
         buffer_count_ + parity * options_.chunk_lines;
}

std::size_t FtOcBcast::fence_line() const {
  return options_.mpb_base_line + 1 + static_cast<std::size_t>(options_.k) +
         buffer_count_ + buffer_count_ * options_.chunk_lines;
}

std::size_t FtOcBcast::layout_lines() const {
  return 1 + static_cast<std::size_t>(options_.k) + buffer_count_ +
         buffer_count_ * options_.chunk_lines +
         static_cast<std::size_t>(fence_.rounds());
}

namespace {
// Tag guarding the staged line against corrupted reads: FNV-1a over the
// (seq, sum) pair. A reader that fails validation treats the line as
// not-yet-staged and re-polls — a bit flip can delay detection but never
// fake a publication (or a fall-behind).
std::uint64_t staged_tag(std::uint64_t seq, std::uint64_t sum) {
  std::uint64_t h = rma::checked_flag_tag(seq);
  for (int i = 0; i < 8; ++i) {
    h ^= (sum >> (8 * i)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}
}  // namespace

CacheLine FtOcBcast::encode_staged(std::uint64_t seq, std::uint64_t sum) {
  CacheLine cl{};
  const std::uint64_t tag = staged_tag(seq, sum);
  std::memcpy(cl.bytes.data(), &seq, sizeof seq);
  std::memcpy(cl.bytes.data() + sizeof seq, &sum, sizeof sum);
  std::memcpy(cl.bytes.data() + 2 * sizeof seq, &tag, sizeof tag);
  return cl;
}

FtOcBcast::Staged FtOcBcast::decode_staged(const CacheLine& cl) {
  Staged s;
  std::uint64_t tag;
  std::memcpy(&s.seq, cl.bytes.data(), sizeof s.seq);
  std::memcpy(&s.sum, cl.bytes.data() + sizeof s.seq, sizeof s.sum);
  std::memcpy(&tag, cl.bytes.data() + 2 * sizeof s.seq, sizeof tag);
  s.valid = tag == staged_tag(s.seq, s.sum);
  return s;
}

sim::Task<void> FtOcBcast::write_staged_reliable(scc::Core& self,
                                                 std::uint64_t parity,
                                                 std::uint64_t seq,
                                                 std::uint64_t sum) {
  const CacheLine want = encode_staged(seq, sum);
  const std::size_t line = staged_line(parity);
  co_await self.busy(self.chip().config().o_put_mpb);
  sim::Duration backoff = options_.watchdog.write_backoff;
  for (int attempt = 0;; ++attempt) {
    rma::note_flag_release(self, rma::MpbAddr{self.id(), line}, seq);
    co_await self.mpb_write_line(self.id(), line, want);
    CacheLine back;
    co_await self.mpb_read_line(self.id(), line, back);
    const bool ok = back == want;
    if (ok) co_return;
    // Best effort beyond the retry budget: getters verify checksums and
    // have their own watchdogs, so a mis-staged line cannot corrupt them.
    if (attempt >= options_.watchdog.write_retries) co_return;
    co_await self.busy(backoff);
    backoff *= 2;
  }
}

sim::Task<void> FtOcBcast::wait_children_done(scc::Core& self,
                                              const KaryTree& tree,
                                              const std::vector<CoreId>& children,
                                              std::uint64_t minimum) {
  const CoreId me = self.id();
  DeliveryReport& rep = reports_[static_cast<std::size_t>(me)];
  auto& dead = presumed_dead_[static_cast<std::size_t>(me)];
  for (std::size_t j = 0; j < children.size(); ++j) {
    const CoreId cj = children[j];
    if (!dead[static_cast<std::size_t>(cj)]) {
      const rma::MpbAddr flag{me, done_line(static_cast<int>(j))};
      int probes = 0;
      for (;;) {
        const std::optional<rma::FlagValue> v =
            co_await rma::wait_checked_flag_at_least_watchdog(
                self, flag, minimum, options_.watchdog.timeout);
        if (v.has_value()) break;
        ++rep.watchdog_timeouts;
        ++probes;
        if (probes >= options_.probe_attempts) {
          dead[static_cast<std::size_t>(cj)] = true;
          break;
        }
      }
    }
    if (!dead[static_cast<std::size_t>(cj)]) continue;
    // Frontier substitution: cj acked s only after staging s, so its
    // grandchildren's done lines — which live in cj's still-readable MPB —
    // reaching `minimum` proves everything below (and including) cj
    // consumed the buffer this wait protects.
    const std::vector<CoreId> grandchildren = tree.children_of(cj);
    for (std::size_t g = 0; g < grandchildren.size(); ++g) {
      const CoreId gc = grandchildren[g];
      if (dead[static_cast<std::size_t>(gc)]) continue;
      const rma::MpbAddr flag{cj, done_line(static_cast<int>(g))};
      int probes = 0;
      for (;;) {
        const std::optional<rma::FlagValue> v =
            co_await rma::wait_checked_flag_at_least_watchdog(
                self, flag, minimum, options_.watchdog.timeout);
        if (v.has_value()) break;
        ++rep.watchdog_timeouts;
        ++probes;
        if (probes >= options_.probe_attempts) {
          // Out of the single-failure model; don't wedge the survivors.
          dead[static_cast<std::size_t>(gc)] = true;
          break;
        }
      }
    }
    ++rep.substituted_acks;
  }
}

sim::Task<void> FtOcBcast::root_chunk(scc::Core& self, const KaryTree& tree,
                                      const std::vector<CoreId>& children,
                                      const std::vector<CoreId>& own,
                                      std::uint64_t seq, std::uint64_t parity,
                                      std::size_t lines, std::size_t mem_off,
                                      std::uint64_t reuse_min) {
  co_await wait_children_done(self, tree, children, reuse_min);
  // End-to-end integrity starts here: the checksum the tree verifies
  // against must describe the *message*, not whatever the root's memory
  // reads happened to return. The application-known message checksum is
  // free (host-side) — a staging pass whose folded sum disagrees read a
  // corrupted line on the way up, and is redone from memory.
  DeliveryReport& rep = reports_[static_cast<std::size_t>(self.id())];
  const std::uint64_t expected =
      rma::host_checksum_mem(self.chip(), self.id(), mem_off, lines);
  std::uint64_t sum;
  int tries = 0;
  for (;;) {
    sum = co_await rma::put_mem_to_mpb_sum(
        self, rma::MpbAddr{self.id(), buffer_line(parity)}, mem_off, lines);
    if (sum == expected) break;
    ++rep.checksum_retries;
    ++tries;
    // Best effort past the budget: `sum` still matches what actually sits
    // in the staging buffer, so the tree at least converges consistently.
    if (tries > options_.get_retries) break;
  }
  co_await write_staged_reliable(self, parity, seq, sum);
  for (CoreId target : own) {
    co_await rma::set_flag_reliable(self, rma::MpbAddr{target, notify_line()},
                                    seq, options_.watchdog,
                                    [seq](rma::FlagValue v) { return v >= seq; });
  }
}

sim::Task<bool> FtOcBcast::follower_chunk(
    scc::Core& self, const KaryTree& tree, const std::vector<CoreId>& children,
    const std::vector<CoreId>& forward, const std::vector<CoreId>& own,
    bool& use_notify, std::uint64_t seq, std::uint64_t parity, std::size_t lines,
    std::size_t mem_off, std::uint64_t reuse_min) {
  const CoreId me = self.id();
  DeliveryReport& rep = reports_[static_cast<std::size_t>(me)];
  auto& dead = presumed_dead_[static_cast<std::size_t>(me)];
  const CoreId parent = tree.parent_of(me);
  const int my_slot = tree.child_position(me) - 1;
  const bool is_leaf = children.empty();

  // Current data source: static parent, walked toward the root past any
  // peer this core has already presumed dead.
  CoreId source = parent;
  while (source != tree.root() && dead[static_cast<std::size_t>(source)]) {
    source = tree.parent_of(source);
  }

  // Fast-path wake-up hint. Ignored once it ever times out (lost/stuck
  // notification or crashed notifier): the staged line is the ground truth.
  if (use_notify) {
    const std::optional<rma::FlagValue> hint =
        co_await rma::wait_flag_at_least_watchdog(
            self, rma::MpbAddr{me, notify_line()}, seq,
            options_.watchdog.timeout);
    if (!hint.has_value()) {
      ++rep.watchdog_timeouts;
      use_notify = false;
    }
  }
  // Keep the notification tree flowing regardless (hint-only for receivers).
  for (CoreId target : forward) {
    co_await rma::set_flag(self, rma::MpbAddr{target, notify_line()}, seq);
  }

  int attempts = 0;
  for (;;) {
    if (attempts >= options_.max_chunk_attempts) {
      rep.gave_up = true;
      co_return false;
    }
    // --- Detect: poll the source's staged line for this parity ----------
    Staged st;
    {
      rma::note_flag_wait(self, rma::MpbAddr{source, staged_line(parity)});
      int probes = 0;
      bool detected = false;
      while (!detected) {
        std::uint64_t epoch = 0;
        CacheLine sl;
        co_await self.mpb_read_line(source, staged_line(parity), sl, &epoch);
        st = decode_staged(sl);
        if (st.valid && st.seq >= seq) {
          rma::note_flag_acquire(self, rma::MpbAddr{source, staged_line(parity)},
                                 st.seq);
          detected = true;
          break;
        }
        self.set_wait_note("staged-wait", source,
                           static_cast<int>(staged_line(parity)));
        // Trigger reference taken after the read (home-lane under PDES;
        // see rma::wait_flag).
        sim::Trigger& trig =
            self.chip().mpb(source).line_trigger(staged_line(parity));
        const bool woken =
            co_await trig.wait_for(options_.watchdog.timeout, epoch);
        self.set_wait_note("running");
        if (woken) continue;
        ++rep.watchdog_timeouts;
        ++probes;
        if (probes >= options_.probe_attempts) break;
      }
      if (!detected) {
        // Source stopped advancing: presume it dead and re-route one level
        // up. Its frozen MPB still serves every chunk it acked, so the walk
        // never skips data (ack-after-stage invariant).
        if (source == tree.root()) {
          // The root has no substitute, but it also merely stalls whenever
          // it probes a dead child of its own — so keep retrying (bounded
          // by max_chunk_attempts). A genuinely dead root is out of model
          // and surfaces as gave_up when the attempt budget drains.
          ++attempts;
          continue;
        }
        dead[static_cast<std::size_t>(source)] = true;
        ++rep.reroutes;
        source = tree.parent_of(source);
        while (source != tree.root() && dead[static_cast<std::size_t>(source)]) {
          source = tree.parent_of(source);
        }
        ++attempts;
        continue;
      }
    }
    if (st.seq > seq) {
      // The source recycled this buffer past our chunk — we fell behind its
      // pipeline beyond the double-buffer window (only possible outside the
      // single-failure model, e.g. we were falsely presumed dead). The data
      // is gone upstream everywhere; give up without wedging anyone.
      rep.gave_up = true;
      co_return false;
    }

    // --- Fetch + verify -------------------------------------------------
    // A re-routed fetch (source walked past a presumed-dead peer) has no
    // ack path into the substitute source's buffer-reuse gate: the read
    // legitimately races the source recycling the slot, and safety comes
    // from the checksum (mismatch => retry; seq advanced => fall-behind).
    // Declare it a validated-read section so the race checker holds it to
    // that protocol instead of the happens-before rule.
    const bool rerouted = source != parent;
    if (is_leaf) {
      if (rerouted) rma::note_optimistic_begin(self);
      const std::uint64_t got = co_await rma::get_mpb_to_mem_sum(
          self, mem_off, rma::MpbAddr{source, buffer_line(parity)}, lines);
      if (rerouted) rma::note_optimistic_end(self);
      // Leaves land straight in private memory (§5.4): half the line
      // transactions, and the checksum covers the whole observed path.
      if (got != st.sum) {
        ++rep.checksum_retries;
        ++attempts;
        continue;
      }
    } else {
      co_await wait_children_done(self, tree, children, reuse_min);
      if (rerouted) rma::note_optimistic_begin(self);
      const std::uint64_t got = co_await rma::get_mpb_to_mpb_sum(
          self, buffer_line(parity), rma::MpbAddr{source, buffer_line(parity)},
          lines);
      if (rerouted) rma::note_optimistic_end(self);
      if (got != st.sum) {
        ++rep.checksum_retries;
        ++attempts;
        continue;
      }
      // Republish before acking: the ack-after-stage invariant is what
      // makes this core's MPB a valid fallback source if it dies next.
      co_await write_staged_reliable(self, parity, seq, got);
    }

    // --- Ack (into the static parent's MPB, alive or not) ---------------
    co_await rma::set_checked_flag_reliable(
        self, rma::MpbAddr{parent, done_line(my_slot)}, seq, options_.watchdog);

    if (!is_leaf) {
      for (CoreId target : own) {
        co_await rma::set_flag_reliable(
            self, rma::MpbAddr{target, notify_line()}, seq, options_.watchdog,
            [seq](rma::FlagValue v) { return v >= seq; });
      }
      // Land the chunk from the own buffer, verified against the checksum
      // established at fetch time (read corruption on the way to memory is
      // caught and retried from the intact buffer).
      int tries = 0;
      for (;;) {
        const std::uint64_t landed = co_await rma::get_mpb_to_mem_sum(
            self, mem_off, rma::MpbAddr{me, buffer_line(parity)}, lines);
        if (landed == st.sum) break;
        ++rep.checksum_retries;
        ++tries;
        if (tries > options_.get_retries) {
          rep.gave_up = true;
          co_return false;
        }
      }
    }
    co_return true;
  }
}

sim::Task<void> FtOcBcast::run(scc::Core& self, CoreId root, std::size_t offset,
                               std::size_t bytes) {
  OCB_REQUIRE(self.id() < options_.parties, "core is not a participant");
  OCB_REQUIRE(root >= 0 && root < options_.parties, "root is not a participant");
  OCB_REQUIRE(bytes > 0, "empty broadcast");

  const KaryTree tree(options_.parties, options_.k, root);
  const CoreId me = self.id();
  const std::vector<CoreId> children = tree.children_of(me);
  const std::vector<CoreId> forward = tree.notify_forward_targets(me);
  const std::vector<CoreId> own = tree.notify_own_targets(me);

  const std::size_t m_lines = cache_lines_for(bytes);
  const std::size_t chunk = options_.chunk_lines;
  const std::size_t n_chunks = (m_lines + chunk - 1) / chunk;
  const std::uint64_t base = chunks_so_far_[static_cast<std::size_t>(me)];
  chunks_so_far_[static_cast<std::size_t>(me)] += n_chunks;

  DeliveryReport& rep = reports_[static_cast<std::size_t>(me)];
  rep.participated = true;

  // Root-change fence, exactly as in OcBcast (the fence itself is not
  // fault-tolerant; root rotation requires a fault-free interlude, see
  // docs/PROTOCOLS.md).
  const CoreId prev_root = last_root_[static_cast<std::size_t>(me)];
  last_root_[static_cast<std::size_t>(me)] = root;
  if (prev_root != -1 && prev_root != root) {
    co_await fence_.wait(self);
  }

  bool use_notify = me != root;

  for (std::size_t c = 0; c < n_chunks; ++c) {
    const std::uint64_t seq = base + c + 1;
    const std::uint64_t parity = (base + c) % buffer_count_;
    const std::size_t lines =
        c + 1 < n_chunks ? chunk : m_lines - (n_chunks - 1) * chunk;
    const std::size_t mem_off = offset + c * chunk * kCacheLineBytes;
    const std::uint64_t reuse_min = c >= buffer_count_ ? seq - buffer_count_ : 0;

    if (me == root) {
      self.set_stage("ft-oc-bcast:root");
      co_await root_chunk(self, tree, children, own, seq, parity, lines,
                          mem_off, reuse_min);
      continue;
    }
    self.set_stage("ft-oc-bcast:follower");
    const bool ok = co_await follower_chunk(self, tree, children, forward, own,
                                            use_notify, seq, parity, lines,
                                            mem_off, reuse_min);
    if (!ok) co_return;
  }

  self.set_stage("ft-oc-bcast:drain");
  co_await wait_children_done(self, tree, children, base + n_chunks);
  rep.delivered = true;
}

}  // namespace ocb::core
