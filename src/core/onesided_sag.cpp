#include "core/onesided_sag.h"

#include <algorithm>

#include "common/require.h"
#include "rma/rma.h"

namespace ocb::core {

namespace {
constexpr std::size_t kFlagLines = 4;
}  // namespace

/// Slice geometry shared by every participant: slice s covers the byte
/// range [s, s+1) * slice_bytes clipped to the message; all arithmetic is
/// in whole cache lines (the RMA granularity), so the tail slice may be
/// short or empty.
struct OneSidedScatterAllgather::SliceMap {
  std::size_t message_lines;
  std::size_t slice_lines;  // ceil(message_lines / parties)
  int parties;

  std::size_t lines_of(int slice) const {
    const std::size_t begin =
        std::min(message_lines, static_cast<std::size_t>(slice) * slice_lines);
    const std::size_t end = std::min(message_lines,
                                     (static_cast<std::size_t>(slice) + 1) * slice_lines);
    return end - begin;
  }
  std::size_t begin_offset(int slice) const {
    return std::min(message_lines, static_cast<std::size_t>(slice) * slice_lines) *
           kCacheLineBytes;
  }
  std::size_t range_lines(int first, int last) const {
    std::size_t total = 0;
    for (int s = first; s < last; ++s) total += lines_of(s);
    return total;
  }
};

OneSidedScatterAllgather::OneSidedScatterAllgather(scc::SccChip& chip,
                                                   OneSidedSagOptions options)
    : chip_(&chip),
      options_(options),
      fence_(chip,
             [&] {
               OCB_REQUIRE(options.parties >= 2 &&
                               options.parties <= chip.topology().num_cores(),
                           "party count out of range");
               OCB_REQUIRE(options.chunk_lines >= 1,
                           "chunk must be at least one line");
               return options.mpb_base_line + kFlagLines + 3 * options.chunk_lines;
             }(),
             options.parties) {
  n_ = chip.topology().num_cores();
  const auto n = static_cast<std::size_t>(n_);
  last_root_.assign(n, -1);
  staged_.assign(n, 0);
  consumed_from_right_.assign(n, 0);
  push_seq_.assign(n * n, 0);
  drain_seq_.assign(n * n, 0);
  OCB_REQUIRE(options_.mpb_base_line + kFlagLines + 3 * options_.chunk_lines +
                      static_cast<std::size_t>(fence_.rounds()) <=
                  kMpbCacheLines,
              "one-sided s-ag layout (4 flags + inbox + 2 staging buffers + "
              "fence) exceeds the 256-line MPB");
}

std::size_t OneSidedScatterAllgather::fence_line() const {
  return options_.mpb_base_line + kFlagLines + 3 * options_.chunk_lines;
}

std::size_t OneSidedScatterAllgather::stage_line(std::uint64_t parity) const {
  OCB_REQUIRE(parity < 2, "staging parity out of range");
  return options_.mpb_base_line + kFlagLines + (1 + parity) * options_.chunk_lines;
}

std::uint64_t& OneSidedScatterAllgather::pair_seq(CoreId parent, CoreId child) {
  return push_seq_[static_cast<std::size_t>(parent) * static_cast<std::size_t>(n_) +
                   static_cast<std::size_t>(child)];
}

sim::Task<void> OneSidedScatterAllgather::push_range(scc::Core& self, CoreId child,
                                                     std::size_t mem_offset,
                                                     std::size_t lines) {
  const std::size_t chunk = options_.chunk_lines;
  std::size_t done = 0;
  bool first = true;
  while (done < lines) {
    const std::size_t n = std::min(chunk, lines - done);
    const std::uint64_t s = ++pair_seq(self.id(), child);
    if (!first) {
      // The child must have drained the previous chunk of this range; for
      // the first chunk the previous broadcast's completion already
      // guarantees a free inbox.
      co_await rma::wait_flag(
          self, rma::MpbAddr{child, inbox_done_line()},
          [v = rma::pack_flag(self.id(), s - 1)](rma::FlagValue f) { return f == v; });
    }
    first = false;
    co_await rma::put_mem_to_mpb(self, rma::MpbAddr{child, inbox_line()},
                                 mem_offset + done * kCacheLineBytes, n);
    co_await rma::set_flag(self, rma::MpbAddr{child, inbox_ready_line()},
                           rma::pack_flag(self.id(), s));
    done += n;
  }
}

sim::Task<void> OneSidedScatterAllgather::drain_range(scc::Core& self, CoreId parent,
                                                      std::size_t mem_offset,
                                                      std::size_t lines) {
  const std::size_t chunk = options_.chunk_lines;
  std::size_t done = 0;
  while (done < lines) {
    const std::size_t n = std::min(chunk, lines - done);
    const std::uint64_t s =
        ++drain_seq_[static_cast<std::size_t>(parent) * static_cast<std::size_t>(n_) +
                     static_cast<std::size_t>(self.id())];
    co_await rma::wait_flag(
        self, rma::MpbAddr{self.id(), inbox_ready_line()},
        [v = rma::pack_flag(parent, s)](rma::FlagValue f) { return f == v; });
    co_await rma::get_mpb_to_mem(self, mem_offset + done * kCacheLineBytes,
                                 rma::MpbAddr{self.id(), inbox_line()}, n);
    // Local write; the parent polls this line remotely.
    co_await self.busy(self.chip().config().o_put_mpb);
    rma::note_flag_release(self, rma::MpbAddr{self.id(), inbox_done_line()},
                           rma::pack_flag(parent, s));
    co_await self.mpb_write_line(self.id(), inbox_done_line(),
                                 rma::encode_flag(rma::pack_flag(parent, s)));
    done += n;
  }
}

sim::Task<void> OneSidedScatterAllgather::run(scc::Core& self, CoreId root,
                                              std::size_t offset, std::size_t bytes) {
  const int p = options_.parties;
  OCB_REQUIRE(self.id() < p, "core is not a participant");
  OCB_REQUIRE(root >= 0 && root < p, "root is not a participant");
  OCB_REQUIRE(bytes > 0, "empty broadcast");

  const CoreId me = self.id();
  const int rel = (me - root + p) % p;
  auto absolute = [&](int rank) { return (root + rank) % p; };
  const std::size_t chunk = options_.chunk_lines;

  // Fence on a root change (the scatter tree's flag writers move).
  const CoreId prev_root = last_root_[static_cast<std::size_t>(me)];
  last_root_[static_cast<std::size_t>(me)] = root;
  if (prev_root != -1 && prev_root != root) {
    co_await fence_.wait(self);
  }
  const SliceMap map{cache_lines_for(bytes),
                     (cache_lines_for(bytes) + static_cast<std::size_t>(p) - 1) /
                         static_cast<std::size_t>(p),
                     p};
  auto chunks_of = [&](std::size_t lines) { return (lines + chunk - 1) / chunk; };

  // --- scatter: binary recursive tree, one-sided inbox pushes -------------
  self.set_stage("1s-s-ag:scatter");
  {
    int lo = 0;
    int hi = p;
    while (hi - lo > 1) {
      const int mid = lo + (hi - lo) / 2;
      if (rel < mid) {
        if (rel == lo && map.range_lines(mid, hi) > 0) {
          co_await push_range(self, absolute(mid), offset + map.begin_offset(mid),
                              map.range_lines(mid, hi));
        }
        hi = mid;
      } else {
        if (rel == mid && map.range_lines(mid, hi) > 0) {
          co_await drain_range(self, absolute(lo), offset + map.begin_offset(mid),
                               map.range_lines(mid, hi));
        }
        lo = mid;
      }
    }
  }

  // --- allgather: one-sided shift ring -------------------------------------
  // Round t (1..P-1): serve slice (rel+t-1) by staging it from memory into
  // the own MPB (the slice landed in memory one round earlier, so these
  // reads are cache hits), while the left neighbour pulls the chunks
  // straight into its private memory. Stage and consume interleave per
  // chunk so each dependency spans two ring neighbours only.
  const CoreId right = absolute((rel + 1) % p);
  self.set_stage("1s-s-ag:allgather");

  auto stage_parity = [](std::uint64_t stage_number) {
    return (stage_number - 1) % 2;  // stage numbers are 1-based
  };

  for (int t = 1; t < p; ++t) {
    const int out_slice = (rel + t - 1) % p;
    const int in_slice = (rel + t) % p;
    const std::size_t out_lines = map.lines_of(out_slice);
    const std::size_t in_lines = map.lines_of(in_slice);
    const std::size_t out_off = offset + map.begin_offset(out_slice);
    const std::size_t in_off = offset + map.begin_offset(in_slice);
    const std::size_t steps = std::max(chunks_of(out_lines), chunks_of(in_lines));
    for (std::size_t c = 0; c < steps; ++c) {
      if (c < chunks_of(out_lines)) {
        const std::size_t n = std::min(chunk, out_lines - c * chunk);
        const std::uint64_t mine = staged_[static_cast<std::size_t>(me)] + 1;
        if (mine > 2) {
          // The staging slot is reused once the left neighbour consumed the
          // chunk staged there two stages ago.
          co_await rma::wait_flag_at_least(self, rma::MpbAddr{me, stage_done_line()},
                                           mine - 2);
        }
        co_await rma::put_mem_to_mpb(
            self, rma::MpbAddr{me, stage_line(stage_parity(mine))},
            out_off + c * chunk * kCacheLineBytes, n);
        staged_[static_cast<std::size_t>(me)] = mine;
        co_await self.busy(self.chip().config().o_put_mpb);
        rma::note_flag_release(self, rma::MpbAddr{me, stage_ready_line()}, mine);
        co_await self.mpb_write_line(me, stage_ready_line(), rma::encode_flag(mine));
      }
      if (c < chunks_of(in_lines)) {
        const std::size_t n = std::min(chunk, in_lines - c * chunk);
        const std::uint64_t theirs =
            ++consumed_from_right_[static_cast<std::size_t>(me)];
        // Remote poll of the right neighbour's staging announcement, then a
        // direct MPB-to-memory pull — the received slice never needs a
        // staging copy on the receiving side.
        co_await rma::wait_flag_at_least(
            self, rma::MpbAddr{right, stage_ready_line()}, theirs);
        co_await rma::get_mpb_to_mem(self, in_off + c * chunk * kCacheLineBytes,
                                     rma::MpbAddr{right, stage_line(stage_parity(theirs))},
                                     n);
        co_await rma::set_flag(self, rma::MpbAddr{right, stage_done_line()}, theirs);
      }
    }
  }
}

}  // namespace ocb::core
