#include "core/tree.h"

#include "common/require.h"

namespace ocb::core {

KaryTree::KaryTree(int parties, int k, CoreId root)
    : parties_(parties), k_(k), root_(root) {
  OCB_REQUIRE(parties >= 1, "tree needs at least one core");
  OCB_REQUIRE(k >= 1, "tree fan-out must be at least 1");
  OCB_REQUIRE(root >= 0 && root < parties, "root outside the participant set");
}

int KaryTree::require_index(CoreId core) const {
  OCB_REQUIRE(core >= 0 && core < parties_, "core outside the participant set");
  return (core - root_ + parties_) % parties_;
}

int KaryTree::index_of(CoreId core) const { return require_index(core); }

CoreId KaryTree::core_at(int index) const {
  OCB_REQUIRE(index >= 0 && index < parties_, "tree index out of range");
  return (root_ + index) % parties_;
}

CoreId KaryTree::parent_of(CoreId core) const {
  const int idx = require_index(core);
  if (idx == 0) return -1;
  return core_at((idx - 1) / k_);
}

int KaryTree::child_count(CoreId core) const {
  const int idx = require_index(core);
  const long first = static_cast<long>(idx) * k_ + 1;
  if (first >= parties_) return 0;
  const long last = std::min<long>(first + k_ - 1, parties_ - 1);
  return static_cast<int>(last - first + 1);
}

std::vector<CoreId> KaryTree::children_of(CoreId core) const {
  const int idx = require_index(core);
  std::vector<CoreId> out;
  const long first = static_cast<long>(idx) * k_ + 1;
  for (long c = first; c < first + k_ && c < parties_; ++c) {
    out.push_back(core_at(static_cast<int>(c)));
  }
  return out;
}

int KaryTree::child_position(CoreId core) const {
  const int idx = require_index(core);
  if (idx == 0) return 0;
  return (idx - 1) % k_ + 1;
}

int KaryTree::depth_of(CoreId core) const {
  int idx = require_index(core);
  int depth = 0;
  while (idx != 0) {
    idx = (idx - 1) / k_;
    ++depth;
  }
  return depth;
}

int KaryTree::max_depth() const { return depth_of(core_at(parties_ - 1)); }

std::vector<CoreId> KaryTree::notify_forward_targets(CoreId core) const {
  const int idx = require_index(core);
  std::vector<CoreId> out;
  if (idx == 0) return out;  // the root forwards nothing; it originates
  const int j = child_position(core);
  const int parent_idx = (idx - 1) / k_;
  const int parent_first = parent_idx * k_ + 1;  // index of position 1
  const int group_children = child_count(core_at(parent_idx));
  for (int target_pos : {2 * j + 1, 2 * j + 2}) {
    if (target_pos <= group_children) {
      out.push_back(core_at(parent_first + target_pos - 1));
    }
  }
  return out;
}

std::vector<CoreId> KaryTree::notify_own_targets(CoreId core) const {
  std::vector<CoreId> children = children_of(core);
  if (children.size() > 2) children.resize(2);
  return children;
}

int KaryTree::notify_depth(CoreId core) const {
  int j = child_position(core);
  int hops = 0;
  while (j >= 1) {
    ++hops;
    j = j <= 2 ? 0 : (j - 1) / 2;
  }
  return hops;
}

}  // namespace ocb::core
