#include "core/scatter_allgather.h"

#include <algorithm>

#include "common/require.h"

namespace ocb::core {

ScatterAllgatherBcast::ScatterAllgatherBcast(scc::SccChip& chip,
                                             ScatterAllgatherOptions options)
    : options_(options),
      twosided_(std::make_unique<rma::TwoSided>(chip, options.layout)) {
  OCB_REQUIRE(options_.parties >= 2 &&
                  options_.parties <= chip.topology().num_cores(),
              "party count out of range");
}

sim::Task<void> ScatterAllgatherBcast::run(scc::Core& self, CoreId root,
                                           std::size_t offset, std::size_t bytes) {
  const int p = options_.parties;
  OCB_REQUIRE(self.id() < p, "core is not a participant");
  OCB_REQUIRE(root >= 0 && root < p, "root is not a participant");
  OCB_REQUIRE(bytes > 0, "empty broadcast");

  const int rel = (self.id() - root + p) % p;
  auto absolute = [&](int rank) { return (root + rank) % p; };

  const std::size_t m_lines = cache_lines_for(bytes);
  const std::size_t slice_bytes =
      ((m_lines + static_cast<std::size_t>(p) - 1) / static_cast<std::size_t>(p)) *
      kCacheLineBytes;
  // Byte extent of the contiguous slice range [first, last).
  auto range_begin = [&](int first) {
    return std::min(bytes, static_cast<std::size_t>(first) * slice_bytes);
  };
  auto range_bytes = [&](int first, int last) {
    return std::min(bytes, static_cast<std::size_t>(last) * slice_bytes) -
           range_begin(first);
  };

  // --- scatter phase ------------------------------------------------------
  self.set_stage("s-ag:scatter");
  int lo = 0;
  int hi = p;
  while (hi - lo > 1) {
    const int mid = lo + (hi - lo) / 2;
    if (rel < mid) {
      if (rel == lo && range_bytes(mid, hi) > 0) {
        co_await twosided_->send(self, absolute(mid), offset + range_begin(mid),
                                 range_bytes(mid, hi));
      }
      hi = mid;
    } else {
      if (rel == mid && range_bytes(mid, hi) > 0) {
        co_await twosided_->recv(self, absolute(lo), offset + range_begin(mid),
                                 range_bytes(mid, hi));
      }
      lo = mid;
    }
  }

  // --- allgather phase (shift ring) ----------------------------------------
  self.set_stage("s-ag:allgather");
  const CoreId left = absolute((rel - 1 + p) % p);
  const CoreId right = absolute((rel + 1) % p);
  for (int t = 1; t < p; ++t) {
    const int send_slice = (rel + t - 1) % p;
    const int recv_slice = (rel + t) % p;
    const std::size_t send_n = range_bytes(send_slice, send_slice + 1);
    const std::size_t recv_n = range_bytes(recv_slice, recv_slice + 1);
    auto do_send = [&]() -> sim::Task<void> {
      if (send_n > 0) {
        co_await twosided_->send(self, left, offset + range_begin(send_slice), send_n);
      }
    };
    auto do_recv = [&]() -> sim::Task<void> {
      if (recv_n > 0) {
        co_await twosided_->recv(self, right, offset + range_begin(recv_slice), recv_n);
      }
    };
    if (rel % 2 == 0) {
      co_await do_send();
      co_await do_recv();
    } else {
      co_await do_recv();
      co_await do_send();
    }
  }
}

}  // namespace ocb::core
