// RCCE_comm binomial-tree broadcast (two-sided baseline, paper §5.2.2).
//
// Recursive halving over root-relative ranks: the root sends the whole
// message to the "far half", then both halves recurse — MPICH's binomial
// schedule. Every hop is a blocking two-sided send/recv pair through the
// receiver's MPB (rma::TwoSided, 251-line chunks), so each tree level pays
// C_put^mem + C_get^mem per chunk — the cost structure of Formula 14. A
// non-root sender forwards the message it just wrote to memory, so its put
// reads come from the (simulated) data cache, matching the paper's L1
// assumption.
#pragma once

#include <memory>

#include "core/bcast.h"
#include "rma/twosided.h"

namespace ocb::core {

struct BinomialOptions {
  int parties = kNumCores;
  rma::TwoSidedLayout layout{};
};

class BinomialBcast final : public BroadcastAlgorithm {
 public:
  BinomialBcast(scc::SccChip& chip, BinomialOptions options = {});

  std::string name() const override { return "binomial"; }
  int parties() const override { return options_.parties; }
  sim::Task<void> run(scc::Core& self, CoreId root, std::size_t offset,
                      std::size_t bytes) override;

 private:
  BinomialOptions options_;
  std::unique_ptr<rma::TwoSided> twosided_;
};

}  // namespace ocb::core
