#include "core/bcast.h"

#include <sstream>

#include "common/require.h"
#include "core/binomial.h"
#include "core/ft_ocbcast.h"
#include "core/ocbcast.h"
#include "core/onesided_sag.h"
#include "core/scatter_allgather.h"

namespace ocb::core {

std::unique_ptr<BroadcastAlgorithm> make_broadcast(scc::SccChip& chip,
                                                   const BcastSpec& spec) {
  switch (spec.kind) {
    case BcastKind::kOcBcast: {
      OcBcastOptions o;
      o.parties = spec.parties;
      o.k = spec.k;
      o.chunk_lines = spec.chunk_lines;
      o.double_buffering = spec.double_buffering;
      o.leaf_direct_to_memory = spec.leaf_direct_to_memory;
      o.sequential_notification = spec.sequential_notification;
      return std::make_unique<OcBcast>(chip, o);
    }
    case BcastKind::kBinomial: {
      BinomialOptions o;
      o.parties = spec.parties;
      return std::make_unique<BinomialBcast>(chip, o);
    }
    case BcastKind::kScatterAllgather: {
      ScatterAllgatherOptions o;
      o.parties = spec.parties;
      return std::make_unique<ScatterAllgatherBcast>(chip, o);
    }
    case BcastKind::kOneSidedScatterAllgather: {
      OneSidedSagOptions o;
      o.parties = spec.parties;
      return std::make_unique<OneSidedScatterAllgather>(chip, o);
    }
    case BcastKind::kFtOcBcast: {
      FtOcBcastOptions o;
      o.parties = spec.parties;
      o.k = spec.k;
      o.chunk_lines = spec.chunk_lines;
      o.double_buffering = spec.double_buffering;
      return std::make_unique<FtOcBcast>(chip, o);
    }
  }
  OCB_ENSURE(false, "unknown broadcast kind");
  return nullptr;
}

std::string spec_label(const BcastSpec& spec) {
  switch (spec.kind) {
    case BcastKind::kOcBcast: {
      std::ostringstream os;
      os << "k=" << spec.k;
      if (!spec.double_buffering) os << " (1buf)";
      if (spec.leaf_direct_to_memory) os << " (leaf-direct)";
      if (spec.sequential_notification) os << " (seq-notify)";
      return os.str();
    }
    case BcastKind::kBinomial:
      return "binomial";
    case BcastKind::kScatterAllgather:
      return "s-ag";
    case BcastKind::kOneSidedScatterAllgather:
      return "os-sag";
    case BcastKind::kFtOcBcast: {
      std::ostringstream os;
      os << "ft k=" << spec.k;
      if (!spec.double_buffering) os << " (1buf)";
      return os.str();
    }
  }
  return "?";
}

}  // namespace ocb::core
