#include "core/bcast.h"

#include <sstream>

#include "coll/registry.h"
#include "common/require.h"

namespace ocb::core {

namespace {

const char* registry_name(BcastKind kind) {
  switch (kind) {
    case BcastKind::kOcBcast: return "ocbcast";
    case BcastKind::kBinomial: return "binomial";
    case BcastKind::kScatterAllgather: return "scatter-allgather";
    case BcastKind::kOneSidedScatterAllgather: return "onesided-sag";
    case BcastKind::kFtOcBcast: return "ft-ocbcast";
  }
  OCB_ENSURE(false, "unknown broadcast kind");
  return "";
}

}  // namespace

std::unique_ptr<BroadcastAlgorithm> make_broadcast(scc::SccChip& chip,
                                                   const BcastSpec& spec) {
  coll::Params p;
  p.parties = spec.parties;
  p.k = spec.k;
  p.chunk_lines = spec.chunk_lines;
  p.double_buffering = spec.double_buffering;
  p.leaf_direct_to_memory = spec.leaf_direct_to_memory;
  p.sequential_notification = spec.sequential_notification;
  return coll::make(registry_name(spec.kind), chip, p);
}

std::string spec_label(const BcastSpec& spec) {
  switch (spec.kind) {
    case BcastKind::kOcBcast: {
      std::ostringstream os;
      os << "k=" << spec.k;
      if (!spec.double_buffering) os << " (1buf)";
      if (spec.leaf_direct_to_memory) os << " (leaf-direct)";
      if (spec.sequential_notification) os << " (seq-notify)";
      return os.str();
    }
    case BcastKind::kBinomial:
      return "binomial";
    case BcastKind::kScatterAllgather:
      return "s-ag";
    case BcastKind::kOneSidedScatterAllgather:
      return "os-sag";
    case BcastKind::kFtOcBcast: {
      std::ostringstream os;
      os << "ft k=" << spec.k;
      if (!spec.double_buffering) os << " (1buf)";
      return os.str();
    }
  }
  return "?";
}

}  // namespace ocb::core
