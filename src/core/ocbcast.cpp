#include "core/ocbcast.h"

#include <sstream>

#include "common/require.h"
#include "rma/rma.h"

namespace ocb::core {

OcBcast::OcBcast(scc::SccChip& chip, OcBcastOptions options)
    : chip_(&chip),
      options_(options),
      buffer_count_(options.double_buffering ? 2 : 1),
      fence_(chip,
             [&] {
               OCB_REQUIRE(options.parties >= 2 &&
                               options.parties <= chip.topology().num_cores(),
                           "party count out of range");
               OCB_REQUIRE(options.k >= 1 && options.k <= options.parties - 1,
                           "fan-out must be in [1, parties-1]");
               OCB_REQUIRE(options.chunk_lines >= 1,
                           "chunk must be at least one line");
               const std::size_t fence_base =
                   options.mpb_base_line + 1 + static_cast<std::size_t>(options.k) +
                   (options.double_buffering ? 2 : 1) * options.chunk_lines;
               OCB_REQUIRE(fence_base <= kMpbCacheLines,
                           "OC-Bcast layout (k+1 flags + buffers) exceeds the "
                           "256-line MPB");
               return fence_base;
             }(),
             options.parties) {
  const auto n = static_cast<std::size_t>(chip.topology().num_cores());
  chunks_so_far_.assign(n, 0);
  last_root_.assign(n, -1);
  const std::size_t end = options_.mpb_base_line + layout_lines();
  OCB_REQUIRE(end <= kMpbCacheLines,
              "OC-Bcast layout (k+1 flags + buffers + fence) exceeds the "
              "256-line MPB");
}

std::size_t OcBcast::fence_line() const {
  return options_.mpb_base_line + 1 + static_cast<std::size_t>(options_.k) +
         buffer_count_ * options_.chunk_lines;
}

std::size_t OcBcast::layout_lines() const {
  return 1 + static_cast<std::size_t>(options_.k) +
         buffer_count_ * options_.chunk_lines +
         static_cast<std::size_t>(fence_.rounds());
}

std::string OcBcast::name() const {
  std::ostringstream os;
  os << "oc-bcast k=" << options_.k;
  if (!options_.double_buffering) os << " single-buffer";
  if (options_.leaf_direct_to_memory) os << " leaf-direct";
  if (options_.sequential_notification) os << " seq-notify";
  return os.str();
}

std::size_t OcBcast::done_line(int child_slot) const {
  OCB_REQUIRE(child_slot >= 0 && child_slot < options_.k, "child slot out of range");
  return options_.mpb_base_line + 1 + static_cast<std::size_t>(child_slot);
}

std::size_t OcBcast::buffer_line(std::uint64_t parity) const {
  OCB_REQUIRE(parity < buffer_count_, "buffer parity out of range");
  return options_.mpb_base_line + 1 + static_cast<std::size_t>(options_.k) +
         parity * options_.chunk_lines;
}

sim::Task<void> OcBcast::wait_children_done(scc::Core& self,
                                            const std::vector<CoreId>& children,
                                            std::uint64_t minimum) {
  // doneFlags live in self's MPB, one line per child slot; poll each.
  for (std::size_t j = 0; j < children.size(); ++j) {
    co_await rma::wait_flag_at_least(
        self, rma::MpbAddr{self.id(), done_line(static_cast<int>(j))}, minimum);
  }
}

sim::Task<void> OcBcast::run(scc::Core& self, CoreId root, std::size_t offset,
                             std::size_t bytes) {
  OCB_REQUIRE(self.id() < options_.parties, "core is not a participant");
  OCB_REQUIRE(root >= 0 && root < options_.parties, "root is not a participant");
  OCB_REQUIRE(bytes > 0, "empty broadcast");

  const KaryTree tree(options_.parties, options_.k, root);
  const CoreId me = self.id();
  const CoreId parent = tree.parent_of(me);
  const std::vector<CoreId> children = tree.children_of(me);
  const std::vector<CoreId> forward = options_.sequential_notification
                                          ? std::vector<CoreId>{}
                                          : tree.notify_forward_targets(me);
  const std::vector<CoreId> own = options_.sequential_notification
                                      ? children
                                      : tree.notify_own_targets(me);
  const int my_slot = tree.child_position(me) - 1;  // slot in parent's doneFlags

  const std::size_t m_lines = cache_lines_for(bytes);
  const std::size_t chunk = options_.chunk_lines;
  const std::size_t n_chunks = (m_lines + chunk - 1) / chunk;
  const std::uint64_t base = chunks_so_far_[static_cast<std::size_t>(me)];
  chunks_so_far_[static_cast<std::size_t>(me)] += n_chunks;

  // A root change rebuilds the tree and reassigns every flag line's
  // writer; fence so no straggler can confuse this call's flags with the
  // previous call's (see the header). Same-root sequences never fence.
  const CoreId prev_root = last_root_[static_cast<std::size_t>(me)];
  last_root_[static_cast<std::size_t>(me)] = root;
  if (prev_root != -1 && prev_root != root) {
    co_await fence_.wait(self);
  }

  const bool leaf_direct = children.empty() && options_.leaf_direct_to_memory;

  for (std::size_t c = 0; c < n_chunks; ++c) {
    const std::uint64_t seq = base + c + 1;
    const std::uint64_t parity = (base + c) % buffer_count_;
    const std::size_t lines = c + 1 < n_chunks ? chunk : m_lines - (n_chunks - 1) * chunk;
    const std::size_t mem_off = offset + c * chunk * kCacheLineBytes;
    // Buffer-slot reuse: safe once every child consumed the chunk written
    // `buffer_count_` chunks ago. For this message's first chunks there is
    // nothing to wait for — the previous broadcast's end-wait already
    // proved every buffer free, and the doneFlag slots may belong to
    // different cores now (the tree changes with the root), so a non-zero
    // threshold could reference values never written.
    const std::uint64_t reuse_min = c >= buffer_count_ ? seq - buffer_count_ : 0;

    if (me == root) {
      self.set_stage("oc-bcast:root-stage");
      co_await wait_children_done(self, children, reuse_min);
      co_await rma::put_mem_to_mpb(self, rma::MpbAddr{me, buffer_line(parity)},
                                   mem_off, lines);
      for (CoreId target : own) {
        co_await rma::set_flag(self, rma::MpbAddr{target, notify_line()}, seq);
      }
      continue;
    }

    // Detect the chunk announcement...
    self.set_stage("oc-bcast:detect");
    co_await rma::wait_flag_at_least(self, rma::MpbAddr{me, notify_line()}, seq);
    // (i) ...and forward it within the parent's group first, so deeper
    // siblings start their gets as early as possible.
    for (CoreId target : forward) {
      co_await rma::set_flag(self, rma::MpbAddr{target, notify_line()}, seq);
    }
    if (!children.empty()) {
      co_await wait_children_done(self, children, reuse_min);
    }
    self.set_stage("oc-bcast:relay");
    if (leaf_direct) {
      // §5.4: a leaf needs no staging copy — straight to private memory.
      co_await rma::get_mpb_to_mem(self, mem_off,
                                   rma::MpbAddr{parent, buffer_line(parity)}, lines);
      co_await rma::set_flag(self, rma::MpbAddr{parent, done_line(my_slot)}, seq);
      continue;
    }
    // (ii) copy the chunk from the parent's MPB into the own MPB.
    co_await rma::get_mpb_to_mpb(self, buffer_line(parity),
                                 rma::MpbAddr{parent, buffer_line(parity)}, lines);
    // (iii) tell the parent this chunk was consumed.
    co_await rma::set_flag(self, rma::MpbAddr{parent, done_line(my_slot)}, seq);
    // (iv) announce to the own group's notification tree.
    for (CoreId target : own) {
      co_await rma::set_flag(self, rma::MpbAddr{target, notify_line()}, seq);
    }
    // (v) land the chunk in private memory.
    co_await rma::get_mpb_to_mem(self, mem_off, rma::MpbAddr{me, buffer_line(parity)},
                                 lines);
  }

  // Free-MPB guarantee before returning: all children consumed every chunk
  // (for the root with k = P-1 this is the "47 flags to poll" of §5.2.3).
  self.set_stage("oc-bcast:drain");
  co_await wait_children_done(self, children, base + n_chunks);
}

}  // namespace ocb::core
