#include "core/hier_bcast.h"

#include <algorithm>
#include <sstream>

#include "common/require.h"
#include "core/tree.h"
#include "noc/topology.h"
#include "rma/flags.h"
#include "rma/rma.h"

namespace ocb::core {

namespace {

/// Clamped fan-out for a subtree over `nodes` members (KaryTree requires
/// k <= parties - 1; callers guarantee nodes >= 2).
int subtree_fanout(int requested, int nodes) {
  return std::min(requested, nodes - 1);
}

}  // namespace

HierarchicalBcast::HierarchicalBcast(scc::SccChip& chip,
                                     HierarchicalBcastOptions options)
    : chip_(&chip),
      options_([&] {
        if (options.parties == 0) {
          options.parties = chip.topology().num_cores();
        }
        return options;
      }()),
      buffer_count_(options.double_buffering ? 2 : 1),
      fence_(chip,
             [&] {
               OCB_REQUIRE(options_.parties >= 2 &&
                               options_.parties <= chip.topology().num_cores(),
                           "party count out of range");
               OCB_REQUIRE(options_.k >= 1, "intra-die fan-out must be >= 1");
               OCB_REQUIRE(options_.die_k >= 1, "die fan-out must be >= 1");
               OCB_REQUIRE(options_.chunk_lines >= 1,
                           "chunk must be at least one line");
               return options_.mpb_base_line + 1 +
                      static_cast<std::size_t>(options_.k + options_.die_k) +
                      buffer_count_ * options_.chunk_lines;
             }(),
             options_.parties) {
  const auto n = static_cast<std::size_t>(chip.topology().num_cores());
  chunks_so_far_.assign(n, 0);
  last_root_.assign(n, -1);
  OCB_REQUIRE(options_.mpb_base_line + layout_lines() <= kMpbCacheLines,
              "hier-ocbcast layout (k+die_k+1 flags + buffers + fence) "
              "exceeds the 256-line MPB");
}

std::size_t HierarchicalBcast::done_line(int slot) const {
  OCB_REQUIRE(slot >= 0 && slot < options_.k + options_.die_k,
              "done slot out of range");
  return options_.mpb_base_line + 1 + static_cast<std::size_t>(slot);
}

std::size_t HierarchicalBcast::buffer_line(std::uint64_t parity) const {
  OCB_REQUIRE(parity < buffer_count_, "buffer parity out of range");
  return options_.mpb_base_line + 1 +
         static_cast<std::size_t>(options_.k + options_.die_k) +
         parity * options_.chunk_lines;
}

std::size_t HierarchicalBcast::fence_line() const {
  return options_.mpb_base_line + 1 +
         static_cast<std::size_t>(options_.k + options_.die_k) +
         buffer_count_ * options_.chunk_lines;
}

std::size_t HierarchicalBcast::layout_lines() const {
  return 1 + static_cast<std::size_t>(options_.k + options_.die_k) +
         buffer_count_ * options_.chunk_lines +
         static_cast<std::size_t>(fence_.rounds());
}

std::string HierarchicalBcast::name() const {
  std::ostringstream os;
  os << "hier-ocbcast k=" << options_.k << " die-k=" << options_.die_k;
  if (!options_.double_buffering) os << " single-buffer";
  return os.str();
}

HierarchicalBcast::Plan HierarchicalBcast::plan_for(CoreId me,
                                                    CoreId root) const {
  const noc::Topology& topo = chip_->topology();
  Plan plan;

  // Participating dies in die-index order, each with its members (already
  // sorted by core id) and its leader: the global root in the root's die,
  // the lowest participating id elsewhere.
  std::vector<int> part_dies;
  std::vector<CoreId> leaders;
  const int root_die = topo.die_of_core(root);
  std::vector<CoreId> my_members;
  const int my_die = topo.die_of_core(me);
  for (int d = 0; d < topo.num_dies(); ++d) {
    std::vector<CoreId> members;
    for (CoreId c : topo.cores_of_die(d)) {
      if (c < options_.parties) members.push_back(c);
    }
    if (members.empty()) continue;
    part_dies.push_back(d);
    leaders.push_back(d == root_die ? root : members.front());
    if (d == my_die) my_members = std::move(members);
  }
  const int num_part = static_cast<int>(part_dies.size());
  const auto die_pos = [&](int die) {
    return static_cast<int>(std::lower_bound(part_dies.begin(),
                                             part_dies.end(), die) -
                            part_dies.begin());
  };
  const int my_pos = die_pos(my_die);
  const CoreId my_leader = leaders[static_cast<std::size_t>(my_pos)];

  // Intra-die tree over the die's members (local ranks), rooted at the
  // leader's local rank; every edge stays on-die.
  const int m = static_cast<int>(my_members.size());
  const auto local_rank = [&](CoreId c) {
    return static_cast<int>(std::lower_bound(my_members.begin(),
                                             my_members.end(), c) -
                            my_members.begin());
  };
  if (m > 1) {
    const KaryTree intra(m, subtree_fanout(options_.k, m),
                         local_rank(my_leader));
    const int my_rank = local_rank(me);
    const CoreId parent_rank = intra.parent_of(my_rank);
    if (parent_rank != -1) {
      plan.parent = my_members[static_cast<std::size_t>(parent_rank)];
      plan.my_slot = intra.child_position(my_rank) - 1;
    }
    for (CoreId child_rank : intra.children_of(my_rank)) {
      plan.children.push_back(
          my_members[static_cast<std::size_t>(child_rank)]);
      plan.child_slots.push_back(static_cast<int>(plan.children.size()) - 1);
    }
  }

  // Relay tree over die leaders: the only interposer-crossing edges.
  // Slots k..k+die_k-1 keep leader done-flags apart from intra ones.
  if (me == my_leader && num_part > 1) {
    const KaryTree relay(num_part, subtree_fanout(options_.die_k, num_part),
                         die_pos(root_die));
    const CoreId parent_pos = relay.parent_of(my_pos);
    if (parent_pos != -1) {
      plan.parent = leaders[static_cast<std::size_t>(parent_pos)];
      plan.my_slot = options_.k + relay.child_position(my_pos) - 1;
    }
    for (CoreId child_pos : relay.children_of(my_pos)) {
      plan.children.push_back(leaders[static_cast<std::size_t>(child_pos)]);
      plan.child_slots.push_back(options_.k + relay.child_position(child_pos) -
                                 1);
    }
  }
  return plan;
}

sim::Task<void> HierarchicalBcast::wait_children_done(scc::Core& self,
                                                      const Plan& plan,
                                                      std::uint64_t minimum) {
  for (std::size_t j = 0; j < plan.children.size(); ++j) {
    co_await rma::wait_flag_at_least(
        self, rma::MpbAddr{self.id(), done_line(plan.child_slots[j])},
        minimum);
  }
}

sim::Task<void> HierarchicalBcast::run(scc::Core& self, CoreId root,
                                       std::size_t offset, std::size_t bytes) {
  OCB_REQUIRE(self.id() < options_.parties, "core is not a participant");
  OCB_REQUIRE(root >= 0 && root < options_.parties,
              "root is not a participant");
  OCB_REQUIRE(bytes > 0, "empty broadcast");

  const CoreId me = self.id();
  const Plan plan = plan_for(me, root);

  const std::size_t m_lines = cache_lines_for(bytes);
  const std::size_t chunk = options_.chunk_lines;
  const std::size_t n_chunks = (m_lines + chunk - 1) / chunk;
  const std::uint64_t base = chunks_so_far_[static_cast<std::size_t>(me)];
  chunks_so_far_[static_cast<std::size_t>(me)] += n_chunks;

  // Root changes rebuild both trees and reassign every flag line's writer;
  // fence exactly as plain OC-Bcast does (see core/ocbcast.h).
  const CoreId prev_root = last_root_[static_cast<std::size_t>(me)];
  last_root_[static_cast<std::size_t>(me)] = root;
  if (prev_root != -1 && prev_root != root) {
    co_await fence_.wait(self);
  }

  for (std::size_t c = 0; c < n_chunks; ++c) {
    const std::uint64_t seq = base + c + 1;
    const std::uint64_t parity = (base + c) % buffer_count_;
    const std::size_t lines =
        c + 1 < n_chunks ? chunk : m_lines - (n_chunks - 1) * chunk;
    const std::size_t mem_off = offset + c * chunk * kCacheLineBytes;
    const std::uint64_t reuse_min =
        c >= buffer_count_ ? seq - buffer_count_ : 0;

    if (me == root) {
      self.set_stage("hier:root-stage");
      co_await wait_children_done(self, plan, reuse_min);
      co_await rma::put_mem_to_mpb(self, rma::MpbAddr{me, buffer_line(parity)},
                                   mem_off, lines);
      for (CoreId target : plan.children) {
        co_await rma::set_flag(self, rma::MpbAddr{target, notify_line()}, seq);
      }
      continue;
    }

    self.set_stage("hier:detect");
    co_await rma::wait_flag_at_least(self, rma::MpbAddr{me, notify_line()},
                                     seq);
    co_await wait_children_done(self, plan, reuse_min);
    self.set_stage("hier:relay");
    // Get from the parent's staged buffer — the mesh charges the interposer
    // toll automatically when parent and self sit on different dies (die
    // leaders are the only cores for which that happens).
    co_await rma::get_mpb_to_mpb(self, buffer_line(parity),
                                 rma::MpbAddr{plan.parent, buffer_line(parity)},
                                 lines);
    co_await rma::set_flag(
        self, rma::MpbAddr{plan.parent, done_line(plan.my_slot)}, seq);
    for (CoreId target : plan.children) {
      co_await rma::set_flag(self, rma::MpbAddr{target, notify_line()}, seq);
    }
    co_await rma::get_mpb_to_mem(self, mem_off,
                                 rma::MpbAddr{me, buffer_line(parity)}, lines);
  }

  self.set_stage("hier:drain");
  co_await wait_children_done(self, plan, base + n_chunks);
}

}  // namespace ocb::core
