// Hierarchical OC-Bcast for multi-die chips ("hier-ocbcast").
//
// On a single-die mesh every MPB-to-MPB hop costs the same per router, so
// the flat k-ary OC-Bcast tree is oblivious to placement. On a multi-die
// topology (noc::Topology with dies_x*dies_y > 1) links that cross a die
// boundary ride the interposer and pay extra latency and occupancy per
// packet — a flat tree scatters die crossings over arbitrary parent/child
// pairs and pays the interposer toll many times per chunk.
//
// HierarchicalBcast restructures propagation around the die boundary:
//
//   * one designated *leader* per participating die (the broadcast root in
//     its own die, the lowest participating core id elsewhere);
//   * leaders form a small k-ary relay tree over the dies — the only edges
//     that cross the interposer, one get per (die, chunk);
//   * inside each die the leader re-broadcasts over a die-local k-ary
//     OC-Bcast tree whose every edge stays on-die.
//
// The per-chunk protocol is OC-Bcast's (stage in own MPB, children get in
// parallel, doneFlags for buffer reuse, absolute-sequence flags, root-change
// fence), with one simplification: parents notify their children directly
// (sequential notification) rather than through the binary in-group
// notification tree — fan-outs here are small (intra-die trees span one die;
// the die tree spans the die count) so the latency argument of §4.1 carries
// little weight, and the uniform structure keeps slot assignment trivial.
//
// MPB layout per core (base b, intra fan-out k, die fan-out dk, B buffers
// of m lines):
//
//   b+0                       notifyFlag
//   b+1       .. b+k          intra-die doneFlag[k]
//   b+k+1     .. b+k+dk       die-leader doneFlag[dk]
//   b+k+dk+1  .. +B*m         buffer 0 [, buffer 1]
//   then                      fence barrier lines (root changes)
//
// On a single-die topology the die tree is empty and this degrades to plain
// OC-Bcast with sequential notification (plus dk idle flag lines).
#pragma once

#include <cstdint>
#include <vector>

#include "core/bcast.h"
#include "rma/barrier.h"

namespace ocb::core {

struct HierarchicalBcastOptions {
  /// Participating cores 0..parties-1; 0 = every core of the chip.
  int parties = 0;
  int k = 7;       ///< intra-die propagation fan-out
  int die_k = 4;   ///< fan-out of the relay tree over die leaders
  std::size_t chunk_lines = 96;
  bool double_buffering = true;
  std::size_t mpb_base_line = 0;
};

class HierarchicalBcast final : public BroadcastAlgorithm {
 public:
  HierarchicalBcast(scc::SccChip& chip, HierarchicalBcastOptions options = {});

  std::string name() const override;
  int parties() const override { return options_.parties; }
  sim::Task<void> run(scc::Core& self, CoreId root, std::size_t offset,
                      std::size_t bytes) override;

  const HierarchicalBcastOptions& options() const { return options_; }

  // MPB layout (exposed for tests).
  std::size_t notify_line() const { return options_.mpb_base_line; }
  /// Done-flag line for slot in [0, k + die_k): intra-die children occupy
  /// slots 0..k-1, die-child leaders k..k+die_k-1.
  std::size_t done_line(int slot) const;
  std::size_t buffer_line(std::uint64_t parity) const;
  std::size_t fence_line() const;
  std::size_t layout_lines() const;

 private:
  /// Per-core view of the two-level tree for one (root, parties) instance.
  struct Plan {
    CoreId parent = -1;  ///< get/done peer (-1 at the global root)
    int my_slot = -1;    ///< done-flag slot in parent's MPB
    std::vector<CoreId> children;  ///< slot order = child_slots order
    std::vector<int> child_slots;  ///< done-flag slot in OWN MPB per child
  };
  Plan plan_for(CoreId me, CoreId root) const;

  sim::Task<void> wait_children_done(scc::Core& self, const Plan& plan,
                                     std::uint64_t minimum);

  scc::SccChip* chip_;
  HierarchicalBcastOptions options_;
  std::size_t buffer_count_;
  rma::FlagBarrier fence_;
  std::vector<std::uint64_t> chunks_so_far_;
  std::vector<CoreId> last_root_;
};

}  // namespace ocb::core
