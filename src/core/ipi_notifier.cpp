#include "core/ipi_notifier.h"

#include "common/require.h"

namespace ocb::core {

IpiNotifier::IpiNotifier(int parties) : parties_(parties) {
  // No chip here to bound against; send_interrupt validates each target
  // id against the chip topology at use.
  OCB_REQUIRE(parties >= 2, "party count out of range");
}

sim::Task<void> IpiNotifier::forward(scc::Core& self, CoreId root) {
  const KaryTree tree(parties_, /*k=*/2, root);
  for (CoreId child : tree.children_of(self.id())) {
    co_await self.send_interrupt(child);
  }
}

sim::Task<void> IpiNotifier::notify(scc::Core& root) {
  OCB_REQUIRE(root.id() < parties_, "core is not a participant");
  co_await forward(root, root.id());
}

sim::Task<void> IpiNotifier::await(scc::Core& self, CoreId root) {
  OCB_REQUIRE(self.id() < parties_ && self.id() != root,
              "await is for non-root participants");
  co_await self.wait_interrupt();
  co_await forward(self, root);
}

sim::Task<bool> IpiNotifier::try_await(scc::Core& self, CoreId root) {
  OCB_REQUIRE(self.id() < parties_ && self.id() != root,
              "try_await is for non-root participants");
  // Local first: GCC 12 miscompiles `co_await` in an if-condition.
  const bool taken = co_await self.poll_interrupt();
  if (!taken) co_return false;
  co_await forward(self, root);
  co_return true;
}

}  // namespace ocb::core
