#include "core/ocreduce.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/require.h"

namespace ocb::core {

namespace {

constexpr std::size_t kDoublesPerLine = kCacheLineBytes / sizeof(double);

double combine(ReduceOp op, double a, double b) {
  switch (op) {
    case ReduceOp::kSum:
      return a + b;
    case ReduceOp::kMin:
      return std::min(a, b);
    case ReduceOp::kMax:
      return std::max(a, b);
  }
  return a;
}

}  // namespace

const char* reduce_op_name(ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum:
      return "sum";
    case ReduceOp::kMin:
      return "min";
    case ReduceOp::kMax:
      return "max";
  }
  return "?";
}

OcReduce::OcReduce(scc::SccChip& chip, OcReduceOptions options)
    : chip_(&chip),
      options_(options),
      fence_(chip,
             [&] {
               OCB_REQUIRE(options.parties >= 2 &&
                               options.parties <= chip.topology().num_cores(),
                           "party count out of range");
               OCB_REQUIRE(options.k >= 1 && options.k <= options.parties - 1,
                           "fan-out must be in [1, parties-1]");
               OCB_REQUIRE(options.chunk_lines >= 1,
                           "chunk must be at least one line");
               const std::size_t fence_base =
                   options.mpb_base_line + 1 + static_cast<std::size_t>(options.k) +
                   2 * options.chunk_lines;
               OCB_REQUIRE(
                   fence_base <= kMpbCacheLines,
                   "OC-Reduce layout (k+1 flags + buffers) exceeds the 256-line MPB");
               return fence_base;
             }(),
             options.parties) {
  const auto n = static_cast<std::size_t>(chip.topology().num_cores());
  chunks_so_far_.assign(n, 0);
  last_root_.assign(n, -1);
  OCB_REQUIRE(options_.mpb_base_line + layout_lines() <= kMpbCacheLines,
              "OC-Reduce layout (k+1 flags + buffers + fence) exceeds the "
              "256-line MPB");
}

std::size_t OcReduce::layout_lines() const {
  return 1 + static_cast<std::size_t>(options_.k) + 2 * options_.chunk_lines +
         static_cast<std::size_t>(fence_.rounds());
}

std::size_t OcReduce::ready_line(int child_slot) const {
  OCB_REQUIRE(child_slot >= 0 && child_slot < options_.k, "child slot out of range");
  return options_.mpb_base_line + 1 + static_cast<std::size_t>(child_slot);
}

std::size_t OcReduce::buffer_line(std::uint64_t parity) const {
  OCB_REQUIRE(parity < 2, "buffer parity out of range");
  return options_.mpb_base_line + 1 + static_cast<std::size_t>(options_.k) +
         parity * options_.chunk_lines;
}

sim::Task<void> OcReduce::run(scc::Core& self, CoreId root, std::size_t in_offset,
                              std::size_t out_offset, std::size_t count,
                              ReduceOp op) {
  OCB_REQUIRE(self.id() < options_.parties, "core is not a participant");
  OCB_REQUIRE(root >= 0 && root < options_.parties, "root is not a participant");
  OCB_REQUIRE(count > 0, "empty reduction");
  OCB_REQUIRE(in_offset % kCacheLineBytes == 0 && out_offset % kCacheLineBytes == 0,
              "reduction buffers must be line-aligned");

  const KaryTree tree(options_.parties, options_.k, root);
  const CoreId me = self.id();
  const CoreId parent = tree.parent_of(me);
  const std::vector<CoreId> children = tree.children_of(me);
  const int my_slot = tree.child_position(me) - 1;

  const std::size_t chunk_elems = options_.chunk_lines * kDoublesPerLine;
  const std::size_t n_chunks = (count + chunk_elems - 1) / chunk_elems;
  const std::uint64_t base = chunks_so_far_[static_cast<std::size_t>(me)];
  chunks_so_far_[static_cast<std::size_t>(me)] += n_chunks;

  // Fence on a root change: the tree (and hence every flag line's writer)
  // changes, and a straggler must not mistake this call's flags for its
  // previous call's (see ocbcast.h; same hazard, mirrored).
  const CoreId prev_root = last_root_[static_cast<std::size_t>(me)];
  last_root_[static_cast<std::size_t>(me)] = root;
  if (prev_root != -1 && prev_root != root) {
    co_await fence_.wait(self);
  }

  std::vector<double> acc(chunk_elems);
  std::vector<double> incoming(kDoublesPerLine);

  for (std::size_t c = 0; c < n_chunks; ++c) {
    const std::uint64_t seq = base + c + 1;
    const std::uint64_t parity = (base + c) % 2;
    const std::size_t elems = std::min(chunk_elems, count - c * chunk_elems);
    const std::size_t lines = (elems + kDoublesPerLine - 1) / kDoublesPerLine;
    const std::size_t chunk_byte0 = c * options_.chunk_lines * kCacheLineBytes;

    // 1. Own contribution: simulated reads from private memory (cache
    //    effects apply), values into the host-side accumulator.
    for (std::size_t i = 0; i < lines; ++i) {
      CacheLine cl;
      co_await self.mem_read_line(in_offset + chunk_byte0 + i * kCacheLineBytes, cl);
      std::memcpy(acc.data() + i * kDoublesPerLine, cl.bytes.data(), kCacheLineBytes);
    }

    // 2. Merge every child's staged chunk: poll its readyFlag (local), read
    //    the lines straight out of the child's MPB, merge in registers,
    //    release the child's buffer.
    self.set_stage("oc-reduce:merge");
    for (std::size_t j = 0; j < children.size(); ++j) {
      const CoreId child = children[j];
      co_await rma::wait_flag_at_least(
          self, rma::MpbAddr{me, ready_line(static_cast<int>(j))}, seq);
      for (std::size_t i = 0; i < lines; ++i) {
        CacheLine cl;
        co_await self.mpb_read_line(child, buffer_line(parity) + i, cl);
        std::memcpy(incoming.data(), cl.bytes.data(), kCacheLineBytes);
        const std::size_t first = i * kDoublesPerLine;
        const std::size_t n = std::min(kDoublesPerLine, elems - std::min(elems, first));
        for (std::size_t e = 0; e < n; ++e) {
          acc[first + e] = combine(op, acc[first + e], incoming[e]);
        }
      }
      co_await rma::set_flag(self, rma::MpbAddr{child, consumed_line()}, seq);
    }
    if (!children.empty()) {
      co_await self.busy(static_cast<sim::Duration>(children.size()) *
                         static_cast<sim::Duration>(elems) * options_.op_cost);
    }

    // 3. Deliver: the root writes the chunk to its output region; everyone
    //    else stages it for the parent (register-to-MPB writes) and
    //    announces.
    if (me == root) {
      for (std::size_t i = 0; i < lines; ++i) {
        CacheLine cl;
        std::memcpy(cl.bytes.data(), acc.data() + i * kDoublesPerLine,
                    kCacheLineBytes);
        co_await self.mem_write_line(out_offset + chunk_byte0 + i * kCacheLineBytes,
                                     cl);
      }
      continue;
    }
    // Reuse the buffer slot only once the parent consumed what was staged
    // there two chunks ago (first chunks: the previous call's end-wait
    // already proved the buffers free).
    self.set_stage("oc-reduce:stage");
    const std::uint64_t reuse_min = c >= 2 ? seq - 2 : 0;
    co_await rma::wait_flag_at_least(self, rma::MpbAddr{me, consumed_line()},
                                     reuse_min);
    for (std::size_t i = 0; i < lines; ++i) {
      CacheLine cl;
      std::memcpy(cl.bytes.data(), acc.data() + i * kDoublesPerLine, kCacheLineBytes);
      co_await self.mpb_write_line(me, buffer_line(parity) + i, cl);
    }
    co_await rma::set_flag(self, rma::MpbAddr{parent, ready_line(my_slot)}, seq);
  }

  // Free-MPB guarantee: the parent has consumed every staged chunk before
  // this call returns (mirrors OcBcast's end-wait).
  if (me != root) {
    co_await rma::wait_flag_at_least(self, rma::MpbAddr{me, consumed_line()},
                                     base + n_chunks);
  }
}

OcAllreduce::OcAllreduce(scc::SccChip& chip, OcAllreduceOptions options)
    : reduce_(chip,
              [&] {
                OcReduceOptions r;
                r.parties = options.parties;
                r.k = options.reduce_k;
                r.chunk_lines = options.chunk_lines;
                r.op_cost = options.op_cost;
                r.mpb_base_line = 0;
                return r;
              }()),
      bcast_(chip, [&] {
        OcBcastOptions b;
        b.parties = options.parties;
        b.k = options.bcast_k;
        b.chunk_lines = options.chunk_lines;
        // The reduce layout occupies [0, 1 + reduce_k + 2*chunk + fence).
        b.mpb_base_line = 1 + static_cast<std::size_t>(options.reduce_k) +
                          2 * options.chunk_lines + 6;
        return b;
      }()) {}

sim::Task<void> OcAllreduce::run(scc::Core& self, std::size_t in_offset,
                                 std::size_t out_offset, std::size_t count,
                                 ReduceOp op) {
  constexpr CoreId kRoot = 0;
  co_await reduce_.run(self, kRoot, in_offset, out_offset, count, op);
  co_await bcast_.run(self, kRoot, out_offset, count * sizeof(double));
}

}  // namespace ocb::core
