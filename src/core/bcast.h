// Common broadcast-algorithm interface.
//
// MPI-style collective contract: every participating core calls run() with
// matching arguments (same root, same byte count); the root's private
// memory at [offset, offset+bytes) holds the message, every other core's
// same region receives it. run() returns (per core) when that core is done
// per the algorithm's semantics — the paper's latency is the time at which
// the *last* core returns.
#pragma once

#include <memory>
#include <string>

#include "scc/chip.h"
#include "sim/task.h"

namespace ocb::core {

class BroadcastAlgorithm {
 public:
  virtual ~BroadcastAlgorithm() = default;

  /// Human-readable name ("oc-bcast k=7", "binomial", ...).
  virtual std::string name() const = 0;

  /// Number of participating cores (ids 0..parties-1).
  virtual int parties() const = 0;

  /// The collective call; invoke once per participating core per broadcast.
  virtual sim::Task<void> run(scc::Core& self, CoreId root, std::size_t offset,
                              std::size_t bytes) = 0;
};

/// Which algorithm to instantiate (factory in bcast.cpp).
enum class BcastKind {
  kOcBcast,          ///< the paper's contribution (§4)
  kBinomial,         ///< RCCE_comm binomial tree on two-sided send/recv
  kScatterAllgather, ///< RCCE_comm scatter-allgather on two-sided send/recv
  /// Extension (paper §5.4's suggestion): scatter-allgather re-built on
  /// one-sided primitives with MPB staging.
  kOneSidedScatterAllgather,
  /// Extension: OC-Bcast hardened against the ocb::fault failure model
  /// (checksums, watchdogs, crash re-routing); see core/ft_ocbcast.h.
  kFtOcBcast,
};

struct BcastSpec {
  BcastKind kind = BcastKind::kOcBcast;
  int parties = kNumCores;
  // OC-Bcast specific:
  int k = 7;
  std::size_t chunk_lines = 96;
  bool double_buffering = true;
  bool leaf_direct_to_memory = false;
  bool sequential_notification = false;
};

/// Creates the algorithm over `chip`. Algorithms own their MPB layout and
/// protocol state; run at most one algorithm instance per chip lifetime
/// (their flag lines overlap by design — each assumes exclusive use).
std::unique_ptr<BroadcastAlgorithm> make_broadcast(scc::SccChip& chip,
                                                   const BcastSpec& spec);

/// Short display name for a spec ("k=7", "binomial", "s-ag"), matching the
/// paper's figure legends.
std::string spec_label(const BcastSpec& spec);

}  // namespace ocb::core
