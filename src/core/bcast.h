// Broadcast selection by enum kind.
//
// The interface itself lives in coll/collective.h (BroadcastAlgorithm is an
// alias of coll::Collective); concrete algorithms also register factories
// under string keys in coll/registry.h, which is the preferred selection
// surface for harnesses and benches. This header keeps the enum-keyed
// BcastSpec for callers that enumerate the paper's fixed algorithm set.
#pragma once

#include <memory>
#include <string>

#include "coll/collective.h"
#include "scc/chip.h"

namespace ocb::core {

/// The collective interface (see coll/collective.h).
using BroadcastAlgorithm = coll::Collective;

/// Which algorithm to instantiate (factory in bcast.cpp).
enum class BcastKind {
  kOcBcast,          ///< the paper's contribution (§4)
  kBinomial,         ///< RCCE_comm binomial tree on two-sided send/recv
  kScatterAllgather, ///< RCCE_comm scatter-allgather on two-sided send/recv
  /// Extension (paper §5.4's suggestion): scatter-allgather re-built on
  /// one-sided primitives with MPB staging.
  kOneSidedScatterAllgather,
  /// Extension: OC-Bcast hardened against the ocb::fault failure model
  /// (checksums, watchdogs, crash re-routing); see core/ft_ocbcast.h.
  kFtOcBcast,
};

struct BcastSpec {
  BcastKind kind = BcastKind::kOcBcast;
  int parties = kNumCores;
  // OC-Bcast specific:
  int k = 7;
  std::size_t chunk_lines = 96;
  bool double_buffering = true;
  bool leaf_direct_to_memory = false;
  bool sequential_notification = false;
};

/// Creates the algorithm over `chip`. Algorithms own their MPB layout and
/// protocol state; run at most one algorithm instance per chip lifetime
/// (their flag lines overlap by design — each assumes exclusive use).
std::unique_ptr<BroadcastAlgorithm> make_broadcast(scc::SccChip& chip,
                                                   const BcastSpec& spec);

/// Short display name for a spec ("k=7", "binomial", "s-ag"), matching the
/// paper's figure legends.
std::string spec_label(const BcastSpec& spec);

}  // namespace ocb::core
