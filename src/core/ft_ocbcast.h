// FT-OC-Bcast: OC-Bcast hardened against the ocb::fault failure model.
//
// Same pipelined k-ary propagation + binary notification structure as
// core/ocbcast.h, with three additions that buy fault tolerance for a few
// extra control-line transactions per chunk (<5% zero-fault overhead):
//
//  * End-to-end checksums. Every stager publishes a per-buffer "staged
//    line" — (chunk sequence, FNV-1a 64 of the chunk) in one cache line —
//    next to its payload buffers. Getters fold the checksum over the lines
//    they actually observed (rma/checksum.h) and re-fetch on mismatch, so
//    transient read corruption never propagates down the tree or into
//    private memory.
//
//  * Watchdogs + reliable flag writes. Every flag wait carries a deadline
//    (rma/reliable.h); control-line writes are verified by read-back with
//    doubling backoff. A lost notification degrades to polling the source's
//    staged line (the ground truth); a stuck done-line is ridden out by the
//    writer's retries.
//
//  * Crash routing ("frontier substitution"). A fail-stopped core's tile
//    SRAM stays readable, and — by the ack-after-stage invariant — every
//    chunk it ever acked is still staged in its frozen MPB, checksummed.
//    Orphans whose source stops advancing presume it dead and re-route
//    their gets one level up (static tree walk toward the root); the dead
//    core's parent substitutes the missing done-flag by reading the
//    *grandchildren's* done lines directly out of the dead core's MPB.
//    One non-root fail-stop is thus survived with every living core still
//    delivering a byte-correct message.
//
// Out of model (documented in docs/PROTOCOLS.md §"Failure model"): root
// crashes, simultaneous crashes, write-side payload corruption (the real
// SCC's write path is acknowledged per line; DRAM carries ECC), and stalls
// exceeding the watchdog probe budget. A core that exhausts its bounded
// retries gives up and reports it (DeliveryReport::gave_up) instead of
// wedging the survivors.
//
// MPB layout per core (base b, fan-out k, B buffers of m lines):
//
//   b+0                      notifyFlag (sequence hint)
//   b+1      .. b+k          doneFlag[k]
//   b+k+1    .. b+k+B        staged line per buffer: (seq, checksum)
//   b+k+B+1  .. +B*m         buffer 0 [, buffer 1]
//   then                     fence barrier lines (root changes)
//
// Defaults (k=7, B=2, m=96): 208 of 256 lines.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/bcast.h"
#include "core/tree.h"
#include "rma/barrier.h"
#include "rma/reliable.h"

namespace ocb::core {

struct FtOcBcastOptions {
  int parties = kNumCores;
  int k = 7;
  std::size_t chunk_lines = 96;
  bool double_buffering = true;
  std::size_t mpb_base_line = 0;
  /// Watchdog deadline + reliable-write retry policy for all control lines.
  rma::WatchdogPolicy watchdog;
  /// Consecutive watchdog expiries without progress before a silent peer is
  /// presumed dead. A live peer must make per-chunk progress faster than
  /// probe_attempts * watchdog.timeout or it will be routed around.
  int probe_attempts = 3;
  /// Checksum-mismatch refetches before a fetch counts as a failed attempt.
  int get_retries = 3;
  /// Total detect+fetch attempts per chunk before a core gives up.
  int max_chunk_attempts = 64;
};

/// Per-core outcome of the last run() (host-side, zero simulated cost).
struct DeliveryReport {
  bool participated = false;
  bool delivered = false;  ///< all chunks landed byte-correct in private mem
  bool gave_up = false;    ///< exhausted max_chunk_attempts; returned early
  std::uint64_t checksum_retries = 0;   ///< refetches after a sum mismatch
  std::uint64_t watchdog_timeouts = 0;  ///< flag waits that hit the deadline
  std::uint64_t reroutes = 0;           ///< data-source switches (crash path)
  std::uint64_t substituted_acks = 0;   ///< dead-child acks read from its MPB
};

class FtOcBcast final : public BroadcastAlgorithm {
 public:
  FtOcBcast(scc::SccChip& chip, FtOcBcastOptions options = {});

  std::string name() const override;
  int parties() const override { return options_.parties; }
  sim::Task<void> run(scc::Core& self, CoreId root, std::size_t offset,
                      std::size_t bytes) override;

  const FtOcBcastOptions& options() const { return options_; }
  const DeliveryReport& report(CoreId core) const {
    return reports_[static_cast<std::size_t>(core)];
  }
  void reset_reports() {
    std::fill(reports_.begin(), reports_.end(), DeliveryReport{});
  }

  // MPB layout (exposed for tests).
  std::size_t notify_line() const { return options_.mpb_base_line; }
  std::size_t done_line(int child_slot) const;
  std::size_t staged_line(std::uint64_t parity) const;
  std::size_t buffer_line(std::uint64_t parity) const;
  std::size_t fence_line() const;
  std::size_t layout_lines() const;

 private:
  struct Staged {
    std::uint64_t seq = 0;
    std::uint64_t sum = 0;
    /// FNV tag over (seq, sum) validated; a corrupted staged-line *read*
    /// decodes invalid and is re-polled rather than believed.
    bool valid = false;
  };
  static CacheLine encode_staged(std::uint64_t seq, std::uint64_t sum);
  static Staged decode_staged(const CacheLine& cl);

  /// Writes (seq, sum) into self's staged line with read-back verification.
  sim::Task<void> write_staged_reliable(scc::Core& self, std::uint64_t parity,
                                        std::uint64_t seq, std::uint64_t sum);

  /// FT child-ack wait: watchdogs each done flag; a child that stops
  /// responding is presumed dead and its ack substituted by its own
  /// children's done lines, read out of ITS (still addressable) MPB.
  sim::Task<void> wait_children_done(scc::Core& self, const KaryTree& tree,
                                     const std::vector<CoreId>& children,
                                     std::uint64_t minimum);

  /// Stage + publish one chunk at the root.
  sim::Task<void> root_chunk(scc::Core& self, const KaryTree& tree,
                             const std::vector<CoreId>& children,
                             const std::vector<CoreId>& own, std::uint64_t seq,
                             std::uint64_t parity, std::size_t lines,
                             std::size_t mem_off, std::uint64_t reuse_min);

  /// Detect, fetch (with verification and re-routing), republish, and land
  /// one chunk at a non-root. Returns false when the core gave up.
  sim::Task<bool> follower_chunk(scc::Core& self, const KaryTree& tree,
                                 const std::vector<CoreId>& children,
                                 const std::vector<CoreId>& forward,
                                 const std::vector<CoreId>& own,
                                 bool& use_notify, std::uint64_t seq,
                                 std::uint64_t parity, std::size_t lines,
                                 std::size_t mem_off, std::uint64_t reuse_min);

  scc::SccChip* chip_;
  FtOcBcastOptions options_;
  std::size_t buffer_count_;
  rma::FlagBarrier fence_;
  std::vector<std::uint64_t> chunks_so_far_;
  std::vector<CoreId> last_root_;
  std::vector<DeliveryReport> reports_;
  /// presumed_dead_[viewer][peer]: viewer's local suspicion; never shared
  /// (each core routes around failures on its own evidence).
  std::vector<std::vector<bool>> presumed_dead_;
};

}  // namespace ocb::core
