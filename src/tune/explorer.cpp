#include "tune/explorer.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <utility>

#include "common/format.h"
#include "common/require.h"
#include "coll/registry.h"
#include "harness/fault_sweep.h"
#include "harness/measurement.h"
#include "harness/parallel.h"
#include "harness/sweep.h"

namespace ocb::tune {

namespace {

constexpr std::size_t kNoLimit = static_cast<std::size_t>(-1);

/// Algorithms whose factories honor the k/chunk/double-buffering knobs.
bool tunable(const std::string& algorithm) {
  return algorithm == "ocbcast" || algorithm == "ft-ocbcast";
}

/// Conservative MPB-layout feasibility for the OC-Bcast family:
/// notify(1) + doneFlags(k) + staged lines (FT: one per buffer) +
/// buffers*chunk + up to 6 fence-barrier lines must fit in 256.
bool layout_fits(const std::string& algorithm, int k, std::size_t chunk,
                 bool db, int parties) {
  if (k < 1 || k > parties - 1) return false;
  const std::size_t buffers = db ? 2 : 1;
  const std::size_t staged = algorithm == "ft-ocbcast" ? buffers : 0;
  return 1 + static_cast<std::size_t>(k) + staged + buffers * chunk + 6 <=
         kMpbCacheLines;
}

std::vector<DesignPoint> build_grid(const ExplorerOptions& o,
                                    const std::vector<std::string>& algos) {
  std::vector<DesignPoint> grid;
  for (const std::size_t lines : o.sizes_lines) {
    for (const std::string& algorithm : algos) {
      if (!tunable(algorithm)) {
        grid.push_back(DesignPoint{algorithm, lines});
        continue;
      }
      for (const int k : o.fanouts) {
        for (const std::size_t chunk : o.chunk_grid) {
          for (const bool db : o.buffering_grid) {
            if (!layout_fits(algorithm, k, chunk, db, o.parties)) continue;
            grid.push_back(DesignPoint{algorithm, lines, k, chunk, db});
          }
        }
      }
    }
  }
  return grid;
}

PointResult measure_point(const ExplorerOptions& o, const DesignPoint& p) {
  harness::BcastRunSpec spec;
  spec.algorithm_name = p.algorithm;
  spec.params.parties = o.parties;
  spec.params.k = p.k;
  spec.params.chunk_lines = p.chunk_lines;
  spec.params.double_buffering = p.double_buffering;
  spec.message_bytes = p.lines * kCacheLineBytes;
  spec.iterations =
      o.iterations > 0 ? o.iterations : harness::default_iterations(p.lines);
  PointResult out;
  out.point = p;
  out.iterations = spec.iterations;
  const harness::BcastRunResult r = harness::run_broadcast(spec);
  out.latency_us = r.latency_us.mean();
  out.throughput_mbps = r.throughput_mbps;
  out.content_ok = r.content_ok;
  return out;
}

double measure_resilience(const ExplorerOptions& o, const DesignPoint& p) {
  harness::FaultRunSpec spec;
  spec.plan.rates.mpb_read = o.fault_rate;
  spec.use_ft = p.algorithm == "ft-ocbcast";
  spec.ft.parties = o.parties;
  spec.ft.k = p.k;
  spec.ft.chunk_lines = p.chunk_lines;
  spec.ft.double_buffering = p.double_buffering;
  spec.message_bytes = p.lines * kCacheLineBytes;
  const harness::FaultSweepResult sweep =
      harness::run_fault_sweep(spec, o.fault_seeds);
  return static_cast<double>(sweep.runs_all_correct) /
         static_cast<double>(o.fault_seeds.size());
}

/// The resilience coordinate used for dominance: unmeasured points compare
/// as 0 when the fault axis is in play.
double resilience_axis(const PointResult& r) {
  return r.resilience < 0.0 ? 0.0 : r.resilience;
}

bool dominates(const PointResult& a, const PointResult& b, bool fault_axis) {
  bool no_worse = a.latency_us <= b.latency_us &&
                  a.throughput_mbps >= b.throughput_mbps;
  bool strictly = a.latency_us < b.latency_us ||
                  a.throughput_mbps > b.throughput_mbps;
  if (fault_axis) {
    no_worse = no_worse && resilience_axis(a) >= resilience_axis(b);
    strictly = strictly || resilience_axis(a) > resilience_axis(b);
  }
  return no_worse && strictly;
}

void mark_front(ExploreResult& result) {
  const bool fault_axis = result.options.fault_rate > 0.0;
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    PointResult& candidate = result.points[i];
    if (!candidate.content_ok) continue;
    bool dominated = false;
    for (const PointResult& other : result.points) {
      if (&other == &candidate || !other.content_ok) continue;
      if (other.point.lines != candidate.point.lines) continue;
      if (dominates(other, candidate, fault_axis)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) {
      candidate.pareto = true;
      result.front.push_back(i);
    }
  }
}

std::string bool_str(bool b) { return b ? "true" : "false"; }

/// Merges per-size winners into decision rules: contiguous sizes that pick
/// the same choice collapse into one band; the final band extends to
/// SIZE_MAX so larger-than-grid queries resolve to the largest band.
void append_band_rules(const std::vector<std::size_t>& sizes,
                       const std::map<std::size_t, coll::Choice>& winner,
                       double max_fault_rate,
                       std::vector<coll::DecisionRule>& rules) {
  const std::size_t first_rule = rules.size();
  for (const std::size_t size : sizes) {
    const auto it = winner.find(size);
    if (it == winner.end()) continue;
    if (rules.size() > first_rule &&
        rules.back().choice.key() == it->second.key()) {
      rules.back().max_lines = size;  // extend the band
    } else {
      rules.push_back(
          coll::DecisionRule{size, kNumCores, max_fault_rate, it->second});
    }
  }
  if (rules.size() > first_rule) rules.back().max_lines = kNoLimit;
}

}  // namespace

std::string DesignPoint::label() const {
  const std::string id = tunable(algorithm) ? choice().key() : algorithm;
  return id + " @" + std::to_string(lines);
}

coll::Choice DesignPoint::choice() const {
  return coll::Choice{algorithm, k, chunk_lines, double_buffering};
}

ExploreResult explore(const ExplorerOptions& options) {
  OCB_REQUIRE(!options.sizes_lines.empty(),
              "explorer needs at least one message size");
  OCB_REQUIRE(options.fault_rate >= 0.0 && options.fault_rate <= 1.0,
              "fault_rate out of [0,1]");
  std::vector<std::string> algos = options.algorithms;
  if (algos.empty()) {
    for (const std::string& name : coll::names()) {
      if (name != "adaptive") algos.push_back(name);
    }
  }
  for (const std::string& name : algos) {
    OCB_REQUIRE(coll::registered(name),
                "explorer grid names unregistered algorithm '" + name + "'");
  }
  OCB_REQUIRE(options.fault_rate == 0.0 || !options.fault_seeds.empty(),
              "resilience measurement needs at least one seed");

  ExploreResult result;
  result.options = options;
  const std::vector<DesignPoint> grid = build_grid(options, algos);
  OCB_REQUIRE(!grid.empty(), "explorer grid is empty (no feasible point)");

  result.points = harness::parallel_map(
      grid.size(),
      [&](std::size_t i) { return measure_point(options, grid[i]); },
      options.threads);

  if (options.fault_rate > 0.0) {
    // Resilience only for the fault harness's algorithms (and, when a
    // subset was requested, only at those sizes); one task per eligible
    // point (each task sweeps its seeds serially).
    const std::vector<std::size_t>& fault_sizes = options.fault_sizes_lines;
    const auto fault_size = [&](std::size_t lines) {
      return fault_sizes.empty() ||
             std::find(fault_sizes.begin(), fault_sizes.end(), lines) !=
                 fault_sizes.end();
    };
    std::vector<std::size_t> eligible;
    for (std::size_t i = 0; i < grid.size(); ++i) {
      if (tunable(grid[i].algorithm) && fault_size(grid[i].lines)) {
        eligible.push_back(i);
      }
    }
    const std::vector<double> scores = harness::parallel_map(
        eligible.size(),
        [&](std::size_t i) {
          return measure_resilience(options, grid[eligible[i]]);
        },
        options.threads);
    for (std::size_t i = 0; i < eligible.size(); ++i) {
      result.points[eligible[i]].resilience = scores[i];
    }
  }

  mark_front(result);
  return result;
}

coll::DecisionTable derive_table(const ExploreResult& result) {
  std::vector<std::size_t> sizes = result.options.sizes_lines;
  std::sort(sizes.begin(), sizes.end());
  sizes.erase(std::unique(sizes.begin(), sizes.end()), sizes.end());

  // Zero-fault winners: lowest verified latency per size.
  std::map<std::size_t, coll::Choice> best;
  std::map<std::size_t, double> best_latency;
  for (const PointResult& r : result.points) {
    if (!r.content_ok) continue;
    const auto it = best_latency.find(r.point.lines);
    if (it == best_latency.end() || r.latency_us < it->second) {
      best_latency[r.point.lines] = r.latency_us;
      best[r.point.lines] = r.point.choice();
    }
  }
  OCB_REQUIRE(best.size() == sizes.size(),
              "some message size has no verified point; cannot derive a "
              "decision table");

  std::vector<coll::DecisionRule> rules;
  append_band_rules(sizes, best, 0.0, rules);

  // Fault winners: highest resilience, latency as the tie-break.
  std::map<std::size_t, coll::Choice> ft_best;
  std::map<std::size_t, std::pair<double, double>> ft_score;  // (-res, lat)
  for (const PointResult& r : result.points) {
    if (!r.content_ok || r.resilience < 0.0) continue;
    const std::pair<double, double> score{-r.resilience, r.latency_us};
    const auto it = ft_score.find(r.point.lines);
    if (it == ft_score.end() || score < it->second) {
      ft_score[r.point.lines] = score;
      ft_best[r.point.lines] = r.point.choice();
    }
  }
  if (!ft_best.empty()) {
    append_band_rules(sizes, ft_best, 1.0, rules);
  } else {
    // No fault data in this sweep: hand nonzero-fault queries to the
    // checksummed FT protocol with the first band's winning shape.
    const coll::Choice& global = rules.front().choice;
    rules.push_back(coll::DecisionRule{
        kNoLimit, kNumCores, 1.0,
        coll::Choice{"ft-ocbcast", global.k, global.chunk_lines,
                     global.double_buffering}});
  }
  return coll::DecisionTable(std::move(rules));
}

std::string to_json(const ExploreResult& result) {
  const ExplorerOptions& o = result.options;
  std::string out = "{\n  \"schema\": \"ocb-tune-pareto-v1\",\n";
  out += "  \"parties\": " + std::to_string(o.parties) + ",\n";
  char rate[32];
  std::snprintf(rate, sizeof rate, "%.9g", o.fault_rate);
  out += "  \"fault_rate\": " + std::string(rate) + ",\n";
  out += "  \"fault_seeds\": [";
  for (std::size_t i = 0; i < o.fault_seeds.size(); ++i) {
    out += (i ? ", " : "") + std::to_string(o.fault_seeds[i]);
  }
  out += "],\n  \"fault_sizes_lines\": [";
  for (std::size_t i = 0; i < o.fault_sizes_lines.size(); ++i) {
    out += (i ? ", " : "") + std::to_string(o.fault_sizes_lines[i]);
  }
  out += "],\n  \"points\": [\n";
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    const PointResult& r = result.points[i];
    char lat[32], tp[32], res[32];
    std::snprintf(lat, sizeof lat, "%.6f", r.latency_us);
    std::snprintf(tp, sizeof tp, "%.6f", r.throughput_mbps);
    std::snprintf(res, sizeof res, "%.6f", r.resilience);
    out += "    {\"algorithm\": \"" + r.point.algorithm +
           "\", \"lines\": " + std::to_string(r.point.lines) +
           ", \"k\": " + std::to_string(r.point.k) +
           ", \"chunk_lines\": " + std::to_string(r.point.chunk_lines) +
           ", \"double_buffering\": " + bool_str(r.point.double_buffering) +
           ", \"latency_us\": " + lat + ", \"throughput_mbps\": " + tp +
           ", \"content_ok\": " + bool_str(r.content_ok) +
           ", \"iterations\": " + std::to_string(r.iterations) +
           ", \"resilience\": " + res +
           ", \"pareto\": " + bool_str(r.pareto) + "}";
    out += (i + 1 == result.points.size()) ? "\n" : ",\n";
  }
  out += "  ],\n  \"front\": [";
  for (std::size_t i = 0; i < result.front.size(); ++i) {
    out += (i ? ", " : "") + std::to_string(result.front[i]);
  }
  out += "],\n  \"decision_table\": " + derive_table(result).to_json();
  // derive_table's record ends with a newline; close after it.
  out += "}\n";
  return out;
}

std::string render_report(const ExploreResult& result) {
  TextTable table({"algorithm", "lines", "k", "chunk", "db", "latency_us",
                   "MB/s", "ok", "resilience", "front"});
  for (const PointResult& r : result.points) {
    const bool knobs = tunable(r.point.algorithm);
    table.add_row({r.point.algorithm, std::to_string(r.point.lines),
                   knobs ? std::to_string(r.point.k) : "-",
                   knobs ? std::to_string(r.point.chunk_lines) : "-",
                   knobs ? (r.point.double_buffering ? "on" : "off") : "-",
                   fmt_fixed(r.latency_us, 3), fmt_fixed(r.throughput_mbps, 3),
                   r.content_ok ? "yes" : "NO",
                   r.resilience < 0.0 ? "-" : fmt_fixed(r.resilience, 2),
                   r.pareto ? "*" : ""});
  }
  std::string out = table.str();
  out += "\nDerived decision table (ocb-tune-decision-v1):\n";
  out += derive_table(result).to_json();
  return out;
}

}  // namespace ocb::tune
