// tune::Explorer — the offline half of the design-space autotuner.
//
// Sweeps the cross product of message size x algorithm x fan-out k x
// chunk_lines x double-buffering over the coll:: registry, measuring each
// feasible point with the §6.1 harness (harness/measurement.h) and — when a
// fault rate is requested — scoring fault resilience with the seeded
// injection harness (harness/fault_sweep.h). Points are fanned out over
// harness::parallel_map, so a sweep is bit-identical at any
// OCB_SWEEP_THREADS (index-order merge).
//
// Outputs:
//  * the measured grid with the Pareto front marked (per message size;
//    objectives: latency down, throughput up, resilience up),
//  * a coll::DecisionTable derived from the per-size winners (the artifact
//    coll::AdaptiveBcast consults online),
//  * versioned JSON ("ocb-tune-pareto-v1", results/autotune_pareto.json)
//    and a human-readable report (bench/bench_autotune.cpp).
//
// Every measurement is reproducible from (algorithm, params, seed): the
// simulator is deterministic, latency points carry their iteration counts,
// and resilience points carry the full seed list.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "coll/decision.h"

namespace ocb::tune {

/// One corner of the design space: a registry algorithm at one message
/// size with the OC-Bcast-family knobs pinned. Algorithms that ignore a
/// knob (binomial, scatter-allgather, onesided-sag) contribute a single
/// point per size.
struct DesignPoint {
  std::string algorithm;
  std::size_t lines = 1;  ///< message size in cache lines
  int k = 7;
  std::size_t chunk_lines = 96;
  bool double_buffering = true;

  /// "ocbcast/k7/c96/db1 @192" — stable identity for reports and JSON.
  std::string label() const;
  /// The knob triple as a decision-table Choice.
  coll::Choice choice() const;
};

/// A measured design point.
struct PointResult {
  DesignPoint point;
  double latency_us = 0.0;
  double throughput_mbps = 0.0;
  bool content_ok = false;
  int iterations = 0;  ///< measured iterations behind latency_us
  /// Fraction of seeded fault runs where every survivor delivered correct
  /// bytes (harness::FaultRunOutcome::all_survivors_correct); -1 when
  /// resilience was not measured for this point.
  double resilience = -1.0;
  /// On the Pareto front of its message size (see ExploreResult).
  bool pareto = false;
};

struct ExplorerOptions {
  /// Registry names to sweep; empty = every registered protocol
  /// ("adaptive" is excluded — the explorer produces its table, measuring
  /// it through itself would be circular).
  std::vector<std::string> algorithms;
  /// Message sizes in cache lines; empty is a precondition error.
  std::vector<std::size_t> sizes_lines;
  /// OC-Bcast-family knob grid. Combinations whose MPB layout cannot fit
  /// (1 + k + buffers*(chunk+1) + fence lines > 256) are skipped, not
  /// errors.
  std::vector<int> fanouts = {2, 7, 47};
  std::vector<std::size_t> chunk_grid = {48, 96};
  std::vector<bool> buffering_grid = {false, true};
  int parties = kNumCores;
  /// Measured iterations per point; 0 = harness::default_iterations(lines).
  int iterations = 0;
  /// When > 0, also measure resilience: per-transaction MPB-read
  /// corruption at this rate, one fault run per seed, for the
  /// OC-Bcast-family points (the fault harness covers "ocbcast" and
  /// "ft-ocbcast"). Other algorithms score 0 on the resilience axis.
  double fault_rate = 0.0;
  std::vector<std::uint64_t> fault_seeds = {1, 2, 3};
  /// Sizes (cache lines) at which resilience is measured; empty = every
  /// grid size. Fault runs observe per line, so bounding them to a size
  /// subset keeps big sweeps tractable — unmeasured points carry
  /// resilience = -1 in the output rather than a silently assumed score.
  std::vector<std::size_t> fault_sizes_lines;
  /// parallel_map worker override; 0 = OCB_SWEEP_THREADS / hardware.
  unsigned threads = 0;
};

struct ExploreResult {
  ExplorerOptions options;  ///< the grid that produced the points
  std::vector<PointResult> points;  ///< grid order (size-major)

  /// Indices of front members, per message size: a point is on the front
  /// when no content-ok point at the same size has latency <=, throughput
  /// >=, and resilience >= with at least one strict (unmeasured
  /// resilience compares as 0 when a fault rate was in play, and the axis
  /// is ignored entirely when it was not). Points that failed verification
  /// never enter the front.
  std::vector<std::size_t> front;
};

/// Runs the sweep. Precondition: non-empty sizes_lines and a resolvable
/// algorithm list.
ExploreResult explore(const ExplorerOptions& options);

/// Derives the online decision table from a sweep: per size the
/// lowest-latency verified point wins the zero-fault band (contiguous
/// sizes with the same winner merge into one rule; the last band extends
/// to SIZE_MAX), and when resilience was measured the per-size best
/// (resilience, then latency) wins the fault bands. Without fault data the
/// fault catch-all reuses the first zero-fault band's winning shape on
/// "ft-ocbcast".
coll::DecisionTable derive_table(const ExploreResult& result);

/// Versioned machine-readable record: the grid, every point, the front,
/// and the derived decision table ("ocb-tune-pareto-v1").
std::string to_json(const ExploreResult& result);

/// Aligned ASCII report: one row per point (front members starred),
/// then the derived table.
std::string render_report(const ExploreResult& result);

}  // namespace ocb::tune
