// Per-core private off-chip memory.
//
// Each core owns a private DRAM region behind its quadrant's memory
// controller (default SCC configuration, no shared memory — paper §3.3).
// Only the owning core's simulated transactions may touch it; the harness
// additionally gets zero-cost host access to seed payloads and verify
// delivered bytes.
//
// Storage grows on demand in cache-line units so a 1 MiB broadcast message
// plus the rotating-offset anti-caching scheme of §6.1 costs only what it
// touches.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/types.h"

namespace ocb::mem {

class PrivateMemory {
 public:
  /// `limit_bytes` caps growth to catch runaway offsets early.
  explicit PrivateMemory(std::size_t limit_bytes = kDefaultLimitBytes);

  PrivateMemory(const PrivateMemory&) = delete;
  PrivateMemory& operator=(const PrivateMemory&) = delete;

  /// Reads the cache line at `offset` (must be line-aligned). Reading never-
  /// written memory returns zeros, like freshly mapped pages.
  CacheLine load(std::size_t offset) const;

  /// Writes the cache line at `offset` (must be line-aligned).
  void store(std::size_t offset, const CacheLine& value);

  /// Zero-cost host window of [offset, offset+size); grows storage.
  /// CAUTION: later growth (a store or host_bytes beyond the current size)
  /// may reallocate and invalidate previously returned spans — re-fetch
  /// after any operation that could extend the memory.
  std::span<std::byte> host_bytes(std::size_t offset, std::size_t size);
  std::span<const std::byte> host_bytes(std::size_t offset, std::size_t size) const;

  std::size_t size() const { return bytes_.size(); }
  std::size_t limit() const { return limit_; }

  static constexpr std::size_t kDefaultLimitBytes = 64u << 20;  // 64 MiB

 private:
  void ensure(std::size_t end) const;

  mutable std::vector<std::byte> bytes_;
  std::size_t limit_;
};

}  // namespace ocb::mem
