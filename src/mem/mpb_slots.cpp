#include "mem/mpb_slots.h"

#include <algorithm>

#include "common/require.h"

namespace ocb::mem {

MpbSlotAllocator::MpbSlotAllocator(std::size_t base_line,
                                   std::size_t slot_lines, int slot_count)
    : base_line_(base_line), slot_lines_(slot_lines) {
  OCB_REQUIRE(slot_lines >= 1, "slots must be at least one line");
  OCB_REQUIRE(slot_count >= 1, "need at least one slot");
  OCB_REQUIRE(base_line + slot_lines * static_cast<std::size_t>(slot_count) <=
                  kMpbCacheLines,
              "slot partition exceeds the 256-line MPB");
  in_use_.assign(static_cast<std::size_t>(slot_count), false);
  generations_.assign(static_cast<std::size_t>(slot_count), 0);
}

std::optional<MpbLease> MpbSlotAllocator::acquire() {
  for (std::size_t s = 0; s < in_use_.size(); ++s) {
    if (in_use_[s]) continue;
    in_use_[s] = true;
    MpbLease lease;
    lease.slot = static_cast<int>(s);
    lease.base_line = base_line_ + s * slot_lines_;
    lease.lines = slot_lines_;
    lease.generation = generations_[s]++;
    return lease;
  }
  return std::nullopt;
}

void MpbSlotAllocator::release(const MpbLease& lease) {
  OCB_REQUIRE(lease.slot >= 0 &&
                  lease.slot < static_cast<int>(in_use_.size()),
              "releasing a lease from a different allocator");
  const auto s = static_cast<std::size_t>(lease.slot);
  OCB_REQUIRE(in_use_[s], "double release of an MPB slot lease");
  OCB_REQUIRE(lease.generation + 1 == generations_[s],
              "releasing a stale lease (slot was re-granted)");
  in_use_[s] = false;
}

int MpbSlotAllocator::slots_free() const {
  return static_cast<int>(std::count(in_use_.begin(), in_use_.end(), false));
}

bool MpbSlotAllocator::in_use(int slot) const {
  OCB_REQUIRE(slot >= 0 && slot < static_cast<int>(in_use_.size()),
              "slot index out of range");
  return in_use_[static_cast<std::size_t>(slot)];
}

std::uint64_t MpbSlotAllocator::generation(int slot) const {
  OCB_REQUIRE(slot >= 0 && slot < static_cast<int>(generations_.size()),
              "slot index out of range");
  return generations_[static_cast<std::size_t>(slot)];
}

}  // namespace ocb::mem
