// MPB slot allocator: leases of per-core MPB line ranges.
//
// Every collective in core/ lays its flags and staging buffers out at a
// configurable `mpb_base_line`, but historically each instance assumed the
// whole 256-line MPB — a second in-flight broadcast would trample the
// first's buffer reuse. The allocator makes concurrent collectives safe by
// partitioning each core's MPB into fixed-size SLOTS: a lease grants the
// same [base_line, base_line + slot_lines) range on EVERY core's MPB
// (collective layouts are symmetric across cores), and two live leases
// never overlap by construction.
//
// Lifecycle contract (enforced by ocb::svc, testable on its own):
//   * acquire() — lowest-numbered free slot, or nullopt when all are busy
//     (the service queues the request: admission control);
//   * the holder scrubs the slot's lines (MpbStorage::host_clear_lines)
//     before first use so stale flag values from the previous occupant
//     cannot satisfy a new collective's waits;
//   * release() — only after every participant of the collective returned,
//     i.e. no coroutine can still be parked on (or writing) the range.
//
// Each slot carries a GENERATION, the number of grants so far. The service
// uses it to tell the race checker that a recycled slot's new occupant
// causally follows the previous one (see svc/service.cpp, "handoff edge").
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.h"

namespace ocb::mem {

/// One leased span of MPB lines, identical on every core's MPB.
struct MpbLease {
  int slot = -1;
  std::size_t base_line = 0;
  std::size_t lines = 0;
  /// Grants of this slot before this one (0 = first occupant).
  std::uint64_t generation = 0;
};

class MpbSlotAllocator {
 public:
  /// Partitions lines [base_line, base_line + slot_count * slot_lines)
  /// into `slot_count` slots. The range must fit the 256-line MPB.
  MpbSlotAllocator(std::size_t base_line, std::size_t slot_lines,
                   int slot_count);

  /// Leases the lowest-numbered free slot; nullopt when none is free.
  std::optional<MpbLease> acquire();

  /// Returns a slot to the pool. The lease must be the one acquire()
  /// handed out (same slot and generation) and still outstanding.
  void release(const MpbLease& lease);

  int slots_total() const { return static_cast<int>(in_use_.size()); }
  int slots_free() const;
  bool in_use(int slot) const;
  std::uint64_t generation(int slot) const;

  std::size_t base_line() const { return base_line_; }
  std::size_t slot_lines() const { return slot_lines_; }
  /// First MPB line past the partition (free for other reservations).
  std::size_t end_line() const {
    return base_line_ + slot_lines_ * in_use_.size();
  }

 private:
  std::size_t base_line_;
  std::size_t slot_lines_;
  std::vector<bool> in_use_;
  std::vector<std::uint64_t> generations_;
};

}  // namespace ocb::mem
