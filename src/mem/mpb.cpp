#include "mem/mpb.h"

#include "common/require.h"

namespace ocb::mem {

void MpbStorage::require_line(std::size_t line) const {
  OCB_REQUIRE(line < kMpbCacheLines, "MPB line index out of range");
}

const CacheLine& MpbStorage::load(std::size_t line) const {
  require_line(line);
  return lines_[line];
}

void MpbStorage::store(std::size_t line, const CacheLine& value) {
  require_line(line);
  lines_[line] = value;
  if (triggers_[line]) triggers_[line]->fire();
}

sim::Trigger& MpbStorage::line_trigger(std::size_t line) {
  require_line(line);
  if (!triggers_[line]) triggers_[line] = std::make_unique<sim::Trigger>(*engine_);
  return *triggers_[line];
}

CacheLine& MpbStorage::host_line(std::size_t line) {
  require_line(line);
  return lines_[line];
}

void MpbStorage::host_clear_lines(std::size_t first, std::size_t count) {
  OCB_REQUIRE(first + count <= kMpbCacheLines, "MPB line range out of range");
  for (std::size_t i = 0; i < count; ++i) {
    OCB_ENSURE(!line_has_waiters(first + i),
               "host-clearing an MPB line a coroutine is parked on");
    lines_[first + i] = CacheLine{};
  }
}

}  // namespace ocb::mem
