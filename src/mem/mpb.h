// Message Passing Buffer storage.
//
// One MpbStorage models a core's 8 KB half of its tile's 16 KB MPB as 256
// cache lines of real bytes: every simulated transfer moves actual data, so
// collectives are verified end-to-end for content as well as timing.
//
// The SCC guarantees read/write atomicity at cache-line granularity (paper
// §5.1) — the storage API only exposes whole-line loads/stores, so torn
// reads are unrepresentable by construction.
//
// Each line carries a lazily-allocated sim::Trigger fired on every store;
// flag-polling coroutines (rma::wait_local_flag) park on it instead of
// burning simulation events per poll iteration.
//
// The tile's shared MPB *port* (the contended resource of Figure 4) is not
// here: it lives in scc::SccChip, one ArbitratedServer per tile, because it
// is shared by the tile's two cores.
#pragma once

#include <array>
#include <memory>

#include "common/types.h"
#include "sim/condition.h"

namespace ocb::mem {

class MpbStorage {
 public:
  explicit MpbStorage(sim::Engine& engine) : engine_(&engine) {}

  MpbStorage(const MpbStorage&) = delete;
  MpbStorage& operator=(const MpbStorage&) = delete;

  /// Atomically reads one cache line.
  const CacheLine& load(std::size_t line) const;

  /// Atomically writes one cache line and wakes any coroutine parked on it.
  void store(std::size_t line, const CacheLine& value);

  /// Trigger fired on every store to `line` (created on first use).
  sim::Trigger& line_trigger(std::size_t line);

  /// True if a coroutine is currently parked on `line`'s trigger. Cheap
  /// peek (no trigger creation); the quiescent-chip RMA fast path uses it
  /// to prove a coalesced store cannot wake anyone mid-window.
  bool line_has_waiters(std::size_t line) const {
    return triggers_[line] != nullptr && triggers_[line]->waiter_count() > 0;
  }

  /// Host-side zero-cost access for test setup/verification; does not fire
  /// triggers and takes no simulated time.
  CacheLine& host_line(std::size_t line);

  /// Host-side zero-cost scrub of [first, first+count): the slot allocator
  /// (mem/mpb_slots.h) clears a lease's lines before handing them to a new
  /// collective, so a stale flag value from the previous occupant can never
  /// satisfy the newcomer's waits. Does not fire triggers — callers must
  /// guarantee no coroutine is parked on the range (the service releases a
  /// lease only after every participant returned).
  void host_clear_lines(std::size_t first, std::size_t count);

  static constexpr std::size_t capacity_lines() { return kMpbCacheLines; }

 private:
  void require_line(std::size_t line) const;

  sim::Engine* engine_;
  std::array<CacheLine, kMpbCacheLines> lines_{};
  std::array<std::unique_ptr<sim::Trigger>, kMpbCacheLines> triggers_{};
};

}  // namespace ocb::mem
