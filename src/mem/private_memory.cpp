#include "mem/private_memory.h"

#include <cstring>

#include "common/require.h"

namespace ocb::mem {

PrivateMemory::PrivateMemory(std::size_t limit_bytes) : limit_(limit_bytes) {}

void PrivateMemory::ensure(std::size_t end) const {
  OCB_REQUIRE(end <= limit_, "private memory access beyond configured limit");
  if (end > bytes_.size()) bytes_.resize(end);
}

CacheLine PrivateMemory::load(std::size_t offset) const {
  OCB_REQUIRE(offset % kCacheLineBytes == 0, "unaligned private-memory load");
  ensure(offset + kCacheLineBytes);
  CacheLine cl;
  std::memcpy(cl.bytes.data(), bytes_.data() + offset, kCacheLineBytes);
  return cl;
}

void PrivateMemory::store(std::size_t offset, const CacheLine& value) {
  OCB_REQUIRE(offset % kCacheLineBytes == 0, "unaligned private-memory store");
  ensure(offset + kCacheLineBytes);
  std::memcpy(bytes_.data() + offset, value.bytes.data(), kCacheLineBytes);
}

std::span<std::byte> PrivateMemory::host_bytes(std::size_t offset, std::size_t size) {
  ensure(offset + size);
  return {bytes_.data() + offset, size};
}

std::span<const std::byte> PrivateMemory::host_bytes(std::size_t offset,
                                                     std::size_t size) const {
  ensure(offset + size);
  return {bytes_.data() + offset, size};
}

}  // namespace ocb::mem
