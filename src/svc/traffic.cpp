#include "svc/traffic.h"

#include "common/require.h"
#include "common/rng.h"

namespace ocb::svc {

namespace {

/// Geometric count of `tick`-sized failures before a success of
/// probability 1/mean_ticks — the memoryless discrete gap. Mean is
/// (mean_ticks - 1) ticks, within one tick of the spec's mean.
std::uint64_t sample_gap_ticks(Xoshiro256& rng, std::uint64_t mean_ticks) {
  std::uint64_t ticks = 0;
  while (rng.next_below(mean_ticks) != 0) ++ticks;
  return ticks;
}

}  // namespace

std::vector<Request> generate_requests(const TrafficSpec& spec) {
  OCB_REQUIRE(spec.requests >= 1, "traffic spec needs at least one request");
  OCB_REQUIRE(spec.mean_gap_ns >= 1, "mean inter-arrival gap must be positive");
  OCB_REQUIRE(!spec.sizes.empty(), "traffic spec needs at least one size class");
  OCB_REQUIRE(spec.parties >= 2 && spec.parties <= kNumCores,
              "party count out of range");
  OCB_REQUIRE(spec.fixed_root < spec.parties, "fixed root is not a participant");
  std::uint64_t weight_total = 0;
  for (const SizeClass& sc : spec.sizes) {
    OCB_REQUIRE(sc.bytes > 0, "size class with empty message");
    OCB_REQUIRE(sc.weight > 0, "size class with zero weight");
    weight_total += sc.weight;
  }

  // 256 ticks per mean gap: the sampler costs a constant ~256 draws per
  // request regardless of the configured rate.
  const std::uint64_t tick_ns = spec.mean_gap_ns >= 256 ? spec.mean_gap_ns / 256 : 1;
  const std::uint64_t mean_ticks = (spec.mean_gap_ns + tick_ns - 1) / tick_ns;

  Xoshiro256 rng(spec.seed);
  std::vector<Request> out;
  out.reserve(static_cast<std::size_t>(spec.requests));
  sim::Time at = 0;
  for (int i = 0; i < spec.requests; ++i) {
    if (i > 0) {
      at += sample_gap_ticks(rng, mean_ticks) * sim::from_ns(tick_ns);
    }
    Request r;
    r.id = i;
    r.arrival = at;
    r.root = spec.fixed_root >= 0
                 ? spec.fixed_root
                 : static_cast<CoreId>(rng.next_below(
                       static_cast<std::uint64_t>(spec.parties)));
    std::uint64_t pick = rng.next_below(weight_total);
    for (const SizeClass& sc : spec.sizes) {
      if (pick < sc.weight) {
        r.bytes = sc.bytes;
        break;
      }
      pick -= sc.weight;
    }
    out.push_back(r);
  }
  return out;
}

}  // namespace ocb::svc
