// ocb::svc — a multi-root broadcast service over leased MPB slots.
//
// The rest of the repo runs ONE collective at a time: every core calls
// run() on the same instance and the whole 256-line MPB belongs to it.
// BroadcastService instead accepts a stream of timestamped broadcast
// requests (svc/traffic.h) with mixed roots and sizes and executes several
// of them CONCURRENTLY on one chip:
//
//   * an MPB slot allocator (mem/mpb_slots.h) partitions each core's MPB
//     into fixed-size slots; a request runs entirely inside its leased
//     slot, so in-flight collectives never overlap buffers or flags;
//   * an admission controller queues requests while all slots are busy
//     (bounded queue; beyond the bound a request is REJECTED and counted)
//     and a scheduling policy picks the next grant — arrival order (kFifo)
//     or smallest-message-first (kSmallestFirst, the classic tail-latency
//     trade: small requests overtake bulk transfers);
//   * an SLO metrics layer records every request's arrival -> dispatch ->
//     completion span into log-scale latency histograms
//     (common/stats.h LatencyHistogram: p50/p99/p999 without storing
//     samples) and can export each request as a span in the Chrome-trace
//     timeline (scc/trace_json.h).
//
// Cores MULTIPLEX: a core participates in every in-flight collective at
// once, as independent coroutines on the simulated core. The per-core
// coalesced-RMA fast path detects this (BulkOp::in_flight) and falls back
// to the per-line reference path, so multiplexed timing stays exact.
//
// Determinism: arrivals, sizes, and roots come from the seeded generator;
// the engine's (time, seq) order does the rest. Same spec + seed =>
// bit-identical metrics, asserted by tests/service_test.cpp.
//
// Correctness under recycling: a slot's new occupant REALLY does follow
// its previous occupant (every participant of the old collective returned
// before release()), but the race checker cannot see that from line
// transactions alone — the service therefore reports the handoff to
// on_sync() as a release/acquire pair on a reserved per-slot "handoff
// line", keyed by the slot generation (see service.cpp). Genuine overlap
// (two collectives sharing lines, as in the no-allocator gate test) is
// still flagged.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "mem/mpb_slots.h"
#include "scc/config.h"
#include "sim/task.h"
#include "sim/time.h"
#include "svc/traffic.h"

namespace ocb::scc {
class Core;
class SccChip;
class JsonTraceCollector;
}  // namespace ocb::scc

namespace ocb::check {
class RaceChecker;
}  // namespace ocb::check

namespace ocb::coll {
class Collective;
}  // namespace ocb::coll

namespace ocb::svc {

enum class SchedPolicy : std::uint8_t {
  kFifo,           ///< strict arrival order
  kSmallestFirst,  ///< fewest bytes first (ties: arrival order)
};

const char* sched_policy_name(SchedPolicy policy);

struct ServiceConfig {
  /// Registry name; must honor coll::Params::mpb_base_line and fit a slot
  /// ("ocbcast" or "ft-ocbcast").
  std::string algorithm = "ocbcast";
  int parties = kNumCores;
  int k = 7;
  bool double_buffering = true;
  /// Concurrent collectives = slots; each leases `slot_lines` MPB lines on
  /// every core. The chunk size is derived: whatever of the slot remains
  /// after the algorithm's flags and fence lines, split across buffers.
  int slots = 2;
  std::size_t slot_lines = 120;
  SchedPolicy policy = SchedPolicy::kFifo;
  /// Admission bound: requests arriving with this many already queued are
  /// rejected (slots in service do not count toward the depth).
  std::size_t max_queue = 64;
  /// Install an ocb::check::RaceChecker for the whole run. Also enabled by
  /// the OCB_CHECK environment variable (any value but "0").
  bool check = false;
  scc::SccConfig chip{};
};

/// Per-request ledger entry (rejected requests have only arrival set).
struct RequestOutcome {
  int id = -1;
  CoreId root = 0;
  std::size_t bytes = 0;
  sim::Time arrival = 0;
  sim::Time start = 0;       ///< slot granted, participants spawned
  sim::Time completion = 0;  ///< last participant returned
  int slot = -1;
  bool rejected = false;
  bool content_ok = true;
};

/// Aggregate SLO metrics of one run. All times are integer nanoseconds
/// derived from the picosecond simulation clock, so the whole struct is
/// bit-reproducible for a given spec + seed.
struct ServiceMetrics {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::size_t max_queue_depth = 0;
  std::uint64_t delivered_bytes = 0;  ///< sum of completed message sizes
  sim::Time makespan = 0;             ///< first arrival -> queue drained
  bool content_ok = true;
  std::uint64_t race_violations = 0;
  LatencyHistogram latency_ns;     ///< arrival -> completion
  LatencyHistogram queue_wait_ns;  ///< arrival -> dispatch
  LatencyHistogram service_ns;     ///< dispatch -> completion
  /// Simulator-side counters (sim::RunResult), for the speed bench.
  std::uint64_t engine_events = 0;
  std::uint64_t engine_max_queue_depth = 0;
  /// Observer-batching counters (sim::RunResult, nonzero only in
  /// OCB_SIM_STATS builds). Host-side diagnostics: they depend on the
  /// coalescing configuration, so — unlike everything above — they are
  /// deliberately NOT part of to_json(), which must stay bit-identical
  /// with the fast path on or off.
  std::uint64_t bulk_ops = 0;
  std::uint64_t bulk_ops_observed = 0;
  std::uint64_t bulk_quiescent_ops = 0;
  std::uint64_t bulk_fallback_ops = 0;
  std::uint64_t bulk_fallback_lines = 0;

  /// Goodput over the run: delivered_bytes / makespan.
  double throughput_mbps() const;

  /// Self-contained JSON object ("ocb-service-metrics-v1"); callers embed
  /// it next to their own config echo.
  std::string to_json() const;
};

/// Single-use service run: construct, submit(), run() once, read metrics.
class BroadcastService {
 public:
  explicit BroadcastService(const ServiceConfig& config);
  ~BroadcastService();

  BroadcastService(const BroadcastService&) = delete;
  BroadcastService& operator=(const BroadcastService&) = delete;

  /// Queues a request for the run; all submissions precede run().
  void submit(const Request& request);
  void submit(const std::vector<Request>& requests);

  /// Executes every submitted request to completion (or rejection) and
  /// returns the aggregate metrics. Call exactly once.
  ServiceMetrics run();

  /// Per-request ledger, in arrival order, valid after run().
  const std::vector<RequestOutcome>& outcomes() const { return outcomes_; }

  scc::SccChip& chip() { return *chip_; }
  /// The installed race checker, or nullptr when checking is off.
  check::RaceChecker* checker() { return checker_.get(); }
  const mem::MpbSlotAllocator& allocator() const { return allocator_; }

  /// When set (before run()), every completed request is emitted as a
  /// "service" span (arrival -> completion, on the root's timeline) into
  /// the collector, overlaying the per-transaction rows.
  void set_trace(scc::JsonTraceCollector* trace) { trace_ = trace; }

  /// Derived per-request chunk size (lines) inside a slot.
  std::size_t chunk_lines() const { return chunk_lines_; }
  /// Reserved MPB line (core 0) carrying slot `slot`'s handoff edge.
  std::size_t handoff_line(int slot) const {
    return allocator_.end_line() + static_cast<std::size_t>(slot);
  }

 private:
  struct Pending;  ///< a submitted request plus its memory placement
  struct Active;   ///< an in-service request (lease + collective instance)

  sim::Task<void> dispatcher();
  sim::Task<void> participant(scc::Core& me, Active* active);
  void on_arrival(std::size_t index);
  void try_dispatch();
  void start_request(std::size_t index);
  void complete(Active* active);

  ServiceConfig config_;
  std::unique_ptr<scc::SccChip> chip_;
  std::unique_ptr<check::RaceChecker> checker_;
  mem::MpbSlotAllocator allocator_;
  std::size_t chunk_lines_ = 0;
  scc::JsonTraceCollector* trace_ = nullptr;

  std::vector<Pending> requests_;
  std::vector<RequestOutcome> outcomes_;
  std::vector<std::unique_ptr<Active>> active_;  ///< kept for the whole run
  std::vector<std::size_t> queue_;               ///< pending indices
  std::size_t next_offset_ = 0;  ///< private-memory placement cursor
  std::size_t max_queue_depth_ = 0;
  std::uint64_t rejected_ = 0;
  bool ran_ = false;
};

/// Generates spec's traffic, runs it through a fresh service, returns the
/// metrics (the one-call form used by benches and the smoke test).
ServiceMetrics run_service(const ServiceConfig& config,
                           const TrafficSpec& traffic);

}  // namespace ocb::svc
