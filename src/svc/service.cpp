#include "svc/service.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "check/checker.h"
#include "coll/registry.h"
#include "common/require.h"
#include "common/rng.h"
#include "scc/chip.h"
#include "scc/trace_json.h"

namespace ocb::svc {

namespace {

bool env_check_enabled() {
  const char* v = std::getenv("OCB_CHECK");
  return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}

/// Fills a host-visible region with a deterministic per-seed pattern
/// (same scheme as the measurement harness).
void fill_pattern(std::span<std::byte> region, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::size_t i = 0;
  while (i + 8 <= region.size()) {
    const std::uint64_t v = rng.next();
    std::memcpy(region.data() + i, &v, 8);
    i += 8;
  }
  for (; i < region.size(); ++i) {
    region[i] = static_cast<std::byte>(rng.next() & 0xff);
  }
}

int ceil_log2(int n) {
  int rounds = 0;
  while ((1 << rounds) < n) ++rounds;
  return rounds;
}

/// Lines of a slot that are NOT payload buffer: notify flag + k doneFlags
/// + fence rounds (+ per-buffer staged-checksum lines for ft-ocbcast).
std::size_t fixed_layout_lines(const ServiceConfig& c) {
  const std::size_t buffers = c.double_buffering ? 2 : 1;
  const std::size_t staged = c.algorithm == "ft-ocbcast" ? buffers : 0;
  return 1 + static_cast<std::size_t>(c.k) + staged +
         static_cast<std::size_t>(ceil_log2(c.parties));
}

std::size_t derive_chunk_lines(const ServiceConfig& c) {
  OCB_REQUIRE(c.algorithm == "ocbcast" || c.algorithm == "ft-ocbcast",
              "service algorithm must be slot-aware (ocbcast or ft-ocbcast)");
  OCB_REQUIRE(c.parties >= 2 && c.parties <= kNumCores,
              "party count out of range");
  OCB_REQUIRE(c.k >= 1 && c.k <= c.parties - 1, "fan-out must be in [1, parties-1]");
  OCB_REQUIRE(c.slots >= 1, "need at least one MPB slot");
  const std::size_t buffers = c.double_buffering ? 2 : 1;
  const std::size_t fixed = fixed_layout_lines(c);
  OCB_REQUIRE(c.slot_lines > fixed + buffers - 1,
              "slot too small for the algorithm's flags and fence lines");
  // One handoff line per slot sits after the partition.
  OCB_REQUIRE(c.slot_lines * static_cast<std::size_t>(c.slots) +
                      static_cast<std::size_t>(c.slots) <=
                  kMpbCacheLines,
              "slot partition + handoff lines exceed the 256-line MPB");
  return (c.slot_lines - fixed) / buffers;
}

void append_u64(std::string& out, const char* key, std::uint64_t v) {
  out += '"';
  out += key;
  out += "\":";
  out += std::to_string(v);
}

void append_histogram(std::string& out, const char* key,
                      const LatencyHistogram& h) {
  char buf[64];
  out += '"';
  out += key;
  out += "\":{";
  append_u64(out, "count", h.count());
  out += ',';
  append_u64(out, "min_ns", h.min());
  out += ',';
  append_u64(out, "max_ns", h.max());
  out += ",\"mean_ns\":";
  std::snprintf(buf, sizeof buf, "%.3f", h.count() ? h.mean() : 0.0);
  out += buf;
  out += ',';
  append_u64(out, "p50_ns", h.count() ? h.p50() : 0);
  out += ',';
  append_u64(out, "p99_ns", h.count() ? h.p99() : 0);
  out += ',';
  append_u64(out, "p999_ns", h.count() ? h.p999() : 0);
  out += '}';
}

}  // namespace

const char* sched_policy_name(SchedPolicy policy) {
  switch (policy) {
    case SchedPolicy::kFifo:
      return "fifo";
    case SchedPolicy::kSmallestFirst:
      return "smallest-first";
  }
  return "?";
}

double ServiceMetrics::throughput_mbps() const {
  if (makespan == 0) return 0.0;
  return static_cast<double>(delivered_bytes) / sim::to_us(makespan);
}

std::string ServiceMetrics::to_json() const {
  std::string out = "{\"schema\":\"ocb-service-metrics-v1\",";
  append_u64(out, "submitted", submitted);
  out += ',';
  append_u64(out, "completed", completed);
  out += ',';
  append_u64(out, "rejected", rejected);
  out += ',';
  append_u64(out, "max_queue_depth", max_queue_depth);
  out += ',';
  append_u64(out, "delivered_bytes", delivered_bytes);
  out += ',';
  append_u64(out, "makespan_ns", makespan / sim::kNanosecond);
  out += ",\"throughput_mbps\":";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", throughput_mbps());
  out += buf;
  out += ",\"content_ok\":";
  out += content_ok ? "true" : "false";
  out += ',';
  append_u64(out, "race_violations", race_violations);
  out += ',';
  append_histogram(out, "latency", latency_ns);
  out += ',';
  append_histogram(out, "queue_wait", queue_wait_ns);
  out += ',';
  append_histogram(out, "service", service_ns);
  out += '}';
  return out;
}

struct BroadcastService::Pending {
  Request req;
  std::size_t offset = 0;  ///< private-memory placement (same on all cores)
};

struct BroadcastService::Active {
  std::size_t index = 0;  ///< into requests_ / outcomes_
  mem::MpbLease lease;
  std::unique_ptr<coll::Collective> coll;
  int remaining = 0;  ///< participants not yet returned
};

BroadcastService::BroadcastService(const ServiceConfig& config)
    : config_(config),
      chip_(std::make_unique<scc::SccChip>(config.chip)),
      allocator_(0, config.slot_lines, config.slots),
      chunk_lines_(derive_chunk_lines(config)) {
  // The dispatcher spawns participant coroutines while the engine is
  // already draining — PDES windows cannot absorb mid-run root injection,
  // so service chips always use the serial loop (deterministically, at
  // every OCB_PDES_THREADS value).
  chip_->note_dynamic_spawning();
  if (config_.check || env_check_enabled()) {
    checker_ = std::make_unique<check::RaceChecker>(*chip_);
    chip_->add_observer(checker_.get());
  }
}

BroadcastService::~BroadcastService() = default;

void BroadcastService::submit(const Request& request) {
  OCB_REQUIRE(!ran_, "submit() after run()");
  OCB_REQUIRE(request.bytes > 0, "empty broadcast request");
  OCB_REQUIRE(request.root >= 0 && request.root < config_.parties,
              "request root is not a participant");
  Pending p;
  p.req = request;
  p.offset = next_offset_;
  next_offset_ += cache_lines_for(request.bytes) * kCacheLineBytes;
  OCB_REQUIRE(next_offset_ <= config_.chip.private_memory_limit / 4 * 3,
              "request stream exceeds the private-memory budget; "
              "fewer or smaller requests");
  requests_.push_back(p);
}

void BroadcastService::submit(const std::vector<Request>& requests) {
  for (const Request& r : requests) submit(r);
}

sim::Task<void> BroadcastService::dispatcher() {
  for (std::size_t i = 0; i < requests_.size(); ++i) {
    const sim::Time at = requests_[i].req.arrival;
    if (at > chip_->now()) {
      co_await chip_->engine().sleep(at - chip_->now());
    }
    on_arrival(i);
  }
}

void BroadcastService::on_arrival(std::size_t index) {
  RequestOutcome& out = outcomes_[index];
  if (queue_.size() >= config_.max_queue) {
    out.rejected = true;
    ++rejected_;
    return;
  }
  queue_.push_back(index);
  max_queue_depth_ = std::max(max_queue_depth_, queue_.size());
  try_dispatch();
}

void BroadcastService::try_dispatch() {
  while (!queue_.empty() && allocator_.slots_free() > 0) {
    std::size_t best = 0;  // kFifo: the queue is already in arrival order
    if (config_.policy == SchedPolicy::kSmallestFirst) {
      for (std::size_t i = 1; i < queue_.size(); ++i) {
        if (requests_[queue_[i]].req.bytes < requests_[queue_[best]].req.bytes) {
          best = i;
        }
      }
    }
    const std::size_t index = queue_[best];
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(best));
    start_request(index);
  }
}

void BroadcastService::start_request(std::size_t index) {
  const mem::MpbLease lease = *allocator_.acquire();
  // Scrub the slot on every core: the new collective restarts its flag
  // sequence numbering at 1, and a stale higher value from the previous
  // occupant would satisfy its waits early. Host-side, so no triggers fire
  // and the checker does not see it (the handoff edge below covers the
  // ordering instead). Safe: every previous participant returned before
  // release(), so nothing is parked on these lines.
  for (CoreId c = 0; c < config_.parties; ++c) {
    chip_->mpb(c).host_clear_lines(lease.base_line, lease.lines);
  }

  RequestOutcome& out = outcomes_[index];
  out.start = chip_->now();
  out.slot = lease.slot;

  coll::Params params;
  params.parties = config_.parties;
  params.k = config_.k;
  params.chunk_lines = chunk_lines_;
  params.double_buffering = config_.double_buffering;
  params.mpb_base_line = lease.base_line;

  auto active = std::make_unique<Active>();
  active->index = index;
  active->lease = lease;
  active->coll = coll::make(config_.algorithm, *chip_, params);
  active->remaining = config_.parties;
  Active* a = active.get();
  active_.push_back(std::move(active));

  for (CoreId c = 0; c < config_.parties; ++c) {
    chip_->spawn(c, [this, a](scc::Core& me) { return participant(me, a); });
  }
}

sim::Task<void> BroadcastService::participant(scc::Core& me, Active* a) {
  // Handoff edge, acquire side: this occupant causally follows everything
  // the slot's previous occupants did (release() came after all of their
  // participants returned). Reported on the slot's reserved handoff line,
  // keyed by generation, so the race checker orders recycled-slot accesses
  // without blessing genuine overlap.
  if (a->lease.generation > 0 && chip_->observing()) {
    chip_->observe_sync({scc::SyncOp::kAcquire, me.id(), 0,
                         handoff_line(a->lease.slot), a->lease.generation,
                         me.now()});
  }
  const Pending& p = requests_[a->index];
  co_await a->coll->run(me, p.req.root, p.offset, p.req.bytes);
  if (chip_->observing()) {
    chip_->observe_sync({scc::SyncOp::kRelease, me.id(), 0,
                         handoff_line(a->lease.slot), a->lease.generation + 1,
                         me.now()});
  }
  if (--a->remaining == 0) complete(a);
}

void BroadcastService::complete(Active* a) {
  const Pending& p = requests_[a->index];
  RequestOutcome& out = outcomes_[a->index];
  out.completion = chip_->now();

  const auto root_bytes =
      chip_->memory(p.req.root).host_bytes(p.offset, p.req.bytes);
  for (CoreId c = 0; c < config_.parties; ++c) {
    if (c == p.req.root) continue;
    const auto got = chip_->memory(c).host_bytes(p.offset, p.req.bytes);
    if (!std::equal(root_bytes.begin(), root_bytes.end(), got.begin())) {
      out.content_ok = false;
    }
  }

  if (trace_ != nullptr) {
    scc::JsonTraceCollector::Span span;
    span.name = "req " + std::to_string(out.id);
    span.category = "service";
    span.core = out.root;
    span.start = out.arrival;
    span.end = out.completion;
    span.args_json = "\"bytes\":" + std::to_string(out.bytes) +
                     ",\"slot\":" + std::to_string(out.slot) +
                     ",\"queue_ns\":" +
                     std::to_string((out.start - out.arrival) / sim::kNanosecond);
    trace_->add_span(std::move(span));
  }

  allocator_.release(a->lease);
  try_dispatch();
}

ServiceMetrics BroadcastService::run() {
  OCB_REQUIRE(!ran_, "BroadcastService::run() is single-use");
  OCB_REQUIRE(!requests_.empty(), "no requests submitted");
  ran_ = true;

  std::stable_sort(requests_.begin(), requests_.end(),
                   [](const Pending& a, const Pending& b) {
                     return a.req.arrival != b.req.arrival
                                ? a.req.arrival < b.req.arrival
                                : a.req.id < b.req.id;
                   });

  outcomes_.assign(requests_.size(), RequestOutcome{});
  for (std::size_t i = 0; i < requests_.size(); ++i) {
    const Request& r = requests_[i].req;
    outcomes_[i].id = r.id;
    outcomes_[i].root = r.root;
    outcomes_[i].bytes = r.bytes;
    outcomes_[i].arrival = r.arrival;
    fill_pattern(
        chip_->memory(r.root).host_bytes(requests_[i].offset, r.bytes),
        0x5eedf00dULL + static_cast<std::uint64_t>(r.id));
  }

  chip_->engine().spawn(dispatcher());
  const sim::RunResult rr = chip_->run();
  OCB_ENSURE(rr.completed(),
             "service deadlocked: " + std::to_string(rr.stalled_processes) +
                 " processes never returned");

  ServiceMetrics m;
  m.submitted = outcomes_.size();
  m.rejected = rejected_;
  m.max_queue_depth = max_queue_depth_;
  m.makespan = rr.end_time;
  m.engine_events = rr.events_processed;
  m.engine_max_queue_depth = rr.max_queue_depth;
  m.bulk_ops = rr.bulk_ops;
  m.bulk_ops_observed = rr.bulk_ops_observed;
  m.bulk_quiescent_ops = rr.bulk_quiescent_ops;
  m.bulk_fallback_ops = rr.bulk_fallback_ops;
  m.bulk_fallback_lines = rr.bulk_fallback_lines;
  for (const RequestOutcome& out : outcomes_) {
    if (out.rejected) continue;
    ++m.completed;
    m.delivered_bytes += out.bytes;
    m.content_ok = m.content_ok && out.content_ok;
    m.latency_ns.add((out.completion - out.arrival) / sim::kNanosecond);
    m.queue_wait_ns.add((out.start - out.arrival) / sim::kNanosecond);
    m.service_ns.add((out.completion - out.start) / sim::kNanosecond);
  }
  if (checker_ != nullptr) {
    m.race_violations = checker_->total_detected();
  }
  return m;
}

ServiceMetrics run_service(const ServiceConfig& config,
                           const TrafficSpec& traffic) {
  BroadcastService service(config);
  service.submit(generate_requests(traffic));
  return service.run();
}

}  // namespace ocb::svc
