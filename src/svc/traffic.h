// Deterministic broadcast-request traffic generation.
//
// The broadcast service (svc/service.h) consumes a stream of timestamped
// requests; this module synthesizes such streams from a compact spec:
// Poisson-like arrivals (memoryless inter-arrival gaps), a weighted mix of
// message sizes, and roots drawn uniformly (or pinned). Everything is
// driven by one seed through the repo's own Xoshiro256, and the gap
// sampler is pure integer arithmetic (a discretized geometric variate, the
// memoryless distribution on ticks — no libm), so a spec maps to a
// bit-identical request stream on every platform.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "sim/time.h"

namespace ocb::svc {

/// One entry of the message-size mix. Integer weights keep class selection
/// exact: a class is drawn with probability weight / sum(weights).
struct SizeClass {
  std::size_t bytes = kCacheLineBytes;
  std::uint32_t weight = 1;
};

struct TrafficSpec {
  int requests = 32;
  /// Mean inter-arrival gap. Arrivals are memoryless: each gap is a
  /// geometric number of fixed-size ticks (tick = mean/256), the discrete
  /// analogue of an exponential gap, so the stream is Poisson-like with
  /// rate 1/mean_gap_ns.
  std::uint64_t mean_gap_ns = 50'000;
  std::vector<SizeClass> sizes{{kCacheLineBytes, 1}, {4096, 1}, {32768, 1}};
  /// Roots are uniform over [0, parties) unless fixed_root >= 0 pins them.
  int parties = kNumCores;
  CoreId fixed_root = -1;
  std::uint64_t seed = 1;
};

/// One broadcast request: at `arrival`, core `root` wants to broadcast
/// `bytes` of its private memory to every participant.
struct Request {
  int id = -1;  ///< dense [0, requests), in arrival order
  sim::Time arrival = 0;
  CoreId root = 0;
  std::size_t bytes = 0;
};

/// Expands a spec into its request stream, sorted by arrival time (a
/// zero-tick gap lands two requests on the same instant; ids order them).
std::vector<Request> generate_requests(const TrafficSpec& spec);

}  // namespace ocb::svc
