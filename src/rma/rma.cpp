#include "rma/rma.h"

#include "common/require.h"
#include "scc/bulk.h"
#include "scc/chip.h"

namespace ocb::rma {

namespace {

void require_mpb_range(std::size_t first_line, std::size_t lines) {
  OCB_REQUIRE(lines > 0, "zero-length RMA operation");
  OCB_REQUIRE(first_line + lines <= kMpbCacheLines, "MPB range out of bounds");
}

void require_mem_offset(std::size_t offset) {
  OCB_REQUIRE(offset % kCacheLineBytes == 0, "private-memory offset must be line-aligned");
}

}  // namespace

// Each op takes the coalesced fast path (scc/bulk.h) when the chip grants
// it one (SccChip::try_acquire_bulk) — timing-identical by construction,
// asserted by tests/coalescing_equivalence_test.cpp and
// tests/observer_fastpath_test.cpp — and otherwise the per-line loop,
// which is the reference semantics (and the only path non-bulk-capable
// observers and jitter ever see). Acquisition can fail for cores
// multiplexing several collectives (svc/): each core keeps a small pool
// of BulkOps, and an op that finds every slot busy runs the per-line
// path, which interleaves with the in-flight chains exactly like
// concurrent reference ops. It also fails per-op when an observer's bulk
// window is not clear (a fault plan with a pending stall/crash for this
// core), which routes exactly the perturbed cores through the gates.

sim::Task<void> put_mpb_to_mpb(scc::Core& self, MpbAddr dst, std::size_t src_line,
                               std::size_t lines) {
  require_mpb_range(src_line, lines);
  require_mpb_range(dst.line, lines);
  scc::SccChip& chip = self.chip();
  if (scc::BulkOp* bulk = chip.try_acquire_bulk(self.id(), lines)) {
    co_await bulk->run(scc::BulkKind::kPutMpbToMpb, chip.config().o_put_mpb, dst.owner,
                       dst.line, src_line, lines);
    co_return;
  }
  co_await self.busy(chip.config().o_put_mpb);
  for (std::size_t i = 0; i < lines; ++i) {
    CacheLine cl;
    co_await self.mpb_read_line(self.id(), src_line + i, cl);
    co_await self.mpb_write_line(dst.owner, dst.line + i, cl);
  }
}

sim::Task<void> put_mem_to_mpb(scc::Core& self, MpbAddr dst, std::size_t src_offset,
                               std::size_t lines) {
  require_mem_offset(src_offset);
  require_mpb_range(dst.line, lines);
  scc::SccChip& chip = self.chip();
  if (scc::BulkOp* bulk = chip.try_acquire_bulk(self.id(), lines)) {
    co_await bulk->run(scc::BulkKind::kPutMemToMpb, chip.config().o_put_mem, dst.owner,
                       dst.line, src_offset, lines);
    co_return;
  }
  co_await self.busy(chip.config().o_put_mem);
  for (std::size_t i = 0; i < lines; ++i) {
    CacheLine cl;
    co_await self.mem_read_line(src_offset + i * kCacheLineBytes, cl);
    co_await self.mpb_write_line(dst.owner, dst.line + i, cl);
  }
}

sim::Task<void> get_mpb_to_mpb(scc::Core& self, std::size_t dst_line, MpbAddr src,
                               std::size_t lines) {
  require_mpb_range(src.line, lines);
  require_mpb_range(dst_line, lines);
  scc::SccChip& chip = self.chip();
  if (scc::BulkOp* bulk = chip.try_acquire_bulk(self.id(), lines)) {
    co_await bulk->run(scc::BulkKind::kGetMpbToMpb, chip.config().o_get_mpb, src.owner,
                       src.line, dst_line, lines);
    co_return;
  }
  co_await self.busy(chip.config().o_get_mpb);
  for (std::size_t i = 0; i < lines; ++i) {
    CacheLine cl;
    co_await self.mpb_read_line(src.owner, src.line + i, cl);
    co_await self.mpb_write_line(self.id(), dst_line + i, cl);
  }
}

sim::Task<void> get_mpb_to_mem(scc::Core& self, std::size_t dst_offset, MpbAddr src,
                               std::size_t lines) {
  require_mem_offset(dst_offset);
  require_mpb_range(src.line, lines);
  scc::SccChip& chip = self.chip();
  if (scc::BulkOp* bulk = chip.try_acquire_bulk(self.id(), lines)) {
    co_await bulk->run(scc::BulkKind::kGetMpbToMem, chip.config().o_get_mem, src.owner,
                       src.line, dst_offset, lines);
    co_return;
  }
  co_await self.busy(chip.config().o_get_mem);
  for (std::size_t i = 0; i < lines; ++i) {
    CacheLine cl;
    co_await self.mpb_read_line(src.owner, src.line + i, cl);
    co_await self.mem_write_line(dst_offset + i * kCacheLineBytes, cl);
  }
}

}  // namespace ocb::rma
