#include "rma/nonblocking.h"

#include <algorithm>

#include "common/require.h"
#include "rma/rma.h"

namespace ocb::rma {

AsyncTwoSided::AsyncTwoSided(scc::SccChip& chip, TwoSidedLayout layout)
    : chip_(&chip), layout_(layout), n_(chip.topology().num_cores()) {
  layout_.validate();
  const auto pairs = static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_);
  send_seq_.assign(pairs, 0);
  recv_seq_.assign(pairs, 0);
}

std::uint64_t& AsyncTwoSided::send_seq(CoreId from, CoreId to) {
  chip_->topology().require_core(from);
  chip_->topology().require_core(to);
  return send_seq_[static_cast<std::size_t>(from) * static_cast<std::size_t>(n_) +
                   static_cast<std::size_t>(to)];
}

std::uint64_t& AsyncTwoSided::recv_seq(CoreId from, CoreId to) {
  chip_->topology().require_core(from);
  chip_->topology().require_core(to);
  return recv_seq_[static_cast<std::size_t>(from) * static_cast<std::size_t>(n_) +
                   static_cast<std::size_t>(to)];
}

AsyncTwoSided::State& AsyncTwoSided::state_for(Request& request) {
  OCB_REQUIRE(request.valid_, "empty request handle");
  OCB_REQUIRE(request.index_ < states_.size(), "stale request handle");
  return states_[request.index_];
}

AsyncTwoSided::Request AsyncTwoSided::isend(scc::Core& self, CoreId dst,
                                            std::size_t offset, std::size_t bytes) {
  OCB_REQUIRE(dst != self.id(), "send to self");
  OCB_REQUIRE(bytes > 0, "empty send");
  for (const State& other : states_) {
    OCB_REQUIRE(!(other.kind == Kind::kSend && other.owner == self.id() &&
                  other.peer == dst && other.stage != Stage::kDone),
                "one outstanding send per (source, destination) pair");
  }
  State s{Kind::kSend, Stage::kAwaitReady, self.id(), dst,
          offset,      cache_lines_for(bytes),        0,   false};
  s.seq = ++send_seq(self.id(), dst);
  states_.push_back(s);
  return Request(states_.size() - 1);
}

AsyncTwoSided::Request AsyncTwoSided::irecv(scc::Core& self, CoreId src,
                                            std::size_t offset, std::size_t bytes) {
  OCB_REQUIRE(src != self.id(), "recv from self");
  OCB_REQUIRE(bytes > 0, "empty recv");
  for (const State& other : states_) {
    OCB_REQUIRE(!(other.kind == Kind::kRecv && other.owner == self.id() &&
                  other.peer == src && other.stage != Stage::kDone),
                "one outstanding receive per (source, destination) pair");
  }
  State s{Kind::kRecv, Stage::kAwaitSent, self.id(), src,
          offset,      cache_lines_for(bytes),       0,   false};
  s.seq = ++recv_seq(src, self.id());
  states_.push_back(s);
  return Request(states_.size() - 1);
}

sim::Task<bool> AsyncTwoSided::test(scc::Core& self, Request& request) {
  State& s = state_for(request);
  OCB_REQUIRE(s.owner == self.id(), "request tested by a foreign core");
  while (s.stage != Stage::kDone) {
    const std::size_t chunk = std::min(s.lines_left, layout_.payload_lines);
    if (s.kind == Kind::kSend) {
      // Probe the partner's readiness once (one remote read).
      const FlagValue v =
          co_await read_flag(self, MpbAddr{s.peer, layout_.ready_line});
      if (v != pack_flag(s.owner, s.seq)) co_return false;
      co_await put_mem_to_mpb(self, MpbAddr{s.peer, layout_.payload_line}, s.cursor,
                              chunk);
      co_await set_flag(self, MpbAddr{s.peer, layout_.sent_line},
                        pack_flag(s.owner, s.seq));
    } else {
      if (!s.ready_posted) {
        // Announce readiness for this chunk (local write).
        co_await self.busy(self.chip().config().o_put_mpb);
        note_flag_release(self, MpbAddr{s.owner, layout_.ready_line},
                          pack_flag(s.peer, s.seq));
        co_await self.mpb_write_line(s.owner, layout_.ready_line,
                                     encode_flag(pack_flag(s.peer, s.seq)));
        s.ready_posted = true;
      }
      const FlagValue v =
          co_await read_flag(self, MpbAddr{s.owner, layout_.sent_line});
      if (v != pack_flag(s.peer, s.seq)) co_return false;
      co_await get_mpb_to_mem(self, s.cursor, MpbAddr{s.owner, layout_.payload_line},
                              chunk);
    }
    // Chunk complete; advance.
    s.lines_left -= chunk;
    s.cursor += chunk * kCacheLineBytes;
    if (s.lines_left == 0) {
      s.stage = Stage::kDone;
      break;
    }
    s.ready_posted = false;
    s.seq = s.kind == Kind::kSend ? ++send_seq(s.owner, s.peer)
                                  : ++recv_seq(s.peer, s.owner);
  }
  co_return true;
}

sim::Task<void> AsyncTwoSided::wait(scc::Core& self, Request& request) {
  // Serial-only: the probe below samples a foreign line's epoch from
  // whatever lane the chain rests on, and test() walks multi-peer state
  // that has no single home lane. Not reachable from the PDES-eligible
  // workloads (registry collectives); revisit if that changes.
  OCB_REQUIRE(!self.chip().pdes_active(),
              "AsyncTwoSided::wait requires the serial event loop");
  for (;;) {
    // Park on the flag line the request is stalled on; the epoch capture
    // closes the probe/park window exactly as rma::wait_flag does.
    State& s = state_for(request);
    if (s.stage == Stage::kDone) co_return;
    const MpbAddr stall = s.kind == Kind::kSend
                              ? MpbAddr{s.peer, layout_.ready_line}
                              : MpbAddr{s.owner, layout_.sent_line};
    sim::Trigger& trigger = self.chip().mpb(stall.owner).line_trigger(stall.line);
    const std::uint64_t epoch = trigger.epoch();
    // NOTE: the awaited result lands in a local first — GCC 12
    // miscompiles `if (co_await ...)` conditions in coroutines.
    const bool completed = co_await test(self, request);
    if (completed) co_return;
    co_await trigger.wait_unless_changed(epoch);
  }
}

bool AsyncTwoSided::done(const Request& request) const {
  OCB_REQUIRE(request.valid_, "empty request handle");
  OCB_REQUIRE(request.index_ < states_.size(), "stale request handle");
  return states_[request.index_].stage == Stage::kDone;
}

}  // namespace ocb::rma
