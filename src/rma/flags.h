// Cache-line flags for inter-core synchronization.
//
// The SCC guarantees read/write atomicity at 32-byte cache-line granularity
// (paper §5.1), so one whole line per flag gives race-free flags with no
// locks. A flag's value is a 64-bit integer stored in the line's first
// eight bytes; the remaining bytes are free for the caller.
//
// Waiting models a poll loop without simulating every iteration: the waiter
// does one line read per wake-up, parks on the line's store trigger between
// unsuccessful checks, and pays a fresh read when the line changes — so the
// observed set-to-detect latency is one local (or remote) line read, which
// is the paper's "no time elapses between setting the flag and checking
// that the flag is set" plus the physically required read.
#pragma once

#include <cstring>

#include "rma/rma.h"
#include "scc/chip.h"

namespace ocb::rma {

using FlagValue = std::uint64_t;

/// Serializes a flag value into a cache line (little-endian, first 8 bytes).
inline CacheLine encode_flag(FlagValue v) {
  CacheLine cl{};
  std::memcpy(cl.bytes.data(), &v, sizeof v);
  return cl;
}

/// Reads the flag value out of a cache line.
inline FlagValue decode_flag(const CacheLine& cl) {
  FlagValue v;
  std::memcpy(&v, cl.bytes.data(), sizeof v);
  return v;
}

/// Packs (writer id, sequence) into a flag value; used by protocols whose
/// flag lines see different writers over time.
inline FlagValue pack_flag(CoreId writer, std::uint64_t seq) {
  return (static_cast<FlagValue>(writer + 1) << 40) | (seq & ((1ULL << 40) - 1));
}

// --- sync annotations for the observer chain -------------------------------
//
// The flag helpers below report their release/acquire semantics to the
// chip's TransactionObserver chain (scc/observer.h), keyed by the flag
// VALUE: "the next write of this line publishes v" / "this read observed
// v". Value keying is what keeps the happens-before reconstruction honest
// under fault injection — a suppressed or corrupted write must not donate
// an ordering edge it never delivered. Protocols that write or poll flag
// lines with raw Core transactions (twosided recv's ready line, the
// FT staged lines, ...) call these at their raw sites.

/// "The next write of `flag` publishes `value`" — call immediately before
/// the raw flag write.
inline void note_flag_release(scc::Core& self, MpbAddr flag, FlagValue value) {
  scc::SccChip& chip = self.chip();
  if (chip.observing()) {
    chip.observe_sync({scc::SyncOp::kRelease, self.id(), flag.owner, flag.line,
                       value, self.now()});
  }
}

/// "A read of `flag` observed `value`" — call once the protocol accepts a
/// polled value.
inline void note_flag_acquire(scc::Core& self, MpbAddr flag, FlagValue value) {
  scc::SccChip& chip = self.chip();
  if (chip.observing()) {
    chip.observe_sync({scc::SyncOp::kAcquire, self.id(), flag.owner, flag.line,
                       value, self.now()});
  }
}

/// "`self` is about to start polling `flag` as a flag" — marks the line as
/// a synchronization line before its first read.
inline void note_flag_wait(scc::Core& self, MpbAddr flag) {
  scc::SccChip& chip = self.chip();
  if (chip.observing()) {
    chip.observe_sync(
        {scc::SyncOp::kWaitBegin, self.id(), flag.owner, flag.line, 0, self.now()});
  }
}

/// "`self`'s reads until the matching end are checksum-validated optimistic
/// reads" — seqlock-style sections (e.g. FT-OC-Bcast's re-routed fetches,
/// which race with the source's buffer reuse by design and discard any
/// read whose payload fails validation).
inline void note_optimistic_begin(scc::Core& self) {
  scc::SccChip& chip = self.chip();
  if (chip.observing()) {
    chip.observe_sync(
        {scc::SyncOp::kOptimisticBegin, self.id(), self.id(), 0, 0, self.now()});
  }
}

inline void note_optimistic_end(scc::Core& self) {
  scc::SccChip& chip = self.chip();
  if (chip.observing()) {
    chip.observe_sync(
        {scc::SyncOp::kOptimisticEnd, self.id(), self.id(), 0, 0, self.now()});
  }
}

/// Writes `value` into a flag line of (possibly remote) core `flag.owner`.
/// The value comes from a register, so this is a write-only single-line put
/// (per-op overhead + one line write).
sim::Task<void> set_flag(scc::Core& self, MpbAddr flag, FlagValue value);

/// Reads a flag line (local or remote; full line-read cost either way).
sim::Task<FlagValue> read_flag(scc::Core& self, MpbAddr flag);

/// Polls a flag line until `pred(value)` holds; returns the accepted value.
///
/// The epoch capture (mpb_read_line's `epoch_out`) closes the
/// read-response window: the line's value is sampled at the owner's MPB,
/// but the poller only learns it one mesh traversal later — a store
/// landing in between must not be lost. The trigger reference is taken
/// AFTER the read each iteration: under PDES the chain then rests on the
/// line's home lane, making the park below lane-local and race-free.
template <typename Pred>
sim::Task<FlagValue> wait_flag(scc::Core& self, MpbAddr flag, Pred pred) {
  note_flag_wait(self, flag);
  for (;;) {
    std::uint64_t epoch = 0;
    CacheLine cl;
    co_await self.mpb_read_line(flag.owner, flag.line, cl, &epoch);
    const FlagValue v = decode_flag(cl);
    if (pred(v)) {
      note_flag_acquire(self, flag, v);
      co_return v;
    }
    sim::Trigger& trigger = self.chip().mpb(flag.owner).line_trigger(flag.line);
    co_await trigger.wait_unless_changed(epoch);
  }
}

/// Polls until the flag value is exactly `expected`.
sim::Task<FlagValue> wait_flag_equal(scc::Core& self, MpbAddr flag, FlagValue expected);

/// Polls until the flag value is >= `minimum` (monotone protocols).
sim::Task<FlagValue> wait_flag_at_least(scc::Core& self, MpbAddr flag, FlagValue minimum);

/// Host-side (zero simulated cost) flag initialization, for pre-run setup.
void host_init_flag(scc::SccChip& chip, MpbAddr flag, FlagValue value);

}  // namespace ocb::rma
