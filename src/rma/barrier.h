// Dissemination barrier on MPB flags.
//
// ceil(log2 P) rounds; in round r, ring-member i signals member
// (i + 2^r) mod P and waits for the matching signal from (i - 2^r) mod P.
// Flag values carry the barrier epoch and only grow, and a value may
// overstate the writer's progress without breaking correctness: seeing
// epoch >= e on round r's line still proves the round-r partner reached
// epoch e (it cannot write a later epoch without having passed e).
//
// Each member consumes `rounds()` consecutive MPB lines starting at
// `base_line`; every line has exactly one writer per round, so the
// cache-line atomicity guarantee is all the synchronization needed.
#pragma once

#include <vector>

#include "rma/flags.h"

namespace ocb::rma {

class FlagBarrier {
 public:
  /// Barrier over cores [0, parties); flags at lines
  /// [base_line, base_line + rounds()) of each member's MPB.
  FlagBarrier(scc::SccChip& chip, std::size_t base_line, int parties = kNumCores);

  /// Blocks `self` until all parties have arrived.
  sim::Task<void> wait(scc::Core& self);

  int rounds() const { return rounds_; }
  int parties() const { return parties_; }

 private:
  scc::SccChip* chip_;
  std::size_t base_line_;
  int parties_;
  int rounds_;
  std::vector<std::uint64_t> epoch_;  // per member
};

}  // namespace ocb::rma
