// Checksummed RMA transfers.
//
// End-to-end integrity for multi-line transfers: each variant moves lines
// exactly like its rma/rma.h counterpart (identical simulated cost — the
// fold happens on bytes the core already holds in registers) and returns
// the FNV-1a 64 checksum of the data as OBSERVED by this core. A getter
// comparing its fold against the putter's published fold detects any
// corruption the read path introduced; see core/ft_ocbcast.h for the
// protocol built on top.
#pragma once

#include <cstdint>

#include "rma/rma.h"

namespace ocb::rma {

inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// Folds one cache line into a running FNV-1a 64 hash.
constexpr std::uint64_t fold_line(std::uint64_t h, const CacheLine& cl) {
  for (std::byte b : cl.bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= kFnvPrime;
  }
  return h;
}

/// Host-side (zero simulated cost) checksum of `lines` cache lines of core
/// `core`'s private memory starting at byte `offset` — for verification.
std::uint64_t host_checksum_mem(scc::SccChip& chip, CoreId core,
                                std::size_t offset, std::size_t lines);

/// put_mem_to_mpb + checksum of the lines read from private memory.
sim::Task<std::uint64_t> put_mem_to_mpb_sum(scc::Core& self, MpbAddr dst,
                                            std::size_t src_offset,
                                            std::size_t lines);

/// get_mpb_to_mpb + checksum of the lines observed at the source MPB. Data
/// lands in the local MPB even when the checksum later proves it corrupt —
/// callers re-fetch before forwarding.
sim::Task<std::uint64_t> get_mpb_to_mpb_sum(scc::Core& self, std::size_t dst_line,
                                            MpbAddr src, std::size_t lines);

/// get_mpb_to_mem + checksum of the lines observed at the source MPB.
sim::Task<std::uint64_t> get_mpb_to_mem_sum(scc::Core& self, std::size_t dst_offset,
                                            MpbAddr src, std::size_t lines);

}  // namespace ocb::rma
