#include "rma/barrier.h"

#include "common/require.h"

namespace ocb::rma {

namespace {
int rounds_for(int parties) {
  int r = 0;
  int span = 1;
  while (span < parties) {
    span *= 2;
    ++r;
  }
  return r;
}
}  // namespace

FlagBarrier::FlagBarrier(scc::SccChip& chip, std::size_t base_line, int parties)
    : chip_(&chip),
      base_line_(base_line),
      parties_(parties),
      rounds_(rounds_for(parties)),
      epoch_(static_cast<std::size_t>(parties), 0) {
  OCB_REQUIRE(parties >= 1 && parties <= chip.topology().num_cores(),
              "party count out of range");
  OCB_REQUIRE(base_line + static_cast<std::size_t>(rounds_) <= kMpbCacheLines,
              "barrier flag lines exceed the MPB");
}

sim::Task<void> FlagBarrier::wait(scc::Core& self) {
  OCB_REQUIRE(self.id() < parties_, "core is not a barrier party");
  const std::uint64_t e = ++epoch_[static_cast<std::size_t>(self.id())];
  const int p = parties_;
  for (int r = 0; r < rounds_; ++r) {
    const CoreId to = (self.id() + (1 << r)) % p;
    const std::size_t line = base_line_ + static_cast<std::size_t>(r);
    co_await set_flag(self, MpbAddr{to, line}, e);
    co_await wait_flag_at_least(self, MpbAddr{self.id(), line}, e);
  }
}

}  // namespace ocb::rma
