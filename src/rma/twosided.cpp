#include "rma/twosided.h"

#include "common/require.h"

namespace ocb::rma {

void TwoSidedLayout::validate() const {
  OCB_REQUIRE(payload_lines > 0, "empty two-sided payload buffer");
  OCB_REQUIRE(payload_line + payload_lines <= kMpbCacheLines,
              "two-sided payload buffer exceeds the MPB");
  OCB_REQUIRE(ready_line != sent_line, "ready and sent flags must differ");
  auto inside_payload = [this](std::size_t line) {
    return line >= payload_line && line < payload_line + payload_lines;
  };
  OCB_REQUIRE(!inside_payload(ready_line) && !inside_payload(sent_line),
              "flag lines overlap the payload buffer");
}

TwoSided::TwoSided(scc::SccChip& chip, TwoSidedLayout layout)
    : chip_(&chip), layout_(layout), n_(chip.topology().num_cores()) {
  layout_.validate();
  const auto pairs = static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_);
  send_seq_.assign(pairs, 0);
  recv_seq_.assign(pairs, 0);
}

std::uint64_t& TwoSided::send_seq(CoreId from, CoreId to) {
  chip_->topology().require_core(from);
  chip_->topology().require_core(to);
  return send_seq_[static_cast<std::size_t>(from) * static_cast<std::size_t>(n_) +
                   static_cast<std::size_t>(to)];
}

std::uint64_t& TwoSided::recv_seq(CoreId from, CoreId to) {
  chip_->topology().require_core(from);
  chip_->topology().require_core(to);
  return recv_seq_[static_cast<std::size_t>(from) * static_cast<std::size_t>(n_) +
                   static_cast<std::size_t>(to)];
}

sim::Task<void> TwoSided::send(scc::Core& self, CoreId dst, std::size_t offset,
                               std::size_t bytes) {
  OCB_REQUIRE(dst != self.id(), "send to self");
  OCB_REQUIRE(bytes > 0, "empty send");
  std::size_t lines_left = cache_lines_for(bytes);
  std::size_t cursor = offset;
  while (lines_left > 0) {
    const std::size_t chunk = std::min(lines_left, layout_.payload_lines);
    const std::uint64_t s = ++send_seq(self.id(), dst);
    co_await wait_flag_equal(self, MpbAddr{dst, layout_.ready_line},
                             pack_flag(self.id(), s));
    co_await put_mem_to_mpb(self, MpbAddr{dst, layout_.payload_line}, cursor, chunk);
    co_await set_flag(self, MpbAddr{dst, layout_.sent_line}, pack_flag(self.id(), s));
    lines_left -= chunk;
    cursor += chunk * kCacheLineBytes;
  }
}

sim::Task<void> TwoSided::recv(scc::Core& self, CoreId src, std::size_t offset,
                               std::size_t bytes) {
  OCB_REQUIRE(src != self.id(), "recv from self");
  OCB_REQUIRE(bytes > 0, "empty recv");
  std::size_t lines_left = cache_lines_for(bytes);
  std::size_t cursor = offset;
  while (lines_left > 0) {
    const std::size_t chunk = std::min(lines_left, layout_.payload_lines);
    const std::uint64_t s = ++recv_seq(src, self.id());
    // Announce readiness in the local MPB: write cost, no arbitration.
    co_await self.busy(self.chip().config().o_put_mpb);
    note_flag_release(self, MpbAddr{self.id(), layout_.ready_line},
                      pack_flag(src, s));
    co_await self.mpb_write_line(self.id(), layout_.ready_line,
                                 encode_flag(pack_flag(src, s)));
    co_await wait_flag_equal(self, MpbAddr{self.id(), layout_.sent_line},
                             pack_flag(src, s));
    co_await get_mpb_to_mem(self, cursor, MpbAddr{self.id(), layout_.payload_line},
                            chunk);
    lines_left -= chunk;
    cursor += chunk * kCacheLineBytes;
  }
}

}  // namespace ocb::rma
