// One-sided RMA operations (the RCCE put/get equivalents, paper §2.2).
//
// A put executed by core c reads data from its own MPB or its private
// off-chip memory and writes it to some (usually remote) MPB; a get reads
// from some MPB and writes to c's own MPB or private memory. Data moves one
// cache line at a time because the P54C issues a single outstanding memory
// transaction (§3.1.3): an m-line operation is m sequential line
// transactions plus one per-operation software overhead, which is exactly
// the structure of the model's Formulas 7-12.
//
// All offsets are in cache lines for MPBs and in bytes (line-aligned) for
// private memory.
#pragma once

#include "common/types.h"
#include "scc/core.h"

namespace ocb::rma {

/// A location inside some core's MPB.
struct MpbAddr {
  CoreId owner = 0;
  std::size_t line = 0;

  friend bool operator==(const MpbAddr&, const MpbAddr&) = default;
};

/// put, source = caller's local MPB (Formula 7):
/// C = o_put^mpb + m*C_r^mpb(1) + m*C_w^mpb(d_dst).
sim::Task<void> put_mpb_to_mpb(scc::Core& self, MpbAddr dst, std::size_t src_line,
                               std::size_t lines);

/// put, source = caller's private memory (Formula 8):
/// C = o_put^mem + m*C_r^mem(d_src) + m*C_w^mpb(d_dst).
sim::Task<void> put_mem_to_mpb(scc::Core& self, MpbAddr dst, std::size_t src_offset,
                               std::size_t lines);

/// get, destination = caller's local MPB (Formula 11):
/// C = o_get^mpb + m*C_r^mpb(d_src) + m*C_w^mpb(1).
sim::Task<void> get_mpb_to_mpb(scc::Core& self, std::size_t dst_line, MpbAddr src,
                               std::size_t lines);

/// get, destination = caller's private memory (Formula 12):
/// C = o_get^mem + m*C_r^mpb(d_src) + m*C_w^mem(d_dst).
sim::Task<void> get_mpb_to_mem(scc::Core& self, std::size_t dst_offset, MpbAddr src,
                               std::size_t lines);

}  // namespace ocb::rma
