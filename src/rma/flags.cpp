#include "rma/flags.h"

namespace ocb::rma {

sim::Task<void> set_flag(scc::Core& self, MpbAddr flag, FlagValue value) {
  co_await self.busy(self.chip().config().o_put_mpb);
  note_flag_release(self, flag, value);
  co_await self.mpb_write_line(flag.owner, flag.line, encode_flag(value));
}

sim::Task<FlagValue> read_flag(scc::Core& self, MpbAddr flag) {
  CacheLine cl;
  co_await self.mpb_read_line(flag.owner, flag.line, cl);
  const FlagValue v = decode_flag(cl);
  // Every observed value is an acquire of that value: the caller decides
  // afterwards whether it constitutes progress, but the reads-from edge is
  // real either way (the read returned exactly that store's line).
  note_flag_acquire(self, flag, v);
  co_return v;
}

sim::Task<FlagValue> wait_flag_equal(scc::Core& self, MpbAddr flag, FlagValue expected) {
  co_return co_await wait_flag(self, flag,
                               [expected](FlagValue v) { return v == expected; });
}

sim::Task<FlagValue> wait_flag_at_least(scc::Core& self, MpbAddr flag,
                                        FlagValue minimum) {
  co_return co_await wait_flag(self, flag,
                               [minimum](FlagValue v) { return v >= minimum; });
}

void host_init_flag(scc::SccChip& chip, MpbAddr flag, FlagValue value) {
  if (chip.observing()) {
    chip.observe_sync(
        {scc::SyncOp::kHostInit, -1, flag.owner, flag.line, value, chip.now()});
  }
  chip.mpb(flag.owner).host_line(flag.line) = encode_flag(value);
}

}  // namespace ocb::rma
