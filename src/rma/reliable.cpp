#include "rma/reliable.h"

namespace ocb::rma {

sim::Task<std::optional<FlagValue>> wait_flag_at_least_watchdog(
    scc::Core& self, MpbAddr flag, FlagValue minimum, sim::Duration timeout) {
  auto at_least = [minimum](FlagValue v) { return v >= minimum; };
  const std::optional<FlagValue> got =
      co_await wait_flag_watchdog(self, flag, at_least, timeout);
  co_return got;
}

sim::Task<bool> set_flag_reliable(scc::Core& self, MpbAddr flag, FlagValue value,
                                  const WatchdogPolicy& policy) {
  auto equals = [value](FlagValue v) { return v == value; };
  const bool ok = co_await set_flag_reliable(self, flag, value, policy, equals);
  co_return ok;
}

sim::Task<std::optional<FlagValue>> wait_checked_flag_at_least_watchdog(
    scc::Core& self, MpbAddr flag, FlagValue minimum, sim::Duration timeout) {
  note_flag_wait(self, flag);
  const sim::Time deadline = self.now() + timeout;
  for (;;) {
    std::uint64_t epoch = 0;
    CacheLine cl;
    co_await self.mpb_read_line(flag.owner, flag.line, cl, &epoch);
    const FlagValue v = decode_checked_flag(cl);
    if (v >= minimum) {
      note_flag_acquire(self, flag, v);
      co_return v;
    }
    const sim::Time now = self.now();
    if (now >= deadline) co_return std::nullopt;
    self.set_wait_note("flag-watchdog", flag.owner, static_cast<int>(flag.line));
    // Trigger reference taken after the read (home-lane under PDES; see
    // rma::wait_flag).
    sim::Trigger& trigger = self.chip().mpb(flag.owner).line_trigger(flag.line);
    const bool woken = co_await trigger.wait_for(deadline - now, epoch);
    self.set_wait_note("running");
    if (woken) continue;
    CacheLine last;
    co_await self.mpb_read_line(flag.owner, flag.line, last);
    const FlagValue lv = decode_checked_flag(last);
    if (lv >= minimum) {
      note_flag_acquire(self, flag, lv);
      co_return lv;
    }
    co_return std::nullopt;
  }
}

sim::Task<bool> set_checked_flag_reliable(scc::Core& self, MpbAddr flag,
                                          FlagValue value,
                                          const WatchdogPolicy& policy) {
  const CacheLine want = encode_checked_flag(value);
  sim::Duration backoff = policy.write_backoff;
  for (int attempt = 0;; ++attempt) {
    co_await self.busy(self.chip().config().o_put_mpb);
    note_flag_release(self, flag, value);
    co_await self.mpb_write_line(flag.owner, flag.line, want);
    CacheLine back;
    co_await self.mpb_read_line(flag.owner, flag.line, back);
    const bool ok = decode_checked_flag(back) >= value;
    if (ok) co_return true;
    if (attempt >= policy.write_retries) co_return false;
    co_await self.busy(backoff);
    backoff *= 2;
  }
}

}  // namespace ocb::rma
