#include "rma/checksum.h"

#include "common/require.h"
#include "scc/chip.h"

namespace ocb::rma {

namespace {

void require_mpb_range(std::size_t first_line, std::size_t lines) {
  OCB_REQUIRE(lines > 0, "zero-length RMA operation");
  OCB_REQUIRE(first_line + lines <= kMpbCacheLines, "MPB range out of bounds");
}

void require_mem_offset(std::size_t offset) {
  OCB_REQUIRE(offset % kCacheLineBytes == 0,
              "private-memory offset must be line-aligned");
}

}  // namespace

std::uint64_t host_checksum_mem(scc::SccChip& chip, CoreId core,
                                std::size_t offset, std::size_t lines) {
  std::uint64_t h = kFnvOffsetBasis;
  for (std::size_t i = 0; i < lines; ++i) {
    h = fold_line(h, chip.memory(core).load(offset + i * kCacheLineBytes));
  }
  return h;
}

sim::Task<std::uint64_t> put_mem_to_mpb_sum(scc::Core& self, MpbAddr dst,
                                            std::size_t src_offset,
                                            std::size_t lines) {
  require_mem_offset(src_offset);
  require_mpb_range(dst.line, lines);
  co_await self.busy(self.chip().config().o_put_mem);
  std::uint64_t h = kFnvOffsetBasis;
  for (std::size_t i = 0; i < lines; ++i) {
    CacheLine cl;
    co_await self.mem_read_line(src_offset + i * kCacheLineBytes, cl);
    h = fold_line(h, cl);
    co_await self.mpb_write_line(dst.owner, dst.line + i, cl);
  }
  co_return h;
}

sim::Task<std::uint64_t> get_mpb_to_mpb_sum(scc::Core& self, std::size_t dst_line,
                                            MpbAddr src, std::size_t lines) {
  require_mpb_range(src.line, lines);
  require_mpb_range(dst_line, lines);
  co_await self.busy(self.chip().config().o_get_mpb);
  std::uint64_t h = kFnvOffsetBasis;
  for (std::size_t i = 0; i < lines; ++i) {
    CacheLine cl;
    co_await self.mpb_read_line(src.owner, src.line + i, cl);
    h = fold_line(h, cl);
    co_await self.mpb_write_line(self.id(), dst_line + i, cl);
  }
  co_return h;
}

sim::Task<std::uint64_t> get_mpb_to_mem_sum(scc::Core& self, std::size_t dst_offset,
                                            MpbAddr src, std::size_t lines) {
  require_mem_offset(dst_offset);
  require_mpb_range(src.line, lines);
  co_await self.busy(self.chip().config().o_get_mem);
  std::uint64_t h = kFnvOffsetBasis;
  for (std::size_t i = 0; i < lines; ++i) {
    CacheLine cl;
    co_await self.mpb_read_line(src.owner, src.line + i, cl);
    h = fold_line(h, cl);
    co_await self.mem_write_line(dst_offset + i * kCacheLineBytes, cl);
  }
  co_return h;
}

}  // namespace ocb::rma
