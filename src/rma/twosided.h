// Two-sided send/recv built on one-sided RMA (the RCCE approach, §1.1).
//
// Messages move through the *receiver's* MPB in chunks of up to
// `payload_lines` cache lines (251 by default — the paper's M_rcce): the
// sender puts a chunk from its private memory into the receiver's MPB
// payload buffer, the receiver gets it into its private memory. A
// send/receive pair therefore costs C_put^mem(m) + C_get^mem(m) per chunk
// plus two flag operations — the structure the paper's Formula 14 models.
//
// Synchronization is a receiver-announced rendezvous with per-ordered-pair
// sequence numbers:
//
//   receiver: ready := pack(src, s)   (its own MPB; single writer = owner)
//             wait  sent == pack(src, s); get payload; next chunk
//   sender:   wait  ready == pack(me, s)  (remote poll)
//             put payload; sent := pack(me, s)
//
// Because a sender writes nothing until the receiver has posted a matching
// ready, concurrent would-be senders to one receiver serialize safely, and
// back-to-back iterations cannot overwrite an unconsumed buffer. Both calls
// block until their side of the transfer completes (RCCE semantics).
#pragma once

#include <vector>

#include "rma/flags.h"

namespace ocb::rma {

/// Where the two-sided protocol lives inside each core's MPB.
struct TwoSidedLayout {
  std::size_t ready_line = 0;
  std::size_t sent_line = 1;
  std::size_t payload_line = 2;
  std::size_t payload_lines = 251;  ///< M_rcce, paper §5.1

  void validate() const;
};

/// Shared endpoint table for matched send/recv between any core pair.
/// Create one per chip (it holds the pairwise sequence counters); all cores
/// use the same instance from their coroutines (single-threaded engine).
class TwoSided {
 public:
  explicit TwoSided(scc::SccChip& chip, TwoSidedLayout layout = {});

  /// Blocking send of `bytes` bytes at `offset` in self's private memory.
  sim::Task<void> send(scc::Core& self, CoreId dst, std::size_t offset,
                       std::size_t bytes);

  /// Blocking receive into `offset` of self's private memory; must match a
  /// send(dst=self) from `src` with the same byte count.
  sim::Task<void> recv(scc::Core& self, CoreId src, std::size_t offset,
                       std::size_t bytes);

  const TwoSidedLayout& layout() const { return layout_; }

 private:
  std::uint64_t& send_seq(CoreId from, CoreId to);
  std::uint64_t& recv_seq(CoreId from, CoreId to);

  scc::SccChip* chip_;
  TwoSidedLayout layout_;
  int n_;  ///< chip core count (pair-table stride)
  std::vector<std::uint64_t> send_seq_;
  std::vector<std::uint64_t> recv_seq_;
};

}  // namespace ocb::rma
