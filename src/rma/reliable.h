// Watchdog waits and reliable flag writes — the recovery primitives under
// the fault-tolerant collectives (core/ft_ocbcast.h).
//
// wait_flag_watchdog is rma::wait_flag with a deadline: instead of parking
// forever on a flag that will never be set (stuck line, crashed writer), the
// waiter arms a simulated timer (sim::Trigger::wait_for) and reports the
// timeout to its caller, which decides whether to retry, probe, or route
// around the silent peer.
//
// set_flag_reliable closes the stuck-write window: write, read back, and if
// the line does not hold an acceptable value, back off (doubling) and write
// again, up to a bound. Against the fault model's transient stuck intervals
// this converges; a permanently stuck line surfaces as `false`.
#pragma once

#include <optional>

#include "rma/flags.h"

namespace ocb::rma {

struct WatchdogPolicy {
  /// How long a flag wait may sit without progress before reporting.
  sim::Duration timeout = 150 * sim::kMicrosecond;
  /// Write-verify attempts before set_flag_reliable gives up.
  int write_retries = 6;
  /// Backoff before the first rewrite; doubles per attempt.
  sim::Duration write_backoff = 2 * sim::kMicrosecond;
};

/// wait_flag with a deadline. Returns the accepted value, or nullopt if
/// `timeout` of simulated time elapsed without `pred` holding (after one
/// final re-read, so a set that raced the timer is not missed).
template <typename Pred>
sim::Task<std::optional<FlagValue>> wait_flag_watchdog(scc::Core& self,
                                                       MpbAddr flag, Pred pred,
                                                       sim::Duration timeout) {
  note_flag_wait(self, flag);
  const sim::Time deadline = self.now() + timeout;
  for (;;) {
    std::uint64_t epoch = 0;
    CacheLine cl;
    co_await self.mpb_read_line(flag.owner, flag.line, cl, &epoch);
    const FlagValue v = decode_flag(cl);
    if (pred(v)) {
      note_flag_acquire(self, flag, v);
      co_return v;
    }
    const sim::Time now = self.now();
    if (now >= deadline) co_return std::nullopt;
    self.set_wait_note("flag-watchdog", flag.owner, static_cast<int>(flag.line));
    // Trigger reference taken after the read (home-lane under PDES; see
    // rma::wait_flag).
    sim::Trigger& trigger = self.chip().mpb(flag.owner).line_trigger(flag.line);
    const bool woken = co_await trigger.wait_for(deadline - now, epoch);
    self.set_wait_note("running");
    if (woken) continue;
    // Timer fired: one last read in case the store landed after our sample
    // but before the trigger registered our wait.
    CacheLine last;
    co_await self.mpb_read_line(flag.owner, flag.line, last);
    const FlagValue lv = decode_flag(last);
    if (pred(lv)) {
      note_flag_acquire(self, flag, lv);
      co_return lv;
    }
    co_return std::nullopt;
  }
}

/// wait_flag_at_least with a deadline.
sim::Task<std::optional<FlagValue>> wait_flag_at_least_watchdog(
    scc::Core& self, MpbAddr flag, FlagValue minimum, sim::Duration timeout);

/// Writes `value` and verifies it took hold, retrying with doubling backoff
/// per `policy`. `accepted` decides what a read-back must satisfy (defaults
/// to exact equality; monotone protocols pass >=). Returns false if every
/// attempt read back an unacceptable value.
template <typename Accept>
sim::Task<bool> set_flag_reliable(scc::Core& self, MpbAddr flag, FlagValue value,
                                  const WatchdogPolicy& policy, Accept accepted) {
  sim::Duration backoff = policy.write_backoff;
  for (int attempt = 0;; ++attempt) {
    co_await set_flag(self, flag, value);
    const FlagValue back = co_await read_flag(self, flag);
    const bool ok = accepted(back);
    if (ok) co_return true;
    if (attempt >= policy.write_retries) co_return false;
    co_await self.busy(backoff);
    backoff *= 2;
  }
}

sim::Task<bool> set_flag_reliable(scc::Core& self, MpbAddr flag, FlagValue value,
                                  const WatchdogPolicy& policy);

// --- Self-validating ("checked") flags ------------------------------------
//
// A checked flag line carries its value plus an FNV-1a tag over the value
// bytes. A reader validates the tag before trusting the value, so a
// transiently corrupted *read* of the line decodes as "no value" (treated
// as flag value 0 — no progress) instead of a lie: a single bit flip can
// never fake an acknowledgement that was not written. The fault-tolerant
// collectives use these for their load-bearing flags (done/ack lines); a
// zero-initialized line deliberately fails validation and reads as 0.

/// FNV-1a over the eight value bytes.
inline std::uint64_t checked_flag_tag(FlagValue v) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline CacheLine encode_checked_flag(FlagValue v) {
  CacheLine cl{};
  const std::uint64_t tag = checked_flag_tag(v);
  std::memcpy(cl.bytes.data(), &v, sizeof v);
  std::memcpy(cl.bytes.data() + sizeof v, &tag, sizeof tag);
  return cl;
}

/// The stored value if the tag validates, else 0 ("no progress").
inline FlagValue decode_checked_flag(const CacheLine& cl) {
  FlagValue v;
  std::uint64_t tag;
  std::memcpy(&v, cl.bytes.data(), sizeof v);
  std::memcpy(&tag, cl.bytes.data() + sizeof v, sizeof tag);
  return tag == checked_flag_tag(v) ? v : 0;
}

/// wait_flag_at_least_watchdog over a checked flag line: corrupted reads
/// count as no progress and are simply re-polled.
sim::Task<std::optional<FlagValue>> wait_checked_flag_at_least_watchdog(
    scc::Core& self, MpbAddr flag, FlagValue minimum, sim::Duration timeout);

/// set_flag_reliable for a checked flag line; a read-back is acceptable
/// when it validates and is >= `value` (monotone protocols).
sim::Task<bool> set_checked_flag_reliable(scc::Core& self, MpbAddr flag,
                                          FlagValue value,
                                          const WatchdogPolicy& policy);

}  // namespace ocb::rma
