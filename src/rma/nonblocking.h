// iRCCE-style non-blocking send/recv.
//
// The SCC has no DMA engine: a "non-blocking" transfer cannot progress in
// the background — all copying is done by the core itself whenever the
// application calls test() (iRCCE's push/test model). What non-blocking
// buys is *overlap of waiting with compute*: instead of spinning on the
// partner's flag, the core checks once, goes back to useful work, and
// pushes the next chunk when the partner is ready.
//
// The wire protocol is exactly rma::TwoSided's rendezvous (receiver posts
// `ready`, sender puts the chunk and raises `sent`, per-ordered-pair
// sequence numbers), so AsyncTwoSided interoperates with nothing — it owns
// its flag/payload lines like every other protocol object, and an isend
// must be matched by an irecv on the same AsyncTwoSided instance.
//
// Usage (inside a core coroutine):
//
//   auto req = async.isend(me, dst, offset, bytes);      // no simulated time
//   while (!co_await async.test(me, req)) {              // one probe + any
//     co_await me.busy(compute_slice);                   //   possible pushes
//   }
//   // or: co_await async.wait(me, req);                 // park until done
#pragma once

#include <cstdint>
#include <deque>

#include "rma/twosided.h"

namespace ocb::rma {

class AsyncTwoSided {
 public:
  explicit AsyncTwoSided(scc::SccChip& chip, TwoSidedLayout layout = {});

  /// Opaque request handle (valid for the lifetime of this object).
  class Request {
   public:
    Request() = default;

   private:
    friend class AsyncTwoSided;
    explicit Request(std::size_t index) : index_(index), valid_(true) {}
    std::size_t index_ = 0;
    bool valid_ = false;
  };

  /// Starts a send of `bytes` at `offset` of self's private memory to
  /// `dst`. Costs no simulated time; all work happens in test()/wait().
  Request isend(scc::Core& self, CoreId dst, std::size_t offset, std::size_t bytes);

  /// Starts the matching receive into `offset` of self's private memory.
  Request irecv(scc::Core& self, CoreId src, std::size_t offset, std::size_t bytes);

  /// Makes as much progress as currently possible (one flag probe per
  /// stalled chunk boundary, plus any enabled copies — which do occupy the
  /// core). Returns true once the request has completed. Must be called by
  /// the request's owning core.
  sim::Task<bool> test(scc::Core& self, Request& request);

  /// Blocks until completion: test(), parking on the stalling flag line
  /// between unsuccessful probes (equivalent cost to the blocking call).
  sim::Task<void> wait(scc::Core& self, Request& request);

  /// True once the request completed (host-side query, no simulated time).
  bool done(const Request& request) const;

  const TwoSidedLayout& layout() const { return layout_; }

 private:
  enum class Kind : std::uint8_t { kSend, kRecv };
  enum class Stage : std::uint8_t {
    kAwaitReady,  // send: partner's ready flag not yet seen
    kAwaitSent,   // recv: sender's sent flag not yet seen
    kDone,
  };

  struct State {
    Kind kind;
    Stage stage;
    CoreId owner;
    CoreId peer;
    std::size_t cursor;      // private-memory offset of the next chunk
    std::size_t lines_left;  // whole message remainder in lines
    std::uint64_t seq;       // pair sequence of the in-flight chunk
    bool ready_posted;       // recv: announced readiness for `seq`
  };

  State& state_for(Request& request);
  std::uint64_t& send_seq(CoreId from, CoreId to);
  std::uint64_t& recv_seq(CoreId from, CoreId to);

  scc::SccChip* chip_;
  TwoSidedLayout layout_;
  // deque: stable references across concurrent isend/irecv posts
  // (test()/wait() hold a State& across suspension points).
  std::deque<State> states_;
  int n_;  ///< chip core count (pair-table stride)
  std::vector<std::uint64_t> send_seq_;
  std::vector<std::uint64_t> recv_seq_;
};

}  // namespace ocb::rma
