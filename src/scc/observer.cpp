#include "scc/observer.h"

#include "scc/chip.h"

namespace ocb::scc {

// Synthesizes the per-line callback stream the reference path would have
// delivered for this op: the kBusy kickoff completion, then per line the
// source half's read and the destination half's write with their
// completion intervals. Values are recovered from post-op storage — the
// source still holds what the read observed, the destination holds what
// the write stored, and a needs-free observer promised it mutated
// neither — so the synthesis is exact for every observer this hook can
// legally reach.
void TransactionObserver::on_bulk(const BulkTxn& txn) {
  on_complete({TraceOp::kBusy, txn.core, txn.core, 0, txn.issue, txn.kickoff});
  for (std::size_t line = 0; line < txn.lines; ++line) {
    for (int hi = 0; hi < 2; ++hi) {
      const BulkHalfDesc& h = txn.half[hi];
      const BulkHalfTimes& ts = txn.schedule[line * 2 + hi];
      const std::size_t index = h.base + line * h.stride;
      const TraceOp op = ts.cache_hit ? TraceOp::kCacheHit : h.op;
      CacheLine value = h.mem ? txn.chip->memory(txn.core).load(index)
                              : txn.chip->mpb(h.target).load(index);
      const LineTxn access{op, txn.core, h.target, index, ts.access};
      if (h.op == TraceOp::kMpbWrite || h.op == TraceOp::kMemWrite) {
        on_write(access, value);
      } else {
        on_read(access, value);
      }
      on_complete({op, txn.core, h.target, index, ts.begin, ts.end});
    }
  }
}

}  // namespace ocb::scc
