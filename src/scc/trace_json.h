// Chrome trace_event JSON export of a simulated run.
//
// JsonTraceCollector buffers TraceEvents and renders them in the Chrome
// tracing / Perfetto "traceEvents" JSON format: one complete ("ph":"X")
// event per transaction, pid 0, tid = core id, microsecond timestamps.
// Load the file at chrome://tracing or https://ui.perfetto.dev to scrub a
// per-core timeline of a collective.
//
//   scc::JsonTraceCollector trace;
//   chip.set_trace_sink(trace.sink());
//   ... run ...
//   trace.write_file("bcast.trace.json");
#pragma once

#include <string>
#include <vector>

#include "scc/trace.h"

namespace ocb::scc {

class JsonTraceCollector {
 public:
  /// A sink to install with SccChip::set_trace_sink. The collector must
  /// outlive the chip's use of the sink.
  TraceSink sink() {
    return [this](const TraceEvent& e) { events_.push_back(e); };
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

  /// Renders the buffered events as a complete trace_event JSON document.
  std::string to_json() const;

  /// Writes to_json() to `path`; returns false on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace ocb::scc
