// Chrome trace_event JSON export of a simulated run.
//
// JsonTraceCollector buffers TraceEvents and renders them in the Chrome
// tracing / Perfetto "traceEvents" JSON format: one complete ("ph":"X")
// event per transaction, pid 0, tid = core id, microsecond timestamps.
// Load the file at chrome://tracing or https://ui.perfetto.dev to scrub a
// per-core timeline of a collective.
//
//   scc::JsonTraceCollector trace;
//   chip.set_trace_sink(trace.sink());
//   ... run ...
//   trace.write_file("bcast.trace.json");
#pragma once

#include <string>
#include <vector>

#include "scc/trace.h"

namespace ocb::scc {

class JsonTraceCollector {
 public:
  /// A cross-core arrow in the rendered timeline ("ph":"s" → "ph":"f"
  /// flow-event pair). The race checker emits one per violation, linking
  /// the two conflicting transactions.
  struct Flow {
    std::string name;
    CoreId from_core;
    sim::Time from_time;
    CoreId to_core;
    sim::Time to_time;
  };

  /// A sink to install with SccChip::set_trace_sink. The collector must
  /// outlive the chip's use of the sink.
  TraceSink sink() {
    return [this](const TraceEvent& e) { events_.push_back(e); };
  }

  void add_flow(Flow flow) { flows_.push_back(std::move(flow)); }

  const std::vector<TraceEvent>& events() const { return events_; }
  const std::vector<Flow>& flows() const { return flows_; }
  void clear() {
    events_.clear();
    flows_.clear();
  }

  /// Renders the buffered events as a complete trace_event JSON document.
  std::string to_json() const;

  /// Writes to_json() to `path`; returns false on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  std::vector<TraceEvent> events_;
  std::vector<Flow> flows_;
};

}  // namespace ocb::scc
