// Chrome trace_event JSON export of a simulated run.
//
// JsonTraceCollector buffers TraceEvents and renders them in the Chrome
// tracing / Perfetto "traceEvents" JSON format: one complete ("ph":"X")
// event per transaction, pid 0, tid = core id, microsecond timestamps.
// Load the file at chrome://tracing or https://ui.perfetto.dev to scrub a
// per-core timeline of a collective.
//
//   scc::JsonTraceCollector trace;
//   chip.set_trace_sink(trace.sink());
//   ... run ...
//   trace.write_file("bcast.trace.json");
#pragma once

#include <string>
#include <vector>

#include "scc/observer.h"
#include "scc/trace.h"

namespace ocb::scc {

class JsonTraceCollector {
 public:
  /// A cross-core arrow in the rendered timeline ("ph":"s" → "ph":"f"
  /// flow-event pair). The race checker emits one per violation, linking
  /// the two conflicting transactions.
  struct Flow {
    std::string name;
    CoreId from_core;
    sim::Time from_time;
    CoreId to_core;
    sim::Time to_time;
  };

  /// A labelled interval on a core's timeline, rendered as a complete
  /// ("ph":"X") event in its own category. The broadcast service emits one
  /// span per request (arrival → completion, tid = root core) so the
  /// request lifecycle overlays the per-transaction rows.
  struct Span {
    std::string name;
    std::string category;
    CoreId core;
    sim::Time start;
    sim::Time end;
    std::string args_json;  ///< extra "args" fields, e.g. "\"bytes\":4096"
  };

  /// A sink to install with SccChip::set_trace_sink. The collector must
  /// outlive the chip's use of the sink.
  TraceSink sink() {
    return [this](const TraceEvent& e) { events_.push_back(e); };
  }

  /// Optional companion for set_trace_sink's second argument: coalesced
  /// quiescent ops then land as one span-style record each ("bulk-rma"
  /// category, the op's full [issue, end) interval, line count in args)
  /// instead of being expanded to 2*lines+1 per-line events. Opting in
  /// changes the rendered bytes (fewer, aggregated records) — leave it
  /// unset for the legacy per-line-identical stream.
  BulkTraceSink bulk_sink();

  void add_flow(Flow flow) { flows_.push_back(std::move(flow)); }
  void add_span(Span span) { spans_.push_back(std::move(span)); }

  const std::vector<TraceEvent>& events() const { return events_; }
  const std::vector<Flow>& flows() const { return flows_; }
  const std::vector<Span>& spans() const { return spans_; }
  void clear() {
    events_.clear();
    flows_.clear();
    spans_.clear();
  }

  /// Renders the buffered events as a complete trace_event JSON document.
  std::string to_json() const;

  /// Writes to_json() to `path`; returns false on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  std::vector<TraceEvent> events_;
  std::vector<Flow> flows_;
  std::vector<Span> spans_;
};

}  // namespace ocb::scc
