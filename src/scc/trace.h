// Execution tracing.
//
// An optional per-transaction trace stream from the simulated cores: every
// cache-line transaction (and busy interval) reports its kind, the cores
// involved, and its simulated [start, end) — enough to reconstruct a
// per-core timeline of a collective (see examples/trace_timeline.cpp) or
// feed an external visualizer. Disabled (the default) it costs one branch
// per transaction.
#pragma once

#include <cstdint>
#include <functional>

#include "common/types.h"
#include "sim/time.h"

namespace ocb::scc {

enum class TraceOp : std::uint8_t {
  kBusy,      ///< software overhead / application compute
  kMpbRead,   ///< one line read from `target`'s MPB
  kMpbWrite,  ///< one line written to `target`'s MPB
  kMemRead,   ///< one line read from private off-chip memory
  kMemWrite,  ///< one line written to private off-chip memory
  kCacheHit,  ///< private-memory read served by the data cache
};

/// Short lower-case label for an op kind ("mpb-read", ...).
const char* trace_op_name(TraceOp op);

struct TraceEvent {
  TraceOp op;
  CoreId core;        ///< the core executing the transaction
  CoreId target;      ///< MPB owner for kMpb*, otherwise == core
  std::size_t index;  ///< MPB line or memory byte offset
  sim::Time start;
  sim::Time end;
};

/// Sink invoked synchronously at each transaction's completion, in event
/// order. Must not re-enter the simulation.
using TraceSink = std::function<void(const TraceEvent&)>;

}  // namespace ocb::scc
