#include "scc/bulk.h"

#include "common/require.h"
#include "mem/mpb.h"
#include "mem/private_memory.h"
#include "noc/memctrl.h"
#include "noc/mesh.h"
#include "scc/chip.h"
#include "scc/core.h"
#include "sim/resource.h"

namespace ocb::scc {

BulkOp::BulkOp(Core& self)
    : self_(&self),
      chip_(&self.chip()),
      id_(self.id()),
      tile_(self.tile()),
      mc_tile_(self.mc_tile()) {
  const SccConfig& cfg = chip_->config();
  l_hop_ = cfg.l_hop;
  t_mpb_port_ = cfg.t_mpb_port;
  t_mc_port_ = cfg.t_mc_port;
  o_mpb_core_ = cfg.o_mpb_core;
  o_mem_core_read_ = cfg.o_mem_core_read;
  o_mem_core_write_ = cfg.o_mem_core_write;
  o_cache_hit_ = cfg.o_cache_hit;
  cache_enabled_ = cfg.cache_enabled;
  local_mpb_uses_port_ = cfg.local_mpb_uses_port;
  mc_server_ = &chip_->mc_port(chip_->topology().mc_index_for_core(id_));
  memory_ = &chip_->memory(id_);
  mc_cross_ = !(mc_tile_ == tile_);
}

BulkOp::Half BulkOp::mpb_half(CoreId owner, std::size_t first_line,
                              bool write) const {
  Half h;
  h.mem = false;
  h.write = write;
  h.base = first_line;
  h.stride = 1;
  h.mpb = &chip_->mpb(owner);
  h.ported = owner != id_ || local_mpb_uses_port_;
  h.dst_tile = chip_->topology().tile_of_core(owner);
  h.cross = !(h.dst_tile == tile_);
  h.server =
      h.ported ? &chip_->mpb_port(chip_->topology().tile_index_of_core(owner))
               : nullptr;
  h.overhead = o_mpb_core_;
  h.service = t_mpb_port_;
  h.target = owner;
  h.op = write ? TraceOp::kMpbWrite : TraceOp::kMpbRead;
  return h;
}

BulkOp::Half BulkOp::mem_half(std::size_t offset, bool write) const {
  Half h;
  h.mem = true;
  h.write = write;
  h.base = offset;
  h.stride = kCacheLineBytes;
  h.ported = true;
  h.dst_tile = mc_tile_;
  h.cross = mc_cross_;
  h.server = mc_server_;
  h.overhead = write ? o_mem_core_write_ : o_mem_core_read_;
  h.service = t_mc_port_;
  h.target = id_;
  h.op = write ? TraceOp::kMemWrite : TraceOp::kMemRead;
  return h;
}

BulkOp::Awaiter BulkOp::run(BulkKind kind, sim::Duration op_overhead,
                            CoreId mpb_owner, std::size_t mpb_line,
                            std::size_t local_index, std::size_t lines) {
  op_overhead_ = op_overhead;
  lines_ = lines;
  switch (kind) {
    case BulkKind::kPutMpbToMpb:
      half_[0] = mpb_half(id_, local_index, /*write=*/false);
      half_[1] = mpb_half(mpb_owner, mpb_line, /*write=*/true);
      break;
    case BulkKind::kPutMemToMpb:
      half_[0] = mem_half(local_index, /*write=*/false);
      half_[1] = mpb_half(mpb_owner, mpb_line, /*write=*/true);
      break;
    case BulkKind::kGetMpbToMpb:
      half_[0] = mpb_half(mpb_owner, mpb_line, /*write=*/false);
      half_[1] = mpb_half(id_, local_index, /*write=*/true);
      break;
    case BulkKind::kGetMpbToMem:
      half_[0] = mpb_half(mpb_owner, mpb_line, /*write=*/false);
      half_[1] = mem_half(local_index, /*write=*/true);
      break;
  }
  return Awaiter{this};
}

void BulkOp::launch() {
  OCB_ENSURE(!in_flight_, "BulkOp reused while an op is in flight");
  in_flight_ = true;
  line_ = 0;
  half_idx_ = 0;
  observing_ = chip_->observing();
  issue_ = chip_->engine().now();
  // The per-line path pays the op's software overhead via busy(); with zero
  // jitter that delay is exact arithmetic either way.
  const sim::Time start = issue_ + op_overhead_;
  if (try_quiescent(start)) {
    chip_->note_bulk_op(observing_, /*quiescent=*/true);
    return;
  }
  chip_->note_bulk_op(observing_, /*quiescent=*/false);
  // Busy chip: run the event-parity chain. The kickoff event stands in for
  // the busy() sleep and, like it, is scheduled from the caller's event.
  chip_->engine().schedule_fn(start, &start_tramp, this);
}

// Closed-form path: with an empty event queue nothing can run between now
// and the op's completion event, so resource bookings made eagerly (in
// strictly nondecreasing simulated-time order, exactly the order the
// per-line path would make them) land on identical Timeline/server state,
// and loads/stores are unobservable until the completion event anyway.
// Timed waiters always hold a timeout event in the queue, so they are
// excluded by the queue check; untimed waiters parked on a written MPB
// line's trigger are the one hazard, checked explicitly.
bool BulkOp::try_quiescent(sim::Time start) {
  if (chip_->engine().queue_size() != 0) return false;
  for (const Half& h : half_) {
    if (h.mem || !h.write) continue;
    for (std::size_t i = 0; i < lines_; ++i) {
      if (h.mpb->line_has_waiters(h.base + i)) return false;
    }
  }
  // Observation: per-line callbacks go inline at the computed reference
  // instants to the observers that asked for them; the rest get one
  // on_bulk at the end, for which the reference schedule is recorded.
  const bool record = observing_ && chip_->bulk_summary_pending();
  if (record) schedule_.resize(lines_ * 2);
  if (observing_) {
    // The per-line path's busy(op_overhead) kickoff completion.
    chip_->observe_complete_quiescent(
        {TraceOp::kBusy, id_, id_, 0, issue_, start});
  }
  noc::Mesh& mesh = chip_->mesh();
  sim::Time t = start;
  for (line_ = 0; line_ < lines_; ++line_) {
    for (half_idx_ = 0; half_idx_ < 2; ++half_idx_) {
      const Half& h = half_[half_idx_];
      const sim::Time begin = t;
      const std::size_t index = h.base + line_ * h.stride;
      if (h.mem && !h.write && cache_enabled_ && self_->cache().lookup(index)) {
        value_ = memory_->load(index);
        t += o_cache_hit_;
        if (observing_) {
          chip_->observe_read_quiescent(
              {TraceOp::kCacheHit, id_, id_, index, t}, value_);
          chip_->observe_complete_quiescent(
              {TraceOp::kCacheHit, id_, id_, index, begin, t});
        }
        if (record) {
          schedule_[line_ * 2 + static_cast<std::size_t>(half_idx_)] = {
              begin, t, t, /*cache_hit=*/true};
        }
        continue;
      }
      const sim::Time dep = t + h.overhead;
      const sim::Time arrival =
          h.cross ? mesh.reserve_path(dep, tile_, h.dst_tile) : dep + l_hop_;
      const sim::Time done = arrival + h.service;  // idle server: no queueing
      if (h.ported) h.server->book_uncontended(h.service);
      do_access(done, /*quiescent=*/true);
      t = h.cross ? mesh.reserve_path(done, h.dst_tile, tile_) : done + l_hop_;
      if (observing_) {
        chip_->observe_complete_quiescent({h.op, id_, h.target, index, begin, t});
      }
      if (record) {
        schedule_[line_ * 2 + static_cast<std::size_t>(half_idx_)] = {
            begin, done, t, /*cache_hit=*/false};
      }
    }
  }
  if (record) {
    BulkTxn txn;
    txn.core = id_;
    txn.lines = lines_;
    txn.issue = issue_;
    txn.kickoff = start;
    txn.end = t;
    for (int hi = 0; hi < 2; ++hi) {
      txn.half[hi] = {half_[hi].op, half_[hi].target, half_[hi].mem,
                      half_[hi].base, half_[hi].stride};
    }
    txn.schedule = schedule_.data();
    txn.chip = chip_;
    chip_->observe_bulk(txn);
  }
  // The op's effects are fully booked; only the caller's resume remains.
  in_flight_ = false;
  chip_->engine().schedule(t, cont_);
  return true;
}

// ---- Event-parity chain (busy chip) ----------------------------------
//
// One event per reference-path event, at the same instant, SCHEDULED from
// an event at the same instant the reference schedules its counterpart —
// see bulk.h for why the scheduling instants (not just the firing
// instants) are load-bearing. Within each handler, shared-state actions
// and schedule calls happen in the reference's order.

// Segment kickoff, called inside an event at the segment's start instant
// (the reference calls cache lookup / core_overhead at this instant).
// Under observation the chain dispatches the reference's per-line
// callbacks live to the full chain at the same instants, in the same
// intra-event order; the gates the reference would consult between them
// are guaranteed identity by the acquisition-time bulk_window_clear check
// and cost zero engine events either way, so parity is unaffected.
void BulkOp::start_segment() {
  const Half& h = half_[half_idx_];
  const sim::Time now = chip_->engine().now();
  seg_start_ = now;
  if (h.mem && !h.write && cache_enabled_ &&
      self_->cache().lookup(h.base + line_ * h.stride)) {
    // Cache hit: single event, like the reference's o_cache_hit sleep.
    chip_->engine().schedule_fn(now + o_cache_hit_, &hit_tramp, this);
    return;
  }
  chip_->engine().schedule_fn(now + h.overhead, &dep_tramp, this);
}

// Advance to the next segment (or finish), called inside the event at the
// previous segment's end instant — the reference's traverse-back resume.
void BulkOp::advance() {
  if (half_idx_ == 0) {
    half_idx_ = 1;
    start_segment();
    return;
  }
  half_idx_ = 0;
  if (++line_ < lines_) {
    start_segment();
    return;
  }
  // Op complete. The reference resumes the caller inline from this event
  // (co_return chains through the coroutine frames, no extra event). Clear
  // in_flight first: the resumed caller may start this core's next op.
  in_flight_ = false;
  cont_.resume();
}

void BulkOp::on_start() {
  if (observing_) {
    // The reference's busy(op_overhead) completes at this instant, inside
    // this resumption event, before the first line sub-op begins.
    chip_->observe_complete(
        {TraceOp::kBusy, id_, id_, 0, issue_, chip_->engine().now()});
  }
  start_segment();
}

void BulkOp::on_seg() {
  if (observing_) {
    const Half& h = half_[half_idx_];
    chip_->observe_complete({h.op, id_, h.target,
                             h.base + line_ * h.stride, seg_start_,
                             chip_->engine().now()});
  }
  advance();
}

void BulkOp::on_hit() {
  const Half& h = half_[half_idx_];
  const std::size_t index = h.base + line_ * h.stride;
  value_ = memory_->load(index);
  if (observing_) {
    const sim::Time now = chip_->engine().now();
    chip_->observe_read({TraceOp::kCacheHit, id_, id_, index, now}, value_);
    chip_->observe_complete(
        {TraceOp::kCacheHit, id_, id_, index, seg_start_, now});
  }
  advance();
}

void BulkOp::on_departure() {
  const Half& h = half_[half_idx_];
  sim::Engine& engine = chip_->engine();
  const sim::Time arrival =
      h.cross ? chip_->mesh().reserve_path(engine.now(), tile_, h.dst_tile)
              : engine.now() + l_hop_;
  engine.schedule_fn(arrival, &arrival_tramp, this);
}

void BulkOp::on_arrival() {
  const Half& h = half_[half_idx_];
  if (h.ported) {
    // Join the port queue at the exact arrival instant; the server invokes
    // complete_tramp at service completion.
    h.server->acquire(h.service, /*priority=*/id_, &complete_tramp, this);
  } else {
    // Own unported MPB: the per-line path sleeps t_mpb_port, then accesses.
    chip_->engine().schedule_fn(chip_->engine().now() + h.service,
                                &complete_tramp, this);
  }
}

void BulkOp::on_complete() {
  sim::Engine& engine = chip_->engine();
  do_access(engine.now(), /*quiescent=*/false);
  const Half& h = half_[half_idx_];
  const sim::Time seg_end =
      h.cross ? chip_->mesh().reserve_path(engine.now(), h.dst_tile, tile_)
              : engine.now() + l_hop_;
  engine.schedule_fn(seg_end, &seg_tramp, this);
}

// Loads/stores and their read/write observations, in the reference's
// order: MPB read = load, observe; MPB/mem write = observe, store iff the
// chain commits (mem writes still insert into the cache model either
// way); mem read = load, observe, insert.
void BulkOp::do_access(sim::Time now, bool quiescent) {
  const Half& h = half_[half_idx_];
  const std::size_t index = h.base + line_ * h.stride;
  if (!h.mem) {
    if (h.write) {
      bool commit = true;
      if (observing_) {
        const LineTxn txn{TraceOp::kMpbWrite, id_, h.target, index, now};
        commit = quiescent ? chip_->observe_write_quiescent(txn, value_)
                           : chip_->observe_write(txn, value_);
      }
      if (commit) h.mpb->store(index, value_);
    } else {
      value_ = h.mpb->load(index);
      if (observing_) {
        const LineTxn txn{TraceOp::kMpbRead, id_, h.target, index, now};
        if (quiescent) {
          chip_->observe_read_quiescent(txn, value_);
        } else {
          chip_->observe_read(txn, value_);
        }
      }
    }
  } else if (h.write) {
    bool commit = true;
    if (observing_) {
      const LineTxn txn{TraceOp::kMemWrite, id_, id_, index, now};
      commit = quiescent ? chip_->observe_write_quiescent(txn, value_)
                         : chip_->observe_write(txn, value_);
    }
    if (commit) memory_->store(index, value_);
    if (cache_enabled_) self_->cache().insert(index);
  } else {
    value_ = memory_->load(index);
    if (observing_) {
      const LineTxn txn{TraceOp::kMemRead, id_, id_, index, now};
      if (quiescent) {
        chip_->observe_read_quiescent(txn, value_);
      } else {
        chip_->observe_read(txn, value_);
      }
    }
    if (cache_enabled_) self_->cache().insert(index);
  }
}

}  // namespace ocb::scc
