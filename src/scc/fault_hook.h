// Fault-injection seam at the cache-line-transaction boundary.
//
// A FaultHook, installed on the chip like a TraceSink, observes every
// single-line transaction a core executes and may perturb it:
//   * corrupt the value a read OBSERVES (the stored data stays intact —
//     models a bit flip on the mesh or in the requester's path);
//   * corrupt or suppress a store (a lost/stuck line write);
//   * charge an extra stall before a transaction (a frozen core);
//   * declare a core fail-stopped, parking its process forever.
//
// The hook runs synchronously inside the simulation, so any randomness it
// uses must be seeded deterministically for runs to stay bit-reproducible
// (see ocb::fault::FaultInjector, the canonical implementation). Disabled
// (the default) it costs one branch per transaction, like tracing.
#pragma once

#include "common/types.h"
#include "scc/trace.h"
#include "sim/time.h"

namespace ocb::scc {

/// One line transaction as seen by the hook (op kinds reuse TraceOp).
struct FaultSite {
  TraceOp op;
  CoreId core;        ///< the core executing the transaction
  CoreId target;      ///< MPB owner for kMpb*, otherwise == core
  std::size_t index;  ///< MPB line or memory byte offset
  sim::Time now;
};

class FaultHook {
 public:
  virtual ~FaultHook() = default;

  /// Fail-stop check, consulted at every transaction boundary; returning
  /// true parks the core's process forever (it counts as stalled).
  virtual bool crashed(CoreId core, sim::Time now) = 0;

  /// Extra stall charged to `core` before its next transaction (0 = none).
  virtual sim::Duration stall(CoreId core, sim::Time now) = 0;

  /// May mutate the value a read observes; the backing storage keeps the
  /// original bytes.
  virtual void on_read(const FaultSite& site, CacheLine& value) = 0;

  /// May mutate the value about to be stored, or suppress the store
  /// entirely by returning false (a lost write / stuck line).
  virtual bool on_write(const FaultSite& site, CacheLine& value) = 0;
};

}  // namespace ocb::scc
