#include "scc/trace_json.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "sim/time.h"

namespace ocb::scc {

namespace {

void append_us(std::string& out, sim::Time t) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6f", sim::to_us(t));
  out += buf;
}

}  // namespace

std::string JsonTraceCollector::to_json() const {
  // Cores that appear in the trace, for thread_name metadata rows.
  std::vector<CoreId> cores;
  for (const TraceEvent& e : events_) cores.push_back(e.core);
  for (const Span& s : spans_) cores.push_back(s.core);
  std::sort(cores.begin(), cores.end());
  cores.erase(std::unique(cores.begin(), cores.end()), cores.end());

  std::string out;
  out.reserve(events_.size() * 128 + 512);
  out += "{\"traceEvents\":[";
  bool first = true;
  for (CoreId c : cores) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":";
    out += std::to_string(c);
    out += ",\"args\":{\"name\":\"core ";
    out += std::to_string(c);
    out += "\"}}";
  }
  for (const TraceEvent& e : events_) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    out += trace_op_name(e.op);
    out += "\",\"ph\":\"X\",\"pid\":0,\"tid\":";
    out += std::to_string(e.core);
    out += ",\"ts\":";
    append_us(out, e.start);
    out += ",\"dur\":";
    append_us(out, e.end - e.start);
    out += ",\"args\":{\"target\":";
    out += std::to_string(e.target);
    out += ",\"index\":";
    out += std::to_string(e.index);
    out += "}}";
  }
  for (const Span& s : spans_) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    out += s.name;
    out += "\",\"ph\":\"X\",\"cat\":\"";
    out += s.category;
    out += "\",\"pid\":0,\"tid\":";
    out += std::to_string(s.core);
    out += ",\"ts\":";
    append_us(out, s.start);
    out += ",\"dur\":";
    append_us(out, s.end - s.start);
    out += ",\"args\":{";
    out += s.args_json;
    out += "}}";
  }
  std::size_t flow_id = 0;
  for (const Flow& fl : flows_) {
    ++flow_id;
    for (int half = 0; half < 2; ++half) {
      if (!first) out += ',';
      first = false;
      out += "{\"name\":\"";
      out += fl.name;
      out += half == 0 ? "\",\"ph\":\"s\",\"cat\":\"race\",\"pid\":0,\"tid\":"
                       : "\",\"ph\":\"f\",\"bp\":\"e\",\"cat\":\"race\",\"pid\":0,\"tid\":";
      out += std::to_string(half == 0 ? fl.from_core : fl.to_core);
      out += ",\"ts\":";
      append_us(out, half == 0 ? fl.from_time : fl.to_time);
      out += ",\"id\":";
      out += std::to_string(flow_id);
      out += "}";
    }
  }
  out += "],\"displayTimeUnit\":\"ns\"}\n";
  return out;
}

BulkTraceSink JsonTraceCollector::bulk_sink() {
  return [this](const BulkTxn& txn) {
    Span s;
    s.name = std::string(trace_op_name(txn.half[0].op)) + "+" +
             trace_op_name(txn.half[1].op) + " x" + std::to_string(txn.lines);
    s.category = "bulk-rma";
    s.core = txn.core;
    s.start = txn.issue;
    s.end = txn.end;
    s.args_json = "\"lines\":" + std::to_string(txn.lines);
    add_span(std::move(s));
  };
}

bool JsonTraceCollector::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string doc = to_json();
  const std::size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  const int rc = std::fclose(f);
  return written == doc.size() && rc == 0;
}

}  // namespace ocb::scc
