#include "scc/trace.h"

namespace ocb::scc {

const char* trace_op_name(TraceOp op) {
  switch (op) {
    case TraceOp::kBusy:
      return "busy";
    case TraceOp::kMpbRead:
      return "mpb-read";
    case TraceOp::kMpbWrite:
      return "mpb-write";
    case TraceOp::kMemRead:
      return "mem-read";
    case TraceOp::kMemWrite:
      return "mem-write";
    case TraceOp::kCacheHit:
      return "cache-hit";
  }
  return "?";
}

}  // namespace ocb::scc
