#include "scc/config.h"

#include "common/require.h"

namespace ocb::scc {

void SccConfig::validate() const {
  OCB_REQUIRE(l_hop > 0, "l_hop must be positive");
  OCB_REQUIRE(link_occupancy > 0 && link_occupancy <= l_hop,
              "link_occupancy must be in (0, l_hop]");
  OCB_REQUIRE(t_mpb_port > 0, "t_mpb_port must be positive");
  OCB_REQUIRE(t_mc_port > 0, "t_mc_port must be positive");
  OCB_REQUIRE(cache_capacity_lines > 0 || !cache_enabled,
              "enabled cache needs nonzero capacity");
  OCB_REQUIRE(private_memory_limit >= 1u << 20,
              "private memory limit unrealistically small");
}

namespace {
sim::Duration scale(sim::Duration d, double speedup) {
  OCB_REQUIRE(speedup > 0.0, "speedup must be positive");
  const double v = static_cast<double>(d) / speedup;
  return v < 1.0 ? sim::Duration{1} : static_cast<sim::Duration>(v + 0.5);
}
}  // namespace

SccConfig SccConfig::scaled(double core_speedup, double mesh_speedup,
                            double mem_speedup) const {
  SccConfig out = *this;
  // Core-side software costs.
  out.o_mpb_core = scale(o_mpb_core, core_speedup);
  out.o_put_mpb = scale(o_put_mpb, core_speedup);
  out.o_get_mpb = scale(o_get_mpb, core_speedup);
  out.o_put_mem = scale(o_put_mem, core_speedup);
  out.o_get_mem = scale(o_get_mem, core_speedup);
  out.o_cache_hit = scale(o_cache_hit, core_speedup);
  out.o_ipi_send = scale(o_ipi_send, core_speedup);
  out.o_irq_entry = scale(o_irq_entry, core_speedup);
  out.o_irq_check = scale(o_irq_check, core_speedup);
  // Mesh timing.
  out.l_hop = scale(l_hop, mesh_speedup);
  out.link_occupancy = scale(link_occupancy, mesh_speedup);
  out.t_mpb_port = scale(t_mpb_port, mesh_speedup);
  out.t_ipi_service = scale(t_ipi_service, mesh_speedup);
  // Memory system.
  out.o_mem_core_read = scale(o_mem_core_read, mem_speedup);
  out.o_mem_core_write = scale(o_mem_core_write, mem_speedup);
  out.t_mc_port = scale(t_mc_port, mem_speedup);
  // Keep the cut-through invariant if the scales diverged.
  if (out.link_occupancy > out.l_hop) out.link_occupancy = out.l_hop;
  out.validate();
  return out;
}

}  // namespace ocb::scc
