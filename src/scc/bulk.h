// Coalesced multi-line RMA fast path.
//
// The per-line path (rma/rma.cpp over scc/core.h) simulates an N-line
// transfer as N round trips through coroutine frames: every line costs two
// Task frames, a chain of awaiter suspensions, and 8 engine events for a
// remote get. The timestamps those events produce are nevertheless fully
// determined by the Fig. 2 cost model the moment the op starts. BulkOp
// replays the exact same cost arithmetic without any per-line coroutine
// machinery, in one of two regimes:
//
// 1. QUIESCENT (empty event queue, no coroutine parked on any MPB line the
//    op writes): nothing can interleave with the op, so the whole transfer
//    is computed closed-form — resources are booked immediately in time
//    order and a single completion event resumes the caller. This is the
//    microbenchmark regime (rma_test, Fig. 3 latency probes, warm-up
//    loops), and it collapses ~8 events/line to 1 per op.
//
// 2. BUSY (anything else): a flat event chain with *event parity* — one
//    lean function-pointer event per reference-path event. Parity, not
//    fewer events, is required for exactness here, and the reason is
//    subtle: the engine breaks same-instant ties by event sequence number,
//    and seq numbers are allocated when an event is SCHEDULED. Two packets
//    reserving the same link at the same instant, or two cores grabbing an
//    idle port at the same instant, are ordered by those seqs, and the
//    reference allocates them at specific instants (a traversal's arrival
//    event is scheduled at its departure instant, a departure event at the
//    previous segment's end, ...). Dropping an intermediate event shifts
//    the allocation instant of every event scheduled "through" it, which
//    can flip a same-instant race somewhere else on the chip and drift the
//    timeline (observed: ~0.1% latency drift on OC-Bcast when the chain
//    skipped the segment-boundary events). So the busy-chip chain keeps
//    every instant: kickoff (the busy() sleep), departure (link
//    reservation), arrival (port enqueue), completion (access + return
//    reservation), segment end (advance), and a single event for a cache
//    hit — and resumes the caller inline from the final segment-end event,
//    exactly like the reference's co_return chain. The win in this regime
//    is constant-factor only: no coroutine frames, no awaiter chains, no
//    nested Task resume cascades — just trampolines on a reusable object.
//
// BulkOp is only used when SccChip::coalescing_active() — zero jitter,
// config.coalescing on, and every installed observer bulk-capable (see
// scc/observer.h). Observation preserves both regimes' exactness:
//
//   * On the parity chain, the per-line observer callbacks are dispatched
//     live to the full chain at the exact reference instants (the kickoff
//     event delivers the kBusy completion, the access happens inside the
//     port-completion event, the segment-end event delivers the line's
//     completion) — and because a clear bulk window guarantees the gates
//     are identity (no crash, zero stall) and gates cost zero engine
//     events either way (symmetric transfer), the chain stays
//     event-for-event and seq-for-seq identical to the observed
//     reference path.
//   * On the closed-form path, per-line callbacks go inline during
//     booking with the computed reference timestamps to the observers
//     that need them, and observers that opted out of per-line delivery
//     get one on_bulk(BulkTxn) carrying the full schedule.
//
// The equivalence is asserted by tests/coalescing_equivalence_test.cpp and
// tests/observer_fastpath_test.cpp, and discussed in DESIGN.md ("Fast-path
// transaction coalescing", "Observer capability model").
#pragma once

#include <coroutine>
#include <cstddef>
#include <vector>

#include "common/types.h"
#include "noc/geometry.h"
#include "scc/observer.h"
#include "sim/time.h"

namespace ocb::sim {
class ArbitratedServer;
}

namespace ocb::mem {
class MpbStorage;
class PrivateMemory;
}  // namespace ocb::mem

namespace ocb::scc {

class Core;
class SccChip;

/// The four rma/rma.h operations. "local_index" in BulkOp::run() is the
/// local-MPB first line for the *MpbToMpb kinds and the private-memory byte
/// offset for the *Mem kinds.
enum class BulkKind {
  kPutMpbToMpb,  ///< local MPB lines -> remote MPB lines
  kPutMemToMpb,  ///< private memory  -> remote MPB lines
  kGetMpbToMpb,  ///< remote MPB lines -> local MPB lines
  kGetMpbToMem,  ///< remote MPB lines -> private memory
};

/// Reusable per-core fast-path engine (a core runs one RMA op at a time;
/// SccChip keeps one BulkOp per core, created on first use).
class BulkOp {
 public:
  explicit BulkOp(Core& self);

  BulkOp(const BulkOp&) = delete;
  BulkOp& operator=(const BulkOp&) = delete;

  class Awaiter {
   public:
    explicit Awaiter(BulkOp* op) : op_(op) {}
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      op_->cont_ = h;
      op_->launch();
    }
    void await_resume() const noexcept {}

   private:
    BulkOp* op_;
  };

  /// One coalesced `lines`-line operation starting now. The awaiting
  /// coroutine resumes at exactly the completion time the per-line path
  /// would produce. `op_overhead` is the per-operation software cost
  /// (o_put_mpb et al.) the per-line path pays via busy(). Caller has
  /// already validated ranges (rma.cpp does) and checked in_flight().
  Awaiter run(BulkKind kind, sim::Duration op_overhead, CoreId mpb_owner,
              std::size_t mpb_line, std::size_t local_index, std::size_t lines);

  /// True while an op is running on this core's BulkOp. A plain core has at
  /// most one RMA op in flight, but the broadcast service (svc/) multiplexes
  /// several collective participations onto one core as interleaved
  /// coroutines; rma.cpp routes any op that finds the BulkOp busy through
  /// the per-line reference path instead (identical timing by construction).
  bool in_flight() const { return in_flight_; }

 private:
  /// Immutable description of one half of every line transfer: half 0 reads
  /// the source, half 1 writes the destination. Only the line/offset varies
  /// across the op's lines (by `stride`).
  struct Half {
    bool mem = false;     ///< private-memory half (else an MPB half)
    bool write = false;
    bool ported = false;  ///< goes through an ArbitratedServer
    bool cross = false;   ///< destination tile != self tile (links involved)
    std::size_t base = 0;    ///< first MPB line / first memory byte offset
    std::size_t stride = 0;  ///< 1 line or kCacheLineBytes per line
    mem::MpbStorage* mpb = nullptr;  ///< MPB halves (hot path: no id lookup)
    sim::ArbitratedServer* server = nullptr;
    noc::TileCoord dst_tile{};
    sim::Duration overhead = 0;  ///< core-side cost before the packet departs
    sim::Duration service = 0;   ///< port/bank hold (or unported access time)
    CoreId target = 0;  ///< MPB owner / self for mem halves (observation)
    TraceOp op = TraceOp::kBusy;  ///< the half's per-line transaction kind
  };

  Half mpb_half(CoreId owner, std::size_t first_line, bool write) const;
  Half mem_half(std::size_t offset, bool write) const;

  void launch();
  bool try_quiescent(sim::Time start);
  void start_segment();
  void advance();
  void on_start();
  void on_seg();
  void on_hit();
  void on_departure();
  void on_arrival();
  void on_complete();
  /// Performs the current line-half's load/store at instant `now`,
  /// dispatching on_read/on_write in the reference order. `quiescent`
  /// selects the closed-form dispatch lists over the full chain.
  void do_access(sim::Time now, bool quiescent);

  static void start_tramp(void* op) { static_cast<BulkOp*>(op)->on_start(); }
  static void seg_tramp(void* op) { static_cast<BulkOp*>(op)->on_seg(); }
  static void hit_tramp(void* op) { static_cast<BulkOp*>(op)->on_hit(); }
  static void dep_tramp(void* op) {
    static_cast<BulkOp*>(op)->on_departure();
  }
  static void arrival_tramp(void* op) {
    static_cast<BulkOp*>(op)->on_arrival();
  }
  static void complete_tramp(void* op) {
    static_cast<BulkOp*>(op)->on_complete();
  }

  Core* self_;
  SccChip* chip_;
  CoreId id_;
  noc::TileCoord tile_;

  // Cached immutable configuration/geometry.
  sim::Duration l_hop_;
  sim::Duration t_mpb_port_;
  sim::Duration t_mc_port_;
  sim::Duration o_mpb_core_;
  sim::Duration o_mem_core_read_;
  sim::Duration o_mem_core_write_;
  sim::Duration o_cache_hit_;
  bool cache_enabled_;
  bool local_mpb_uses_port_;
  sim::ArbitratedServer* mc_server_;
  mem::PrivateMemory* memory_;
  noc::TileCoord mc_tile_;
  bool mc_cross_;

  // Per-op state.
  Half half_[2];
  sim::Duration op_overhead_ = 0;
  std::size_t lines_ = 0;
  std::size_t line_ = 0;
  int half_idx_ = 0;
  bool in_flight_ = false;
  bool observing_ = false;   ///< chain non-empty at launch
  sim::Time issue_ = 0;      ///< op issue instant (before op_overhead_)
  sim::Time seg_start_ = 0;  ///< parity chain: current segment's start
  std::coroutine_handle<> cont_{};
  CacheLine value_{};
  /// Reference-path timestamps recorded by the closed-form path when an
  /// on_bulk recipient is installed (lines*2 entries, reused across ops).
  std::vector<BulkHalfTimes> schedule_;
};

}  // namespace ocb::scc
