// The unified Core instrumentation surface.
//
// Every single-cache-line transaction a core executes — MPB reads/writes,
// private-memory reads/writes, busy intervals — flows past a chain of
// TransactionObservers installed on the chip. The chain subsumes what used
// to be two hard-coded seams (the fault-injection hook and the trace sink)
// and adds a third consumer, the happens-before race checker (check/).
//
// An observer sees a transaction up to three times:
//   * crashed()/stall() — the pre-transaction gate (fail-stop, freezes);
//   * on_read()/on_write() — at the instant the line access happens,
//     with mutable access to the observed/stored value (fault injection);
//   * on_complete() — at the transaction's completion, with the full
//     [start, end) interval (tracing).
// In addition, the synchronization layer (rma/flags.h and the raw flag
// sites in the collectives) reports flag semantics via on_sync(): which
// line transactions are releases/acquires of which value, so an observer
// can reconstruct the happens-before order without guessing at payloads.
//
// Observers are non-owning and must outlive the simulation; all callbacks
// run synchronously inside the event loop and must not re-enter it. With
// an empty chain a transaction costs one branch, and multi-line RMA ops
// may take the coalesced BulkOp fast path (SccChip::coalescing_active).
#pragma once

#include "common/types.h"
#include "scc/trace.h"
#include "sim/time.h"

namespace ocb::scc {

/// One line transaction as seen at the access instant (op kinds reuse
/// TraceOp; kBusy never reaches on_read/on_write).
struct LineTxn {
  TraceOp op;
  CoreId core;        ///< the core executing the transaction
  CoreId target;      ///< MPB owner for kMpb*, otherwise == core
  std::size_t index;  ///< MPB line or memory byte offset
  sim::Time now;
};

/// Flag-semantics events reported by the synchronization layer.
enum class SyncOp : std::uint8_t {
  kHostInit,    ///< host-side flag initialization (no simulated transaction)
  kWaitBegin,   ///< a core starts polling the line as a flag
  kRelease,     ///< the next write of this line publishes `value`
  kAcquire,     ///< a read of this line observed `value`
  kIpiSend,     ///< inter-core interrupt raised at core `owner`
  kIpiConsume,  ///< pending interrupt consumed by `core`
  /// `core` enters a validated-read (seqlock-style) section: its line reads
  /// are deliberately unsynchronized and checked by the protocol itself
  /// (checksum match or discard+retry), so they do not participate in
  /// data-race detection. Writes remain fully checked.
  kOptimisticBegin,
  kOptimisticEnd,  ///< leaves the validated-read section
};

struct SyncEvent {
  SyncOp op;
  CoreId core;        ///< the core performing the sync operation (-1 = host)
  CoreId owner;       ///< flag line's MPB owner / interrupt target
  std::size_t line;   ///< flag's MPB line (0 for IPI events)
  std::uint64_t value;
  sim::Time now;
};

class TransactionObserver {
 public:
  virtual ~TransactionObserver() = default;

  /// Fail-stop check, consulted at every transaction boundary; returning
  /// true parks the core's process forever (it counts as stalled).
  virtual bool crashed(CoreId /*core*/, sim::Time /*now*/) { return false; }

  /// Extra stall charged to `core` before its next transaction (0 = none).
  virtual sim::Duration stall(CoreId /*core*/, sim::Time /*now*/) { return 0; }

  /// May mutate the value a read observes; the backing storage keeps the
  /// original bytes.
  virtual void on_read(const LineTxn& /*txn*/, CacheLine& /*value*/) {}

  /// May mutate the value about to be stored, or suppress the store by
  /// returning false (a lost write / stuck line). Every observer in the
  /// chain is consulted; the store commits only if all agree.
  virtual bool on_write(const LineTxn& /*txn*/, CacheLine& /*value*/) {
    return true;
  }

  /// Transaction completed; `event` carries the full [start, end) interval.
  virtual void on_complete(const TraceEvent& /*event*/) {}

  /// Flag/interrupt semantics from the synchronization layer.
  virtual void on_sync(const SyncEvent& /*event*/) {}

  /// Broadcast once per core, the first time any observer in the chain
  /// reports it crashed() — lets passive observers (the race checker)
  /// retire the core's recorded accesses under fail-stop semantics.
  virtual void on_crash(CoreId /*core*/, sim::Time /*now*/) {}
};

}  // namespace ocb::scc
