// The unified Core instrumentation surface.
//
// Every single-cache-line transaction a core executes — MPB reads/writes,
// private-memory reads/writes, busy intervals — flows past a chain of
// TransactionObservers installed on the chip. The chain subsumes what used
// to be two hard-coded seams (the fault-injection hook and the trace sink)
// and adds a third consumer, the happens-before race checker (check/).
//
// An observer sees a transaction up to three times:
//   * crashed()/stall() — the pre-transaction gate (fail-stop, freezes);
//   * on_read()/on_write() — at the instant the line access happens,
//     with mutable access to the observed/stored value (fault injection);
//   * on_complete() — at the transaction's completion, with the full
//     [start, end) interval (tracing).
// In addition, the synchronization layer (rma/flags.h and the raw flag
// sites in the collectives) reports flag semantics via on_sync(): which
// line transactions are releases/acquires of which value, so an observer
// can reconstruct the happens-before order without guessing at payloads.
//
// Observers are non-owning and must outlive the simulation; all callbacks
// run synchronously inside the event loop and must not re-enter it. With
// an empty chain a transaction costs one branch, and multi-line RMA ops
// may take the coalesced BulkOp fast path (SccChip::coalescing_active).
//
// Capability model (batched observation). By default an observer keeps
// today's semantics: installing it turns the coalesced fast path off and
// every line transaction is dispatched individually. An observer may opt
// in by overriding supports_bulk() (or is_passive(), which implies it);
// coalescing then stays on when *every* chain member is bulk-capable, and
// multi-line RMA ops observe in one of two regimes:
//
//   * Busy chip (event-parity chain): the op's per-line callbacks are
//     dispatched live, at the exact reference instants, to the full chain
//     — capability flags do not change what a busy-chip op delivers.
//   * Quiescent chip (closed-form booking): callbacks the observer said
//     it needs per line (needs_per_line_reads/writes/completes) are
//     dispatched inline during booking with the computed reference
//     timestamps; an observer that needs none of them instead receives a
//     single on_bulk(BulkTxn) whose default implementation synthesizes
//     the per-line stream (so opting out of per-line delivery without
//     overriding on_bulk is still lossless).
//
// The contract a bulk-capable observer signs:
//   * needs_per_line_writes() == false promises its on_write neither
//     mutates the value nor vetoes the commit;
//   * needs_per_line_reads() == false promises its on_read does not
//     mutate the observed value;
//   * bulk_window_clear(core, now) == true promises its gate callbacks
//     (crashed/stall) are identity for `core` for the whole op — a false
//     return routes that one op through the per-line reference path.
// Everything observable must come out bit-identical either way; the
// fast-path-on-vs-off equivalence is asserted by observer_fastpath_test.
#pragma once

#include <functional>

#include "common/types.h"
#include "scc/trace.h"
#include "sim/time.h"

namespace ocb::scc {

class SccChip;

/// One line transaction as seen at the access instant (op kinds reuse
/// TraceOp; kBusy never reaches on_read/on_write).
struct LineTxn {
  TraceOp op;
  CoreId core;        ///< the core executing the transaction
  CoreId target;      ///< MPB owner for kMpb*, otherwise == core
  std::size_t index;  ///< MPB line or memory byte offset
  sim::Time now;
};

/// Flag-semantics events reported by the synchronization layer.
enum class SyncOp : std::uint8_t {
  kHostInit,    ///< host-side flag initialization (no simulated transaction)
  kWaitBegin,   ///< a core starts polling the line as a flag
  kRelease,     ///< the next write of this line publishes `value`
  kAcquire,     ///< a read of this line observed `value`
  kIpiSend,     ///< inter-core interrupt raised at core `owner`
  kIpiConsume,  ///< pending interrupt consumed by `core`
  /// `core` enters a validated-read (seqlock-style) section: its line reads
  /// are deliberately unsynchronized and checked by the protocol itself
  /// (checksum match or discard+retry), so they do not participate in
  /// data-race detection. Writes remain fully checked.
  kOptimisticBegin,
  kOptimisticEnd,  ///< leaves the validated-read section
};

struct SyncEvent {
  SyncOp op;
  CoreId core;        ///< the core performing the sync operation (-1 = host)
  CoreId owner;       ///< flag line's MPB owner / interrupt target
  std::size_t line;   ///< flag's MPB line (0 for IPI events)
  std::uint64_t value;
  sim::Time now;
};

/// Immutable description of one half of a coalesced RMA op: half 0 reads
/// the source, half 1 writes the destination; only the line/offset varies
/// across the op's lines (by `stride`).
struct BulkHalfDesc {
  TraceOp op;          ///< kMpbRead/kMpbWrite/kMemRead/kMemWrite
  CoreId target;       ///< MPB owner for MPB halves, == issuing core for mem
  bool mem = false;    ///< private-memory half (else an MPB half)
  std::size_t base = 0;    ///< first MPB line / first memory byte offset
  std::size_t stride = 0;  ///< 1 line or kCacheLineBytes per line
};

/// The reference-path timestamps of one line-half of a coalesced op, as
/// the per-line path would have produced them.
struct BulkHalfTimes {
  sim::Time begin = 0;   ///< per-line transaction start
  sim::Time access = 0;  ///< the load/store instant (on_read/on_write time)
  sim::Time end = 0;     ///< per-line completion (after the return traverse)
  bool cache_hit = false;  ///< mem-read half satisfied by the cache model
};

/// One coalesced multi-line RMA op, delivered to observers that opted out
/// of per-line callbacks on the quiescent fast path. `schedule` holds
/// lines*2 entries in access order (line-major, half 0 before half 1).
struct BulkTxn {
  CoreId core = 0;
  std::size_t lines = 0;
  sim::Time issue = 0;    ///< op issue instant (before software overhead)
  sim::Time kickoff = 0;  ///< issue + op overhead (end of the busy() span)
  sim::Time end = 0;      ///< caller-resume instant
  BulkHalfDesc half[2];
  const BulkHalfTimes* schedule = nullptr;
  SccChip* chip = nullptr;  ///< post-op storage, for value recovery
};

class TransactionObserver {
 public:
  virtual ~TransactionObserver() = default;

  /// Fail-stop check, consulted at every transaction boundary; returning
  /// true parks the core's process forever (it counts as stalled).
  virtual bool crashed(CoreId /*core*/, sim::Time /*now*/) { return false; }

  /// Extra stall charged to `core` before its next transaction (0 = none).
  virtual sim::Duration stall(CoreId /*core*/, sim::Time /*now*/) { return 0; }

  /// May mutate the value a read observes; the backing storage keeps the
  /// original bytes.
  virtual void on_read(const LineTxn& /*txn*/, CacheLine& /*value*/) {}

  /// May mutate the value about to be stored, or suppress the store by
  /// returning false (a lost write / stuck line). Every observer in the
  /// chain is consulted; the store commits only if all agree.
  virtual bool on_write(const LineTxn& /*txn*/, CacheLine& /*value*/) {
    return true;
  }

  /// Transaction completed; `event` carries the full [start, end) interval.
  virtual void on_complete(const TraceEvent& /*event*/) {}

  /// Flag/interrupt semantics from the synchronization layer.
  virtual void on_sync(const SyncEvent& /*event*/) {}

  /// Broadcast once per core, the first time any observer in the chain
  /// reports it crashed() — lets passive observers (the race checker)
  /// retire the core's recorded accesses under fail-stop semantics.
  virtual void on_crash(CoreId /*core*/, sim::Time /*now*/) {}

  // --- capability model (coalesced/batched observation; see file header) --

  /// A passive observer never mutates values, never vetoes a commit, and
  /// never gates a core (crashed/stall are identity). Implies
  /// supports_bulk().
  virtual bool is_passive() const { return false; }

  /// Whether multi-line RMA ops may stay coalesced with this observer
  /// installed. Coalescing requires every chain member to agree.
  virtual bool supports_bulk() const { return is_passive(); }

  /// Per-line callback needs on the quiescent fast path (ignored on the
  /// busy-chip parity chain, which always dispatches the full stream).
  /// Returning false is a promise of no per-line effect — see the header.
  virtual bool needs_per_line_reads() const { return true; }
  virtual bool needs_per_line_writes() const { return true; }
  virtual bool needs_per_line_completes() const { return true; }

  /// Per-op gate check: true promises crashed()/stall() are identity for
  /// `core` for the whole op starting at `now`. A false return routes this
  /// one op through the per-line reference path (gates consulted as usual).
  virtual bool bulk_window_clear(CoreId /*core*/, sim::Time /*now*/) {
    return true;
  }

  /// One batched notification per quiescent coalesced op, delivered only
  /// to observers whose needs_per_line_*() are all false. The default
  /// implementation synthesizes exactly the per-line callback stream the
  /// reference path would have delivered (values re-read from post-op
  /// storage — exact, since every needs-free observer left them alone).
  virtual void on_bulk(const BulkTxn& txn);
};

/// Span-style consumer for coalesced ops (see SccChip::set_trace_sink).
using BulkTraceSink = std::function<void(const BulkTxn&)>;

}  // namespace ocb::scc
