// SCC simulator configuration.
//
// Microscopic timing parameters chosen so that the *measured* behaviour of
// the simulator reproduces the paper's aggregate model parameters (Table 1)
// exactly, via these identities (all per single cache line):
//
//   o_mpb   = o_mpb_core       + t_mpb_port  = 116 + 10  = 126 ns
//   o_mem_r = o_mem_core_read  + t_mc_port   = 198 + 10  = 208 ns
//   o_mem_w = o_mem_core_write + t_mc_port   = 451 + 10  = 461 ns
//   L_hop   = 5 ns
//
// so e.g. a remote MPB line read completes in o_mpb + 2d*L_hop (Formula 3):
// core overhead, d routers to the target, port service, d routers back.
//
// The split matters only under contention: the *_port shares are the time
// the shared resource (tile MPB port / memory-controller bank) is actually
// held, which produces Figure 4's contention knee — ~24 concurrent
// accessors fit in one requester's round-trip shadow, 48 do not.
#pragma once

#include <cstdint>

#include "noc/topology.h"
#include "sim/resource.h"
#include "sim/time.h"

namespace ocb::scc {

struct SccConfig {
  // --- geometry ---------------------------------------------------------
  /// Chip floorplan: mesh shape, dies, interposer timing, MC placement.
  /// Defaults to the paper's SCC (6×4 tiles, 2 cores/tile, 4 corner MCs);
  /// see noc/topology.h for the mesh()/multi_die()/parse() factories.
  noc::Topology topology = noc::Topology::scc();

  // --- mesh -----------------------------------------------------------
  /// Per-router packet latency (Table 1: 0.005 us).
  sim::Duration l_hop = 5 * sim::kNanosecond;
  /// Serialization time of one cache-line packet on a mesh link; must not
  /// exceed l_hop (cut-through pipeline). 32 B over the SCC's 16 B/cycle
  /// links at 800 MHz = 2 cycles = 2.5 ns.
  sim::Duration link_occupancy = 2'500 * sim::kPicosecond;

  // --- MPB ------------------------------------------------------------
  /// Core-side overhead of a single-line MPB read or write.
  sim::Duration o_mpb_core = 116 * sim::kNanosecond;
  /// Tile MPB port hold per line transaction (the Fig. 4 contended share):
  /// one requester's closed-loop line round trip is ~280-300 ns, so ~24
  /// concurrent requesters fit contention-free and 48 queue (~2x), the
  /// paper's knee.
  sim::Duration t_mpb_port = 10 * sim::kNanosecond;
  /// If false (default), a core's accesses to its own MPB bypass port
  /// arbitration (they still pay the d=1 router and service latency).
  bool local_mpb_uses_port = false;

  // --- off-chip memory --------------------------------------------------
  /// Core-side overhead of reading one line from private off-chip memory.
  sim::Duration o_mem_core_read = 198 * sim::kNanosecond;
  /// Core-side overhead of writing one line to private off-chip memory.
  sim::Duration o_mem_core_write = 451 * sim::kNanosecond;
  /// Memory-controller bank hold per line transaction.
  sim::Duration t_mc_port = 10 * sim::kNanosecond;

  // --- put/get per-operation software overheads (Table 1) ---------------
  sim::Duration o_put_mpb = 69 * sim::kNanosecond;
  sim::Duration o_get_mpb = 330 * sim::kNanosecond;
  sim::Duration o_put_mem = 190 * sim::kNanosecond;
  sim::Duration o_get_mem = 95 * sim::kNanosecond;

  // --- inter-core interrupts (MPMD support, paper §7) --------------------
  /// Sender-side cost of raising a remote interrupt (a write to the
  /// target's configuration register through the mesh).
  sim::Duration o_ipi_send = 80 * sim::kNanosecond;
  /// Config-register service time at the target tile.
  sim::Duration t_ipi_service = 10 * sim::kNanosecond;
  /// Receiver-side interrupt entry overhead (trap + sccLinux handler):
  /// the reason the paper's SPMD path polls instead.
  sim::Duration o_irq_entry = 2 * sim::kMicrosecond;
  /// Cost of checking the local pending bit between compute quanta.
  sim::Duration o_irq_check = 20 * sim::kNanosecond;

  // --- data cache -------------------------------------------------------
  /// Models the paper's §5.2.2 assumption that a just-received message is
  /// re-sent from cache: private-memory reads that hit skip the off-chip
  /// path. Write-allocate, LRU, write-through (writes always pay full cost).
  bool cache_enabled = true;
  /// Capacity in cache lines (default 256 KB = the SCC's per-core L2).
  std::size_t cache_capacity_lines = 8192;
  /// Cost of a cache-hit line read.
  sim::Duration o_cache_hit = 6 * sim::kNanosecond;

  // --- arbitration and noise ---------------------------------------------
  /// MPB-port / MC-bank queue discipline. kPositional models the SCC's
  /// fixed-priority arbitration (requester core id = priority), which is
  /// what makes heavy contention hit cores unequally (Fig. 4's spread).
  sim::Arbitration arbitration = sim::Arbitration::kPositional;
  /// Master switch for the coalesced RMA fast path (scc/bulk.h): multi-line
  /// put/get computed closed-form from the Fig. 2 cost model instead of one
  /// coroutine round trip per line. Timing-neutral by construction — the
  /// per-line path is used automatically whenever jitter or an observer
  /// that is not bulk-capable is active (see scc/observer.h and DESIGN.md
  /// "Fast-path transaction coalescing"; the built-in checker, trace sink,
  /// and fault injector are bulk-capable and keep the fast path on);
  /// turning this off forces the per-line path everywhere, which must
  /// produce identical results (tests/coalescing_equivalence and
  /// tests/observer_fastpath assert it).
  bool coalescing = true;
  /// Max uniform jitter added to each core-side overhead (0 = none).
  sim::Duration jitter = 0;
  /// Seed for all per-core RNG streams (payloads, jitter).
  std::uint64_t seed = 0x5cc'0c'bca57ULL;

  /// Worker threads for conservative-PDES chip runs (0 = serial reference
  /// loop). Results are bit-identical for every value; the count is
  /// clamped to the fixed 8-lane partition, and ineligible runs (observers,
  /// jitter, bounded event budgets, mid-run spawns) fall back to the serial
  /// loop deterministically. See DESIGN.md §11. Harness entry points
  /// populate this from OCB_PDES_THREADS; nested use under parallel_map
  /// drops to serial (replication-level parallelism wins).
  unsigned pdes_threads = 0;

  /// Per-core private memory growth cap.
  std::size_t private_memory_limit = 64u << 20;

  // --- derived Table 1 aggregates ----------------------------------------
  sim::Duration o_mpb() const { return o_mpb_core + t_mpb_port; }
  sim::Duration o_mem_read() const { return o_mem_core_read + t_mc_port; }
  sim::Duration o_mem_write() const { return o_mem_core_write + t_mc_port; }

  /// Throws PreconditionError if the configuration is inconsistent.
  void validate() const;

  /// What-if scaling (the paper's conclusion argues RMA-based collectives
  /// matter for FUTURE many-cores; this knob lets benches probe that):
  /// returns a config with core-side software costs divided by
  /// `core_speedup`, mesh timing (L_hop, link occupancy, MPB/IPI port
  /// service) by `mesh_speedup`, and memory-system costs (off-chip
  /// overheads, MC service) by `mem_speedup`. The split of o_mem between
  /// core and DRAM time is approximate (documented in docs/MODEL.md);
  /// durations are rounded to >= 1 ps.
  SccConfig scaled(double core_speedup, double mesh_speedup,
                   double mem_speedup) const;
};

}  // namespace ocb::scc
