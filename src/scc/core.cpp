#include "scc/core.h"

#include <algorithm>

#include "common/require.h"
#include "scc/chip.h"

namespace ocb::scc {

void DataCache::ensure_storage() {
  if (!table_.empty()) return;
  key_.resize(capacity_);
  prev_.resize(capacity_);
  next_.resize(capacity_);
  // Power-of-two table at <= 50% load so linear probes stay short.
  std::size_t table_size = 16;
  while (table_size < capacity_ * 2) table_size *= 2;
  table_.assign(table_size, kNil);
  mask_ = table_size - 1;
}

std::size_t DataCache::ideal_index(std::size_t key) const {
  // Fibonacci-style multiplicative mix; offsets are line-aligned so low
  // bits alone carry no entropy.
  return (key * 0x9e3779b97f4a7c15ULL >> 17) & mask_;
}

std::uint32_t DataCache::find_slot(std::size_t key) const {
  if (table_.empty()) return kNil;
  for (std::size_t i = ideal_index(key);; i = (i + 1) & mask_) {
    const std::uint32_t slot = table_[i];
    if (slot == kNil) return kNil;
    if (key_[slot] == key) return slot;
  }
}

void DataCache::table_insert(std::size_t key, std::uint32_t slot) {
  std::size_t i = ideal_index(key);
  while (table_[i] != kNil) i = (i + 1) & mask_;
  table_[i] = slot;
}

void DataCache::table_erase(std::size_t key) {
  std::size_t i = ideal_index(key);
  while (key_[table_[i]] != key) i = (i + 1) & mask_;
  // Backward-shift deletion keeps probe chains gap-free without tombstones.
  for (std::size_t j = (i + 1) & mask_;; j = (j + 1) & mask_) {
    const std::uint32_t slot = table_[j];
    if (slot == kNil) break;
    const std::size_t home = ideal_index(key_[slot]);
    if (((j - home) & mask_) >= ((j - i) & mask_)) {
      table_[i] = slot;
      i = j;
    }
  }
  table_[i] = kNil;
}

void DataCache::lru_detach(std::uint32_t slot) {
  const std::uint32_t p = prev_[slot];
  const std::uint32_t n = next_[slot];
  if (p != kNil) next_[p] = n; else head_ = n;
  if (n != kNil) prev_[n] = p; else tail_ = p;
}

void DataCache::lru_push_front(std::uint32_t slot) {
  prev_[slot] = kNil;
  next_[slot] = head_;
  if (head_ != kNil) prev_[head_] = slot;
  head_ = slot;
  if (tail_ == kNil) tail_ = slot;
}

bool DataCache::lookup(std::size_t offset) {
  const std::uint32_t slot = find_slot(offset);
  if (slot == kNil) return false;
  if (head_ != slot) {
    lru_detach(slot);
    lru_push_front(slot);
  }
  return true;
}

void DataCache::insert(std::size_t offset) {
  if (capacity_ == 0) return;  // degenerate: everything evicts immediately
  ensure_storage();
  std::uint32_t slot = find_slot(offset);
  if (slot != kNil) {  // refresh, not duplicate
    if (head_ != slot) {
      lru_detach(slot);
      lru_push_front(slot);
    }
    return;
  }
  if (size_ == capacity_) {  // evict least-recently-used
    slot = tail_;
    lru_detach(slot);
    table_erase(key_[slot]);
  } else {
    slot = static_cast<std::uint32_t>(size_);
    ++size_;
  }
  key_[slot] = offset;
  table_insert(offset, slot);
  lru_push_front(slot);
}

void DataCache::clear() {
  size_ = 0;
  head_ = kNil;
  tail_ = kNil;
  if (!table_.empty()) std::fill(table_.begin(), table_.end(), kNil);
}

Core::Core(SccChip& chip, CoreId id)
    : chip_(&chip),
      id_(id),
      tile_(chip.topology().tile_of_core(id)),
      mc_tile_(chip.topology().mc_tile_for_core(id)),
      mc_index_(chip.topology().mc_index_for_core(id)),
      mem_distance_(chip.topology().mem_distance(id)),
      cache_(chip.config().cache_capacity_lines),
      rng_(SplitMix64(chip.config().seed + 0x9e37u * static_cast<std::uint64_t>(id))
               .next()),
      irq_trigger_(chip.engine()) {}

int Core::mpb_distance(CoreId other) const {
  return noc::Topology::routers_traversed(tile_,
                                          chip_->topology().tile_of_core(other));
}

sim::Time Core::now() const { return chip_->engine().now(); }

std::string Core::wait_note() const {
  std::string note = wait_what_;
  if (wait_owner_ >= 0) {
    note += " mpb[" + std::to_string(wait_owner_) + "]";
    if (wait_line_ >= 0) note += ":" + std::to_string(wait_line_);
  }
  return note;
}

sim::Task<void> Core::observer_gate() {
  const bool dead = chip_->observer_crashed(id_, now());
  if (dead) {
    set_wait_note("halted (fail-stop)");
    co_await sim::Engine::halt_forever();
  }
  const sim::Duration stall = chip_->observer_stall(id_, now());
  if (stall > 0) co_await chip_->engine().sleep(stall);
}

sim::Duration Core::jittered(sim::Duration d) {
  const sim::Duration j = chip_->config().jitter;
  if (j == 0) return d;
  return d + rng_.next_below(j + 1);
}

sim::Task<void> Core::busy(sim::Duration d) {
  if (chip_->observing()) co_await observer_gate();
  const sim::Time t0 = now();
  co_await chip_->engine().sleep(jittered(d));
  if (chip_->observing()) {
    chip_->observe_complete({TraceOp::kBusy, id_, id_, 0, t0, now()});
  }
}

sim::Task<void> Core::mpb_read_line(CoreId owner, std::size_t line, CacheLine& out,
                                    std::uint64_t* epoch_out) {
  const SccConfig& cfg = chip_->config();
  const noc::TileCoord owner_tile = chip_->topology().tile_of_core(owner);
  if (chip_->pdes_active()) {
    // Fused remote entry: core-side overhead + uncontended request
    // traversal as ONE event, landing on the line's home lane. Same
    // completion times as the serial path (jitter is zero under PDES and
    // the mesh never queues a link in this regime); one event fewer per
    // crossing; latency >= the run's lookahead by construction.
    const sim::Duration wire = chip_->mesh().uncontended_latency(tile_, owner_tile);
    co_await chip_->engine().hop(chip_->lane_of_tile(owner_tile),
                                 now() + cfg.o_mpb_core + wire);
    if (owner == id_ && !cfg.local_mpb_uses_port) {
      co_await chip_->engine().sleep(cfg.t_mpb_port);
    } else {
      co_await chip_->mpb_port(chip_->topology().tile_index_of_core(owner))
          .use(cfg.t_mpb_port, /*priority=*/id_);
    }
    // Epoch and value are read together at the access point, on the home
    // lane — the chain rests here afterwards, so a subsequent park on the
    // line's trigger is lane-local and race-free.
    if (epoch_out != nullptr) {
      *epoch_out = chip_->mpb(owner).line_trigger(line).epoch();
    }
    out = chip_->mpb(owner).load(line);
    co_await chip_->engine().sleep(wire);  // response traversal, lane-local
    co_return;
  }
  if (epoch_out != nullptr) {
    *epoch_out = chip_->mpb(owner).line_trigger(line).epoch();
  }
  if (chip_->observing()) co_await observer_gate();
  const sim::Time t0 = now();
  co_await core_overhead(cfg.o_mpb_core);
  // Request packet to the owner's router (d = manhattan + 1 router hops for
  // the round trip is split as: d hops there, d hops back; the MPB port
  // service sits in between).
  co_await chip_->mesh().traverse(tile_, owner_tile);
  if (owner == id_ && !cfg.local_mpb_uses_port) {
    // Own MPB: same latency, but no arbitration against remote requesters.
    co_await chip_->engine().sleep(cfg.t_mpb_port);
  } else {
    co_await chip_->mpb_port(chip_->topology().tile_index_of_core(owner))
        .use(cfg.t_mpb_port, /*priority=*/id_);
  }
  out = chip_->mpb(owner).load(line);
  if (chip_->observing()) {
    chip_->observe_read({TraceOp::kMpbRead, id_, owner, line, now()}, out);
  }
  co_await chip_->mesh().traverse(owner_tile, tile_);
  if (chip_->observing()) {
    chip_->observe_complete({TraceOp::kMpbRead, id_, owner, line, t0, now()});
  }
}

sim::Task<void> Core::mpb_write_line(CoreId owner, std::size_t line, CacheLine value) {
  const SccConfig& cfg = chip_->config();
  const noc::TileCoord owner_tile = chip_->topology().tile_of_core(owner);
  if (chip_->pdes_active()) {
    const sim::Duration wire = chip_->mesh().uncontended_latency(tile_, owner_tile);
    co_await chip_->engine().hop(chip_->lane_of_tile(owner_tile),
                                 now() + cfg.o_mpb_core + wire);
    if (owner == id_ && !cfg.local_mpb_uses_port) {
      co_await chip_->engine().sleep(cfg.t_mpb_port);
    } else {
      co_await chip_->mpb_port(chip_->topology().tile_index_of_core(owner))
          .use(cfg.t_mpb_port, /*priority=*/id_);
    }
    // Visibility (store + trigger fire) on the home lane, one response
    // traversal before the writer's completion — Formula 1 vs Formula 2,
    // same as the serial path below.
    chip_->mpb(owner).store(line, value);
    co_await chip_->engine().sleep(wire);
    co_return;
  }
  if (chip_->observing()) co_await observer_gate();
  const sim::Time t0 = now();
  co_await core_overhead(cfg.o_mpb_core);
  co_await chip_->mesh().traverse(tile_, owner_tile);
  if (owner == id_ && !cfg.local_mpb_uses_port) {
    co_await chip_->engine().sleep(cfg.t_mpb_port);
  } else {
    co_await chip_->mpb_port(chip_->topology().tile_index_of_core(owner))
        .use(cfg.t_mpb_port, /*priority=*/id_);
  }
  // The line becomes visible (and its trigger fires) here — before the
  // acknowledgment returns to the writer, which is what makes the model's
  // write latency (Formula 1) one mesh traversal shorter than its
  // completion time (Formula 2).
  bool commit = true;
  if (chip_->observing()) {
    commit = chip_->observe_write({TraceOp::kMpbWrite, id_, owner, line, now()},
                                  value);
  }
  if (commit) chip_->mpb(owner).store(line, value);
  co_await chip_->mesh().traverse(owner_tile, tile_);
  if (chip_->observing()) {
    chip_->observe_complete({TraceOp::kMpbWrite, id_, owner, line, t0, now()});
  }
}

sim::Task<void> Core::mem_read_line(std::size_t offset, CacheLine& out) {
  const SccConfig& cfg = chip_->config();
  if (chip_->pdes_active()) {
    // Cache, LRU state, and the private memory belong to this core's one
    // chain — safe from whichever lane the chain currently rests on. Only
    // the shared memory-controller bank forces a hop to the MC's lane.
    if (cfg.cache_enabled && cache_.lookup(offset)) {
      co_await core_overhead(cfg.o_cache_hit);
      out = chip_->memory(id_).load(offset);
      co_return;
    }
    const sim::Duration wire = chip_->mesh().uncontended_latency(tile_, mc_tile_);
    co_await chip_->engine().hop(chip_->lane_of_tile(mc_tile_),
                                 now() + cfg.o_mem_core_read + wire);
    co_await chip_->mc_port(mc_index_).use(cfg.t_mc_port, id_);
    out = chip_->memory(id_).load(offset);
    if (cfg.cache_enabled) cache_.insert(offset);
    co_await chip_->engine().sleep(wire);
    co_return;
  }
  if (chip_->observing()) co_await observer_gate();
  const sim::Time t0 = now();
  if (cfg.cache_enabled && cache_.lookup(offset)) {
    co_await core_overhead(cfg.o_cache_hit);
    out = chip_->memory(id_).load(offset);
    if (chip_->observing()) {
      chip_->observe_read({TraceOp::kCacheHit, id_, id_, offset, now()}, out);
      chip_->observe_complete({TraceOp::kCacheHit, id_, id_, offset, t0, now()});
    }
    co_return;
  }
  co_await core_overhead(cfg.o_mem_core_read);
  co_await chip_->mesh().traverse(tile_, mc_tile_);
  co_await chip_->mc_port(mc_index_).use(cfg.t_mc_port, id_);
  out = chip_->memory(id_).load(offset);
  if (chip_->observing()) {
    chip_->observe_read({TraceOp::kMemRead, id_, id_, offset, now()}, out);
  }
  if (cfg.cache_enabled) cache_.insert(offset);
  co_await chip_->mesh().traverse(mc_tile_, tile_);
  if (chip_->observing()) {
    chip_->observe_complete({TraceOp::kMemRead, id_, id_, offset, t0, now()});
  }
}

sim::Task<void> Core::mem_write_line(std::size_t offset, CacheLine value) {
  const SccConfig& cfg = chip_->config();
  if (chip_->pdes_active()) {
    const sim::Duration wire = chip_->mesh().uncontended_latency(tile_, mc_tile_);
    co_await chip_->engine().hop(chip_->lane_of_tile(mc_tile_),
                                 now() + cfg.o_mem_core_write + wire);
    co_await chip_->mc_port(mc_index_).use(cfg.t_mc_port, id_);
    chip_->memory(id_).store(offset, value);
    if (cfg.cache_enabled) cache_.insert(offset);
    co_await chip_->engine().sleep(wire);
    co_return;
  }
  if (chip_->observing()) co_await observer_gate();
  const sim::Time t0 = now();
  // Write-through with allocate: the written line is warm afterwards (the
  // §5.2.2 "resend from cache" effect) but the off-chip cost is always paid.
  co_await core_overhead(cfg.o_mem_core_write);
  co_await chip_->mesh().traverse(tile_, mc_tile_);
  co_await chip_->mc_port(mc_index_).use(cfg.t_mc_port, id_);
  bool commit = true;
  if (chip_->observing()) {
    commit = chip_->observe_write({TraceOp::kMemWrite, id_, id_, offset, now()},
                                  value);
  }
  if (commit) chip_->memory(id_).store(offset, value);
  if (cfg.cache_enabled) cache_.insert(offset);
  co_await chip_->mesh().traverse(mc_tile_, tile_);
  if (chip_->observing()) {
    chip_->observe_complete({TraceOp::kMemWrite, id_, id_, offset, t0, now()});
  }
}

// Internal overhead sleep: jittered like busy(), but not traced (the
// enclosing transaction reports the whole interval).
sim::Task<void> Core::core_overhead(sim::Duration d) {
  co_await chip_->engine().sleep(jittered(d));
}

sim::Task<void> Core::send_interrupt(CoreId target) {
  chip_->topology().require_core(target);
  const SccConfig& cfg = chip_->config();
  if (chip_->pdes_active()) {
    // Interrupt state (pending count + trigger) is confined to the
    // target's home lane: the send hops there, and wait/poll require the
    // target chain to be resting there (see below).
    const noc::TileCoord target_tile = chip_->topology().tile_of_core(target);
    const sim::Duration wire = chip_->mesh().uncontended_latency(tile_, target_tile);
    co_await chip_->engine().hop(chip_->lane_of_core(target),
                                 now() + cfg.o_ipi_send + wire);
    co_await chip_->engine().sleep(cfg.t_ipi_service);
    chip_->core(target).raise_interrupt();
    co_await chip_->engine().sleep(wire);
    co_return;
  }
  if (chip_->observing()) co_await observer_gate();
  co_await core_overhead(cfg.o_ipi_send);
  co_await chip_->mesh().traverse(tile_, chip_->topology().tile_of_core(target));
  co_await chip_->engine().sleep(cfg.t_ipi_service);
  if (chip_->observing()) {
    chip_->observe_sync({SyncOp::kIpiSend, id_, target, 0, 0, now()});
  }
  chip_->core(target).raise_interrupt();
  co_await chip_->mesh().traverse(chip_->topology().tile_of_core(target), tile_);
}

sim::Task<void> Core::wait_interrupt() {
  if (chip_->pdes_active()) {
    OCB_REQUIRE(chip_->engine().current_lane() == chip_->lane_of_core(id_),
                "wait_interrupt under PDES requires the chain to rest on the "
                "core's home lane (interrupt state is lane-confined)");
  }
  if (chip_->observing()) co_await observer_gate();
  set_wait_note("irq-wait");
  while (irq_pending_ == 0) {
    co_await irq_trigger_.wait();
  }
  set_wait_note("running");
  --irq_pending_;
  if (chip_->observing()) {
    chip_->observe_sync({SyncOp::kIpiConsume, id_, id_, 0, 0, now()});
  }
  co_await core_overhead(chip_->config().o_irq_entry);
}

sim::Task<bool> Core::poll_interrupt() {
  if (chip_->pdes_active()) {
    OCB_REQUIRE(chip_->engine().current_lane() == chip_->lane_of_core(id_),
                "poll_interrupt under PDES requires the chain to rest on the "
                "core's home lane (interrupt state is lane-confined)");
  }
  if (chip_->observing()) co_await observer_gate();
  co_await core_overhead(chip_->config().o_irq_check);
  if (irq_pending_ == 0) co_return false;
  --irq_pending_;
  if (chip_->observing()) {
    chip_->observe_sync({SyncOp::kIpiConsume, id_, id_, 0, 0, now()});
  }
  co_await core_overhead(chip_->config().o_irq_entry);
  co_return true;
}

}  // namespace ocb::scc
