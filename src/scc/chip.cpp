#include "scc/chip.h"

#include <algorithm>

#include "common/require.h"
#include "noc/lookahead.h"
#include "scc/bulk.h"

namespace ocb::scc {

SccChip::SccChip(const SccConfig& config) : config_(config) {
  config_.validate();
  const noc::Topology& topo = config_.topology;
  // PDES partition invariant: the topology's lane map must cover every lane
  // monotonically so each lane is one contiguous tile range (the event key
  // space depends on it; see DESIGN.md §11). Guaranteed by construction of
  // pdes_lane_of_tile_index, but cheap to pin down here — this is what the
  // old id/6 split silently violated on non-6-column meshes.
  for (int t = 1; t < topo.num_tiles(); ++t) {
    OCB_ENSURE(lane_of_tile_index(t) >= lane_of_tile_index(t - 1),
               "PDES lane map must be monotone in tile index");
  }
  OCB_ENSURE(lane_of_tile_index(topo.num_tiles() - 1) <
                 sim::Engine::kMaxLanes,
             "PDES lane map exceeds the engine's lane count");
  refresh_coalescing();
  mesh_ = std::make_unique<noc::Mesh>(engine_, topo, config_.l_hop,
                                      config_.link_occupancy);
  mpb_ports_.resize(static_cast<std::size_t>(topo.num_tiles()));
  for (int t = 0; t < topo.num_tiles(); ++t) {
    mpb_ports_[static_cast<std::size_t>(t)] =
        std::make_unique<sim::ArbitratedServer>(engine_, config_.arbitration);
  }
  mc_ports_.resize(static_cast<std::size_t>(topo.num_memory_controllers()));
  for (int m = 0; m < topo.num_memory_controllers(); ++m) {
    mc_ports_[static_cast<std::size_t>(m)] =
        std::make_unique<sim::ArbitratedServer>(engine_, config_.arbitration);
  }
  const auto cores = static_cast<std::size_t>(topo.num_cores());
  mpbs_.resize(cores);
  memories_.resize(cores);
  cores_.resize(cores);
  bulk_pools_.resize(cores);
  crash_notified_.assign(cores, false);
  for (CoreId c = 0; c < topo.num_cores(); ++c) {
    const auto i = static_cast<std::size_t>(c);
    mpbs_[i] = std::make_unique<mem::MpbStorage>(engine_);
    memories_[i] = std::make_unique<mem::PrivateMemory>(config_.private_memory_limit);
    cores_[i] = std::make_unique<Core>(*this, c);
  }
}

SccChip::SccChip(const noc::Topology& topology, SccConfig config)
    : SccChip([&] {
        config.topology = topology;
        return config;
      }()) {}

SccChip::~SccChip() = default;

Core& SccChip::core(CoreId id) {
  config_.topology.require_core(id);
  return *cores_[static_cast<std::size_t>(id)];
}

BulkOp* SccChip::try_acquire_bulk(CoreId id, std::size_t lines) {
  if (!coalescing_active()) return nullptr;
  config_.topology.require_core(id);
  if (!observers_.empty() && !bulk_window_clear(id)) {
    note_bulk_fallback(lines);
    return nullptr;
  }
  auto& pool = bulk_pools_[static_cast<std::size_t>(id)];
  for (const auto& op : pool) {
    if (!op->in_flight()) return op.get();
  }
  if (pool.size() < kBulkPoolSize) {
    pool.push_back(std::make_unique<BulkOp>(core(id)));
    return pool.back().get();
  }
  note_bulk_fallback(lines);
  return nullptr;
}

bool SccChip::bulk_window_clear(CoreId core) {
  const sim::Time now = engine_.now();
  for (TransactionObserver* o : observers_) {
    if (!o->bulk_window_clear(core, now)) return false;
  }
  return true;
}

void SccChip::refresh_coalescing() {
  bool active = config_.coalescing && config_.jitter == 0;
  perline_read_.clear();
  perline_write_.clear();
  perline_complete_.clear();
  bulk_summary_.clear();
  for (TransactionObserver* o : observers_) {
    active = active && o->supports_bulk();
    bool per_line = false;
    if (o->needs_per_line_reads()) {
      perline_read_.push_back(o);
      per_line = true;
    }
    if (o->needs_per_line_writes()) {
      perline_write_.push_back(o);
      per_line = true;
    }
    if (o->needs_per_line_completes()) {
      perline_complete_.push_back(o);
      per_line = true;
    }
    if (!per_line) bulk_summary_.push_back(o);
  }
  coalescing_active_ = active;
}

void SccChip::TraceSinkObserver::on_bulk(const BulkTxn& txn) {
  if (bulk) {
    bulk(txn);
    return;
  }
  // Legacy sinks get the synthesized per-line stream. Reads/writes are
  // no-ops for a sink, so skip the default synthesis' value recovery.
  sink({TraceOp::kBusy, txn.core, txn.core, 0, txn.issue, txn.kickoff});
  for (std::size_t line = 0; line < txn.lines; ++line) {
    for (int hi = 0; hi < 2; ++hi) {
      const BulkHalfDesc& h = txn.half[hi];
      const BulkHalfTimes& ts = txn.schedule[line * 2 + hi];
      const TraceOp op = ts.cache_hit ? TraceOp::kCacheHit : h.op;
      sink({op, txn.core, h.target, h.base + line * h.stride, ts.begin,
            ts.end});
    }
  }
}

mem::MpbStorage& SccChip::mpb(CoreId id) {
  config_.topology.require_core(id);
  return *mpbs_[static_cast<std::size_t>(id)];
}

mem::PrivateMemory& SccChip::memory(CoreId id) {
  config_.topology.require_core(id);
  return *memories_[static_cast<std::size_t>(id)];
}

sim::ArbitratedServer& SccChip::mpb_port(int tile_index) {
  config_.topology.require_tile(tile_index);
  return *mpb_ports_[static_cast<std::size_t>(tile_index)];
}

sim::ArbitratedServer& SccChip::mc_port(int mc_index) {
  OCB_REQUIRE(mc_index >= 0 && mc_index < config_.topology.num_memory_controllers(),
              "memory controller index out of range");
  return *mc_ports_[static_cast<std::size_t>(mc_index)];
}

sim::Task<void> SccChip::invoke_program(
    std::function<sim::Task<void>(Core&)> program, Core& core) {
  // `program` lives in this frame for the lifetime of the inner coroutine,
  // which keeps lambda captures valid (a lambda coroutine's frame refers
  // into its closure object).
  co_await program(core);
}

std::string SccChip::describe_core(void* core) {
  Core& c = *static_cast<Core*>(core);
  return "core " + std::to_string(c.id()) + ": " + c.wait_note();
}

void SccChip::spawn(CoreId id, std::function<sim::Task<void>(Core&)> program) {
  OCB_REQUIRE(static_cast<bool>(program), "empty core program");
  Core& c = core(id);
  engine_.spawn(invoke_program(std::move(program), c), &SccChip::describe_core,
                &c, lane_of_core(id));
}

sim::Duration SccChip::pdes_lookahead() const {
  const sim::Duration min_entry =
      std::min({config_.o_mpb_core, config_.o_ipi_send, config_.o_mem_core_read,
                config_.o_mem_core_write});
  return noc::conservative_lookahead(min_entry, config_.l_hop);
}

bool SccChip::pdes_eligible(std::uint64_t max_events) const {
  return config_.pdes_threads > 0 && config_.jitter == 0 && !observing() &&
         !dynamic_spawning_ && max_events == UINT64_MAX &&
         pdes_lookahead() > 0;
}

sim::RunResult SccChip::run(std::uint64_t max_events) {
  const BulkObserverStats before = bulk_stats_;
  sim::RunResult result;
  if (!pdes_eligible(max_events)) {
    result = engine_.run(max_events);
  } else {
    pdes_active_ = true;
    try {
      result = engine_.run_pdes(config_.pdes_threads, pdes_lookahead());
      pdes_active_ = false;
    } catch (...) {
      pdes_active_ = false;
      throw;
    }
  }
  result.bulk_ops = bulk_stats_.ops - before.ops;
  result.bulk_ops_observed = bulk_stats_.ops_observed - before.ops_observed;
  result.bulk_quiescent_ops = bulk_stats_.quiescent_ops - before.quiescent_ops;
  result.bulk_fallback_ops = bulk_stats_.fallback_ops - before.fallback_ops;
  result.bulk_fallback_lines =
      bulk_stats_.fallback_lines - before.fallback_lines;
  return result;
}

void SccChip::add_observer(TransactionObserver* observer) {
  OCB_REQUIRE(observer != nullptr, "null observer");
  for (const TransactionObserver* o : observers_) {
    OCB_REQUIRE(o != observer, "observer installed twice");
  }
  observers_.push_back(observer);
  refresh_coalescing();
}

void SccChip::remove_observer(TransactionObserver* observer) {
  std::erase(observers_, observer);
  refresh_coalescing();
}

void SccChip::set_trace_sink(TraceSink sink, BulkTraceSink bulk) {
  const bool was_installed = static_cast<bool>(trace_observer_.sink);
  trace_observer_.sink = std::move(sink);
  trace_observer_.bulk = std::move(bulk);
  const bool want_installed = static_cast<bool>(trace_observer_.sink);
  if (want_installed && !was_installed) add_observer(&trace_observer_);
  if (!want_installed && was_installed) remove_observer(&trace_observer_);
}

bool SccChip::observer_crashed(CoreId core, sim::Time now) {
  bool dead = false;
  for (TransactionObserver* o : observers_) {
    dead = o->crashed(core, now) || dead;
  }
  const auto i = static_cast<std::size_t>(core);
  if (dead && !crash_notified_[i]) {
    crash_notified_[i] = true;
    for (TransactionObserver* o : observers_) o->on_crash(core, now);
  }
  return dead;
}

sim::Duration SccChip::observer_stall(CoreId core, sim::Time now) {
  sim::Duration total = 0;
  for (TransactionObserver* o : observers_) total += o->stall(core, now);
  return total;
}

}  // namespace ocb::scc
