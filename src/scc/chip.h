// SccChip: the assembled 48-core machine.
//
// Owns the event engine, the mesh, per-core MPB storage and private
// memories, per-tile MPB ports, and per-controller banks; creates the 48
// Core objects and spawns application coroutines onto them.
//
// Typical use:
//
//   scc::SccChip chip;                       // default = paper's SCC
//   for (CoreId c = 0; c < kNumCores; ++c)
//     chip.spawn(c, [&](scc::Core& core) { return my_program(core); });
//   auto result = chip.run();                // drains all events
//
// The chip is single-threaded and deterministic; run() may be called
// repeatedly as more work is spawned.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <vector>

#include "mem/mpb.h"
#include "mem/private_memory.h"
#include "noc/mesh.h"
#include "noc/memctrl.h"
#include "scc/config.h"
#include "scc/core.h"
#include "scc/observer.h"
#include "scc/trace.h"
#include "sim/engine.h"

namespace ocb::scc {

class BulkOp;

class SccChip {
 public:
  explicit SccChip(const SccConfig& config = SccConfig{});
  ~SccChip();

  SccChip(const SccChip&) = delete;
  SccChip& operator=(const SccChip&) = delete;

  const SccConfig& config() const { return config_; }
  sim::Engine& engine() { return engine_; }
  sim::Time now() const { return engine_.now(); }
  noc::Mesh& mesh() { return *mesh_; }

  Core& core(CoreId id);
  mem::MpbStorage& mpb(CoreId id);
  mem::PrivateMemory& memory(CoreId id);
  sim::ArbitratedServer& mpb_port(int tile_index);
  sim::ArbitratedServer& mc_port(int mc_index);

  /// Spawns `program(core(id))` as a simulated process starting now.
  /// The callable is kept alive for the whole run (lambda captures are
  /// safe).
  void spawn(CoreId id, std::function<sim::Task<void>(Core&)> program);

  /// Runs the event loop to completion; see sim::Engine::run. When
  /// config().pdes_threads > 0 and the run is eligible (see
  /// pdes_eligible()), drains the chip with the conservative-PDES window
  /// loop instead of the serial reference loop — bit-identical results at
  /// any thread count.
  sim::RunResult run(std::uint64_t max_events = UINT64_MAX);

  // --- conservative PDES (parallel chip runs) -----------------------------

  /// Partition map: contiguous 3-tile groups (6 cores) per lane, 8 lanes.
  /// Fixed regardless of worker count — the partition is part of the event
  /// key space, not of the execution policy.
  static unsigned lane_of_core(CoreId id) {
    return static_cast<unsigned>(id) / (kNumCores / sim::Engine::kMaxLanes);
  }
  static unsigned lane_of_tile_index(int tile_index) {
    return static_cast<unsigned>(tile_index) /
           (kNumTiles / sim::Engine::kMaxLanes);
  }
  static unsigned lane_of_tile(noc::TileCoord tile) {
    return lane_of_tile_index(noc::tile_index(tile));
  }

  /// True while a PDES run is draining the chip (any worker count,
  /// including 1). Core transaction primitives branch on this to fuse
  /// their cross-lane edges; rma keeps BulkOp coalescing off it.
  bool pdes_active() const { return pdes_active_; }

  /// Safety-window width for this chip's configuration: the cheapest
  /// cross-partition edge (see noc/lookahead.h).
  sim::Duration pdes_lookahead() const;

  /// Whether a run with `max_events` could use the PDES loop. Serial
  /// fallbacks (all deterministic, thread-count-independent): observers
  /// installed (checked/traced/fault runs), nonzero jitter, a bounded
  /// event budget, or a workload that spawns processes mid-run (the
  /// broadcast service — see note_dynamic_spawning).
  bool pdes_eligible(std::uint64_t max_events) const;

  /// Marks the chip as hosting a workload that spawns processes while the
  /// engine is running (svc::BroadcastService). Such workloads always use
  /// the serial loop; the flag is sticky for the chip's lifetime.
  void note_dynamic_spawning() { dynamic_spawning_ = true; }

  // --- instrumentation: the TransactionObserver chain ---------------------

  /// Appends an observer to the chain (consulted in installation order at
  /// every line transaction; see scc/observer.h). Non-owning — the observer
  /// must outlive the simulation. Installing any observer disables the
  /// coalesced RMA fast path.
  void add_observer(TransactionObserver* observer);

  /// Removes a previously installed observer (no-op if absent).
  void remove_observer(TransactionObserver* observer);

  /// True when at least one observer is installed (per-transaction dispatch
  /// and the pre-transaction gate are active).
  bool observing() const { return !observers_.empty(); }

  /// Installs (or clears, with an empty function) a per-transaction trace
  /// sink; sugar for an internal observer that forwards on_complete events
  /// (see scc/trace.h). Kept for the common "just give me the events" case.
  void set_trace_sink(TraceSink sink);
  bool tracing() const { return static_cast<bool>(trace_observer_.sink); }

  // Chain dispatch, called by Core (and the rma sync layer for
  // observe_sync). All loops are over the installed observers in order.
  bool observer_crashed(CoreId core, sim::Time now);
  sim::Duration observer_stall(CoreId core, sim::Time now);
  void observe_read(const LineTxn& txn, CacheLine& value) {
    for (TransactionObserver* o : observers_) o->on_read(txn, value);
  }
  bool observe_write(const LineTxn& txn, CacheLine& value) {
    bool commit = true;
    for (TransactionObserver* o : observers_) {
      commit = o->on_write(txn, value) && commit;
    }
    return commit;
  }
  void observe_complete(const TraceEvent& event) {
    for (TransactionObserver* o : observers_) o->on_complete(event);
  }
  void observe_sync(const SyncEvent& event) {
    for (TransactionObserver* o : observers_) o->on_sync(event);
  }

  /// True when multi-line RMA ops may take the coalesced fast path (see
  /// DESIGN.md "Fast-path transaction coalescing" for the bypass
  /// conditions). Re-evaluated whenever the observer chain changes; always
  /// off during a PDES run (the closed-form path peeks at the global event
  /// queue, and the event-parity chain reproduces *serial* seq allocation —
  /// both are meaningless under lane-partitioned keys).
  bool coalescing_active() const { return coalescing_active_ && !pdes_active_; }

  /// Per-core reusable fast-path state machine (a core has at most one
  /// RMA op in flight).
  BulkOp& bulk_op(CoreId id);

 private:
  /// The set_trace_sink sugar: a chain member owned by the chip.
  struct TraceSinkObserver final : TransactionObserver {
    TraceSink sink;
    void on_complete(const TraceEvent& event) override { sink(event); }
  };

  static sim::Task<void> invoke_program(
      std::function<sim::Task<void>(Core&)> program, Core& core);
  static std::string describe_core(void* core);

  void refresh_coalescing() {
    coalescing_active_ =
        config_.coalescing && config_.jitter == 0 && observers_.empty();
  }

  SccConfig config_;
  sim::Engine engine_;
  std::unique_ptr<noc::Mesh> mesh_;
  std::array<std::unique_ptr<mem::MpbStorage>, kNumCores> mpbs_;
  std::array<std::unique_ptr<mem::PrivateMemory>, kNumCores> memories_;
  std::array<std::unique_ptr<sim::ArbitratedServer>, kNumTiles> mpb_ports_;
  std::array<std::unique_ptr<sim::ArbitratedServer>, noc::kNumMemoryControllers>
      mc_ports_;
  std::array<std::unique_ptr<Core>, kNumCores> cores_;
  std::array<std::unique_ptr<BulkOp>, kNumCores> bulk_ops_;
  std::vector<TransactionObserver*> observers_;
  TraceSinkObserver trace_observer_;
  std::array<bool, kNumCores> crash_notified_{};
  bool coalescing_active_ = false;
  bool pdes_active_ = false;
  bool dynamic_spawning_ = false;
};

}  // namespace ocb::scc
