// SccChip: the assembled machine (48-core SCC by default).
//
// Owns the event engine, the mesh, per-core MPB storage and private
// memories, per-tile MPB ports, and per-controller banks; creates the Core
// objects and spawns application coroutines onto them. The floorplan comes
// from config().topology (noc/topology.h): the default is the paper's SCC,
// and any N×M mesh or multi-die grid builds the same way with more tiles.
//
// Typical use:
//
//   scc::SccChip chip;                       // default = paper's SCC
//   for (CoreId c = 0; c < chip.num_cores(); ++c)
//     chip.spawn(c, [&](scc::Core& core) { return my_program(core); });
//   auto result = chip.run();                // drains all events
//
// The chip is single-threaded and deterministic; run() may be called
// repeatedly as more work is spawned.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <vector>

#include "mem/mpb.h"
#include "mem/private_memory.h"
#include "noc/mesh.h"
#include "noc/memctrl.h"
#include "scc/config.h"
#include "scc/core.h"
#include "scc/observer.h"
#include "scc/trace.h"
#include "sim/engine.h"

namespace ocb::scc {

class BulkOp;

class SccChip {
 public:
  explicit SccChip(const SccConfig& config = SccConfig{});

  /// Convenience: a chip over `topology` with otherwise-default (or given)
  /// timing parameters.
  explicit SccChip(const noc::Topology& topology,
                   SccConfig config = SccConfig{});
  ~SccChip();

  SccChip(const SccChip&) = delete;
  SccChip& operator=(const SccChip&) = delete;

  const SccConfig& config() const { return config_; }
  const noc::Topology& topology() const { return config_.topology; }
  int num_cores() const { return config_.topology.num_cores(); }
  sim::Engine& engine() { return engine_; }
  sim::Time now() const { return engine_.now(); }
  noc::Mesh& mesh() { return *mesh_; }

  Core& core(CoreId id);
  mem::MpbStorage& mpb(CoreId id);
  mem::PrivateMemory& memory(CoreId id);
  sim::ArbitratedServer& mpb_port(int tile_index);
  sim::ArbitratedServer& mc_port(int mc_index);

  /// Spawns `program(core(id))` as a simulated process starting now.
  /// The callable is kept alive for the whole run (lambda captures are
  /// safe).
  void spawn(CoreId id, std::function<sim::Task<void>(Core&)> program);

  /// Runs the event loop to completion; see sim::Engine::run. When
  /// config().pdes_threads > 0 and the run is eligible (see
  /// pdes_eligible()), drains the chip with the conservative-PDES window
  /// loop instead of the serial reference loop — bit-identical results at
  /// any thread count.
  sim::RunResult run(std::uint64_t max_events = UINT64_MAX);

  // --- conservative PDES (parallel chip runs) -----------------------------

  /// Partition map: contiguous tile-index ranges over kMaxLanes lanes,
  /// derived from the topology (on the SCC: 3 tiles = 6 cores per lane,
  /// the historical id/6 split, bit-identical). Fixed regardless of worker
  /// count — the partition is part of the event key space, not of the
  /// execution policy. The monotone-contiguity invariant is OCB_REQUIREd at
  /// chip construction.
  unsigned lane_of_core(CoreId id) const {
    return lane_of_tile_index(config_.topology.tile_index_of_core(id));
  }
  unsigned lane_of_tile_index(int tile_index) const {
    return config_.topology.pdes_lane_of_tile_index(tile_index,
                                                    sim::Engine::kMaxLanes);
  }
  unsigned lane_of_tile(noc::TileCoord tile) const {
    return lane_of_tile_index(config_.topology.tile_index(tile));
  }

  /// True while a PDES run is draining the chip (any worker count,
  /// including 1). Core transaction primitives branch on this to fuse
  /// their cross-lane edges; rma keeps BulkOp coalescing off it.
  bool pdes_active() const { return pdes_active_; }

  /// Safety-window width for this chip's configuration: the cheapest
  /// cross-partition edge (see noc/lookahead.h).
  sim::Duration pdes_lookahead() const;

  /// Whether a run with `max_events` could use the PDES loop. Serial
  /// fallbacks (all deterministic, thread-count-independent): observers
  /// installed (checked/traced/fault runs), nonzero jitter, a bounded
  /// event budget, or a workload that spawns processes mid-run (the
  /// broadcast service — see note_dynamic_spawning).
  bool pdes_eligible(std::uint64_t max_events) const;

  /// Marks the chip as hosting a workload that spawns processes while the
  /// engine is running (svc::BroadcastService). Such workloads always use
  /// the serial loop; the flag is sticky for the chip's lifetime.
  void note_dynamic_spawning() { dynamic_spawning_ = true; }

  // --- instrumentation: the TransactionObserver chain ---------------------

  /// Appends an observer to the chain (consulted in installation order at
  /// every line transaction; see scc/observer.h). Non-owning — the observer
  /// must outlive the simulation. Installing an observer that is not
  /// bulk-capable (supports_bulk() == false, the default) disables the
  /// coalesced RMA fast path; bulk-capable chains keep it.
  void add_observer(TransactionObserver* observer);

  /// Removes a previously installed observer (no-op if absent).
  void remove_observer(TransactionObserver* observer);

  /// True when at least one observer is installed (per-transaction dispatch
  /// and the pre-transaction gate are active).
  bool observing() const { return !observers_.empty(); }

  /// Installs (or clears, with an empty function) a per-transaction trace
  /// sink; sugar for an internal observer that forwards on_complete events
  /// (see scc/trace.h). Kept for the common "just give me the events" case.
  /// The sink observer is bulk-capable: coalesced ops on a quiescent chip
  /// deliver the synthesized per-line events (byte-identical stream), or —
  /// when `bulk` is provided — one span-style BulkTxn record per op
  /// (see JsonTraceCollector::bulk_sink).
  void set_trace_sink(TraceSink sink, BulkTraceSink bulk = {});
  bool tracing() const { return static_cast<bool>(trace_observer_.sink); }

  // Chain dispatch, called by Core (and the rma sync layer for
  // observe_sync). All loops are over the installed observers in order.
  bool observer_crashed(CoreId core, sim::Time now);
  sim::Duration observer_stall(CoreId core, sim::Time now);
  void observe_read(const LineTxn& txn, CacheLine& value) {
    for (TransactionObserver* o : observers_) o->on_read(txn, value);
  }
  bool observe_write(const LineTxn& txn, CacheLine& value) {
    bool commit = true;
    for (TransactionObserver* o : observers_) {
      commit = o->on_write(txn, value) && commit;
    }
    return commit;
  }
  void observe_complete(const TraceEvent& event) {
    for (TransactionObserver* o : observers_) o->on_complete(event);
  }
  void observe_sync(const SyncEvent& event) {
    for (TransactionObserver* o : observers_) o->on_sync(event);
  }

  /// True when multi-line RMA ops may take the coalesced fast path (see
  /// DESIGN.md "Fast-path transaction coalescing" for the bypass
  /// conditions). Requires config.coalescing, zero jitter, and every
  /// installed observer to be bulk-capable (supports_bulk()); re-evaluated
  /// whenever the observer chain changes; always off during a PDES run
  /// (the closed-form path peeks at the global event queue, and the
  /// event-parity chain reproduces *serial* seq allocation — both are
  /// meaningless under lane-partitioned keys).
  bool coalescing_active() const { return coalescing_active_ && !pdes_active_; }

  /// Acquires an idle fast-path engine for one multi-line RMA op, or
  /// nullptr when the op must take the per-line reference path instead:
  /// coalescing off, some observer's bulk window not clear for `core`
  /// (a pending fault-plan stall/crash), or every pool slot busy (svc
  /// multiplexing more concurrent ops onto the core than kBulkPoolSize).
  /// `lines` is used only for fallback accounting.
  BulkOp* try_acquire_bulk(CoreId core, std::size_t lines);

  /// Fast-path engines kept per core; svc-multiplexed cores run up to
  /// this many coalesced ops concurrently before spilling per-line.
  static constexpr std::size_t kBulkPoolSize = 4;

  // --- quiescent-path observer dispatch (see scc/observer.h) --------------
  // The busy-chip parity chain uses the full-chain observe_* entry points
  // above; the closed-form path dispatches per-line callbacks only to
  // observers that asked for them and one on_bulk to the rest.

  bool bulk_summary_pending() const { return !bulk_summary_.empty(); }
  void observe_read_quiescent(const LineTxn& txn, CacheLine& value) {
    for (TransactionObserver* o : perline_read_) o->on_read(txn, value);
  }
  bool observe_write_quiescent(const LineTxn& txn, CacheLine& value) {
    bool commit = true;
    for (TransactionObserver* o : perline_write_) {
      commit = o->on_write(txn, value) && commit;
    }
    return commit;
  }
  void observe_complete_quiescent(const TraceEvent& event) {
    for (TransactionObserver* o : perline_complete_) o->on_complete(event);
  }
  void observe_bulk(const BulkTxn& txn) {
    for (TransactionObserver* o : bulk_summary_) o->on_bulk(txn);
  }

  /// AND over the chain's per-op gate promises for `core` at now().
  bool bulk_window_clear(CoreId core);

  /// Observer-batch hit/fallback counters (increments compiled in only
  /// with OCB_SIM_STATS). Cumulative over the chip's lifetime; run()
  /// reports per-run deltas in RunResult.
  struct BulkObserverStats {
    std::uint64_t ops = 0;            ///< coalesced ops launched
    std::uint64_t ops_observed = 0;   ///< ... with observers installed
    std::uint64_t quiescent_ops = 0;  ///< ... taking the closed-form path
    std::uint64_t fallback_ops = 0;   ///< ops denied the fast path
    std::uint64_t fallback_lines = 0;  ///< lines those ops replayed per-line
  };
  const BulkObserverStats& bulk_stats() const { return bulk_stats_; }
  void note_bulk_op(bool observed, bool quiescent) {
#ifdef OCB_SIM_STATS
    ++bulk_stats_.ops;
    if (observed) ++bulk_stats_.ops_observed;
    if (quiescent) ++bulk_stats_.quiescent_ops;
#else
    (void)observed;
    (void)quiescent;
#endif
  }
  void note_bulk_fallback(std::size_t lines) {
#ifdef OCB_SIM_STATS
    ++bulk_stats_.fallback_ops;
    bulk_stats_.fallback_lines += lines;
#else
    (void)lines;
#endif
  }

 private:
  /// The set_trace_sink sugar: a chain member owned by the chip. Passive
  /// and fully batched — quiescent coalesced ops reach it via on_bulk,
  /// which forwards a span-style record to `bulk` when set and otherwise
  /// expands to the byte-identical legacy per-line event stream.
  struct TraceSinkObserver final : TransactionObserver {
    TraceSink sink;
    BulkTraceSink bulk;
    bool is_passive() const override { return true; }
    bool needs_per_line_reads() const override { return false; }
    bool needs_per_line_writes() const override { return false; }
    bool needs_per_line_completes() const override { return false; }
    void on_complete(const TraceEvent& event) override { sink(event); }
    void on_bulk(const BulkTxn& txn) override;
  };

  static sim::Task<void> invoke_program(
      std::function<sim::Task<void>(Core&)> program, Core& core);
  static std::string describe_core(void* core);

  /// Recomputes the coalescing flag and the quiescent dispatch lists from
  /// the current chain (called on every add/remove).
  void refresh_coalescing();

  SccConfig config_;
  sim::Engine engine_;
  std::unique_ptr<noc::Mesh> mesh_;
  // Sized from config_.topology at construction.
  std::vector<std::unique_ptr<mem::MpbStorage>> mpbs_;
  std::vector<std::unique_ptr<mem::PrivateMemory>> memories_;
  std::vector<std::unique_ptr<sim::ArbitratedServer>> mpb_ports_;
  std::vector<std::unique_ptr<sim::ArbitratedServer>> mc_ports_;
  std::vector<std::unique_ptr<Core>> cores_;
  std::vector<std::vector<std::unique_ptr<BulkOp>>> bulk_pools_;
  std::vector<TransactionObserver*> observers_;
  // Quiescent dispatch lists, rebuilt by refresh_coalescing(): observers
  // that asked for per-line reads/writes/completes, and those that asked
  // for none of them (on_bulk recipients).
  std::vector<TransactionObserver*> perline_read_;
  std::vector<TransactionObserver*> perline_write_;
  std::vector<TransactionObserver*> perline_complete_;
  std::vector<TransactionObserver*> bulk_summary_;
  BulkObserverStats bulk_stats_;
  TraceSinkObserver trace_observer_;
  std::vector<bool> crash_notified_;
  bool coalescing_active_ = false;
  bool pdes_active_ = false;
  bool dynamic_spawning_ = false;
};

}  // namespace ocb::scc
