// SccChip: the assembled 48-core machine.
//
// Owns the event engine, the mesh, per-core MPB storage and private
// memories, per-tile MPB ports, and per-controller banks; creates the 48
// Core objects and spawns application coroutines onto them.
//
// Typical use:
//
//   scc::SccChip chip;                       // default = paper's SCC
//   for (CoreId c = 0; c < kNumCores; ++c)
//     chip.spawn(c, [&](scc::Core& core) { return my_program(core); });
//   auto result = chip.run();                // drains all events
//
// The chip is single-threaded and deterministic; run() may be called
// repeatedly as more work is spawned.
#pragma once

#include <array>
#include <functional>
#include <memory>

#include "mem/mpb.h"
#include "mem/private_memory.h"
#include "noc/mesh.h"
#include "noc/memctrl.h"
#include "scc/config.h"
#include "scc/core.h"
#include "scc/fault_hook.h"
#include "scc/trace.h"
#include "sim/engine.h"

namespace ocb::scc {

class BulkOp;

class SccChip {
 public:
  explicit SccChip(const SccConfig& config = SccConfig{});
  ~SccChip();

  SccChip(const SccChip&) = delete;
  SccChip& operator=(const SccChip&) = delete;

  const SccConfig& config() const { return config_; }
  sim::Engine& engine() { return engine_; }
  sim::Time now() const { return engine_.now(); }
  noc::Mesh& mesh() { return *mesh_; }

  Core& core(CoreId id);
  mem::MpbStorage& mpb(CoreId id);
  mem::PrivateMemory& memory(CoreId id);
  sim::ArbitratedServer& mpb_port(int tile_index);
  sim::ArbitratedServer& mc_port(int mc_index);

  /// Spawns `program(core(id))` as a simulated process starting now.
  /// The callable is kept alive for the whole run (lambda captures are
  /// safe).
  void spawn(CoreId id, std::function<sim::Task<void>(Core&)> program);

  /// Runs the event loop to completion; see sim::Engine::run.
  sim::RunResult run(std::uint64_t max_events = UINT64_MAX);

  /// Installs (or clears, with an empty function) a per-transaction trace
  /// sink; see scc/trace.h.
  void set_trace_sink(TraceSink sink) {
    trace_sink_ = std::move(sink);
    refresh_coalescing();
  }
  bool tracing() const { return static_cast<bool>(trace_sink_); }
  /// Emits one event (no-op unless tracing). Called by Core.
  void trace(const TraceEvent& event) {
    if (trace_sink_) trace_sink_(event);
  }

  /// Installs (or clears, with nullptr) a fault-injection hook consulted at
  /// every line transaction; see scc/fault_hook.h. Non-owning — the hook
  /// must outlive the simulation.
  void set_fault_hook(FaultHook* hook) {
    fault_hook_ = hook;
    refresh_coalescing();
  }
  FaultHook* fault_hook() const { return fault_hook_; }

  /// True when multi-line RMA ops may take the coalesced fast path (see
  /// DESIGN.md "Fast-path transaction coalescing" for the bypass
  /// conditions). Re-evaluated whenever a hook or sink is (un)installed.
  bool coalescing_active() const { return coalescing_active_; }

  /// Per-core reusable fast-path state machine (a core has at most one
  /// RMA op in flight).
  BulkOp& bulk_op(CoreId id);

 private:
  static sim::Task<void> invoke_program(
      std::function<sim::Task<void>(Core&)> program, Core& core);
  static std::string describe_core(void* core);

  void refresh_coalescing() {
    coalescing_active_ = config_.coalescing && config_.jitter == 0 &&
                         fault_hook_ == nullptr && !trace_sink_;
  }

  SccConfig config_;
  sim::Engine engine_;
  std::unique_ptr<noc::Mesh> mesh_;
  std::array<std::unique_ptr<mem::MpbStorage>, kNumCores> mpbs_;
  std::array<std::unique_ptr<mem::PrivateMemory>, kNumCores> memories_;
  std::array<std::unique_ptr<sim::ArbitratedServer>, kNumTiles> mpb_ports_;
  std::array<std::unique_ptr<sim::ArbitratedServer>, noc::kNumMemoryControllers>
      mc_ports_;
  std::array<std::unique_ptr<Core>, kNumCores> cores_;
  std::array<std::unique_ptr<BulkOp>, kNumCores> bulk_ops_;
  TraceSink trace_sink_;
  FaultHook* fault_hook_ = nullptr;
  bool coalescing_active_ = false;
};

}  // namespace ocb::scc
