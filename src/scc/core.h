// A simulated SCC core (P54C).
//
// Core exposes exactly the memory-traffic primitives the real core has: one
// cache-line transaction at a time (the paper's §3.1.3 justification for
// dropping LogP's g parameter), against its own MPB, any remote MPB, or its
// private off-chip memory. Multi-line RMA operations (rma/rma.h) are loops
// over these.
//
// All methods are coroutines; their completion times reproduce the model
// formulas of Figure 2 (see scc/config.h for the parameter decomposition).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "noc/geometry.h"
#include "sim/condition.h"
#include "sim/task.h"
#include "sim/time.h"

namespace ocb::scc {

class SccChip;

/// Write-allocate LRU set of private-memory line offsets (models the data
/// cache keeping a just-transferred message warm; paper §5.2.2).
///
/// Flat storage: an intrusive doubly-linked LRU over index slots plus an
/// open-addressing (linear-probe, backward-shift-delete) hash table. Every
/// simulated private-memory line transaction goes through here, so the
/// structure must not allocate per entry — node-based list/map churn and
/// rehashing used to dominate large-broadcast simulation profiles. Arrays
/// are allocated lazily on first insert: idle cores' caches cost nothing.
class DataCache {
 public:
  explicit DataCache(std::size_t capacity_lines) : capacity_(capacity_lines) {}

  /// True (and refreshed) if the line is cached.
  bool lookup(std::size_t offset);

  /// Inserts a line, evicting least-recently-used beyond capacity.
  void insert(std::size_t offset);

  void clear();
  std::size_t size() const { return size_; }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  void ensure_storage();
  std::size_t ideal_index(std::size_t key) const;
  /// Probe position holding `key`'s slot, or the table's npos sentinel.
  std::uint32_t find_slot(std::size_t key) const;
  void table_insert(std::size_t key, std::uint32_t slot);
  void table_erase(std::size_t key);
  void lru_detach(std::uint32_t slot);
  void lru_push_front(std::uint32_t slot);

  std::size_t capacity_;
  std::size_t size_ = 0;
  std::uint32_t head_ = kNil;
  std::uint32_t tail_ = kNil;
  std::size_t mask_ = 0;              // table size - 1 (power of two)
  std::vector<std::size_t> key_;      // per LRU slot
  std::vector<std::uint32_t> prev_;   // per LRU slot
  std::vector<std::uint32_t> next_;   // per LRU slot
  std::vector<std::uint32_t> table_;  // probe position -> slot or kNil
};

class Core {
 public:
  Core(SccChip& chip, CoreId id);

  Core(const Core&) = delete;
  Core& operator=(const Core&) = delete;

  CoreId id() const { return id_; }
  noc::TileCoord tile() const { return tile_; }
  /// Tile the core's memory controller attaches to.
  noc::TileCoord mc_tile() const { return mc_tile_; }
  /// Routers between this core and its memory controller (model's d^mem).
  int mem_distance() const { return mem_distance_; }
  /// Routers between this core and core `other`'s MPB (model's d^mpb).
  int mpb_distance(CoreId other) const;

  SccChip& chip() { return *chip_; }
  sim::Time now() const;

  /// Deterministic per-core random stream.
  Xoshiro256& rng() { return rng_; }

  /// Occupies the core for `d` (plus configured jitter), e.g. software
  /// overhead or application compute.
  sim::Task<void> busy(sim::Duration d);

  // --- single cache-line transactions ------------------------------------

  /// Reads one line from core `owner`'s MPB into `out`.
  /// Completion: o_mpb + 2d*L_hop (Formula 3).
  ///
  /// `epoch_out` (optional) additionally samples the line's trigger epoch
  /// for the read-then-park flag-wait pattern (rma::wait_flag et al.). In
  /// the serial loop it is sampled before the transaction starts — exactly
  /// where those loops used to sample it inline. Under PDES it is sampled
  /// at the MPB access itself, on the line's home lane: sampling a foreign
  /// lane's trigger from the requester's lane would race, and the only
  /// observable difference is that a store landing during the request
  /// flight is seen by this read directly instead of via one extra retry
  /// read (certified empirically by tests/pdes_equivalence_test.cpp).
  sim::Task<void> mpb_read_line(CoreId owner, std::size_t line, CacheLine& out,
                                std::uint64_t* epoch_out = nullptr);

  /// Writes one line into core `owner`'s MPB; returns when the write is
  /// acknowledged (Formula 2); the data is visible remotely ~d*L_hop
  /// earlier (Formula 1), which the store's placement models exactly.
  sim::Task<void> mpb_write_line(CoreId owner, std::size_t line, CacheLine value);

  /// Reads one line of this core's private memory (cache modelled).
  /// Miss completion: o_mem_r + 2d*L_hop (Formula 6).
  sim::Task<void> mem_read_line(std::size_t offset, CacheLine& out);

  /// Writes one line of this core's private memory (write-through).
  /// Completion: o_mem_w + 2d*L_hop (Formula 5).
  sim::Task<void> mem_write_line(std::size_t offset, CacheLine value);

  DataCache& cache() { return cache_; }

  // --- inter-core interrupts (paper §7's MPMD direction) ------------------

  /// Raises an interrupt at `target` by writing its configuration register
  /// through the mesh. Completion: o_ipi_send + 2d*L_hop (+ service).
  /// Interrupts are counted, not coalesced: n sends wake n waits.
  sim::Task<void> send_interrupt(CoreId target);

  /// Blocks until an interrupt is pending, consumes it, and charges the
  /// trap/handler entry overhead (o_irq_entry).
  sim::Task<void> wait_interrupt();

  /// Checks-and-consumes a pending interrupt between compute quanta:
  /// charges o_irq_check, plus o_irq_entry when one was taken.
  sim::Task<bool> poll_interrupt();

  /// Pending count (host-side query, no simulated cost).
  int interrupts_pending() const { return irq_pending_; }

  // --- diagnostics ---------------------------------------------------------

  /// Records what this core is (about to be) blocked on; blocking
  /// primitives (rma::wait_flag, interrupt waits, fault halts) call this so
  /// a stalled run can report WHY each core hung (sim::RunResult's
  /// stalled_details). Cheap: three stores, formatted lazily.
  void set_wait_note(const char* what, CoreId owner = -1, int line = -1) {
    wait_what_ = what;
    wait_owner_ = owner;
    wait_line_ = line;
  }

  /// Renders the last recorded wait note, e.g. "flag-wait mpb[7]:3".
  std::string wait_note() const;

  /// Collective-stage provenance for observers (the race checker stamps
  /// violations with it). `what` must be a string literal or otherwise
  /// outlive the run; zero simulated cost.
  void set_stage(const char* what) { stage_ = what; }
  const char* stage() const { return stage_; }

 private:
  friend class SccChip;
  void raise_interrupt() {
    ++irq_pending_;
    irq_trigger_.fire();
  }

  sim::Duration jittered(sim::Duration d);
  sim::Task<void> core_overhead(sim::Duration d);
  /// Crash/stall gate run before each transaction when any observer is
  /// installed: a crashed core parks here forever, a stalled one sleeps.
  sim::Task<void> observer_gate();

  SccChip* chip_;
  CoreId id_;
  noc::TileCoord tile_;
  noc::TileCoord mc_tile_;
  int mc_index_;
  int mem_distance_;
  DataCache cache_;
  Xoshiro256 rng_;
  int irq_pending_ = 0;
  sim::Trigger irq_trigger_;
  const char* wait_what_ = "running";
  const char* stage_ = "";
  CoreId wait_owner_ = -1;
  int wait_line_ = -1;
};

}  // namespace ocb::scc
