// The discrete-event simulation engine.
//
// A single-threaded, deterministic event loop: events are (time, sequence)
// ordered, ties broken by insertion order, so identical inputs produce
// identical simulations on every platform. Simulated SCC cores run as
// coroutines (sim::Task) spawned onto the engine; awaitables suspend them
// and events resume them at computed times.
//
// Ownership model: Engine::spawn wraps each top-level Task in a root frame
// the engine owns. Destroying the engine destroys every root frame, which
// transitively frees any suspended nested call chain (see task.h), so a
// deadlocked or partially-run simulation cannot leak.
#pragma once

#include <coroutine>
#include <cstdint>
#include <exception>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "sim/task.h"
#include "sim/time.h"

namespace ocb::sim {

class Engine;

namespace detail {

struct RootPromise;

/// Handle for a spawned top-level process; owned by the Engine.
struct RootTask {
  using promise_type = RootPromise;
  std::coroutine_handle<RootPromise> handle;
};

struct RootPromise {
  Engine* engine = nullptr;
  bool finished = false;

  RootTask get_return_object() {
    return RootTask{std::coroutine_handle<RootPromise>::from_promise(*this)};
  }
  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<RootPromise> h) const noexcept;
    void await_resume() const noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void return_void() noexcept {}
  void unhandled_exception() noexcept;
};

}  // namespace detail

/// Outcome of Engine::run().
struct RunResult {
  std::uint64_t events_processed = 0;
  /// Processes spawned but not finished when the event queue drained.
  /// Non-zero means the simulation deadlocked (e.g. a flag never set) or a
  /// process was deliberately halted (fault injection).
  std::size_t stalled_processes = 0;
  Time end_time = 0;
  /// One entry per stalled process: its spawn label plus the wait reason it
  /// last reported (see Engine::spawn), e.g. "core 12: flag-wait mpb[7]:3".
  /// Makes fault-induced hangs diagnosable without a debugger.
  std::vector<std::string> stalled_details;

  bool completed() const { return stalled_processes == 0; }
};

class Engine {
 public:
  Engine() = default;
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  Time now() const { return now_; }

  /// Schedules `h` to resume at absolute time `t` (>= now()).
  void schedule(Time t, std::coroutine_handle<> h);

  /// Schedules a plain callback (no allocation; fn must outlive the event).
  void schedule_fn(Time t, void (*fn)(void*), void* ctx);

  /// Starts a top-level process at the current simulated time. `describe`
  /// (optional) is invoked lazily when the process is still unfinished at
  /// the end of a run(), to fill RunResult::stalled_details — it should
  /// report who the process is and what it is currently waiting for.
  void spawn(Task<void> task, std::function<std::string()> describe = {});

  /// Number of spawned processes that have not yet finished.
  std::size_t live_processes() const { return live_; }

  /// Awaitable: suspends the caller for `d` simulated time.
  auto sleep(Duration d) {
    struct Awaiter {
      Engine* engine;
      Duration d;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) const {
        engine->schedule(engine->now() + d, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, d};
  }

  /// Runs until the event queue drains or `max_events` is hit. Rethrows the
  /// first exception that escaped any process. Returns queue statistics.
  RunResult run(std::uint64_t max_events = UINT64_MAX);

  /// Awaitable that never resumes: the simulation analogue of a fail-stop.
  /// The suspended frame is reclaimed at engine teardown (see the ownership
  /// model above), and the process counts as stalled in RunResult.
  struct HaltForever {
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<>) const noexcept {}
    void await_resume() const noexcept {}
  };
  static HaltForever halt_forever() { return {}; }

 private:
  friend struct detail::RootPromise;

  struct Event {
    Time t;
    std::uint64_t seq;
    std::coroutine_handle<> h{};   // resume if set ...
    void (*fn)(void*) = nullptr;   // ... else call fn(ctx)
    void* ctx = nullptr;
  };
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  struct Root {
    std::coroutine_handle<detail::RootPromise> handle;
    std::function<std::string()> describe;  // may be empty
  };

  static detail::RootTask make_root(Task<void> task);

  void note_process_finished() { --live_; }
  void note_process_error(std::exception_ptr e) {
    if (!first_error_) first_error_ = e;
  }

  std::priority_queue<Event, std::vector<Event>, EventAfter> queue_;
  std::vector<Root> roots_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::size_t live_ = 0;
  std::exception_ptr first_error_{};
};

}  // namespace ocb::sim
