// The discrete-event simulation engine.
//
// A single-threaded, deterministic event loop: events are (time, sequence)
// ordered, ties broken by insertion order, so identical inputs produce
// identical simulations on every platform. Simulated SCC cores run as
// coroutines (sim::Task) spawned onto the engine; awaitables suspend them
// and events resume them at computed times.
//
// The queue is a hand-rolled 4-ary implicit heap over 32-byte events: the
// insertion pattern is near-monotone (most events land close after now),
// so the shallower, cache-denser heap beats std::priority_queue's binary
// layout on the hot pop/push cycle. Pop order is identical — (t, seq) is a
// total order, so no tie can be resolved differently.
//
// Ownership model: Engine::spawn wraps each top-level Task in a root frame
// the engine owns. Destroying the engine destroys every root frame, which
// transitively frees any suspended nested call chain (see task.h), so a
// deadlocked or partially-run simulation cannot leak.
#pragma once

#include <coroutine>
#include <cstdint>
#include <exception>
#include <string>
#include <vector>

#include "sim/frame_pool.h"
#include "sim/task.h"
#include "sim/time.h"

namespace ocb::sim {

class Engine;

namespace detail {

struct RootPromise;

/// Handle for a spawned top-level process; owned by the Engine.
struct RootTask {
  using promise_type = RootPromise;
  std::coroutine_handle<RootPromise> handle;
};

struct RootPromise {
  Engine* engine = nullptr;
  bool finished = false;

  RootTask get_return_object() {
    return RootTask{std::coroutine_handle<RootPromise>::from_promise(*this)};
  }
  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<RootPromise> h) const noexcept;
    void await_resume() const noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void return_void() noexcept {}
  void unhandled_exception() noexcept;

  static void* operator new(std::size_t bytes) { return FramePool::allocate(bytes); }
  static void operator delete(void* p) noexcept { FramePool::deallocate(p); }
  static void operator delete(void* p, std::size_t) noexcept {
    FramePool::deallocate(p);
  }
};

}  // namespace detail

/// Outcome of Engine::run().
struct RunResult {
  std::uint64_t events_processed = 0;
  /// Processes spawned but not finished when the event queue drained.
  /// Non-zero means the simulation deadlocked (e.g. a flag never set) or a
  /// process was deliberately halted (fault injection).
  std::size_t stalled_processes = 0;
  Time end_time = 0;
  /// Deepest the event queue ever got (engine lifetime): a queue-pressure
  /// regression shows up here rather than being inferred from wall time.
  std::uint64_t max_queue_depth = 0;
  /// Coroutine-frame allocation counters for this run (deltas; non-zero
  /// only when built with OCB_SIM_STATS): frames taken from the system
  /// allocator vs. recycled through the sim::FramePool free lists.
  std::uint64_t frame_allocs = 0;
  std::uint64_t frame_reuses = 0;
  /// One entry per stalled process: its spawn label plus the wait reason it
  /// last reported (see Engine::spawn), e.g. "core 12: flag-wait mpb[7]:3".
  /// Makes fault-induced hangs diagnosable without a debugger.
  std::vector<std::string> stalled_details;

  bool completed() const { return stalled_processes == 0; }
};

class Engine {
 public:
  Engine() = default;
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  Time now() const { return now_; }

  /// Schedules `h` to resume at absolute time `t` (>= now()).
  void schedule(Time t, std::coroutine_handle<> h);

  /// Schedules a plain callback (no allocation; fn must outlive the event).
  void schedule_fn(Time t, void (*fn)(void*), void* ctx);

  /// Starts a top-level process at the current simulated time. `describe`
  /// (optional, with its context pointer) is invoked lazily when the
  /// process is still unfinished at the end of a run(), to fill
  /// RunResult::stalled_details — it should report who the process is and
  /// what it is currently waiting for. A plain function pointer, not a
  /// std::function: spawn sits on the sweep hot path (one call per core
  /// per chip) and must not allocate per process.
  void spawn(Task<void> task, std::string (*describe)(void*) = nullptr,
             void* describe_ctx = nullptr);

  /// Number of spawned processes that have not yet finished.
  std::size_t live_processes() const { return live_; }

  /// Events currently queued. The closed-form RMA fast path uses this to
  /// detect a quiescent machine (nothing can interleave with the op).
  std::size_t queue_size() const { return heap_.size(); }

  /// Awaitable: suspends the caller for `d` simulated time.
  auto sleep(Duration d) {
    struct Awaiter {
      Engine* engine;
      Duration d;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) const {
        engine->schedule(engine->now() + d, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, d};
  }

  /// Runs until the event queue drains or `max_events` is hit. Rethrows the
  /// first exception that escaped any process. Returns queue statistics.
  RunResult run(std::uint64_t max_events = UINT64_MAX);

  /// Awaitable that never resumes: the simulation analogue of a fail-stop.
  /// The suspended frame is reclaimed at engine teardown (see the ownership
  /// model above), and the process counts as stalled in RunResult.
  struct HaltForever {
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<>) const noexcept {}
    void await_resume() const noexcept {}
  };
  static HaltForever halt_forever() { return {}; }

 private:
  friend struct detail::RootPromise;

  /// 32 bytes; fn == nullptr means `ptr` is a coroutine to resume, else
  /// fn(ptr) is called.
  struct Event {
    Time t;
    std::uint64_t seq;
    void* ptr;
    void (*fn)(void*);
  };

  struct Root {
    std::coroutine_handle<detail::RootPromise> handle;
    std::string (*describe)(void*) = nullptr;
    void* describe_ctx = nullptr;
  };

  static detail::RootTask make_root(Task<void> task);

  static bool before(const Event& a, const Event& b) {
    return a.t != b.t ? a.t < b.t : a.seq < b.seq;
  }
  void heap_push(const Event& e);
  Event heap_pop();

  void note_process_finished() { --live_; }
  void note_process_error(std::exception_ptr e) {
    if (!first_error_) first_error_ = e;
  }

  std::vector<Event> heap_;
  std::vector<Root> roots_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t max_queue_depth_ = 0;
  std::size_t live_ = 0;
  std::exception_ptr first_error_{};
};

}  // namespace ocb::sim
