// The discrete-event simulation engine.
//
// Two execution modes over the same (time, key)-ordered event model:
//
// SERIAL (the reference): a single-threaded event loop. Events are
// (time, sequence) ordered, ties broken by insertion order, so identical
// inputs produce identical simulations on every platform. Simulated SCC
// cores run as coroutines (sim::Task) spawned onto the engine; awaitables
// suspend them and events resume them at computed times.
//
// PDES (run_pdes): conservative parallel discrete-event simulation. The
// event space is statically partitioned into kMaxLanes lanes (the chip maps
// contiguous tile groups to lanes); each lane owns a private (time, key)
// heap and a private notion of "now". A fixed pool of worker threads
// round-robins the lanes and drains them in lock-step safety windows
// [GVT, GVT + lookahead): within a window no lane may affect another (the
// caller guarantees every cross-lane edge costs at least `lookahead`), so
// lanes execute without synchronization. Cross-lane events are posted to
// per-lane inboxes and delivered at the window barrier, which also computes
// the next GVT (min pending time across lanes).
//
// Determinism under PDES is thread-count-invariant by construction:
//  - the lane count is fixed (independent of worker count), and
//  - every event key is (time, origin lane, per-lane monotone counter),
//    packed into the 64-bit seq field (lane in the top byte),
// so each lane's heap receives the same multiset of keys and pops them in
// the same order whether one thread or eight drain the lanes. Running with
// 1 thread and with N threads is bit-identical; that is the parity anchor
// (tests/pdes_equivalence_test.cpp). See DESIGN.md §11 for the full
// argument, including why same-(t) cross-lane order is unobservable.
//
// The queue is a hand-rolled 4-ary implicit heap over 32-byte events: the
// insertion pattern is near-monotone (most events land close after now),
// so the shallower, cache-denser heap beats std::priority_queue's binary
// layout on the hot pop/push cycle. Pop order is identical — (t, key) is a
// total order, so no tie can be resolved differently.
//
// Ownership model: Engine::spawn wraps each top-level Task in a root frame
// the engine owns. Destroying the engine destroys every root frame, which
// transitively frees any suspended nested call chain (see task.h), so a
// deadlocked or partially-run simulation cannot leak.
#pragma once

#include <atomic>
#include <coroutine>
#include <cstdint>
#include <exception>
#include <mutex>
#include <string>
#include <vector>

#include "sim/frame_pool.h"
#include "sim/task.h"
#include "sim/time.h"

namespace ocb::sim {

class Engine;

namespace detail {

struct RootPromise;

/// Handle for a spawned top-level process; owned by the Engine.
struct RootTask {
  using promise_type = RootPromise;
  std::coroutine_handle<RootPromise> handle;
};

struct RootPromise {
  Engine* engine = nullptr;
  bool finished = false;

  RootTask get_return_object() {
    return RootTask{std::coroutine_handle<RootPromise>::from_promise(*this)};
  }
  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<RootPromise> h) const noexcept;
    void await_resume() const noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void return_void() noexcept {}
  void unhandled_exception() noexcept;

  static void* operator new(std::size_t bytes) { return FramePool::allocate(bytes); }
  static void operator delete(void* p) noexcept { FramePool::deallocate(p); }
  static void operator delete(void* p, std::size_t) noexcept {
    FramePool::deallocate(p);
  }
};

}  // namespace detail

/// Outcome of Engine::run() / Engine::run_pdes().
struct RunResult {
  std::uint64_t events_processed = 0;
  /// Processes spawned but not finished when the event queue drained.
  /// Non-zero means the simulation deadlocked (e.g. a flag never set) or a
  /// process was deliberately halted (fault injection).
  std::size_t stalled_processes = 0;
  Time end_time = 0;
  /// Deepest the event queue ever got (engine lifetime): a queue-pressure
  /// regression shows up here rather than being inferred from wall time.
  /// Under PDES this is the deepest any single lane heap got.
  std::uint64_t max_queue_depth = 0;
  /// Coroutine-frame allocation counters for this run (deltas; non-zero
  /// only when built with OCB_SIM_STATS): frames taken from the system
  /// allocator vs. recycled through the sim::FramePool free lists. Under
  /// parallel PDES these count the calling thread only (frames migrate
  /// between workers), so they are reported but not parity-compared.
  std::uint64_t frame_allocs = 0;
  std::uint64_t frame_reuses = 0;
  /// Worker threads the run actually used: 0 for the serial reference loop,
  /// >=1 when the PDES window loop ran. Always filled (the harness budget
  /// split and its regression test key off it).
  unsigned pdes_threads = 0;
  /// Per-window PDES statistics; maintained only when built with
  /// OCB_SIM_STATS (zero otherwise). `pdes_lookahead_ns` is the safety
  /// window width (constant per run — reported so the derivation is
  /// auditable); mean advance per window = (end_time - start) / windows.
  std::uint64_t pdes_windows = 0;
  std::uint64_t pdes_cross_events = 0;
  Duration pdes_lookahead_ns = 0;
  /// Coalesced-RMA observer-batch counters for this run (deltas; filled by
  /// SccChip::run, zero for plain Engine runs and non-OCB_SIM_STATS
  /// builds): ops that took the fast path (and how many of those ran with
  /// observers installed / closed-form), plus ops denied the fast path at
  /// acquisition (gate window not clear, per-core pool exhausted) and the
  /// lines those ops replayed through the per-line reference path.
  std::uint64_t bulk_ops = 0;
  std::uint64_t bulk_ops_observed = 0;
  std::uint64_t bulk_quiescent_ops = 0;
  std::uint64_t bulk_fallback_ops = 0;
  std::uint64_t bulk_fallback_lines = 0;
  /// One entry per stalled process: its spawn label plus the wait reason it
  /// last reported (see Engine::spawn), e.g. "core 12: flag-wait mpb[7]:3".
  /// Makes fault-induced hangs diagnosable without a debugger.
  std::vector<std::string> stalled_details;

  bool completed() const { return stalled_processes == 0; }
};

class Engine {
 public:
  /// Fixed lane count for PDES runs. Thread counts are clamped to this; the
  /// lane partition (and therefore every event key) never depends on the
  /// worker count — that is what makes 1-thread and N-thread runs
  /// bit-identical.
  static constexpr unsigned kMaxLanes = 8;

  Engine() = default;
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time. During a PDES run this is the executing
  /// lane's current event time (lanes advance independently inside a
  /// safety window).
  Time now() const;

  /// Schedules `h` to resume at absolute time `t` (>= now()). Under PDES
  /// this lands on the calling lane — cross-lane edges go through hop().
  void schedule(Time t, std::coroutine_handle<> h);

  /// Schedules a plain callback (no allocation; fn must outlive the event).
  void schedule_fn(Time t, void (*fn)(void*), void* ctx);

  /// Starts a top-level process at the current simulated time. `describe`
  /// (optional, with its context pointer) is invoked lazily when the
  /// process is still unfinished at the end of a run(), to fill
  /// RunResult::stalled_details — it should report who the process is and
  /// what it is currently waiting for. A plain function pointer, not a
  /// std::function: spawn sits on the sweep hot path (one call per core
  /// per chip) and must not allocate per process.
  ///
  /// `lane` is the process's home lane for PDES runs (ignored by the
  /// serial loop). Spawning while PDES workers are running is not
  /// supported — callers that spawn mid-run (the broadcast service) must
  /// run serial; SccChip::run falls back automatically.
  void spawn(Task<void> task, std::string (*describe)(void*) = nullptr,
             void* describe_ctx = nullptr, unsigned lane = 0);

  /// Number of spawned processes that have not yet finished.
  std::size_t live_processes() const {
    return live_.load(std::memory_order_relaxed);
  }

  /// Events currently queued (serial mode). The closed-form RMA fast path
  /// uses this to detect a quiescent machine; PDES runs never take that
  /// path (coalescing is disabled under PDES).
  std::size_t queue_size() const { return heap_.size(); }

  /// Awaitable: suspends the caller for `d` simulated time.
  auto sleep(Duration d) {
    struct Awaiter {
      Engine* engine;
      Duration d;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) const {
        engine->schedule(engine->now() + d, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, d};
  }

  /// Awaitable: resumes the caller at absolute time `t` on `lane`. The
  /// cross-lane building block for PDES: the SCC layer fuses "core-side
  /// entry overhead + uncontended mesh traversal" into one hop whose
  /// latency is >= the run's lookahead, which is exactly what makes the
  /// safety windows conservative. Hopping to the current lane is an
  /// ordinary local event. Only meaningful while a PDES run is executing.
  auto hop(unsigned lane, Time t) {
    struct Awaiter {
      Engine* engine;
      unsigned lane;
      Time t;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) const {
        engine->schedule_on_lane(lane, t, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, lane, t};
  }

  /// True while a PDES run (any worker count, including 1) is executing.
  /// Primitives with PDES-specific paths (Rendezvous) branch on this so
  /// that the 1-thread and N-thread algorithms are literally the same.
  bool pdes_running() const { return pdes_running_; }

  /// Lane of the currently executing event (PDES runs only).
  unsigned current_lane() const;

  /// Reserves a deterministic event key on the calling lane (PDES runs
  /// only): the key the caller's *next* locally scheduled event would get.
  /// Rendezvous captures one per arrival so that boundary-deferred wake
  /// events are keyed by their own arrival, independent of the real-time
  /// order in which arrivals were observed.
  std::uint64_t reserve_key();

  /// Schedules `h` at time `t` with a previously reserved key, delivered
  /// into the key's origin lane at the next window boundary. Safe to call
  /// from any worker (internally synchronized); the barrier makes delivery
  /// deterministic.
  void schedule_at_boundary(std::uint64_t key, Time t, std::coroutine_handle<> h);

  /// Runs until the event queue drains or `max_events` is hit. Rethrows the
  /// first exception that escaped any process. Returns queue statistics.
  RunResult run(std::uint64_t max_events = UINT64_MAX);

  /// Conservative-PDES run: drains all lanes in lock-step safety windows of
  /// width `lookahead`, using `threads` workers (clamped to [1, kMaxLanes]).
  /// Requirements (the SCC layer enforces them before choosing this mode):
  /// every cross-lane edge costs >= `lookahead`, no observer is installed,
  /// jitter is zero, and no process spawns further processes mid-run.
  /// Bit-identical for every `threads` value.
  RunResult run_pdes(unsigned threads, Duration lookahead);

  /// Awaitable that never resumes: the simulation analogue of a fail-stop.
  /// The suspended frame is reclaimed at engine teardown (see the ownership
  /// model above), and the process counts as stalled in RunResult.
  struct HaltForever {
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<>) const noexcept {}
    void await_resume() const noexcept {}
  };
  static HaltForever halt_forever() { return {}; }

 private:
  friend struct detail::RootPromise;

  /// 32 bytes; fn == nullptr means `ptr` is a coroutine to resume, else
  /// fn(ptr) is called. `seq` is a global insertion counter in serial mode
  /// and the packed (origin lane << 56 | per-lane counter) key under PDES;
  /// the comparator is the same either way.
  struct Event {
    Time t;
    std::uint64_t seq;
    void* ptr;
    void (*fn)(void*);
  };

  struct Root {
    std::coroutine_handle<detail::RootPromise> handle;
    std::string (*describe)(void*) = nullptr;
    void* describe_ctx = nullptr;
    unsigned lane = 0;
  };

  /// One PDES lane: a private heap, inbox, and clock. Padded so adjacent
  /// lanes never share a cache line across workers.
  struct alignas(64) Lane {
    std::vector<Event> heap;
    Time now = 0;        ///< current event's time (regresses only at window
                         ///< boundaries, for boundary-deferred wakes)
    Time max_t = 0;      ///< latest event time executed on this lane
    std::uint64_t cnt = 0;        ///< key counter (lane-local, monotone)
    std::uint64_t processed = 0;
    std::uint64_t max_depth = 0;
    std::mutex inbox_mu;
    std::vector<Event> inbox;  ///< cross-lane deliveries (>= next horizon)
  };

  static detail::RootTask make_root(Task<void> task);

  static bool before(const Event& a, const Event& b) {
    return a.t != b.t ? a.t < b.t : a.seq < b.seq;
  }
  static void heap_push(std::vector<Event>& heap, const Event& e);
  static Event heap_pop(std::vector<Event>& heap);

  void schedule_on_lane(unsigned lane, Time t, std::coroutine_handle<> h);
  void lane_push(Lane& lane, const Event& e);
  void worker_loop(unsigned worker, unsigned threads);
  void window_boundary();

  void note_process_finished() {
    live_.fetch_sub(1, std::memory_order_relaxed);
  }
  void note_process_error(std::exception_ptr e);

  std::vector<Event> heap_;
  std::vector<Root> roots_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t max_queue_depth_ = 0;
  std::atomic<std::size_t> live_{0};
  std::mutex error_mu_;
  std::exception_ptr first_error_{};

  // --- PDES run state (valid between run_pdes entry and exit) ----------
  std::vector<Lane> lanes_;
  Time horizon_ = 0;  ///< current window's exclusive upper bound (written
                      ///< by the barrier completion, read by workers; the
                      ///< barrier orders the accesses)
  bool pdes_running_ = false;
  bool stop_ = false;
  std::atomic<bool> error_flag_{false};
  std::mutex boundary_mu_;
  std::vector<Event> boundary_;  ///< boundary-deferred wakes (Rendezvous)
  Duration lookahead_ = 0;
  std::uint64_t windows_ = 0;
  std::uint64_t cross_events_ = 0;
};

}  // namespace ocb::sim
