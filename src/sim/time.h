// Simulated time.
//
// Time is an unsigned 64-bit count of picoseconds since simulation start.
// Integer picoseconds were chosen because every SCC model parameter in the
// paper (Table 1) is an exact multiple of 1 ns, so all arithmetic is exact
// and runs are bit-reproducible; 2^64 ps ≈ 213 days of simulated time, far
// beyond any experiment here.
#pragma once

#include <cstdint>

namespace ocb::sim {

/// Absolute simulated time in picoseconds.
using Time = std::uint64_t;

/// Relative simulated time in picoseconds.
using Duration = std::uint64_t;

inline constexpr Duration kPicosecond = 1;
inline constexpr Duration kNanosecond = 1'000;
inline constexpr Duration kMicrosecond = 1'000'000;
inline constexpr Duration kMillisecond = 1'000'000'000;

/// Converts nanoseconds to the internal unit.
constexpr Duration from_ns(std::uint64_t ns) { return ns * kNanosecond; }

/// Converts a Duration to fractional microseconds (for reporting only).
constexpr double to_us(Duration d) { return static_cast<double>(d) / 1e6; }

/// Converts a Duration to fractional nanoseconds (for reporting only).
constexpr double to_ns(Duration d) { return static_cast<double>(d) / 1e3; }

/// Converts a Duration to fractional seconds (for throughput math).
constexpr double to_seconds(Duration d) { return static_cast<double>(d) / 1e12; }

}  // namespace ocb::sim
