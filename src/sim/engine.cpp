#include "sim/engine.h"

#include "common/require.h"

namespace ocb::sim {

namespace detail {

void RootPromise::FinalAwaiter::await_suspend(
    std::coroutine_handle<RootPromise> h) const noexcept {
  // The frame stays suspended here; the Engine destroys it at teardown.
  RootPromise& p = h.promise();
  p.finished = true;
  if (p.engine != nullptr) p.engine->note_process_finished();
}

void RootPromise::unhandled_exception() noexcept {
  if (engine != nullptr) engine->note_process_error(std::current_exception());
}

}  // namespace detail

Engine::~Engine() {
  for (Root& root : roots_) {
    if (root.handle) root.handle.destroy();
  }
}

void Engine::schedule(Time t, std::coroutine_handle<> h) {
  OCB_REQUIRE(t >= now_, "cannot schedule an event in the past");
  queue_.push(Event{t, next_seq_++, h, nullptr, nullptr});
}

void Engine::schedule_fn(Time t, void (*fn)(void*), void* ctx) {
  OCB_REQUIRE(t >= now_, "cannot schedule an event in the past");
  OCB_REQUIRE(fn != nullptr, "null event callback");
  queue_.push(Event{t, next_seq_++, {}, fn, ctx});
}

detail::RootTask Engine::make_root(Task<void> task) {
  co_await std::move(task);
}

void Engine::spawn(Task<void> task, std::function<std::string()> describe) {
  OCB_REQUIRE(task.valid(), "spawning an empty Task");
  detail::RootTask root = make_root(std::move(task));
  root.handle.promise().engine = this;
  roots_.push_back(Root{root.handle, std::move(describe)});
  ++live_;
  schedule(now_, root.handle);
}

RunResult Engine::run(std::uint64_t max_events) {
  std::uint64_t processed = 0;
  while (!queue_.empty() && processed < max_events) {
    Event ev = queue_.top();
    queue_.pop();
    OCB_ENSURE(ev.t >= now_, "event queue time went backwards");
    now_ = ev.t;
    ++processed;
    if (ev.h) {
      ev.h.resume();
    } else {
      ev.fn(ev.ctx);
    }
    if (first_error_) {
      std::exception_ptr e = std::exchange(first_error_, nullptr);
      events_processed_ += processed;
      std::rethrow_exception(e);
    }
  }
  events_processed_ += processed;
  RunResult result{events_processed_, live_, now_, {}};
  if (live_ > 0) {
    for (std::size_t i = 0; i < roots_.size(); ++i) {
      const Root& root = roots_[i];
      if (root.handle.promise().finished) continue;
      result.stalled_details.push_back(
          root.describe ? root.describe() : "process #" + std::to_string(i));
    }
  }
  return result;
}

}  // namespace ocb::sim
