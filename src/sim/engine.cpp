#include "sim/engine.h"

#include <algorithm>
#include <barrier>
#include <limits>
#include <thread>
#include <utility>

#include "common/require.h"

namespace ocb::sim {

namespace {

constexpr Time kNoEvent = std::numeric_limits<Time>::max();

/// Worker-thread execution context for PDES runs: which engine and lane the
/// current event belongs to. Engine-checked (a parallel_map worker running
/// its own serial chip inside a PDES host process must not route through
/// the host's lanes). `lane` is an Engine::Lane*, stored untyped because
/// Lane is private to Engine.
struct LaneCtx {
  Engine* engine = nullptr;
  void* lane = nullptr;
  unsigned idx = 0;
};

thread_local LaneCtx t_ctx;

}  // namespace

namespace detail {

void RootPromise::FinalAwaiter::await_suspend(
    std::coroutine_handle<RootPromise> h) const noexcept {
  // The frame stays suspended here; the Engine destroys it at teardown.
  RootPromise& p = h.promise();
  p.finished = true;
  if (p.engine != nullptr) p.engine->note_process_finished();
}

void RootPromise::unhandled_exception() noexcept {
  if (engine != nullptr) engine->note_process_error(std::current_exception());
}

}  // namespace detail

Engine::~Engine() {
  for (Root& root : roots_) {
    if (root.handle) root.handle.destroy();
  }
}

void Engine::heap_push(std::vector<Event>& heap, const Event& e) {
  // 4-ary sift-up: parent of i is (i-1)/4.
  std::size_t i = heap.size();
  heap.push_back(e);
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!before(heap[i], heap[parent])) break;
    std::swap(heap[i], heap[parent]);
    i = parent;
  }
}

Engine::Event Engine::heap_pop(std::vector<Event>& heap) {
  const Event top = heap.front();
  const Event last = heap.back();
  heap.pop_back();
  const std::size_t n = heap.size();
  if (n > 0) {
    // 4-ary sift-down: children of i are 4i+1 .. 4i+4.
    std::size_t i = 0;
    for (;;) {
      const std::size_t first_child = 4 * i + 1;
      if (first_child >= n) break;
      std::size_t best = first_child;
      const std::size_t end = first_child + 4 < n ? first_child + 4 : n;
      for (std::size_t c = first_child + 1; c < end; ++c) {
        if (before(heap[c], heap[best])) best = c;
      }
      if (!before(heap[best], last)) break;
      heap[i] = heap[best];
      i = best;
    }
    heap[i] = last;
  }
  return top;
}

Time Engine::now() const {
  if (t_ctx.engine == this && t_ctx.lane != nullptr) {
    return static_cast<const Lane*>(t_ctx.lane)->now;
  }
  return now_;
}

unsigned Engine::current_lane() const {
  OCB_REQUIRE(t_ctx.engine == this && t_ctx.lane != nullptr,
              "current_lane() outside a PDES event");
  return t_ctx.idx;
}

void Engine::lane_push(Lane& lane, const Event& e) {
  heap_push(lane.heap, e);
  if (lane.heap.size() > lane.max_depth) lane.max_depth = lane.heap.size();
}

void Engine::schedule(Time t, std::coroutine_handle<> h) {
  if (t_ctx.engine == this && t_ctx.lane != nullptr) {
    Lane& lane = *static_cast<Lane*>(t_ctx.lane);
    OCB_REQUIRE(t >= lane.now, "cannot schedule an event in the past");
    lane_push(lane, Event{t, (std::uint64_t{t_ctx.idx} << 56) | lane.cnt++,
                          h.address(), nullptr});
    return;
  }
  OCB_REQUIRE(!pdes_running_, "schedule() from outside a lane during a PDES run");
  OCB_REQUIRE(t >= now_, "cannot schedule an event in the past");
  heap_push(heap_, Event{t, next_seq_++, h.address(), nullptr});
  if (heap_.size() > max_queue_depth_) max_queue_depth_ = heap_.size();
}

void Engine::schedule_fn(Time t, void (*fn)(void*), void* ctx) {
  OCB_REQUIRE(fn != nullptr, "null event callback");
  if (t_ctx.engine == this && t_ctx.lane != nullptr) {
    Lane& lane = *static_cast<Lane*>(t_ctx.lane);
    OCB_REQUIRE(t >= lane.now, "cannot schedule an event in the past");
    lane_push(lane,
              Event{t, (std::uint64_t{t_ctx.idx} << 56) | lane.cnt++, ctx, fn});
    return;
  }
  OCB_REQUIRE(!pdes_running_, "schedule_fn() from outside a lane during a PDES run");
  OCB_REQUIRE(t >= now_, "cannot schedule an event in the past");
  heap_push(heap_, Event{t, next_seq_++, ctx, fn});
  if (heap_.size() > max_queue_depth_) max_queue_depth_ = heap_.size();
}

void Engine::schedule_on_lane(unsigned lane, Time t, std::coroutine_handle<> h) {
  OCB_REQUIRE(t_ctx.engine == this && t_ctx.lane != nullptr,
              "hop() outside a PDES event");
  OCB_REQUIRE(lane < lanes_.size(), "hop() to an unknown lane");
  Lane& src = *static_cast<Lane*>(t_ctx.lane);
  const Event e{t, (std::uint64_t{t_ctx.idx} << 56) | src.cnt++, h.address(),
                nullptr};
  if (lane == t_ctx.idx) {
    OCB_REQUIRE(t >= src.now, "cannot schedule an event in the past");
    lane_push(src, e);
    return;
  }
  // The conservative contract: a cross-lane edge may never land inside the
  // current safety window — the receiving lane could already be past it.
  // Every SCC cross-lane primitive costs at least the lookahead, so this
  // only fires on a modeling bug.
  OCB_REQUIRE(t >= horizon_, "conservative lookahead violated by cross-lane event");
  Lane& dst = lanes_[lane];
  std::lock_guard<std::mutex> lock(dst.inbox_mu);
  dst.inbox.push_back(e);
}

std::uint64_t Engine::reserve_key() {
  OCB_REQUIRE(t_ctx.engine == this && t_ctx.lane != nullptr,
              "reserve_key() outside a PDES event");
  Lane& lane = *static_cast<Lane*>(t_ctx.lane);
  return (std::uint64_t{t_ctx.idx} << 56) | lane.cnt++;
}

void Engine::schedule_at_boundary(std::uint64_t key, Time t,
                                  std::coroutine_handle<> h) {
  std::lock_guard<std::mutex> lock(boundary_mu_);
  boundary_.push_back(Event{t, key, h.address(), nullptr});
}

void Engine::note_process_error(std::exception_ptr e) {
  std::lock_guard<std::mutex> lock(error_mu_);
  if (!first_error_) first_error_ = e;
  error_flag_.store(true, std::memory_order_relaxed);
}

detail::RootTask Engine::make_root(Task<void> task) {
  co_await std::move(task);
}

void Engine::spawn(Task<void> task, std::string (*describe)(void*),
                   void* describe_ctx, unsigned lane) {
  OCB_REQUIRE(task.valid(), "spawning an empty Task");
  OCB_REQUIRE(!pdes_running_,
              "spawning a process during a PDES run is not supported; run this "
              "workload serially (see DESIGN.md §11)");
  detail::RootTask root = make_root(std::move(task));
  root.handle.promise().engine = this;
  roots_.push_back(Root{root.handle, describe, describe_ctx, lane % kMaxLanes});
  live_.fetch_add(1, std::memory_order_relaxed);
  schedule(now_, root.handle);
}

RunResult Engine::run(std::uint64_t max_events) {
#ifdef OCB_SIM_STATS
  const FramePool::Stats pool_before = FramePool::stats();
#endif
  std::uint64_t processed = 0;
  while (!heap_.empty() && processed < max_events) {
    const Event ev = heap_pop(heap_);
    OCB_ENSURE(ev.t >= now_, "event queue time went backwards");
    now_ = ev.t;
    ++processed;
    if (ev.fn == nullptr) {
      std::coroutine_handle<>::from_address(ev.ptr).resume();
    } else {
      ev.fn(ev.ptr);
    }
    if (first_error_) {
      std::exception_ptr e = std::exchange(first_error_, nullptr);
      error_flag_.store(false, std::memory_order_relaxed);
      events_processed_ += processed;
      std::rethrow_exception(e);
    }
  }
  events_processed_ += processed;
  RunResult result;
  result.events_processed = events_processed_;
  result.stalled_processes = live_processes();
  result.end_time = now_;
  result.max_queue_depth = max_queue_depth_;
#ifdef OCB_SIM_STATS
  const FramePool::Stats pool_after = FramePool::stats();
  result.frame_allocs = pool_after.fresh - pool_before.fresh;
  result.frame_reuses = pool_after.reused - pool_before.reused;
#endif
  if (live_processes() > 0) {
    for (std::size_t i = 0; i < roots_.size(); ++i) {
      const Root& root = roots_[i];
      if (root.handle.promise().finished) continue;
      result.stalled_details.push_back(
          root.describe != nullptr ? root.describe(root.describe_ctx)
                                   : "process #" + std::to_string(i));
    }
  }
  return result;
}

void Engine::window_boundary() {
  // Single-threaded (std::barrier completion): every worker is parked at
  // the barrier, so lane heaps are safe to touch directly.
  {
    std::lock_guard<std::mutex> lock(boundary_mu_);
    for (const Event& e : boundary_) {
      lane_push(lanes_[static_cast<std::size_t>(e.seq >> 56)], e);
    }
    boundary_.clear();
  }
  for (Lane& lane : lanes_) {
    std::lock_guard<std::mutex> lock(lane.inbox_mu);
    cross_events_ += lane.inbox.size();
    for (const Event& e : lane.inbox) lane_push(lane, e);
    lane.inbox.clear();
  }
  Time gvt = kNoEvent;
  for (const Lane& lane : lanes_) {
    if (!lane.heap.empty() && lane.heap.front().t < gvt) {
      gvt = lane.heap.front().t;
    }
  }
  if (gvt == kNoEvent || error_flag_.load(std::memory_order_relaxed)) {
    stop_ = true;
    return;
  }
  horizon_ = gvt + lookahead_;
  ++windows_;
}

RunResult Engine::run_pdes(unsigned threads, Duration lookahead) {
  OCB_REQUIRE(lookahead > 0, "PDES lookahead must be positive");
  threads = std::clamp(threads, 1u, kMaxLanes);
#ifdef OCB_SIM_STATS
  const FramePool::Stats pool_before = FramePool::stats();
#endif

  // Seed the lanes: every pending event must be a spawned root's start
  // event (anything else has no home lane). Keys are assigned in serial
  // (t, seq) order so the seeding itself is deterministic.
  lanes_ = std::vector<Lane>(kMaxLanes);
  for (Lane& lane : lanes_) {
    lane.now = now_;
    lane.max_t = now_;
  }
  {
    std::vector<Event> pending = heap_;
    heap_.clear();
    std::sort(pending.begin(), pending.end(), &before);
    for (const Event& e : pending) {
      const Root* owner = nullptr;
      for (const Root& root : roots_) {
        if (root.handle.address() == e.ptr) {
          owner = &root;
          break;
        }
      }
      OCB_REQUIRE(owner != nullptr && e.fn == nullptr,
                  "PDES run with a pending event that is not a spawned "
                  "process start");
      Lane& lane = lanes_[owner->lane];
      lane_push(lane, Event{e.t, (std::uint64_t{owner->lane} << 56) | lane.cnt++,
                            e.ptr, nullptr});
    }
  }

  lookahead_ = lookahead;
  windows_ = 0;
  cross_events_ = 0;
  stop_ = false;
  error_flag_.store(false, std::memory_order_relaxed);
  pdes_running_ = true;
  window_boundary();  // computes the first horizon (or stops on empty)

  auto on_boundary = [this]() noexcept { window_boundary(); };
  std::barrier bar(static_cast<std::ptrdiff_t>(threads), on_boundary);

  auto work = [this, threads, &bar](unsigned worker) {
    while (!stop_) {
      for (unsigned idx = worker; idx < lanes_.size(); idx += threads) {
        Lane& lane = lanes_[idx];
        t_ctx = LaneCtx{this, &lane, idx};
        const Time horizon = horizon_;
        while (!lane.heap.empty() && lane.heap.front().t < horizon) {
          const Event ev = heap_pop(lane.heap);
          lane.now = ev.t;
          if (ev.t > lane.max_t) lane.max_t = ev.t;
          ++lane.processed;
          if (ev.fn == nullptr) {
            std::coroutine_handle<>::from_address(ev.ptr).resume();
          } else {
            ev.fn(ev.ptr);
          }
          if (error_flag_.load(std::memory_order_relaxed)) break;
        }
        t_ctx = LaneCtx{};
      }
      bar.arrive_and_wait();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (unsigned w = 1; w < threads; ++w) {
    pool.emplace_back(work, w);
  }
  work(0);
  for (std::thread& th : pool) th.join();
  pdes_running_ = false;

  std::uint64_t processed = 0;
  Time end = now_;
  std::uint64_t deepest = 0;
  for (const Lane& lane : lanes_) {
    processed += lane.processed;
    if (lane.max_t > end) end = lane.max_t;
    if (lane.max_depth > deepest) deepest = lane.max_depth;
  }
  events_processed_ += processed;
  now_ = end;
  if (deepest > max_queue_depth_) max_queue_depth_ = deepest;
  lanes_.clear();

  if (first_error_) {
    std::exception_ptr e;
    {
      std::lock_guard<std::mutex> lock(error_mu_);
      e = std::exchange(first_error_, nullptr);
    }
    error_flag_.store(false, std::memory_order_relaxed);
    std::rethrow_exception(e);
  }

  RunResult result;
  result.events_processed = events_processed_;
  result.stalled_processes = live_processes();
  result.end_time = now_;
  result.max_queue_depth = max_queue_depth_;
  result.pdes_threads = threads;
#ifdef OCB_SIM_STATS
  const FramePool::Stats pool_after = FramePool::stats();
  result.frame_allocs = pool_after.fresh - pool_before.fresh;
  result.frame_reuses = pool_after.reused - pool_before.reused;
  result.pdes_windows = windows_;
  result.pdes_cross_events = cross_events_;
  result.pdes_lookahead_ns = lookahead_;
#endif
  if (live_processes() > 0) {
    for (std::size_t i = 0; i < roots_.size(); ++i) {
      const Root& root = roots_[i];
      if (root.handle.promise().finished) continue;
      result.stalled_details.push_back(
          root.describe != nullptr ? root.describe(root.describe_ctx)
                                   : "process #" + std::to_string(i));
    }
  }
  return result;
}

}  // namespace ocb::sim
