#include "sim/engine.h"

#include "common/require.h"

namespace ocb::sim {

namespace detail {

void RootPromise::FinalAwaiter::await_suspend(
    std::coroutine_handle<RootPromise> h) const noexcept {
  // The frame stays suspended here; the Engine destroys it at teardown.
  RootPromise& p = h.promise();
  p.finished = true;
  if (p.engine != nullptr) p.engine->note_process_finished();
}

void RootPromise::unhandled_exception() noexcept {
  if (engine != nullptr) engine->note_process_error(std::current_exception());
}

}  // namespace detail

Engine::~Engine() {
  for (Root& root : roots_) {
    if (root.handle) root.handle.destroy();
  }
}

void Engine::heap_push(const Event& e) {
  // 4-ary sift-up: parent of i is (i-1)/4.
  std::size_t i = heap_.size();
  heap_.push_back(e);
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!before(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
  if (heap_.size() > max_queue_depth_) max_queue_depth_ = heap_.size();
}

Engine::Event Engine::heap_pop() {
  const Event top = heap_.front();
  const Event last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n > 0) {
    // 4-ary sift-down: children of i are 4i+1 .. 4i+4.
    std::size_t i = 0;
    for (;;) {
      const std::size_t first_child = 4 * i + 1;
      if (first_child >= n) break;
      std::size_t best = first_child;
      const std::size_t end = first_child + 4 < n ? first_child + 4 : n;
      for (std::size_t c = first_child + 1; c < end; ++c) {
        if (before(heap_[c], heap_[best])) best = c;
      }
      if (!before(heap_[best], last)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }
  return top;
}

void Engine::schedule(Time t, std::coroutine_handle<> h) {
  OCB_REQUIRE(t >= now_, "cannot schedule an event in the past");
  heap_push(Event{t, next_seq_++, h.address(), nullptr});
}

void Engine::schedule_fn(Time t, void (*fn)(void*), void* ctx) {
  OCB_REQUIRE(t >= now_, "cannot schedule an event in the past");
  OCB_REQUIRE(fn != nullptr, "null event callback");
  heap_push(Event{t, next_seq_++, ctx, fn});
}

detail::RootTask Engine::make_root(Task<void> task) {
  co_await std::move(task);
}

void Engine::spawn(Task<void> task, std::string (*describe)(void*),
                   void* describe_ctx) {
  OCB_REQUIRE(task.valid(), "spawning an empty Task");
  detail::RootTask root = make_root(std::move(task));
  root.handle.promise().engine = this;
  roots_.push_back(Root{root.handle, describe, describe_ctx});
  ++live_;
  schedule(now_, root.handle);
}

RunResult Engine::run(std::uint64_t max_events) {
#ifdef OCB_SIM_STATS
  const FramePool::Stats pool_before = FramePool::stats();
#endif
  std::uint64_t processed = 0;
  while (!heap_.empty() && processed < max_events) {
    const Event ev = heap_pop();
    OCB_ENSURE(ev.t >= now_, "event queue time went backwards");
    now_ = ev.t;
    ++processed;
    if (ev.fn == nullptr) {
      std::coroutine_handle<>::from_address(ev.ptr).resume();
    } else {
      ev.fn(ev.ptr);
    }
    if (first_error_) {
      std::exception_ptr e = std::exchange(first_error_, nullptr);
      events_processed_ += processed;
      std::rethrow_exception(e);
    }
  }
  events_processed_ += processed;
  RunResult result;
  result.events_processed = events_processed_;
  result.stalled_processes = live_;
  result.end_time = now_;
  result.max_queue_depth = max_queue_depth_;
#ifdef OCB_SIM_STATS
  const FramePool::Stats pool_after = FramePool::stats();
  result.frame_allocs = pool_after.fresh - pool_before.fresh;
  result.frame_reuses = pool_after.reused - pool_before.reused;
#endif
  if (live_ > 0) {
    for (std::size_t i = 0; i < roots_.size(); ++i) {
      const Root& root = roots_[i];
      if (root.handle.promise().finished) continue;
      result.stalled_details.push_back(
          root.describe != nullptr ? root.describe(root.describe_ctx)
                                   : "process #" + std::to_string(i));
    }
  }
  return result;
}

}  // namespace ocb::sim
