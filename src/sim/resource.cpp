#include "sim/resource.h"

#include "common/require.h"

namespace ocb::sim {

void ArbitratedServer::enqueue(const Waiter& w) {
  Waiter queued = w;
  queued.seq = next_seq_++;
  if (!busy_) {
    begin_service(queued);
  } else {
    queue_.push_back(queued);
  }
}

void ArbitratedServer::acquire(Duration service, int priority, void (*cb)(void*),
                               void* ctx) {
  OCB_REQUIRE(cb != nullptr, "null completion callback");
  enqueue(Waiter{{}, cb, ctx, service, priority, 0});
}

void ArbitratedServer::begin_service(const Waiter& w) {
  busy_ = true;
  in_service_ = w;
  busy_time_ += w.service;
  engine_->schedule_fn(engine_->now() + w.service, &complete_trampoline, this);
}

std::size_t ArbitratedServer::pick_next() const {
  OCB_ENSURE(!queue_.empty(), "pick_next on empty queue");
  std::size_t best = 0;
  for (std::size_t i = 1; i < queue_.size(); ++i) {
    const Waiter& a = queue_[i];
    const Waiter& b = queue_[best];
    bool better = false;
    switch (policy_) {
      case Arbitration::kFifo:
        better = a.seq < b.seq;
        break;
      case Arbitration::kPositional:
        better = a.priority != b.priority ? a.priority < b.priority : a.seq < b.seq;
        break;
    }
    if (better) best = i;
  }
  return best;
}

void ArbitratedServer::on_complete() {
  ++total_served_;
  const Waiter done = std::exchange(in_service_, Waiter{});
  if (queue_.empty()) {
    busy_ = false;
  } else {
    const std::size_t i = pick_next();
    Waiter next = queue_[i];
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
    begin_service(next);
  }
  // Notify the finished requester last so a synchronous re-request from it
  // queues behind the service we just started.
  if (done.cb != nullptr) {
    done.cb(done.ctx);
  } else {
    done.h.resume();
  }
}

}  // namespace ocb::sim
