#include "sim/resource.h"

#include "common/require.h"

namespace ocb::sim {

void ArbitratedServer::enqueue(std::coroutine_handle<> h, Duration service,
                               int priority) {
  Waiter w{h, service, priority, next_seq_++};
  if (!busy_) {
    begin_service(w);
  } else {
    queue_.push_back(w);
  }
}

void ArbitratedServer::begin_service(const Waiter& w) {
  busy_ = true;
  in_service_ = w.h;
  busy_time_ += w.service;
  engine_->schedule_fn(engine_->now() + w.service, &complete_trampoline, this);
}

std::size_t ArbitratedServer::pick_next() const {
  OCB_ENSURE(!queue_.empty(), "pick_next on empty queue");
  std::size_t best = 0;
  for (std::size_t i = 1; i < queue_.size(); ++i) {
    const Waiter& a = queue_[i];
    const Waiter& b = queue_[best];
    bool better = false;
    switch (policy_) {
      case Arbitration::kFifo:
        better = a.seq < b.seq;
        break;
      case Arbitration::kPositional:
        better = a.priority != b.priority ? a.priority < b.priority : a.seq < b.seq;
        break;
    }
    if (better) best = i;
  }
  return best;
}

void ArbitratedServer::on_complete() {
  ++total_served_;
  std::coroutine_handle<> done = std::exchange(in_service_, {});
  if (queue_.empty()) {
    busy_ = false;
  } else {
    const std::size_t i = pick_next();
    Waiter next = queue_[i];
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
    begin_service(next);
  }
  // Resume the finished requester last so a synchronous re-request from it
  // queues behind the service we just started.
  done.resume();
}

}  // namespace ocb::sim
