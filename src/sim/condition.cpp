#include "sim/condition.h"

namespace ocb::sim {

void Trigger::fire(Duration delay) {
  ++epoch_;
  if (waiters_.empty()) return;
  // Move out first: a woken waiter may re-wait on this same trigger.
  std::vector<Waiter> woken;
  woken.swap(waiters_);
  const Time t = engine_->now() + delay;
  for (const Waiter& w : woken) {
    if (w.timed != nullptr) {
      if (w.timed->settled) continue;  // its timeout already resumed it
      w.timed->settled = true;
      w.timed->fired = true;
      // The slot is recycled by the pending timeout event, not here.
    }
    engine_->schedule(t, w.h);
  }
}

Trigger::TimedWait* Trigger::acquire_timed(std::coroutine_handle<> h) {
  TimedWait* tw;
  if (timed_free_.empty()) {
    timed_pool_.push_back(std::make_unique<TimedWait>());
    tw = timed_pool_.back().get();
  } else {
    tw = timed_free_.back();
    timed_free_.pop_back();
  }
  tw->trigger = this;
  tw->h = h;
  tw->settled = false;
  tw->fired = false;
  return tw;
}

void Trigger::release_timed(TimedWait* tw) { timed_free_.push_back(tw); }

void Trigger::arm_timeout(TimedWait* tw, Duration timeout) {
  engine_->schedule_fn(engine_->now() + timeout, &Trigger::timeout_expired, tw);
}

bool Rendezvous::suspend(std::coroutine_handle<> h) {
  if (engine_->pdes_running()) {
    // Key and arrival time are captured on the arriving lane — both are
    // deterministic properties of the arrival event itself. Only the
    // bookkeeping below is cross-thread.
    const std::uint64_t key = engine_->reserve_key();
    const Time t = engine_->now();
    std::lock_guard<std::mutex> lock(pdes_mu_);
    pdes_waiters_.push_back(PdesArrival{h, key, t});
    if (pdes_waiters_.size() == parties_) {
      Time fire = 0;
      for (const PdesArrival& w : pdes_waiters_) {
        if (w.t > fire) fire = w.t;
      }
      for (const PdesArrival& w : pdes_waiters_) {
        engine_->schedule_at_boundary(w.key, fire, w.h);
      }
      pdes_waiters_.clear();
    }
    return true;
  }
  waiters_.push_back(h);
  if (waiters_.size() == parties_) {
    // Complete round: wake everyone (including this arriver).
    std::vector<std::coroutine_handle<>> woken;
    woken.swap(waiters_);
    const Time t = engine_->now();
    for (auto w : woken) engine_->schedule(t, w);
  }
  return true;
}

void Trigger::timeout_expired(void* ctx) {
  auto* tw = static_cast<TimedWait*>(ctx);
  Trigger* trigger = tw->trigger;
  if (!tw->settled) {
    tw->settled = true;
    tw->fired = false;
    // Unpark before resuming: the entry's handle is about to go stale, and
    // the resumed coroutine may re-wait on this very trigger.
    std::erase_if(trigger->waiters_,
                  [tw](const Waiter& w) { return w.timed == tw; });
    tw->h.resume();
  }
  trigger->release_timed(tw);
}

}  // namespace ocb::sim
