#include "sim/condition.h"

namespace ocb::sim {

void Trigger::fire(Duration delay) {
  ++epoch_;
  if (waiters_.empty()) return;
  // Move out first: a woken waiter may re-wait on this same trigger.
  std::vector<std::coroutine_handle<>> woken;
  woken.swap(waiters_);
  const Time t = engine_->now() + delay;
  for (auto h : woken) engine_->schedule(t, h);
}

}  // namespace ocb::sim
