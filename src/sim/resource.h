// Contention-bearing resources.
//
// Two flavours are used by the SCC model:
//
//  * Timeline — a scalar "next free" reservation for resources where the
//    holder does not need to observe queueing as a distinct state, only the
//    resulting delay (mesh links under virtual cut-through: a packet's link
//    occupancy is reserved in issue order; the paper shows the mesh never
//    saturates at SCC scale, so this lightweight discipline is faithful).
//
//  * ArbitratedServer — a single server with an explicit waiter queue and a
//    pluggable arbitration policy, used for MPB ports and memory-controller
//    banks, the resources whose queueing produces Figure 4's contention
//    knee. kPositional models the SCC's fixed-priority router/port
//    arbitration, which is what makes contention affect cores unequally
//    ("the slowest core is more than two times slower than the fastest").
#pragma once

#include <coroutine>
#include <cstdint>
#include <vector>

#include "sim/engine.h"

namespace ocb::sim {

/// Scalar reservation line: serialize holds in call order.
class Timeline {
 public:
  /// Reserves `service` time starting no earlier than `arrival`; returns
  /// the completion time of this hold.
  Time reserve(Time arrival, Duration service) {
    const Time start = arrival > next_free_ ? arrival : next_free_;
    next_free_ = start + service;
    return next_free_;
  }

  Time next_free() const { return next_free_; }

 private:
  Time next_free_ = 0;
};

/// How an ArbitratedServer picks the next waiter.
enum class Arbitration {
  kFifo,        ///< strictly by arrival order
  kPositional,  ///< by fixed priority (lower value wins), ties by arrival
};

/// One server, one queue. Awaiting use() suspends the caller until its
/// service completes (wait-in-queue + service time).
class ArbitratedServer {
 public:
  ArbitratedServer(Engine& engine, Arbitration policy)
      : engine_(&engine), policy_(policy) {}

  ArbitratedServer(const ArbitratedServer&) = delete;
  ArbitratedServer& operator=(const ArbitratedServer&) = delete;

  /// Awaitable: occupy the server for `service`. `priority` is only
  /// consulted under kPositional arbitration (lower value = higher
  /// priority); pass the requester's port/position index.
  auto use(Duration service, int priority = 0) {
    struct Awaiter {
      ArbitratedServer* server;
      Duration service;
      int priority;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        server->enqueue(Waiter{h, nullptr, nullptr, service, priority, 0});
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, service, priority};
  }

  /// Callback flavour of use(): joins the same queue under the same
  /// arbitration, but invokes `cb(ctx)` at service completion instead of
  /// resuming a coroutine. The closed-form RMA fast path (scc/bulk.h) uses
  /// this so a coalesced transfer contends for ports exactly like the
  /// per-line path — byte-identical queueing, no coroutine frame.
  void acquire(Duration service, int priority, void (*cb)(void*), void* ctx);

  /// Stats-only booking of one uncontended service (server must be idle
  /// with an empty queue): the quiescent-chip fast path computes service
  /// completion arithmetically and records the hold here so total_served /
  /// busy_time match the per-line path.
  void book_uncontended(Duration service) {
    ++total_served_;
    busy_time_ += service;
  }

  bool busy() const { return busy_; }
  std::size_t queue_length() const { return queue_.size(); }
  std::uint64_t total_served() const { return total_served_; }
  Duration busy_time() const { return busy_time_; }

 private:
  struct Waiter {
    std::coroutine_handle<> h{};   // resume if set ...
    void (*cb)(void*) = nullptr;   // ... else call cb(ctx)
    void* ctx = nullptr;
    Duration service = 0;
    int priority = 0;
    std::uint64_t seq = 0;
  };

  void enqueue(const Waiter& w);
  void begin_service(const Waiter& w);
  void on_complete();
  static void complete_trampoline(void* self) {
    static_cast<ArbitratedServer*>(self)->on_complete();
  }
  std::size_t pick_next() const;

  Engine* engine_;
  Arbitration policy_;
  bool busy_ = false;
  Waiter in_service_{};
  std::vector<Waiter> queue_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t total_served_ = 0;
  Duration busy_time_ = 0;
};

}  // namespace ocb::sim
