// Size-bucketed recycling allocator for coroutine frames.
//
// The simulator allocates a coroutine frame for every nested call in the
// hot per-line transaction path (mpb_read_line -> core_overhead -> ...),
// so a paper-scale run performs millions of small, identically-sized
// heap allocations. This pool intercepts them (via operator new/delete on
// the task promise types) and recycles frames through per-size free lists,
// turning the steady state into a pointer pop/push.
//
// The free lists are thread-local: each harness::ParallelSweep worker runs
// its own single-threaded simulation, and frames never migrate between
// threads (a frame is freed by the same engine — hence thread — that
// allocated it).
#pragma once

#include <cstddef>
#include <cstdint>

namespace ocb::sim {

class FramePool {
 public:
  /// Allocation counters for one thread. `fresh` counts frames that went
  /// to the system allocator, `reused` counts free-list hits. Only
  /// maintained when built with OCB_SIM_STATS (zero otherwise).
  struct Stats {
    std::uint64_t fresh = 0;
    std::uint64_t reused = 0;
  };

  static void* allocate(std::size_t bytes);
  static void deallocate(void* p) noexcept;

  /// This thread's lifetime counters (engine::run reports deltas).
  static Stats stats();
};

}  // namespace ocb::sim
