// Task<T>: the coroutine type in which all simulated SCC core code runs.
//
// Design (the usual lazy-task shape, cf. cppcoro):
//  * A Task is lazy — creating it does not run anything; it starts when
//    awaited. Simulated "processes" are top-level Task<void>s handed to
//    sim::Engine::spawn, which drives them.
//  * Completion uses symmetric transfer to resume the awaiting parent,
//    so arbitrarily deep call chains (put -> write_cl -> mesh traversal)
//    neither grow the native stack nor touch the event queue.
//  * Frames form a strict ownership tree: the child frame is owned by the
//    Task object that lives in the parent's frame, so destroying the root
//    frame releases an entire suspended call chain (Engine teardown relies
//    on this).
//  * Exceptions propagate to the awaiter exactly like ordinary calls.
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "common/require.h"
#include "sim/frame_pool.h"

namespace ocb::sim {

template <typename T>
class Task;

namespace detail {

struct TaskFinalAwaiter {
  bool await_ready() const noexcept { return false; }

  template <typename Promise>
  std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) const noexcept {
    std::coroutine_handle<> cont = h.promise().continuation;
    return cont ? cont : std::noop_coroutine();
  }

  void await_resume() const noexcept {}
};

struct TaskPromiseBase {
  std::coroutine_handle<> continuation{};

  std::suspend_always initial_suspend() noexcept { return {}; }
  TaskFinalAwaiter final_suspend() noexcept { return {}; }

  // Frames are recycled through the thread-local FramePool: per-line
  // transaction coroutines dominate the simulator's allocation traffic.
  static void* operator new(std::size_t bytes) { return FramePool::allocate(bytes); }
  static void operator delete(void* p) noexcept { FramePool::deallocate(p); }
  static void operator delete(void* p, std::size_t) noexcept {
    FramePool::deallocate(p);
  }
};

template <typename T>
struct TaskPromise : TaskPromiseBase {
  std::optional<T> value{};
  std::exception_ptr error{};

  Task<T> get_return_object();
  void return_value(T v) { value.emplace(std::move(v)); }
  void unhandled_exception() { error = std::current_exception(); }

  T take_result() {
    if (error) std::rethrow_exception(error);
    OCB_ENSURE(value.has_value(), "task finished without a value");
    return std::move(*value);
  }
};

template <>
struct TaskPromise<void> : TaskPromiseBase {
  std::exception_ptr error{};

  Task<void> get_return_object();
  void return_void() noexcept {}
  void unhandled_exception() { error = std::current_exception(); }

  void take_result() {
    if (error) std::rethrow_exception(error);
  }
};

}  // namespace detail

/// An awaitable unit of simulated work. Move-only; owns the coroutine frame.
template <typename T = void>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::TaskPromise<T>;
  using handle_type = std::coroutine_handle<promise_type>;

  Task() noexcept = default;
  explicit Task(handle_type h) noexcept : h_(h) {}

  Task(Task&& other) noexcept : h_(std::exchange(other.h_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      h_ = std::exchange(other.h_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  ~Task() { destroy(); }

  /// True if this Task owns a (not yet moved-from) coroutine.
  bool valid() const noexcept { return static_cast<bool>(h_); }

  /// Awaiting a Task starts it and resumes the awaiter on completion.
  /// Throws PreconditionError when the Task is empty (moved-from).
  auto operator co_await() const& {
    struct Awaiter {
      handle_type h;
      bool await_ready() const noexcept { return !h || h.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) const noexcept {
        h.promise().continuation = cont;
        return h;  // symmetric transfer: start the child immediately
      }
      T await_resume() const { return h.promise().take_result(); }
    };
    OCB_REQUIRE(h_, "awaiting an empty Task");
    return Awaiter{h_};
  }

  /// Releases ownership of the frame (Engine::spawn uses this).
  handle_type release() noexcept { return std::exchange(h_, {}); }

 private:
  void destroy() noexcept {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }

  handle_type h_{};
};

namespace detail {

template <typename T>
Task<T> TaskPromise<T>::get_return_object() {
  return Task<T>(std::coroutine_handle<TaskPromise<T>>::from_promise(*this));
}

inline Task<void> TaskPromise<void>::get_return_object() {
  return Task<void>(std::coroutine_handle<TaskPromise<void>>::from_promise(*this));
}

}  // namespace detail

}  // namespace ocb::sim
