// Broadcast wake-up primitive.
//
// A Trigger is the simulation analogue of "something changed at this memory
// location": coroutines suspend on wait() and are all rescheduled when
// fire() is called. There is no payload and no predicate — wakers and
// waiters agree on state separately (e.g. the MPB cache line holding a
// flag); waiters re-check and may wait again. This models polling without
// burning events on every poll iteration.
#pragma once

#include <coroutine>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/engine.h"

namespace ocb::sim {

class Trigger {
 public:
  explicit Trigger(Engine& engine) : engine_(&engine) {}

  Trigger(const Trigger&) = delete;
  Trigger& operator=(const Trigger&) = delete;

  /// Awaitable: suspends until the next fire().
  auto wait() {
    struct Awaiter {
      Trigger* trigger;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        trigger->waiters_.push_back({h, nullptr});
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  /// Monotone count of fire() calls. A poller that sampled the guarded
  /// state should capture the epoch *before* sampling and use
  /// wait_unless_changed() — the sample itself takes simulated time, and a
  /// fire landing inside that window would otherwise be lost.
  std::uint64_t epoch() const { return epoch_; }

  /// Awaitable: suspends until the next fire(), or resumes immediately if
  /// the epoch has already moved past `seen_epoch` (a fire slipped between
  /// the caller's state sample and this wait).
  auto wait_unless_changed(std::uint64_t seen_epoch) {
    struct Awaiter {
      Trigger* trigger;
      std::uint64_t seen;
      bool await_ready() const noexcept { return trigger->epoch_ != seen; }
      void await_suspend(std::coroutine_handle<> h) {
        trigger->waiters_.push_back({h, nullptr});
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, seen_epoch};
  }

  /// Awaitable with a deadline (the watchdog primitive): suspends until the
  /// next fire() OR until `timeout` elapses, whichever comes first; resumes
  /// immediately if the epoch already moved past `seen_epoch`. The awaited
  /// value is true when a fire (or the slipped-epoch fast path) woke the
  /// waiter and false on timeout.
  ///
  /// Lifetime: the Trigger must outlive the timeout event (it owns the
  /// bookkeeping the timer callback touches). Triggers embedded in MPB
  /// storage or other chip-lifetime objects always satisfy this.
  auto wait_for(Duration timeout, std::uint64_t seen_epoch) {
    struct Awaiter {
      Trigger* trigger;
      Duration timeout;
      std::uint64_t seen;
      TimedWait* tw = nullptr;
      bool await_ready() const noexcept { return trigger->epoch_ != seen; }
      void await_suspend(std::coroutine_handle<> h) {
        tw = trigger->acquire_timed(h);
        trigger->waiters_.push_back({h, tw});
        trigger->arm_timeout(tw, timeout);
      }
      bool await_resume() const noexcept { return tw == nullptr || tw->fired; }
    };
    return Awaiter{this, timeout, seen_epoch};
  }

  /// Wakes every waiter at the current simulated time (+ optional delay).
  /// Waiters registered after this call wait for the next fire().
  void fire(Duration delay = 0);

  std::size_t waiter_count() const { return waiters_.size(); }

 private:
  /// Shared state of one wait_for(): settled exactly once by either the
  /// fire path or the timeout event; the timeout event always runs last and
  /// recycles the slot.
  struct TimedWait {
    Trigger* trigger = nullptr;
    std::coroutine_handle<> h;
    bool settled = false;
    bool fired = false;
  };
  struct Waiter {
    std::coroutine_handle<> h;
    TimedWait* timed;  // null for plain waits
  };

  TimedWait* acquire_timed(std::coroutine_handle<> h);
  void release_timed(TimedWait* tw);
  void arm_timeout(TimedWait* tw, Duration timeout);
  static void timeout_expired(void* ctx);

  Engine* engine_;
  std::vector<Waiter> waiters_;
  std::vector<std::unique_ptr<TimedWait>> timed_pool_;
  std::vector<TimedWait*> timed_free_;
  std::uint64_t epoch_ = 0;
};

/// Zero-cost join point for N processes, reusable across rounds.
///
/// All arrivers suspend; when the N-th arrives, everyone resumes at the
/// latest arrival's simulated time. The experiment harness separates
/// measurement iterations with this instead of a real flag barrier so that
/// barrier traffic never pollutes the measured interval (the real RMA
/// barrier lives in rma/barrier.h).
///
/// Under a PDES run the arrivals execute on different lanes, so the round
/// is completed differently: each arrival records its own deterministic
/// event key and arrival time under a mutex, and the completing arrival
/// defers the wakes to the window boundary (Engine::schedule_at_boundary).
/// The fire time (max over arrival times) and every wake's key depend only
/// on the arrivals themselves — never on which worker observed the N-th
/// one — so the round is bit-identical at any thread count. Identical to
/// the serial semantics: in a serial run the N-th arrival is always the
/// latest-timed one, and wakes resume in arrival order there too.
class Rendezvous {
 public:
  Rendezvous(Engine& engine, std::size_t parties)
      : engine_(&engine), parties_(parties) {}

  Rendezvous(const Rendezvous&) = delete;
  Rendezvous& operator=(const Rendezvous&) = delete;

  /// Awaitable: blocks until all `parties` processes have arrived.
  auto arrive() {
    struct Awaiter {
      Rendezvous* r;
      bool await_ready() const noexcept { return false; }
      bool await_suspend(std::coroutine_handle<> h) { return r->suspend(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  std::size_t parties() const { return parties_; }
  std::size_t waiting() const { return waiters_.size(); }

 private:
  struct PdesArrival {
    std::coroutine_handle<> h;
    std::uint64_t key;
    Time t;
  };

  bool suspend(std::coroutine_handle<> h);

  Engine* engine_;
  std::size_t parties_;
  std::vector<std::coroutine_handle<>> waiters_;
  std::mutex pdes_mu_;
  std::vector<PdesArrival> pdes_waiters_;
};

}  // namespace ocb::sim
