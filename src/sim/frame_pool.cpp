#include "sim/frame_pool.h"

#include <new>
#include <vector>

namespace ocb::sim {

namespace {

// Frames are rounded up to 64-byte classes; anything above the cap (rare:
// only unusually large coroutine bodies) goes straight to the system
// allocator. A one-word header in front of the user block records the
// class so deallocate needs no size.
constexpr std::size_t kGranularity = 64;
constexpr std::size_t kHeader = 2 * sizeof(void*);  // keep 16-byte alignment
constexpr std::size_t kClasses = 32;                // up to 2 KiB per frame
constexpr std::uintptr_t kUnpooled = ~std::uintptr_t{0};

struct ThreadCache {
  std::vector<void*> free_list[kClasses];
  FramePool::Stats stats;

  ~ThreadCache() {
    for (auto& list : free_list) {
      for (void* block : list) ::operator delete(block);
    }
  }
};

ThreadCache& cache() {
  thread_local ThreadCache tc;
  return tc;
}

std::uintptr_t& header_of(void* user) {
  return *reinterpret_cast<std::uintptr_t*>(static_cast<char*>(user) - kHeader);
}

}  // namespace

void* FramePool::allocate(std::size_t bytes) {
  const std::size_t total = bytes + kHeader;
  const std::size_t cls = (total + kGranularity - 1) / kGranularity;
  if (cls > kClasses) {
    void* block = ::operator new(total);
    void* user = static_cast<char*>(block) + kHeader;
    header_of(user) = kUnpooled;
    return user;
  }
  ThreadCache& tc = cache();
  auto& list = tc.free_list[cls - 1];
  void* block;
  if (!list.empty()) {
    block = list.back();
    list.pop_back();
#ifdef OCB_SIM_STATS
    ++tc.stats.reused;
#endif
  } else {
    block = ::operator new(cls * kGranularity);
#ifdef OCB_SIM_STATS
    ++tc.stats.fresh;
#endif
  }
  void* user = static_cast<char*>(block) + kHeader;
  header_of(user) = cls - 1;
  return user;
}

void FramePool::deallocate(void* p) noexcept {
  if (p == nullptr) return;
  const std::uintptr_t cls = header_of(p);
  void* block = static_cast<char*>(p) - kHeader;
  if (cls == kUnpooled) {
    ::operator delete(block);
    return;
  }
  cache().free_list[cls].push_back(block);
}

FramePool::Stats FramePool::stats() { return cache().stats; }

}  // namespace ocb::sim
