// Model-parameter fitting: recover Table 1 from measurements.
//
// Every put/get completion time in Figure 2 is *linear* in the eight model
// parameters, so a set of measured (operation, m, d_src, d_dst, time)
// samples defines an ordinary least-squares problem. bench_table1_params
// measures the simulator and runs this fit; recovering the configured
// values end-to-end validates both the simulator and the model.
#pragma once

#include <cstddef>
#include <vector>

#include "model/params.h"

namespace ocb::model {

/// Generic dense least squares: minimizes ||A x - b||_2 via normal
/// equations + Gaussian elimination with partial pivoting. `rows` is A
/// row-major; all rows must have the same width. Throws PreconditionError
/// on a singular system.
std::vector<double> least_squares(const std::vector<std::vector<double>>& rows,
                                  const std::vector<double>& rhs);

/// One measured RMA operation.
struct OpSample {
  enum class Kind { kPutFromMpb, kPutFromMem, kGetToMpb, kGetToMem };
  Kind kind;
  std::size_t m = 1;  ///< cache lines moved
  int d_src = 1;      ///< routers to the source (meaning depends on kind)
  int d_dst = 1;      ///< routers to the destination
  double completion_us = 0.0;
};

/// Result of a parameter fit.
struct FitResult {
  ModelParams params;
  /// max over samples of |predicted - measured| / measured.
  double max_relative_error = 0.0;
};

/// Fits all eight Table 1 parameters to the samples. Requires a sample set
/// that actually spans the parameter space (different kinds, sizes and
/// distances); throws if the system is singular.
FitResult fit_model_params(const std::vector<OpSample>& samples);

}  // namespace ocb::model
