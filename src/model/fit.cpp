#include "model/fit.h"

#include <cmath>

#include "common/require.h"
#include "model/primitives.h"

namespace ocb::model {

std::vector<double> least_squares(const std::vector<std::vector<double>>& rows,
                                  const std::vector<double>& rhs) {
  OCB_REQUIRE(!rows.empty(), "least squares with no samples");
  OCB_REQUIRE(rows.size() == rhs.size(), "row/rhs size mismatch");
  const std::size_t n = rows.front().size();
  OCB_REQUIRE(n > 0, "least squares with no unknowns");
  for (const auto& r : rows) OCB_REQUIRE(r.size() == n, "ragged design matrix");

  // Normal equations: (A^T A) x = A^T b.
  std::vector<std::vector<double>> ata(n, std::vector<double>(n, 0.0));
  std::vector<double> atb(n, 0.0);
  for (std::size_t s = 0; s < rows.size(); ++s) {
    for (std::size_t i = 0; i < n; ++i) {
      atb[i] += rows[s][i] * rhs[s];
      for (std::size_t j = 0; j < n; ++j) ata[i][j] += rows[s][i] * rows[s][j];
    }
  }

  // Gaussian elimination with partial pivoting.
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(ata[r][col]) > std::abs(ata[pivot][col])) pivot = r;
    }
    OCB_REQUIRE(std::abs(ata[pivot][col]) > 1e-12,
                "singular least-squares system (samples do not span the unknowns)");
    std::swap(ata[col], ata[pivot]);
    std::swap(atb[col], atb[pivot]);
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double f = ata[r][col] / ata[col][col];
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) ata[r][c] -= f * ata[col][c];
      atb[r] -= f * atb[col];
    }
  }
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = atb[i] / ata[i][i];
  return x;
}

namespace {

// Unknown ordering for the fit.
enum : std::size_t {
  kLhop = 0,
  kOmpb,
  kOmemR,
  kOmemW,
  kOputMpb,
  kOgetMpb,
  kOputMem,
  kOgetMem,
  kNumUnknowns,
};

// Coefficient row of one sample: completion = row . params.
std::vector<double> design_row(const OpSample& s) {
  std::vector<double> row(kNumUnknowns, 0.0);
  const auto m = static_cast<double>(s.m);
  switch (s.kind) {
    case OpSample::Kind::kPutFromMpb:
      // o_put_mpb + m*(o_mpb + 2*1*L) + m*(o_mpb + 2*d_dst*L)
      row[kOputMpb] = 1.0;
      row[kOmpb] = 2.0 * m;
      row[kLhop] = 2.0 * m * (1.0 + s.d_dst);
      break;
    case OpSample::Kind::kPutFromMem:
      // o_put_mem + m*(o_mem_r + 2*d_src*L) + m*(o_mpb + 2*d_dst*L)
      row[kOputMem] = 1.0;
      row[kOmemR] = m;
      row[kOmpb] = m;
      row[kLhop] = 2.0 * m * (s.d_src + s.d_dst);
      break;
    case OpSample::Kind::kGetToMpb:
      // o_get_mpb + m*(o_mpb + 2*d_src*L) + m*(o_mpb + 2*1*L)
      row[kOgetMpb] = 1.0;
      row[kOmpb] = 2.0 * m;
      row[kLhop] = 2.0 * m * (s.d_src + 1.0);
      break;
    case OpSample::Kind::kGetToMem:
      // o_get_mem + m*(o_mpb + 2*d_src*L) + m*(o_mem_w + 2*d_dst*L)
      row[kOgetMem] = 1.0;
      row[kOmpb] = m;
      row[kOmemW] = m;
      row[kLhop] = 2.0 * m * (s.d_src + s.d_dst);
      break;
  }
  return row;
}

sim::Duration to_ps(double us) {
  OCB_REQUIRE(us >= 0.0, "negative fitted duration");
  return static_cast<sim::Duration>(us * 1e6 + 0.5);
}

double predict_us(const ModelParams& p, const OpSample& s) {
  sim::Duration d = 0;
  switch (s.kind) {
    case OpSample::Kind::kPutFromMpb:
      d = put_from_mpb_completion(p, s.m, s.d_dst);
      break;
    case OpSample::Kind::kPutFromMem:
      d = put_from_mem_completion(p, s.m, s.d_src, s.d_dst);
      break;
    case OpSample::Kind::kGetToMpb:
      d = get_to_mpb_completion(p, s.m, s.d_src);
      break;
    case OpSample::Kind::kGetToMem:
      d = get_to_mem_completion(p, s.m, s.d_src, s.d_dst);
      break;
  }
  return sim::to_us(d);
}

}  // namespace

FitResult fit_model_params(const std::vector<OpSample>& samples) {
  std::vector<std::vector<double>> rows;
  std::vector<double> rhs;
  rows.reserve(samples.size());
  rhs.reserve(samples.size());
  for (const OpSample& s : samples) {
    rows.push_back(design_row(s));
    rhs.push_back(s.completion_us);
  }
  const std::vector<double> x = least_squares(rows, rhs);

  FitResult out;
  out.params.l_hop = to_ps(x[kLhop]);
  out.params.o_mpb = to_ps(x[kOmpb]);
  out.params.o_mem_r = to_ps(x[kOmemR]);
  out.params.o_mem_w = to_ps(x[kOmemW]);
  out.params.o_put_mpb = to_ps(x[kOputMpb]);
  out.params.o_get_mpb = to_ps(x[kOgetMpb]);
  out.params.o_put_mem = to_ps(x[kOputMem]);
  out.params.o_get_mem = to_ps(x[kOgetMem]);
  for (const OpSample& s : samples) {
    const double predicted = predict_us(out.params, s);
    if (s.completion_us > 0.0) {
      out.max_relative_error =
          std::max(out.max_relative_error,
                   std::abs(predicted - s.completion_us) / s.completion_us);
    }
  }
  return out;
}

}  // namespace ocb::model
