#include "model/primitives.h"

#include "common/require.h"

namespace ocb::model {

namespace {
sim::Duration hops(const ModelParams& p, int d) {
  OCB_REQUIRE(d >= 1, "router distance is at least 1 (local access)");
  return static_cast<sim::Duration>(d) * p.l_hop;
}
}  // namespace

sim::Duration mpb_write_latency(const ModelParams& p, int d) {
  return p.o_mpb + hops(p, d);
}

sim::Duration mpb_write_completion(const ModelParams& p, int d) {
  return p.o_mpb + 2 * hops(p, d);
}

sim::Duration mpb_read_completion(const ModelParams& p, int d) {
  return p.o_mpb + 2 * hops(p, d);
}

sim::Duration mem_write_latency(const ModelParams& p, int d) {
  return p.o_mem_w + hops(p, d);
}

sim::Duration mem_write_completion(const ModelParams& p, int d) {
  return p.o_mem_w + 2 * hops(p, d);
}

sim::Duration mem_read_completion(const ModelParams& p, int d) {
  return p.o_mem_r + 2 * hops(p, d);
}

sim::Duration put_from_mpb_completion(const ModelParams& p, std::size_t m, int d_dst) {
  return p.o_put_mpb + m * mpb_read_completion(p, 1) + m * mpb_write_completion(p, d_dst);
}

sim::Duration put_from_mem_completion(const ModelParams& p, std::size_t m, int d_src,
                                      int d_dst) {
  return p.o_put_mem + m * mem_read_completion(p, d_src) +
         m * mpb_write_completion(p, d_dst);
}

sim::Duration put_from_mpb_latency(const ModelParams& p, std::size_t m, int d_dst) {
  OCB_REQUIRE(m >= 1, "empty put");
  return p.o_put_mpb + m * mpb_read_completion(p, 1) +
         (m - 1) * mpb_write_completion(p, d_dst) + mpb_write_latency(p, d_dst);
}

sim::Duration put_from_mem_latency(const ModelParams& p, std::size_t m, int d_src,
                                   int d_dst) {
  OCB_REQUIRE(m >= 1, "empty put");
  return p.o_put_mem + m * mem_read_completion(p, d_src) +
         (m - 1) * mpb_write_completion(p, d_dst) + mpb_write_latency(p, d_dst);
}

sim::Duration get_to_mpb_completion(const ModelParams& p, std::size_t m, int d_src) {
  return p.o_get_mpb + m * mpb_read_completion(p, d_src) +
         m * mpb_write_completion(p, 1);
}

sim::Duration get_to_mem_completion(const ModelParams& p, std::size_t m, int d_src,
                                    int d_dst) {
  return p.o_get_mem + m * mpb_read_completion(p, d_src) +
         m * mem_write_completion(p, d_dst);
}

}  // namespace ocb::model
