#include "model/broadcast_model.h"

#include <algorithm>

#include "common/require.h"
#include "common/types.h"
#include "core/tree.h"

namespace ocb::model {

namespace {

/// Parent/children schedule of the MPICH-style binomial tree over
/// root-relative ranks 0..P-1; children ordered as sent (farthest first).
struct BinomialNode {
  int parent = -1;
  std::vector<int> children;  // in send order
};

std::vector<BinomialNode> binomial_schedule(int parties) {
  std::vector<BinomialNode> nodes(static_cast<std::size_t>(parties));
  for (int r = 0; r < parties; ++r) {
    int mask = 1;
    while (mask < parties && (r & mask) == 0) mask <<= 1;
    if (r != 0) nodes[static_cast<std::size_t>(r)].parent = r - mask;
    for (int m = mask >> 1; m > 0; m >>= 1) {
      if (r + m < parties) nodes[static_cast<std::size_t>(r)].children.push_back(r + m);
    }
  }
  return nodes;
}

std::size_t chunk_count(std::size_t m_lines, std::size_t chunk_lines) {
  return (m_lines + chunk_lines - 1) / chunk_lines;
}

std::size_t chunk_size(std::size_t m_lines, std::size_t chunk_lines, std::size_t c,
                       std::size_t n_chunks) {
  return c + 1 < n_chunks ? chunk_lines : m_lines - (n_chunks - 1) * chunk_lines;
}

}  // namespace

int kary_depth(int parties, int k) {
  return core::KaryTree(parties, k, 0).max_depth();
}

int binomial_rounds(int parties) {
  int rounds = 0;
  int covered = 1;
  while (covered < parties) {
    covered *= 2;
    ++rounds;
  }
  return rounds;
}

BroadcastModel::BroadcastModel(ModelParams params, BroadcastModelOptions options)
    : params_(params), options_(options) {
  OCB_REQUIRE(options_.parties >= 2, "broadcast needs at least two cores");
  OCB_REQUIRE(options_.chunk_lines >= 1, "chunk size must be positive");
  OCB_REQUIRE(options_.rcce_chunk_lines >= 1, "RCCE chunk size must be positive");
}

sim::Duration BroadcastModel::flag_set_cost() const {
  return params_.o_put_mpb + mpb_write_completion(params_, options_.d_mpb);
}

sim::Duration BroadcastModel::flag_poll_cost() const {
  return mpb_read_completion(params_, 1);
}

sim::Duration BroadcastModel::cached_put_cost(std::size_t lines) const {
  return params_.o_put_mem +
         lines * (options_.o_cache_hit + mpb_write_completion(params_, options_.d_mpb));
}

ModeledBroadcast BroadcastModel::ocbcast(std::size_t m_lines, int k) const {
  OCB_REQUIRE(m_lines >= 1, "empty broadcast");
  const int P = options_.parties;
  const core::KaryTree tree(P, k, /*root=*/0);  // relative ids == indices
  const std::size_t chunk = options_.chunk_lines;
  const std::size_t n_chunks = chunk_count(m_lines, chunk);
  const std::size_t buffers = options_.double_buffering ? 2 : 1;

  const sim::Duration poll = flag_poll_cost();
  const sim::Duration notify = flag_set_cost();

  std::vector<sim::Duration> t(static_cast<std::size_t>(P), 0);
  // done[idx][c % buffers]: completion time (at the parent) of idx's
  // doneFlag for the most recent chunk of that buffer parity.
  std::vector<std::array<sim::Duration, 2>> done(static_cast<std::size_t>(P),
                                                 {0, 0});
  std::vector<sim::Duration> notify_arrive(static_cast<std::size_t>(P), 0);

  auto buffer_free_wait = [&](int idx, std::size_t c) {
    // Reusing the chunk-c buffer slot requires every child to have consumed
    // the previous chunk written there (c - buffers); poll one local
    // doneFlag line per child.
    for (CoreId child : tree.children_of(idx)) {
      const sim::Duration avail =
          c >= buffers ? done[static_cast<std::size_t>(child)][c % buffers] : 0;
      t[static_cast<std::size_t>(idx)] =
          std::max(t[static_cast<std::size_t>(idx)], avail) + poll;
    }
  };

  for (std::size_t c = 0; c < n_chunks; ++c) {
    const std::size_t lines = chunk_size(m_lines, chunk, c, n_chunks);
    std::fill(notify_arrive.begin(), notify_arrive.end(), sim::Duration{0});
    for (int idx = 0; idx < P; ++idx) {
      const auto i = static_cast<std::size_t>(idx);
      if (idx == 0) {
        buffer_free_wait(idx, c);
        // Stage the chunk in the local MPB buffer (destination d = 1).
        t[i] += put_from_mem_completion(params_, lines, options_.d_mem, 1);
        for (CoreId target : tree.notify_own_targets(idx)) {
          t[i] += notify;
          notify_arrive[static_cast<std::size_t>(target)] = t[i];
        }
        continue;
      }
      // (detect) the notifyFlag in the local MPB.
      t[i] = std::max(t[i], notify_arrive[i]) + poll;
      // (i) forward the notification inside the parent's group.
      for (CoreId target : tree.notify_forward_targets(idx)) {
        t[i] += notify;
        notify_arrive[static_cast<std::size_t>(target)] = t[i];
      }
      const bool leaf = tree.child_count(idx) == 0;
      if (!leaf) buffer_free_wait(idx, c);
      if (leaf && options_.leaf_direct_to_memory) {
        // §5.4 optimization: skip the own-MPB staging copy entirely.
        t[i] += get_to_mem_completion(params_, lines, options_.d_mpb, options_.d_mem);
        t[i] += notify;  // (iii) doneFlag to the parent
        done[i][c % buffers] = t[i];
        continue;
      }
      // (ii) copy the chunk from the parent's MPB into the own MPB.
      t[i] += get_to_mpb_completion(params_, lines, options_.d_mpb);
      // (iii) doneFlag to the parent.
      t[i] += notify;
      done[i][c % buffers] = t[i];
      // (iv) kick off the own group's notification tree.
      for (CoreId target : tree.notify_own_targets(idx)) {
        t[i] += notify;
        notify_arrive[static_cast<std::size_t>(target)] = t[i];
      }
      // (v) copy from the own MPB (d = 1) to private memory.
      t[i] += get_to_mem_completion(params_, lines, 1, options_.d_mem);
    }
  }

  // Before returning, every node with children polls their doneFlags for
  // the final chunk so its MPB is reusable (this is the "root has 47 flags
  // to poll" cost of §5.2.3, applied uniformly).
  ModeledBroadcast out;
  out.node_return.resize(static_cast<std::size_t>(P));
  for (int idx = 0; idx < P; ++idx) {
    const auto i = static_cast<std::size_t>(idx);
    for (CoreId child : tree.children_of(idx)) {
      const sim::Duration avail =
          done[static_cast<std::size_t>(child)][(n_chunks - 1) % buffers];
      t[i] = std::max(t[i], avail) + poll;
    }
    out.node_return[i] = t[i];
    out.latency = std::max(out.latency, t[i]);
  }
  return out;
}

sim::Duration BroadcastModel::ocbcast_latency(std::size_t m_lines, int k) const {
  return ocbcast(m_lines, k).latency;
}

ModeledBroadcast BroadcastModel::binomial(std::size_t m_lines) const {
  OCB_REQUIRE(m_lines >= 1, "empty broadcast");
  const int P = options_.parties;
  const std::vector<BinomialNode> schedule = binomial_schedule(P);
  const std::size_t chunk = options_.rcce_chunk_lines;
  const std::size_t n_chunks = chunk_count(m_lines, chunk);
  const bool fits_cache = m_lines <= options_.cache_capacity_lines;

  const sim::Duration poll_local = flag_poll_cost();
  const sim::Duration poll_remote = mpb_read_completion(params_, options_.d_mpb);
  const sim::Duration flag_put = flag_set_cost();
  const sim::Duration ready_post = params_.o_put_mpb + mpb_write_completion(params_, 1);

  std::vector<sim::Duration> t(static_cast<std::size_t>(P), 0);
  // Whether the payload is resident in the sender's cache (§5.2.2: every
  // non-root sender just received it; the root warms it on its first send).
  std::vector<bool> warmed(static_cast<std::size_t>(P), false);

  // Pairwise rendezvous per chunk, mirroring rma::TwoSided.
  auto transfer = [&](int s, int r) {
    const auto si = static_cast<std::size_t>(s);
    const auto ri = static_cast<std::size_t>(r);
    for (std::size_t c = 0; c < n_chunks; ++c) {
      const std::size_t lines = chunk_size(m_lines, chunk, c, n_chunks);
      t[ri] += ready_post;
      const sim::Duration ready_at = t[ri];
      t[si] = std::max(t[si], ready_at) + poll_remote;
      t[si] += warmed[si] && fits_cache
                   ? cached_put_cost(lines)
                   : put_from_mem_completion(params_, lines, options_.d_mem,
                                             options_.d_mpb);
      t[si] += flag_put;
      const sim::Duration sent_at = t[si];
      t[ri] = std::max(t[ri], sent_at) + poll_local;
      t[ri] += get_to_mem_completion(params_, lines, 1, options_.d_mem);
    }
    warmed[si] = true;
    warmed[ri] = true;
  };

  // Depth-first over the send schedule: a parent's sends are serial in its
  // own timeline; each child's recv interleaves with exactly that send.
  std::vector<int> stack{0};
  std::vector<sim::Duration> ret(static_cast<std::size_t>(P), 0);
  while (!stack.empty()) {
    const int r = stack.back();
    stack.pop_back();
    for (int child : schedule[static_cast<std::size_t>(r)].children) {
      transfer(r, child);
      stack.push_back(child);
    }
    ret[static_cast<std::size_t>(r)] = t[static_cast<std::size_t>(r)];
  }

  ModeledBroadcast out;
  out.node_return = std::move(ret);
  for (sim::Duration d : out.node_return) out.latency = std::max(out.latency, d);
  return out;
}

sim::Duration BroadcastModel::binomial_latency(std::size_t m_lines) const {
  return binomial(m_lines).latency;
}

double BroadcastModel::ocbcast_throughput_mbps(int k, std::size_t m_lines) const {
  const sim::Duration latency = ocbcast_latency(m_lines, k);
  const double bytes = static_cast<double>(m_lines) * kCacheLineBytes;
  return bytes / 1e6 / sim::to_seconds(latency);
}

sim::Duration BroadcastModel::ocbcast_critical_path(std::size_t m_lines, int k) const {
  const int depth = kary_depth(options_.parties, k);
  return put_from_mem_completion(params_, m_lines, options_.d_mem, 1) +
         static_cast<sim::Duration>(depth) *
             get_to_mpb_completion(params_, m_lines, options_.d_mpb) +
         get_to_mem_completion(params_, m_lines, 1, options_.d_mem);
}

sim::Duration BroadcastModel::binomial_critical_path(std::size_t m_lines) const {
  // Formula 14 (second form): m * (log2(P)*(C_r^mpb + C_w^mpb + C_w^mem)
  //                                 + C_r^mem), all at d = 1.
  const auto rounds = static_cast<sim::Duration>(binomial_rounds(options_.parties));
  const sim::Duration per_line =
      rounds * (mpb_read_completion(params_, 1) + mpb_write_completion(params_, 1) +
                mem_write_completion(params_, 1)) +
      mem_read_completion(params_, 1);
  return m_lines * per_line;
}

double BroadcastModel::formula15_throughput_mbps() const {
  const sim::Duration per_line = 2 * mpb_read_completion(params_, 1) +
                                 mpb_write_completion(params_, 1) +
                                 mem_write_completion(params_, 1);
  return static_cast<double>(kCacheLineBytes) / 1e6 / sim::to_seconds(per_line);
}

double BroadcastModel::formula16_throughput_mbps() const {
  const sim::Duration per_line =
      3 * mpb_read_completion(params_, 1) + 3 * mpb_write_completion(params_, 1) +
      mem_read_completion(params_, 1) + 3 * mem_write_completion(params_, 1);
  return static_cast<double>(kCacheLineBytes) / 1e6 / sim::to_seconds(per_line);
}

}  // namespace ocb::model
