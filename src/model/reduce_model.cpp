#include "model/reduce_model.h"

#include <algorithm>

#include "common/require.h"
#include "common/types.h"
#include "core/tree.h"

namespace ocb::model {

ReduceModel::ReduceModel(ModelParams params, ReduceModelOptions options)
    : params_(params), options_(options) {
  OCB_REQUIRE(options_.parties >= 2, "reduction needs at least two cores");
  OCB_REQUIRE(options_.chunk_lines >= 1, "chunk size must be positive");
}

ModeledReduce ReduceModel::evaluate(std::size_t count, int k) const {
  OCB_REQUIRE(count >= 1, "empty reduction");
  OCB_REQUIRE(k >= 1 && k < options_.parties, "fan-out out of range");
  const int p = options_.parties;
  const core::KaryTree tree(p, k, /*root=*/0);
  const std::size_t chunk_elems =
      options_.chunk_lines * ReduceModelOptions::kDoublesPerLine;
  const std::size_t n_chunks = (count + chunk_elems - 1) / chunk_elems;

  const sim::Duration poll = mpb_read_completion(params_, 1);  // local flag read
  const sim::Duration flag_put =
      params_.o_put_mpb + mpb_write_completion(params_, options_.d_mpb);

  // Deepest-first order so a child's announcement exists before its parent
  // reads it within the same chunk.
  std::vector<int> order(static_cast<std::size_t>(p));
  for (int i = 0; i < p; ++i) order[static_cast<std::size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return tree.depth_of(a) > tree.depth_of(b);
  });

  std::vector<sim::Duration> t(static_cast<std::size_t>(p), 0);
  std::vector<std::array<sim::Duration, 2>> ready(static_cast<std::size_t>(p),
                                                  {0, 0});
  std::vector<std::array<sim::Duration, 2>> consumed(static_cast<std::size_t>(p),
                                                     {0, 0});

  for (std::size_t c = 0; c < n_chunks; ++c) {
    const std::size_t elems = std::min(chunk_elems, count - c * chunk_elems);
    const std::size_t lines =
        (elems + ReduceModelOptions::kDoublesPerLine - 1) /
        ReduceModelOptions::kDoublesPerLine;
    for (int idx : order) {
      const auto i = static_cast<std::size_t>(idx);
      // 1. Own input chunk (cold reads: the harness rotates buffers).
      t[i] += lines * mem_read_completion(params_, options_.d_mem);
      // 2. Ingest every child's staged chunk.
      const auto children = tree.children_of(idx);
      for (CoreId child : children) {
        t[i] = std::max(t[i], ready[static_cast<std::size_t>(child)][c % 2]) + poll;
        t[i] += lines * mpb_read_completion(params_, options_.d_mpb);
        // Release the child's buffer.
        t[i] += flag_put;
        consumed[static_cast<std::size_t>(child)][c % 2] = t[i];
      }
      if (!children.empty()) {
        t[i] += static_cast<sim::Duration>(children.size()) *
                static_cast<sim::Duration>(elems) * options_.op_cost;
      }
      // 3. Deliver.
      if (idx == 0) {
        t[i] += lines * mem_write_completion(params_, options_.d_mem);
        continue;
      }
      if (c >= 2) {
        t[i] = std::max(t[i], consumed[i][c % 2]) + poll;
      }
      t[i] += lines * mpb_write_completion(params_, 1);  // local staging writes
      t[i] += flag_put;                                  // readyFlag to the parent
      ready[i][c % 2] = t[i];
    }
  }

  ModeledReduce out;
  out.node_return.resize(static_cast<std::size_t>(p));
  for (int idx = 0; idx < p; ++idx) {
    const auto i = static_cast<std::size_t>(idx);
    // Non-roots end-wait for the parent's final consumption.
    if (idx != 0) t[i] = std::max(t[i], consumed[i][(n_chunks - 1) % 2]) + poll;
    out.node_return[i] = t[i];
    out.latency = std::max(out.latency, t[i]);
  }
  return out;
}

sim::Duration ReduceModel::latency(std::size_t count, int k) const {
  return evaluate(count, k).latency;
}

double ReduceModel::throughput_mbps(int k, std::size_t count) const {
  const sim::Duration lat = latency(count, k);
  return static_cast<double>(count) * sizeof(double) / 1e6 / sim::to_seconds(lat);
}

int ReduceModel::best_throughput_fanout(int max_k) const {
  int best = 1;
  double best_tput = 0.0;
  for (int k = 1; k <= std::min(max_k, options_.parties - 1); ++k) {
    const double tput = throughput_mbps(k);
    if (tput > best_tput) {
      best_tput = tput;
      best = k;
    }
  }
  return best;
}

}  // namespace ocb::model
