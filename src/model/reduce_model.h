// Analytical model of the OC-Reduce extension — the same contention-free
// timeline-recurrence approach as model::BroadcastModel, mirrored for data
// flowing leaves -> root (see core/ocreduce.h for the protocol and
// docs/MODEL.md §5 for the informal cost argument).
//
// Its headline prediction: a parent ingests k staged chunks per chunk it
// emits, so — opposite to broadcast — reduction THROUGHPUT is maximized at
// small fan-outs (k = 2 on SCC parameters), while k = 1 (a chain) trades
// a small further throughput gain for O(P) small-message latency.
#pragma once

#include <cstddef>
#include <vector>

#include "model/params.h"
#include "model/primitives.h"

namespace ocb::model {

struct ReduceModelOptions {
  int parties = 48;
  std::size_t chunk_lines = 96;
  int d_mpb = 1;
  int d_mem = 1;
  /// Per-element merge cost on the combining core (matches
  /// core::OcReduceOptions::op_cost).
  sim::Duration op_cost = 15 * sim::kNanosecond;
  /// Doubles per cache line (fixed by the 32-byte line).
  static constexpr std::size_t kDoublesPerLine = 4;
};

struct ModeledReduce {
  std::vector<sim::Duration> node_return;  // root-relative indices
  sim::Duration latency = 0;
};

class ReduceModel {
 public:
  ReduceModel(ModelParams params, ReduceModelOptions options);

  /// Full timeline recurrence for reducing `count` doubles with fan-out k.
  ModeledReduce evaluate(std::size_t count, int k) const;
  sim::Duration latency(std::size_t count, int k) const;

  /// Modeled steady-state throughput in MB/s (payload bytes / latency) at
  /// a pipeline-filling element count.
  double throughput_mbps(int k, std::size_t count = 1 << 14) const;

  /// The fan-out with the highest modeled throughput (argmax over 1..max_k).
  int best_throughput_fanout(int max_k = 47) const;

 private:
  ModelParams params_;
  ReduceModelOptions options_;
};

}  // namespace ocb::model
