// Model parameters (paper Table 1).
//
// All parameters are durations in integer picoseconds (sim::Duration). The
// defaults are exactly the paper's measured values for the SCC at its
// default frequencies (533 MHz tiles / 800 MHz mesh+DRAM).
#pragma once

#include "sim/time.h"

namespace ocb::model {

struct ModelParams {
  sim::Duration l_hop = 5 * sim::kNanosecond;        ///< L_hop
  sim::Duration o_mpb = 126 * sim::kNanosecond;      ///< o^mpb
  sim::Duration o_mem_w = 461 * sim::kNanosecond;    ///< o^mem_w
  sim::Duration o_mem_r = 208 * sim::kNanosecond;    ///< o^mem_r
  sim::Duration o_put_mpb = 69 * sim::kNanosecond;   ///< o^mpb_put
  sim::Duration o_get_mpb = 330 * sim::kNanosecond;  ///< o^mpb_get
  sim::Duration o_put_mem = 190 * sim::kNanosecond;  ///< o^mem_put
  sim::Duration o_get_mem = 95 * sim::kNanosecond;   ///< o^mem_get

  /// The paper's Table 1 values (same as the defaults; spelled out for
  /// intent at call sites).
  static ModelParams paper() { return ModelParams{}; }
};

}  // namespace ocb::model
