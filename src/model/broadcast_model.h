// Analytical broadcast evaluation (paper Section 5).
//
// The paper's Figure 6 / Table 2 come from "complete formulas" published
// only in the unavailable full version; §5 gives simplified critical-path
// versions (Formulas 13-16). We provide both:
//
//  * the literal simplified formulas (ocbcast_critical_path,
//    binomial_critical_path, Formulas 15/16 throughputs), used in tests and
//    docs, and
//
//  * a reconstructed *complete* model: a contention-free timeline
//    recurrence that walks the very same tree/schedule structures as the
//    implementations (core/ocbcast.*, core/binomial.*) and charges each
//    core's serial actions with the Figure 2 primitive costs — including
//    the notification binary tree, doneFlag polling (the k=47 penalty of
//    Fig. 6b), double buffering, pipelining, and the §5.2.2 cache
//    assumption for binomial resends. Distances are fixed at d = 1 as in
//    §5.1. This is what regenerates the Figure 6 curves and Table 2.
//
// Flag-wait convention: a flag set at time T is detected by a poller at
// max(T, poller busy) + C_r^mpb(1) — the paper's "no time elapses between
// setting the flag and checking" plus the physically required read.
#pragma once

#include <cstddef>
#include <vector>

#include "model/params.h"
#include "model/primitives.h"

namespace ocb::model {

struct BroadcastModelOptions {
  int parties = 48;
  std::size_t chunk_lines = 96;       ///< M_oc, OC-Bcast chunk (half-MPB buffer)
  std::size_t rcce_chunk_lines = 251; ///< M_rcce, two-sided payload buffer
  bool double_buffering = true;
  bool leaf_direct_to_memory = false; ///< §5.4 optional optimization
  int d_mpb = 1;                      ///< average MPB distance (§5.1)
  int d_mem = 1;                      ///< average memory-controller distance
  /// Private-memory read cost for data still in cache (§5.2.2 approximates
  /// this as zero; we charge a small hit cost).
  sim::Duration o_cache_hit = 6 * sim::kNanosecond;
  /// Cache capacity in lines: resends of messages larger than this are
  /// charged cold reads (sequential LRU re-reads all miss).
  std::size_t cache_capacity_lines = 8192;
};

/// Per-node outcome of a modeled broadcast.
struct ModeledBroadcast {
  /// Time at which each root-relative node returns from the collective.
  std::vector<sim::Duration> node_return;
  /// max(node_return) — the paper's latency definition.
  sim::Duration latency = 0;
};

class BroadcastModel {
 public:
  BroadcastModel(ModelParams params, BroadcastModelOptions options);

  const ModelParams& params() const { return params_; }
  const BroadcastModelOptions& options() const { return options_; }

  // --- reconstructed complete model -------------------------------------

  /// OC-Bcast with fan-out k for an m-line message (Fig. 6 generator).
  ModeledBroadcast ocbcast(std::size_t m_lines, int k) const;
  sim::Duration ocbcast_latency(std::size_t m_lines, int k) const;

  /// RCCE_comm binomial-tree broadcast (two-sided) for an m-line message.
  ModeledBroadcast binomial(std::size_t m_lines) const;
  sim::Duration binomial_latency(std::size_t m_lines) const;

  /// Peak OC-Bcast throughput in MB/s, evaluated on a message of
  /// `m_lines` (default 32768 = 1 MiB, deep in the pipelined regime).
  double ocbcast_throughput_mbps(int k, std::size_t m_lines = 32768) const;

  // --- the paper's simplified formulas -----------------------------------

  /// Formula 13: critical path of data movement for OC-Bcast (notification
  /// ignored).
  sim::Duration ocbcast_critical_path(std::size_t m_lines, int k) const;

  /// Formula 14: critical path of the two-sided binomial tree with the L1
  /// re-send assumption.
  sim::Duration binomial_critical_path(std::size_t m_lines) const;

  /// Formula 15: peak OC-Bcast throughput (MB/s); independent of k.
  double formula15_throughput_mbps() const;

  /// Formula 16: two-sided scatter-allgather throughput (MB/s) for a
  /// message of P * M_oc lines.
  double formula16_throughput_mbps() const;

  // --- shared cost helpers (exposed for tests) ----------------------------

  /// Completion of one flag write to a remote MPB (write-only 1-line put).
  sim::Duration flag_set_cost() const;
  /// Cost of one successful poll read of a local flag line.
  sim::Duration flag_poll_cost() const;

 private:
  /// Per-chunk put cost for a sender whose payload is cache-resident.
  sim::Duration cached_put_cost(std::size_t lines) const;

  ModelParams params_;
  BroadcastModelOptions options_;
};

/// Number of tree levels below the root, ceil-log style: the count of
/// k-ary levels needed to cover `parties` nodes (used by Formula 13).
int kary_depth(int parties, int k);

/// ceil(log2(parties)) — binomial tree rounds (used by Formula 14).
int binomial_rounds(int parties);

}  // namespace ocb::model
