// The communication model of Figure 2: latency (L) and completion time (C)
// of read/write/put/get as functions of message size m (cache lines) and
// router distance d.
//
// Conventions follow the paper exactly:
//  * d counts routers traversed (local access: d = 1),
//  * m is in cache lines,
//  * read latency == read completion (request/response),
//  * write completion adds the returning acknowledgment (+d*L_hop over its
//    latency).
#pragma once

#include <cstddef>

#include "model/params.h"

namespace ocb::model {

// --- single-line primitives (Formulas 1-6) -------------------------------

/// (1) L_w^mpb(d) = o_mpb + d*L_hop
sim::Duration mpb_write_latency(const ModelParams& p, int d);
/// (2) C_w^mpb(d) = o_mpb + 2d*L_hop
sim::Duration mpb_write_completion(const ModelParams& p, int d);
/// (3) L_r^mpb(d) = C_r^mpb(d) = o_mpb + 2d*L_hop
sim::Duration mpb_read_completion(const ModelParams& p, int d);
/// (4) L_w^mem(d) = o_mem_w + d*L_hop
sim::Duration mem_write_latency(const ModelParams& p, int d);
/// (5) C_w^mem(d) = o_mem_w + 2d*L_hop
sim::Duration mem_write_completion(const ModelParams& p, int d);
/// (6) L_r^mem(d) = C_r^mem(d) = o_mem_r + 2d*L_hop
sim::Duration mem_read_completion(const ModelParams& p, int d);

// --- put (Formulas 7-10) ---------------------------------------------------

/// (7) C_put^mpb(m, d_dst): source is the caller's local MPB (d_src = 1).
sim::Duration put_from_mpb_completion(const ModelParams& p, std::size_t m, int d_dst);
/// (8) C_put^mem(m, d_src, d_dst): source is private off-chip memory.
sim::Duration put_from_mem_completion(const ModelParams& p, std::size_t m, int d_src,
                                      int d_dst);
/// (9) L_put^mpb(m, d_dst): completion minus the last write's ack.
sim::Duration put_from_mpb_latency(const ModelParams& p, std::size_t m, int d_dst);
/// (10) L_put^mem(m, d_src, d_dst)
sim::Duration put_from_mem_latency(const ModelParams& p, std::size_t m, int d_src,
                                   int d_dst);

// --- get (Formulas 11-12) ---------------------------------------------------

/// (11) L = C = o_get^mpb + m*C_r^mpb(d_src) + m*C_w^mpb(1): destination is
/// the caller's local MPB.
sim::Duration get_to_mpb_completion(const ModelParams& p, std::size_t m, int d_src);
/// (12) L = C = o_get^mem + m*C_r^mpb(d_src) + m*C_w^mem(d_dst): destination
/// is private off-chip memory.
sim::Duration get_to_mem_completion(const ModelParams& p, std::size_t m, int d_src,
                                    int d_dst);

}  // namespace ocb::model
