// The 2D-mesh NoC timing model.
//
// Virtual cut-through at cache-line (= packet) granularity: a packet from
// tile S to tile D advances one router per L_hop, and holds each directed
// link it crosses for `link_occupancy` (its serialization time). Link holds
// are reserved in departure order on a per-link Timeline, which adds
// queueing delay if a link is oversubscribed — at SCC scale it never is
// (paper §3.3), and tests assert both that property and that a
// deliberately oversubscribed link does queue.
//
// Routes for all tile pairs are precomputed; traversals cost one event.
#pragma once

#include <array>
#include <coroutine>
#include <cstdint>
#include <vector>

#include "noc/routing.h"
#include "sim/engine.h"
#include "sim/resource.h"

namespace ocb::noc {

class Mesh {
 public:
  Mesh(sim::Engine& engine, sim::Duration l_hop, sim::Duration link_occupancy);

  Mesh(const Mesh&) = delete;
  Mesh& operator=(const Mesh&) = delete;

  /// Books one packet departing at `departure` from `src` to `dst`;
  /// returns its arrival time (>= departure + routers * L_hop).
  sim::Time reserve_path(sim::Time departure, TileCoord src, TileCoord dst);

  /// Latency of an uncontended traversal crossing `routers` routers.
  sim::Duration uncontended_latency(int routers) const {
    return static_cast<sim::Duration>(routers) * l_hop_;
  }

  /// Awaitable: the calling coroutine "is" the packet; it resumes at the
  /// destination's arrival time.
  auto traverse(TileCoord src, TileCoord dst) {
    struct Awaiter {
      Mesh* mesh;
      TileCoord src, dst;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) const {
        sim::Engine& e = *mesh->engine_;
        e.schedule(mesh->reserve_path(e.now(), src, dst), h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, src, dst};
  }

  sim::Duration l_hop() const { return l_hop_; }

  /// Directed links the precomputed X-Y route crosses (0 iff src == dst).
  int route_links(TileCoord src, TileCoord dst) const {
    return static_cast<int>(routes_[tile_index(src)][tile_index(dst)].length);
  }

  /// Total occupancy ever reserved on a directed link (for tests/reports).
  sim::Duration link_total_occupancy(LinkId link) const;

  /// Packets that crossed a directed link.
  std::uint64_t link_packets(LinkId link) const;

 private:
  struct RouteRef {
    std::uint32_t begin = 0;
    std::uint32_t length = 0;
  };

  sim::Engine* engine_;
  sim::Duration l_hop_;
  sim::Duration link_occupancy_;
  std::array<sim::Timeline, kNumLinkSlots> links_{};
  std::array<sim::Duration, kNumLinkSlots> link_busy_{};
  std::array<std::uint64_t, kNumLinkSlots> link_packets_{};
  std::vector<LinkId> route_storage_;
  std::array<std::array<RouteRef, kNumTiles>, kNumTiles> routes_{};
};

}  // namespace ocb::noc
