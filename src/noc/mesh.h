// The 2D-mesh NoC timing model.
//
// Virtual cut-through at cache-line (= packet) granularity: a packet from
// tile S to tile D advances one router per L_hop, and holds each directed
// link it crosses for `link_occupancy` (its serialization time). Link holds
// are reserved in departure order on a per-link Timeline, which adds
// queueing delay if a link is oversubscribed — at SCC scale it never is
// (paper §3.3), and tests assert both that property and that a
// deliberately oversubscribed link does queue.
//
// Multi-die topologies: a link crossing a die boundary is an interposer
// link; it pays the topology's extra latency on top of L_hop and extra
// serialization on top of link_occupancy. Per-link timing is precomputed
// at construction, so the reservation loop stays one Timeline op per link.
//
// Routes for all tile pairs are precomputed; traversals cost one event.
#pragma once

#include <coroutine>
#include <cstdint>
#include <vector>

#include "noc/routing.h"
#include "noc/topology.h"
#include "sim/engine.h"
#include "sim/resource.h"

namespace ocb::noc {

class Mesh {
 public:
  /// Mesh over an explicit topology.
  Mesh(sim::Engine& engine, const Topology& topology, sim::Duration l_hop,
       sim::Duration link_occupancy);

  /// SCC-mesh convenience (the historical signature).
  Mesh(sim::Engine& engine, sim::Duration l_hop, sim::Duration link_occupancy)
      : Mesh(engine, Topology::scc(), l_hop, link_occupancy) {}

  Mesh(const Mesh&) = delete;
  Mesh& operator=(const Mesh&) = delete;

  /// Books one packet departing at `departure` from `src` to `dst`;
  /// returns its arrival time (>= departure + routers * L_hop
  /// + die crossings * interposer extra latency).
  sim::Time reserve_path(sim::Time departure, TileCoord src, TileCoord dst);

  /// Latency of an uncontended traversal crossing `routers` routers, all
  /// hops on-die. Single-die topologies only have such traversals; for a
  /// path that may cross dies use the (src, dst) overload.
  sim::Duration uncontended_latency(int routers) const {
    return static_cast<sim::Duration>(routers) * l_hop_;
  }

  /// Latency of an uncontended traversal from `src` to `dst`: one L_hop per
  /// router plus the interposer extra for every die boundary crossed.
  sim::Duration uncontended_latency(TileCoord src, TileCoord dst) const {
    return static_cast<sim::Duration>(Topology::routers_traversed(src, dst)) *
               l_hop_ +
           static_cast<sim::Duration>(topology_.die_crossings(src, dst)) *
               topology_.interposer_extra_latency();
  }

  /// Awaitable: the calling coroutine "is" the packet; it resumes at the
  /// destination's arrival time.
  auto traverse(TileCoord src, TileCoord dst) {
    struct Awaiter {
      Mesh* mesh;
      TileCoord src, dst;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) const {
        sim::Engine& e = *mesh->engine_;
        e.schedule(mesh->reserve_path(e.now(), src, dst), h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, src, dst};
  }

  sim::Duration l_hop() const { return l_hop_; }
  const Topology& topology() const { return topology_; }

  /// Directed links the precomputed X-Y route crosses (0 iff src == dst).
  int route_links(TileCoord src, TileCoord dst) const {
    return static_cast<int>(route_ref(src, dst).length);
  }

  /// Total occupancy ever reserved on a directed link (for tests/reports).
  sim::Duration link_total_occupancy(LinkId link) const;

  /// Packets that crossed a directed link.
  std::uint64_t link_packets(LinkId link) const;

 private:
  struct RouteRef {
    std::uint32_t begin = 0;
    std::uint32_t length = 0;
  };

  const RouteRef& route_ref(TileCoord src, TileCoord dst) const {
    return routes_[static_cast<std::size_t>(topology_.tile_index(src)) *
                       static_cast<std::size_t>(topology_.num_tiles()) +
                   static_cast<std::size_t>(topology_.tile_index(dst))];
  }

  sim::Engine* engine_;
  Topology topology_;
  sim::Duration l_hop_;
  sim::Duration link_occupancy_;
  std::vector<sim::Timeline> links_;
  // Per-link timing (l_hop / link_occupancy plus interposer extras on
  // die-boundary links), precomputed so the reservation loop is branch-free.
  std::vector<sim::Duration> link_latency_;
  std::vector<sim::Duration> link_occ_;
  std::vector<sim::Duration> link_busy_;
  std::vector<std::uint64_t> link_packets_;
  std::vector<LinkId> route_storage_;
  std::vector<RouteRef> routes_;
};

}  // namespace ocb::noc
