#include "noc/topology.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <sstream>

namespace ocb::noc {

namespace {

/// Default per-die controller placement: the four "corners" the SCC uses —
/// west/east edges at row 0 and row tiles_y/2 — deduplicated for degenerate
/// dies (1 column collapses east onto west, 1 row collapses the second pair
/// onto the first).
std::vector<TileCoord> default_mc_tiles(int tiles_x, int tiles_y) {
  const int east = tiles_x - 1;
  const int mid = tiles_y / 2;
  std::vector<TileCoord> out;
  for (const TileCoord t : {TileCoord{0, 0}, TileCoord{east, 0},
                            TileCoord{0, mid}, TileCoord{east, mid}}) {
    if (std::find(out.begin(), out.end(), t) == out.end()) out.push_back(t);
  }
  return out;
}

}  // namespace

Topology::Topology(const Spec& spec) : spec_(spec) {
  OCB_REQUIRE(spec.cores_per_tile >= 1, "need at least one core per tile");
  OCB_REQUIRE(spec.tiles_x >= 1 && spec.tiles_y >= 1,
              "die mesh must be at least 1x1 tiles");
  OCB_REQUIRE(spec.dies_x >= 1 && spec.dies_y >= 1,
              "die grid must be at least 1x1");
  mesh_cols_ = spec.dies_x * spec.tiles_x;
  mesh_rows_ = spec.dies_y * spec.tiles_y;
  num_tiles_ = mesh_cols_ * mesh_rows_;
  num_cores_ = num_tiles_ * spec.cores_per_tile;

  mc_die_tiles_ =
      spec.mc_tiles_per_die.empty()
          ? default_mc_tiles(spec.tiles_x, spec.tiles_y)
          : spec.mc_tiles_per_die;
  spec_.mc_tiles_per_die = mc_die_tiles_;
  for (const TileCoord& t : mc_die_tiles_) {
    OCB_REQUIRE(t.x >= 0 && t.x < spec.tiles_x && t.y >= 0 && t.y < spec.tiles_y,
                "memory controller tile outside its die");
  }
  OCB_REQUIRE(!mc_die_tiles_.empty(), "need at least one memory controller");

  // Global controller list, die-major (die 0's controllers first).
  for (int dy = 0; dy < spec.dies_y; ++dy) {
    for (int dx = 0; dx < spec.dies_x; ++dx) {
      for (const TileCoord& local : mc_die_tiles_) {
        mc_tiles_.push_back(TileCoord{dx * spec.tiles_x + local.x,
                                      dy * spec.tiles_y + local.y});
      }
    }
  }

  // Per-core tables: tile, nearest same-die controller (ties to the lowest
  // global index — on the SCC floorplan this IS the quadrant assignment),
  // and router distance to it.
  const int mc_per_die = static_cast<int>(mc_die_tiles_.size());
  core_tiles_.reserve(static_cast<std::size_t>(num_cores_));
  core_mc_.reserve(static_cast<std::size_t>(num_cores_));
  core_mem_distance_.reserve(static_cast<std::size_t>(num_cores_));
  for (CoreId c = 0; c < num_cores_; ++c) {
    const int tile = c / spec.cores_per_tile;
    const TileCoord t{tile % mesh_cols_, tile / mesh_cols_};
    core_tiles_.push_back(t);
    const int die = die_of_tile(t);
    int best = -1;
    int best_d = 0;
    for (int m = 0; m < mc_per_die; ++m) {
      const int mc_index = die * mc_per_die + m;
      const int d = manhattan(t, mc_tiles_[static_cast<std::size_t>(mc_index)]);
      if (best < 0 || d < best_d) {
        best = mc_index;
        best_d = d;
      }
    }
    core_mc_.push_back(best);
    core_mem_distance_.push_back(best_d + 1);
  }
}

const Topology& Topology::scc() {
  static const Topology t{Spec{}};
  return t;
}

Topology Topology::mesh(int tiles_x, int tiles_y, int cores_per_tile) {
  Spec s;
  s.cores_per_tile = cores_per_tile;
  s.tiles_x = tiles_x;
  s.tiles_y = tiles_y;
  return Topology(s);
}

Topology Topology::multi_die(int dies_x, int dies_y, int tiles_x, int tiles_y,
                             int cores_per_tile,
                             sim::Duration interposer_extra_latency,
                             sim::Duration interposer_extra_occupancy) {
  Spec s;
  s.cores_per_tile = cores_per_tile;
  s.tiles_x = tiles_x;
  s.tiles_y = tiles_y;
  s.dies_x = dies_x;
  s.dies_y = dies_y;
  s.interposer_extra_latency = interposer_extra_latency;
  s.interposer_extra_occupancy = interposer_extra_occupancy;
  return Topology(s);
}

std::vector<CoreId> Topology::cores_of_die(int die) const {
  OCB_REQUIRE(die >= 0 && die < num_dies(), "die index out of range");
  const int dx = die % spec_.dies_x;
  const int dy = die / spec_.dies_x;
  std::vector<CoreId> out;
  out.reserve(static_cast<std::size_t>(spec_.tiles_x * spec_.tiles_y *
                                       spec_.cores_per_tile));
  for (int y = dy * spec_.tiles_y; y < (dy + 1) * spec_.tiles_y; ++y) {
    for (int x = dx * spec_.tiles_x; x < (dx + 1) * spec_.tiles_x; ++x) {
      const CoreId first = first_core_of_tile(y * mesh_cols_ + x);
      for (int i = 0; i < spec_.cores_per_tile; ++i) out.push_back(first + i);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

CoreId Topology::die_leader(int die) const {
  OCB_REQUIRE(die >= 0 && die < num_dies(), "die index out of range");
  const int dx = die % spec_.dies_x;
  const int dy = die / spec_.dies_x;
  // Row-major tile indexing makes the die's top-left tile its lowest tile
  // index, hence its first core the die's lowest core id.
  return first_core_of_tile((dy * spec_.tiles_y) * mesh_cols_ +
                            dx * spec_.tiles_x);
}

std::string Topology::describe() const {
  const bool default_mc =
      mc_die_tiles_ == default_mc_tiles(spec_.tiles_x, spec_.tiles_y);
  std::ostringstream os;
  if (*this == scc()) return "scc";
  if (num_dies() > 1) os << "dies:" << spec_.dies_x << "x" << spec_.dies_y << ":";
  os << "mesh:" << spec_.tiles_x << "x" << spec_.tiles_y;
  if (spec_.cores_per_tile != 2) os << ":cpt:" << spec_.cores_per_tile;
  if (!default_mc) os << "+mc";
  if (num_dies() > 1 &&
      (spec_.interposer_extra_latency != 20 * sim::kNanosecond ||
       spec_.interposer_extra_occupancy != 5 * sim::kNanosecond)) {
    os << "+ixp";
  }
  return os.str();
}

std::string Topology::to_json() const {
  std::ostringstream os;
  os << "{\"schema\":\"ocb-topology-v1\",";
  os << "\"cores_per_tile\":" << spec_.cores_per_tile << ",";
  os << "\"tiles_x\":" << spec_.tiles_x << ",\"tiles_y\":" << spec_.tiles_y
     << ",";
  os << "\"dies_x\":" << spec_.dies_x << ",\"dies_y\":" << spec_.dies_y << ",";
  os << "\"interposer_extra_latency_ps\":" << spec_.interposer_extra_latency
     << ",";
  os << "\"interposer_extra_occupancy_ps\":"
     << spec_.interposer_extra_occupancy << ",";
  os << "\"mc_tiles\":[";
  for (std::size_t i = 0; i < mc_die_tiles_.size(); ++i) {
    if (i > 0) os << ",";
    os << "[" << mc_die_tiles_[i].x << "," << mc_die_tiles_[i].y << "]";
  }
  os << "]}";
  return os.str();
}

namespace {

// Minimal scanners for our own to_json output (same approach as
// coll::DecisionTable: the grammar is fixed and flat, so a find-the-key
// scan is exact).

const char* find_field(const std::string& json, const char* key) {
  const std::string prefix = std::string("\"") + key + "\":";
  const std::size_t at = json.find(prefix);
  OCB_REQUIRE(at != std::string::npos,
              "topology JSON missing field '" + std::string(key) + "'");
  const char* s = json.c_str() + at + prefix.size();
  while (*s == ' ') ++s;
  return s;
}

std::int64_t get_i64(const std::string& json, const char* key) {
  const char* s = find_field(json, key);
  char* end = nullptr;
  errno = 0;
  const std::int64_t v = std::strtoll(s, &end, 10);
  OCB_REQUIRE(end != s && errno != ERANGE,
              "topology JSON field '" + std::string(key) +
                  "' is not an integer");
  return v;
}

std::vector<TileCoord> get_tile_list(const std::string& json, const char* key) {
  const char* s = find_field(json, key);
  OCB_REQUIRE(*s == '[', "topology JSON field '" + std::string(key) +
                             "' is not an array");
  ++s;
  std::vector<TileCoord> out;
  while (*s != '\0' && *s != ']') {
    if (*s == ',' || *s == ' ') {
      ++s;
      continue;
    }
    OCB_REQUIRE(*s == '[', "topology JSON mc tile is not an [x,y] pair");
    ++s;
    char* end = nullptr;
    const long x = std::strtol(s, &end, 10);
    OCB_REQUIRE(end != s && *end == ',', "topology JSON mc tile x malformed");
    s = end + 1;
    const long y = std::strtol(s, &end, 10);
    OCB_REQUIRE(end != s && *end == ']', "topology JSON mc tile y malformed");
    s = end + 1;
    out.push_back(TileCoord{static_cast<int>(x), static_cast<int>(y)});
  }
  OCB_REQUIRE(*s == ']', "topology JSON mc tile array unterminated");
  return out;
}

}  // namespace

Topology Topology::from_json(const std::string& json) {
  OCB_REQUIRE(json.find("\"ocb-topology-v1\"") != std::string::npos,
              "not an ocb-topology-v1 record");
  Spec s;
  s.cores_per_tile = static_cast<int>(get_i64(json, "cores_per_tile"));
  s.tiles_x = static_cast<int>(get_i64(json, "tiles_x"));
  s.tiles_y = static_cast<int>(get_i64(json, "tiles_y"));
  s.dies_x = static_cast<int>(get_i64(json, "dies_x"));
  s.dies_y = static_cast<int>(get_i64(json, "dies_y"));
  s.interposer_extra_latency = get_i64(json, "interposer_extra_latency_ps");
  s.interposer_extra_occupancy = get_i64(json, "interposer_extra_occupancy_ps");
  s.mc_tiles_per_die = get_tile_list(json, "mc_tiles");
  return Topology(s);
}

Topology Topology::parse(const std::string& spec) {
  auto parse_pair = [&](const std::string& s, char sep, const char* what) {
    const std::size_t at = s.find(sep);
    OCB_REQUIRE(at != std::string::npos && at > 0 && at + 1 < s.size(),
                std::string("topology spec: expected <a>") + sep + "<b> for " +
                    what + " in '" + spec + "'");
    char* end = nullptr;
    const long a = std::strtol(s.c_str(), &end, 10);
    OCB_REQUIRE(end == s.c_str() + at, std::string("topology spec: bad ") +
                                           what + " in '" + spec + "'");
    const long b = std::strtol(s.c_str() + at + 1, &end, 10);
    OCB_REQUIRE(*end == '\0' && end == s.c_str() + s.size(),
                std::string("topology spec: bad ") + what + " in '" + spec +
                    "'");
    return std::pair<int, int>{static_cast<int>(a), static_cast<int>(b)};
  };
  if (spec == "scc") return scc();
  if (spec.rfind("mesh:", 0) == 0) {
    const auto [cols, rows] = parse_pair(spec.substr(5), 'x', "mesh size");
    return mesh(cols, rows);
  }
  if (spec.rfind("dies:", 0) == 0) {
    const std::size_t mesh_at = spec.find(":mesh:");
    OCB_REQUIRE(mesh_at != std::string::npos,
                "topology spec: dies:<dx>x<dy>:mesh:<cols>x<rows> expected, "
                "got '" + spec + "'");
    const auto [dx, dy] =
        parse_pair(spec.substr(5, mesh_at - 5), 'x', "die grid");
    const auto [cols, rows] =
        parse_pair(spec.substr(mesh_at + 6), 'x', "mesh size");
    return multi_die(dx, dy, cols, rows);
  }
  OCB_REQUIRE(false, "unknown topology spec '" + spec +
                         "' (want scc | mesh:<c>x<r> | "
                         "dies:<dx>x<dy>:mesh:<c>x<r>)");
  return scc();
}

}  // namespace ocb::noc
