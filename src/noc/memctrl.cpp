#include "noc/memctrl.h"

namespace ocb::noc {

int mc_index_for_core(CoreId core) {
  const TileCoord t = tile_of_core(core);
  const bool east = t.x >= kMeshCols / 2;
  const bool south = t.y >= kMeshRows / 2;
  return (south ? 2 : 0) + (east ? 1 : 0);
}

TileCoord mc_tile_for_core(CoreId core) {
  return kMcTiles[static_cast<std::size_t>(mc_index_for_core(core))];
}

int mem_distance(CoreId core) {
  return routers_traversed(tile_of_core(core), mc_tile_for_core(core));
}

}  // namespace ocb::noc
