// Controller placement/assignment moved into noc::Topology (topology.cpp);
// the shims in memctrl.h are header-inline. This TU intentionally left
// (nearly) empty.
#include "noc/memctrl.h"

namespace ocb::noc {

// The topology's SCC controller list must match the historical constant.
static_assert(kNumMemoryControllers == 4);

}  // namespace ocb::noc
