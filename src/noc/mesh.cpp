#include "noc/mesh.h"

namespace ocb::noc {

Mesh::Mesh(sim::Engine& engine, sim::Duration l_hop, sim::Duration link_occupancy)
    : engine_(&engine), l_hop_(l_hop), link_occupancy_(link_occupancy) {
  OCB_REQUIRE(l_hop > 0, "L_hop must be positive");
  OCB_REQUIRE(link_occupancy <= l_hop,
              "link occupancy above L_hop breaks the cut-through pipeline model");
  for (int s = 0; s < kNumTiles; ++s) {
    for (int d = 0; d < kNumTiles; ++d) {
      const auto links = xy_route_links(tile_coord(s), tile_coord(d));
      routes_[s][d] = RouteRef{static_cast<std::uint32_t>(route_storage_.size()),
                               static_cast<std::uint32_t>(links.size())};
      route_storage_.insert(route_storage_.end(), links.begin(), links.end());
    }
  }
}

sim::Time Mesh::reserve_path(sim::Time departure, TileCoord src, TileCoord dst) {
  const RouteRef ref = routes_[tile_index(src)][tile_index(dst)];
  // The packet spends L_hop in the source router, then one L_hop per link
  // crossed (each subsequent router), holding every link for its
  // serialization time starting when the head flit enters it.
  sim::Time cursor = departure;
  for (std::uint32_t i = 0; i < ref.length; ++i) {
    const LinkId link = route_storage_[ref.begin + i];
    const sim::Time done = links_[link].reserve(cursor, link_occupancy_);
    const sim::Time start = done - link_occupancy_;
    link_busy_[link] += link_occupancy_;
    ++link_packets_[link];
    cursor = start + l_hop_;
  }
  // Final (destination) router traversal; for src == dst this is the single
  // local-router hop (d = 1).
  return cursor + l_hop_;
}

sim::Duration Mesh::link_total_occupancy(LinkId link) const {
  OCB_REQUIRE(link >= 0 && link < kNumLinkSlots, "link id out of range");
  return link_busy_[static_cast<std::size_t>(link)];
}

std::uint64_t Mesh::link_packets(LinkId link) const {
  OCB_REQUIRE(link >= 0 && link < kNumLinkSlots, "link id out of range");
  return link_packets_[static_cast<std::size_t>(link)];
}

}  // namespace ocb::noc
