#include "noc/mesh.h"

namespace ocb::noc {

namespace {

TileCoord neighbour(TileCoord t, Direction dir) {
  switch (dir) {
    case Direction::kEast:
      return TileCoord{t.x + 1, t.y};
    case Direction::kWest:
      return TileCoord{t.x - 1, t.y};
    case Direction::kSouth:
      return TileCoord{t.x, t.y + 1};
    case Direction::kNorth:
      return TileCoord{t.x, t.y - 1};
  }
  return t;  // unreachable
}

}  // namespace

Mesh::Mesh(sim::Engine& engine, const Topology& topology, sim::Duration l_hop,
           sim::Duration link_occupancy)
    : engine_(&engine),
      topology_(topology),
      l_hop_(l_hop),
      link_occupancy_(link_occupancy) {
  OCB_REQUIRE(l_hop > 0, "L_hop must be positive");
  OCB_REQUIRE(link_occupancy <= l_hop,
              "link occupancy above L_hop breaks the cut-through pipeline model");
  if (topology_.num_dies() > 1) {
    OCB_REQUIRE(link_occupancy + topology_.interposer_extra_occupancy() <=
                    l_hop + topology_.interposer_extra_latency(),
                "interposer occupancy above interposer hop latency breaks the "
                "cut-through pipeline model");
  }
  const int tiles = topology_.num_tiles();
  const std::size_t slots = static_cast<std::size_t>(topology_.num_link_slots());
  links_.resize(slots);
  link_latency_.assign(slots, l_hop_);
  link_occ_.assign(slots, link_occupancy_);
  link_busy_.assign(slots, 0);
  link_packets_.assign(slots, 0);
  for (int t = 0; t < tiles; ++t) {
    const TileCoord from = topology_.tile_coord(t);
    for (int d = 0; d < 4; ++d) {
      const TileCoord to = neighbour(from, static_cast<Direction>(d));
      if (to.x < 0 || to.x >= topology_.mesh_cols() || to.y < 0 ||
          to.y >= topology_.mesh_rows()) {
        continue;  // edge of the mesh; slot never used
      }
      if (topology_.link_crosses_die(from, to)) {
        const std::size_t slot = static_cast<std::size_t>(t * 4 + d);
        link_latency_[slot] += topology_.interposer_extra_latency();
        link_occ_[slot] += topology_.interposer_extra_occupancy();
      }
    }
  }
  routes_.resize(static_cast<std::size_t>(tiles) * static_cast<std::size_t>(tiles));
  for (int s = 0; s < tiles; ++s) {
    for (int d = 0; d < tiles; ++d) {
      const auto links = xy_route_links(topology_, topology_.tile_coord(s),
                                        topology_.tile_coord(d));
      routes_[static_cast<std::size_t>(s) * static_cast<std::size_t>(tiles) +
              static_cast<std::size_t>(d)] =
          RouteRef{static_cast<std::uint32_t>(route_storage_.size()),
                   static_cast<std::uint32_t>(links.size())};
      route_storage_.insert(route_storage_.end(), links.begin(), links.end());
    }
  }
}

sim::Time Mesh::reserve_path(sim::Time departure, TileCoord src, TileCoord dst) {
  const RouteRef ref = route_ref(src, dst);
  // The packet spends L_hop in the source router, then one hop latency per
  // link crossed (each subsequent router; interposer links are slower),
  // holding every link for its serialization time starting when the head
  // flit enters it.
  sim::Time cursor = departure;
  for (std::uint32_t i = 0; i < ref.length; ++i) {
    const LinkId link = route_storage_[ref.begin + i];
    const sim::Duration occ = link_occ_[static_cast<std::size_t>(link)];
    const sim::Time done = links_[static_cast<std::size_t>(link)].reserve(cursor, occ);
    const sim::Time start = done - occ;
    link_busy_[static_cast<std::size_t>(link)] += occ;
    ++link_packets_[static_cast<std::size_t>(link)];
    cursor = start + link_latency_[static_cast<std::size_t>(link)];
  }
  // Final (destination) router traversal; for src == dst this is the single
  // local-router hop (d = 1).
  return cursor + l_hop_;
}

sim::Duration Mesh::link_total_occupancy(LinkId link) const {
  OCB_REQUIRE(link >= 0 && link < topology_.num_link_slots(),
              "link id out of range");
  return link_busy_[static_cast<std::size_t>(link)];
}

std::uint64_t Mesh::link_packets(LinkId link) const {
  OCB_REQUIRE(link >= 0 && link < topology_.num_link_slots(),
              "link id out of range");
  return link_packets_[static_cast<std::size_t>(link)];
}

}  // namespace ocb::noc
