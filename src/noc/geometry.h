// SCC floorplan geometry — forwarding shims over noc::Topology.
//
// The geometry layer is now a first-class object (noc/topology.h): an
// immutable `Topology` value describes the mesh, dies, and memory
// controllers, and `Topology::scc()` is the paper's 6×4 chip. These free
// functions survive as thin shims over `Topology::scc()` so existing code
// and the paper-figure harnesses keep reading naturally; NEW code that can
// see a chip should ask `chip.topology()` instead, and code that means
// "the SCC specifically" should say `Topology::scc()`.
//
// Distance convention (paper §3.1): the model parameter d counts the number
// of ROUTERS a packet traverses, so d = Manhattan distance + 1; accessing
// the local MPB still goes through the local router (d = 1), matching the
// paper's 1..9-hop range on this mesh.
#pragma once

#include <cstdint>

#include "common/require.h"
#include "common/types.h"
#include "noc/topology.h"

namespace ocb::noc {

/// Validates a core id against the SCC's 48 cores.
inline void require_core(CoreId c) { Topology::scc().require_core(c); }

// These helpers sit on the per-event hot path of the simulator (every mesh
// reservation computes tile indices), hence header-inline.

/// Linear tile index in row-major order, 0..23 (SCC mesh).
inline int tile_index(TileCoord t) { return Topology::scc().tile_index(t); }

/// Inverse of tile_index (SCC mesh).
inline TileCoord tile_coord(int index) {
  return Topology::scc().tile_coord(index);
}

/// Tile hosting a core (SCC mesh).
inline TileCoord tile_of_core(CoreId core) {
  return Topology::scc().tile_of_core(core);
}

/// Linear tile index hosting a core (SCC mesh).
inline int tile_index_of_core(CoreId core) {
  return Topology::scc().tile_index_of_core(core);
}

/// The two cores of a tile: {2*index, 2*index + 1} (SCC mesh).
inline CoreId first_core_of_tile(int tile_index) {
  return Topology::scc().first_core_of_tile(tile_index);
}

/// Manhattan distance between two tiles.
inline int manhattan(TileCoord a, TileCoord b) {
  return Topology::manhattan(a, b);
}

/// Routers traversed by a packet from `a` to `b` (the model's d): one router
/// per tile on the X-Y path, including source and destination routers; equals
/// manhattan(a, b) + 1 (so 1 for a == b).
inline int routers_traversed(TileCoord a, TileCoord b) {
  return Topology::routers_traversed(a, b);
}

}  // namespace ocb::noc
