// SCC floorplan geometry: tiles, cores, router coordinates.
//
// The chip is a 6x4 mesh of tiles; tile (x, y) sits at column x (0..5) and
// row y (0..3) and hosts cores 2*(y*6+x) and 2*(y*6+x)+1, each with half of
// the tile's 16 KB Message Passing Buffer. Every tile has one router.
//
// Distance convention (paper §3.1): the model parameter d counts the number
// of ROUTERS a packet traverses, so d = Manhattan distance + 1; accessing
// the local MPB still goes through the local router (d = 1), matching the
// paper's 1..9-hop range on this mesh.
#pragma once

#include <cstdint>

#include "common/require.h"
#include "common/types.h"

namespace ocb::noc {

/// Coordinates of a tile (= its router) on the mesh.
struct TileCoord {
  int x = 0;  ///< column, 0..kMeshCols-1
  int y = 0;  ///< row, 0..kMeshRows-1

  friend bool operator==(const TileCoord&, const TileCoord&) = default;
};

/// Linear tile index in row-major order, 0..23.
int tile_index(TileCoord t);

/// Inverse of tile_index.
TileCoord tile_coord(int index);

/// Tile hosting a core.
TileCoord tile_of_core(CoreId core);

/// Linear tile index hosting a core.
int tile_index_of_core(CoreId core);

/// The two cores of a tile: {2*index, 2*index + 1}.
CoreId first_core_of_tile(int tile_index);

/// Manhattan distance between two tiles.
int manhattan(TileCoord a, TileCoord b);

/// Routers traversed by a packet from `a` to `b` (the model's d): one router
/// per tile on the X-Y path, including source and destination routers; equals
/// manhattan(a, b) + 1 (so 1 for a == b).
int routers_traversed(TileCoord a, TileCoord b);

/// Validates a core id.
inline void require_core(CoreId c) {
  OCB_REQUIRE(c >= 0 && c < kNumCores, "core id out of range");
}

}  // namespace ocb::noc
