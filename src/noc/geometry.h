// SCC floorplan geometry: tiles, cores, router coordinates.
//
// The chip is a 6x4 mesh of tiles; tile (x, y) sits at column x (0..5) and
// row y (0..3) and hosts cores 2*(y*6+x) and 2*(y*6+x)+1, each with half of
// the tile's 16 KB Message Passing Buffer. Every tile has one router.
//
// Distance convention (paper §3.1): the model parameter d counts the number
// of ROUTERS a packet traverses, so d = Manhattan distance + 1; accessing
// the local MPB still goes through the local router (d = 1), matching the
// paper's 1..9-hop range on this mesh.
#pragma once

#include <cstdint>

#include "common/require.h"
#include "common/types.h"

namespace ocb::noc {

/// Coordinates of a tile (= its router) on the mesh.
struct TileCoord {
  int x = 0;  ///< column, 0..kMeshCols-1
  int y = 0;  ///< row, 0..kMeshRows-1

  friend bool operator==(const TileCoord&, const TileCoord&) = default;
};

/// Validates a core id.
inline void require_core(CoreId c) {
  OCB_REQUIRE(c >= 0 && c < kNumCores, "core id out of range");
}

// These helpers sit on the per-event hot path of the simulator (every mesh
// reservation computes tile indices), hence header-inline.

/// Linear tile index in row-major order, 0..23.
inline int tile_index(TileCoord t) {
  OCB_REQUIRE(t.x >= 0 && t.x < kMeshCols && t.y >= 0 && t.y < kMeshRows,
              "tile coordinate out of range");
  return t.y * kMeshCols + t.x;
}

/// Inverse of tile_index.
inline TileCoord tile_coord(int index) {
  OCB_REQUIRE(index >= 0 && index < kNumTiles, "tile index out of range");
  return TileCoord{index % kMeshCols, index / kMeshCols};
}

/// Tile hosting a core.
inline TileCoord tile_of_core(CoreId core) {
  require_core(core);
  return tile_coord(core / 2);
}

/// Linear tile index hosting a core.
inline int tile_index_of_core(CoreId core) {
  require_core(core);
  return core / 2;
}

/// The two cores of a tile: {2*index, 2*index + 1}.
inline CoreId first_core_of_tile(int tile_index) {
  OCB_REQUIRE(tile_index >= 0 && tile_index < kNumTiles, "tile index out of range");
  return tile_index * 2;
}

/// Manhattan distance between two tiles.
inline int manhattan(TileCoord a, TileCoord b) {
  const int dx = a.x - b.x;
  const int dy = a.y - b.y;
  return (dx < 0 ? -dx : dx) + (dy < 0 ? -dy : dy);
}

/// Routers traversed by a packet from `a` to `b` (the model's d): one router
/// per tile on the X-Y path, including source and destination routers; equals
/// manhattan(a, b) + 1 (so 1 for a == b).
inline int routers_traversed(TileCoord a, TileCoord b) {
  return manhattan(a, b) + 1;
}

}  // namespace ocb::noc
