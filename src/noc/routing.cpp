#include "noc/routing.h"

namespace ocb::noc {

namespace {

Direction step_direction(TileCoord from, TileCoord to) {
  if (to.x > from.x) return Direction::kEast;
  if (to.x < from.x) return Direction::kWest;
  if (to.y > from.y) return Direction::kSouth;  // rows grow downward in Fig. 1
  OCB_ENSURE(to.y < from.y, "no step between identical tiles");
  return Direction::kNorth;
}

}  // namespace

LinkId link_id(const Topology& topo, TileCoord from, Direction dir) {
  const int fx = from.x;
  const int fy = from.y;
  switch (dir) {
    case Direction::kEast:
      OCB_REQUIRE(fx + 1 < topo.mesh_cols(), "east link off the mesh");
      break;
    case Direction::kWest:
      OCB_REQUIRE(fx - 1 >= 0, "west link off the mesh");
      break;
    case Direction::kSouth:
      OCB_REQUIRE(fy + 1 < topo.mesh_rows(), "south link off the mesh");
      break;
    case Direction::kNorth:
      OCB_REQUIRE(fy - 1 >= 0, "north link off the mesh");
      break;
  }
  return topo.tile_index(from) * 4 + static_cast<int>(dir);
}

std::vector<TileCoord> xy_route(const Topology& topo, TileCoord src,
                                TileCoord dst) {
  topo.tile_index(src);  // bounds checks
  topo.tile_index(dst);
  std::vector<TileCoord> route;
  route.reserve(static_cast<std::size_t>(Topology::manhattan(src, dst)) + 1);
  TileCoord cur = src;
  route.push_back(cur);
  while (cur.x != dst.x) {
    cur.x += dst.x > cur.x ? 1 : -1;
    route.push_back(cur);
  }
  while (cur.y != dst.y) {
    cur.y += dst.y > cur.y ? 1 : -1;
    route.push_back(cur);
  }
  return route;
}

std::vector<LinkId> xy_route_links(const Topology& topo, TileCoord src,
                                   TileCoord dst) {
  const std::vector<TileCoord> route = xy_route(topo, src, dst);
  std::vector<LinkId> links;
  links.reserve(route.size() - 1);
  for (std::size_t i = 0; i + 1 < route.size(); ++i) {
    links.push_back(
        link_id(topo, route[i], step_direction(route[i], route[i + 1])));
  }
  return links;
}

bool route_uses_link(const Topology& topo, TileCoord src, TileCoord dst,
                     TileCoord from, TileCoord towards) {
  OCB_REQUIRE(Topology::manhattan(from, towards) == 1,
              "link endpoints must be adjacent");
  const LinkId wanted = link_id(topo, from, step_direction(from, towards));
  for (LinkId l : xy_route_links(topo, src, dst)) {
    if (l == wanted) return true;
  }
  return false;
}

}  // namespace ocb::noc
