// Conservative-PDES lookahead derivation.
//
// The safety-window width for a parallel chip run is the minimum simulated
// latency of any cross-partition edge. Partitions are contiguous tile
// groups, so every cross-lane interaction is one of the SCC's remote
// transactions, and each of those pays (a) a core-side entry overhead
// before its packet departs and (b) at least one router traversal —
// Geometry::routers_traversed() is >= 1 even for a tile talking to itself
// (the packet still crosses its own router). Hence:
//
//   lookahead = min(entry overheads over all remote transaction kinds)
//             + 1 * l_hop
//
// With the paper's Table 1 numbers that is o_ipi_send (80 ns) + l_hop
// (5 ns) = 85 ns: an interrupt is the cheapest way one partition can touch
// another. MPB reads/writes (o_mpb_core = 116 ns) and DDR accesses
// (o_mem_core_* >= 198 ns) clear the bound with room to spare. The engine
// asserts the contract at runtime: any cross-lane event scheduled inside
// the current window aborts the run (see Engine::schedule_on_lane).
#pragma once

#include <algorithm>

#include "sim/time.h"

namespace ocb::noc {

/// Width of a conservative safety window given the minimum core-side entry
/// overhead of any cross-partition transaction and the per-router hop
/// latency. `min_routers` is the smallest router count any packet can
/// traverse (1 on the SCC mesh — see Geometry::routers_traversed).
inline sim::Duration conservative_lookahead(sim::Duration min_entry_overhead,
                                            sim::Duration l_hop,
                                            int min_routers = 1) {
  return min_entry_overhead + std::max(min_routers, 1) * l_hop;
}

}  // namespace ocb::noc
