// Deterministic X-Y routing (the SCC NoC's dimension-ordered scheme).
//
// A route is the ordered list of routers a packet visits: first along the X
// dimension to the destination column, then along Y to the destination row.
// Links are the directed edges between adjacent routers; they are the unit
// at which the mesh model accounts occupancy.
//
// Routing is dimension-ordered on the GLOBAL mesh, so it is identical for
// single- and multi-die topologies — a link that happens to cross a die
// boundary is still just a directed edge; only its timing differs (the mesh
// model adds the topology's interposer extras for such links).
#pragma once

#include <vector>

#include "noc/geometry.h"
#include "noc/topology.h"

namespace ocb::noc {

/// Direction of a mesh link leaving a router.
enum class Direction : std::uint8_t { kEast = 0, kWest = 1, kNorth = 2, kSouth = 3 };

/// Identifier of a directed link: source router index * 4 + direction.
using LinkId = int;

/// Link-slot count of the SCC mesh; for other topologies use
/// `topology.num_link_slots()`.
inline constexpr int kNumLinkSlots = kNumTiles * 4;

/// Directed link from `from` towards `dir` on `topo`'s mesh. The
/// neighbouring router must exist (checked).
LinkId link_id(const Topology& topo, TileCoord from, Direction dir);

/// Router sequence of the X-Y route from `src` to `dst` (inclusive of both;
/// a single-element route when src == dst). Route shape is
/// topology-independent; bounds are checked against `topo`.
std::vector<TileCoord> xy_route(const Topology& topo, TileCoord src,
                                TileCoord dst);

/// Directed links of the X-Y route, in traversal order (empty when
/// src == dst).
std::vector<LinkId> xy_route_links(const Topology& topo, TileCoord src,
                                   TileCoord dst);

/// True if the route from src to dst traverses the directed link
/// from->towards (adjacent tiles). Used by the §3.3 mesh-stress experiment
/// to pick flows through a chosen link.
bool route_uses_link(const Topology& topo, TileCoord src, TileCoord dst,
                     TileCoord from, TileCoord towards);

// --- SCC shims (see geometry.h header comment) -----------------------------

inline LinkId link_id(TileCoord from, Direction dir) {
  return link_id(Topology::scc(), from, dir);
}
inline std::vector<TileCoord> xy_route(TileCoord src, TileCoord dst) {
  return xy_route(Topology::scc(), src, dst);
}
inline std::vector<LinkId> xy_route_links(TileCoord src, TileCoord dst) {
  return xy_route_links(Topology::scc(), src, dst);
}
inline bool route_uses_link(TileCoord src, TileCoord dst, TileCoord from,
                            TileCoord towards) {
  return route_uses_link(Topology::scc(), src, dst, from, towards);
}

}  // namespace ocb::noc
