#include "noc/geometry.h"

#include <cstdlib>

namespace ocb::noc {

int tile_index(TileCoord t) {
  OCB_REQUIRE(t.x >= 0 && t.x < kMeshCols && t.y >= 0 && t.y < kMeshRows,
              "tile coordinate out of range");
  return t.y * kMeshCols + t.x;
}

TileCoord tile_coord(int index) {
  OCB_REQUIRE(index >= 0 && index < kNumTiles, "tile index out of range");
  return TileCoord{index % kMeshCols, index / kMeshCols};
}

TileCoord tile_of_core(CoreId core) {
  require_core(core);
  return tile_coord(core / 2);
}

int tile_index_of_core(CoreId core) {
  require_core(core);
  return core / 2;
}

CoreId first_core_of_tile(int index) {
  OCB_REQUIRE(index >= 0 && index < kNumTiles, "tile index out of range");
  return index * 2;
}

int manhattan(TileCoord a, TileCoord b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

int routers_traversed(TileCoord a, TileCoord b) { return manhattan(a, b) + 1; }

}  // namespace ocb::noc
