// Geometry helpers are header-inline (noc/geometry.h): they sit on the
// simulator's per-event hot path. This TU intentionally left empty.
#include "noc/geometry.h"
