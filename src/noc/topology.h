// noc::Topology — first-class chip geometry.
//
// An immutable value describing the machine's floorplan: `cores_per_tile`
// cores on each tile, an N×M tile mesh per die, a grid of dies joined by
// interposer links (die-to-die hops pay an extra latency/serialization on
// top of the on-die L_hop), and per-die memory-controller placement. All
// coordinates are GLOBAL: a `dies_x × dies_y` chip of `tiles_x × tiles_y`
// dies is one `(dies_x·tiles_x) × (dies_y·tiles_y)` mesh whose links
// crossing a die boundary are interposer links — X-Y routing works
// unchanged, and a single-die topology has no interposer links at all.
//
// `Topology::scc()` reproduces the paper's SCC bit-identically: 24 tiles
// in 6×4, two cores per tile (cores 2t and 2t+1 on tile t), four DDR3
// controllers at routers (0,0), (5,0), (0,2), (5,2), each core served by
// the nearest controller (ties to the lowest controller index — exactly
// the classic quadrant assignment on this floorplan).
//
// Distance convention (paper §3.1) is unchanged: the model's d counts
// ROUTERS traversed, so d = Manhattan distance + 1, and accessing the
// local MPB still goes through the local router (d = 1).
//
// Hot-path accessors (tile_of_core, mc_index_for_core, mem_distance) are
// table lookups precomputed at construction, so a chip built from any
// topology pays the same per-event geometry cost as the old global
// constants did.
//
// Serialization: to_json()/from_json() round-trip the "ocb-topology-v1"
// record; parse() accepts the bench-flag spellings "scc", "mesh:16x16",
// and "dies:2x2:mesh:8x8".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/require.h"
#include "common/types.h"
#include "sim/time.h"

namespace ocb::noc {

/// Coordinates of a tile (= its router) on the global mesh.
struct TileCoord {
  int x = 0;  ///< column, 0..mesh_cols()-1
  int y = 0;  ///< row, 0..mesh_rows()-1

  friend bool operator==(const TileCoord&, const TileCoord&) = default;
};

class Topology {
 public:
  /// Construction-time description. `mc_tiles_per_die` are DIE-LOCAL
  /// coordinates, replicated into every die; empty selects the default
  /// corner placement {(0,0), (tx-1,0), (0,ty/2), (tx-1,ty/2)} (deduped),
  /// which reproduces the SCC's four controllers on a 6×4 die.
  struct Spec {
    int cores_per_tile = 2;
    int tiles_x = 6;  ///< tile columns per die
    int tiles_y = 4;  ///< tile rows per die
    int dies_x = 1;   ///< die grid columns
    int dies_y = 1;   ///< die grid rows
    /// Extra per-hop latency a packet pays when a link crosses a die
    /// boundary (added to the mesh's L_hop for that hop only).
    sim::Duration interposer_extra_latency = 0;
    /// Extra serialization (link occupancy) on die-boundary links.
    sim::Duration interposer_extra_occupancy = 0;
    std::vector<TileCoord> mc_tiles_per_die{};
  };

  /// The paper's SCC: 6×4 tiles, 2 cores/tile, one die, 4 corner MCs.
  static const Topology& scc();

  /// Single-die N×M mesh with default corner MC placement.
  static Topology mesh(int tiles_x, int tiles_y, int cores_per_tile = 2);

  /// Multi-die chip: a dies_x×dies_y grid of tiles_x×tiles_y dies with
  /// per-die corner MCs. Default interposer numbers model a die-to-die
  /// hop ~5× slower than an on-die hop (20 ns extra latency, 5 ns extra
  /// serialization on the SCC's 5 ns / 2.5 ns links) — in the spirit of
  /// chiplet interposers whose D2D links lag on-die wires.
  static Topology multi_die(int dies_x, int dies_y, int tiles_x, int tiles_y,
                            int cores_per_tile = 2,
                            sim::Duration interposer_extra_latency =
                                20 * sim::kNanosecond,
                            sim::Duration interposer_extra_occupancy =
                                5 * sim::kNanosecond);

  /// Bench-flag spellings: "scc" | "mesh:<cols>x<rows>" |
  /// "dies:<dx>x<dy>:mesh:<cols>x<rows>". Throws PreconditionError on
  /// anything else.
  static Topology parse(const std::string& spec);

  explicit Topology(const Spec& spec);

  // --- sizes --------------------------------------------------------------
  int cores_per_tile() const { return spec_.cores_per_tile; }
  int tiles_x_per_die() const { return spec_.tiles_x; }
  int tiles_y_per_die() const { return spec_.tiles_y; }
  int dies_x() const { return spec_.dies_x; }
  int dies_y() const { return spec_.dies_y; }
  int num_dies() const { return spec_.dies_x * spec_.dies_y; }
  int mesh_cols() const { return mesh_cols_; }
  int mesh_rows() const { return mesh_rows_; }
  int num_tiles() const { return num_tiles_; }
  int num_cores() const { return num_cores_; }

  // --- validation ---------------------------------------------------------
  void require_core(CoreId c) const {
    OCB_REQUIRE(c >= 0 && c < num_cores_, "core id out of range");
  }
  void require_tile(int tile_index) const {
    OCB_REQUIRE(tile_index >= 0 && tile_index < num_tiles_,
                "tile index out of range");
  }

  // --- tile/core geometry (row-major over the global mesh) ----------------
  int tile_index(TileCoord t) const {
    OCB_REQUIRE(t.x >= 0 && t.x < mesh_cols_ && t.y >= 0 && t.y < mesh_rows_,
                "tile coordinate out of range");
    return t.y * mesh_cols_ + t.x;
  }
  TileCoord tile_coord(int index) const {
    require_tile(index);
    return TileCoord{index % mesh_cols_, index / mesh_cols_};
  }
  TileCoord tile_of_core(CoreId core) const {
    require_core(core);
    return core_tiles_[static_cast<std::size_t>(core)];
  }
  int tile_index_of_core(CoreId core) const {
    require_core(core);
    return core / spec_.cores_per_tile;
  }
  CoreId first_core_of_tile(int tile_index) const {
    require_tile(tile_index);
    return tile_index * spec_.cores_per_tile;
  }

  /// Manhattan distance between two tiles (topology-independent).
  static int manhattan(TileCoord a, TileCoord b) {
    const int dx = a.x - b.x;
    const int dy = a.y - b.y;
    return (dx < 0 ? -dx : dx) + (dy < 0 ? -dy : dy);
  }

  /// Routers traversed by a packet from `a` to `b` (the model's d): one
  /// router per tile on the X-Y path including source and destination, so
  /// manhattan(a, b) + 1 (and 1 for a == b).
  static int routers_traversed(TileCoord a, TileCoord b) {
    return manhattan(a, b) + 1;
  }

  // --- dies ---------------------------------------------------------------
  int die_x_of(TileCoord t) const { return t.x / spec_.tiles_x; }
  int die_y_of(TileCoord t) const { return t.y / spec_.tiles_y; }
  int die_of_tile(TileCoord t) const {
    return die_y_of(t) * spec_.dies_x + die_x_of(t);
  }
  int die_of_core(CoreId core) const { return die_of_tile(tile_of_core(core)); }
  bool same_die(TileCoord a, TileCoord b) const {
    return die_x_of(a) == die_x_of(b) && die_y_of(a) == die_y_of(b);
  }
  /// Die boundaries an X-Y-routed packet from `a` to `b` crosses. X-Y
  /// routes are dimension-monotone, so this is exact, not a bound.
  int die_crossings(TileCoord a, TileCoord b) const {
    const int dx = die_x_of(a) - die_x_of(b);
    const int dy = die_y_of(a) - die_y_of(b);
    return (dx < 0 ? -dx : dx) + (dy < 0 ? -dy : dy);
  }
  /// True when the (adjacent-tile) link from->to is an interposer link.
  bool link_crosses_die(TileCoord from, TileCoord to) const {
    return !same_die(from, to);
  }
  /// Core ids of one die, ascending (they are NOT globally contiguous on
  /// multi-die chips: tile indices are row-major over the whole mesh).
  std::vector<CoreId> cores_of_die(int die) const;
  /// Lowest core id on a die (the hierarchical broadcast's die leader).
  CoreId die_leader(int die) const;

  sim::Duration interposer_extra_latency() const {
    return spec_.interposer_extra_latency;
  }
  sim::Duration interposer_extra_occupancy() const {
    return spec_.interposer_extra_occupancy;
  }

  // --- memory controllers -------------------------------------------------
  int num_memory_controllers() const {
    return static_cast<int>(mc_tiles_.size());
  }
  TileCoord mc_tile(int mc_index) const {
    OCB_REQUIRE(mc_index >= 0 &&
                    mc_index < static_cast<int>(mc_tiles_.size()),
                "memory controller index out of range");
    return mc_tiles_[static_cast<std::size_t>(mc_index)];
  }
  /// Controller serving a core's private memory: the nearest of ITS DIE's
  /// controllers, ties to the lowest index (per-die memory — a core never
  /// crosses an interposer to reach DRAM).
  int mc_index_for_core(CoreId core) const {
    require_core(core);
    return core_mc_[static_cast<std::size_t>(core)];
  }
  TileCoord mc_tile_for_core(CoreId core) const {
    return mc_tiles_[static_cast<std::size_t>(mc_index_for_core(core))];
  }
  /// Routers between a core's tile and its controller (d for off-chip).
  int mem_distance(CoreId core) const {
    require_core(core);
    return core_mem_distance_[static_cast<std::size_t>(core)];
  }

  // --- links (directed edges between adjacent routers) --------------------
  int num_link_slots() const { return num_tiles_ * 4; }

  // --- conservative-PDES partition ----------------------------------------
  /// Lane of a tile for an `num_lanes`-lane PDES partition: contiguous
  /// tile-index ranges, lane = tile·lanes/num_tiles. On the SCC (24 tiles,
  /// 8 lanes) this is tile/3 = core/6 — the historical partition,
  /// bit-identical. Monotone in tile index by construction, so every lane
  /// is a contiguous tile group whatever the mesh shape.
  unsigned pdes_lane_of_tile_index(int tile_index, unsigned num_lanes) const {
    return static_cast<unsigned>(
        (static_cast<std::uint64_t>(tile_index) * num_lanes) /
        static_cast<std::uint64_t>(num_tiles_));
  }

  // --- identity / serialization -------------------------------------------
  const Spec& spec() const { return spec_; }
  friend bool operator==(const Topology& a, const Topology& b) {
    return a.spec_.cores_per_tile == b.spec_.cores_per_tile &&
           a.spec_.tiles_x == b.spec_.tiles_x &&
           a.spec_.tiles_y == b.spec_.tiles_y &&
           a.spec_.dies_x == b.spec_.dies_x &&
           a.spec_.dies_y == b.spec_.dies_y &&
           a.spec_.interposer_extra_latency ==
               b.spec_.interposer_extra_latency &&
           a.spec_.interposer_extra_occupancy ==
               b.spec_.interposer_extra_occupancy &&
           a.mc_die_tiles_ == b.mc_die_tiles_;
  }

  /// Short human-readable identity: "scc", "mesh:16x16",
  /// "dies:2x2:mesh:8x8" (with a "+mc"/"+ixp" suffix when the MC layout
  /// or interposer numbers are non-default).
  std::string describe() const;

  /// Versioned record ("ocb-topology-v1"); from_json parses exactly what
  /// to_json emits (durations in picoseconds, mc tiles die-local).
  std::string to_json() const;
  static Topology from_json(const std::string& json);

 private:
  Spec spec_;
  int mesh_cols_ = 0;
  int mesh_rows_ = 0;
  int num_tiles_ = 0;
  int num_cores_ = 0;
  std::vector<TileCoord> mc_die_tiles_;  ///< die-local, as configured
  std::vector<TileCoord> mc_tiles_;      ///< global, die-major order
  // Precomputed per-core tables (hot-path geometry = one indexed load).
  std::vector<TileCoord> core_tiles_;
  std::vector<int> core_mc_;
  std::vector<int> core_mem_distance_;
};

}  // namespace ocb::noc
