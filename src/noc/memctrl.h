// Memory controller placement and core->controller assignment — SCC shims.
//
// The SCC has four DDR3 memory controllers attached at the mesh periphery,
// at routers (0,0), (5,0), (0,2), (5,2), each core served by the controller
// of its quadrant. The paper does not restate the layout but its Figure 3
// memory panels span exactly the 1..4-router distance range this yields.
//
// Placement and assignment now live in noc::Topology (nearest controller of
// the core's die, ties to the lowest index — which IS the quadrant scheme on
// the SCC floorplan); these free functions shim `Topology::scc()` for the
// paper-figure code. Chips built from other topologies ask
// `chip.topology().mc_index_for_core(...)` etc. instead.
#pragma once

#include <array>

#include "noc/geometry.h"
#include "noc/topology.h"

namespace ocb::noc {

inline constexpr int kNumMemoryControllers = 4;

/// Router locations of the SCC's four memory controllers.
inline constexpr std::array<TileCoord, kNumMemoryControllers> kMcTiles = {
    TileCoord{0, 0}, TileCoord{5, 0}, TileCoord{0, 2}, TileCoord{5, 2}};

/// Index (0..3) of the controller serving a core's private memory.
inline int mc_index_for_core(CoreId core) {
  return Topology::scc().mc_index_for_core(core);
}

/// Router where that controller is attached.
inline TileCoord mc_tile_for_core(CoreId core) {
  return Topology::scc().mc_tile_for_core(core);
}

/// Routers traversed between a core's tile and its memory controller
/// (the model's d for off-chip accesses; 1..4 on this floorplan).
inline int mem_distance(CoreId core) {
  return Topology::scc().mem_distance(core);
}

}  // namespace ocb::noc
