// Memory controller placement and core->controller assignment.
//
// The SCC has four DDR3 memory controllers attached at the mesh periphery;
// we place them at routers (0,0), (5,0), (0,2), (5,2) and assign each core
// the controller of its quadrant — the standard SCC arrangement. The paper
// does not restate the layout but its Figure 3 memory panels span exactly
// the 1..4-router distance range this yields.
#pragma once

#include <array>

#include "noc/geometry.h"

namespace ocb::noc {

inline constexpr int kNumMemoryControllers = 4;

/// Router locations of the four memory controllers.
inline constexpr std::array<TileCoord, kNumMemoryControllers> kMcTiles = {
    TileCoord{0, 0}, TileCoord{5, 0}, TileCoord{0, 2}, TileCoord{5, 2}};

/// Index (0..3) of the controller serving a core's private memory.
int mc_index_for_core(CoreId core);

/// Router where that controller is attached.
TileCoord mc_tile_for_core(CoreId core);

/// Routers traversed between a core's tile and its memory controller
/// (the model's d for off-chip accesses; 1..4 on this floorplan).
int mem_distance(CoreId core);

}  // namespace ocb::noc
