// Parameter sweeps that generate the paper's figure series.
#pragma once

#include <string>
#include <vector>

#include "harness/measurement.h"

namespace ocb::harness {

struct SeriesPoint {
  std::size_t lines = 0;  ///< message size in cache lines
  double latency_us = 0.0;
  double throughput_mbps = 0.0;
  bool content_ok = true;
};

struct Series {
  std::string label;
  std::vector<SeriesPoint> points;
};

/// Runs `base` at each message size (`lines` in cache lines), returning one
/// series. Iteration counts shrink with message size (the simulator is
/// deterministic, so a few iterations suffice at 1 MiB).
Series sweep_message_sizes(const BcastRunSpec& base, const std::string& label,
                           const std::vector<std::size_t>& sizes_lines);

/// Message sizes (cache lines) of Figure 8a / Figure 6a: 1..192 lines
/// (twice the 96-line OC-Bcast chunk), dense enough to show the slope
/// change at the chunk boundary.
std::vector<std::size_t> small_message_sizes();

/// Sizes of Figure 8b: log-spaced 1..32768 lines (1 MiB), plus 96/97 to
/// expose the partial-chunk throughput dip the paper highlights.
std::vector<std::size_t> large_message_sizes();

/// Default measured-iteration count per message size, balancing runtime
/// against statistics (warmup handled separately by BcastRunSpec).
int default_iterations(std::size_t lines);

/// The algorithm line-up of Figures 6 and 8: OC-Bcast k=2/7/47, binomial,
/// scatter-allgather.
std::vector<core::BcastSpec> paper_algorithm_lineup();

}  // namespace ocb::harness
