#include "harness/fault_sweep.h"

#include <algorithm>
#include <cstring>
#include <memory>

#include "check/checker.h"
#include "common/require.h"
#include "common/rng.h"
#include "core/ocbcast.h"
#include "fault/injector.h"
#include "harness/parallel.h"

namespace ocb::harness {

namespace {

std::vector<std::byte> make_pattern(std::size_t bytes, std::uint64_t seed) {
  std::vector<std::byte> out(bytes);
  Xoshiro256 rng(seed);
  std::size_t i = 0;
  while (i + 8 <= out.size()) {
    const std::uint64_t v = rng.next();
    std::memcpy(out.data() + i, &v, 8);
    i += 8;
  }
  for (; i < out.size(); ++i) {
    out[i] = static_cast<std::byte>(rng.next() & 0xff);
  }
  return out;
}

}  // namespace

FaultRunOutcome run_fault_once(const FaultRunSpec& spec) {
  OCB_REQUIRE(spec.message_bytes > 0, "empty message");

  scc::SccChip chip(spec.config);
  fault::FaultInjector injector(spec.plan);
  chip.add_observer(&injector);
  std::unique_ptr<check::RaceChecker> checker;
  if (spec.check_races) {
    checker = std::make_unique<check::RaceChecker>(chip);
    chip.add_observer(checker.get());
  }

  const int parties = spec.ft.parties;
  OCB_REQUIRE(spec.root >= 0 && spec.root < parties, "root out of range");

  // Two algorithm arms sharing shape parameters (FT vs plain control).
  std::unique_ptr<core::FtOcBcast> ft;
  std::unique_ptr<core::OcBcast> plain;
  core::BroadcastAlgorithm* algo;
  if (spec.use_ft) {
    ft = std::make_unique<core::FtOcBcast>(chip, spec.ft);
    algo = ft.get();
  } else {
    core::OcBcastOptions o;
    o.parties = spec.ft.parties;
    o.k = spec.ft.k;
    o.chunk_lines = spec.ft.chunk_lines;
    o.double_buffering = spec.ft.double_buffering;
    plain = std::make_unique<core::OcBcast>(chip, o);
    algo = plain.get();
  }

  const std::vector<std::byte> pattern =
      make_pattern(spec.message_bytes, spec.plan.seed ^ 0xc0ffee);
  auto root_region = chip.memory(spec.root).host_bytes(0, spec.message_bytes);
  std::copy(pattern.begin(), pattern.end(), root_region.begin());

  std::vector<sim::Time> finish(static_cast<std::size_t>(parties), 0);
  std::vector<bool> returned(static_cast<std::size_t>(parties), false);
  for (CoreId c = 0; c < parties; ++c) {
    chip.spawn(c, [&, c](scc::Core& me) -> sim::Task<void> {
      co_await algo->run(me, spec.root, 0, spec.message_bytes);
      finish[static_cast<std::size_t>(c)] = me.now();
      returned[static_cast<std::size_t>(c)] = true;
    });
  }

  const sim::RunResult run = chip.run(spec.max_events);

  FaultRunOutcome out;
  out.parties = parties;
  out.events = run.events_processed;
  out.stalled_processes = run.stalled_processes;
  out.stalled_details = run.stalled_details;
  out.injections = injector.stats();
  out.crashed = static_cast<int>(injector.stats().crashes_applied);
  out.survivors = parties - out.crashed;
  // Drained = the queue emptied on its own (didn't hit the event budget).
  out.drained = run.events_processed < spec.max_events;

  auto is_crashed = [&](CoreId c) {
    for (const fault::FailStop& f : spec.plan.crashes) {
      if (f.core == c) return true;
    }
    return false;
  };

  sim::Time last = 0;
  bool all_returned = true;
  for (CoreId c = 0; c < parties; ++c) {
    if (is_crashed(c)) continue;
    const auto i = static_cast<std::size_t>(c);
    if (!returned[i]) {
      all_returned = false;
      continue;
    }
    last = std::max(last, finish[i]);
    if (spec.use_ft) {
      const core::DeliveryReport& rep = ft->report(c);
      if (rep.delivered) ++out.delivered;
      if (rep.gave_up) ++out.gave_up;
    } else {
      ++out.delivered;  // plain protocol has no report; returning = claim
    }
    const auto got = chip.memory(c).host_bytes(0, spec.message_bytes);
    if (std::equal(pattern.begin(), pattern.end(), got.begin())) {
      ++out.correct;
    }
  }
  if (all_returned) out.latency_us = sim::to_us(last);
  if (checker != nullptr) {
    out.race_violations = checker->total_detected();
    if (out.race_violations > 0) out.race_report = checker->report();
  }
  return out;
}

FaultSweepResult run_fault_sweep(FaultRunSpec spec,
                                 const std::vector<std::uint64_t>& seeds) {
  // Every replication owns its chip and injector, so seeds are independent;
  // fan out over the sweep pool. parallel_map returns in index (= seed)
  // order, so the merged result is bit-identical to the serial loop.
  std::vector<FaultRunOutcome> outcomes =
      parallel_map(seeds.size(), [&](std::size_t i) {
        FaultRunSpec s = spec;
        s.plan.seed = seeds[i];
        return run_fault_once(s);
      });

  FaultSweepResult out;
  out.seeds = seeds;
  for (FaultRunOutcome& o : outcomes) {
    if (o.all_survivors_correct()) ++out.runs_all_correct;
    out.outcomes.push_back(std::move(o));
  }
  return out;
}

}  // namespace ocb::harness
