#include "harness/parallel.h"

#include <cstdlib>
#include <string>

namespace ocb::harness {

namespace {
thread_local bool t_in_parallel_worker = false;
}  // namespace

bool in_parallel_map_worker() { return t_in_parallel_worker; }

detail::ParallelWorkerScope::ParallelWorkerScope()
    : prev_(t_in_parallel_worker) {
  t_in_parallel_worker = true;
}

detail::ParallelWorkerScope::~ParallelWorkerScope() {
  t_in_parallel_worker = prev_;
}

unsigned pdes_threads() {
  if (t_in_parallel_worker) return 0;  // replication-level parallelism wins
  if (const char* env = std::getenv("OCB_PDES_THREADS")) {
    try {
      const long v = std::stol(env);
      if (v >= 0) return static_cast<unsigned>(v);
    } catch (...) {
      // Malformed value: treat as unset.
    }
  }
  return 0;
}

unsigned sweep_threads() {
  if (const char* env = std::getenv("OCB_SWEEP_THREADS")) {
    try {
      const long v = std::stol(env);
      if (v >= 1) return static_cast<unsigned>(v);
    } catch (...) {
      // Malformed value: fall through to the hardware default.
    }
    return 1;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? hw : 1;
}

}  // namespace ocb::harness
