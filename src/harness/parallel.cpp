#include "harness/parallel.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace ocb::harness {

namespace {
thread_local bool t_in_parallel_worker = false;

/// Warns about a malformed env value at most once per variable per process
/// (the getters are called once per sweep/run; a warning per call would
/// flood stderr on large grids).
void warn_once(bool& warned, const char* var, const char* value) {
  if (warned) return;
  warned = true;
  std::fprintf(stderr,
               "warning: ignoring malformed %s='%s' (want a nonnegative "
               "integer); using the default\n",
               var, value);
}
}  // namespace

bool in_parallel_map_worker() { return t_in_parallel_worker; }

detail::ParallelWorkerScope::ParallelWorkerScope()
    : prev_(t_in_parallel_worker) {
  t_in_parallel_worker = true;
}

detail::ParallelWorkerScope::~ParallelWorkerScope() {
  t_in_parallel_worker = prev_;
}

detail::EnvParse detail::parse_thread_env(const char* value, unsigned& out) {
  if (value == nullptr) return EnvParse::kUnset;
  // Strict parse: the whole string must be decimal digits ("7abc", "-3",
  // " 4", "+4", "" and overflow are all malformed, unlike the previous
  // stol-based parse which silently accepted trailing garbage — strtoul
  // alone would also skip leading whitespace and signs).
  if (*value == '\0') return EnvParse::kMalformed;
  for (const char* p = value; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return EnvParse::kMalformed;
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long v = std::strtoul(value, &end, 10);
  if (end == value || *end != '\0' || errno == ERANGE || v > 0xffffffffUL) {
    return EnvParse::kMalformed;
  }
  if (v == 0) return EnvParse::kZero;
  out = static_cast<unsigned>(v);
  return EnvParse::kValue;
}

unsigned pdes_threads() {
  if (t_in_parallel_worker) return 0;  // replication-level parallelism wins
  static bool warned = false;
  const char* env = std::getenv("OCB_PDES_THREADS");
  unsigned v = 0;
  switch (detail::parse_thread_env(env, v)) {
    case detail::EnvParse::kValue:
      return v;
    case detail::EnvParse::kMalformed:
      warn_once(warned, "OCB_PDES_THREADS", env);
      return 0;
    case detail::EnvParse::kUnset:
    case detail::EnvParse::kZero:
      return 0;  // 0 and unset both mean "serial reference loop"
  }
  return 0;
}

unsigned sweep_threads() {
  static bool warned = false;
  const char* env = std::getenv("OCB_SWEEP_THREADS");
  unsigned v = 0;
  switch (detail::parse_thread_env(env, v)) {
    case detail::EnvParse::kValue:
      return v;
    case detail::EnvParse::kMalformed:
      warn_once(warned, "OCB_SWEEP_THREADS", env);
      break;  // fall through to the hardware default, like unset
    case detail::EnvParse::kUnset:
    case detail::EnvParse::kZero:
      break;  // 0 and unset both mean "hardware default"
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? hw : 1;
}

}  // namespace ocb::harness
