#include "harness/parallel.h"

#include <cstdlib>
#include <string>

namespace ocb::harness {

unsigned sweep_threads() {
  if (const char* env = std::getenv("OCB_SWEEP_THREADS")) {
    try {
      const long v = std::stol(env);
      if (v >= 1) return static_cast<unsigned>(v);
    } catch (...) {
      // Malformed value: fall through to the hardware default.
    }
    return 1;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? hw : 1;
}

}  // namespace ocb::harness
