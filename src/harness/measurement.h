// Experiment harness: runs collectives and RMA micro-experiments on the
// simulated SCC and extracts the quantities the paper reports.
//
// Measurement hygiene mirrors §6.1:
//  * iterations are separated by a zero-cost rendezvous (not a real
//    barrier), so every iteration starts with all cores synchronized and
//    the measured interval contains only the collective itself;
//  * warm-up iterations are discarded;
//  * each iteration operates on a different private-memory offset so data
//    caches cannot serve the root's message reads ("currently uncached
//    offset" trick of §6.1);
//  * latency is the paper's definition: last core's return minus the
//    common start;
//  * every delivered message is byte-compared against the root's buffer
//    (the simulator moves real data), so a timing result can never come
//    from a broken protocol.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "coll/registry.h"
#include "common/stats.h"
#include "core/bcast.h"
#include "scc/chip.h"
#include "scc/config.h"

namespace ocb::check {
class RaceChecker;
}  // namespace ocb::check

namespace ocb::harness {

struct BcastRunSpec {
  core::BcastSpec algorithm{};
  /// Registry-keyed selection (coll/registry.h); when non-empty it wins
  /// over `algorithm`, and `params` configures the chosen factory.
  std::string algorithm_name{};
  coll::Params params{};
  scc::SccConfig config{};
  CoreId root = 0;
  std::size_t message_bytes = kCacheLineBytes;
  int iterations = 8;  ///< measured iterations
  int warmup = 1;      ///< discarded leading iterations
  bool verify = true;  ///< byte-compare every measured delivery
  /// Install an ocb::check::RaceChecker for the whole session. Also
  /// enabled by the OCB_CHECK environment variable (any value but "0").
  bool check = false;
};

struct BcastRunResult {
  SampleStats latency_us;   ///< per measured iteration
  double throughput_mbps = 0.0;  ///< message_bytes / mean latency
  bool content_ok = true;
  std::uint64_t events = 0;  ///< events processed by THIS run() call
  double simulated_ms = 0.0;
  sim::Time end_time = 0;  ///< simulated clock when the queue drained
  /// Engine-lifetime high-water mark of the event queue (sim::RunResult).
  std::uint64_t max_queue_depth = 0;
  /// Coroutine-frame allocator counters for this run() call; non-zero only
  /// when built with OCB_SIM_STATS (see sim/frame_pool.h).
  std::uint64_t frame_allocs = 0;
  std::uint64_t frame_reuses = 0;
  /// Race-checker results for this run() call (spec.check / OCB_CHECK).
  std::uint64_t race_violations = 0;
  std::string race_report{};
  /// Worker threads the event loop actually used: 0 = serial reference
  /// loop, >= 1 = the conservative-PDES window loop (sim::RunResult).
  /// Stays 0 inside parallel_map workers (see harness/parallel.h).
  unsigned pdes_threads = 0;
  /// PDES window statistics (nonzero only in OCB_SIM_STATS builds):
  /// windows executed, cross-lane events delivered through window-boundary
  /// inboxes, and the safety-window width used.
  std::uint64_t pdes_windows = 0;
  std::uint64_t pdes_cross_events = 0;
  sim::Duration pdes_lookahead_ns = 0;
  /// Observer-batching statistics for this run() call (nonzero only in
  /// OCB_SIM_STATS builds): coalesced ops launched, ops launched while an
  /// observer chain was installed (the fast path the capability model
  /// keeps open), ops that booked closed-form in the quiescent regime,
  /// and ops (with their line count) that fell back to the per-line path
  /// because an observer's bulk window was closed or the BulkOp pool was
  /// exhausted.
  std::uint64_t bulk_ops = 0;
  std::uint64_t bulk_ops_observed = 0;
  std::uint64_t bulk_quiescent_ops = 0;
  std::uint64_t bulk_fallback_ops = 0;
  std::uint64_t bulk_fallback_lines = 0;
};

/// Reusable measurement session: one chip and one algorithm instance
/// serving any number of run() calls. Each call executes spec.warmup +
/// spec.iterations broadcasts, advancing an internal private-memory slot
/// cursor so later calls still honour the §6.1 "uncached offset" rule,
/// and reports only its own event delta. Because a completed broadcast
/// leaves all protocol state (flags, buffers) reset, a reused chip must
/// produce the same latency samples as a fresh one — asserted by
/// measurement_test.cpp — while skipping repeated chip construction.
class BcastSession {
 public:
  explicit BcastSession(const BcastRunSpec& spec);
  ~BcastSession();

  BcastSession(const BcastSession&) = delete;
  BcastSession& operator=(const BcastSession&) = delete;

  /// One warmup+measure block on the (possibly reused) chip.
  BcastRunResult run();

  scc::SccChip& chip() { return *chip_; }

  /// The installed race checker, or nullptr when checking is off.
  check::RaceChecker* checker() { return checker_.get(); }

 private:
  BcastRunSpec spec_;
  std::unique_ptr<scc::SccChip> chip_;
  std::unique_ptr<core::BroadcastAlgorithm> algo_;
  std::unique_ptr<check::RaceChecker> checker_;
  int next_slot_ = 0;  ///< first unused iteration slot (offset cursor)
  std::uint64_t events_seen_ = 0;  ///< cumulative engine count already reported
  std::uint64_t races_seen_ = 0;   ///< cumulative violations already reported
};

/// Runs `warmup + iterations` broadcasts on a fresh chip
/// (single-use BcastSession).
BcastRunResult run_broadcast(const BcastRunSpec& spec);

/// Point-to-point RMA operation kinds, matching Figure 3's four panels.
enum class OpKind {
  kGetMpbToMpb,
  kPutMpbToMpb,
  kGetMpbToMem,
  kPutMemToMpb,
};

/// Average completion time (us) of `lines`-line operations issued by
/// `actor` against `target`'s MPB on an otherwise idle chip.
double measure_op_completion_us(const scc::SccConfig& config, OpKind kind,
                                CoreId actor, CoreId target, std::size_t lines,
                                int iterations = 16);

/// Finds a (actor, target) core pair whose MPB distance is exactly `d`
/// routers; throws if none exists (valid d: 1..9 on the 6x4 mesh).
std::pair<CoreId, CoreId> core_pair_at_mpb_distance(int d);

/// Finds a core whose memory-controller distance is exactly `d` (1..4).
CoreId core_at_mem_distance(int d);

/// Figure 4: n cores concurrently accessing core 0's MPB.
struct ContentionResult {
  double avg_us = 0.0;
  std::vector<double> per_core_us;  ///< one entry per participating core
  std::uint64_t events = 0;         ///< engine events for the whole experiment
  std::uint64_t max_queue_depth = 0;
};

/// `use_get`: each core repeatedly gets `lines` lines from core 0's MPB
/// (Fig. 4a). Otherwise each core repeatedly puts one line to its own
/// dedicated line of core 0's MPB (Fig. 4b; `lines` ignored).
ContentionResult measure_mpb_contention(const scc::SccConfig& config, int n_cores,
                                        std::size_t lines, bool use_get,
                                        int iterations = 16);

/// §3.3 mesh stress: victim get latency across the (2,2)-(3,2) link while
/// every remote core hammers flows through that link, vs. unloaded.
struct MeshStressResult {
  double loaded_us = 0.0;
  double unloaded_us = 0.0;
};

MeshStressResult measure_mesh_stress(const scc::SccConfig& config,
                                     std::size_t lines = 128);

}  // namespace ocb::harness
