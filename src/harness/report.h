// Rendering of experiment results: paper-style ASCII tables plus CSV files
// for external plotting.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "harness/sweep.h"

namespace ocb::harness {

/// Multi-series latency table: one row per message size, one column per
/// series (the shape of Figures 6a/8a).
std::string render_latency_table(const std::vector<Series>& series);

/// Multi-series throughput table (the shape of Figure 8b).
std::string render_throughput_table(const std::vector<Series>& series);

/// Writes all series as long-form CSV (label,lines,bytes,latency_us,
/// throughput_mbps) for plotting; `path` is created/truncated.
void write_series_csv(const std::string& path, const std::vector<Series>& series);

/// One row of a "paper vs. measured" summary.
struct ComparisonRow {
  std::string quantity;
  double paper_value = 0.0;
  double measured_value = 0.0;
  std::string unit;
};

/// Renders a comparison summary with a deviation column.
std::string render_comparison(const std::vector<ComparisonRow>& rows);

/// Directory benches write CSVs into (created on demand): "results".
std::string results_dir();

}  // namespace ocb::harness
