// Fault-injection experiment harness.
//
// Runs one broadcast per chip under a fault::FaultPlan and reports what
// actually happened: which cores crashed, which survivors delivered a
// byte-correct message, who gave up or stalled (with wait reasons), the
// surviving-core latency, and the injector's action counts. A sweep
// re-runs the same scenario across many seeds — the acceptance harness for
// core::FtOcBcast and the apparatus behind bench/bench_fault_overhead.
#pragma once

#include <string>
#include <vector>

#include "core/ft_ocbcast.h"
#include "fault/plan.h"
#include "scc/config.h"

namespace ocb::harness {

struct FaultRunSpec {
  fault::FaultPlan plan;
  core::FtOcBcastOptions ft{};
  /// false: run the plain (non-FT) OcBcast with matching shape under the
  /// same plan — the control arm showing what the faults do unhandled.
  bool use_ft = true;
  scc::SccConfig config{};
  CoreId root = 0;
  std::size_t message_bytes = 64 * 1024;
  /// Event budget: a run that exceeds it is reported as not completed
  /// rather than looping forever.
  std::uint64_t max_events = 400'000'000;
  /// Also install an ocb::check::RaceChecker on the run's observer chain —
  /// the injector's crashes/stalls/corruption then execute under
  /// happens-before surveillance (a recovery path that reads data without
  /// a real ordering edge is a bug even when the bytes verify).
  bool check_races = false;
};

struct FaultRunOutcome {
  /// Event queue drained within the budget (crashed cores still count as
  /// stalled processes; see stalled_*).
  bool drained = false;
  int parties = 0;
  int crashed = 0;    ///< fail-stops the injector actually applied
  int survivors = 0;  ///< parties - crashed
  /// Survivors whose private memory byte-matches the root's message.
  int correct = 0;
  /// Survivors that exhausted their retry budget and returned early (FT).
  int gave_up = 0;
  /// Survivors reporting delivered (FT only; == survivors on success).
  int delivered = 0;
  std::size_t stalled_processes = 0;
  std::vector<std::string> stalled_details;
  /// Last surviving core's return time (us); 0 if some survivor never
  /// returned.
  double latency_us = 0.0;
  std::uint64_t events = 0;
  fault::InjectionStats injections;
  /// Races detected (0 unless spec.check_races).
  std::uint64_t race_violations = 0;
  std::string race_report{};

  /// The FT acceptance predicate: every survivor delivered correct bytes.
  bool all_survivors_correct() const {
    return drained && correct == survivors && gave_up == 0;
  }
};

/// One broadcast on a fresh chip under `spec.plan`.
FaultRunOutcome run_fault_once(const FaultRunSpec& spec);

struct FaultSweepResult {
  std::vector<std::uint64_t> seeds;
  std::vector<FaultRunOutcome> outcomes;
  int runs_all_correct = 0;  ///< outcomes where all_survivors_correct()
};

/// Re-runs the scenario once per seed (spec.plan.seed is overridden).
FaultSweepResult run_fault_sweep(FaultRunSpec spec,
                                 const std::vector<std::uint64_t>& seeds);

}  // namespace ocb::harness
