// Parallel sweep harness.
//
// Simulator runs are single-threaded and deterministic, but a *sweep*
// (many seeds, many jitter combos, many what-if configs) is embarrassingly
// parallel: every replication builds its own SccChip, so replications share
// no mutable state (the coroutine frame pool is thread_local). parallel_map
// fans replications out over a std::thread pool and returns results in
// index order, which makes a parallel sweep bit-identical to the serial
// one — the merge order, and therefore every aggregate, is the task index
// order, never the completion order.
//
// Thread count comes from OCB_SWEEP_THREADS, else
// std::thread::hardware_concurrency(). The two thread-count variables share
// one grammar: unset and "0" both mean "the default" (hardware concurrency
// for sweeps, disabled/serial for PDES), anything that is not a nonnegative
// integer is malformed and falls back to that same default with a one-time
// stderr warning. With one worker (or n <= 1 tasks) parallel_map
// degenerates to a plain serial loop on the calling thread — the reference
// behaviour the parallel path must reproduce.
//
// Thread-budget split vs. PDES (OCB_PDES_THREADS): the two knobs multiply,
// so nesting them would oversubscribe the host. The rule is "replication
// wins": chips built inside a parallel_map worker run with the serial
// event loop (pdes_threads() returns 0 there, and BcastSession clamps even
// explicit configs), while chips built outside — single measured runs, the
// speed benches — get the PDES workers. Because PDES results are
// bit-identical to serial, the clamp never changes a sweep's numbers.
// When parallel_map itself degenerates to the serial loop (one worker or
// n <= 1), no worker scope is entered and inner PDES stays available.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <thread>
#include <utility>
#include <vector>

namespace ocb::harness {

/// Worker count for sweeps: OCB_SWEEP_THREADS if it parses to >= 1, else
/// hardware_concurrency(), else 1. "0", unset, and malformed values all
/// yield the hardware default (malformed warns once to stderr).
unsigned sweep_threads();

/// Worker count for conservative-PDES chip runs: OCB_PDES_THREADS if it
/// parses to >= 1, else 0 (= the serial reference loop; "0", unset, and
/// malformed values — the latter with a one-time warning). Returns 0 on a
/// thread currently executing parallel_map tasks — the budget-split rule
/// above.
unsigned pdes_threads();

/// True on a thread currently executing parallel_map tasks (including the
/// calling thread while it participates in its own pool).
bool in_parallel_map_worker();

namespace detail {
/// Shared grammar of the OCB_*_THREADS variables. kZero is distinct from
/// kValue so callers can give "0" the same meaning as unset (sweeps:
/// hardware default; PDES: disabled) instead of clamping it.
enum class EnvParse { kUnset, kZero, kValue, kMalformed };

/// Strictly parses `value` (may be null = kUnset) as a nonnegative decimal
/// integer; writes positive results to `out`. Trailing garbage, signs,
/// empty strings, and overflow are kMalformed.
EnvParse parse_thread_env(const char* value, unsigned& out);

/// RAII worker-scope marker for parallel_map; restores the previous value
/// so nested parallel_map calls unwind correctly.
class ParallelWorkerScope {
 public:
  ParallelWorkerScope();
  ~ParallelWorkerScope();
  ParallelWorkerScope(const ParallelWorkerScope&) = delete;
  ParallelWorkerScope& operator=(const ParallelWorkerScope&) = delete;

 private:
  bool prev_;
};
}  // namespace detail

/// Runs fn(0..n-1) across `threads` workers (default sweep_threads());
/// returns {fn(0), fn(1), ..., fn(n-1)} in index order. Tasks are claimed
/// from an atomic counter, so scheduling is dynamic but the result order is
/// not. The first exception thrown by any task is rethrown on the caller's
/// thread (remaining claimed tasks still finish; unclaimed ones are
/// skipped).
template <typename Fn>
auto parallel_map(std::size_t n, Fn&& fn, unsigned threads = 0)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  using R = decltype(fn(std::size_t{0}));
  std::vector<R> results(n);
  if (n == 0) return results;
  if (threads == 0) threads = sweep_threads();
  const std::size_t workers =
      std::min<std::size_t>(threads, n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) results[i] = fn(i);
    return results;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::atomic<int> error_claim{0};

  auto worker = [&] {
    const detail::ParallelWorkerScope scope;
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n || failed.load(std::memory_order_relaxed)) return;
      try {
        results[i] = fn(i);
      } catch (...) {
        if (error_claim.fetch_add(1, std::memory_order_relaxed) == 0) {
          first_error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) pool.emplace_back(worker);
  worker();
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

}  // namespace ocb::harness
