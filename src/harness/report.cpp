#include "harness/report.h"

#include <filesystem>
#include <map>
#include <set>

#include "common/format.h"
#include "common/require.h"

namespace ocb::harness {

namespace {

std::string render_metric_table(const std::vector<Series>& series, bool throughput) {
  OCB_REQUIRE(!series.empty(), "no series to render");
  std::set<std::size_t> sizes;
  for (const Series& s : series) {
    for (const SeriesPoint& p : s.points) sizes.insert(p.lines);
  }
  std::vector<std::string> header{"lines"};
  for (const Series& s : series) header.push_back(s.label);
  TextTable table(header);
  for (std::size_t lines : sizes) {
    std::vector<std::string> row{std::to_string(lines)};
    for (const Series& s : series) {
      std::string cell;
      for (const SeriesPoint& p : s.points) {
        if (p.lines == lines) {
          cell = fmt_fixed(throughput ? p.throughput_mbps : p.latency_us, 2);
          if (!p.content_ok) cell += " [CORRUPT]";
          break;
        }
      }
      row.push_back(cell);
    }
    table.add_row(std::move(row));
  }
  return table.str();
}

}  // namespace

std::string render_latency_table(const std::vector<Series>& series) {
  return "Broadcast latency (us) by message size (cache lines)\n" +
         render_metric_table(series, /*throughput=*/false);
}

std::string render_throughput_table(const std::vector<Series>& series) {
  return "Broadcast throughput (MB/s) by message size (cache lines)\n" +
         render_metric_table(series, /*throughput=*/true);
}

void write_series_csv(const std::string& path, const std::vector<Series>& series) {
  std::vector<std::vector<std::string>> rows;
  for (const Series& s : series) {
    for (const SeriesPoint& p : s.points) {
      rows.push_back({s.label, std::to_string(p.lines),
                      std::to_string(p.lines * kCacheLineBytes),
                      fmt_fixed(p.latency_us, 4), fmt_fixed(p.throughput_mbps, 4),
                      p.content_ok ? "ok" : "corrupt"});
    }
  }
  write_csv(path, {"series", "lines", "bytes", "latency_us", "throughput_mbps", "content"},
            rows);
}

std::string render_comparison(const std::vector<ComparisonRow>& rows) {
  TextTable table({"quantity", "paper", "measured", "unit", "deviation"});
  for (const ComparisonRow& r : rows) {
    std::string deviation = "n/a";
    if (r.paper_value != 0.0) {
      deviation =
          fmt_fixed((r.measured_value - r.paper_value) / r.paper_value * 100.0, 1) +
          "%";
    }
    table.add_row({r.quantity, fmt_fixed(r.paper_value, 2),
                   fmt_fixed(r.measured_value, 2), r.unit, deviation});
  }
  return table.str();
}

std::string results_dir() {
  const std::string dir = "results";
  std::filesystem::create_directories(dir);
  return dir;
}

}  // namespace ocb::harness
