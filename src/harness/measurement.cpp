#include "harness/measurement.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "check/checker.h"
#include "common/require.h"
#include "common/rng.h"
#include "harness/parallel.h"
#include "noc/memctrl.h"
#include "rma/rma.h"
#include "sim/condition.h"

namespace ocb::harness {

namespace {

bool env_check_enabled() {
  const char* v = std::getenv("OCB_CHECK");
  return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}

/// Fills a host-visible region with a deterministic per-(seed) pattern.
void fill_pattern(std::span<std::byte> region, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::size_t i = 0;
  while (i + 8 <= region.size()) {
    const std::uint64_t v = rng.next();
    std::memcpy(region.data() + i, &v, 8);
    i += 8;
  }
  for (; i < region.size(); ++i) {
    region[i] = static_cast<std::byte>(rng.next() & 0xff);
  }
}

/// Applies the PDES thread-budget rules to a run spec (harness/parallel.h):
/// an unset config picks up OCB_PDES_THREADS; inside a parallel_map worker
/// even an explicit config drops to the serial loop (replication wins).
/// Bit-identical results either way — only wall-clock changes.
BcastRunSpec resolved_pdes(BcastRunSpec spec) {
  if (in_parallel_map_worker()) {
    spec.config.pdes_threads = 0;
  } else if (spec.config.pdes_threads == 0) {
    spec.config.pdes_threads = pdes_threads();
  }
  return spec;
}

}  // namespace

BcastSession::BcastSession(const BcastRunSpec& spec)
    : spec_(resolved_pdes(spec)),
      chip_(std::make_unique<scc::SccChip>(spec_.config)),
      algo_(spec.algorithm_name.empty()
                ? core::make_broadcast(*chip_, spec.algorithm)
                : coll::make(spec.algorithm_name, *chip_, spec.params)) {
  OCB_REQUIRE(spec_.message_bytes > 0, "empty message");
  OCB_REQUIRE(spec_.iterations >= 1, "need at least one measured iteration");
  OCB_REQUIRE(spec_.warmup >= 0, "negative warmup");
  if (spec_.check || env_check_enabled()) {
    checker_ = std::make_unique<check::RaceChecker>(*chip_);
    chip_->add_observer(checker_.get());
  }
}

BcastSession::~BcastSession() = default;

BcastRunResult BcastSession::run() {
  scc::SccChip& chip = *chip_;
  const int parties = algo_->parties();
  const int total = spec_.warmup + spec_.iterations;

  // One fresh slot per iteration so no simulated cache can serve the root's
  // reads (§6.1); host seeding does not touch the simulated caches. The
  // cursor keeps later run() calls on fresh slots too.
  const std::size_t stride =
      cache_lines_for(spec_.message_bytes) * kCacheLineBytes;
  OCB_REQUIRE(static_cast<std::size_t>(next_slot_ + total) * stride <=
                  spec_.config.private_memory_limit / 4 * 3,
              "iterations * message size exceed the private-memory budget; "
              "lower the iteration count for this size");
  const int base_slot = next_slot_;
  next_slot_ += total;
  auto slot_offset = [stride, base_slot](int iteration) {
    return static_cast<std::size_t>(base_slot + iteration) * stride;
  };

  // Seed every slot of the root with a distinct pattern.
  for (int it = 0; it < total; ++it) {
    fill_pattern(
        chip.memory(spec_.root).host_bytes(slot_offset(it), spec_.message_bytes),
        0xfeed0000u + static_cast<std::uint64_t>(base_slot + it));
  }

  sim::Rendezvous rendezvous(chip.engine(), static_cast<std::size_t>(parties));
  std::vector<sim::Time> start(static_cast<std::size_t>(total), 0);
  std::vector<std::vector<sim::Time>> finish(
      static_cast<std::size_t>(total),
      std::vector<sim::Time>(static_cast<std::size_t>(parties), 0));

  core::BroadcastAlgorithm* algo = algo_.get();
  for (CoreId c = 0; c < parties; ++c) {
    chip.spawn(c, [&, algo, total](scc::Core& me) -> sim::Task<void> {
      for (int it = 0; it < total; ++it) {
        co_await rendezvous.arrive();
        // Every party resumes at the same simulated instant, so one writer
        // suffices — and under PDES the parties resume on different host
        // threads, where concurrent same-value stores would still race.
        if (me.id() == spec_.root) {
          start[static_cast<std::size_t>(it)] = me.now();
        }
        co_await algo->run(me, spec_.root, slot_offset(it), spec_.message_bytes);
        finish[static_cast<std::size_t>(it)][static_cast<std::size_t>(me.id())] =
            me.now();
      }
    });
  }

  const sim::RunResult run = chip.run();
  OCB_ENSURE(run.completed(),
             "broadcast deadlocked: " + std::to_string(run.stalled_processes) +
                 " cores never returned (algorithm protocol bug)");

  BcastRunResult out;
  // Engine counters are cumulative; report this call's delta.
  out.events = run.events_processed - events_seen_;
  events_seen_ = run.events_processed;
  out.simulated_ms = sim::to_seconds(run.end_time) * 1e3;
  out.end_time = run.end_time;
  out.max_queue_depth = run.max_queue_depth;
  out.frame_allocs = run.frame_allocs;
  out.frame_reuses = run.frame_reuses;
  out.pdes_threads = run.pdes_threads;
  out.pdes_windows = run.pdes_windows;
  out.pdes_cross_events = run.pdes_cross_events;
  out.pdes_lookahead_ns = run.pdes_lookahead_ns;
  out.bulk_ops = run.bulk_ops;
  out.bulk_ops_observed = run.bulk_ops_observed;
  out.bulk_quiescent_ops = run.bulk_quiescent_ops;
  out.bulk_fallback_ops = run.bulk_fallback_ops;
  out.bulk_fallback_lines = run.bulk_fallback_lines;
  for (int it = spec_.warmup; it < total; ++it) {
    const auto i = static_cast<std::size_t>(it);
    const sim::Time last = *std::max_element(finish[i].begin(), finish[i].end());
    OCB_ENSURE(last >= start[i], "negative iteration interval");
    out.latency_us.add(sim::to_us(last - start[i]));
  }
  out.throughput_mbps =
      static_cast<double>(spec_.message_bytes) / out.latency_us.mean();

  if (checker_ != nullptr) {
    // Sessions are reusable; report this call's delta like the event count.
    out.race_violations = checker_->total_detected() - races_seen_;
    races_seen_ = checker_->total_detected();
    if (out.race_violations > 0) out.race_report = checker_->report();
  }

  if (spec_.verify) {
    for (int it = spec_.warmup; it < total; ++it) {
      const auto root_bytes =
          chip.memory(spec_.root).host_bytes(slot_offset(it), spec_.message_bytes);
      for (CoreId c = 0; c < parties; ++c) {
        if (c == spec_.root) continue;
        const auto got =
            chip.memory(c).host_bytes(slot_offset(it), spec_.message_bytes);
        if (!std::equal(root_bytes.begin(), root_bytes.end(), got.begin())) {
          out.content_ok = false;
        }
      }
    }
  }
  return out;
}

BcastRunResult run_broadcast(const BcastRunSpec& spec) {
  return BcastSession(spec).run();
}

std::pair<CoreId, CoreId> core_pair_at_mpb_distance(int d) {
  for (CoreId a = 0; a < kNumCores; ++a) {
    for (CoreId b = 0; b < kNumCores; ++b) {
      if (a == b) continue;  // prefer distinct cores (d=1 = tile-mate access)
      if (noc::routers_traversed(noc::tile_of_core(a), noc::tile_of_core(b)) == d) {
        return {a, b};
      }
    }
  }
  OCB_REQUIRE(false, "no core pair at requested MPB distance");
  return {0, 0};
}

CoreId core_at_mem_distance(int d) {
  for (CoreId c = 0; c < kNumCores; ++c) {
    if (noc::mem_distance(c) == d) return c;
  }
  OCB_REQUIRE(false, "no core at requested memory distance");
  return 0;
}

double measure_op_completion_us(const scc::SccConfig& config, OpKind kind,
                                CoreId actor, CoreId target, std::size_t lines,
                                int iterations) {
  OCB_REQUIRE(iterations >= 1, "need at least one iteration");
  OCB_REQUIRE(lines >= 1 && lines <= kMpbCacheLines, "line count out of range");
  scc::SccChip chip(config);
  RunningStats stats;
  chip.spawn(actor, [&](scc::Core& me) -> sim::Task<void> {
    for (int it = 0; it < iterations; ++it) {
      // Rotate memory offsets so mem-reading ops never hit the cache.
      const std::size_t mem_off =
          static_cast<std::size_t>(it) * lines * kCacheLineBytes;
      const sim::Time t0 = me.now();
      switch (kind) {
        case OpKind::kGetMpbToMpb:
          co_await rma::get_mpb_to_mpb(me, 0, rma::MpbAddr{target, 0}, lines);
          break;
        case OpKind::kPutMpbToMpb:
          co_await rma::put_mpb_to_mpb(me, rma::MpbAddr{target, 0}, 0, lines);
          break;
        case OpKind::kGetMpbToMem:
          co_await rma::get_mpb_to_mem(me, mem_off, rma::MpbAddr{target, 0}, lines);
          break;
        case OpKind::kPutMemToMpb:
          co_await rma::put_mem_to_mpb(me, rma::MpbAddr{target, 0}, mem_off, lines);
          break;
      }
      stats.add(sim::to_us(me.now() - t0));
    }
  });
  const sim::RunResult run = chip.run();
  OCB_ENSURE(run.completed(), "op measurement stalled");
  return stats.mean();
}

ContentionResult measure_mpb_contention(const scc::SccConfig& config, int n_cores,
                                        std::size_t lines, bool use_get,
                                        int iterations) {
  OCB_REQUIRE(n_cores >= 1 && n_cores <= kNumCores, "core count out of range");
  scc::SccChip chip(config);
  sim::Rendezvous rendezvous(chip.engine(), static_cast<std::size_t>(n_cores));
  std::vector<RunningStats> per_core(static_cast<std::size_t>(n_cores));

  for (CoreId c = 0; c < n_cores; ++c) {
    chip.spawn(c, [&, use_get, lines, iterations](scc::Core& me) -> sim::Task<void> {
      for (int it = 0; it < iterations; ++it) {
        co_await rendezvous.arrive();
        const sim::Time t0 = me.now();
        if (use_get) {
          co_await rma::get_mpb_to_mpb(me, 0, rma::MpbAddr{0, 0}, lines);
        } else {
          // Each core owns a dedicated target line (the doneFlag pattern of
          // §3.3: concurrent 1-line puts to distinct locations).
          co_await rma::put_mpb_to_mpb(
              me, rma::MpbAddr{0, static_cast<std::size_t>(me.id())}, 0, 1);
        }
        per_core[static_cast<std::size_t>(me.id())].add(sim::to_us(me.now() - t0));
      }
    });
  }
  const sim::RunResult run = chip.run();
  OCB_ENSURE(run.completed(), "contention measurement stalled");

  ContentionResult out;
  out.events = run.events_processed;
  out.max_queue_depth = run.max_queue_depth;
  RunningStats all;
  for (const auto& s : per_core) {
    out.per_core_us.push_back(s.mean());
    all.add(s.mean());
  }
  out.avg_us = all.mean();
  return out;
}

MeshStressResult measure_mesh_stress(const scc::SccConfig& config, std::size_t lines) {
  // Victim: the core on tile (2,2) gets from the core on tile (3,2); the
  // response data crosses the (3,2)->(2,2) link.
  const CoreId victim = noc::first_core_of_tile(noc::tile_index(noc::TileCoord{2, 2}));
  const CoreId victim_src =
      noc::first_core_of_tile(noc::tile_index(noc::TileCoord{3, 2}));

  auto run_once = [&](bool loaded) {
    scc::SccChip chip(config);
    RunningStats victim_stats;
    if (loaded) {
      for (CoreId c = 0; c < kNumCores; ++c) {
        const noc::TileCoord t = noc::tile_of_core(c);
        if (t.y == 2 && (t.x == 2 || t.x == 3)) continue;  // victim tiles idle
        // Get from the row-2 core on the opposite side so the X-Y response
        // route crosses the stressed link (paper §3.3).
        const noc::TileCoord src_tile{t.x >= 3 ? 0 : 5, 2};
        const CoreId src = noc::first_core_of_tile(noc::tile_index(src_tile));
        chip.spawn(c, [&, src](scc::Core& me) -> sim::Task<void> {
          for (int it = 0; it < 64; ++it) {
            co_await rma::get_mpb_to_mpb(me, 0, rma::MpbAddr{src, 0}, 128);
          }
        });
      }
    }
    chip.spawn(victim, [&](scc::Core& me) -> sim::Task<void> {
      // Let the stress flows ramp up first.
      co_await me.chip().engine().sleep(50 * sim::kMicrosecond);
      for (int it = 0; it < 32; ++it) {
        const sim::Time t0 = me.now();
        co_await rma::get_mpb_to_mpb(me, 0, rma::MpbAddr{victim_src, 0}, lines);
        victim_stats.add(sim::to_us(me.now() - t0));
      }
    });
    const sim::RunResult run = chip.run();
    OCB_ENSURE(run.completed(), "mesh stress measurement stalled");
    return victim_stats.mean();
  };

  MeshStressResult out;
  out.unloaded_us = run_once(false);
  out.loaded_us = run_once(true);
  return out;
}

}  // namespace ocb::harness
