// Reference numbers quoted from the paper, used by benches and
// EXPERIMENTS.md to print measured-vs-paper comparisons. Only values the
// paper states numerically are recorded; curve shapes are compared
// qualitatively in the bench output.
#pragma once

#include <cstddef>

namespace ocb::harness::paper {

// Table 2: modeled peak broadcast throughput (MB/s).
inline constexpr double kTable2OcK2Mbps = 35.22;
inline constexpr double kTable2OcK7Mbps = 34.30;
inline constexpr double kTable2OcK47Mbps = 35.88;
inline constexpr double kTable2ScatterAllgatherMbps = 13.38;

// §6.2.1 / Fig. 8a: single-cache-line latency.
inline constexpr double kFig8aOcK7LatencyUs = 16.6;
inline constexpr double kFig8aBinomialLatencyUs = 21.6;
// "OC-Bcast with k=7 provides 27% improvement compared to the binomial".
inline constexpr double kMinLatencyImprovementPct = 27.0;
// "around 25% better than with k=2" for 96..192-line messages.
inline constexpr double kK7VsK2LargeMsgImprovementPct = 25.0;

// §6.2.2 / Fig. 8b: "almost 3 times higher peak throughput".
inline constexpr double kPeakThroughputRatio = 3.0;
// k=47 measured throughput ~16% below its model prediction (contention).
inline constexpr double kK47ThroughputModelGapPct = 16.0;

// §3.3: contention is not measurable up to this many concurrent accessors.
inline constexpr int kContentionFreeAccessors = 24;
// At 48 accessors the slowest core is >2x (get) / >4x (put) the fastest.
inline constexpr double kGetSpreadAt48 = 2.0;
inline constexpr double kPutSpreadAt48 = 4.0;

// §5.1 constants.
inline constexpr std::size_t kMocLines = 96;
inline constexpr std::size_t kMrcceLines = 251;

/// Returns the paper's Table 2 value for an OC-Bcast fan-out (exact match
/// on the three published k values; 0.0 otherwise).
constexpr double table2_oc_mbps(int k) {
  if (k == 2) return kTable2OcK2Mbps;
  if (k == 7) return kTable2OcK7Mbps;
  if (k == 47) return kTable2OcK47Mbps;
  return 0.0;
}

}  // namespace ocb::harness::paper
