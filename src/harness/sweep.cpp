#include "harness/sweep.h"

namespace ocb::harness {

Series sweep_message_sizes(const BcastRunSpec& base, const std::string& label,
                           const std::vector<std::size_t>& sizes_lines) {
  Series series;
  series.label = label;
  for (std::size_t lines : sizes_lines) {
    BcastRunSpec spec = base;
    spec.message_bytes = lines * kCacheLineBytes;
    spec.iterations = default_iterations(lines);
    const BcastRunResult r = run_broadcast(spec);
    series.points.push_back(SeriesPoint{lines, r.latency_us.mean(),
                                        r.throughput_mbps, r.content_ok});
  }
  return series;
}

std::vector<std::size_t> small_message_sizes() {
  std::vector<std::size_t> sizes{1, 4, 8, 16};
  for (std::size_t s = 12; s <= 192; s += 12) sizes.push_back(s);
  sizes.push_back(96);
  sizes.push_back(97);
  std::sort(sizes.begin(), sizes.end());
  sizes.erase(std::unique(sizes.begin(), sizes.end()), sizes.end());
  return sizes;
}

std::vector<std::size_t> large_message_sizes() {
  std::vector<std::size_t> sizes;
  for (std::size_t s = 1; s <= 32768; s *= 2) sizes.push_back(s);
  sizes.push_back(96);
  sizes.push_back(97);
  sizes.push_back(192);
  sizes.push_back(3072);  // ~P * M_oc, Table 2's modeled message size
  std::sort(sizes.begin(), sizes.end());
  sizes.erase(std::unique(sizes.begin(), sizes.end()), sizes.end());
  return sizes;
}

int default_iterations(std::size_t lines) {
  if (lines <= 64) return 8;
  if (lines <= 512) return 5;
  if (lines <= 4096) return 3;
  return 2;
}

std::vector<core::BcastSpec> paper_algorithm_lineup() {
  std::vector<core::BcastSpec> specs;
  for (int k : {2, 7, 47}) {
    core::BcastSpec s;
    s.kind = core::BcastKind::kOcBcast;
    s.k = k;
    specs.push_back(s);
  }
  core::BcastSpec binomial;
  binomial.kind = core::BcastKind::kBinomial;
  specs.push_back(binomial);
  core::BcastSpec sag;
  sag.kind = core::BcastKind::kScatterAllgather;
  specs.push_back(sag);
  return specs;
}

}  // namespace ocb::harness
