// FaultInjector: the canonical fault-injecting scc::TransactionObserver.
//
// Replays an ocb::fault::FaultPlan against a simulation. All randomness
// comes from a private xoshiro256** stream seeded from the plan, consulted
// in the (deterministic) order transactions execute — so an identical plan
// against an identical program injects the identical faults, transaction
// for transaction, and the whole run is bit-reproducible.
//
//   fault::FaultPlan plan;
//   plan.seed = 42;
//   plan.rates.mpb_read = 1e-5;
//   plan.crashes.push_back({.core = 5, .at = sim::us(30)});
//   fault::FaultInjector injector(plan);
//   chip.add_observer(&injector);         // non-owning; outlive the run
#pragma once

#include <vector>

#include "common/rng.h"
#include "fault/plan.h"
#include "scc/observer.h"

namespace ocb::fault {

class FaultInjector final : public scc::TransactionObserver {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }
  const InjectionStats& stats() const { return stats_; }

  // scc::TransactionObserver
  bool crashed(CoreId core, sim::Time now) override;
  sim::Duration stall(CoreId core, sim::Time now) override;
  void on_read(const scc::LineTxn& txn, CacheLine& value) override;
  bool on_write(const scc::LineTxn& txn, CacheLine& value) override;

 private:
  double rate_for(scc::TraceOp op) const;
  /// Flips one random bit of one random byte (never a no-op).
  void corrupt(CacheLine& value);

  FaultPlan plan_;
  Xoshiro256 rng_;
  InjectionStats stats_;
  std::vector<bool> stall_applied_;    // parallel to plan_.stalls
  std::vector<bool> crash_reported_;   // parallel to plan_.crashes
};

}  // namespace ocb::fault
