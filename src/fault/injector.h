// FaultInjector: the canonical fault-injecting scc::TransactionObserver.
//
// Replays an ocb::fault::FaultPlan against a simulation. All randomness
// comes from a private xoshiro256** stream seeded from the plan, consulted
// in the (deterministic) order transactions execute — so an identical plan
// against an identical program injects the identical faults, transaction
// for transaction, and the whole run is bit-reproducible.
//
//   fault::FaultPlan plan;
//   plan.seed = 42;
//   plan.rates.mpb_read = 1e-5;
//   plan.crashes.push_back({.core = 5, .at = sim::us(30)});
//   fault::FaultInjector injector(plan);
//   chip.add_observer(&injector);         // non-owning; outlive the run
#pragma once

#include <array>
#include <vector>

#include "common/rng.h"
#include "fault/plan.h"
#include "scc/observer.h"

namespace ocb::fault {

class FaultInjector final : public scc::TransactionObserver {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }
  const InjectionStats& stats() const { return stats_; }

  // scc::TransactionObserver
  bool crashed(CoreId core, sim::Time now) override;
  sim::Duration stall(CoreId core, sim::Time now) override;
  void on_read(const scc::LineTxn& txn, CacheLine& value) override;
  bool on_write(const scc::LineTxn& txn, CacheLine& value) override;

  // Capability model (scc/observer.h): the injector is bulk-capable. Its
  // per-line needs are pre-sampled from the plan at construction — a plan
  // with no read (write) corruption rates never draws on reads (writes),
  // so skipping those callbacks on the quiescent path leaves the rng
  // stream untouched; any nonzero rate forces per-line replay so draws
  // happen one per at-risk transaction in exact reference order. Cores
  // with a planned stall or crash report their bulk window unclear, which
  // routes exactly the perturbed cores through the gated per-line path.
  bool supports_bulk() const override { return true; }
  bool needs_per_line_reads() const override { return perline_reads_; }
  bool needs_per_line_writes() const override { return perline_writes_; }
  bool needs_per_line_completes() const override { return false; }
  bool bulk_window_clear(CoreId core, sim::Time /*now*/) override {
    return !timing_faults_[static_cast<std::size_t>(core)];
  }
  /// Reached only when every per-line need is false (zero rates, no stuck
  /// lines): a per-line replay would draw and mutate nothing, so the
  /// batched notification is deliberately a no-op.
  void on_bulk(const scc::BulkTxn& /*txn*/) override {}

 private:
  double rate_for(scc::TraceOp op) const;
  /// Flips one random bit of one random byte (never a no-op).
  void corrupt(CacheLine& value);

  FaultPlan plan_;
  Xoshiro256 rng_;
  InjectionStats stats_;
  std::vector<bool> stall_applied_;    // parallel to plan_.stalls
  std::vector<bool> crash_reported_;   // parallel to plan_.crashes
  std::array<bool, kNumCores> timing_faults_{};  // any planned stall/crash
  bool perline_reads_ = false;   // any read-corruption rate > 0
  bool perline_writes_ = false;  // any write rate > 0 or stuck lines
};

}  // namespace ocb::fault
