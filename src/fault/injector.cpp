#include "fault/injector.h"

#include "common/require.h"

namespace ocb::fault {

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)),
      rng_(SplitMix64(plan_.seed ^ 0xFA17B0A7ULL).next()),
      stall_applied_(plan_.stalls.size(), false),
      crash_reported_(plan_.crashes.size(), false) {
  // Pre-sample the plan's per-line needs and per-core gate effects once
  // (the plan is immutable for the injector's lifetime; see injector.h).
  // The injector's gate table is dimensioned for the SCC; fault plans on
  // larger topologies would need a dynamic table and are rejected early.
  for (const StallInterval& s : plan_.stalls) {
    OCB_REQUIRE(s.core >= 0 && s.core < kNumCores,
                "fault plan stall core out of the injector's range");
    timing_faults_[static_cast<std::size_t>(s.core)] = true;
  }
  for (const FailStop& f : plan_.crashes) {
    OCB_REQUIRE(f.core >= 0 && f.core < kNumCores,
                "fault plan crash core out of the injector's range");
    timing_faults_[static_cast<std::size_t>(f.core)] = true;
  }
  perline_reads_ = plan_.rates.mpb_read > 0.0 || plan_.rates.mem_read > 0.0;
  perline_writes_ = plan_.rates.mpb_write > 0.0 ||
                    plan_.rates.mem_write > 0.0 || !plan_.stuck_lines.empty();
}

bool FaultInjector::crashed(CoreId core, sim::Time now) {
  for (std::size_t i = 0; i < plan_.crashes.size(); ++i) {
    const FailStop& f = plan_.crashes[i];
    if (f.core != core || now < f.at) continue;
    if (!crash_reported_[i]) {
      crash_reported_[i] = true;
      ++stats_.crashes_applied;
    }
    return true;
  }
  return false;
}

sim::Duration FaultInjector::stall(CoreId core, sim::Time now) {
  for (std::size_t i = 0; i < plan_.stalls.size(); ++i) {
    const StallInterval& s = plan_.stalls[i];
    if (s.core != core || now < s.at || stall_applied_[i]) continue;
    stall_applied_[i] = true;
    ++stats_.stalls_applied;
    return s.duration;
  }
  return 0;
}

double FaultInjector::rate_for(scc::TraceOp op) const {
  switch (op) {
    case scc::TraceOp::kMpbRead:
      return plan_.rates.mpb_read;
    case scc::TraceOp::kMpbWrite:
      return plan_.rates.mpb_write;
    case scc::TraceOp::kMemRead:
    case scc::TraceOp::kCacheHit:
      return plan_.rates.mem_read;
    case scc::TraceOp::kMemWrite:
      return plan_.rates.mem_write;
    default:
      return 0.0;
  }
}

void FaultInjector::corrupt(CacheLine& value) {
  const std::uint64_t pick = rng_.next_below(kCacheLineBytes * 8);
  const std::size_t byte = static_cast<std::size_t>(pick / 8);
  const unsigned bit = static_cast<unsigned>(pick % 8);
  value.bytes[byte] ^= static_cast<std::byte>(1u << bit);
}

void FaultInjector::on_read(const scc::LineTxn& site, CacheLine& value) {
  const double rate = rate_for(site.op);
  if (rate <= 0.0) return;
  // One rng draw per at-risk transaction keeps the stream aligned with the
  // deterministic transaction order regardless of outcome.
  const double u = rng_.next_double();
  if (u >= rate) return;
  corrupt(value);
  ++stats_.reads_corrupted;
}

bool FaultInjector::on_write(const scc::LineTxn& site, CacheLine& value) {
  if (site.op == scc::TraceOp::kMpbWrite) {
    for (const StuckLine& s : plan_.stuck_lines) {
      const bool match = s.owner == site.target && s.line == site.index;
      const bool active = site.now >= s.from && site.now < s.until;
      if (match && active) {
        ++stats_.writes_suppressed;
        return false;
      }
    }
  }
  const double rate = rate_for(site.op);
  if (rate > 0.0) {
    const double u = rng_.next_double();
    if (u < rate) {
      corrupt(value);
      ++stats_.writes_corrupted;
    }
  }
  return true;
}

}  // namespace ocb::fault
