// Declarative fault plans.
//
// A FaultPlan is a pure value describing every fault a run should suffer:
// probabilistic transient corruption (per transaction kind), deterministic
// stuck/lost flag lines, core stall intervals, and fail-stop crashes. The
// plan plus its seed fully determines the injected faults — replaying the
// same plan against the same program yields a bit-identical simulation
// (see fault/injector.h, which consumes plans).
//
// Times are simulated times (integer picoseconds, sim/time.h); rates are
// per-transaction probabilities in [0, 1].
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "sim/time.h"

namespace ocb::fault {

/// Per-transaction-kind probabilities that a single-line transfer observes
/// (read) or carries (write) a flipped byte.
struct CorruptionRates {
  double mpb_read = 0.0;
  double mpb_write = 0.0;
  double mem_read = 0.0;
  double mem_write = 0.0;

  bool any() const {
    return mpb_read > 0.0 || mpb_write > 0.0 || mem_read > 0.0 ||
           mem_write > 0.0;
  }
};

/// Writes by anyone into MPB line `line` of core `owner` are silently
/// dropped while now() is in [from, until) — a stuck flag / lost doorbell.
struct StuckLine {
  CoreId owner = 0;
  std::size_t line = 0;
  sim::Time from = 0;
  sim::Time until = 0;
};

/// Core `core` freezes for `duration` at the first transaction it attempts
/// at or after `at` (an OS hiccup, an SMC interrupt storm).
struct StallInterval {
  CoreId core = 0;
  sim::Time at = 0;
  sim::Duration duration = 0;
};

/// Core `core` fail-stops at the first transaction it attempts at or after
/// `at`: its process parks forever, but its tile's MPB keeps its contents
/// and stays remotely readable (SRAM survives the core's death).
struct FailStop {
  CoreId core = 0;
  sim::Time at = 0;
};

struct FaultPlan {
  std::uint64_t seed = 1;
  CorruptionRates rates;
  std::vector<StuckLine> stuck_lines;
  std::vector<StallInterval> stalls;
  std::vector<FailStop> crashes;
};

/// What the injector actually did — for reporting and determinism checks.
struct InjectionStats {
  std::uint64_t reads_corrupted = 0;
  std::uint64_t writes_corrupted = 0;
  std::uint64_t writes_suppressed = 0;
  std::uint64_t stalls_applied = 0;
  std::uint64_t crashes_applied = 0;

  std::uint64_t total() const {
    return reads_corrupted + writes_corrupted + writes_suppressed +
           stalls_applied + crashes_applied;
  }
};

}  // namespace ocb::fault
