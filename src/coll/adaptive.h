// coll::AdaptiveBcast — the online half of the design-space autotuner.
//
// A Collective that owns no broadcast protocol of its own: each run() call
// looks up (message size, parties, observed fault rate) in a DecisionTable
// and delegates to the best registered algorithm for that band, with the
// tuning knobs (k, chunk_lines, double_buffering) the offline explorer
// found best there. Switching delegates is quiesced: OC-Bcast-family flags
// are absolute monotone sequence numbers, so a new instance must never see
// a predecessor's MPB state — the switch waits until no call is in flight,
// then scrubs every core's MPB before instantiating the replacement.
//
// Not a builtin: call register_adaptive() to install it as "adaptive"
// (keeps the registry's all-algorithms test grids — PDES parity, race
// checks — over protocols only).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "coll/decision.h"
#include "coll/registry.h"
#include "sim/condition.h"

namespace ocb::scc {
class SccChip;
}  // namespace ocb::scc

namespace ocb::coll {

class AdaptiveBcast final : public Collective {
 public:
  /// One per-round record of what the table picked (pushed by the root's
  /// run() call) — lets tests and benches audit the selection stream.
  struct Selection {
    std::size_t lines = 0;
    Choice choice;
  };

  /// The chip is pinned to the deterministic serial loop for its lifetime
  /// (note_dynamic_spawning): delegate switching mutates shared state
  /// (in-flight counter, delegate pointer) from every core's coroutine,
  /// which is only safe single-threaded. Requires params.mpb_base_line == 0
  /// — the adaptive layer re-derives chunk shapes per band and therefore
  /// owns the whole MPB; it cannot live inside a service slot lease.
  AdaptiveBcast(scc::SccChip& chip, const Params& params,
                DecisionTable table = DecisionTable::baked_in());

  std::string name() const override { return "adaptive"; }
  int parties() const override { return params_.parties; }

  sim::Task<void> run(scc::Core& self, CoreId root, std::size_t offset,
                      std::size_t bytes) override;

  const DecisionTable& table() const { return table_; }
  const std::vector<Selection>& selections() const { return selections_; }

 private:
  scc::SccChip* chip_;
  Params params_;
  DecisionTable table_;
  std::unique_ptr<Collective> delegate_;
  std::string delegate_key_;
  int active_ = 0;          ///< run() calls inside the current delegate
  sim::Trigger quiesce_;    ///< fired when active_ drops to 0 or on switch
  std::vector<Selection> selections_;
};

/// Installs AdaptiveBcast in the registry as "adaptive" (idempotent). The
/// factory reads Params::adaptive_table_json when non-empty
/// (DecisionTable::from_json) and ships the baked-in table otherwise.
void register_adaptive();

}  // namespace ocb::coll
