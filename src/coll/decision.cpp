#include "coll/decision.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/require.h"

namespace ocb::coll {

namespace {

constexpr std::size_t kNoLimit = static_cast<std::size_t>(-1);

bool is_catch_all(const DecisionRule& r) {
  return r.max_lines == kNoLimit && r.max_parties >= kNumCores &&
         r.max_fault_rate >= 1.0;
}

// --- minimal scanners for our own to_json output -----------------------
// The grammar is fixed (flat rule objects, no nesting, no escapes in the
// algorithm names the registry accepts), so a find-the-key scan is exact.

std::string field_prefix(const char* key) {
  return std::string("\"") + key + "\":";
}

const char* find_field(const std::string& obj, const char* key) {
  const std::size_t at = obj.find(field_prefix(key));
  OCB_REQUIRE(at != std::string::npos,
              "decision-table JSON rule missing field '" + std::string(key) +
                  "': " + obj);
  const char* s = obj.c_str() + at + field_prefix(key).size();
  while (*s == ' ') ++s;
  return s;
}

std::uint64_t get_u64(const std::string& obj, const char* key) {
  const char* s = find_field(obj, key);
  char* end = nullptr;
  errno = 0;
  const std::uint64_t v = std::strtoull(s, &end, 10);
  OCB_REQUIRE(end != s && errno != ERANGE,
              "decision-table JSON field '" + std::string(key) +
                  "' is not an integer");
  return v;
}

double get_double(const std::string& obj, const char* key) {
  const char* s = find_field(obj, key);
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  OCB_REQUIRE(end != s, "decision-table JSON field '" + std::string(key) +
                            "' is not a number");
  return v;
}

bool get_bool(const std::string& obj, const char* key) {
  const char* s = find_field(obj, key);
  if (std::strncmp(s, "true", 4) == 0) return true;
  if (std::strncmp(s, "false", 5) == 0) return false;
  OCB_REQUIRE(false, "decision-table JSON field '" + std::string(key) +
                         "' is not a bool");
  return false;
}

std::string get_string(const std::string& obj, const char* key) {
  const char* s = find_field(obj, key);
  OCB_REQUIRE(*s == '"', "decision-table JSON field '" + std::string(key) +
                             "' is not a string");
  const char* close = std::strchr(s + 1, '"');
  OCB_REQUIRE(close != nullptr, "unterminated string in decision-table JSON");
  return std::string(s + 1, close);
}

}  // namespace

Params Choice::apply(Params base) const {
  base.k = k;
  base.chunk_lines = chunk_lines;
  base.double_buffering = double_buffering;
  return base;
}

std::string Choice::key() const {
  return algorithm + "/k" + std::to_string(k) + "/c" +
         std::to_string(chunk_lines) + "/db" + (double_buffering ? "1" : "0");
}

DecisionTable::DecisionTable(std::vector<DecisionRule> rules)
    : rules_(std::move(rules)) {
  OCB_REQUIRE(!rules_.empty(), "decision table needs at least one rule");
  OCB_REQUIRE(is_catch_all(rules_.back()),
              "decision table's last rule must be a catch-all "
              "(max_lines=SIZE_MAX, max_parties>=48, max_fault_rate>=1)");
  for (const DecisionRule& r : rules_) {
    OCB_REQUIRE(!r.choice.algorithm.empty(),
                "decision rule with empty algorithm name");
    OCB_REQUIRE(r.max_fault_rate >= 0.0, "negative max_fault_rate");
  }
}

const Choice& DecisionTable::lookup(std::size_t lines, int parties,
                                    double fault_rate) const {
  for (const DecisionRule& r : rules_) {
    if (lines <= r.max_lines && parties <= r.max_parties &&
        fault_rate <= r.max_fault_rate) {
      return r.choice;
    }
  }
  // Unreachable: the constructor requires a catch-all last rule.
  OCB_REQUIRE(false, "decision table lookup fell through the catch-all");
  return rules_.back().choice;
}

std::string DecisionTable::to_json() const {
  std::string out = "{\n  \"schema\": \"ocb-tune-decision-v1\",\n"
                    "  \"rules\": [\n";
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const DecisionRule& r = rules_[i];
    char fault[32];
    std::snprintf(fault, sizeof fault, "%.9g", r.max_fault_rate);
    out += "    {\"max_lines\": " + std::to_string(r.max_lines) +
           ", \"max_parties\": " + std::to_string(r.max_parties) +
           ", \"max_fault_rate\": " + fault + ", \"algorithm\": \"" +
           r.choice.algorithm + "\", \"k\": " + std::to_string(r.choice.k) +
           ", \"chunk_lines\": " + std::to_string(r.choice.chunk_lines) +
           ", \"double_buffering\": " +
           (r.choice.double_buffering ? "true" : "false") + "}";
    out += (i + 1 == rules_.size()) ? "\n" : ",\n";
  }
  out += "  ]\n}\n";
  return out;
}

DecisionTable DecisionTable::from_json(const std::string& json) {
  OCB_REQUIRE(json.find("\"ocb-tune-decision-v1\"") != std::string::npos,
              "not an ocb-tune-decision-v1 record");
  const std::size_t rules_at = json.find("\"rules\"");
  OCB_REQUIRE(rules_at != std::string::npos, "decision JSON without rules");
  const std::size_t open = json.find('[', rules_at);
  const std::size_t close = json.find(']', open);
  OCB_REQUIRE(open != std::string::npos && close != std::string::npos,
              "malformed rules array in decision JSON");

  std::vector<DecisionRule> rules;
  std::size_t pos = open;
  while (true) {
    const std::size_t obj_open = json.find('{', pos);
    if (obj_open == std::string::npos || obj_open > close) break;
    const std::size_t obj_close = json.find('}', obj_open);
    OCB_REQUIRE(obj_close != std::string::npos && obj_close < close,
                "unterminated rule object in decision JSON");
    const std::string obj = json.substr(obj_open, obj_close - obj_open + 1);
    DecisionRule r;
    r.max_lines = static_cast<std::size_t>(get_u64(obj, "max_lines"));
    r.max_parties = static_cast<int>(get_u64(obj, "max_parties"));
    r.max_fault_rate = get_double(obj, "max_fault_rate");
    r.choice.algorithm = get_string(obj, "algorithm");
    r.choice.k = static_cast<int>(get_u64(obj, "k"));
    r.choice.chunk_lines = static_cast<std::size_t>(get_u64(obj, "chunk_lines"));
    r.choice.double_buffering = get_bool(obj, "double_buffering");
    rules.push_back(std::move(r));
    pos = obj_close + 1;
  }
  return DecisionTable(std::move(rules));
}

const DecisionTable& DecisionTable::baked_in() {
  // Anchored to the committed fig8a/fig8b grids: OC-Bcast with the
  // paper's k=7 / 96-line double-buffered chunks is the fastest series at
  // every measured point there, and bench_autotune --cross_validate
  // replays "adaptive" against those records to hold this table to within
  // 5% of the per-point best. With a reported nonzero fault rate the
  // checksummed FT variant with the same shape takes over. The wider
  // design-space sweep (results/autotune_pareto.json, regenerate with
  // bench_autotune --json_out) embeds its own machine-derived table,
  // which explores shapes outside the fig8 series; load one through
  // Params::adaptive_table_json to use it instead.
  static const DecisionTable table({
      DecisionRule{kNoLimit, kNumCores, 0.0, Choice{"ocbcast", 7, 96, true}},
      DecisionRule{kNoLimit, kNumCores, 1.0,
                   Choice{"ft-ocbcast", 7, 96, true}},
  });
  return table;
}

}  // namespace ocb::coll
