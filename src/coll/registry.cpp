#include "coll/registry.h"

#include <algorithm>
#include <map>

#include "common/require.h"
#include "core/binomial.h"
#include "core/ft_ocbcast.h"
#include "core/hier_bcast.h"
#include "core/ocbcast.h"
#include "core/onesided_sag.h"
#include "core/scatter_allgather.h"
#include "scc/chip.h"

namespace ocb::coll {

namespace {

std::map<std::string, Factory>& table() {
  // Builtins are installed on first access rather than from static
  // registrant objects: the registry lives in a static archive, and a
  // registrant-only translation unit would be dropped by the linker.
  static std::map<std::string, Factory> t = [] {
    std::map<std::string, Factory> m;
    m["ocbcast"] = [](scc::SccChip& chip, const Params& p) {
      core::OcBcastOptions o;
      o.parties = p.parties;
      o.k = p.k;
      o.chunk_lines = p.chunk_lines;
      o.double_buffering = p.double_buffering;
      o.leaf_direct_to_memory = p.leaf_direct_to_memory;
      o.sequential_notification = p.sequential_notification;
      o.mpb_base_line = p.mpb_base_line;
      return std::unique_ptr<Collective>(new core::OcBcast(chip, o));
    };
    m["binomial"] = [](scc::SccChip& chip, const Params& p) {
      core::BinomialOptions o;
      o.parties = p.parties;
      return std::unique_ptr<Collective>(new core::BinomialBcast(chip, o));
    };
    m["scatter-allgather"] = [](scc::SccChip& chip, const Params& p) {
      core::ScatterAllgatherOptions o;
      o.parties = p.parties;
      return std::unique_ptr<Collective>(
          new core::ScatterAllgatherBcast(chip, o));
    };
    m["onesided-sag"] = [](scc::SccChip& chip, const Params& p) {
      core::OneSidedSagOptions o;
      o.parties = p.parties;
      o.mpb_base_line = p.mpb_base_line;
      return std::unique_ptr<Collective>(
          new core::OneSidedScatterAllgather(chip, o));
    };
    m["hier-ocbcast"] = [](scc::SccChip& chip, const Params& p) {
      core::HierarchicalBcastOptions o;
      o.parties = p.parties;
      o.k = p.k;
      o.die_k = p.die_k;
      o.chunk_lines = p.chunk_lines;
      o.double_buffering = p.double_buffering;
      o.mpb_base_line = p.mpb_base_line;
      return std::unique_ptr<Collective>(new core::HierarchicalBcast(chip, o));
    };
    m["ft-ocbcast"] = [](scc::SccChip& chip, const Params& p) {
      core::FtOcBcastOptions o;
      o.parties = p.parties;
      o.k = p.k;
      o.chunk_lines = p.chunk_lines;
      o.double_buffering = p.double_buffering;
      o.mpb_base_line = p.mpb_base_line;
      return std::unique_ptr<Collective>(new core::FtOcBcast(chip, o));
    };
    return m;
  }();
  return t;
}

}  // namespace

void register_collective(const std::string& name, Factory factory,
                         bool allow_override) {
  OCB_REQUIRE(!name.empty(), "collective name must be non-empty");
  OCB_REQUIRE(static_cast<bool>(factory), "collective factory must be callable");
  OCB_REQUIRE(allow_override || table().count(name) == 0,
              "duplicate registration of collective '" + name +
                  "' (pass allow_override to replace the existing factory)");
  table()[name] = std::move(factory);
}

bool registered(const std::string& name) { return table().count(name) != 0; }

std::vector<std::string> names() {
  std::vector<std::string> out;
  out.reserve(table().size());
  for (const auto& [name, factory] : table()) out.push_back(name);
  return out;
}

std::unique_ptr<Collective> make(const std::string& name, scc::SccChip& chip,
                                 const Params& params) {
  const auto it = table().find(name);
  if (it == table().end()) {
    std::string msg = "unknown collective '" + name + "'; registered:";
    for (const auto& [registered_name, factory] : table()) {
      msg += ' ';
      msg += registered_name;
    }
    OCB_REQUIRE(false, msg);
  }
  if (params.parties == 0) {  // "all cores of this chip"
    Params resolved = params;
    resolved.parties = chip.topology().num_cores();
    return it->second(chip, resolved);
  }
  return it->second(chip, params);
}

}  // namespace ocb::coll
