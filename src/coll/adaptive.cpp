#include "coll/adaptive.h"

#include <utility>

#include "common/require.h"
#include "mem/mpb.h"
#include "scc/chip.h"

namespace ocb::coll {

AdaptiveBcast::AdaptiveBcast(scc::SccChip& chip, const Params& params,
                             DecisionTable table)
    : chip_(&chip),
      params_(params),
      table_(std::move(table)),
      quiesce_(chip.engine()) {
  OCB_REQUIRE(params_.mpb_base_line == 0,
              "adaptive broadcast owns the whole MPB (mpb_base_line must be "
              "0; it cannot run inside a service slot lease)");
  OCB_REQUIRE(params_.observed_fault_rate >= 0.0 &&
                  params_.observed_fault_rate <= 1.0,
              "observed_fault_rate out of [0,1]");
  chip_->note_dynamic_spawning();
}

sim::Task<void> AdaptiveBcast::run(scc::Core& self, CoreId root,
                                   std::size_t offset, std::size_t bytes) {
  const std::size_t lines = cache_lines_for(bytes);
  const Choice& choice =
      table_.lookup(lines, params_.parties, params_.observed_fault_rate);
  const std::string key = choice.key();

  // Quiesce-and-switch. Flags in the OC-Bcast family are absolute monotone
  // sequence numbers, so a freshly constructed delegate must start from a
  // clean MPB; and a laggard of the previous round may still be inside the
  // old delegate when the first caller of the next round arrives here. The
  // first arriver with nobody in flight scrubs and swaps; everyone else
  // waits for its fire() (or, mid-stream, for the last laggard's).
  while (delegate_key_ != key) {
    if (active_ == 0) {
      for (CoreId c = 0; c < chip_->topology().num_cores(); ++c) {
        chip_->mpb(c).host_clear_lines(0, kMpbCacheLines);
      }
      delegate_ = make(choice.algorithm, *chip_, choice.apply(params_));
      delegate_key_ = key;
      quiesce_.fire();
      break;
    }
    co_await quiesce_.wait();
  }

  if (self.id() == root) selections_.push_back({lines, choice});

  ++active_;
  co_await delegate_->run(self, root, offset, bytes);
  if (--active_ == 0) quiesce_.fire();
}

void register_adaptive() {
  if (registered("adaptive")) return;
  register_collective("adaptive", [](scc::SccChip& chip, const Params& p) {
    DecisionTable table = p.adaptive_table_json.empty()
                              ? DecisionTable::baked_in()
                              : DecisionTable::from_json(p.adaptive_table_json);
    return std::unique_ptr<Collective>(
        new AdaptiveBcast(chip, p, std::move(table)));
  });
}

}  // namespace ocb::coll
