// The collective interface.
//
// MPI-style contract: every participating core calls run() with matching
// arguments (same root, same byte count). For a broadcast the root's
// private memory at [offset, offset+bytes) holds the message and every
// other core's same region receives it; run() returns (per core) when that
// core is done per the algorithm's semantics — the paper's latency is the
// time at which the *last* core returns.
//
// Concrete algorithms (core/) implement this interface and register a
// factory under a string key in coll/registry.h; callers select by name:
//
//   auto bcast = coll::make("ocbcast", chip, {.k = 7});
#pragma once

#include <cstddef>
#include <string>

#include "common/types.h"
#include "sim/task.h"

namespace ocb::scc {
class Core;
}  // namespace ocb::scc

namespace ocb::coll {

class Collective {
 public:
  virtual ~Collective() = default;

  /// Human-readable name ("oc-bcast k=7", "binomial", ...).
  virtual std::string name() const = 0;

  /// Number of participating cores (ids 0..parties-1).
  virtual int parties() const = 0;

  /// The collective call; invoke once per participating core per round.
  virtual sim::Task<void> run(scc::Core& self, CoreId root, std::size_t offset,
                              std::size_t bytes) = 0;
};

}  // namespace ocb::coll
