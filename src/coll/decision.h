// Decision tables: the online half of the design-space autotuner.
//
// A DecisionTable maps a broadcast call's observable context — message size
// in cache lines, party count, and the caller's observed fault rate — to a
// concrete algorithm Choice (registry name + the tuning knobs the offline
// explorer found best there). Tables are ordered band lists with
// first-match-wins semantics, serialize to versioned JSON
// ("ocb-tune-decision-v1"), and ship with a baked-in default derived by
// tune::Explorer from the committed sweep (results/autotune_pareto.json,
// DESIGN.md §13). coll::AdaptiveBcast consults one per run() call.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "coll/registry.h"

namespace ocb::coll {

/// A concrete algorithm choice: registry name plus the tuning knobs a
/// decision table pins. Everything else (parties, mpb_base_line, ...)
/// comes from the caller's Params via apply().
struct Choice {
  std::string algorithm = "ocbcast";
  int k = 7;
  std::size_t chunk_lines = 96;
  bool double_buffering = true;

  /// The caller's Params with this choice's knobs substituted in.
  Params apply(Params base) const;

  /// Stable identity string ("ocbcast/k7/c96/db1") — delegate cache key.
  std::string key() const;
};

/// One band of the decision space. A rule matches a query when
///   lines <= max_lines && parties <= max_parties &&
///   fault_rate <= max_fault_rate;
/// rules are evaluated in order, first match wins. Zero-fault size bands
/// come first (max_fault_rate == 0 never matches a faulty query), the
/// fault-tolerant bands after them, and the final rule must be a catch-all
/// so every query resolves.
struct DecisionRule {
  std::size_t max_lines = static_cast<std::size_t>(-1);
  int max_parties = kNumCores;
  double max_fault_rate = 0.0;
  Choice choice;
};

class DecisionTable {
 public:
  /// Requires a non-empty rule list whose last rule is a catch-all
  /// (max_lines == SIZE_MAX, max_parties >= kNumCores,
  /// max_fault_rate >= 1).
  explicit DecisionTable(std::vector<DecisionRule> rules);

  const std::vector<DecisionRule>& rules() const { return rules_; }

  /// First matching rule's choice; total by the catch-all invariant.
  const Choice& lookup(std::size_t lines, int parties,
                       double fault_rate) const;

  /// Versioned JSON record ("ocb-tune-decision-v1"); from_json parses
  /// exactly this format back (round-trip identity is tested).
  std::string to_json() const;
  static DecisionTable from_json(const std::string& json);

  /// The shipped default, derived offline by tune::Explorer from the
  /// committed design-space sweep: OC-Bcast k=7 (96-line double-buffered
  /// chunks) wins every zero-fault band of the fig8 grids, FT-OC-Bcast
  /// k=7 takes over as soon as the caller reports a nonzero fault rate.
  static const DecisionTable& baked_in();

 private:
  std::vector<DecisionRule> rules_;
};

}  // namespace ocb::coll
