// String-keyed collective registry.
//
// Decouples algorithm selection from the concrete classes: harnesses,
// examples, and benches name an algorithm ("ocbcast", "binomial", ...) and
// a Params bundle; the registry owns the wiring to the implementation's
// option struct. The shipped algorithms register themselves on first use
// (no static-initializer registrants — those get dead-stripped from static
// archives); projects can add their own with register_collective, which is
// how test-only variants (e.g. the deliberately racy mutation in
// tests/check_test.cpp) slot into name-driven harness grids.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "coll/collective.h"

namespace ocb::scc {
class SccChip;
}  // namespace ocb::scc

namespace ocb::coll {

/// Algorithm-agnostic tuning bundle; each factory picks what it honors.
struct Params {
  /// Participating cores 0..parties-1. The default is the SCC's 48; pass 0
  /// for "all cores of the chip" (make() resolves it from the chip's
  /// topology), or any explicit count up to chip.topology().num_cores().
  int parties = kNumCores;
  /// Tree fan-out (OC-Bcast family).
  int k = 7;
  /// Fan-out of the relay tree over die leaders ("hier-ocbcast" only).
  int die_k = 4;
  std::size_t chunk_lines = 96;
  bool double_buffering = true;
  bool leaf_direct_to_memory = false;
  bool sequential_notification = false;
  /// First MPB line of the instance's layout. The broadcast service leases
  /// disjoint line ranges (mem/mpb_slots.h) so concurrent collectives never
  /// overlap buffers; honored by "ocbcast", "ft-ocbcast", "onesided-sag".
  std::size_t mpb_base_line = 0;
  /// Caller-observed fault rate in [0,1]; "adaptive" uses it as the
  /// decision-table fault coordinate (0 = trust the fault-free bands).
  double observed_fault_rate = 0.0;
  /// Inline "ocb-tune-decision-v1" JSON overriding the baked-in decision
  /// table; empty selects DecisionTable::baked_in(). Only "adaptive" reads
  /// it (see coll/adaptive.h).
  std::string adaptive_table_json{};
};

using Factory =
    std::function<std::unique_ptr<Collective>(scc::SccChip&, const Params&)>;

/// Registers a factory under `name`. Registering a name that already
/// resolves (builtin or runtime) is a precondition error naming the
/// colliding algorithm — a silent last-wins overwrite once cost a test its
/// control arm — unless `allow_override` is passed, which documents the
/// intent to replace the existing factory (e.g. re-registering "adaptive"
/// with a freshly tuned decision table).
void register_collective(const std::string& name, Factory factory,
                         bool allow_override = false);

/// True when `name` resolves (builtin or registered).
bool registered(const std::string& name);

/// Registered names, sorted; builtins are "ocbcast", "binomial",
/// "scatter-allgather", "onesided-sag", "ft-ocbcast", "hier-ocbcast".
std::vector<std::string> names();

/// Instantiates `name` over `chip`. Algorithms own their MPB layout and
/// protocol state starting at params.mpb_base_line; instances with
/// overlapping line ranges must not run concurrently (the broadcast
/// service guarantees disjoint ranges via MPB slot leases). Throws
/// ocb::PreconditionError naming the registered algorithms on an unknown
/// name.
std::unique_ptr<Collective> make(const std::string& name, scc::SccChip& chip,
                                 const Params& params = {});

}  // namespace ocb::coll
