// Table 2 — *modeled* peak broadcast throughput: OC-Bcast with k = 2/7/47
// (reconstructed complete model, 1 MiB message) and two-sided
// scatter-allgather (Formula 16), beside the paper's published numbers
// (35.22 / 34.30 / 35.88 / 13.38 MB/s). Formula 15's k-independent bound
// is printed for reference.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/format.h"

#include "harness/paper_data.h"
#include "harness/report.h"
#include "model/broadcast_model.h"

namespace {

using namespace ocb;

const model::BroadcastModel& the_model() {
  static const model::BroadcastModel m(model::ModelParams::paper(), {});
  return m;
}

double value_for(int row) {
  // rows 0..2: OC k=2/7/47; row 3: scatter-allgather (Formula 16).
  constexpr int kFanouts[] = {2, 7, 47};
  if (row < 3) return the_model().ocbcast_throughput_mbps(kFanouts[row]);
  return the_model().formula16_throughput_mbps();
}

void bench_row(benchmark::State& state) {
  const int row = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const double mbps = value_for(row);
    // Report the modeled time to broadcast 1 MB at that throughput.
    state.SetIterationTime(1.0 / mbps);
    state.counters["model_mbps"] = mbps;
  }
  constexpr const char* kNames[] = {"oc k=2", "oc k=7", "oc k=47", "s-ag"};
  state.SetLabel(kNames[row]);
}

void print_table() {
  using harness::paper::table2_oc_mbps;
  std::vector<harness::ComparisonRow> rows{
      {"OC-Bcast k=2", table2_oc_mbps(2), value_for(0), "MB/s"},
      {"OC-Bcast k=7", table2_oc_mbps(7), value_for(1), "MB/s"},
      {"OC-Bcast k=47", table2_oc_mbps(47), value_for(2), "MB/s"},
      {"scatter-allgather", harness::paper::kTable2ScatterAllgatherMbps,
       value_for(3), "MB/s"},
  };
  std::printf("\n=== Table 2: modeled peak broadcast throughput ===\n%s",
              harness::render_comparison(rows).c_str());
  std::printf("Formula 15 bound (k-independent): %.2f MB/s\n",
              the_model().formula15_throughput_mbps());
  std::printf("OC-Bcast / scatter-allgather ratio: %.2f (paper: almost 3x)\n",
              value_for(1) / value_for(3));
  std::vector<std::vector<std::string>> csv;
  for (const auto& r : rows) {
    csv.push_back({r.quantity, fmt_fixed(r.paper_value, 2),
                   fmt_fixed(r.measured_value, 2)});
  }
  write_csv(harness::results_dir() + "/table2_model_throughput.csv",
            {"algorithm", "paper_mbps", "model_mbps"}, csv);
}

}  // namespace

int main(int argc, char** argv) {
  for (int row = 0; row < 4; ++row) {
    benchmark::RegisterBenchmark("table2/model_throughput", &bench_row)
        ->Args({row})
        ->UseManualTime()
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_table();
  return 0;
}
