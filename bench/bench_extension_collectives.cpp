// Extension benches — the collectives built beyond the paper, quantifying
// its two forward-looking remarks:
//
//  §5.4  "adapting the two-sided scatter-allgather algorithm to use the
//         one-sided primitives": os-sag vs s-ag vs OC-Bcast, latency and
//         peak throughput;
//
//  §7    "extend our approach to other collective operations": OC-Reduce
//         fan-out sweep (a parent ingests k chunks per chunk it emits, so
//         reduction prefers SMALL k — the mirror of broadcast), and
//         OC-Allreduce against a flat gather-based reduction.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <map>

#include "common/format.h"
#include "core/ocreduce.h"
#include "harness/report.h"
#include "harness/sweep.h"
#include "mpi/communicator.h"
#include "sim/condition.h"

namespace {

using namespace ocb;

// --- broadcast family: os-sag vs baselines -------------------------------

const harness::BcastRunResult& bcast_result(core::BcastKind kind, std::size_t lines) {
  static std::map<std::pair<int, std::size_t>, harness::BcastRunResult> cache;
  const auto key = std::make_pair(static_cast<int>(kind), lines);
  auto it = cache.find(key);
  if (it == cache.end()) {
    harness::BcastRunSpec spec;
    spec.algorithm.kind = kind;
    spec.message_bytes = lines * kCacheLineBytes;
    spec.iterations = harness::default_iterations(lines);
    it = cache.emplace(key, run_broadcast(spec)).first;
  }
  return it->second;
}

// --- reduction family ------------------------------------------------------

struct ReduceMetrics {
  double small_latency_us = 0.0;  // 16 doubles
  double large_latency_us = 0.0;  // 16384 doubles
  double throughput_mbps = 0.0;   // large / latency
};

const ReduceMetrics& reduce_metrics(int k) {
  static std::map<int, ReduceMetrics> cache;
  auto it = cache.find(k);
  if (it != cache.end()) return it->second;

  auto run_once = [k](std::size_t count) {
    scc::SccChip chip;
    core::OcReduceOptions opt;
    opt.k = k;
    core::OcReduce reduce(chip, opt);
    for (CoreId c = 0; c < kNumCores; ++c) {
      auto w = chip.memory(c).host_bytes(0, count * sizeof(double));
      for (std::size_t i = 0; i < count; ++i) {
        const double v = static_cast<double>((c + i) % 97);
        std::memcpy(w.data() + i * sizeof(double), &v, sizeof v);
      }
    }
    sim::Rendezvous sync(chip.engine(), kNumCores);
    sim::Time start = 0, last = 0;
    for (CoreId c = 0; c < kNumCores; ++c) {
      chip.spawn(c, [&, count](scc::Core& me) -> sim::Task<void> {
        for (int warm = 0; warm < 3; ++warm) {
          co_await sync.arrive();
          if (warm == 2) start = me.now();
          co_await reduce.run(me, 0, 0, 1 << 20, count, core::ReduceOp::kSum);
          if (warm == 2) last = std::max(last, me.now());
        }
      });
    }
    OCB_ENSURE(chip.run().completed(), "reduce bench stalled");
    return sim::to_us(last - start);
  };
  ReduceMetrics m;
  m.small_latency_us = run_once(16);
  m.large_latency_us = run_once(16384);
  m.throughput_mbps = 16384.0 * sizeof(double) / m.large_latency_us;
  return cache.emplace(k, m).first->second;
}

struct AllreduceComparison {
  double oc_us = 0.0;    // OC-Allreduce (tree reduce + OC-Bcast)
  double flat_us = 0.0;  // flat gather-based reduce_sum + bcast (mpi facade)
};

const AllreduceComparison& allreduce_comparison() {
  static AllreduceComparison result = [] {
    constexpr std::size_t kCount = 4096;
    AllreduceComparison out;
    {
      scc::SccChip chip;
      core::OcAllreduce allreduce(chip);
      for (CoreId c = 0; c < kNumCores; ++c) {
        chip.memory(c).host_bytes(0, kCount * sizeof(double));
      }
      sim::Time last = 0;
      for (CoreId c = 0; c < kNumCores; ++c) {
        chip.spawn(c, [&](scc::Core& me) -> sim::Task<void> {
          co_await allreduce.run(me, 0, 1 << 20, kCount, core::ReduceOp::kSum);
          last = std::max(last, me.now());
        });
      }
      OCB_ENSURE(chip.run().completed(), "oc-allreduce stalled");
      out.oc_us = sim::to_us(last);
    }
    {
      scc::SccChip chip;
      mpi::Communicator comm(chip);
      for (CoreId c = 0; c < kNumCores; ++c) {
        chip.memory(c).host_bytes(0, kCount * sizeof(double));
      }
      sim::Time last = 0;
      for (CoreId c = 0; c < kNumCores; ++c) {
        chip.spawn(c, [&](scc::Core& me) -> sim::Task<void> {
          co_await comm.reduce_sum(me, 0, 0, kCount, 1 << 20);
          co_await comm.bcast(me, 0, 0, kCount * sizeof(double));
          last = std::max(last, me.now());
        });
      }
      OCB_ENSURE(chip.run().completed(), "flat allreduce stalled");
      out.flat_us = sim::to_us(last);
    }
    return out;
  }();
  return result;
}

// --- benchmark registrations -------------------------------------------------

void bench_bcast_family(benchmark::State& state) {
  const auto kind = static_cast<core::BcastKind>(state.range(0));
  const auto lines = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    const auto& r = bcast_result(kind, lines);
    state.SetIterationTime(r.latency_us.mean() * 1e-6);
    state.counters["throughput_mbps"] = r.throughput_mbps;
  }
}

void bench_reduce_fanout(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const ReduceMetrics& m = reduce_metrics(k);
    state.SetIterationTime(m.large_latency_us * 1e-6);
    state.counters["small_us"] = m.small_latency_us;
    state.counters["tput_mbps"] = m.throughput_mbps;
  }
}

void print_tables() {
  {
    TextTable table({"algorithm", "latency_96CL_us", "peak_MBps_8192CL"});
    std::vector<std::vector<std::string>> csv;
    for (auto [kind, name] :
         {std::pair{core::BcastKind::kOcBcast, "oc-bcast k=7"},
          std::pair{core::BcastKind::kScatterAllgather, "two-sided s-ag"},
          std::pair{core::BcastKind::kOneSidedScatterAllgather, "one-sided s-ag"}}) {
      const double lat = bcast_result(kind, 96).latency_us.mean();
      const double peak = bcast_result(kind, 8192).throughput_mbps;
      table.add_row({name, fmt_fixed(lat, 2), fmt_fixed(peak, 2)});
      csv.push_back({name, fmt_fixed(lat, 4), fmt_fixed(peak, 4)});
    }
    std::printf("\n=== §5.4 extension: one-sided scatter-allgather ===\n%s",
                table.str().c_str());
    write_csv(harness::results_dir() + "/extension_ossag.csv",
              {"algorithm", "latency_96cl_us", "peak_mbps"}, csv);
  }
  {
    TextTable table({"k", "latency_16_doubles_us", "latency_16k_doubles_us",
                     "throughput_MBps"});
    std::vector<std::vector<std::string>> csv;
    for (int k : {1, 2, 3, 5, 7, 16, 47}) {
      const ReduceMetrics& m = reduce_metrics(k);
      table.add_row({std::to_string(k), fmt_fixed(m.small_latency_us, 2),
                     fmt_fixed(m.large_latency_us, 2),
                     fmt_fixed(m.throughput_mbps, 2)});
      csv.push_back({std::to_string(k), fmt_fixed(m.small_latency_us, 4),
                     fmt_fixed(m.large_latency_us, 4),
                     fmt_fixed(m.throughput_mbps, 4)});
    }
    std::printf("\n=== OC-Reduce fan-out sweep (sum of doubles, 48 cores) ===\n%s",
                table.str().c_str());
    std::printf("(broadcast's best latency k is 7; reduction pays k chunk\n"
                " ingests per chunk emitted, so its optimum sits lower)\n");
    write_csv(harness::results_dir() + "/extension_reduce.csv",
              {"k", "lat16_us", "lat16384_us", "tput_mbps"}, csv);
  }
  {
    const AllreduceComparison& c = allreduce_comparison();
    std::printf("\n=== OC-Allreduce vs flat gather-based allreduce (4096 doubles) ===\n");
    std::printf("  OC-Allreduce (tree reduce + OC-Bcast): %10.2f us\n", c.oc_us);
    std::printf("  flat gather + OC-Bcast (mpi facade):   %10.2f us\n", c.flat_us);
    std::printf("  speedup: %.2fx\n", c.flat_us / c.oc_us);
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (auto kind : {core::BcastKind::kOcBcast, core::BcastKind::kScatterAllgather,
                    core::BcastKind::kOneSidedScatterAllgather}) {
    for (long lines : {96L, 8192L}) {
      benchmark::RegisterBenchmark("extension/bcast_family", &bench_bcast_family)
          ->Args({static_cast<long>(kind), lines})
          ->UseManualTime()
          ->Iterations(1);
    }
  }
  for (int k : {1, 2, 7, 47}) {
    benchmark::RegisterBenchmark("extension/reduce_fanout", &bench_reduce_fanout)
        ->Args({k})
        ->UseManualTime()
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_tables();
  return 0;
}
