// What-if scaling — probing the paper's conclusion that "collective
// operations for message-passing many-core chips should be based on
// one-sided communication ... to take full advantage of hardware features
// of future many-core architectures".
//
// Each scenario rescales one part of the machine (cores, mesh, memory, or
// all) and re-runs the OC-Bcast / binomial / scatter-allgather comparison.
// The interesting question is where the OC advantage comes from: if it
// were a software-overhead artifact it would shrink with faster cores; if
// it is the off-chip-movement argument the paper makes (Formula 13 vs
// 14), it should *grow* when cores and mesh outpace memory — the expected
// trajectory of real many-cores.
// A second axis probes GEOMETRY instead of clocks: the same comparison on
// chips the SCC never was — {48, 256, 1024} cores as one die or as a 2x2
// grid of dies behind interposer links (noc::Topology). There the question
// is whether a topology-aware tree (hier-ocbcast: die-local OC-Bcast under
// an inter-die leader relay) buys back what the interposer toll costs a
// placement-oblivious tree. Results land in results/whatif_topology.json;
// `--topology=mesh:16x16` (any Topology::parse spelling) runs the
// comparison on one custom chip and exits.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/format.h"
#include "harness/parallel.h"
#include "harness/report.h"
#include "harness/sweep.h"
#include "noc/topology.h"

namespace {

using namespace ocb;

struct Scenario {
  const char* name;
  double core, mesh, mem;
};

constexpr Scenario kScenarios[] = {
    {"baseline (SCC 533/800)", 1, 1, 1},
    {"2x cores", 2, 1, 1},
    {"2x mesh", 1, 2, 1},
    {"2x memory", 1, 1, 2},
    {"2x everything", 2, 2, 2},
    {"future: 4x cores+mesh, memory lags", 4, 4, 1.5},
};

struct Row {
  double oc_latency_us = 0.0;   // 96 lines
  double oc_peak = 0.0;         // 8192 lines, MB/s
  double binomial_latency_us = 0.0;
  double sag_peak = 0.0;
  bool ok = true;
};

Row compute_row(std::size_t scenario) {
  const Scenario& s = kScenarios[scenario];
  const scc::SccConfig cfg = scc::SccConfig{}.scaled(s.core, s.mesh, s.mem);
  Row row;
  auto run = [&](core::BcastKind kind, std::size_t lines) {
    harness::BcastRunSpec spec;
    spec.algorithm.kind = kind;
    spec.config = cfg;
    spec.message_bytes = lines * kCacheLineBytes;
    spec.iterations = harness::default_iterations(lines);
    const harness::BcastRunResult r = run_broadcast(spec);
    row.ok = row.ok && r.content_ok;
    return r;
  };
  row.oc_latency_us = run(core::BcastKind::kOcBcast, 96).latency_us.mean();
  row.oc_peak = run(core::BcastKind::kOcBcast, 8192).throughput_mbps;
  row.binomial_latency_us =
      run(core::BcastKind::kBinomial, 96).latency_us.mean();
  row.sag_peak = run(core::BcastKind::kScatterAllgather, 8192).throughput_mbps;
  return row;
}

// Scenarios are independent chips: precomputed in parallel from main().
std::vector<Row> g_rows;

const Row& row_for(int scenario) { return g_rows[static_cast<std::size_t>(scenario)]; }

void bench_scenario(benchmark::State& state) {
  const int s = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const Row& r = row_for(s);
    state.SetIterationTime(r.oc_latency_us * 1e-6);
    state.counters["oc_peak_mbps"] = r.oc_peak;
    state.counters["sag_peak_mbps"] = r.sag_peak;
    state.counters["peak_ratio"] = r.oc_peak / r.sag_peak;
  }
  state.SetLabel(kScenarios[state.range(0)].name);
}

void print_table() {
  TextTable table({"scenario", "oc_lat96_us", "bin_lat96_us", "lat_gain",
                   "oc_peak_MBps", "sag_peak_MBps", "peak_ratio", "ok"});
  std::vector<std::vector<std::string>> csv;
  for (int s = 0; s < static_cast<int>(std::size(kScenarios)); ++s) {
    const Row& r = row_for(s);
    table.add_row({kScenarios[s].name, fmt_fixed(r.oc_latency_us, 1),
                   fmt_fixed(r.binomial_latency_us, 1),
                   fmt_fixed(1.0 - r.oc_latency_us / r.binomial_latency_us, 2),
                   fmt_fixed(r.oc_peak, 2), fmt_fixed(r.sag_peak, 2),
                   fmt_fixed(r.oc_peak / r.sag_peak, 2), r.ok ? "yes" : "NO"});
    csv.push_back({kScenarios[s].name, fmt_fixed(r.oc_latency_us, 3),
                   fmt_fixed(r.binomial_latency_us, 3), fmt_fixed(r.oc_peak, 3),
                   fmt_fixed(r.sag_peak, 3)});
  }
  std::printf("\n=== What-if scaling: where does the OC advantage come from? ===\n%s",
              table.str().c_str());
  std::printf("\nReading: the peak ratio holds (or grows) as cores and mesh\n"
              "outpace memory, because OC-Bcast's advantage is its lower count\n"
              "of off-chip movements on the critical path (Formula 13 vs 14/16)\n"
              "- the paper's thesis about future many-core chips.\n");
  write_csv(harness::results_dir() + "/whatif_scaling.csv",
            {"scenario", "oc_lat96_us", "bin_lat96_us", "oc_peak", "sag_peak"},
            csv);
}

// --- topology sweep: cores x dies ------------------------------------------

struct TopoPoint {
  const char* label;
  const char* spec;  ///< Topology::parse spelling
};

// {48, 256, 1024} cores, each as one die and as a 2x2 die grid (cores per
// tile stays 2, so the per-die mesh shrinks as the die count grows).
constexpr TopoPoint kTopoPoints[] = {
    {"48c-1die", "scc"},
    {"48c-4die", "dies:2x2:mesh:3x2"},
    {"256c-1die", "mesh:16x8"},
    {"256c-4die", "dies:2x2:mesh:8x4"},
    {"1024c-1die", "mesh:32x16"},
    {"1024c-4die", "dies:2x2:mesh:16x8"},
};

struct TopoAlgoResult {
  std::string algorithm;
  double latency_us = 0.0;       // 96 lines
  double peak_mbps = 0.0;        // 2048 lines
  bool ok = true;
};

struct TopoRow {
  std::string label;
  std::string spec;
  std::string describe;
  int cores = 0;
  int dies = 0;
  std::vector<TopoAlgoResult> algos;
};

TopoRow compute_topo_row(const std::string& label, const std::string& spec) {
  const noc::Topology topo = noc::Topology::parse(spec);
  TopoRow row;
  row.label = label;
  row.spec = spec;
  row.describe = topo.describe();
  row.cores = topo.num_cores();
  row.dies = topo.num_dies();
  for (const char* algo : {"ocbcast", "hier-ocbcast"}) {
    TopoAlgoResult res;
    res.algorithm = algo;
    auto run = [&](std::size_t lines) {
      harness::BcastRunSpec s;
      s.algorithm_name = algo;
      s.params.parties = 0;  // every core of the chip
      s.config.topology = topo;
      s.message_bytes = lines * kCacheLineBytes;
      s.iterations = 3;
      s.warmup = 1;
      const harness::BcastRunResult r = run_broadcast(s);
      res.ok = res.ok && r.content_ok;
      return r;
    };
    res.latency_us = run(96).latency_us.mean();
    res.peak_mbps = run(2048).throughput_mbps;
    row.algos.push_back(std::move(res));
  }
  return row;
}

std::vector<TopoRow> g_topo_rows;

void print_topo_table(const std::vector<TopoRow>& rows,
                      const std::string& json_path) {
  TextTable table({"topology", "cores", "dies", "oc_lat96_us", "hier_lat96_us",
                   "lat_gain", "oc_peak_MBps", "hier_peak_MBps", "ok"});
  std::ostringstream json;
  json << "{\n  \"schema\": \"ocb-whatif-topology-v1\",\n  \"points\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const TopoRow& r = rows[i];
    const TopoAlgoResult& oc = r.algos[0];
    const TopoAlgoResult& hier = r.algos[1];
    table.add_row({r.describe, fmt_fixed(r.cores, 0), fmt_fixed(r.dies, 0),
                   fmt_fixed(oc.latency_us, 1), fmt_fixed(hier.latency_us, 1),
                   fmt_fixed(1.0 - hier.latency_us / oc.latency_us, 2),
                   fmt_fixed(oc.peak_mbps, 1), fmt_fixed(hier.peak_mbps, 1),
                   oc.ok && hier.ok ? "yes" : "NO"});
    json << "    {\"label\": \"" << r.label << "\", \"spec\": \"" << r.spec
         << "\", \"topology\": \"" << r.describe << "\", \"cores\": " << r.cores
         << ", \"dies\": " << r.dies << ", \"algorithms\": [\n";
    for (std::size_t a = 0; a < r.algos.size(); ++a) {
      const TopoAlgoResult& res = r.algos[a];
      json << "      {\"name\": \"" << res.algorithm
           << "\", \"latency96_us\": " << fmt_fixed(res.latency_us, 3)
           << ", \"peak_mbps\": " << fmt_fixed(res.peak_mbps, 3)
           << ", \"content_ok\": " << (res.ok ? "true" : "false") << "}"
           << (a + 1 < r.algos.size() ? ",\n" : "\n");
    }
    json << "    ]}" << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  json << "  ]\n}\n";
  std::printf("\n=== What-if topology: flat vs hierarchical broadcast ===\n%s",
              table.str().c_str());
  std::printf("\nReading: on one die the two trees are near-equivalent (the\n"
              "hierarchy only drops the binary in-group notification); once\n"
              "dies split the mesh, every placement-oblivious parent/child\n"
              "edge risks the interposer toll while hier-ocbcast pays it once\n"
              "per (die, chunk) on the leader relay.\n");
  if (!json_path.empty()) {
    std::ofstream file(json_path);
    if (file) {
      file << json.str();
      std::printf("wrote %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
    }
  }
}

int topology_flag_mode(const std::string& spec) {
  g_topo_rows.push_back(compute_topo_row(spec, spec));
  print_topo_table(g_topo_rows, /*json_path=*/"");
  return g_topo_rows.back().algos[0].ok && g_topo_rows.back().algos[1].ok ? 0
                                                                          : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--topology=", 0) == 0) {
      return topology_flag_mode(arg.substr(std::string("--topology=").size()));
    }
  }
  g_rows = harness::parallel_map(std::size(kScenarios), compute_row);
  g_topo_rows = harness::parallel_map(
      std::size(kTopoPoints), [](std::size_t i) {
        return compute_topo_row(kTopoPoints[i].label, kTopoPoints[i].spec);
      });
  for (int s = 0; s < static_cast<int>(std::size(kScenarios)); ++s) {
    benchmark::RegisterBenchmark("whatif/scaling", &bench_scenario)
        ->Args({s})
        ->UseManualTime()
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_table();
  print_topo_table(g_topo_rows,
                   harness::results_dir() + "/whatif_topology.json");
  return 0;
}
