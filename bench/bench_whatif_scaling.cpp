// What-if scaling — probing the paper's conclusion that "collective
// operations for message-passing many-core chips should be based on
// one-sided communication ... to take full advantage of hardware features
// of future many-core architectures".
//
// Each scenario rescales one part of the machine (cores, mesh, memory, or
// all) and re-runs the OC-Bcast / binomial / scatter-allgather comparison.
// The interesting question is where the OC advantage comes from: if it
// were a software-overhead artifact it would shrink with faster cores; if
// it is the off-chip-movement argument the paper makes (Formula 13 vs
// 14), it should *grow* when cores and mesh outpace memory — the expected
// trajectory of real many-cores.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "common/format.h"
#include "harness/parallel.h"
#include "harness/report.h"
#include "harness/sweep.h"

namespace {

using namespace ocb;

struct Scenario {
  const char* name;
  double core, mesh, mem;
};

constexpr Scenario kScenarios[] = {
    {"baseline (SCC 533/800)", 1, 1, 1},
    {"2x cores", 2, 1, 1},
    {"2x mesh", 1, 2, 1},
    {"2x memory", 1, 1, 2},
    {"2x everything", 2, 2, 2},
    {"future: 4x cores+mesh, memory lags", 4, 4, 1.5},
};

struct Row {
  double oc_latency_us = 0.0;   // 96 lines
  double oc_peak = 0.0;         // 8192 lines, MB/s
  double binomial_latency_us = 0.0;
  double sag_peak = 0.0;
  bool ok = true;
};

Row compute_row(std::size_t scenario) {
  const Scenario& s = kScenarios[scenario];
  const scc::SccConfig cfg = scc::SccConfig{}.scaled(s.core, s.mesh, s.mem);
  Row row;
  auto run = [&](core::BcastKind kind, std::size_t lines) {
    harness::BcastRunSpec spec;
    spec.algorithm.kind = kind;
    spec.config = cfg;
    spec.message_bytes = lines * kCacheLineBytes;
    spec.iterations = harness::default_iterations(lines);
    const harness::BcastRunResult r = run_broadcast(spec);
    row.ok = row.ok && r.content_ok;
    return r;
  };
  row.oc_latency_us = run(core::BcastKind::kOcBcast, 96).latency_us.mean();
  row.oc_peak = run(core::BcastKind::kOcBcast, 8192).throughput_mbps;
  row.binomial_latency_us =
      run(core::BcastKind::kBinomial, 96).latency_us.mean();
  row.sag_peak = run(core::BcastKind::kScatterAllgather, 8192).throughput_mbps;
  return row;
}

// Scenarios are independent chips: precomputed in parallel from main().
std::vector<Row> g_rows;

const Row& row_for(int scenario) { return g_rows[static_cast<std::size_t>(scenario)]; }

void bench_scenario(benchmark::State& state) {
  const int s = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const Row& r = row_for(s);
    state.SetIterationTime(r.oc_latency_us * 1e-6);
    state.counters["oc_peak_mbps"] = r.oc_peak;
    state.counters["sag_peak_mbps"] = r.sag_peak;
    state.counters["peak_ratio"] = r.oc_peak / r.sag_peak;
  }
  state.SetLabel(kScenarios[state.range(0)].name);
}

void print_table() {
  TextTable table({"scenario", "oc_lat96_us", "bin_lat96_us", "lat_gain",
                   "oc_peak_MBps", "sag_peak_MBps", "peak_ratio", "ok"});
  std::vector<std::vector<std::string>> csv;
  for (int s = 0; s < static_cast<int>(std::size(kScenarios)); ++s) {
    const Row& r = row_for(s);
    table.add_row({kScenarios[s].name, fmt_fixed(r.oc_latency_us, 1),
                   fmt_fixed(r.binomial_latency_us, 1),
                   fmt_fixed(1.0 - r.oc_latency_us / r.binomial_latency_us, 2),
                   fmt_fixed(r.oc_peak, 2), fmt_fixed(r.sag_peak, 2),
                   fmt_fixed(r.oc_peak / r.sag_peak, 2), r.ok ? "yes" : "NO"});
    csv.push_back({kScenarios[s].name, fmt_fixed(r.oc_latency_us, 3),
                   fmt_fixed(r.binomial_latency_us, 3), fmt_fixed(r.oc_peak, 3),
                   fmt_fixed(r.sag_peak, 3)});
  }
  std::printf("\n=== What-if scaling: where does the OC advantage come from? ===\n%s",
              table.str().c_str());
  std::printf("\nReading: the peak ratio holds (or grows) as cores and mesh\n"
              "outpace memory, because OC-Bcast's advantage is its lower count\n"
              "of off-chip movements on the critical path (Formula 13 vs 14/16)\n"
              "- the paper's thesis about future many-core chips.\n");
  write_csv(harness::results_dir() + "/whatif_scaling.csv",
            {"scenario", "oc_lat96_us", "bin_lat96_us", "oc_peak", "sag_peak"},
            csv);
}

}  // namespace

int main(int argc, char** argv) {
  g_rows = harness::parallel_map(std::size(kScenarios), compute_row);
  for (int s = 0; s < static_cast<int>(std::size(kScenarios)); ++s) {
    benchmark::RegisterBenchmark("whatif/scaling", &bench_scenario)
        ->Args({s})
        ->UseManualTime()
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_table();
  return 0;
}
