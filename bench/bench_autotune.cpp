// Design-space autotuner driver (tune::Explorer + coll::AdaptiveBcast).
//
// Modes:
//  * --smoke            tiny grid; gates that every point verifies, the
//                       derived decision table round-trips through JSON,
//                       and "adaptive" lands within 5% of the per-size
//                       grid best. Wired as the autotune-smoke ctest.
//  * --json_out=PATH    the committed design-space sweep: every registered
//                       protocol x fan-out {2,7,47} x chunk {48,96} x
//                       single/double buffering at six message sizes, with
//                       a 2% MPB-read fault-injection pass on the small
//                       sizes. Writes the versioned ocb-tune-pareto-v1
//                       record (results/autotune_pareto.json).
//  * --cross_validate   replays "adaptive" against the committed fig8a /
//                       fig8b grids and fails unless it is within 5% of
//                       the per-point best series on >= 90% of points.
//                       Paths default to results/fig8a_latency.json and
//                       results/fig8b_throughput.json; override with
//                       --fig8a=PATH / --fig8b=PATH.
//
// With no mode flag, runs the smoke grid and prints the report without
// gating (a quick human-readable look at the design space).
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "coll/adaptive.h"
#include "coll/decision.h"
#include "common/format.h"
#include "harness/measurement.h"
#include "harness/report.h"
#include "harness/sweep.h"
#include "tune/explorer.h"

namespace {

using namespace ocb;

// ---------------------------------------------------------------------------
// Smoke / default mode
// ---------------------------------------------------------------------------

tune::ExplorerOptions smoke_grid() {
  tune::ExplorerOptions o;
  o.algorithms = {"ocbcast", "binomial"};
  o.sizes_lines = {1, 96};
  o.fanouts = {2, 7};
  o.chunk_grid = {96};
  o.buffering_grid = {true};
  o.iterations = 2;
  return o;
}

double adaptive_latency_us(const std::string& table_json, std::size_t lines,
                           int iterations) {
  coll::register_adaptive();
  harness::BcastRunSpec spec;
  spec.algorithm_name = "adaptive";
  spec.params.adaptive_table_json = table_json;
  spec.message_bytes = lines * kCacheLineBytes;
  spec.iterations = iterations;
  const harness::BcastRunResult r = harness::run_broadcast(spec);
  if (!r.content_ok) return -1.0;
  return r.latency_us.mean();
}

int smoke_mode(bool gate) {
  const tune::ExplorerOptions options = smoke_grid();
  const tune::ExploreResult result = tune::explore(options);
  std::printf("%s", tune::render_report(result).c_str());
  if (!gate) return 0;

  int failures = 0;
  for (const tune::PointResult& r : result.points) {
    if (!r.content_ok) {
      std::printf("FAIL: %s did not verify\n", r.point.label().c_str());
      ++failures;
    }
  }

  const coll::DecisionTable table = tune::derive_table(result);
  const std::string json = table.to_json();
  const coll::DecisionTable back = coll::DecisionTable::from_json(json);
  if (back.to_json() != json) {
    std::printf("FAIL: decision table does not round-trip through JSON\n");
    ++failures;
  }

  // "adaptive" loaded with the derived table must match the per-size grid
  // best within 5% (deterministic simulator: the delegate's latency is
  // bit-identical to the winning grid point's).
  for (const std::size_t lines : options.sizes_lines) {
    double best = -1.0;
    for (const tune::PointResult& r : result.points) {
      if (!r.content_ok || r.point.lines != lines) continue;
      if (best < 0.0 || r.latency_us < best) best = r.latency_us;
    }
    const double got = adaptive_latency_us(json, lines, options.iterations);
    const bool ok = got >= 0.0 && best > 0.0 && got <= best * 1.05;
    std::printf("adaptive @%zu lines: %.3f us vs grid best %.3f us  [%s]\n",
                lines, got, best, ok ? "ok" : "FAIL");
    if (!ok) ++failures;
  }

  std::printf("autotune smoke: %s\n", failures == 0 ? "PASS" : "FAIL");
  return failures == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Committed sweep (--json_out)
// ---------------------------------------------------------------------------

tune::ExplorerOptions committed_grid() {
  tune::ExplorerOptions o;
  // algorithms empty: every registered protocol except "adaptive".
  o.sizes_lines = {1, 8, 48, 96, 192, 1024};
  o.fanouts = {2, 7, 47};
  o.chunk_grid = {48, 96};
  o.buffering_grid = {false, true};
  o.fault_rate = 0.02;
  o.fault_seeds = {1, 2, 3};
  // Fault runs observe every MPB read, so score resilience on the two
  // small sizes only; the other points carry resilience = -1 (unmeasured).
  o.fault_sizes_lines = {8, 96};
  return o;
}

int json_out_mode(const std::string& path) {
  std::fprintf(stderr, "sweeping the committed design-space grid...\n");
  const tune::ExploreResult result = tune::explore(committed_grid());
  std::printf("%s", tune::render_report(result).c_str());
  const std::string json = tune::to_json(result);
  std::ofstream file(path);
  if (!file) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  file << json;
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return 0;
}

// ---------------------------------------------------------------------------
// fig8 cross-validation (--cross_validate)
// ---------------------------------------------------------------------------

// Minimal scanner for the flat point objects our fig8 json_out modes emit:
// {"series": "...", "lines": N, "latency_us"|"throughput_mbps": X,
//  "verified": true|false}.
struct Fig8Point {
  std::string series;
  std::size_t lines = 0;
  double value = 0.0;
  bool verified = false;
};

const char* find_field(const std::string& obj, const char* key) {
  const std::string prefix = std::string("\"") + key + "\":";
  const std::size_t at = obj.find(prefix);
  if (at == std::string::npos) return nullptr;
  const char* s = obj.c_str() + at + prefix.size();
  while (*s == ' ') ++s;
  return s;
}

std::vector<Fig8Point> parse_fig8(const std::string& json,
                                  const char* value_key) {
  std::vector<Fig8Point> points;
  std::size_t pos = json.find("\"points\"");
  if (pos == std::string::npos) return points;
  while (true) {
    const std::size_t open = json.find('{', pos);
    if (open == std::string::npos) break;
    const std::size_t close = json.find('}', open);
    if (close == std::string::npos) break;
    const std::string obj = json.substr(open, close - open + 1);
    pos = close + 1;
    Fig8Point p;
    const char* series = find_field(obj, "series");
    const char* lines = find_field(obj, "lines");
    const char* value = find_field(obj, value_key);
    const char* verified = find_field(obj, "verified");
    if (series == nullptr || *series != '"' || lines == nullptr ||
        value == nullptr || verified == nullptr) {
      continue;  // not a point record (e.g. the schema header)
    }
    const char* series_end = std::strchr(series + 1, '"');
    if (series_end == nullptr) continue;
    p.series.assign(series + 1, series_end);
    p.lines = std::strtoull(lines, nullptr, 10);
    p.value = std::strtod(value, nullptr);
    p.verified = std::strncmp(verified, "true", 4) == 0;
    points.push_back(std::move(p));
  }
  return points;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream file(path);
  if (!file) return false;
  std::ostringstream ss;
  ss << file.rdbuf();
  out = ss.str();
  return true;
}

/// Validates "adaptive" against one committed fig8 grid: for every size,
/// the best committed series value is the reference; adaptive (run live,
/// same iteration policy as the fig8 benches) must be within 5% of it.
/// Returns {points_checked, points_ok}; appends a per-point report line.
struct GridVerdict {
  int checked = 0;
  int ok = 0;
};

GridVerdict cross_validate_grid(const std::string& label,
                                const std::vector<Fig8Point>& points,
                                bool higher_is_better) {
  coll::register_adaptive();
  // Per-size best across the committed series (verified points only).
  std::map<std::size_t, std::pair<double, std::string>> best;
  for (const Fig8Point& p : points) {
    if (!p.verified) continue;
    const auto it = best.find(p.lines);
    const bool better =
        it == best.end() ||
        (higher_is_better ? p.value > it->second.first
                          : p.value < it->second.first);
    if (better) best[p.lines] = {p.value, p.series};
  }

  GridVerdict verdict;
  TextTable table({"lines", "best series", "best", "adaptive", "delta",
                   "within 5%"});
  for (const auto& [lines, ref] : best) {
    harness::BcastRunSpec spec;
    spec.algorithm_name = "adaptive";
    spec.message_bytes = lines * kCacheLineBytes;
    spec.iterations = harness::default_iterations(lines);
    std::fprintf(stderr, "%s: running adaptive at %zu lines...\n",
                 label.c_str(), lines);
    const harness::BcastRunResult r = harness::run_broadcast(spec);
    const double got =
        higher_is_better ? r.throughput_mbps : r.latency_us.mean();
    const double ratio = higher_is_better ? ref.first / got : got / ref.first;
    const bool ok = r.content_ok && ratio <= 1.05;
    ++verdict.checked;
    if (ok) ++verdict.ok;
    table.add_row({std::to_string(lines), ref.second,
                   fmt_fixed(ref.first, 3), fmt_fixed(got, 3),
                   fmt_fixed((ratio - 1.0) * 100.0, 1) + "%",
                   ok ? "yes" : "NO"});
  }
  std::printf("\n=== %s: adaptive vs committed per-point best ===\n%s",
              label.c_str(), table.str().c_str());
  return verdict;
}

int cross_validate_mode(const std::string& fig8a_path,
                        const std::string& fig8b_path) {
  std::string fig8a_json, fig8b_json;
  if (!read_file(fig8a_path, fig8a_json)) {
    std::fprintf(stderr, "cannot read %s (run bench_fig8a_latency "
                 "--json_out=... or pass --fig8a=PATH)\n", fig8a_path.c_str());
    return 1;
  }
  if (!read_file(fig8b_path, fig8b_json)) {
    std::fprintf(stderr, "cannot read %s (run bench_fig8b_throughput "
                 "--json_out=... or pass --fig8b=PATH)\n", fig8b_path.c_str());
    return 1;
  }
  const std::vector<Fig8Point> lat = parse_fig8(fig8a_json, "latency_us");
  const std::vector<Fig8Point> tp = parse_fig8(fig8b_json, "throughput_mbps");
  if (lat.empty() || tp.empty()) {
    std::fprintf(stderr, "no points parsed from the fig8 records\n");
    return 1;
  }

  const GridVerdict a = cross_validate_grid("fig8a latency", lat, false);
  const GridVerdict b = cross_validate_grid("fig8b throughput", tp, true);
  const int checked = a.checked + b.checked;
  const int ok = a.ok + b.ok;
  const double frac =
      checked > 0 ? static_cast<double>(ok) / checked : 0.0;
  const bool pass = frac >= 0.9;
  std::printf("\ncross-validation: %d/%d points within 5%% of the committed "
              "best (need >= 90%%): %s\n",
              ok, checked, pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool cross_validate = false;
  std::string json_out;
  std::string fig8a_path = "results/fig8a_latency.json";
  std::string fig8b_path = "results/fig8b_throughput.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--cross_validate") {
      cross_validate = true;
    } else if (arg.rfind("--json_out=", 0) == 0) {
      json_out = arg.substr(std::string("--json_out=").size());
    } else if (arg.rfind("--fig8a=", 0) == 0) {
      fig8a_path = arg.substr(std::string("--fig8a=").size());
    } else if (arg.rfind("--fig8b=", 0) == 0) {
      fig8b_path = arg.substr(std::string("--fig8b=").size());
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke | --json_out=PATH | --cross_validate "
                   "[--fig8a=PATH] [--fig8b=PATH]]\n",
                   argv[0]);
      return 2;
    }
  }
  if (!json_out.empty()) return json_out_mode(json_out);
  if (cross_validate) return cross_validate_mode(fig8a_path, fig8b_path);
  return smoke_mode(smoke);
}
