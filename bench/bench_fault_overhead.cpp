// The price of fault tolerance: core::FtOcBcast vs. plain OC-Bcast (both
// k=7, 96-line chunks, double-buffered).
//
// Two regimes:
//  * zero faults — the pure protocol overhead of checksums, staged-line
//    publication and the watchdog machinery (acceptance: median latency
//    within 5% of plain OC-Bcast from 8 KiB to 1 MiB);
//  * transient read-corruption rates 1e-6 / 1e-5 / 1e-4 per line
//    transaction — where plain OC-Bcast silently delivers garbage while
//    the FT protocol pays retries to stay byte-correct.
// Prints paper-style tables and writes results/fault_overhead.csv.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "harness/fault_sweep.h"
#include "harness/report.h"
#include "harness/sweep.h"

namespace {

using namespace ocb;

// 8 KiB .. 1 MiB in cache lines.
const std::vector<std::size_t>& sizes_lines() {
  static const std::vector<std::size_t> kSizes = {256, 1024, 4096, 16384,
                                                  32768};
  return kSizes;
}

// rate_idx 0 = fault-free; 1..3 = per-transaction read-corruption rates.
constexpr double kRates[] = {0.0, 1e-6, 1e-5, 1e-4};
constexpr int kRateCount = 4;

struct Point {
  double latency_us = 0.0;
  double throughput_mbps = 0.0;
  bool content_ok = false;
};

// Fault-free medians through the standard measurement harness (rendezvous
// iterations, rotating offsets, byte verification).
Point zero_fault_point(bool ft, std::size_t lines) {
  harness::BcastRunSpec run;
  run.algorithm.kind = ft ? core::BcastKind::kFtOcBcast : core::BcastKind::kOcBcast;
  run.algorithm.k = 7;
  run.message_bytes = lines * kCacheLineBytes;
  run.iterations = harness::default_iterations(lines);
  const harness::BcastRunResult r = run_broadcast(run);
  return {r.latency_us.median(), r.throughput_mbps, r.content_ok};
}

// Faulted runs go through the fault harness: one chip, one broadcast, the
// injector corrupting MPB/memory reads at `rate`.
Point faulted_point(bool ft, std::size_t lines, double rate) {
  harness::FaultRunSpec spec;
  spec.use_ft = ft;
  spec.plan.seed = 40 + lines;  // deterministic, distinct per size
  spec.plan.rates.mpb_read = rate;
  spec.plan.rates.mem_read = rate;
  spec.message_bytes = lines * kCacheLineBytes;
  const harness::FaultRunOutcome out = harness::run_fault_once(spec);
  const double bytes = static_cast<double>(spec.message_bytes);
  Point p;
  p.latency_us = out.latency_us;
  p.throughput_mbps = out.latency_us > 0.0 ? bytes / out.latency_us : 0.0;
  p.content_ok = out.drained && out.correct == out.survivors && out.gave_up == 0;
  return p;
}

const Point& point_for(bool ft, int rate_idx, std::size_t lines) {
  static std::map<std::tuple<bool, int, std::size_t>, Point> cache;
  const auto key = std::make_tuple(ft, rate_idx, lines);
  auto it = cache.find(key);
  if (it == cache.end()) {
    const Point p = rate_idx == 0 ? zero_fault_point(ft, lines)
                                  : faulted_point(ft, lines, kRates[rate_idx]);
    it = cache.emplace(key, p).first;
  }
  return it->second;
}

std::string arm_label(bool ft, int rate_idx) {
  char buf[64];
  if (rate_idx == 0) {
    std::snprintf(buf, sizeof buf, "%s p=0", ft ? "ft" : "plain");
  } else {
    std::snprintf(buf, sizeof buf, "%s p=%.0e", ft ? "ft" : "plain",
                  kRates[rate_idx]);
  }
  return buf;
}

void bench_point(benchmark::State& state) {
  const bool ft = state.range(0) != 0;
  const int rate_idx = static_cast<int>(state.range(1));
  const auto lines = static_cast<std::size_t>(state.range(2));
  for (auto _ : state) {
    const Point& p = point_for(ft, rate_idx, lines);
    state.SetIterationTime(p.latency_us * 1e-6);
    state.counters["latency_us"] = p.latency_us;
    state.counters["verified"] = p.content_ok ? 1 : 0;
  }
  state.SetLabel(arm_label(ft, rate_idx));
}

void print_tables() {
  std::vector<harness::Series> all;
  for (int rate_idx = 0; rate_idx < kRateCount; ++rate_idx) {
    for (bool ft : {false, true}) {
      harness::Series series;
      series.label = arm_label(ft, rate_idx);
      for (std::size_t lines : sizes_lines()) {
        const Point& p = point_for(ft, rate_idx, lines);
        series.points.push_back(
            {lines, p.latency_us, p.throughput_mbps, p.content_ok});
      }
      all.push_back(std::move(series));
    }
  }
  std::printf("\n=== Fault-tolerance overhead: latency (us) ===\n%s",
              harness::render_latency_table(all).c_str());
  harness::write_series_csv(harness::results_dir() + "/fault_overhead.csv", all);

  std::printf("\nZero-fault overhead, FT vs plain (acceptance: < 5%%):\n");
  for (std::size_t lines : sizes_lines()) {
    const double plain = point_for(false, 0, lines).latency_us;
    const double ft = point_for(true, 0, lines).latency_us;
    std::printf("  %6zu lines (%7zu B): plain %9.2f us   ft %9.2f us   +%.2f%%\n",
                lines, lines * kCacheLineBytes, plain, ft,
                (ft / plain - 1.0) * 100.0);
  }

  std::printf("\nUnder transient read corruption (1 MiB message):\n");
  const std::size_t big = sizes_lines().back();
  for (int rate_idx = 1; rate_idx < kRateCount; ++rate_idx) {
    const Point& pl = point_for(false, rate_idx, big);
    const Point& ft = point_for(true, rate_idx, big);
    std::printf("  p=%.0e: plain %9.2f us (%s)   ft %9.2f us (%s)\n",
                kRates[rate_idx], pl.latency_us,
                pl.content_ok ? "correct" : "CORRUPTED", ft.latency_us,
                ft.content_ok ? "correct" : "CORRUPTED");
  }
  std::printf("\nThe plain protocol keeps its speed by trusting every line it"
              " reads; the FT\nprotocol re-fetches until checksums agree —"
              " byte-correct at every rate here,\nfor a retry premium that"
              " only leaves the noise floor around 1e-4 per\ntransaction"
              " (~1.5%% at 1 MiB).\n");
}

}  // namespace

int main(int argc, char** argv) {
  for (long ft : {0L, 1L}) {
    for (long rate_idx = 0; rate_idx < kRateCount; ++rate_idx) {
      for (std::size_t lines : sizes_lines()) {
        benchmark::RegisterBenchmark("fault_overhead/latency", &bench_point)
            ->Args({ft, rate_idx, static_cast<long>(lines)})
            ->UseManualTime()
            ->Iterations(1);
      }
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_tables();
  return 0;
}
