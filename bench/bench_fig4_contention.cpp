// Figure 4 — MPB contention: n cores concurrently accessing core 0's MPB.
//   (a) parallel gets of 128 cache lines,
//   (b) parallel 1-line puts (each to its own line, the doneFlag pattern).
// For each n the bench prints the average completion time and the
// fastest/slowest per-core means (the paper's scatter of small circles),
// and checks the paper's qualitative claims: flat up to ~24 accessors,
// clear contention and >2x (get) unfairness at 48.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <map>

#include "common/format.h"
#include "harness/measurement.h"
#include "harness/paper_data.h"
#include "harness/report.h"

namespace {

using namespace ocb;

constexpr int kCounts[] = {1, 2, 4, 6, 8, 12, 16, 24, 32, 40, 48};

const harness::ContentionResult& result_for(bool get, int n) {
  static std::map<std::pair<bool, int>, harness::ContentionResult> cache;
  const auto key = std::make_pair(get, n);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache
             .emplace(key, harness::measure_mpb_contention(
                               scc::SccConfig{}, n, /*lines=*/128, get,
                               /*iterations=*/8))
             .first;
  }
  return it->second;
}

void bench_point(benchmark::State& state) {
  const bool get = state.range(0) != 0;
  const int n = static_cast<int>(state.range(1));
  for (auto _ : state) {
    const harness::ContentionResult& r = result_for(get, n);
    state.SetIterationTime(r.avg_us * 1e-6);
    state.counters["avg_us"] = r.avg_us;
    const auto [lo, hi] =
        std::minmax_element(r.per_core_us.begin(), r.per_core_us.end());
    state.counters["min_us"] = *lo;
    state.counters["max_us"] = *hi;
  }
  state.SetLabel(get ? "get128" : "put1");
}

void print_tables() {
  std::vector<std::vector<std::string>> csv_rows;
  for (const bool get : {true, false}) {
    TextTable table({"cores", "avg_us", "fastest_us", "slowest_us", "spread"});
    for (int n : kCounts) {
      const harness::ContentionResult& r = result_for(get, n);
      const auto [lo, hi] =
          std::minmax_element(r.per_core_us.begin(), r.per_core_us.end());
      table.add_row({std::to_string(n), fmt_fixed(r.avg_us, 3), fmt_fixed(*lo, 3),
                     fmt_fixed(*hi, 3), fmt_fixed(*hi / *lo, 2)});
      csv_rows.push_back({get ? "get128" : "put1", std::to_string(n),
                          fmt_fixed(r.avg_us, 4), fmt_fixed(*lo, 4),
                          fmt_fixed(*hi, 4)});
    }
    std::printf("\n=== Figure 4%s: concurrent %s of core 0's MPB ===\n%s",
                get ? "a" : "b", get ? "128-line gets" : "1-line puts",
                table.str().c_str());
  }
  write_csv(harness::results_dir() + "/fig4_contention.csv",
            {"mode", "cores", "avg_us", "min_us", "max_us"}, csv_rows);

  // Paper claims. Queueing is isolated per core (fixed distance): compare
  // the same core's latency as the accessor count grows.
  const double c2_at8 = result_for(true, 8).per_core_us[2];
  const double c2_at24 = result_for(true, 24).per_core_us[2];
  const auto& r48 = result_for(true, 48);
  const auto [lo, hi] = std::minmax_element(r48.per_core_us.begin(),
                                            r48.per_core_us.end());
  std::printf("\nPaper §3.3 checks (128-line gets):\n");
  std::printf("  fixed-distance core, 24 vs 8 accessors: x%.2f (paper: ~1, no "
              "measurable contention up to %d)\n",
              c2_at24 / c2_at8, harness::paper::kContentionFreeAccessors);
  std::printf("  average, 48 vs 24 accessors: x%.2f (paper: clear contention at "
              "48; under the positional arbitration the backlog lands on the "
              "low-priority cores)\n",
              result_for(true, 48).avg_us / result_for(true, 24).avg_us);
  std::printf("  slowest/fastest core at 48: %.2f (paper: > %.0f)\n",
              *hi / *lo, harness::paper::kGetSpreadAt48);
}

}  // namespace

int main(int argc, char** argv) {
  for (const bool get : {true, false}) {
    for (int n : kCounts) {
      benchmark::RegisterBenchmark("fig4/contention", &bench_point)
          ->Args({get ? 1 : 0, n})
          ->UseManualTime()
          ->Iterations(1);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_tables();
  return 0;
}
