// Figure 3 — put/get completion time vs. router distance for 1/4/8/16
// cache lines, four panels:
//   MPB-to-MPB get, MPB-to-MPB put (distances 1..9),
//   MPB-to-memory get, memory-to-MPB put (distances 1..4),
// each measured on the simulator (the paper's dots) next to the Figure 2
// model prediction (the paper's lines). The two must agree essentially
// exactly — this bench is the calibration proof.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "common/format.h"
#include "harness/measurement.h"
#include "harness/report.h"
#include "model/primitives.h"

namespace {

using namespace ocb;

constexpr std::size_t kSizes[] = {1, 4, 8, 16};

struct Panel {
  const char* name;
  harness::OpKind kind;
  int max_distance;
};

constexpr Panel kPanels[] = {
    {"mpb_to_mpb_get", harness::OpKind::kGetMpbToMpb, 9},
    {"mpb_to_mpb_put", harness::OpKind::kPutMpbToMpb, 9},
    {"mpb_to_mem_get", harness::OpKind::kGetMpbToMem, 4},
    {"mem_to_mpb_put", harness::OpKind::kPutMemToMpb, 4},
};

scc::SccConfig bench_config() {
  scc::SccConfig cfg;
  cfg.cache_enabled = false;  // the model's put reads are cold
  return cfg;
}

double model_us(const Panel& panel, std::size_t lines, int d) {
  const model::ModelParams p = model::ModelParams::paper();
  switch (panel.kind) {
    case harness::OpKind::kGetMpbToMpb:
      return sim::to_us(model::get_to_mpb_completion(p, lines, d));
    case harness::OpKind::kPutMpbToMpb:
      return sim::to_us(model::put_from_mpb_completion(p, lines, d));
    case harness::OpKind::kGetMpbToMem:
      return sim::to_us(model::get_to_mem_completion(p, lines, 1, d));
    case harness::OpKind::kPutMemToMpb:
      return sim::to_us(model::put_from_mem_completion(p, lines, d, 1));
  }
  return 0.0;
}

double measure_us(const Panel& panel, std::size_t lines, int d) {
  static std::map<std::tuple<int, std::size_t, int>, double> cache;
  const auto key = std::make_tuple(static_cast<int>(panel.kind), lines, d);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  double us = 0.0;
  if (panel.kind == harness::OpKind::kGetMpbToMpb ||
      panel.kind == harness::OpKind::kPutMpbToMpb) {
    const auto [actor, target] = harness::core_pair_at_mpb_distance(d);
    us = harness::measure_op_completion_us(bench_config(), panel.kind, actor,
                                           target, lines, 8);
  } else {
    // Memory panels: d is the memory-controller distance; the MPB side is
    // the actor's own buffer (d = 1), as in the paper's setup.
    const CoreId c = harness::core_at_mem_distance(d);
    us = harness::measure_op_completion_us(bench_config(), panel.kind, c, c,
                                           lines, 8);
  }
  cache.emplace(key, us);
  return us;
}

void bench_point(benchmark::State& state) {
  const Panel& panel = kPanels[state.range(0)];
  const auto lines = static_cast<std::size_t>(state.range(1));
  const int d = static_cast<int>(state.range(2));
  for (auto _ : state) {
    const double us = measure_us(panel, lines, d);
    state.SetIterationTime(us * 1e-6);
    state.counters["sim_us"] = us;
    state.counters["model_us"] = model_us(panel, lines, d);
  }
  state.SetLabel(panel.name);
}

void print_tables() {
  std::vector<std::vector<std::string>> csv_rows;
  for (const Panel& panel : kPanels) {
    TextTable table({"hops", "CL", "simulated_us", "model_us", "delta_%"});
    for (int d = 1; d <= panel.max_distance; ++d) {
      for (std::size_t lines : kSizes) {
        const double sim_v = measure_us(panel, lines, d);
        const double model_v = model_us(panel, lines, d);
        const double delta = (sim_v - model_v) / model_v * 100.0;
        table.add_row({std::to_string(d), std::to_string(lines),
                       fmt_fixed(sim_v, 3), fmt_fixed(model_v, 3),
                       fmt_fixed(delta, 2)});
        csv_rows.push_back({panel.name, std::to_string(d), std::to_string(lines),
                            fmt_fixed(sim_v, 4), fmt_fixed(model_v, 4)});
      }
    }
    std::printf("\n=== Figure 3 panel: %s ===\n%s", panel.name, table.str().c_str());
  }
  write_csv(harness::results_dir() + "/fig3_putget.csv",
            {"panel", "hops", "lines", "simulated_us", "model_us"}, csv_rows);
  std::printf("\nPaper check: 9-hop vs 1-hop MPB get penalty should be ~30%%.\n");
  const double ratio = measure_us(kPanels[0], 16, 9) / measure_us(kPanels[0], 16, 1);
  std::printf("Measured 16-CL get ratio d=9/d=1: %.3f\n", ratio);
}

}  // namespace

int main(int argc, char** argv) {
  for (int p = 0; p < 4; ++p) {
    for (std::size_t s = 0; s < 4; ++s) {
      for (int d = 1; d <= kPanels[p].max_distance; d += (p < 2 ? 4 : 1)) {
        benchmark::RegisterBenchmark("fig3/panel", &bench_point)
            ->Args({p, static_cast<long>(kSizes[s]), d})
            ->UseManualTime()
            ->Iterations(1);
      }
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_tables();
  return 0;
}
