// Wall-clock performance of the simulator itself — the one bench in this
// repository that measures REAL time, not simulated time. Useful when
// sizing experiments: the paper-scale sweeps process tens of millions of
// events, and this reports how fast this machine chews through them.
//
// Three modes:
//   (default)                 google-benchmark over the same workloads
//   --json_out=PATH           run the fixed workload set once and write a
//                             machine-readable record (events/sec per
//                             workload, queue depth, allocator counters);
//                             results/bench_simulator_speed.json is the
//                             committed perf-trajectory file (see README)
//   --perf_smoke=BASELINE     re-run the gating workloads (plain, checked,
//                             traced, service) and exit 1 if any drops
//                             below 70% of the matching entry in BASELINE
//                             (a --json_out file); this is the
//                             `perf-smoke` CMake target. PDES rows gate
//                             only when this host has at least as many
//                             hardware threads as the row used — on
//                             smaller hosts they downgrade to advisory.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "coll/adaptive.h"
#include "harness/fault_sweep.h"
#include "harness/measurement.h"
#include "noc/topology.h"
#include "scc/trace_json.h"
#include "svc/service.h"

namespace {

using namespace ocb;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// ---- The fixed workload set (shared by every mode) --------------------

harness::BcastRunSpec ocbcast_spec(std::size_t lines,
                                   unsigned pdes_threads = 0) {
  harness::BcastRunSpec spec;
  spec.message_bytes = lines * kCacheLineBytes;
  spec.iterations = 1;
  spec.warmup = 0;
  spec.verify = false;
  spec.config.pdes_threads = pdes_threads;
  return spec;
}

// Mirrors tests/fault_test.cpp's base scenario: a 64 KiB FT-OC-Bcast with a
// low transient-corruption rate, swept over 20 seeds. Exercises the fault
// slow path AND harness::parallel_map (the sweep fans out over threads), so
// its events/sec is a parallel-throughput number.
harness::FaultRunSpec fault_spec() {
  harness::FaultRunSpec spec;
  spec.message_bytes = 64 * 1024;
  spec.ft.parties = kNumCores;
  spec.plan.rates.mpb_read = 1e-5;
  return spec;
}

// The tests/service_test.cpp smoke scenario at bench size: a mixed-size
// request stream through the multi-root broadcast service (two MPB slots,
// FIFO admission). Exercises the multiplexed-core slow path, where the
// coalesced-RMA fast path steps aside for concurrent collectives.
svc::TrafficSpec service_traffic() {
  svc::TrafficSpec traffic;
  traffic.requests = 24;
  traffic.mean_gap_ns = 30'000;
  traffic.sizes = {{kCacheLineBytes, 2}, {4096, 2}, {32768, 1}};
  traffic.seed = 2026;
  return traffic;
}

std::vector<std::uint64_t> fault_seeds() {
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 1; s <= 20; ++s) seeds.push_back(s);
  return seeds;
}

struct WorkloadRecord {
  std::string name;
  double wall_s = 0.0;  ///< wall time of the best repetition
  std::uint64_t events = 0;
  double events_per_sec = 0.0;  ///< best across repetitions
  std::uint64_t max_queue_depth = 0;
  std::uint64_t frame_allocs = 0;  ///< non-zero only under OCB_SIM_STATS
  std::uint64_t frame_reuses = 0;
  /// Event-loop worker threads: 0 = serial reference loop, >= 1 = the
  /// conservative-PDES window loop (sim/engine.cpp run_pdes).
  unsigned pdes_threads = 0;
  /// PDES window statistics; non-zero only under OCB_SIM_STATS.
  std::uint64_t pdes_windows = 0;
  std::uint64_t pdes_cross_events = 0;
  sim::Duration pdes_lookahead_ns = 0;
  /// Observer-batching statistics; non-zero only under OCB_SIM_STATS.
  /// bulk_ops_observed / bulk_ops is the fast-path hit rate under an
  /// observer chain; bulk_fallback_lines counts per-line replays.
  std::uint64_t bulk_ops = 0;
  std::uint64_t bulk_ops_observed = 0;
  std::uint64_t bulk_quiescent_ops = 0;
  std::uint64_t bulk_fallback_ops = 0;
  std::uint64_t bulk_fallback_lines = 0;
};

void copy_bulk_stats(WorkloadRecord& w, const harness::BcastRunResult& r) {
  w.bulk_ops = r.bulk_ops;
  w.bulk_ops_observed = r.bulk_ops_observed;
  w.bulk_quiescent_ops = r.bulk_quiescent_ops;
  w.bulk_fallback_ops = r.bulk_fallback_ops;
  w.bulk_fallback_lines = r.bulk_fallback_lines;
}

// Repeats a workload until it has either burned ~0.5 s or done `max_reps`
// runs, and keeps the best events/sec: the committed baseline should be the
// machine's capability, not its worst scheduling hiccup (observed run-to-run
// noise on shared machines is 10-15%, which eats into the 30% gate).
template <typename Fn>
WorkloadRecord best_of(const std::string& name, int max_reps, Fn&& once) {
  WorkloadRecord w;
  w.name = name;
  double total = 0.0;
  for (int rep = 0; rep < max_reps && (rep < 2 || total < 0.5); ++rep) {
    const Clock::time_point t0 = Clock::now();
    const WorkloadRecord r = once();
    const double s = seconds_since(t0);
    total += s;
    const double rate = static_cast<double>(r.events) / s;
    if (rate > w.events_per_sec) {
      w.events_per_sec = rate;
      w.wall_s = s;
    }
    w.events = r.events;
    w.max_queue_depth = r.max_queue_depth;
    w.frame_allocs = r.frame_allocs;
    w.frame_reuses = r.frame_reuses;
    w.pdes_threads = r.pdes_threads;
    w.pdes_windows = r.pdes_windows;
    w.pdes_cross_events = r.pdes_cross_events;
    w.pdes_lookahead_ns = r.pdes_lookahead_ns;
    w.bulk_ops = r.bulk_ops;
    w.bulk_ops_observed = r.bulk_ops_observed;
    w.bulk_quiescent_ops = r.bulk_quiescent_ops;
    w.bulk_fallback_ops = r.bulk_fallback_ops;
    w.bulk_fallback_lines = r.bulk_fallback_lines;
  }
  return w;
}

WorkloadRecord run_ocbcast_workload(std::size_t lines) {
  const int reps = lines >= 8192 ? 3 : 10;
  return best_of("ocbcast_" + std::to_string(lines), reps, [lines] {
    const harness::BcastRunResult r = run_broadcast(ocbcast_spec(lines));
    WorkloadRecord w;
    w.events = r.events;
    w.max_queue_depth = r.max_queue_depth;
    w.frame_allocs = r.frame_allocs;
    w.frame_reuses = r.frame_reuses;
    copy_bulk_stats(w, r);
    return w;
  });
}

// The plain 1024-line broadcast on a 256-core 16x16 mesh (one core per
// tile, noc::Topology::mesh) — tracks the event-loop cost of non-SCC
// geometry: topology-table lookups instead of the old global constants,
// and 5.3x the SCC's core count. Advisory in perf-smoke (schema v4).
WorkloadRecord run_ocbcast_mesh_workload() {
  return best_of("ocbcast_256core_mesh16x16", 5, [] {
    harness::BcastRunSpec spec = ocbcast_spec(1024);
    spec.config.topology = noc::Topology::mesh(16, 16, /*cores_per_tile=*/1);
    spec.params.parties = 0;  // all 256 cores
    const harness::BcastRunResult r = run_broadcast(spec);
    WorkloadRecord w;
    w.events = r.events;
    w.max_queue_depth = r.max_queue_depth;
    w.frame_allocs = r.frame_allocs;
    w.frame_reuses = r.frame_reuses;
    copy_bulk_stats(w, r);
    return w;
  });
}

// The same broadcast through the conservative-PDES window loop. The name
// carries the thread count (`ocbcast_8192_pdes4`): events/sec here divided
// by the matching serial row is the parallel speedup, and the event count
// is smaller by construction (fused hop events replace the per-packet
// entry+traversal pairs of the serial path).
WorkloadRecord run_ocbcast_pdes_workload(std::size_t lines, unsigned threads) {
  const int reps = lines >= 8192 ? 3 : 10;
  const std::string name =
      "ocbcast_" + std::to_string(lines) + "_pdes" + std::to_string(threads);
  return best_of(name, reps, [lines, threads] {
    const harness::BcastRunResult r =
        run_broadcast(ocbcast_spec(lines, threads));
    WorkloadRecord w;
    w.events = r.events;
    w.max_queue_depth = r.max_queue_depth;
    w.frame_allocs = r.frame_allocs;
    w.frame_reuses = r.frame_reuses;
    w.pdes_threads = r.pdes_threads;
    w.pdes_windows = r.pdes_windows;
    w.pdes_cross_events = r.pdes_cross_events;
    w.pdes_lookahead_ns = r.pdes_lookahead_ns;
    return w;
  });
}

// The same 1024-line broadcast with the ocb::check race checker installed:
// vector-clock bookkeeping on every MPB access, i.e. the cost of running
// "checked". The checker is bulk-capable (scc/observer.h), so coalesced
// ops deliver one batched on_bulk instead of 2*lines per-line callbacks.
// Compare against ocbcast_1024 to see the overhead.
WorkloadRecord run_ocbcast_checked_workload() {
  return best_of("ocbcast_1024_checked", 10, [] {
    harness::BcastRunSpec spec = ocbcast_spec(1024);
    spec.check = true;
    const harness::BcastRunResult r = run_broadcast(spec);
    WorkloadRecord w;
    w.events = r.events;
    w.max_queue_depth = r.max_queue_depth;
    w.frame_allocs = r.frame_allocs;
    w.frame_reuses = r.frame_reuses;
    copy_bulk_stats(w, r);
    return w;
  });
}

// The same broadcast with a JsonTraceCollector sink installed: every
// transaction is recorded as a TraceEvent (the legacy per-line stream, so
// the rendered bytes stay identical to a chain-off run; the span-style
// bulk sink is a separate opt-in). The collector is cleared between
// repetitions so memory stays bounded.
WorkloadRecord run_ocbcast_traced_workload() {
  return best_of("ocbcast_1024_traced", 10, [] {
    harness::BcastSession session(ocbcast_spec(1024));
    scc::JsonTraceCollector trace;
    session.chip().set_trace_sink(trace.sink());
    const harness::BcastRunResult r = session.run();
    WorkloadRecord w;
    w.events = r.events;
    w.max_queue_depth = r.max_queue_depth;
    w.frame_allocs = r.frame_allocs;
    w.frame_reuses = r.frame_reuses;
    copy_bulk_stats(w, r);
    return w;
  });
}

// The 1024-line broadcast through coll::AdaptiveBcast: the baked decision
// table resolves to the same OC-Bcast shape as ocbcast_1024, so the delta
// against that row is the online dispatch overhead (table lookup + quiesce
// bookkeeping; the adaptive wrapper also pins the serial loop). Advisory
// in perf-smoke — it informs, never gates.
WorkloadRecord run_adaptive_workload() {
  coll::register_adaptive();
  return best_of("adaptive_1024", 10, [] {
    harness::BcastRunSpec spec = ocbcast_spec(1024);
    spec.algorithm_name = "adaptive";
    const harness::BcastRunResult r = run_broadcast(spec);
    WorkloadRecord w;
    w.events = r.events;
    w.max_queue_depth = r.max_queue_depth;
    w.frame_allocs = r.frame_allocs;
    w.frame_reuses = r.frame_reuses;
    copy_bulk_stats(w, r);
    return w;
  });
}

WorkloadRecord run_fig4_workload() {
  return best_of("fig4_point_48cores", 3, [] {
    const harness::ContentionResult r =
        harness::measure_mpb_contention(scc::SccConfig{}, 48, 128, true, 4);
    WorkloadRecord w;
    w.events = r.events;
    w.max_queue_depth = r.max_queue_depth;
    return w;
  });
}

WorkloadRecord run_service_workload() {
  return best_of("service_mixed_load", 5, [] {
    const svc::ServiceMetrics m =
        svc::run_service(svc::ServiceConfig{}, service_traffic());
    WorkloadRecord w;
    w.events = m.engine_events;
    w.max_queue_depth = m.engine_max_queue_depth;
    w.bulk_ops = m.bulk_ops;
    w.bulk_ops_observed = m.bulk_ops_observed;
    w.bulk_quiescent_ops = m.bulk_quiescent_ops;
    w.bulk_fallback_ops = m.bulk_fallback_ops;
    w.bulk_fallback_lines = m.bulk_fallback_lines;
    return w;
  });
}

WorkloadRecord run_fault_sweep_workload() {
  return best_of("fault_sweep_20seeds", 1, [] {
    const harness::FaultSweepResult r =
        run_fault_sweep(fault_spec(), fault_seeds());
    WorkloadRecord w;
    for (const harness::FaultRunOutcome& o : r.outcomes) w.events += o.events;
    return w;
  });
}

// ---- JSON out / perf smoke --------------------------------------------

void append_record(std::ostringstream& out, const WorkloadRecord& w,
                   bool last) {
  char rate[64];
  std::snprintf(rate, sizeof(rate), "%.1f", w.events_per_sec);
  char wall[64];
  std::snprintf(wall, sizeof(wall), "%.6f", w.wall_s);
  out << "    {\n"
      << "      \"name\": \"" << w.name << "\",\n"
      << "      \"wall_s\": " << wall << ",\n"
      << "      \"events\": " << w.events << ",\n"
      << "      \"events_per_sec\": " << rate << ",\n"
      << "      \"max_queue_depth\": " << w.max_queue_depth << ",\n"
      << "      \"frame_allocs\": " << w.frame_allocs << ",\n"
      << "      \"frame_reuses\": " << w.frame_reuses << ",\n"
      << "      \"pdes_threads\": " << w.pdes_threads << ",\n"
      << "      \"pdes_windows\": " << w.pdes_windows << ",\n"
      << "      \"pdes_cross_events\": " << w.pdes_cross_events << ",\n"
      << "      \"pdes_lookahead_ns\": " << w.pdes_lookahead_ns << ",\n"
      << "      \"bulk_ops\": " << w.bulk_ops << ",\n"
      << "      \"bulk_ops_observed\": " << w.bulk_ops_observed << ",\n"
      << "      \"bulk_quiescent_ops\": " << w.bulk_quiescent_ops << ",\n"
      << "      \"bulk_fallback_ops\": " << w.bulk_fallback_ops << ",\n"
      << "      \"bulk_fallback_lines\": " << w.bulk_fallback_lines << "\n"
      << "    }" << (last ? "\n" : ",\n");
}

int json_out_mode(const std::string& path) {
  std::vector<WorkloadRecord> records;
  for (std::size_t lines : {96, 1024, 8192}) {
    std::fprintf(stderr, "running ocbcast_%zu...\n", lines);
    records.push_back(run_ocbcast_workload(lines));
  }
  for (const unsigned threads : {2u, 4u, 8u}) {
    std::fprintf(stderr, "running ocbcast_8192_pdes%u...\n", threads);
    records.push_back(run_ocbcast_pdes_workload(8192, threads));
  }
  std::fprintf(stderr, "running ocbcast_256core_mesh16x16...\n");
  records.push_back(run_ocbcast_mesh_workload());
  std::fprintf(stderr, "running adaptive_1024...\n");
  records.push_back(run_adaptive_workload());
  std::fprintf(stderr, "running ocbcast_1024_checked...\n");
  records.push_back(run_ocbcast_checked_workload());
  std::fprintf(stderr, "running ocbcast_1024_traced...\n");
  records.push_back(run_ocbcast_traced_workload());
  std::fprintf(stderr, "running fig4_point_48cores...\n");
  records.push_back(run_fig4_workload());
  std::fprintf(stderr, "running service_mixed_load...\n");
  records.push_back(run_service_workload());
  std::fprintf(stderr, "running fault_sweep_20seeds...\n");
  records.push_back(run_fault_sweep_workload());

  std::ostringstream out;
  out << "{\n  \"schema\": \"ocb-bench-simulator-speed-v4\",\n"
      << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
      << ",\n"
      << "  \"workloads\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    append_record(out, records[i], i + 1 == records.size());
  }
  out << "  ]\n}\n";

  std::ofstream file(path);
  if (!file) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  file << out.str();
  std::printf("%s", out.str().c_str());
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return 0;
}

// Minimal scan of our own --json_out format: the events_per_sec value of
// the named workload. Returns a negative value if not found.
double baseline_rate(const std::string& json, const std::string& workload) {
  const std::size_t at = json.find("\"name\": \"" + workload + "\"");
  if (at == std::string::npos) return -1.0;
  const std::string key = "\"events_per_sec\": ";
  const std::size_t k = json.find(key, at);
  if (k == std::string::npos) return -1.0;
  return std::strtod(json.c_str() + k + key.size(), nullptr);
}

// One gating comparison: run `live`, compare against the baseline's row.
// Returns false only on a gating failure; a missing baseline row (older
// schema) skips with a note so new rows can be introduced without breaking
// checkouts that still carry a pre-v3 baseline.
bool smoke_gate(const std::string& json, const std::string& row,
                const WorkloadRecord& live) {
  const double committed = baseline_rate(json, row);
  if (committed <= 0.0) {
    std::printf("perf-smoke %s: no baseline row (pre-v3 file?), skipping\n",
                row.c_str());
    return true;
  }
  const double floor = 0.7 * committed;
  std::printf(
      "perf-smoke %s: live %.3gM events/s vs committed %.3gM (floor %.3gM)\n",
      row.c_str(), live.events_per_sec / 1e6, committed / 1e6, floor / 1e6);
  if (live.events_per_sec < floor) {
    std::fprintf(stderr,
                 "perf-smoke FAILED: %s events/sec dropped more than 30%% "
                 "below the committed baseline. If the regression is "
                 "intentional, regenerate the baseline with "
                 "--json_out=results/bench_simulator_speed.json on an idle "
                 "machine and commit it.\n",
                 row.c_str());
    return false;
  }
  return true;
}

int perf_smoke_mode(const std::string& baseline_path) {
  std::ifstream file(baseline_path);
  if (!file) {
    std::fprintf(stderr, "perf-smoke: cannot read baseline %s\n",
                 baseline_path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << file.rdbuf();
  const std::string json = buf.str();

  bool ok = true;
  // The gating set: the plain event loop plus the three observer-chain
  // workloads the capability model is meant to keep fast (schema v3).
  ok &= smoke_gate(json, "ocbcast_1024", run_ocbcast_workload(1024));
  ok &= smoke_gate(json, "ocbcast_1024_checked", run_ocbcast_checked_workload());
  ok &= smoke_gate(json, "ocbcast_1024_traced", run_ocbcast_traced_workload());
  ok &= smoke_gate(json, "service_mixed_load", run_service_workload());

  // The adaptive row is advisory: it tracks the dispatch overhead of
  // coll::AdaptiveBcast over the plain ocbcast_1024 row, but machine-level
  // scheduling noise on the wrapper path should not fail CI.
  {
    const double base = baseline_rate(json, "adaptive_1024");
    if (base > 0.0) {
      const WorkloadRecord live = run_adaptive_workload();
      std::printf(
          "perf-smoke adaptive_1024: live %.3gM events/s vs committed %.3gM "
          "(advisory)\n",
          live.events_per_sec / 1e6, base / 1e6);
      if (live.events_per_sec < 0.7 * base) {
        std::fprintf(stderr,
                     "perf-smoke WARNING: adaptive_1024 below the committed "
                     "baseline; not gating (advisory row)\n");
      }
    }
  }

  // The 256-core mesh row is advisory too: it tracks topology-table
  // geometry cost on a non-SCC chip, but it is new in schema v4 and sized
  // differently from the gating set, so it warns rather than fails.
  {
    const double base = baseline_rate(json, "ocbcast_256core_mesh16x16");
    if (base > 0.0) {
      const WorkloadRecord live = run_ocbcast_mesh_workload();
      std::printf(
          "perf-smoke ocbcast_256core_mesh16x16: live %.3gM events/s vs "
          "committed %.3gM (advisory)\n",
          live.events_per_sec / 1e6, base / 1e6);
      if (live.events_per_sec < 0.7 * base) {
        std::fprintf(stderr,
                     "perf-smoke WARNING: ocbcast_256core_mesh16x16 below the "
                     "committed baseline; not gating (advisory row)\n");
      }
    }
  }

  // PDES rows gate only where the comparison is meaningful: a host with
  // fewer hardware threads than the row's worker count legitimately runs
  // it slower than the committed (bigger-machine) baseline, so there the
  // row downgrades to an advisory WARNING.
  const unsigned hw = std::thread::hardware_concurrency();
  for (const unsigned threads : {2u, 4u, 8u}) {
    const std::string row = "ocbcast_8192_pdes" + std::to_string(threads);
    const double base = baseline_rate(json, row);
    if (base <= 0.0) continue;  // pre-v2 baseline without PDES rows
    const WorkloadRecord pdes = run_ocbcast_pdes_workload(8192, threads);
    const bool gating = hw >= threads;
    std::printf("perf-smoke %s: live %.3gM events/s vs committed %.3gM (%s)\n",
                row.c_str(), pdes.events_per_sec / 1e6, base / 1e6,
                gating ? "gating" : "advisory");
    if (pdes.events_per_sec < 0.7 * base) {
      if (gating) {
        std::fprintf(stderr,
                     "perf-smoke FAILED: %s below the committed baseline on a "
                     "host with %u >= %u hardware threads\n",
                     row.c_str(), hw, threads);
        ok = false;
      } else {
        std::fprintf(stderr,
                     "perf-smoke WARNING: %s below the committed baseline; not "
                     "gating (host has %u < %u hardware threads)\n",
                     row.c_str(), hw, threads);
      }
    }
  }
  if (!ok) return 1;
  std::printf("perf-smoke PASSED\n");
  return 0;
}

// ---- google-benchmark mode (default) ----------------------------------

void bench_event_loop_throughput(benchmark::State& state) {
  // A 48-core OC-Bcast of the given size; report events/second.
  const auto lines = static_cast<std::size_t>(state.range(0));
  std::uint64_t events = 0;
  harness::BcastRunResult last{};
  for (auto _ : state) {
    last = run_broadcast(ocbcast_spec(lines));
    events += last.events;
  }
  state.counters["events_per_sec"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["events_per_run"] =
      static_cast<double>(events) / static_cast<double>(state.iterations());
  state.counters["max_queue_depth"] = static_cast<double>(last.max_queue_depth);
  // Frame-pool counters are all zero unless built with -DOCB_SIM_STATS=ON.
  state.counters["frame_allocs"] = static_cast<double>(last.frame_allocs);
  state.counters["frame_reuses"] = static_cast<double>(last.frame_reuses);
}
BENCHMARK(bench_event_loop_throughput)
    ->Arg(96)
    ->Arg(1024)
    ->Arg(8192)
    ->Unit(benchmark::kMillisecond)
    ->Name("simulator/ocbcast_events");

void bench_event_loop_pdes(benchmark::State& state) {
  // The 48-core OC-Bcast through the conservative-PDES window loop;
  // compare events_per_sec against simulator/ocbcast_events at the same
  // size for the parallel speedup on this host.
  const auto lines = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<unsigned>(state.range(1));
  std::uint64_t events = 0;
  harness::BcastRunResult last{};
  for (auto _ : state) {
    last = run_broadcast(ocbcast_spec(lines, threads));
    events += last.events;
  }
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["pdes_threads"] = static_cast<double>(last.pdes_threads);
  state.counters["pdes_windows"] = static_cast<double>(last.pdes_windows);
  state.counters["pdes_cross_events"] =
      static_cast<double>(last.pdes_cross_events);
}
BENCHMARK(bench_event_loop_pdes)
    ->Args({8192, 2})
    ->Args({8192, 4})
    ->Args({8192, 8})
    ->Unit(benchmark::kMillisecond)
    ->Name("simulator/ocbcast_events_pdes");

void bench_chip_construction(benchmark::State& state) {
  for (auto _ : state) {
    scc::SccChip chip;
    benchmark::DoNotOptimize(&chip.engine());
  }
}
BENCHMARK(bench_chip_construction)
    ->Unit(benchmark::kMicrosecond)
    ->Name("simulator/chip_construction");

void bench_event_loop_mesh(benchmark::State& state) {
  // The 1024-line OC-Bcast on a 256-core 16x16 mesh — the geometry-table
  // cost of a non-SCC topology at 5.3x the core count.
  std::uint64_t events = 0;
  for (auto _ : state) {
    harness::BcastRunSpec spec = ocbcast_spec(1024);
    spec.config.topology = noc::Topology::mesh(16, 16, /*cores_per_tile=*/1);
    spec.params.parties = 0;
    const harness::BcastRunResult r = run_broadcast(spec);
    events += r.events;
  }
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(bench_event_loop_mesh)
    ->Unit(benchmark::kMillisecond)
    ->Name("simulator/ocbcast_256core_mesh16x16");

void bench_contention_experiment(benchmark::State& state) {
  std::uint64_t depth = 0;
  for (auto _ : state) {
    const auto r =
        harness::measure_mpb_contention(scc::SccConfig{}, 48, 128, true, 4);
    benchmark::DoNotOptimize(r.avg_us);
    depth = r.max_queue_depth;
  }
  state.counters["max_queue_depth"] = static_cast<double>(depth);
}
BENCHMARK(bench_contention_experiment)
    ->Unit(benchmark::kMillisecond)
    ->Name("simulator/fig4_point_48cores");

void bench_service_traffic_point(benchmark::State& state) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    const svc::ServiceMetrics m =
        svc::run_service(svc::ServiceConfig{}, service_traffic());
    events += m.engine_events;
  }
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(bench_service_traffic_point)
    ->Unit(benchmark::kMillisecond)
    ->Name("simulator/service_mixed_load");

void bench_fault_sweep(benchmark::State& state) {
  for (auto _ : state) {
    const auto r = run_fault_sweep(fault_spec(), fault_seeds());
    benchmark::DoNotOptimize(r.runs_all_correct);
  }
}
BENCHMARK(bench_fault_sweep)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->Name("simulator/fault_sweep_20seeds");

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json_out=", 0) == 0) {
      return json_out_mode(arg.substr(std::string("--json_out=").size()));
    }
    if (arg.rfind("--perf_smoke=", 0) == 0) {
      return perf_smoke_mode(arg.substr(std::string("--perf_smoke=").size()));
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
