// Wall-clock performance of the simulator itself — the one bench in this
// repository that measures REAL time, not simulated time. Useful when
// sizing experiments: the paper-scale sweeps process tens of millions of
// events, and this reports how fast this machine chews through them.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "harness/measurement.h"

namespace {

using namespace ocb;

void bench_event_loop_throughput(benchmark::State& state) {
  // A 48-core OC-Bcast of the given size; report events/second.
  const auto lines = static_cast<std::size_t>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    harness::BcastRunSpec spec;
    spec.message_bytes = lines * kCacheLineBytes;
    spec.iterations = 1;
    spec.warmup = 0;
    spec.verify = false;
    const harness::BcastRunResult r = run_broadcast(spec);
    events += r.events;
  }
  state.counters["events_per_sec"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["events_per_run"] =
      static_cast<double>(events) / static_cast<double>(state.iterations());
}
BENCHMARK(bench_event_loop_throughput)
    ->Arg(96)
    ->Arg(1024)
    ->Arg(8192)
    ->Unit(benchmark::kMillisecond)
    ->Name("simulator/ocbcast_events");

void bench_chip_construction(benchmark::State& state) {
  for (auto _ : state) {
    scc::SccChip chip;
    benchmark::DoNotOptimize(&chip.engine());
  }
}
BENCHMARK(bench_chip_construction)
    ->Unit(benchmark::kMicrosecond)
    ->Name("simulator/chip_construction");

void bench_contention_experiment(benchmark::State& state) {
  for (auto _ : state) {
    const auto r =
        harness::measure_mpb_contention(scc::SccConfig{}, 48, 128, true, 4);
    benchmark::DoNotOptimize(r.avg_us);
  }
}
BENCHMARK(bench_contention_experiment)
    ->Unit(benchmark::kMillisecond)
    ->Name("simulator/fig4_point_48cores");

}  // namespace

BENCHMARK_MAIN();
