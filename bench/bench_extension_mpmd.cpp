// MPMD notification experiment — the paper's §7 ongoing work ("extending
// OC-Bcast to handle the MPMD programming model by leveraging parallel
// inter-core interrupts"), quantified.
//
// Scenario: the root sporadically broadcasts a 96-line payload while the
// other 47 cores run an unrelated application in 10 µs compute quanta.
// Three ways for the workers to learn a broadcast started:
//
//   spmd-block   workers sit inside bcast.run() (the SPMD baseline):
//                best latency, zero background compute;
//   mpmd-flag    workers poll their OC-Bcast notifyFlag between quanta:
//                compute proceeds, but the notification TREE cascades at
//                quantum granularity (each level waits for its parent's
//                next poll), so latency grows with depth x quantum;
//   mpmd-ipi     the root fires the parallel IPI tree; workers take the
//                interrupt between quanta (cheap pending check) and
//                forward in the handler — the cascade runs at interrupt
//                speed, independent of the quantum.
//
// Reported per variant: mean broadcast latency and total compute quanta
// achieved across all workers.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <map>

#include "common/format.h"
#include "core/ipi_notifier.h"
#include "core/ocbcast.h"
#include "harness/report.h"
#include "rma/flags.h"

namespace {

using namespace ocb;

constexpr int kRounds = 12;
constexpr std::size_t kLines = 96;
constexpr sim::Duration kInterval = 500 * sim::kMicrosecond;
constexpr sim::Duration kQuantum = 10 * sim::kMicrosecond;

enum class Variant { kSpmdBlock, kMpmdFlag, kMpmdIpi };

struct Outcome {
  double mean_latency_us = 0.0;
  std::uint64_t total_quanta = 0;
  bool ok = true;
};

Outcome run_variant(Variant variant) {
  scc::SccChip chip;
  core::OcBcastOptions opt;
  core::OcBcast bcast(chip, opt);
  core::IpiNotifier notifier;
  constexpr std::size_t kBytes = kLines * kCacheLineBytes;
  for (int r = 0; r < kRounds; ++r) {
    auto w = chip.memory(0).host_bytes(r * kBytes, kBytes);
    for (std::size_t i = 0; i < kBytes; ++i) {
      w[i] = static_cast<std::byte>((i + r * 31) & 0xff);
    }
  }

  std::array<sim::Time, kRounds> start{};
  std::array<sim::Time, kRounds> finish{};
  std::uint64_t quanta = 0;

  chip.spawn(0, [&, variant](scc::Core& me) -> sim::Task<void> {
    for (int r = 0; r < kRounds; ++r) {
      co_await me.busy(kInterval);
      start[static_cast<std::size_t>(r)] = me.now();
      if (variant == Variant::kMpmdIpi) co_await notifier.notify(me);
      co_await bcast.run(me, 0, static_cast<std::size_t>(r) * kBytes, kBytes);
    }
  });

  for (CoreId c = 1; c < kNumCores; ++c) {
    chip.spawn(c, [&, variant](scc::Core& me) -> sim::Task<void> {
      for (int r = 0; r < kRounds; ++r) {
        // Learn that round r's broadcast has started.
        switch (variant) {
          case Variant::kSpmdBlock:
            break;  // go straight into the collective and block there
          case Variant::kMpmdFlag: {
            // One chunk per message: the notifyFlag for round r carries
            // sequence r+1. Poll it between compute quanta.
            const rma::FlagValue want = static_cast<rma::FlagValue>(r) + 1;
            for (;;) {
              const rma::FlagValue v = co_await rma::read_flag(
                  me, rma::MpbAddr{me.id(), bcast.notify_line()});
              if (v >= want) break;
              co_await me.busy(kQuantum);
              ++quanta;
            }
            break;
          }
          case Variant::kMpmdIpi: {
            for (;;) {
              const bool woken = co_await notifier.try_await(me, 0);
              if (woken) break;
              co_await me.busy(kQuantum);
              ++quanta;
            }
            break;
          }
        }
        co_await bcast.run(me, 0, static_cast<std::size_t>(r) * kBytes, kBytes);
        finish[static_cast<std::size_t>(r)] =
            std::max(finish[static_cast<std::size_t>(r)], me.now());
      }
    });
  }

  const sim::RunResult run = chip.run();
  Outcome out;
  out.ok = run.completed();
  if (!out.ok) return out;
  double sum = 0.0;
  for (int r = 0; r < kRounds; ++r) {
    sum += sim::to_us(finish[static_cast<std::size_t>(r)] -
                      start[static_cast<std::size_t>(r)]);
  }
  out.mean_latency_us = sum / kRounds;
  out.total_quanta = quanta;
  // Verify the last round's payload on every worker.
  const auto want = chip.memory(0).host_bytes((kRounds - 1) * kBytes, kBytes);
  for (CoreId c = 1; c < kNumCores; ++c) {
    const auto got = chip.memory(c).host_bytes((kRounds - 1) * kBytes, kBytes);
    if (!std::equal(want.begin(), want.end(), got.begin())) out.ok = false;
  }
  return out;
}

const Outcome& outcome_for(Variant v) {
  static std::map<int, Outcome> cache;
  auto it = cache.find(static_cast<int>(v));
  if (it == cache.end()) it = cache.emplace(static_cast<int>(v), run_variant(v)).first;
  return it->second;
}

constexpr const char* kNames[] = {"spmd-block", "mpmd-flag", "mpmd-ipi"};

void bench_variant(benchmark::State& state) {
  const auto v = static_cast<Variant>(state.range(0));
  for (auto _ : state) {
    const Outcome& o = outcome_for(v);
    state.SetIterationTime(o.mean_latency_us * 1e-6);
    state.counters["latency_us"] = o.mean_latency_us;
    state.counters["compute_quanta"] = static_cast<double>(o.total_quanta);
    state.counters["verified"] = o.ok ? 1 : 0;
  }
  state.SetLabel(kNames[state.range(0)]);
}

void print_table() {
  TextTable table({"variant", "bcast_latency_us", "worker_compute_quanta",
                   "verified"});
  std::vector<std::vector<std::string>> csv;
  for (int v = 0; v < 3; ++v) {
    const Outcome& o = outcome_for(static_cast<Variant>(v));
    table.add_row({kNames[v], fmt_fixed(o.mean_latency_us, 2),
                   std::to_string(o.total_quanta), o.ok ? "yes" : "NO"});
    csv.push_back({kNames[v], fmt_fixed(o.mean_latency_us, 4),
                   std::to_string(o.total_quanta)});
  }
  std::printf("\n=== §7 MPMD notification: sporadic 96-line broadcasts into busy "
              "workers ===\n%s",
              table.str().c_str());
  std::printf("\n(12 rounds, 500 us apart; 47 workers computing 10 us quanta.\n"
              " spmd-block: latency floor, no background compute.\n"
              " mpmd-flag: compute proceeds, but the notify tree cascades at\n"
              "   quantum granularity -> latency ~ depth x quantum.\n"
              " mpmd-ipi: the parallel interrupt tree restores near-SPMD latency\n"
              "   while keeping the workers computing - the paper's §7 thesis.)\n");
  write_csv(harness::results_dir() + "/extension_mpmd.csv",
            {"variant", "latency_us", "compute_quanta"}, csv);
}

}  // namespace

int main(int argc, char** argv) {
  for (int v = 0; v < 3; ++v) {
    benchmark::RegisterBenchmark("extension/mpmd_notification", &bench_variant)
        ->Args({v})
        ->UseManualTime()
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_table();
  return 0;
}
