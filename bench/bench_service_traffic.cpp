// Service traffic sweep — offered load x message size through ocb::svc.
//
// Each point runs a fixed-length request stream (32 requests, Poisson
// arrivals, roots drawn uniformly from all 48 cores) through the
// multi-root broadcast service with two MPB slots and FIFO admission, and
// reports the SLO metrics: p50/p99/p999 arrival->completion latency,
// queue-wait, goodput, and rejections. Offered load is swept via the mean
// inter-arrival gap (10/30/100 us), message size via four mixes (pure
// 32 B, pure 4 KiB, pure 32 KiB, and the 2:2:1 mixed stream the smoke
// test uses). The interesting shape: as the gap shrinks below the
// per-request service time, queue-wait — not service time — starts to
// dominate the tail.
//
// Two modes:
//   (default)        google-benchmark over every (gap, mix) point, then a
//                    human-readable p50/p99 table on stdout
//   --json_out=PATH  run the sweep once and write every point's full
//                    "ocb-service-metrics-v1" record plus its config echo;
//                    results/bench_service_traffic.json is the committed
//                    copy (see EXPERIMENTS.md)
#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "svc/service.h"

namespace {

using namespace ocb;

struct MixSpec {
  std::string label;
  std::vector<svc::SizeClass> sizes;
};

const std::vector<MixSpec>& mixes() {
  static const std::vector<MixSpec> m = {
      {"small_32B", {{32, 1}}},
      {"medium_4KiB", {{4096, 1}}},
      {"large_32KiB", {{32768, 1}}},
      {"mixed_2_2_1", {{32, 2}, {4096, 2}, {32768, 1}}},
  };
  return m;
}

const std::vector<std::uint64_t>& gaps_ns() {
  static const std::vector<std::uint64_t> g = {10'000, 30'000, 100'000};
  return g;
}

svc::TrafficSpec traffic_for(std::size_t mix, std::uint64_t gap_ns) {
  svc::TrafficSpec traffic;
  traffic.requests = 32;
  traffic.mean_gap_ns = gap_ns;
  traffic.sizes = mixes()[mix].sizes;
  traffic.seed = 2026;
  return traffic;
}

// One service run per (mix, gap) point, cached so the benchmark mode, the
// table, and --json_out all reuse the same deterministic result.
const svc::ServiceMetrics& point_for(std::size_t mix, std::uint64_t gap_ns) {
  static std::map<std::pair<std::size_t, std::uint64_t>, svc::ServiceMetrics>
      cache;
  const auto key = std::make_pair(mix, gap_ns);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache
             .emplace(key, svc::run_service(svc::ServiceConfig{},
                                            traffic_for(mix, gap_ns)))
             .first;
  }
  return it->second;
}

void print_tables() {
  std::printf("\n=== Service traffic sweep: arrival->completion latency ===\n");
  std::printf("%-14s %10s %12s %12s %12s %10s %9s\n", "mix", "gap_us",
              "p50_us", "p99_us", "q_wait_p99", "MB/s", "rejected");
  for (std::size_t mix = 0; mix < mixes().size(); ++mix) {
    for (std::uint64_t gap : gaps_ns()) {
      const svc::ServiceMetrics& m = point_for(mix, gap);
      std::printf("%-14s %10.0f %12.1f %12.1f %12.1f %10.2f %9llu\n",
                  mixes()[mix].label.c_str(), gap / 1e3, m.latency_ns.p50() / 1e3,
                  m.latency_ns.p99() / 1e3, m.queue_wait_ns.p99() / 1e3,
                  m.throughput_mbps(),
                  static_cast<unsigned long long>(m.rejected));
    }
  }
  std::printf(
      "\n(32 requests per point, 2 MPB slots, FIFO admission, seed 2026; "
      "queue-wait dominates the tail once the gap drops below the service "
      "time.)\n");
}

int json_out_mode(const std::string& path) {
  std::ostringstream out;
  out << "{\n  \"schema\": \"ocb-bench-service-traffic-v1\",\n"
      << "  \"points\": [\n";
  bool first = true;
  for (std::size_t mix = 0; mix < mixes().size(); ++mix) {
    for (std::uint64_t gap : gaps_ns()) {
      std::fprintf(stderr, "running %s gap=%lluns...\n",
                   mixes()[mix].label.c_str(),
                   static_cast<unsigned long long>(gap));
      const svc::ServiceMetrics& m = point_for(mix, gap);
      if (!first) out << ",\n";
      first = false;
      out << "    {\n"
          << "      \"mix\": \"" << mixes()[mix].label << "\",\n"
          << "      \"mean_gap_ns\": " << gap << ",\n"
          << "      \"requests\": 32,\n"
          << "      \"slots\": 2,\n"
          << "      \"policy\": \"fifo\",\n"
          << "      \"seed\": 2026,\n"
          << "      \"metrics\": " << m.to_json() << "\n"
          << "    }";
    }
  }
  out << "\n  ]\n}\n";

  std::ofstream file(path);
  if (!file) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  file << out.str();
  std::printf("%s", out.str().c_str());
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return 0;
}

void bench_point(benchmark::State& state) {
  const auto mix = static_cast<std::size_t>(state.range(0));
  const auto gap = static_cast<std::uint64_t>(state.range(1));
  for (auto _ : state) {
    const svc::ServiceMetrics& m = point_for(mix, gap);
    state.SetIterationTime(static_cast<double>(m.makespan) /
                           (1e6 * sim::kMicrosecond));
    state.counters["latency_p99_us"] = m.latency_ns.p99() / 1e3;
    state.counters["queue_wait_p99_us"] = m.queue_wait_ns.p99() / 1e3;
    state.counters["throughput_mbps"] = m.throughput_mbps();
    state.counters["rejected"] = static_cast<double>(m.rejected);
  }
  state.SetLabel(mixes()[mix].label + " gap=" + std::to_string(gap) + "ns");
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json_out=", 0) == 0) {
      return json_out_mode(arg.substr(std::string("--json_out=").size()));
    }
  }
  for (std::size_t mix = 0; mix < mixes().size(); ++mix) {
    for (std::uint64_t gap : gaps_ns()) {
      benchmark::RegisterBenchmark("service/traffic", &bench_point)
          ->Args({static_cast<long>(mix), static_cast<long>(gap)})
          ->UseManualTime()
          ->Iterations(1);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_tables();
  return 0;
}
