// Figure 8b — *measured* broadcast throughput on the simulated SCC:
// OC-Bcast k = 2/7/47 vs. two-sided scatter-allgather, message sizes from
// 1 line to 32768 lines (1 MiB), log-spaced, plus the 96/97-line pair that
// exposes the partial-chunk dip the paper highlights. Also compares peak
// throughput and the k=47 contention penalty against the model.
// With --json_out=PATH, runs the series once and writes the same points as
// a machine-readable JSON record instead of the benchmark mode.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <vector>
#include <sstream>

#include "harness/paper_data.h"
#include "harness/report.h"
#include "harness/sweep.h"
#include "model/broadcast_model.h"

namespace {

using namespace ocb;

// Registry-keyed series: (name, params) instead of concrete spec structs.
struct SeriesSpec {
  std::string name;
  coll::Params params;
  std::string label;
};

// GCC 12 falsely flags the value-initialized adaptive_table_json string of
// the {}-defaulted Params entries when this table's copies are inlined
// (maybe-uninitialized, PR105562 family); fig8a's identical table is clean.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

const SeriesSpec& spec_for(int series) {
  static const std::vector<SeriesSpec> specs = {
      {"ocbcast", {.k = 2}, "oc-bcast k=2"},
      {"ocbcast", {.k = 7}, "oc-bcast k=7"},
      {"ocbcast", {.k = 47}, "oc-bcast k=47"},
      {"scatter-allgather", {.parties = kNumCores}, "scatter-allgather"},
  };
  return specs[series];
}

const harness::SeriesPoint& point_for(int series, std::size_t lines) {
  static std::map<std::pair<int, std::size_t>, harness::SeriesPoint> cache;
  const auto key = std::make_pair(series, lines);
  auto it = cache.find(key);
  if (it == cache.end()) {
    harness::BcastRunSpec run;
    run.algorithm_name = spec_for(series).name;
    run.params = spec_for(series).params;
    run.message_bytes = lines * kCacheLineBytes;
    run.iterations = harness::default_iterations(lines);
    const harness::BcastRunResult r = run_broadcast(run);
    it = cache
             .emplace(key, harness::SeriesPoint{lines, r.latency_us.mean(),
                                                r.throughput_mbps, r.content_ok})
             .first;
  }
  return it->second;
}

void bench_point(benchmark::State& state) {
  const int series = static_cast<int>(state.range(0));
  const auto lines = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    const harness::SeriesPoint& p = point_for(series, lines);
    state.SetIterationTime(p.latency_us * 1e-6);
    state.counters["throughput_mbps"] = p.throughput_mbps;
    state.counters["verified"] = p.content_ok ? 1 : 0;
  }
  state.SetLabel(spec_for(series).label);
}

void print_tables() {
  std::vector<harness::Series> all;
  for (int s = 0; s < 4; ++s) {
    harness::Series series;
    series.label = spec_for(s).label;
    for (std::size_t lines : harness::large_message_sizes()) {
      series.points.push_back(point_for(s, lines));
    }
    all.push_back(std::move(series));
  }
  std::printf("\n=== Figure 8b: measured broadcast throughput (MB/s), log-spaced sizes ===\n%s",
              harness::render_throughput_table(all).c_str());
  harness::write_series_csv(harness::results_dir() + "/fig8b_throughput.csv", all);

  const double peak_oc7 = point_for(1, 32768).throughput_mbps;
  const double peak_oc2 = point_for(0, 32768).throughput_mbps;
  const double peak_oc47 = point_for(2, 32768).throughput_mbps;
  const double peak_sag = point_for(3, 32768).throughput_mbps;
  model::BroadcastModel m(model::ModelParams::paper(), {});
  std::printf("\nPaper §6.2.2 checks (measured on the simulated SCC):\n");
  std::printf("  peak throughput: k=2 %.2f, k=7 %.2f, k=47 %.2f, s-ag %.2f MB/s\n",
              peak_oc2, peak_oc7, peak_oc47, peak_sag);
  std::printf("  OC-Bcast(k=7) / s-ag peak ratio: %.2f (paper: almost %.0fx)\n",
              peak_oc7 / peak_sag, harness::paper::kPeakThroughputRatio);
  std::printf("  dip at 97 lines (k=7): %.2f -> %.2f MB/s (96 -> 97 lines; paper "
              "notes a drop from the 1-line second chunk)\n",
              point_for(1, 96).throughput_mbps, point_for(1, 97).throughput_mbps);
  std::printf("  k=47 measured / modeled: %.2f (paper: ~16%% below model due to "
              "MPB contention)\n",
              peak_oc47 / m.ocbcast_throughput_mbps(47));
  std::printf("  k=7 measured / modeled: %.2f (paper: close to model)\n",
              peak_oc7 / m.ocbcast_throughput_mbps(7));
}

// Machine-readable form of the same sweep: one record per (series, size)
// point with the measured throughput. Schema "ocb-bench-fig8b-v1".
int json_out_mode(const std::string& path) {
  std::ostringstream out;
  out << "{\n  \"schema\": \"ocb-bench-fig8b-v1\",\n  \"points\": [\n";
  bool first = true;
  for (int s = 0; s < 4; ++s) {
    for (std::size_t lines : harness::large_message_sizes()) {
      std::fprintf(stderr, "running %s, %zu lines...\n",
                   spec_for(s).label.c_str(), lines);
      const harness::SeriesPoint& p = point_for(s, lines);
      if (!first) out << ",\n";
      first = false;
      char mbps[64];
      std::snprintf(mbps, sizeof(mbps), "%.3f", p.throughput_mbps);
      out << "    {\"series\": \"" << spec_for(s).label
          << "\", \"lines\": " << lines << ", \"throughput_mbps\": " << mbps
          << ", \"verified\": " << (p.content_ok ? "true" : "false") << "}";
    }
  }
  out << "\n  ]\n}\n";

  std::ofstream file(path);
  if (!file) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  file << out.str();
  std::printf("%s", out.str().c_str());
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return 0;
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json_out=", 0) == 0) {
      return json_out_mode(arg.substr(std::string("--json_out=").size()));
    }
  }
  for (int s = 0; s < 4; ++s) {
    for (long lines : {1L, 96L, 97L, 1024L, 32768L}) {
      benchmark::RegisterBenchmark("fig8b/throughput", &bench_point)
          ->Args({s, lines})
          ->UseManualTime()
          ->Iterations(1);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_tables();
  return 0;
}
