// §3.3 mesh stress experiment (no figure in the paper, but a stated
// result): load the (2,2)-(3,2) link with gets from every other core and
// measure a victim get across that link. The paper found no measurable
// slowdown — the mesh is not a contention point at SCC scale.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/format.h"
#include "harness/measurement.h"
#include "harness/report.h"

namespace {

using namespace ocb;

const harness::MeshStressResult& stress_once() {
  static const harness::MeshStressResult r =
      harness::measure_mesh_stress(scc::SccConfig{});
  return r;
}

void bench_loaded(benchmark::State& state) {
  for (auto _ : state) {
    state.SetIterationTime(stress_once().loaded_us * 1e-6);
    state.counters["victim_us"] = stress_once().loaded_us;
  }
}
BENCHMARK(bench_loaded)->UseManualTime()->Iterations(1)->Name("mesh/loaded");

void bench_unloaded(benchmark::State& state) {
  for (auto _ : state) {
    state.SetIterationTime(stress_once().unloaded_us * 1e-6);
    state.counters["victim_us"] = stress_once().unloaded_us;
  }
}
BENCHMARK(bench_unloaded)->UseManualTime()->Iterations(1)->Name("mesh/unloaded");

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const harness::MeshStressResult& r = stress_once();
  TextTable table({"condition", "victim_get_us"});
  table.add_row({"unloaded", fmt_fixed(r.unloaded_us, 3)});
  table.add_row({"loaded", fmt_fixed(r.loaded_us, 3)});
  std::printf("\n=== §3.3 mesh stress: 128-line get across the (2,2)-(3,2) link ===\n%s",
              table.str().c_str());
  std::printf("slowdown: %.2f%% (paper: no measurable performance drop)\n",
              (r.loaded_us / r.unloaded_us - 1.0) * 100.0);
  write_csv(harness::results_dir() + "/mesh_contention.csv",
            {"condition", "victim_get_us"},
            {{"unloaded", fmt_fixed(r.unloaded_us, 4)},
             {"loaded", fmt_fixed(r.loaded_us, 4)}});
  return 0;
}
