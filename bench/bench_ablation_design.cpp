// Ablations of OC-Bcast's design choices (the decisions §4 and §5.4 argue
// for, measured on the simulated SCC):
//
//   1. fan-out k sweep — latency at small/medium sizes and peak throughput
//      (k=7 as the paper's latency/contention trade-off);
//   2. double buffering at fixed MPB budget — two 96-line buffers vs. one
//      192-line buffer (latency gain, throughput-neutral per Formula 15);
//   3. §5.4 leaf-direct-to-memory optimization the paper deliberately
//      omitted — how much it would have helped;
//   4. notification fan-out — the binary notification tree vs. having the
//      parent set all k children's flags itself (sequential notify),
//      validating the paper's "binary tree is latency-optimal" claim.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "common/format.h"
#include "harness/report.h"
#include "harness/sweep.h"

namespace {

using namespace ocb;

struct Variant {
  const char* name;
  core::BcastSpec spec;
};

std::vector<Variant> variants() {
  std::vector<Variant> out;
  for (int k : {2, 3, 5, 7, 11, 16, 24, 32, 47}) {
    core::BcastSpec s;
    s.k = k;
    out.push_back({"fanout", s});
  }
  {
    core::BcastSpec s;  // double buffering (default): 2 x 96
    out.push_back({"buffering_db96x2", s});
    s.double_buffering = false;
    s.chunk_lines = 192;
    out.push_back({"buffering_single192", s});
  }
  {
    core::BcastSpec s;
    s.leaf_direct_to_memory = true;
    out.push_back({"leaf_direct", s});
  }
  for (int k : {7, 16, 47}) {
    core::BcastSpec s;
    s.k = k;
    s.sequential_notification = true;
    out.push_back({"seq_notify", s});
  }
  {
    // §5.4's alternative RMA design and its two-sided original.
    core::BcastSpec s;
    s.kind = core::BcastKind::kOneSidedScatterAllgather;
    out.push_back({"onesided_sag", s});
    s.kind = core::BcastKind::kScatterAllgather;
    out.push_back({"twosided_sag", s});
  }
  return out;
}

struct Metrics {
  double small_latency_us = 0.0;   // 1 line
  double medium_latency_us = 0.0;  // 96 lines
  double two_chunk_latency_us = 0.0;  // 192 lines (where buffering shows)
  double peak_mbps = 0.0;          // 8192 lines
};

const Metrics& metrics_for(const core::BcastSpec& spec) {
  static std::map<std::string, Metrics> cache;
  const std::string key = core::spec_label(spec) + std::to_string(spec.chunk_lines);
  auto it = cache.find(key);
  if (it == cache.end()) {
    Metrics m;
    auto run = [&](std::size_t lines) {
      harness::BcastRunSpec r;
      r.algorithm = spec;
      r.message_bytes = lines * kCacheLineBytes;
      r.iterations = harness::default_iterations(lines);
      return run_broadcast(r);
    };
    m.small_latency_us = run(1).latency_us.mean();
    m.medium_latency_us = run(96).latency_us.mean();
    m.two_chunk_latency_us = run(192).latency_us.mean();
    m.peak_mbps = run(8192).throughput_mbps;
    it = cache.emplace(key, m).first;
  }
  return it->second;
}

void bench_variant(benchmark::State& state, const Variant& v) {
  for (auto _ : state) {
    const Metrics& m = metrics_for(v.spec);
    state.SetIterationTime(m.medium_latency_us * 1e-6);
    state.counters["lat1_us"] = m.small_latency_us;
    state.counters["lat96_us"] = m.medium_latency_us;
    state.counters["lat192_us"] = m.two_chunk_latency_us;
    state.counters["peak_mbps"] = m.peak_mbps;
  }
  state.SetLabel(std::string(v.name) + "/" + core::spec_label(v.spec));
}

void print_tables() {
  TextTable table({"variant", "config", "latency_1CL_us", "latency_96CL_us",
                   "latency_192CL_us", "peak_MBps"});
  std::vector<std::vector<std::string>> csv;
  for (const Variant& v : variants()) {
    const Metrics& m = metrics_for(v.spec);
    table.add_row({v.name, core::spec_label(v.spec),
                   fmt_fixed(m.small_latency_us, 2),
                   fmt_fixed(m.medium_latency_us, 2),
                   fmt_fixed(m.two_chunk_latency_us, 2), fmt_fixed(m.peak_mbps, 2)});
    csv.push_back({v.name, core::spec_label(v.spec),
                   fmt_fixed(m.small_latency_us, 4),
                   fmt_fixed(m.medium_latency_us, 4),
                   fmt_fixed(m.two_chunk_latency_us, 4), fmt_fixed(m.peak_mbps, 4)});
  }
  std::printf("\n=== OC-Bcast design ablations (simulated SCC) ===\n%s",
              table.str().c_str());
  write_csv(harness::results_dir() + "/ablation_design.csv",
            {"variant", "config", "latency_1cl_us", "latency_96cl_us",
             "latency_192cl_us", "peak_mbps"},
            csv);

  std::printf("\nReadings:\n");
  std::printf("  - fan-out: small-message latency is best at moderate k (tree depth\n"
              "    vs. doneFlag polling); k=47 pays the 47-flag end poll (§5.2.3)\n"
              "    and MPB contention at throughput (§6.2.2).\n");
  std::printf("  - buffering: two 96-line buffers vs one 192-line buffer — latency\n"
              "    moves, peak throughput does not (Formula 15 has no buffering\n"
              "    term); see EXPERIMENTS.md for the discussion.\n");
  std::printf("  - leaf-direct (§5.4, omitted by the paper): saves the leaf staging\n"
              "    copy; the paper's authors valued uniformity over this gain.\n");
}

}  // namespace

int main(int argc, char** argv) {
  // Register one benchmark per variant. The heavy work is memoized, so the
  // google-benchmark pass and the table pass run each config once.
  static const std::vector<Variant> kVariants = variants();
  for (const Variant& v : kVariants) {
    benchmark::RegisterBenchmark(
        (std::string("ablation/") + v.name + "/" + core::spec_label(v.spec)).c_str(),
        [&v](benchmark::State& state) { bench_variant(state, v); })
        ->UseManualTime()
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_tables();
  return 0;
}
