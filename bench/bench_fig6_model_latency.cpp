// Figure 6 — *modeled* broadcast latency (analytical evaluation, §5.2):
// OC-Bcast with k = 2/7/47 vs. the two-sided binomial tree, message sizes
// up to 192 cache lines (6a) with a small-message zoom (6b). Generated
// entirely from the reconstructed analytical model (d = 1, contention
// free), independent of the simulator.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/format.h"
#include "harness/report.h"
#include "harness/sweep.h"
#include "model/broadcast_model.h"

namespace {

using namespace ocb;

const model::BroadcastModel& the_model() {
  static const model::BroadcastModel m(model::ModelParams::paper(), {});
  return m;
}

double latency_us(int series, std::size_t lines) {
  // series: 0/1/2 = OC-Bcast k=2/7/47, 3 = binomial.
  constexpr int kFanouts[] = {2, 7, 47};
  if (series < 3) return sim::to_us(the_model().ocbcast_latency(lines, kFanouts[series]));
  return sim::to_us(the_model().binomial_latency(lines));
}

const char* series_name(int series) {
  constexpr const char* kNames[] = {"k=2", "k=7", "k=47", "binomial"};
  return kNames[series];
}

void bench_point(benchmark::State& state) {
  const int series = static_cast<int>(state.range(0));
  const auto lines = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    const double us = latency_us(series, lines);
    state.SetIterationTime(us * 1e-6);
    state.counters["model_latency_us"] = us;
  }
  state.SetLabel(series_name(series));
}

void print_tables() {
  std::vector<harness::Series> all;
  for (int s = 0; s < 4; ++s) {
    harness::Series series;
    series.label = series_name(s);
    for (std::size_t lines : harness::small_message_sizes()) {
      series.points.push_back(
          {lines, latency_us(s, lines), 0.0, true});
    }
    all.push_back(std::move(series));
  }
  std::printf("\n=== Figure 6a: modeled broadcast latency (us) ===\n");
  std::printf("%s", harness::render_latency_table(all).c_str());

  // Figure 6b zoom: 1..30 lines.
  std::vector<harness::Series> zoom;
  for (int s = 0; s < 4; ++s) {
    harness::Series series;
    series.label = series_name(s);
    for (std::size_t lines = 1; lines <= 30; lines += 1) {
      series.points.push_back({lines, latency_us(s, lines), 0.0, true});
    }
    zoom.push_back(std::move(series));
  }
  std::printf("\n=== Figure 6b: zoom on small messages (us) ===\n");
  std::printf("%s", harness::render_latency_table(zoom).c_str());

  harness::write_series_csv(harness::results_dir() + "/fig6_model_latency.csv", all);

  std::printf("\nPaper §5.2 checks (modeled):\n");
  std::printf("  k=7 beats binomial at every size: %s\n",
              [&] {
                for (std::size_t l = 1; l <= 192; ++l) {
                  if (latency_us(1, l) >= latency_us(3, l)) return "NO";
                }
                return "yes";
              }());
  std::printf("  k=47 slowest OC-Bcast at 1 line (root polls 47 flags): %s\n",
              latency_us(2, 1) > latency_us(1, 1) && latency_us(2, 1) > latency_us(0, 1)
                  ? "yes"
                  : "NO");
  std::printf("  slope flattens past the 96-line chunk (k=7): below=%0.3f us/CL "
              "above=%0.3f us/CL\n",
              (latency_us(1, 90) - latency_us(1, 60)) / 30.0,
              (latency_us(1, 180) - latency_us(1, 150)) / 30.0);
}

}  // namespace

int main(int argc, char** argv) {
  for (int s = 0; s < 4; ++s) {
    for (long lines : {1L, 16L, 48L, 96L, 97L, 144L, 192L}) {
      benchmark::RegisterBenchmark("fig6/model_latency", &bench_point)
          ->Args({s, lines})
          ->UseManualTime()
          ->Iterations(1);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_tables();
  return 0;
}
