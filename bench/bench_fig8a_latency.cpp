// Figure 8a — *measured* broadcast latency on the simulated SCC:
// OC-Bcast k = 2/7/47 vs. the two-sided binomial tree, message sizes
// 1..192 cache lines. Prints the full series, the paper's headline checks
// (k=7 at least 27% better than binomial at 1 line; k=7 ~25% better than
// k=2 for 96..192 lines; k=7 and k=47 nearly overlap), and writes CSV.
// With --json_out=PATH, runs the series once and writes the same points as
// a machine-readable JSON record instead of the benchmark mode.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <vector>
#include <sstream>

#include "harness/paper_data.h"
#include "harness/report.h"
#include "harness/sweep.h"

namespace {

using namespace ocb;

// Registry-keyed series: (name, params) instead of concrete spec structs.
struct SeriesSpec {
  std::string name;
  coll::Params params;
  std::string label;
};

const SeriesSpec& spec_for(int series) {
  static const std::vector<SeriesSpec> specs = {
      {"ocbcast", {.k = 2}, "oc-bcast k=2"},
      {"ocbcast", {.k = 7}, "oc-bcast k=7"},
      {"ocbcast", {.k = 47}, "oc-bcast k=47"},
      {"binomial", {.parties = kNumCores}, "binomial"},
  };
  return specs[series];
}

const harness::SeriesPoint& point_for(int series, std::size_t lines) {
  static std::map<std::pair<int, std::size_t>, harness::SeriesPoint> cache;
  const auto key = std::make_pair(series, lines);
  auto it = cache.find(key);
  if (it == cache.end()) {
    harness::BcastRunSpec run;
    run.algorithm_name = spec_for(series).name;
    run.params = spec_for(series).params;
    run.message_bytes = lines * kCacheLineBytes;
    run.iterations = harness::default_iterations(lines);
    const harness::BcastRunResult r = run_broadcast(run);
    it = cache
             .emplace(key, harness::SeriesPoint{lines, r.latency_us.mean(),
                                                r.throughput_mbps, r.content_ok})
             .first;
  }
  return it->second;
}

void bench_point(benchmark::State& state) {
  const int series = static_cast<int>(state.range(0));
  const auto lines = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    const harness::SeriesPoint& p = point_for(series, lines);
    state.SetIterationTime(p.latency_us * 1e-6);
    state.counters["latency_us"] = p.latency_us;
    state.counters["verified"] = p.content_ok ? 1 : 0;
  }
  state.SetLabel(spec_for(series).label);
}

void print_tables() {
  std::vector<harness::Series> all;
  for (int s = 0; s < 4; ++s) {
    harness::Series series;
    series.label = spec_for(s).label;
    for (std::size_t lines : harness::small_message_sizes()) {
      series.points.push_back(point_for(s, lines));
    }
    all.push_back(std::move(series));
  }
  std::printf("\n=== Figure 8a: measured broadcast latency (us) ===\n%s",
              harness::render_latency_table(all).c_str());
  harness::write_series_csv(harness::results_dir() + "/fig8a_latency.csv", all);

  const double oc7_1 = point_for(1, 1).latency_us;
  const double bin_1 = point_for(3, 1).latency_us;
  const double oc2_144 = point_for(0, 144).latency_us;
  const double oc7_144 = point_for(1, 144).latency_us;
  const double oc47_96 = point_for(2, 96).latency_us;
  const double oc7_96 = point_for(1, 96).latency_us;
  std::printf("\nPaper §6.2.1 checks (measured on the simulated SCC):\n");
  std::printf("  1-line latency k=7: %.2f us (paper measured %.1f us on silicon)\n",
              oc7_1, harness::paper::kFig8aOcK7LatencyUs);
  std::printf("  1-line latency binomial: %.2f us (paper %.1f us)\n", bin_1,
              harness::paper::kFig8aBinomialLatencyUs);
  std::printf("  k=7 improvement over binomial at 1 line: %.1f%% (paper: >= %.0f%%)\n",
              (1.0 - oc7_1 / bin_1) * 100.0,
              harness::paper::kMinLatencyImprovementPct);
  std::printf("  k=7 improvement over k=2 at 144 lines: %.1f%% (paper: ~%.0f%%)\n",
              (1.0 - oc7_144 / oc2_144) * 100.0,
              harness::paper::kK7VsK2LargeMsgImprovementPct);
  std::printf("  k=47 / k=7 latency at 96 lines: %.3f (paper: curves nearly overlap)\n",
              oc47_96 / oc7_96);
}

// Machine-readable form of the same sweep: one record per (series, size)
// point with the measured latency. Schema "ocb-bench-fig8a-v1".
int json_out_mode(const std::string& path) {
  std::ostringstream out;
  out << "{\n  \"schema\": \"ocb-bench-fig8a-v1\",\n  \"points\": [\n";
  bool first = true;
  for (int s = 0; s < 4; ++s) {
    for (std::size_t lines : harness::small_message_sizes()) {
      std::fprintf(stderr, "running %s, %zu lines...\n",
                   spec_for(s).label.c_str(), lines);
      const harness::SeriesPoint& p = point_for(s, lines);
      if (!first) out << ",\n";
      first = false;
      char latency[64];
      std::snprintf(latency, sizeof(latency), "%.3f", p.latency_us);
      out << "    {\"series\": \"" << spec_for(s).label
          << "\", \"lines\": " << lines << ", \"latency_us\": " << latency
          << ", \"verified\": " << (p.content_ok ? "true" : "false") << "}";
    }
  }
  out << "\n  ]\n}\n";

  std::ofstream file(path);
  if (!file) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  file << out.str();
  std::printf("%s", out.str().c_str());
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json_out=", 0) == 0) {
      return json_out_mode(arg.substr(std::string("--json_out=").size()));
    }
  }
  for (int s = 0; s < 4; ++s) {
    for (long lines : {1L, 48L, 96L, 144L, 192L}) {
      benchmark::RegisterBenchmark("fig8a/latency", &bench_point)
          ->Args({s, lines})
          ->UseManualTime()
          ->Iterations(1);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_tables();
  return 0;
}
