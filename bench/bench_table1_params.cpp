// Table 1 — recover the eight model parameters from simulated
// measurements by least squares and print them beside the paper's values.
//
// This is the end-to-end calibration proof: the simulator's microscopic
// decomposition (core overhead + port service + per-hop latency) is only
// correct if the aggregate parameters fitted from black-box measurements
// reproduce Table 1 exactly.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/format.h"
#include "harness/measurement.h"
#include "harness/report.h"
#include "model/fit.h"

namespace {

using namespace ocb;

std::vector<model::OpSample> collect_samples() {
  scc::SccConfig cfg;
  cfg.cache_enabled = false;
  std::vector<model::OpSample> samples;
  for (std::size_t m : {1u, 4u, 8u, 16u}) {
    for (int d : {1, 2, 3, 5, 7, 9}) {
      const auto [actor, target] = harness::core_pair_at_mpb_distance(d);
      samples.push_back({model::OpSample::Kind::kGetToMpb, m, d, 1,
                         harness::measure_op_completion_us(
                             cfg, harness::OpKind::kGetMpbToMpb, actor, target, m, 4)});
      samples.push_back({model::OpSample::Kind::kPutFromMpb, m, 1, d,
                         harness::measure_op_completion_us(
                             cfg, harness::OpKind::kPutMpbToMpb, actor, target, m, 4)});
    }
    for (int d : {1, 2, 3, 4}) {
      const CoreId c = harness::core_at_mem_distance(d);
      samples.push_back({model::OpSample::Kind::kPutFromMem, m, d, 1,
                         harness::measure_op_completion_us(
                             cfg, harness::OpKind::kPutMemToMpb, c, c, m, 4)});
      samples.push_back({model::OpSample::Kind::kGetToMem, m, 1, d,
                         harness::measure_op_completion_us(
                             cfg, harness::OpKind::kGetMpbToMem, c, c, m, 4)});
    }
  }
  return samples;
}

const model::FitResult& fit_once() {
  static const model::FitResult result = model::fit_model_params(collect_samples());
  return result;
}

void bench_fit(benchmark::State& state) {
  for (auto _ : state) {
    const model::FitResult& r = fit_once();
    state.SetIterationTime(std::max(r.max_relative_error, 1e-9));
    state.counters["max_rel_error"] = r.max_relative_error;
  }
}
BENCHMARK(bench_fit)->UseManualTime()->Iterations(1)->Name("table1/fit");

void print_table() {
  const model::FitResult& fit = fit_once();
  const model::ModelParams paper = model::ModelParams::paper();
  struct Row {
    const char* name;
    sim::Duration paper_v;
    sim::Duration fitted_v;
  };
  const Row rows[] = {
      {"L_hop", paper.l_hop, fit.params.l_hop},
      {"o_mpb", paper.o_mpb, fit.params.o_mpb},
      {"o_mem_w", paper.o_mem_w, fit.params.o_mem_w},
      {"o_mem_r", paper.o_mem_r, fit.params.o_mem_r},
      {"o_mpb_put", paper.o_put_mpb, fit.params.o_put_mpb},
      {"o_mpb_get", paper.o_get_mpb, fit.params.o_get_mpb},
      {"o_mem_put", paper.o_put_mem, fit.params.o_put_mem},
      {"o_mem_get", paper.o_get_mem, fit.params.o_get_mem},
  };
  TextTable table({"parameter", "paper_us", "fitted_us"});
  std::vector<std::vector<std::string>> csv_rows;
  for (const Row& r : rows) {
    table.add_row({r.name, fmt_us_from_ps(r.paper_v), fmt_us_from_ps(r.fitted_v)});
    csv_rows.push_back({r.name, fmt_us_from_ps(r.paper_v), fmt_us_from_ps(r.fitted_v)});
  }
  std::printf("\n=== Table 1: model parameters (paper vs. fitted from simulator) ===\n%s",
              table.str().c_str());
  std::printf("max relative fit error: %.2e\n", fit.max_relative_error);
  write_csv(harness::results_dir() + "/table1_params.csv",
            {"parameter", "paper_us", "fitted_us"}, csv_rows);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_table();
  return 0;
}
