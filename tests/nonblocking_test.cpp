// Tests for the iRCCE-style non-blocking send/recv layer.
#include <gtest/gtest.h>

#include "common/require.h"
#include "rma/nonblocking.h"

namespace ocb::rma {
namespace {

void seed(scc::SccChip& chip, CoreId core, std::size_t offset, std::size_t bytes,
          std::uint64_t salt) {
  auto w = chip.memory(core).host_bytes(offset, bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    w[i] = static_cast<std::byte>((i * 17 + salt) & 0xff);
  }
}

bool check(scc::SccChip& chip, CoreId core, std::size_t offset, std::size_t bytes,
           std::uint64_t salt) {
  const auto r = chip.memory(core).host_bytes(offset, bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    if (r[i] != static_cast<std::byte>((i * 17 + salt) & 0xff)) return false;
  }
  return true;
}

TEST(AsyncTwoSided, WaitBasedRoundTrip) {
  scc::SccChip chip;
  AsyncTwoSided async(chip);
  const std::size_t bytes = 3 * 251 * 32 + 40;  // several chunks + tail
  seed(chip, 2, 0, bytes, 5);
  chip.spawn(2, [&](scc::Core& me) -> sim::Task<void> {
    auto req = async.isend(me, 9, 0, bytes);
    co_await async.wait(me, req);
    EXPECT_TRUE(async.done(req));
  });
  chip.spawn(9, [&](scc::Core& me) -> sim::Task<void> {
    auto req = async.irecv(me, 2, 4096, bytes);
    co_await async.wait(me, req);
  });
  ASSERT_TRUE(chip.run().completed());
  EXPECT_TRUE(check(chip, 9, 4096, bytes, 5));
}

TEST(AsyncTwoSided, TestDrivenProgressWithCompute) {
  scc::SccChip chip;
  AsyncTwoSided async(chip);
  const std::size_t bytes = 2 * 251 * 32;
  seed(chip, 0, 0, bytes, 7);
  int sender_probes = 0;
  chip.spawn(0, [&](scc::Core& me) -> sim::Task<void> {
    auto req = async.isend(me, 1, 0, bytes);
    for (;;) {
      const bool sent = co_await async.test(me, req);
      if (sent) break;
      ++sender_probes;
      co_await me.busy(5 * sim::kMicrosecond);  // overlapped compute
    }
  });
  chip.spawn(1, [&](scc::Core& me) -> sim::Task<void> {
    co_await me.busy(100 * sim::kMicrosecond);  // receiver shows up late
    auto req = async.irecv(me, 0, 0, bytes);
    co_await async.wait(me, req);
  });
  ASSERT_TRUE(chip.run().completed());
  EXPECT_TRUE(check(chip, 1, 0, bytes, 7));
  EXPECT_GT(sender_probes, 5) << "the sender really did interleave compute";
}

TEST(AsyncTwoSided, OverlapHidesWaitingTime) {
  // Blocking: wait-for-receiver THEN compute (serial). Non-blocking: the
  // compute runs inside the receiver's delay window.
  constexpr sim::Duration kReceiverDelay = 200 * sim::kMicrosecond;
  constexpr sim::Duration kComputeSlice = 4 * sim::kMicrosecond;
  constexpr int kSlices = 40;  // 160 us of compute
  const std::size_t bytes = 100 * 32;

  auto run_case = [&](bool overlapped) {
    scc::SccChip chip;
    AsyncTwoSided async(chip);
    seed(chip, 0, 0, bytes, 1);
    sim::Time sender_done = 0;
    chip.spawn(0, [&, overlapped](scc::Core& me) -> sim::Task<void> {
      auto req = async.isend(me, 1, 0, bytes);
      if (overlapped) {
        int slices = 0;
        bool done = false;
        while (slices < kSlices || !done) {
          if (!done) done = co_await async.test(me, req);
          if (slices < kSlices) {
            co_await me.busy(kComputeSlice);
            ++slices;
          }
        }
      } else {
        co_await async.wait(me, req);
        for (int i = 0; i < kSlices; ++i) co_await me.busy(kComputeSlice);
      }
      sender_done = me.now();
    });
    chip.spawn(1, [&](scc::Core& me) -> sim::Task<void> {
      co_await me.busy(kReceiverDelay);
      auto req = async.irecv(me, 0, 0, bytes);
      co_await async.wait(me, req);
    });
    EXPECT_TRUE(chip.run().completed());
    EXPECT_TRUE(check(chip, 1, 0, bytes, 1));
    return sender_done;
  };

  const sim::Time serial = run_case(false);
  const sim::Time overlapped = run_case(true);
  EXPECT_LT(overlapped + 100 * sim::kMicrosecond, serial)
      << "overlap must hide most of the receiver's 200 us delay";
}

TEST(AsyncTwoSided, ManyPairsConcurrently) {
  scc::SccChip chip;
  AsyncTwoSided async(chip);
  constexpr std::size_t kBytes = 512;
  for (CoreId s = 0; s < 24; ++s) seed(chip, s, 0, kBytes, 40 + s);
  for (CoreId s = 0; s < 24; ++s) {
    const CoreId d = s + 24;
    chip.spawn(s, [&, d](scc::Core& me) -> sim::Task<void> {
      auto req = async.isend(me, d, 0, kBytes);
      co_await async.wait(me, req);
    });
    chip.spawn(d, [&, s](scc::Core& me) -> sim::Task<void> {
      auto req = async.irecv(me, s, 0, kBytes);
      co_await async.wait(me, req);
    });
  }
  ASSERT_TRUE(chip.run().completed());
  for (CoreId s = 0; s < 24; ++s) {
    EXPECT_TRUE(check(chip, s + 24, 0, kBytes, 40 + s)) << s;
  }
}

TEST(AsyncTwoSided, SequentialRequestsOnOnePair) {
  scc::SccChip chip;
  AsyncTwoSided async(chip);
  seed(chip, 0, 0, 1000, 1);
  seed(chip, 0, 2048, 1000, 2);
  chip.spawn(0, [&](scc::Core& me) -> sim::Task<void> {
    auto a = async.isend(me, 1, 0, 1000);
    co_await async.wait(me, a);
    auto b = async.isend(me, 1, 2048, 1000);
    co_await async.wait(me, b);
  });
  chip.spawn(1, [&](scc::Core& me) -> sim::Task<void> {
    auto a = async.irecv(me, 0, 0, 1000);
    co_await async.wait(me, a);
    auto b = async.irecv(me, 0, 2048, 1000);
    co_await async.wait(me, b);
  });
  ASSERT_TRUE(chip.run().completed());
  EXPECT_TRUE(check(chip, 1, 0, 1000, 1));
  EXPECT_TRUE(check(chip, 1, 2048, 1000, 2));
}

TEST(AsyncTwoSided, ArgumentValidation) {
  scc::SccChip chip;
  AsyncTwoSided async(chip);
  bool self_send = false, dup = false, foreign = false;
  chip.spawn(0, [&](scc::Core& me) -> sim::Task<void> {
    try {
      async.isend(me, 0, 0, 32);
    } catch (const PreconditionError&) {
      self_send = true;
    }
    auto first = async.isend(me, 1, 0, 32);
    try {
      async.isend(me, 1, 64, 32);  // second outstanding to the same pair
    } catch (const PreconditionError&) {
      dup = true;
    }
    (void)first;
    co_return;
  });
  chip.spawn(2, [&](scc::Core& me) -> sim::Task<void> {
    auto req = async.isend(me, 3, 0, 32);
    co_await me.busy(1);
    try {
      // Tested by the wrong core.
      co_await async.test(me.chip().core(4), req);
    } catch (const PreconditionError&) {
      foreign = true;
    }
  });
  chip.run();  // stalls are fine here (unmatched sends)
  EXPECT_TRUE(self_send);
  EXPECT_TRUE(dup);
  EXPECT_TRUE(foreign);
}

TEST(AsyncTwoSided, EmptyHandleRejected) {
  scc::SccChip chip;
  AsyncTwoSided async(chip);
  AsyncTwoSided::Request empty;
  EXPECT_THROW(async.done(empty), PreconditionError);
}

}  // namespace
}  // namespace ocb::rma
