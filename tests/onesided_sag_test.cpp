// Tests for the one-sided scatter-allgather extension (§5.4's suggested
// alternative design): delivery correctness across sizes/parties/roots,
// protocol safety across back-to-back and rotated-root broadcasts, layout
// validation, and the performance ordering it was built to demonstrate.
#include <gtest/gtest.h>

#include <tuple>

#include "common/require.h"
#include "core/onesided_sag.h"
#include "harness/measurement.h"

namespace ocb::core {
namespace {

void seed(scc::SccChip& chip, CoreId core, std::size_t offset, std::size_t bytes,
          std::uint64_t salt) {
  auto w = chip.memory(core).host_bytes(offset, bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    w[i] = static_cast<std::byte>((i * 29 + salt * 11 + (i >> 9)) & 0xff);
  }
}

bool delivered(scc::SccChip& chip, CoreId root, int parties, std::size_t offset,
               std::size_t bytes) {
  const auto want = chip.memory(root).host_bytes(offset, bytes);
  for (CoreId c = 0; c < parties; ++c) {
    if (c == root) continue;
    const auto got = chip.memory(c).host_bytes(offset, bytes);
    if (!std::equal(want.begin(), want.end(), got.begin())) return false;
  }
  return true;
}

using Case = std::tuple<int, std::size_t, int>;  // parties, bytes, root
class OneSidedSagDelivery : public ::testing::TestWithParam<Case> {};

TEST_P(OneSidedSagDelivery, DeliversExactBytes) {
  const auto [parties, bytes, root] = GetParam();
  scc::SccChip chip;
  OneSidedSagOptions opt;
  opt.parties = parties;
  OneSidedScatterAllgather bcast(chip, opt);
  seed(chip, root, 0, bytes, 77);
  for (CoreId c = 0; c < parties; ++c) {
    chip.spawn(c, [&bcast, root, bytes](scc::Core& me) -> sim::Task<void> {
      co_await bcast.run(me, root, 0, bytes);
    });
  }
  ASSERT_TRUE(chip.run().completed());
  EXPECT_TRUE(delivered(chip, root, parties, 0, bytes));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, OneSidedSagDelivery,
    ::testing::Values(
        // fewer lines than cores (empty tail slices)
        Case{48, 32, 0}, Case{48, 10 * 32, 0},
        // slices below / at / above the 84-line chunk (multi-chunk rounds)
        Case{48, 48 * 32, 0}, Case{48, 82 * 48 * 32, 0},
        Case{48, 82 * 48 * 32 + 40 * 32, 0}, Case{48, 4096 * 32, 0},
        // ragged byte counts
        Case{48, 4096 * 32 + 7, 0}, Case{48, 999, 0},
        // rotated roots
        Case{48, 5000, 13}, Case{48, 5000, 47},
        // small / odd rings
        Case{2, 100, 0}, Case{2, 100, 1}, Case{3, 300, 1}, Case{5, 2048, 3},
        Case{17, 1700 * 32, 9}, Case{33, 3300, 32}));

TEST(OneSidedSag, BackToBackBroadcastsStaySound) {
  scc::SccChip chip;
  OneSidedSagOptions opt;
  OneSidedScatterAllgather bcast(chip, opt);
  constexpr std::size_t kBytes = 500 * 32;
  for (int r = 0; r < 4; ++r) seed(chip, 0, r * kBytes, kBytes, 30 + r);
  for (CoreId c = 0; c < opt.parties; ++c) {
    chip.spawn(c, [&bcast](scc::Core& me) -> sim::Task<void> {
      for (int r = 0; r < 4; ++r) {
        co_await bcast.run(me, 0, static_cast<std::size_t>(r) * kBytes, kBytes);
      }
    });
  }
  ASSERT_TRUE(chip.run().completed());
  for (int r = 0; r < 4; ++r) {
    EXPECT_TRUE(delivered(chip, 0, opt.parties, r * kBytes, kBytes)) << r;
  }
}

TEST(OneSidedSag, AlternatingRootsStaySound) {
  scc::SccChip chip;
  OneSidedSagOptions opt;
  OneSidedScatterAllgather bcast(chip, opt);
  const std::vector<CoreId> roots{0, 31, 7};
  constexpr std::size_t kBytes = 300 * 32;
  for (std::size_t r = 0; r < roots.size(); ++r) {
    seed(chip, roots[r], r * kBytes, kBytes, 60 + r);
  }
  for (CoreId c = 0; c < opt.parties; ++c) {
    chip.spawn(c, [&bcast, &roots](scc::Core& me) -> sim::Task<void> {
      for (std::size_t r = 0; r < roots.size(); ++r) {
        co_await bcast.run(me, roots[r], r * kBytes, kBytes);
      }
    });
  }
  ASSERT_TRUE(chip.run().completed());
  for (std::size_t r = 0; r < roots.size(); ++r) {
    EXPECT_TRUE(delivered(chip, roots[r], opt.parties, r * kBytes, kBytes))
        << "root " << roots[r];
  }
}

TEST(OneSidedSag, LayoutFillsTheMpbExactly) {
  scc::SccChip chip;
  OneSidedSagOptions opt;  // defaults: base 0, chunk 82
  OneSidedScatterAllgather bcast(chip, opt);
  EXPECT_EQ(bcast.stage_ready_line(), 0u);
  EXPECT_EQ(bcast.inbox_line(), 4u);
  EXPECT_EQ(bcast.stage_line(0), 86u);
  EXPECT_EQ(bcast.stage_line(1), 168u);
  EXPECT_EQ(bcast.fence_line(), 250u);
  EXPECT_EQ(bcast.fence_line() + 6, kMpbCacheLines);  // 6 barrier rounds for 48
  EXPECT_THROW(bcast.stage_line(2), PreconditionError);

  OneSidedSagOptions too_big;
  too_big.chunk_lines = 83;
  EXPECT_THROW(OneSidedScatterAllgather(chip, too_big), PreconditionError);
  OneSidedSagOptions shifted;
  shifted.mpb_base_line = 1;
  EXPECT_THROW(OneSidedScatterAllgather(chip, shifted), PreconditionError);
}

TEST(OneSidedSag, AgreesWithTwoSidedVariant) {
  const std::size_t bytes = 1234 * 32 + 5;
  std::vector<std::byte> results[2];
  int i = 0;
  for (BcastKind kind :
       {BcastKind::kOneSidedScatterAllgather, BcastKind::kScatterAllgather}) {
    scc::SccChip chip;
    BcastSpec spec;
    spec.kind = kind;
    auto algo = make_broadcast(chip, spec);
    seed(chip, 0, 0, bytes, 99);
    for (CoreId c = 0; c < spec.parties; ++c) {
      chip.spawn(c, [&algo, bytes](scc::Core& me) -> sim::Task<void> {
        co_await algo->run(me, 0, 0, bytes);
      });
    }
    ASSERT_TRUE(chip.run().completed());
    const auto got = chip.memory(29).host_bytes(0, bytes);
    results[i++].assign(got.begin(), got.end());
  }
  EXPECT_EQ(results[0], results[1]);
}

TEST(OneSidedSag, BeatsTwoSidedThroughputButNotOcBcast) {
  // The extension's raison d'etre (§5.4): one-sided primitives alone lift
  // scatter-allgather meaningfully, but the tree + pipeline of OC-Bcast
  // remains clearly ahead — supporting the paper's design choice.
  auto throughput = [](BcastKind kind) {
    harness::BcastRunSpec spec;
    spec.algorithm.kind = kind;
    spec.message_bytes = 4096 * kCacheLineBytes;
    spec.iterations = 2;
    const harness::BcastRunResult r = run_broadcast(spec);
    EXPECT_TRUE(r.content_ok);
    return r.throughput_mbps;
  };
  const double onesided = throughput(BcastKind::kOneSidedScatterAllgather);
  const double twosided = throughput(BcastKind::kScatterAllgather);
  const double oc = throughput(BcastKind::kOcBcast);
  EXPECT_GT(onesided, twosided * 1.15);
  EXPECT_GT(oc, onesided * 1.3);
}

TEST(OneSidedSag, FactoryAndLabel) {
  scc::SccChip chip;
  BcastSpec spec;
  spec.kind = BcastKind::kOneSidedScatterAllgather;
  EXPECT_EQ(make_broadcast(chip, spec)->name(), "one-sided scatter-allgather");
  EXPECT_EQ(spec_label(spec), "os-sag");
}

}  // namespace
}  // namespace ocb::core
