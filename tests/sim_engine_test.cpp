// Unit tests for the discrete-event engine: time, ordering, spawn/run
// semantics, stalled-process detection, teardown.
#include <gtest/gtest.h>

#include <vector>

#include "common/require.h"
#include "sim/condition.h"
#include "sim/engine.h"

namespace ocb::sim {
namespace {

Task<void> record_at(Engine& e, Duration d, std::vector<int>* log, int id) {
  co_await e.sleep(d);
  log->push_back(id);
}

TEST(Engine, StartsAtTimeZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0u);
}

TEST(Engine, EventsRunInTimeOrder) {
  Engine e;
  std::vector<int> log;
  e.spawn(record_at(e, 30, &log, 3));
  e.spawn(record_at(e, 10, &log, 1));
  e.spawn(record_at(e, 20, &log, 2));
  e.run();
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, TiesBreakByInsertionOrder) {
  Engine e;
  std::vector<int> log;
  for (int i = 0; i < 5; ++i) e.spawn(record_at(e, 100, &log, i));
  e.run();
  EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, NowAdvancesMonotonically) {
  Engine e;
  std::vector<Time> times;
  e.spawn([](Engine& eng, std::vector<Time>* t) -> Task<void> {
    for (int i = 0; i < 10; ++i) {
      co_await eng.sleep(7);
      t->push_back(eng.now());
    }
  }(e, &times));
  e.run();
  ASSERT_EQ(times.size(), 10u);
  for (std::size_t i = 0; i < times.size(); ++i) EXPECT_EQ(times[i], 7 * (i + 1));
}

TEST(Engine, SchedulingInThePastThrows) {
  Engine e;
  bool threw = false;
  e.spawn([](Engine& eng, bool* t) -> Task<void> {
    co_await eng.sleep(100);
    try {
      eng.schedule(50, std::noop_coroutine());
    } catch (const PreconditionError&) {
      *t = true;
    }
  }(e, &threw));
  e.run();
  EXPECT_TRUE(threw);
}

TEST(Engine, RunReportsEventCountAndEndTime) {
  Engine e;
  std::vector<int> log;
  e.spawn(record_at(e, 42, &log, 0));
  const RunResult r = e.run();
  EXPECT_EQ(r.end_time, 42u);
  EXPECT_GE(r.events_processed, 2u);  // spawn start + sleep wake
  EXPECT_TRUE(r.completed());
}

TEST(Engine, StalledProcessDetected) {
  Engine e;
  Trigger never(e);
  e.spawn([](Trigger& t) -> Task<void> { co_await t.wait(); }(never));
  const RunResult r = e.run();
  EXPECT_EQ(r.stalled_processes, 1u);
  EXPECT_FALSE(r.completed());
}

TEST(Engine, StalledTeardownDoesNotLeak) {
  // Covered by ASAN/valgrind when enabled; structurally: destroying the
  // engine with a parked coroutine chain must not crash.
  Engine e;
  auto trigger = std::make_unique<Trigger>(e);
  e.spawn([](Trigger& t) -> Task<void> {
    co_await t.wait();
  }(*trigger));
  e.run();
  SUCCEED();
}

TEST(Engine, MaxEventsStopsEarly) {
  Engine e;
  e.spawn([](Engine& eng) -> Task<void> {
    for (int i = 0; i < 1000; ++i) co_await eng.sleep(1);
  }(e));
  const RunResult r = e.run(/*max_events=*/10);
  EXPECT_FALSE(r.completed());
  EXPECT_LE(r.events_processed, 10u);
  // Run can be resumed afterwards.
  const RunResult r2 = e.run();
  EXPECT_TRUE(r2.completed());
  EXPECT_EQ(r2.end_time, 1000u);
}

TEST(Engine, LiveProcessCountTracksCompletion) {
  Engine e;
  std::vector<int> log;
  e.spawn(record_at(e, 10, &log, 0));
  e.spawn(record_at(e, 20, &log, 1));
  EXPECT_EQ(e.live_processes(), 2u);
  e.run();
  EXPECT_EQ(e.live_processes(), 0u);
}

TEST(Engine, SpawnDuringRunWorks) {
  Engine e;
  std::vector<int> log;
  e.spawn([](Engine& eng, std::vector<int>* l) -> Task<void> {
    co_await eng.sleep(5);
    l->push_back(1);
    eng.spawn(record_at(eng, 5, l, 2));
  }(e, &log));
  e.run();
  EXPECT_EQ(log, (std::vector<int>{1, 2}));
}

TEST(Engine, ScheduleFnCallbackRuns) {
  Engine e;
  int hits = 0;
  auto fn = [](void* ctx) { ++*static_cast<int*>(ctx); };
  e.schedule_fn(10, fn, &hits);
  e.schedule_fn(20, fn, &hits);
  const RunResult r = e.run();
  EXPECT_EQ(hits, 2);
  EXPECT_EQ(r.end_time, 20u);
}

TEST(Engine, NullCallbackThrows) {
  Engine e;
  EXPECT_THROW(e.schedule_fn(10, nullptr, nullptr), PreconditionError);
}

TEST(Engine, EmptyTaskSpawnThrows) {
  Engine e;
  Task<void> t;
  EXPECT_THROW(e.spawn(std::move(t)), PreconditionError);
}

TEST(Trigger, FireWakesAllWaiters) {
  Engine e;
  Trigger t(e);
  int woken = 0;
  for (int i = 0; i < 3; ++i) {
    e.spawn([](Trigger& trg, int* w) -> Task<void> {
      co_await trg.wait();
      ++*w;
    }(t, &woken));
  }
  e.spawn([](Engine& eng, Trigger& trg) -> Task<void> {
    co_await eng.sleep(100);
    trg.fire();
  }(e, t));
  e.run();
  EXPECT_EQ(woken, 3);
}

TEST(Trigger, EpochCountsFires) {
  Engine e;
  Trigger t(e);
  EXPECT_EQ(t.epoch(), 0u);
  t.fire();
  t.fire();
  EXPECT_EQ(t.epoch(), 2u);
}

TEST(Trigger, WaitUnlessChangedSkipsMissedFire) {
  Engine e;
  Trigger t(e);
  bool resumed = false;
  e.spawn([](Trigger& trg, bool* r) -> Task<void> {
    const std::uint64_t seen = trg.epoch();
    trg.fire();  // fire happens "during the sample window"
    co_await trg.wait_unless_changed(seen);
    *r = true;
  }(t, &resumed));
  const RunResult res = e.run();
  EXPECT_TRUE(resumed) << "missed fire must not strand the waiter";
  EXPECT_TRUE(res.completed());
}

TEST(Trigger, WaiterRegisteredAfterFireWaits) {
  Engine e;
  Trigger t(e);
  t.fire();
  e.spawn([](Trigger& trg) -> Task<void> { co_await trg.wait(); }(t));
  const RunResult r = e.run();
  EXPECT_EQ(r.stalled_processes, 1u);
}

TEST(Rendezvous, ReleasesAllAtLastArrival) {
  Engine e;
  Rendezvous rv(e, 3);
  std::vector<Time> release;
  for (int i = 0; i < 3; ++i) {
    e.spawn([](Engine& eng, Rendezvous& r, std::vector<Time>* out, int id)
                -> Task<void> {
      co_await eng.sleep(static_cast<Duration>(10 * (id + 1)));
      co_await r.arrive();
      out->push_back(eng.now());
    }(e, rv, &release, i));
  }
  e.run();
  ASSERT_EQ(release.size(), 3u);
  for (Time t : release) EXPECT_EQ(t, 30u) << "all release at the last arrival";
}

TEST(Rendezvous, ReusableAcrossRounds) {
  Engine e;
  Rendezvous rv(e, 2);
  int rounds_done = 0;
  for (int i = 0; i < 2; ++i) {
    e.spawn([](Engine& eng, Rendezvous& r, int* done, int id) -> Task<void> {
      for (int round = 0; round < 5; ++round) {
        co_await eng.sleep(static_cast<Duration>(id + 1));
        co_await r.arrive();
      }
      ++*done;
    }(e, rv, &rounds_done, i));
  }
  const RunResult res = e.run();
  EXPECT_TRUE(res.completed());
  EXPECT_EQ(rounds_done, 2);
}

}  // namespace
}  // namespace ocb::sim
