// Tests for the OC-Bcast algorithm: delivery correctness across fan-outs,
// roots, sizes and option combinations; layout validation; pipelining
// sanity; back-to-back broadcasts.
#include <gtest/gtest.h>

#include <tuple>

#include "core/ocbcast.h"
#include "sim/condition.h"

namespace ocb::core {
namespace {

void seed(scc::SccChip& chip, CoreId core, std::size_t offset, std::size_t bytes,
          std::uint64_t salt) {
  auto w = chip.memory(core).host_bytes(offset, bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    w[i] = static_cast<std::byte>((i * 131 + salt * 17 + (i >> 7)) & 0xff);
  }
}

bool delivered(scc::SccChip& chip, CoreId root, int parties, std::size_t offset,
               std::size_t bytes) {
  const auto want = chip.memory(root).host_bytes(offset, bytes);
  for (CoreId c = 0; c < parties; ++c) {
    if (c == root) continue;
    const auto got = chip.memory(c).host_bytes(offset, bytes);
    if (!std::equal(want.begin(), want.end(), got.begin())) return false;
  }
  return true;
}

/// Runs one broadcast for every core, returns true if it completed and
/// delivered correct bytes everywhere.
bool run_bcast(OcBcastOptions opt, CoreId root, std::size_t bytes) {
  scc::SccChip chip;
  OcBcast bcast(chip, opt);
  seed(chip, root, 0, bytes, 42);
  for (CoreId c = 0; c < opt.parties; ++c) {
    chip.spawn(c, [&bcast, root, bytes](scc::Core& me) -> sim::Task<void> {
      co_await bcast.run(me, root, 0, bytes);
    });
  }
  if (!chip.run().completed()) return false;
  return delivered(chip, root, opt.parties, 0, bytes);
}

using Case = std::tuple<int, int, std::size_t>;  // parties, k, bytes
class OcBcastDelivery : public ::testing::TestWithParam<Case> {};

TEST_P(OcBcastDelivery, DeliversExactBytes) {
  const auto [parties, k, bytes] = GetParam();
  OcBcastOptions opt;
  opt.parties = parties;
  opt.k = k;
  EXPECT_TRUE(run_bcast(opt, /*root=*/0, bytes));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, OcBcastDelivery,
    ::testing::Values(
        // sub-line and line-boundary sizes
        Case{48, 7, 1}, Case{48, 7, 31}, Case{48, 7, 32}, Case{48, 7, 33},
        // around the 96-line chunk boundary (the Fig. 8b dip)
        Case{48, 7, 95 * 32}, Case{48, 7, 96 * 32}, Case{48, 7, 97 * 32},
        Case{48, 7, 192 * 32}, Case{48, 7, 193 * 32},
        // multi-chunk pipeline
        Case{48, 7, 1000 * 32},
        // the paper's other fan-outs
        Case{48, 2, 96 * 32}, Case{48, 2, 500 * 32}, Case{48, 47, 96 * 32},
        Case{48, 47, 300 * 32},
        // small machines and extreme fan-outs
        Case{2, 1, 64}, Case{5, 4, 320}, Case{12, 7, 4000}, Case{48, 1, 128},
        Case{48, 24, 96 * 32}));

class OcBcastRoots : public ::testing::TestWithParam<int> {};

TEST_P(OcBcastRoots, AnyRootWorks) {
  OcBcastOptions opt;
  opt.k = 7;
  EXPECT_TRUE(run_bcast(opt, /*root=*/GetParam(), 5000));
}

INSTANTIATE_TEST_SUITE_P(Roots, OcBcastRoots, ::testing::Values(0, 1, 7, 23, 47));

TEST(OcBcast, SingleBufferModeDelivers) {
  OcBcastOptions opt;
  opt.double_buffering = false;
  EXPECT_TRUE(run_bcast(opt, 0, 400 * 32));
}

TEST(OcBcast, SequentialNotificationDelivers) {
  OcBcastOptions opt;
  opt.sequential_notification = true;
  opt.k = 47;
  EXPECT_TRUE(run_bcast(opt, 0, 300 * 32));
}

TEST(OcBcast, BinaryNotificationBeatsSequentialAtHighFanout) {
  // §4.1: "sequential notification could impair performance especially if
  // k is large"; the binary tree parallelizes the flag writes.
  auto latency = [](bool sequential) {
    OcBcastOptions opt;
    opt.k = 47;
    opt.sequential_notification = sequential;
    scc::SccChip chip;
    OcBcast bcast(chip, opt);
    seed(chip, 0, 0, 32, 3);
    sim::Time last = 0;
    for (CoreId c = 0; c < opt.parties; ++c) {
      chip.spawn(c, [&bcast, &last](scc::Core& me) -> sim::Task<void> {
        co_await bcast.run(me, 0, 0, 32);
        last = std::max(last, me.now());
      });
    }
    EXPECT_TRUE(chip.run().completed());
    return last;
  };
  EXPECT_LT(latency(false), latency(true));
}

TEST(OcBcast, LeafDirectModeDelivers) {
  OcBcastOptions opt;
  opt.leaf_direct_to_memory = true;
  EXPECT_TRUE(run_bcast(opt, 0, 300 * 32));
}

TEST(OcBcast, DoubleBufferingImprovesMediumMessageLatency) {
  // The paper's §4.2 comparison at a fixed MPB budget: without double
  // buffering chunks are a full MPB buffer (192 lines, one buffer); with
  // it, two 96-line buffers pipeline at half the granularity. For
  // messages of 1..2 chunks, the finer pipeline wins on latency.
  auto latency = [](bool db, std::size_t bytes) {
    OcBcastOptions opt;
    opt.double_buffering = db;
    opt.chunk_lines = db ? 96 : 192;
    scc::SccChip chip;
    OcBcast bcast(chip, opt);
    seed(chip, 0, 0, bytes, 7);
    sim::Time last = 0;
    for (CoreId c = 0; c < opt.parties; ++c) {
      chip.spawn(c, [&bcast, &last, bytes](scc::Core& me) -> sim::Task<void> {
        co_await bcast.run(me, 0, 0, bytes);
        last = std::max(last, me.now());
      });
    }
    EXPECT_TRUE(chip.run().completed());
    return last;
  };
  for (std::size_t lines : {150u, 192u, 384u}) {
    EXPECT_LT(latency(true, lines * 32), latency(false, lines * 32))
        << lines << " lines";
  }
}

TEST(OcBcast, PeakThroughputInsensitiveToBuffering) {
  // Formula 15 has no buffering term: steady-state throughput is bound by
  // each core's serial per-chunk copy time. Reproduction finding: the
  // double-buffering benefit is latency (above), not peak throughput.
  auto elapsed = [](bool db) {
    OcBcastOptions opt;
    opt.double_buffering = db;
    opt.chunk_lines = db ? 96 : 192;
    scc::SccChip chip;
    OcBcast bcast(chip, opt);
    const std::size_t bytes = 4096 * 32;
    seed(chip, 0, 0, bytes, 7);
    sim::Time last = 0;
    for (CoreId c = 0; c < opt.parties; ++c) {
      chip.spawn(c, [&bcast, &last, bytes](scc::Core& me) -> sim::Task<void> {
        co_await bcast.run(me, 0, 0, bytes);
        last = std::max(last, me.now());
      });
    }
    EXPECT_TRUE(chip.run().completed());
    return static_cast<double>(last);
  };
  const double with_db = elapsed(true);
  const double without_db = elapsed(false);
  EXPECT_NEAR(with_db / without_db, 1.0, 0.10);
}

TEST(OcBcast, LeafDirectIsFasterForLeaves) {
  auto latency = [](bool direct) {
    OcBcastOptions opt;
    opt.leaf_direct_to_memory = direct;
    scc::SccChip chip;
    OcBcast bcast(chip, opt);
    const std::size_t bytes = 96 * 32;
    seed(chip, 0, 0, bytes, 9);
    sim::Time last = 0;
    for (CoreId c = 0; c < opt.parties; ++c) {
      chip.spawn(c, [&bcast, &last, bytes](scc::Core& me) -> sim::Task<void> {
        co_await bcast.run(me, 0, 0, bytes);
        last = std::max(last, me.now());
      });
    }
    EXPECT_TRUE(chip.run().completed());
    return last;
  };
  EXPECT_LT(latency(true), latency(false))
      << "§5.4: skipping the leaf staging copy must help";
}

TEST(OcBcast, BackToBackBroadcastsStaySound) {
  scc::SccChip chip;
  OcBcastOptions opt;
  OcBcast bcast(chip, opt);
  constexpr int kRounds = 6;
  constexpr std::size_t kBytes = 130 * 32;  // two chunks (96 + 34)
  for (int r = 0; r < kRounds; ++r) seed(chip, 0, r * kBytes, kBytes, r);
  for (CoreId c = 0; c < opt.parties; ++c) {
    chip.spawn(c, [&bcast](scc::Core& me) -> sim::Task<void> {
      for (int r = 0; r < kRounds; ++r) {
        co_await bcast.run(me, 0, static_cast<std::size_t>(r) * kBytes, kBytes);
      }
    });
  }
  ASSERT_TRUE(chip.run().completed());
  for (int r = 0; r < kRounds; ++r) {
    EXPECT_TRUE(delivered(chip, 0, opt.parties, r * kBytes, kBytes)) << "round " << r;
  }
}

TEST(OcBcast, AlternatingRootsStaySound) {
  scc::SccChip chip;
  OcBcastOptions opt;
  OcBcast bcast(chip, opt);
  const std::vector<CoreId> roots{0, 17, 47, 3};
  constexpr std::size_t kBytes = 200 * 32;
  for (std::size_t r = 0; r < roots.size(); ++r) {
    seed(chip, roots[r], r * kBytes, kBytes, 100 + r);
  }
  for (CoreId c = 0; c < opt.parties; ++c) {
    chip.spawn(c, [&bcast, &roots](scc::Core& me) -> sim::Task<void> {
      for (std::size_t r = 0; r < roots.size(); ++r) {
        co_await bcast.run(me, roots[r], r * kBytes, kBytes);
      }
    });
  }
  ASSERT_TRUE(chip.run().completed());
  for (std::size_t r = 0; r < roots.size(); ++r) {
    EXPECT_TRUE(delivered(chip, roots[r], opt.parties, r * kBytes, kBytes))
        << "root " << roots[r];
  }
}

TEST(OcBcast, LayoutValidation) {
  scc::SccChip chip;
  OcBcastOptions too_big;
  too_big.k = 47;
  too_big.chunk_lines = 110;  // 48 flags + 220 lines > 256
  EXPECT_THROW(OcBcast(chip, too_big), PreconditionError);

  OcBcastOptions k_too_large;
  k_too_large.k = 48;
  EXPECT_THROW(OcBcast(chip, k_too_large), PreconditionError);

  OcBcastOptions fits;  // k=7: 8 flags + 192 buffer lines = 200
  EXPECT_NO_THROW(OcBcast(chip, fits));

  OcBcastOptions max_k;  // k=47: 48 flags + 192 = 240
  max_k.k = 47;
  EXPECT_NO_THROW(OcBcast(chip, max_k));
}

TEST(OcBcast, LayoutLines) {
  scc::SccChip chip;
  OcBcastOptions opt;  // k = 7, chunks of 96, base 0
  OcBcast bcast(chip, opt);
  EXPECT_EQ(bcast.notify_line(), 0u);
  EXPECT_EQ(bcast.done_line(0), 1u);
  EXPECT_EQ(bcast.done_line(6), 7u);
  EXPECT_THROW(bcast.done_line(7), PreconditionError);
  EXPECT_EQ(bcast.buffer_line(0), 8u);
  EXPECT_EQ(bcast.buffer_line(1), 104u);
  EXPECT_THROW(bcast.buffer_line(2), PreconditionError);
}

TEST(OcBcast, NonParticipantRejected) {
  scc::SccChip chip;
  OcBcastOptions opt;
  opt.parties = 4;
  opt.k = 2;
  OcBcast bcast(chip, opt);
  bool threw = false;
  chip.spawn(10, [&](scc::Core& me) -> sim::Task<void> {
    try {
      co_await bcast.run(me, 0, 0, 32);
    } catch (const PreconditionError&) {
      threw = true;
    }
  });
  ASSERT_TRUE(chip.run().completed());
  EXPECT_TRUE(threw);
}

TEST(OcBcast, NamesDescribeOptions) {
  scc::SccChip chip;
  OcBcastOptions opt;
  EXPECT_EQ(OcBcast(chip, opt).name(), "oc-bcast k=7");
  opt.double_buffering = false;
  EXPECT_NE(OcBcast(chip, opt).name().find("single-buffer"), std::string::npos);
  opt = OcBcastOptions{};
  opt.leaf_direct_to_memory = true;
  EXPECT_NE(OcBcast(chip, opt).name().find("leaf-direct"), std::string::npos);
}

TEST(OcBcast, PipelineLatencyScalesSubLinearlyWithDepth) {
  // With pipelining, latency(2n chunks) << 2 * latency(n chunks) + const;
  // concretely the marginal per-chunk cost must be well below the
  // first-chunk cost for a deep message.
  auto latency = [](std::size_t lines) {
    OcBcastOptions opt;
    scc::SccChip chip;
    OcBcast bcast(chip, opt);
    seed(chip, 0, 0, lines * 32, 1);
    sim::Time last = 0;
    for (CoreId c = 0; c < opt.parties; ++c) {
      chip.spawn(c, [&bcast, &last, lines](scc::Core& me) -> sim::Task<void> {
        co_await bcast.run(me, 0, 0, lines * 32);
        last = std::max(last, me.now());
      });
    }
    EXPECT_TRUE(chip.run().completed());
    return last;
  };
  const sim::Time one = latency(96);
  const sim::Time ten = latency(960);
  EXPECT_LT(ten, 10 * one) << "pipelining must amortize the tree depth";
}

}  // namespace
}  // namespace ocb::core
