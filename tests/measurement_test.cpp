// Tests for the experiment harness: broadcast measurement, point-to-point
// op timing, the contention and mesh-stress experiments, and reporting.
#include <gtest/gtest.h>

#include "harness/measurement.h"
#include "harness/report.h"
#include "harness/sweep.h"
#include "model/primitives.h"

namespace ocb::harness {
namespace {

TEST(RunBroadcast, BasicOcBcast) {
  BcastRunSpec spec;
  spec.message_bytes = 96 * 32;
  spec.iterations = 3;
  spec.warmup = 1;
  const BcastRunResult r = run_broadcast(spec);
  EXPECT_TRUE(r.content_ok);
  EXPECT_EQ(r.latency_us.count(), 3u);
  EXPECT_GT(r.latency_us.mean(), 0.0);
  EXPECT_GT(r.throughput_mbps, 0.0);
  EXPECT_GT(r.events, 0u);
}

TEST(RunBroadcast, DeterministicAcrossRuns) {
  BcastRunSpec spec;
  spec.message_bytes = 50 * 32;
  spec.iterations = 2;
  const BcastRunResult a = run_broadcast(spec);
  const BcastRunResult b = run_broadcast(spec);
  EXPECT_DOUBLE_EQ(a.latency_us.mean(), b.latency_us.mean());
  EXPECT_EQ(a.events, b.events);
}

TEST(RunBroadcast, IterationsAreIndependent) {
  // With rotating offsets and rendezvous separation, warm iterations must
  // not drift (deterministic, contention-identical conditions).
  BcastRunSpec spec;
  spec.message_bytes = 10 * 32;
  spec.iterations = 6;
  spec.warmup = 2;
  const BcastRunResult r = run_broadcast(spec);
  EXPECT_NEAR(r.latency_us.min(), r.latency_us.max(),
              0.02 * r.latency_us.mean());
}

TEST(BcastSession, ReuseMatchesFreshChip) {
  // A session reusing one chip across run() calls must reproduce the
  // fresh-chip samples exactly: a completed broadcast leaves no protocol
  // state behind, and the slot cursor keeps reads uncached.
  BcastRunSpec spec;
  spec.message_bytes = 70 * 32;
  spec.iterations = 3;
  spec.warmup = 1;
  const BcastRunResult fresh = run_broadcast(spec);
  BcastSession session(spec);
  const BcastRunResult first = session.run();
  const BcastRunResult second = session.run();
  ASSERT_EQ(first.latency_us.count(), fresh.latency_us.count());
  ASSERT_EQ(second.latency_us.count(), fresh.latency_us.count());
  for (std::size_t i = 0; i < fresh.latency_us.count(); ++i) {
    EXPECT_DOUBLE_EQ(first.latency_us.samples()[i],
                     fresh.latency_us.samples()[i]);
    EXPECT_DOUBLE_EQ(second.latency_us.samples()[i],
                     fresh.latency_us.samples()[i]);
  }
  EXPECT_TRUE(first.content_ok);
  EXPECT_TRUE(second.content_ok);
  // The simulated clock keeps advancing across calls on one chip, while
  // event counts are per-call deltas.
  EXPECT_GT(second.end_time, first.end_time);
  EXPECT_EQ(first.events, fresh.events);
}

TEST(RunBroadcast, AllAlgorithmsVerify) {
  for (core::BcastKind kind :
       {core::BcastKind::kOcBcast, core::BcastKind::kBinomial,
        core::BcastKind::kScatterAllgather}) {
    BcastRunSpec spec;
    spec.algorithm.kind = kind;
    spec.message_bytes = 97 * 32;
    spec.iterations = 2;
    const BcastRunResult r = run_broadcast(spec);
    EXPECT_TRUE(r.content_ok);
  }
}

TEST(RunBroadcast, NonZeroRoot) {
  BcastRunSpec spec;
  spec.root = 29;
  spec.message_bytes = 200 * 32;
  spec.iterations = 2;
  EXPECT_TRUE(run_broadcast(spec).content_ok);
}

TEST(RunBroadcast, BudgetGuardTriggers) {
  BcastRunSpec spec;
  spec.message_bytes = 8u << 20;  // 8 MiB
  spec.iterations = 20;           // 168 MiB of slots > budget
  EXPECT_THROW(run_broadcast(spec), PreconditionError);
}

TEST(OpMeasurement, MatchesModelAcrossDistances) {
  const model::ModelParams p = model::ModelParams::paper();
  scc::SccConfig cfg;
  cfg.cache_enabled = false;
  for (int d : {1, 3, 5, 9}) {
    const auto [actor, target] = core_pair_at_mpb_distance(d);
    const double measured =
        measure_op_completion_us(cfg, OpKind::kGetMpbToMpb, actor, target, 8, 4);
    EXPECT_NEAR(measured, sim::to_us(model::get_to_mpb_completion(p, 8, d)), 1e-9)
        << "d=" << d;
  }
  for (int d : {1, 2, 3, 4}) {
    const CoreId c = core_at_mem_distance(d);
    const double measured =
        measure_op_completion_us(cfg, OpKind::kPutMemToMpb, c, c, 8, 4);
    // target==actor: put into own MPB, d_dst = 1.
    EXPECT_NEAR(measured, sim::to_us(model::put_from_mem_completion(p, 8, d, 1)),
                1e-9)
        << "mem d=" << d;
  }
}

TEST(OpMeasurement, PairFinders) {
  for (int d = 1; d <= 9; ++d) {
    const auto [a, b] = core_pair_at_mpb_distance(d);
    EXPECT_NE(a, b);
    EXPECT_EQ(noc::routers_traversed(noc::tile_of_core(a), noc::tile_of_core(b)), d);
  }
  EXPECT_THROW(core_pair_at_mpb_distance(10), PreconditionError);
  EXPECT_THROW(core_at_mem_distance(5), PreconditionError);
}

TEST(Contention, KneeBeyondTwentyFourAccessors) {
  // §3.3: no measurable contention up to ~24 concurrent gets; clear
  // contention at 48. Queueing isolated per core (fixed distance).
  const scc::SccConfig cfg;
  const auto at8 = measure_mpb_contention(cfg, 8, 128, true, 4);
  const auto at24 = measure_mpb_contention(cfg, 24, 128, true, 4);
  const ContentionResult all = measure_mpb_contention(cfg, 48, 128, true, 4);
  // Fixed-distance core: queue-free up to 24 accessors.
  EXPECT_LT(at24.per_core_us[2], at8.per_core_us[2] * 1.10)
      << "24 accessors ~ uncontended";
  // Average jumps clearly between 24 and 48 (under positional arbitration
  // the backlog lands on the low-priority cores, dragging the average up).
  EXPECT_GT(all.avg_us, at24.avg_us * 1.25) << "48 accessors clearly contended";
  EXPECT_EQ(all.per_core_us.size(), 48u);
}

TEST(Contention, UnfairnessUnderFullLoad) {
  // "The slowest core is more than two times slower than the fastest."
  const scc::SccConfig cfg;  // positional arbitration by default
  const ContentionResult all = measure_mpb_contention(cfg, 48, 128, true, 4);
  const auto [min_it, max_it] =
      std::minmax_element(all.per_core_us.begin(), all.per_core_us.end());
  EXPECT_GT(*max_it / *min_it, 1.5);
}

TEST(Contention, FifoArbitrationIsFairer) {
  scc::SccConfig fifo;
  fifo.arbitration = sim::Arbitration::kFifo;
  scc::SccConfig positional;
  const auto spread = [](const ContentionResult& r) {
    const auto [a, b] = std::minmax_element(r.per_core_us.begin(), r.per_core_us.end());
    return *b / *a;
  };
  EXPECT_LT(spread(measure_mpb_contention(fifo, 48, 128, true, 4)),
            spread(measure_mpb_contention(positional, 48, 128, true, 4)));
}

TEST(Contention, SingleLinePutsShowSameKneeShape) {
  // Fig. 4b: 1-line puts stay near the single-core latency at small core
  // counts and contend visibly at 48.
  const scc::SccConfig cfg;
  const ContentionResult one = measure_mpb_contention(cfg, 1, 1, false, 4);
  const ContentionResult few = measure_mpb_contention(cfg, 12, 1, false, 4);
  const ContentionResult all = measure_mpb_contention(cfg, 48, 1, false, 4);
  EXPECT_LT(few.avg_us, one.avg_us * 1.25);
  EXPECT_GT(all.avg_us, one.avg_us * 1.5);
}

TEST(MeshStress, LoadedLinkDoesNotSlowVictim) {
  // §3.3's headline: the mesh is not a contention point at SCC scale.
  const MeshStressResult r = measure_mesh_stress(scc::SccConfig{});
  EXPECT_GT(r.unloaded_us, 0.0);
  EXPECT_LT(r.loaded_us, r.unloaded_us * 1.05);
}

TEST(Sweep, ProducesOnePointPerSize) {
  BcastRunSpec base;
  base.warmup = 1;
  const std::vector<std::size_t> sizes{1, 8, 32};
  const Series s = sweep_message_sizes(base, "k=7", sizes);
  ASSERT_EQ(s.points.size(), 3u);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    EXPECT_EQ(s.points[i].lines, sizes[i]);
    EXPECT_TRUE(s.points[i].content_ok);
    EXPECT_GT(s.points[i].latency_us, 0.0);
  }
  EXPECT_LT(s.points[0].latency_us, s.points[2].latency_us);
}

TEST(Sweep, SizeListsMatchThePaperRanges) {
  const auto small = small_message_sizes();
  EXPECT_EQ(small.front(), 1u);
  EXPECT_EQ(small.back(), 192u);
  EXPECT_TRUE(std::is_sorted(small.begin(), small.end()));
  EXPECT_TRUE(std::count(small.begin(), small.end(), 96));
  EXPECT_TRUE(std::count(small.begin(), small.end(), 97));

  const auto large = large_message_sizes();
  EXPECT_EQ(large.back(), 32768u);
  EXPECT_TRUE(std::count(large.begin(), large.end(), 97));
  EXPECT_TRUE(std::is_sorted(large.begin(), large.end()));
}

TEST(Sweep, LineupMatchesPaperFigures) {
  const auto specs = paper_algorithm_lineup();
  ASSERT_EQ(specs.size(), 5u);
  EXPECT_EQ(core::spec_label(specs[0]), "k=2");
  EXPECT_EQ(core::spec_label(specs[1]), "k=7");
  EXPECT_EQ(core::spec_label(specs[2]), "k=47");
  EXPECT_EQ(core::spec_label(specs[3]), "binomial");
  EXPECT_EQ(core::spec_label(specs[4]), "s-ag");
}

TEST(Report, TablesRenderAllSeries) {
  Series a{"k=7", {{1, 10.0, 3.0, true}, {8, 20.0, 12.0, true}}};
  Series b{"binomial", {{1, 21.6, 1.4, true}}};
  const std::string lat = render_latency_table({a, b});
  EXPECT_NE(lat.find("k=7"), std::string::npos);
  EXPECT_NE(lat.find("binomial"), std::string::npos);
  EXPECT_NE(lat.find("21.60"), std::string::npos);
  const std::string tput = render_throughput_table({a});
  EXPECT_NE(tput.find("12.00"), std::string::npos);
}

TEST(Report, CorruptionIsFlaggedLoudly) {
  Series bad{"k=7", {{1, 10.0, 3.0, false}}};
  EXPECT_NE(render_latency_table({bad}).find("[CORRUPT]"), std::string::npos);
}

TEST(Report, ComparisonShowsDeviation) {
  const std::string out = render_comparison(
      {{"peak throughput", 34.30, 35.0, "MB/s"}, {"zero paper", 0.0, 5.0, "x"}});
  EXPECT_NE(out.find("peak throughput"), std::string::npos);
  EXPECT_NE(out.find("2.0%"), std::string::npos);
  EXPECT_NE(out.find("n/a"), std::string::npos);
}

}  // namespace
}  // namespace ocb::harness
