// noc::Topology — the geometry API behind every chip (DESIGN.md §14).
//
// Four contracts are gated here:
//  * Topology::scc() reproduces the legacy global-constant geometry
//    bit-for-bit: tile/core maps, the quadrant memory-controller
//    assignment, distances, and the historical id/6 PDES lane partition.
//    (The timeline-level half of this gate — fig4 / fault_test /
//    trace_timeline byte-identity — runs in CI against captured
//    baselines.)
//  * Non-default meshes validate: out-of-range cores/tiles are rejected
//    with the chip's own bounds, not the SCC's, and the PDES lane
//    partition stays monotone-contiguous on meshes where the old id/6
//    split would silently mis-partition (tile counts not divisible by the
//    lane count).
//  * The "ocb-topology-v1" JSON record round-trips, and parse() accepts
//    the bench-flag spellings.
//  * Chips built from non-SCC topologies actually run: OC-Bcast delivers
//    on a 16x16 mesh, serial and PDES timelines stay in parity there, and
//    the hierarchical broadcast delivers on a multi-die chip for roots on
//    any die.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "coll/registry.h"
#include "core/hier_bcast.h"
#include "harness/measurement.h"
#include "noc/geometry.h"
#include "noc/memctrl.h"
#include "noc/topology.h"
#include "scc/chip.h"
#include "sim/engine.h"

namespace ocb {
namespace {

using noc::TileCoord;
using noc::Topology;

// --- Topology::scc() equivalence -------------------------------------------

TEST(TopologyScc, ReproducesLegacyConstants) {
  const Topology& t = Topology::scc();
  EXPECT_EQ(t.num_cores(), kNumCores);
  EXPECT_EQ(t.num_tiles(), kNumTiles);
  EXPECT_EQ(t.mesh_cols(), kMeshCols);
  EXPECT_EQ(t.mesh_rows(), kMeshRows);
  EXPECT_EQ(t.cores_per_tile(), 2);
  EXPECT_EQ(t.num_dies(), 1);
  EXPECT_EQ(t.num_memory_controllers(), noc::kNumMemoryControllers);
  for (CoreId c = 0; c < kNumCores; ++c) {
    // Legacy layout: cores 2t, 2t+1 on tile t; tiles row-major on 6x4.
    EXPECT_EQ(t.tile_index_of_core(c), c / 2);
    EXPECT_EQ(t.tile_of_core(c), (TileCoord{(c / 2) % 6, (c / 2) / 6}));
    // Legacy quadrant MC assignment: left/right half x bottom/top half.
    const TileCoord tile = t.tile_of_core(c);
    const int quadrant = (tile.x >= 3 ? 1 : 0) + (tile.y >= 2 ? 2 : 0);
    EXPECT_EQ(t.mc_index_for_core(c), quadrant) << "core " << c;
    EXPECT_EQ(t.mem_distance(c),
              Topology::manhattan(tile, t.mc_tile_for_core(c)) + 1);
  }
  const TileCoord mc_tiles[] = {{0, 0}, {5, 0}, {0, 2}, {5, 2}};
  for (int m = 0; m < 4; ++m) EXPECT_EQ(t.mc_tile(m), mc_tiles[m]);
  EXPECT_EQ(t.describe(), "scc");
}

TEST(TopologyScc, GeometryShimsForwardToScc) {
  // The legacy free helpers must stay exact aliases of Topology::scc().
  for (CoreId c = 0; c < kNumCores; ++c) {
    EXPECT_EQ(noc::tile_of_core(c), Topology::scc().tile_of_core(c));
    EXPECT_EQ(noc::mc_index_for_core(c), Topology::scc().mc_index_for_core(c));
    EXPECT_EQ(noc::mem_distance(c), Topology::scc().mem_distance(c));
  }
}

TEST(TopologyScc, PdesLanePartitionIsTheHistoricalIdOverSix) {
  scc::SccChip chip;
  for (CoreId c = 0; c < kNumCores; ++c) {
    EXPECT_EQ(chip.lane_of_core(c), static_cast<unsigned>(c / 6)) << c;
  }
}

// --- non-default meshes ----------------------------------------------------

TEST(TopologyMesh, OutOfRangeUsesTheChipsOwnBounds) {
  const Topology t = Topology::mesh(16, 16);  // 256 tiles, 512 cores
  EXPECT_EQ(t.num_cores(), 512);
  EXPECT_NO_THROW(t.require_core(511));
  EXPECT_THROW(t.require_core(512), PreconditionError);
  EXPECT_THROW(t.require_core(-1), PreconditionError);
  EXPECT_NO_THROW(t.require_tile(255));
  EXPECT_THROW(t.require_tile(256), PreconditionError);
  EXPECT_THROW(t.tile_index(TileCoord{16, 0}), PreconditionError);

  const Topology small = Topology::mesh(2, 2, /*cores_per_tile=*/1);
  EXPECT_EQ(small.num_cores(), 4);
  EXPECT_THROW(small.require_core(4), PreconditionError);
  EXPECT_THROW(small.tile_of_core(4), PreconditionError);
}

TEST(TopologyMesh, RejectsDegenerateSpecs) {
  Topology::Spec zero_tiles;
  zero_tiles.tiles_x = 0;
  EXPECT_THROW(Topology{zero_tiles}, PreconditionError);
  Topology::Spec zero_cores;
  zero_cores.cores_per_tile = 0;
  EXPECT_THROW(Topology{zero_cores}, PreconditionError);
  Topology::Spec bad_mc;
  bad_mc.mc_tiles_per_die = {TileCoord{6, 0}};  // outside the 6x4 die
  EXPECT_THROW(Topology{bad_mc}, PreconditionError);
}

TEST(TopologyMesh, LanePartitionMonotoneOnAwkwardMeshes) {
  // The legacy id/6 split assumed 6 tile columns; a 5x5 mesh (25 tiles,
  // not divisible by 8 lanes) must still partition into monotone
  // contiguous lane ranges covering all lanes that get tiles.
  for (const auto& topo :
       {Topology::mesh(5, 5), Topology::mesh(3, 1, 1), Topology::mesh(16, 16)}) {
    scc::SccConfig cfg;
    cfg.topology = topo;
    scc::SccChip chip(cfg);  // OCB_ENSUREs monotone-contiguity internally
    unsigned prev = 0;
    for (int tile = 0; tile < topo.num_tiles(); ++tile) {
      const unsigned lane = chip.lane_of_tile_index(tile);
      EXPECT_LT(lane, sim::Engine::kMaxLanes);
      EXPECT_GE(lane, prev) << "lane map must be monotone in tile index";
      prev = lane;
    }
    for (CoreId c = 0; c < topo.num_cores(); ++c) {
      EXPECT_EQ(chip.lane_of_core(c),
                chip.lane_of_tile_index(topo.tile_index_of_core(c)));
    }
  }
}

// --- dies ------------------------------------------------------------------

TEST(TopologyDies, GlobalMeshAndCrossings) {
  // 2x2 dies of 3x2 tiles: global mesh 6x4, 48 cores — SCC-sized but
  // carved into four dies.
  const Topology t = Topology::multi_die(2, 2, 3, 2);
  EXPECT_EQ(t.num_dies(), 4);
  EXPECT_EQ(t.mesh_cols(), 6);
  EXPECT_EQ(t.mesh_rows(), 4);
  EXPECT_EQ(t.num_cores(), 48);
  EXPECT_EQ(t.die_of_tile(TileCoord{0, 0}), 0);
  EXPECT_EQ(t.die_of_tile(TileCoord{3, 0}), 1);
  EXPECT_EQ(t.die_of_tile(TileCoord{0, 2}), 2);
  EXPECT_EQ(t.die_of_tile(TileCoord{5, 3}), 3);
  EXPECT_TRUE(t.link_crosses_die(TileCoord{2, 0}, TileCoord{3, 0}));
  EXPECT_FALSE(t.link_crosses_die(TileCoord{1, 0}, TileCoord{2, 0}));
  EXPECT_EQ(t.die_crossings(TileCoord{0, 0}, TileCoord{5, 3}), 2);
  EXPECT_EQ(t.die_crossings(TileCoord{1, 1}, TileCoord{2, 1}), 0);
  // Every core belongs to exactly one die; members are ascending and
  // leaders are their minima.
  std::vector<CoreId> seen;
  for (int d = 0; d < t.num_dies(); ++d) {
    const std::vector<CoreId> members = t.cores_of_die(d);
    ASSERT_FALSE(members.empty());
    EXPECT_TRUE(std::is_sorted(members.begin(), members.end()));
    EXPECT_EQ(t.die_leader(d), members.front());
    for (CoreId c : members) {
      EXPECT_EQ(t.die_of_core(c), d);
      seen.push_back(c);
    }
  }
  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(static_cast<int>(seen.size()), t.num_cores());
  for (CoreId c = 0; c < t.num_cores(); ++c) EXPECT_EQ(seen[c], c);
}

// --- serialization ---------------------------------------------------------

TEST(TopologyJson, RoundTripsEveryShape) {
  const Topology shapes[] = {
      Topology::scc(), Topology::mesh(16, 16), Topology::mesh(3, 1, 1),
      Topology::multi_die(2, 2, 8, 8), Topology::multi_die(1, 4, 6, 4, 4)};
  for (const Topology& t : shapes) {
    SCOPED_TRACE(t.describe());
    const std::string json = t.to_json();
    EXPECT_NE(json.find("ocb-topology-v1"), std::string::npos);
    const Topology back = Topology::from_json(json);
    EXPECT_EQ(back, t);
    EXPECT_EQ(back.describe(), t.describe());
    EXPECT_EQ(back.to_json(), json);
  }
}

TEST(TopologyJson, RejectsWrongSchema) {
  EXPECT_THROW(Topology::from_json("{}"), PreconditionError);
  EXPECT_THROW(Topology::from_json("{\"schema\":\"ocb-topology-v2\"}"),
               PreconditionError);
}

TEST(TopologyParse, BenchFlagSpellings) {
  EXPECT_EQ(Topology::parse("scc"), Topology::scc());
  EXPECT_EQ(Topology::parse("mesh:16x16"), Topology::mesh(16, 16));
  EXPECT_EQ(Topology::parse("dies:2x2:mesh:8x8"),
            Topology::multi_die(2, 2, 8, 8));
  EXPECT_THROW(Topology::parse(""), PreconditionError);
  EXPECT_THROW(Topology::parse("mesh:16"), PreconditionError);
  EXPECT_THROW(Topology::parse("torus:4x4"), PreconditionError);
}

// --- chips on non-SCC topologies ------------------------------------------

harness::BcastRunResult run_on_mesh(const std::string& algo,
                                    const Topology& topo,
                                    unsigned pdes_threads) {
  harness::BcastRunSpec spec;
  spec.algorithm_name = algo;
  spec.params.parties = 0;  // all cores of the chip
  spec.config.topology = topo;
  spec.config.pdes_threads = pdes_threads;
  spec.message_bytes = 64 * kCacheLineBytes;
  spec.iterations = 2;
  spec.warmup = 1;
  return harness::run_broadcast(spec);
}

TEST(TopologyChips, OcBcastDeliversOn256CoreMesh) {
  const Topology t = Topology::mesh(16, 16, /*cores_per_tile=*/1);
  const harness::BcastRunResult run = run_on_mesh("ocbcast", t, 0);
  EXPECT_TRUE(run.content_ok);
  EXPECT_GT(run.latency_us.mean(), 0.0);
}

TEST(TopologyChips, PdesParityOnNonSccMesh) {
  // Satellite of the lane-partition fix: the 5x5 mesh is exactly the
  // shape the old id/6 split mis-partitioned. Serial vs PDES must agree
  // to the usual sub-1% link-serialization haircut, and pdes(N) must be
  // bit-identical to pdes(1).
  const Topology t = Topology::mesh(5, 5);
  const harness::BcastRunResult serial = run_on_mesh("ocbcast", t, 0);
  const harness::BcastRunResult one = run_on_mesh("ocbcast", t, 1);
  const harness::BcastRunResult four = run_on_mesh("ocbcast", t, 4);
  ASSERT_TRUE(serial.content_ok);
  ASSERT_TRUE(one.content_ok);
  ASSERT_TRUE(four.content_ok);
  EXPECT_EQ(one.pdes_threads, 1u);
  EXPECT_EQ(four.pdes_threads, 4u);
  EXPECT_EQ(one.end_time, four.end_time);
  EXPECT_EQ(one.events, four.events);
  EXPECT_NEAR(static_cast<double>(one.end_time),
              static_cast<double>(serial.end_time),
              0.01 * static_cast<double>(serial.end_time));
}

// --- hierarchical broadcast ------------------------------------------------

void seed(scc::SccChip& chip, CoreId core, std::size_t bytes) {
  auto w = chip.memory(core).host_bytes(0, bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    w[i] = static_cast<std::byte>((i * 131 + 17 + (i >> 7)) & 0xff);
  }
}

bool hier_delivers(const Topology& topo, CoreId root, std::size_t bytes,
                   int die_k = 4) {
  scc::SccConfig cfg;
  cfg.topology = topo;
  scc::SccChip chip(cfg);
  core::HierarchicalBcastOptions opt;
  opt.die_k = die_k;
  core::HierarchicalBcast bcast(chip, opt);
  seed(chip, root, bytes);
  for (CoreId c = 0; c < topo.num_cores(); ++c) {
    chip.spawn(c, [&bcast, root, bytes](scc::Core& me) -> sim::Task<void> {
      co_await bcast.run(me, root, 0, bytes);
    });
  }
  if (!chip.run().completed()) return false;
  const auto want = chip.memory(root).host_bytes(0, bytes);
  for (CoreId c = 0; c < topo.num_cores(); ++c) {
    if (c == root) continue;
    const auto got = chip.memory(c).host_bytes(0, bytes);
    if (!std::equal(want.begin(), want.end(), got.begin())) return false;
  }
  return true;
}

TEST(HierBcast, DeliversOnMultiDieForRootsOnEveryDie) {
  const Topology t = Topology::multi_die(2, 2, 3, 2);
  for (int d = 0; d < t.num_dies(); ++d) {
    const CoreId root = t.cores_of_die(d).back();  // non-leader roots too
    EXPECT_TRUE(hier_delivers(t, root, 5000)) << "root " << root;
    EXPECT_TRUE(hier_delivers(t, t.die_leader(d), 96 * 32))
        << "leader root, die " << d;
  }
}

TEST(HierBcast, DegradesToSingleDieAndMultiChunk) {
  EXPECT_TRUE(hier_delivers(Topology::scc(), 0, 300 * 32));
  EXPECT_TRUE(hier_delivers(Topology::multi_die(2, 1, 3, 4), 7, 1000 * 32,
                            /*die_k=*/1));
}

TEST(HierBcast, RegistryFactoryHonorsTopology) {
  scc::SccConfig cfg;
  cfg.topology = Topology::multi_die(2, 1, 3, 4);
  scc::SccChip chip(cfg);
  coll::Params params;
  params.parties = 0;
  auto coll = coll::make("hier-ocbcast", chip, params);
  EXPECT_EQ(coll->parties(), cfg.topology.num_cores());
  EXPECT_NE(coll->name().find("hier-ocbcast"), std::string::npos);
}

}  // namespace
}  // namespace ocb
