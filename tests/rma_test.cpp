// Unit tests for one-sided RMA: data integrity, exact agreement with the
// model formulas (7)-(12), bounds, and flags.
#include <gtest/gtest.h>

#include "model/primitives.h"
#include "rma/flags.h"
#include "rma/rma.h"

namespace ocb::rma {
namespace {

void seed_mpb(scc::SccChip& chip, CoreId core, std::size_t first_line,
              std::size_t lines, std::uint8_t tag) {
  for (std::size_t i = 0; i < lines; ++i) {
    CacheLine cl;
    for (std::size_t b = 0; b < kCacheLineBytes; ++b) {
      cl.bytes[b] = static_cast<std::byte>(tag + i + b);
    }
    chip.mpb(core).host_line(first_line + i) = cl;
  }
}

bool check_mpb(scc::SccChip& chip, CoreId core, std::size_t first_line,
               std::size_t lines, std::uint8_t tag) {
  for (std::size_t i = 0; i < lines; ++i) {
    const CacheLine& cl = chip.mpb(core).load(first_line + i);
    for (std::size_t b = 0; b < kCacheLineBytes; ++b) {
      if (cl.bytes[b] != static_cast<std::byte>(tag + i + b)) return false;
    }
  }
  return true;
}

// --- data integrity across all four op kinds ------------------------------

class RmaIntegrity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RmaIntegrity, PutMpbToMpbMovesBytes) {
  const std::size_t lines = GetParam();
  scc::SccChip chip;
  seed_mpb(chip, 4, 0, lines, 0x10);
  chip.spawn(4, [lines](scc::Core& me) -> sim::Task<void> {
    co_await put_mpb_to_mpb(me, MpbAddr{30, 10}, 0, lines);
  });
  ASSERT_TRUE(chip.run().completed());
  EXPECT_TRUE(check_mpb(chip, 30, 10, lines, 0x10));
}

TEST_P(RmaIntegrity, PutMemToMpbMovesBytes) {
  const std::size_t lines = GetParam();
  scc::SccChip chip;
  auto src = chip.memory(4).host_bytes(0, lines * kCacheLineBytes);
  for (std::size_t i = 0; i < src.size(); ++i) src[i] = static_cast<std::byte>(i * 3);
  chip.spawn(4, [lines](scc::Core& me) -> sim::Task<void> {
    co_await put_mem_to_mpb(me, MpbAddr{11, 0}, 0, lines);
  });
  ASSERT_TRUE(chip.run().completed());
  for (std::size_t i = 0; i < lines; ++i) {
    const CacheLine& cl = chip.mpb(11).load(i);
    for (std::size_t b = 0; b < kCacheLineBytes; ++b) {
      ASSERT_EQ(cl.bytes[b], static_cast<std::byte>((i * kCacheLineBytes + b) * 3));
    }
  }
}

TEST_P(RmaIntegrity, GetMpbToMpbMovesBytes) {
  const std::size_t lines = GetParam();
  scc::SccChip chip;
  seed_mpb(chip, 22, 5, lines, 0x40);
  chip.spawn(9, [lines](scc::Core& me) -> sim::Task<void> {
    co_await get_mpb_to_mpb(me, 100, MpbAddr{22, 5}, lines);
  });
  ASSERT_TRUE(chip.run().completed());
  EXPECT_TRUE(check_mpb(chip, 9, 100, lines, 0x40));
}

TEST_P(RmaIntegrity, GetMpbToMemMovesBytes) {
  const std::size_t lines = GetParam();
  scc::SccChip chip;
  seed_mpb(chip, 22, 0, lines, 0x77);
  chip.spawn(9, [lines](scc::Core& me) -> sim::Task<void> {
    co_await get_mpb_to_mem(me, 1024, MpbAddr{22, 0}, lines);
  });
  ASSERT_TRUE(chip.run().completed());
  const auto dst = chip.memory(9).host_bytes(1024, lines * kCacheLineBytes);
  for (std::size_t i = 0; i < lines; ++i) {
    for (std::size_t b = 0; b < kCacheLineBytes; ++b) {
      ASSERT_EQ(dst[i * kCacheLineBytes + b], static_cast<std::byte>(0x77 + i + b));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RmaIntegrity,
                         ::testing::Values(1, 2, 7, 96, 128));

// --- exact timing agreement with Formulas 7-12 ----------------------------

struct TimingCase {
  std::size_t lines;
  CoreId actor;
  CoreId target;
};

class RmaTiming : public ::testing::TestWithParam<TimingCase> {};

sim::Duration run_timed(scc::SccChip& chip, CoreId actor,
                        std::function<sim::Task<void>(scc::Core&)> op) {
  sim::Duration out = 0;
  chip.spawn(actor, [&out, op = std::move(op)](scc::Core& me) -> sim::Task<void> {
    const sim::Time t0 = me.now();
    co_await op(me);
    out = me.now() - t0;
  });
  EXPECT_TRUE(chip.run().completed());
  return out;
}

TEST_P(RmaTiming, MatchesModelFormulas) {
  const TimingCase c = GetParam();
  const model::ModelParams p = model::ModelParams::paper();
  scc::SccConfig cfg;
  cfg.cache_enabled = false;  // model formulas assume cold memory reads
  const int d_mpb =
      noc::routers_traversed(noc::tile_of_core(c.actor), noc::tile_of_core(c.target));
  const int d_mem = noc::mem_distance(c.actor);

  {
    scc::SccChip chip(cfg);
    const sim::Duration t =
        run_timed(chip, c.actor, [&](scc::Core& me) -> sim::Task<void> {
          co_await put_mpb_to_mpb(me, MpbAddr{c.target, 0}, 0, c.lines);
        });
    EXPECT_EQ(t, model::put_from_mpb_completion(p, c.lines, d_mpb)) << "Formula 7";
  }
  {
    scc::SccChip chip(cfg);
    const sim::Duration t =
        run_timed(chip, c.actor, [&](scc::Core& me) -> sim::Task<void> {
          co_await put_mem_to_mpb(me, MpbAddr{c.target, 0}, 0, c.lines);
        });
    EXPECT_EQ(t, model::put_from_mem_completion(p, c.lines, d_mem, d_mpb))
        << "Formula 8";
  }
  {
    scc::SccChip chip(cfg);
    const sim::Duration t =
        run_timed(chip, c.actor, [&](scc::Core& me) -> sim::Task<void> {
          co_await get_mpb_to_mpb(me, 0, MpbAddr{c.target, 0}, c.lines);
        });
    EXPECT_EQ(t, model::get_to_mpb_completion(p, c.lines, d_mpb)) << "Formula 11";
  }
  {
    scc::SccChip chip(cfg);
    const sim::Duration t =
        run_timed(chip, c.actor, [&](scc::Core& me) -> sim::Task<void> {
          co_await get_mpb_to_mem(me, 0, MpbAddr{c.target, 0}, c.lines);
        });
    EXPECT_EQ(t, model::get_to_mem_completion(p, c.lines, d_mpb, d_mem))
        << "Formula 12";
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndDistances, RmaTiming,
    ::testing::Values(TimingCase{1, 0, 1},    // d=1 (tile mate)
                      TimingCase{4, 0, 2},    // d=2
                      TimingCase{8, 0, 47},   // d=9 (diagonal)
                      TimingCase{16, 10, 36}, // mid-mesh
                      TimingCase{96, 0, 3},   // a full OC-Bcast chunk
                      TimingCase{1, 13, 13}));  // local MPB, d=1

// --- bounds ----------------------------------------------------------------

TEST(RmaBounds, RejectsOutOfRange) {
  scc::SccChip chip;
  bool threw_len = false, threw_range = false, threw_align = false;
  chip.spawn(0, [&](scc::Core& me) -> sim::Task<void> {
    try {
      co_await put_mpb_to_mpb(me, MpbAddr{1, 0}, 0, 0);
    } catch (const PreconditionError&) {
      threw_len = true;
    }
    try {
      co_await get_mpb_to_mpb(me, 200, MpbAddr{1, 200}, 100);
    } catch (const PreconditionError&) {
      threw_range = true;
    }
    try {
      co_await get_mpb_to_mem(me, 17, MpbAddr{1, 0}, 1);
    } catch (const PreconditionError&) {
      threw_align = true;
    }
  });
  ASSERT_TRUE(chip.run().completed());
  EXPECT_TRUE(threw_len);
  EXPECT_TRUE(threw_range);
  EXPECT_TRUE(threw_align);
}

// --- flags -------------------------------------------------------------------

TEST(Flags, EncodeDecodeRoundTrip) {
  for (FlagValue v : {0ull, 1ull, 42ull, (1ull << 63)}) {
    EXPECT_EQ(decode_flag(encode_flag(v)), v);
  }
}

TEST(Flags, PackIsInjectivePerWriterAndSeq) {
  EXPECT_NE(pack_flag(0, 1), pack_flag(1, 1));
  EXPECT_NE(pack_flag(0, 1), pack_flag(0, 2));
  EXPECT_NE(pack_flag(5, 100), pack_flag(100, 5));
}

TEST(Flags, SetAndWaitAcrossCores) {
  scc::SccChip chip;
  FlagValue seen = 0;
  sim::Time set_done = 0, wake = 0;
  chip.spawn(0, [&](scc::Core& me) -> sim::Task<void> {
    co_await me.busy(1000 * sim::kNanosecond);
    co_await set_flag(me, MpbAddr{7, 3}, 99);
    set_done = me.now();
  });
  chip.spawn(7, [&](scc::Core& me) -> sim::Task<void> {
    seen = co_await wait_flag_at_least(me, MpbAddr{7, 3}, 99);
    wake = me.now();
  });
  ASSERT_TRUE(chip.run().completed());
  EXPECT_EQ(seen, 99u);
  EXPECT_GT(wake, 1000u * sim::kNanosecond);
  // Detection = one local read after the value lands; the set completes
  // after its ack, roughly when the waiter wakes.
  EXPECT_LT(wake, set_done + 500 * sim::kNanosecond);
}

TEST(Flags, WaitPassesImmediatelyWhenAlreadySet) {
  scc::SccChip chip;
  host_init_flag(chip, MpbAddr{3, 0}, 5);
  sim::Duration waited = 0;
  chip.spawn(3, [&](scc::Core& me) -> sim::Task<void> {
    const sim::Time t0 = me.now();
    co_await wait_flag_at_least(me, MpbAddr{3, 0}, 5);
    waited = me.now() - t0;
  });
  ASSERT_TRUE(chip.run().completed());
  // Exactly one local poll read.
  EXPECT_EQ(waited, scc::SccConfig{}.o_mpb() + 2 * scc::SccConfig{}.l_hop);
}

TEST(Flags, WaitEqualRejectsOtherValues) {
  scc::SccChip chip;
  std::vector<FlagValue> accepted;
  chip.spawn(0, [&](scc::Core& me) -> sim::Task<void> {
    for (FlagValue v : {3ull, 5ull, 7ull}) {
      co_await me.busy(200 * sim::kNanosecond);
      co_await set_flag(me, MpbAddr{9, 0}, v);
    }
  });
  chip.spawn(9, [&](scc::Core& me) -> sim::Task<void> {
    accepted.push_back(co_await wait_flag_equal(me, MpbAddr{9, 0}, 7));
  });
  ASSERT_TRUE(chip.run().completed());
  ASSERT_EQ(accepted.size(), 1u);
  EXPECT_EQ(accepted[0], 7u);
}

TEST(Flags, ManyWritersInterleavedAreNotLost) {
  // Stress the lost-wakeup window: many rapid stores, a waiter for the
  // final value. Regression test for the read-response race.
  scc::SccChip chip;
  constexpr int kWriters = 8;
  constexpr FlagValue kTarget = 64;
  int done = 0;
  for (int w = 0; w < kWriters; ++w) {
    chip.spawn(w, [&, w](scc::Core& me) -> sim::Task<void> {
      for (FlagValue v = static_cast<FlagValue>(w) + 1; v <= kTarget;
           v += kWriters) {
        co_await set_flag(me, MpbAddr{40, 0}, v);
      }
    });
  }
  chip.spawn(40, [&](scc::Core& me) -> sim::Task<void> {
    co_await wait_flag_at_least(me, MpbAddr{40, 0}, kTarget - kWriters + 1);
    ++done;
  });
  ASSERT_TRUE(chip.run().completed());
  EXPECT_EQ(done, 1);
}

}  // namespace
}  // namespace ocb::rma
