// Tests for the RCCE_comm baseline broadcasts (binomial tree and
// scatter-allgather) and the algorithm factory.
#include <gtest/gtest.h>

#include <tuple>

#include "core/bcast.h"
#include "core/binomial.h"
#include "core/scatter_allgather.h"

namespace ocb::core {
namespace {

void seed(scc::SccChip& chip, CoreId core, std::size_t offset, std::size_t bytes,
          std::uint64_t salt) {
  auto w = chip.memory(core).host_bytes(offset, bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    w[i] = static_cast<std::byte>((i * 37 + salt) & 0xff);
  }
}

bool delivered(scc::SccChip& chip, CoreId root, int parties, std::size_t offset,
               std::size_t bytes) {
  const auto want = chip.memory(root).host_bytes(offset, bytes);
  for (CoreId c = 0; c < parties; ++c) {
    if (c == root) continue;
    const auto got = chip.memory(c).host_bytes(offset, bytes);
    if (!std::equal(want.begin(), want.end(), got.begin())) return false;
  }
  return true;
}

bool run_spec(const BcastSpec& spec, CoreId root, std::size_t bytes) {
  scc::SccChip chip;
  auto algo = make_broadcast(chip, spec);
  seed(chip, root, 0, bytes, 5);
  for (CoreId c = 0; c < spec.parties; ++c) {
    chip.spawn(c, [&algo, root, bytes](scc::Core& me) -> sim::Task<void> {
      co_await algo->run(me, root, 0, bytes);
    });
  }
  if (!chip.run().completed()) return false;
  return delivered(chip, root, spec.parties, 0, bytes);
}

using Case = std::tuple<int, std::size_t, int>;  // parties, bytes, root
class BinomialDelivery : public ::testing::TestWithParam<Case> {};

TEST_P(BinomialDelivery, DeliversExactBytes) {
  const auto [parties, bytes, root] = GetParam();
  BcastSpec spec;
  spec.kind = BcastKind::kBinomial;
  spec.parties = parties;
  EXPECT_TRUE(run_spec(spec, root, bytes));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BinomialDelivery,
    ::testing::Values(Case{2, 32, 0}, Case{2, 32, 1}, Case{3, 100, 2},
                      Case{48, 1, 0}, Case{48, 32, 0}, Case{48, 8192, 0},
                      Case{48, 8192, 31}, Case{48, 251 * 32, 0},
                      Case{48, 251 * 32 + 5, 7}, Case{48, 64 * 1024, 0},
                      Case{17, 1000, 16}, Case{32, 4096, 15}));

class ScatterAllgatherDelivery : public ::testing::TestWithParam<Case> {};

TEST_P(ScatterAllgatherDelivery, DeliversExactBytes) {
  const auto [parties, bytes, root] = GetParam();
  BcastSpec spec;
  spec.kind = BcastKind::kScatterAllgather;
  spec.parties = parties;
  EXPECT_TRUE(run_spec(spec, root, bytes));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ScatterAllgatherDelivery,
    ::testing::Values(
        // fewer lines than cores: empty tail slices everywhere
        Case{48, 32, 0}, Case{48, 10 * 32, 0},
        // typical and boundary sizes
        Case{48, 48 * 32, 0}, Case{48, 96 * 32, 0}, Case{48, 3072 * 32, 0},
        Case{48, 3072 * 32 + 9, 0},
        // rotated roots
        Case{48, 5000, 5}, Case{48, 5000, 47},
        // odd and non-power-of-two rings (parity ordering edge cases)
        Case{3, 300, 0}, Case{5, 555, 3}, Case{17, 1700, 9}, Case{33, 3300, 32},
        // two cores: degenerate ring
        Case{2, 100, 0}, Case{2, 100, 1}));

TEST(Baselines, AllThreeAlgorithmsAgreeOnDeliveredBytes) {
  const std::size_t bytes = 777 * 32 + 3;
  std::vector<std::vector<std::byte>> results;
  for (BcastKind kind : {BcastKind::kOcBcast, BcastKind::kBinomial,
                         BcastKind::kScatterAllgather}) {
    BcastSpec spec;
    spec.kind = kind;
    scc::SccChip chip;
    auto algo = make_broadcast(chip, spec);
    seed(chip, 0, 0, bytes, 123);
    for (CoreId c = 0; c < spec.parties; ++c) {
      chip.spawn(c, [&algo, bytes](scc::Core& me) -> sim::Task<void> {
        co_await algo->run(me, 0, 0, bytes);
      });
    }
    ASSERT_TRUE(chip.run().completed());
    ASSERT_TRUE(delivered(chip, 0, spec.parties, 0, bytes));
    const auto got = chip.memory(47).host_bytes(0, bytes);
    results.emplace_back(got.begin(), got.end());
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[1], results[2]);
}

TEST(Baselines, BinomialLatencyBeatsScatterAllgatherForSmallMessages) {
  // §6.2 premise: binomial wins small, s-ag wins large.
  auto latency = [](BcastKind kind, std::size_t bytes) {
    BcastSpec spec;
    spec.kind = kind;
    scc::SccChip chip;
    auto algo = make_broadcast(chip, spec);
    seed(chip, 0, 0, bytes, 1);
    sim::Time last = 0;
    for (CoreId c = 0; c < spec.parties; ++c) {
      chip.spawn(c, [&algo, &last, bytes](scc::Core& me) -> sim::Task<void> {
        co_await algo->run(me, 0, 0, bytes);
        last = std::max(last, me.now());
      });
    }
    EXPECT_TRUE(chip.run().completed());
    return last;
  };
  EXPECT_LT(latency(BcastKind::kBinomial, 32),
            latency(BcastKind::kScatterAllgather, 32));
  EXPECT_GT(latency(BcastKind::kBinomial, 2048 * 32),
            latency(BcastKind::kScatterAllgather, 2048 * 32));
}

TEST(Baselines, FactoryProducesNamedAlgorithms) {
  scc::SccChip chip;
  BcastSpec spec;
  spec.kind = BcastKind::kOcBcast;
  spec.k = 47;
  EXPECT_EQ(make_broadcast(chip, spec)->name(), "oc-bcast k=47");
  EXPECT_EQ(spec_label(spec), "k=47");
  spec.kind = BcastKind::kBinomial;
  EXPECT_EQ(make_broadcast(chip, spec)->name(), "binomial");
  EXPECT_EQ(spec_label(spec), "binomial");
  spec.kind = BcastKind::kScatterAllgather;
  EXPECT_EQ(make_broadcast(chip, spec)->name(), "scatter-allgather");
  EXPECT_EQ(spec_label(spec), "s-ag");
}

TEST(Baselines, PartiesBoundsChecked) {
  scc::SccChip chip;
  BinomialOptions b;
  b.parties = 1;
  EXPECT_THROW(BinomialBcast(chip, b), PreconditionError);
  ScatterAllgatherOptions s;
  s.parties = 49;
  EXPECT_THROW(ScatterAllgatherBcast(chip, s), PreconditionError);
}

TEST(Baselines, BinomialBackToBackBroadcasts) {
  BcastSpec spec;
  spec.kind = BcastKind::kBinomial;
  scc::SccChip chip;
  auto algo = make_broadcast(chip, spec);
  constexpr std::size_t kBytes = 300 * 32;
  for (int r = 0; r < 3; ++r) seed(chip, 0, r * kBytes, kBytes, r + 9);
  for (CoreId c = 0; c < spec.parties; ++c) {
    chip.spawn(c, [&algo](scc::Core& me) -> sim::Task<void> {
      for (int r = 0; r < 3; ++r) {
        co_await algo->run(me, 0, static_cast<std::size_t>(r) * kBytes, kBytes);
      }
    });
  }
  ASSERT_TRUE(chip.run().completed());
  for (int r = 0; r < 3; ++r) {
    EXPECT_TRUE(delivered(chip, 0, spec.parties, r * kBytes, kBytes));
  }
}

}  // namespace
}  // namespace ocb::core
