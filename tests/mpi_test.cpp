// Tests for the MPI-flavoured facade: matched-call collectives over the
// coordinated MPB layout.
#include <gtest/gtest.h>

#include <cstring>

#include "common/require.h"
#include "mpi/communicator.h"

namespace ocb::mpi {
namespace {

void seed(scc::SccChip& chip, CoreId core, std::size_t offset, std::size_t bytes,
          std::uint64_t salt) {
  auto w = chip.memory(core).host_bytes(offset, bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    w[i] = static_cast<std::byte>((i + salt * 7) & 0xff);
  }
}

TEST(Communicator, SendRecvRoundTrip) {
  scc::SccChip chip;
  Communicator comm(chip);
  seed(chip, 3, 0, 5000, 1);
  chip.spawn(3, [&](scc::Core& me) -> sim::Task<void> {
    co_await comm.send(me, 9, 0, 5000);
  });
  chip.spawn(9, [&](scc::Core& me) -> sim::Task<void> {
    co_await comm.recv(me, 3, 128, 5000);
  });
  ASSERT_TRUE(chip.run().completed());
  const auto want = chip.memory(3).host_bytes(0, 5000);
  const auto got = chip.memory(9).host_bytes(128, 5000);
  EXPECT_TRUE(std::equal(want.begin(), want.end(), got.begin()));
}

TEST(Communicator, BcastDeliversEverywhere) {
  scc::SccChip chip;
  Communicator comm(chip);
  const std::size_t bytes = 700 * 32;
  seed(chip, 11, 0, bytes, 2);
  for (CoreId c = 0; c < kNumCores; ++c) {
    chip.spawn(c, [&, bytes](scc::Core& me) -> sim::Task<void> {
      co_await comm.bcast(me, 11, 0, bytes);
    });
  }
  ASSERT_TRUE(chip.run().completed());
  const auto want = chip.memory(11).host_bytes(0, bytes);
  for (CoreId c = 0; c < kNumCores; ++c) {
    const auto got = chip.memory(c).host_bytes(0, bytes);
    EXPECT_TRUE(std::equal(want.begin(), want.end(), got.begin())) << c;
  }
}

TEST(Communicator, BarrierSynchronizes) {
  scc::SccChip chip;
  Communicator comm(chip);
  sim::Time exits[kNumCores] = {};
  constexpr sim::Duration kLate = 80 * sim::kMicrosecond;
  for (CoreId c = 0; c < kNumCores; ++c) {
    chip.spawn(c, [&, c](scc::Core& me) -> sim::Task<void> {
      if (c == 40) co_await me.busy(kLate);
      co_await comm.barrier(me);
      exits[c] = me.now();
    });
  }
  ASSERT_TRUE(chip.run().completed());
  for (sim::Time t : exits) EXPECT_GE(t, kLate);
}

TEST(Communicator, GatherCollectsInRankOrder) {
  scc::SccChip chip;
  Communicator comm(chip);
  constexpr std::size_t kPer = 256;
  for (CoreId c = 0; c < kNumCores; ++c) seed(chip, c, 0, kPer, 100 + c);
  for (CoreId c = 0; c < kNumCores; ++c) {
    chip.spawn(c, [&](scc::Core& me) -> sim::Task<void> {
      co_await comm.gather(me, /*root=*/5, 0, 65536, kPer);
    });
  }
  ASSERT_TRUE(chip.run().completed());
  for (CoreId c = 0; c < kNumCores; ++c) {
    const auto want = chip.memory(c).host_bytes(0, kPer);
    const auto got = chip.memory(5).host_bytes(65536 + c * kPer, kPer);
    EXPECT_TRUE(std::equal(want.begin(), want.end(), got.begin())) << c;
  }
}

TEST(Communicator, ReduceSumsDoubles) {
  scc::SccChip chip;
  Communicator comm(chip);
  constexpr std::size_t kCount = 64;
  for (CoreId c = 0; c < kNumCores; ++c) {
    auto w = chip.memory(c).host_bytes(0, kCount * sizeof(double));
    for (std::size_t i = 0; i < kCount; ++i) {
      const double v = static_cast<double>(c) + static_cast<double>(i) * 0.5;
      std::memcpy(w.data() + i * sizeof(double), &v, sizeof v);
    }
  }
  for (CoreId c = 0; c < kNumCores; ++c) {
    chip.spawn(c, [&](scc::Core& me) -> sim::Task<void> {
      co_await comm.reduce_sum(me, /*root=*/0, 0, kCount, /*scratch=*/1 << 20);
    });
  }
  ASSERT_TRUE(chip.run().completed());
  const auto out = chip.memory(0).host_bytes(0, kCount * sizeof(double));
  for (std::size_t i = 0; i < kCount; ++i) {
    double v;
    std::memcpy(&v, out.data() + i * sizeof(double), sizeof v);
    // sum over c of (c + 0.5 i) = 47*48/2 + 48 * 0.5 i
    EXPECT_DOUBLE_EQ(v, 1128.0 + 24.0 * static_cast<double>(i)) << i;
  }
}

TEST(Communicator, CollectivesComposeInOneProgram) {
  // bcast -> compute -> reduce -> barrier, twice: the layouts must coexist.
  scc::SccChip chip;
  Communicator comm(chip);
  constexpr std::size_t kCount = 16;
  for (int round = 0; round < 2; ++round) {
    // (seeding happens before run; both rounds share buffers)
  }
  auto param = chip.memory(0).host_bytes(0, kCount * sizeof(double));
  for (std::size_t i = 0; i < kCount; ++i) {
    const double v = 1.0 + static_cast<double>(i);
    std::memcpy(param.data() + i * sizeof(double), &v, sizeof v);
  }
  int finished = 0;
  for (CoreId c = 0; c < kNumCores; ++c) {
    chip.spawn(c, [&](scc::Core& me) -> sim::Task<void> {
      for (int round = 0; round < 2; ++round) {
        co_await comm.bcast(me, 0, 0, kCount * sizeof(double));
        // Each rank contributes its received values (so the reduce result
        // is 48x the broadcast parameters).
        auto mine = me.chip().memory(me.id()).host_bytes(4096, kCount * sizeof(double));
        const auto in = me.chip().memory(me.id()).host_bytes(0, kCount * sizeof(double));
        std::memcpy(mine.data(), in.data(), kCount * sizeof(double));
        co_await comm.reduce_sum(me, 0, 4096, kCount, 1 << 20);
        co_await comm.barrier(me);
      }
      ++finished;
    });
  }
  ASSERT_TRUE(chip.run().completed());
  EXPECT_EQ(finished, kNumCores);
  const auto out = chip.memory(0).host_bytes(4096, kCount * sizeof(double));
  for (std::size_t i = 0; i < kCount; ++i) {
    double v;
    std::memcpy(&v, out.data() + i * sizeof(double), sizeof v);
    EXPECT_DOUBLE_EQ(v, 48.0 * (1.0 + static_cast<double>(i))) << i;
  }
}

TEST(Communicator, SubsetCommunicator) {
  scc::SccChip chip;
  Communicator comm(chip, /*size=*/6);
  EXPECT_EQ(comm.size(), 6);
  seed(chip, 0, 0, 1000, 9);
  for (CoreId c = 0; c < 6; ++c) {
    chip.spawn(c, [&](scc::Core& me) -> sim::Task<void> {
      co_await comm.bcast(me, 0, 0, 1000);
      co_await comm.barrier(me);
    });
  }
  ASSERT_TRUE(chip.run().completed());
  const auto want = chip.memory(0).host_bytes(0, 1000);
  const auto got = chip.memory(5).host_bytes(0, 1000);
  EXPECT_TRUE(std::equal(want.begin(), want.end(), got.begin()));
}

TEST(Communicator, ArgumentValidation) {
  scc::SccChip chip;
  EXPECT_THROW(Communicator(chip, 1), PreconditionError);
  EXPECT_THROW(Communicator(chip, 49), PreconditionError);
  Communicator comm(chip, 4);
  bool threw = false;
  chip.spawn(0, [&](scc::Core& me) -> sim::Task<void> {
    try {
      co_await comm.send(me, 7, 0, 32);
    } catch (const PreconditionError&) {
      threw = true;
    }
  });
  ASSERT_TRUE(chip.run().completed());
  EXPECT_TRUE(threw);
}

}  // namespace
}  // namespace ocb::mpi
