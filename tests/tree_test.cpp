// Unit and property tests for the OC-Bcast tree structure (paper Fig. 5).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>

#include "common/require.h"
#include "core/tree.h"

namespace ocb::core {
namespace {

TEST(KaryTree, PaperFigure5PropagationTree) {
  // s = 0, P = 12, k = 7 (the exact example of Figure 5).
  KaryTree tree(12, 7, 0);
  EXPECT_EQ(tree.children_of(0), (std::vector<CoreId>{1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(tree.children_of(1), (std::vector<CoreId>{8, 9, 10, 11}));
  for (CoreId c = 2; c <= 11; ++c) EXPECT_TRUE(tree.children_of(c).empty());
  EXPECT_EQ(tree.parent_of(0), -1);
  EXPECT_EQ(tree.parent_of(7), 0);
  EXPECT_EQ(tree.parent_of(8), 1);
  EXPECT_EQ(tree.max_depth(), 2);
}

TEST(KaryTree, PaperFigure5NotificationTrees) {
  KaryTree tree(12, 7, 0);
  // Root group: C0 -> C1,C2; C1 -> C3,C4; C2 -> C5,C6; C3 -> C7.
  EXPECT_EQ(tree.notify_own_targets(0), (std::vector<CoreId>{1, 2}));
  EXPECT_EQ(tree.notify_forward_targets(1), (std::vector<CoreId>{3, 4}));
  EXPECT_EQ(tree.notify_forward_targets(2), (std::vector<CoreId>{5, 6}));
  EXPECT_EQ(tree.notify_forward_targets(3), (std::vector<CoreId>{7}));
  EXPECT_TRUE(tree.notify_forward_targets(4).empty());
  EXPECT_TRUE(tree.notify_forward_targets(7).empty());
  // C1's own group: C1 -> C8,C9; C8 -> C10,C11.
  EXPECT_EQ(tree.notify_own_targets(1), (std::vector<CoreId>{8, 9}));
  EXPECT_EQ(tree.notify_forward_targets(8), (std::vector<CoreId>{10, 11}));
  EXPECT_TRUE(tree.notify_forward_targets(9).empty());
  // Notification depths within the root group.
  EXPECT_EQ(tree.notify_depth(1), 1);
  EXPECT_EQ(tree.notify_depth(2), 1);
  EXPECT_EQ(tree.notify_depth(3), 2);
  EXPECT_EQ(tree.notify_depth(6), 2);
  EXPECT_EQ(tree.notify_depth(7), 3);
}

TEST(KaryTree, RotatedRootMapsIds) {
  KaryTree tree(12, 7, 5);
  EXPECT_EQ(tree.index_of(5), 0);
  EXPECT_EQ(tree.core_at(0), 5);
  EXPECT_EQ(tree.children_of(5), (std::vector<CoreId>{6, 7, 8, 9, 10, 11, 0}));
  EXPECT_EQ(tree.parent_of(4), 6);  // index 11 -> parent index 1 -> core 6
}

TEST(KaryTree, RejectsBadArguments) {
  EXPECT_THROW(KaryTree(0, 1, 0), PreconditionError);
  EXPECT_THROW(KaryTree(4, 0, 0), PreconditionError);
  EXPECT_THROW(KaryTree(4, 2, 4), PreconditionError);
  KaryTree t(4, 2, 0);
  EXPECT_THROW(t.children_of(4), PreconditionError);
  EXPECT_THROW(t.core_at(4), PreconditionError);
}

// Property suite over (P, k, root) combinations.
using TreeParams = std::tuple<int, int, int>;  // P, k, root
class KaryTreeProperty : public ::testing::TestWithParam<TreeParams> {};

TEST_P(KaryTreeProperty, ParentChildConsistency) {
  const auto [p, k, root] = GetParam();
  KaryTree tree(p, k, root);
  std::map<CoreId, int> seen_as_child;
  for (CoreId c = 0; c < p; ++c) {
    for (CoreId child : tree.children_of(c)) {
      EXPECT_EQ(tree.parent_of(child), c);
      ++seen_as_child[child];
    }
    EXPECT_EQ(static_cast<int>(tree.children_of(c).size()), tree.child_count(c));
    EXPECT_LE(tree.child_count(c), k);
  }
  // Every non-root core is someone's child exactly once.
  EXPECT_EQ(static_cast<int>(seen_as_child.size()), p - 1);
  for (const auto& [child, n] : seen_as_child) {
    EXPECT_EQ(n, 1);
    EXPECT_NE(child, root);
  }
}

TEST_P(KaryTreeProperty, DepthIsParentDepthPlusOne) {
  const auto [p, k, root] = GetParam();
  KaryTree tree(p, k, root);
  EXPECT_EQ(tree.depth_of(root), 0);
  int max_seen = 0;
  for (CoreId c = 0; c < p; ++c) {
    if (c != root) {
      EXPECT_EQ(tree.depth_of(c), tree.depth_of(tree.parent_of(c)) + 1);
    }
    max_seen = std::max(max_seen, tree.depth_of(c));
  }
  EXPECT_EQ(tree.max_depth(), max_seen);
}

TEST_P(KaryTreeProperty, NotificationSpansEveryGroupExactlyOnce) {
  // Inside every {parent, children} group, the binary notification relation
  // must reach each child exactly once, starting from the parent's own
  // targets and closed under forwarding.
  const auto [p, k, root] = GetParam();
  KaryTree tree(p, k, root);
  for (CoreId parent = 0; parent < p; ++parent) {
    const std::vector<CoreId> children = tree.children_of(parent);
    if (children.empty()) continue;
    std::set<CoreId> group(children.begin(), children.end());
    std::set<CoreId> notified;
    std::vector<CoreId> frontier = tree.notify_own_targets(parent);
    while (!frontier.empty()) {
      const CoreId c = frontier.back();
      frontier.pop_back();
      EXPECT_TRUE(group.count(c)) << "notification escaped the group";
      EXPECT_FALSE(notified.count(c)) << "core notified twice";
      notified.insert(c);
      for (CoreId next : tree.notify_forward_targets(c)) frontier.push_back(next);
    }
    EXPECT_EQ(notified, group) << "some child never notified (parent " << parent
                               << ")";
  }
}

TEST_P(KaryTreeProperty, NotifyDepthIsLogarithmic) {
  const auto [p, k, root] = GetParam();
  KaryTree tree(p, k, root);
  // ceil(log2(k+1)) bounds the binary notification tree depth of any group.
  int bound = 0;
  while ((1 << bound) < k + 1) ++bound;
  for (CoreId c = 0; c < p; ++c) {
    if (c == root) {
      EXPECT_EQ(tree.notify_depth(c), 0);
    } else {
      EXPECT_GE(tree.notify_depth(c), 1);
      EXPECT_LE(tree.notify_depth(c), bound);
    }
  }
}

TEST_P(KaryTreeProperty, ChildPositionsAreCompact) {
  const auto [p, k, root] = GetParam();
  KaryTree tree(p, k, root);
  for (CoreId parent = 0; parent < p; ++parent) {
    const auto children = tree.children_of(parent);
    for (std::size_t j = 0; j < children.size(); ++j) {
      EXPECT_EQ(tree.child_position(children[j]), static_cast<int>(j) + 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, KaryTreeProperty,
    ::testing::Values(TreeParams{2, 1, 0}, TreeParams{2, 1, 1},
                      TreeParams{12, 7, 0}, TreeParams{12, 7, 5},
                      TreeParams{48, 2, 0}, TreeParams{48, 2, 13},
                      TreeParams{48, 7, 0}, TreeParams{48, 7, 47},
                      TreeParams{48, 47, 0}, TreeParams{48, 47, 31},
                      TreeParams{48, 5, 7}, TreeParams{37, 3, 11},
                      TreeParams{48, 24, 0}, TreeParams{5, 4, 2}));

TEST(KaryTree, DepthMatchesClosedForm48) {
  // Depths the paper's analysis relies on.
  EXPECT_EQ(KaryTree(48, 47, 0).max_depth(), 1);
  EXPECT_EQ(KaryTree(48, 7, 0).max_depth(), 2);
  EXPECT_EQ(KaryTree(48, 2, 0).max_depth(), 5);
}

}  // namespace
}  // namespace ocb::core
