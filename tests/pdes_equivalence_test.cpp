// The equivalence gate for conservative-PDES chip runs (DESIGN.md §11).
//
// The engine's contract has two layers:
//  * pdes(1) == pdes(N) is BIT-IDENTICAL BY CONSTRUCTION: event keys are
//    (time, origin lane, per-lane counter) with a fixed lane partition, so
//    the worker count can only change wall-clock, never a timestamp, an
//    event count, or a byte. These tests compare across 1/2/4/8 threads.
//  * classic (serial loop) == pdes is exact as long as no mesh link
//    queues: the PDES branch fuses "entry overhead + uncontended mesh
//    traversal" into single hop events, reproducing the serial timing
//    formulas to the picosecond (asserted below on an uncontended
//    workload). When links DO queue (rendezvous-synchronized bursts push
//    same-instant packets onto shared links), classic charges the 2.5 ns
//    link_occupancy serialization that no conservative window order can
//    reproduce, so the PDES timeline runs a bounded hair faster — about
//    0.2-0.3% on the 8 KiB registry runs, up to ~0.7% on smaller messages
//    where the serialized share is larger; asserted under a 1% ceiling
//    here and quantified in DESIGN.md §11.
//
// Workloads that are not PDES-eligible — fault injection (observers) and
// the broadcast service (mid-run spawns) — must fall back to the serial
// loop deterministically, so their results cannot depend on
// OCB_PDES_THREADS either; that is asserted too, along with the
// OCB_SWEEP_THREADS vs OCB_PDES_THREADS budget split (replication wins,
// nested chip runs drop to serial).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "coll/registry.h"
#include "harness/fault_sweep.h"
#include "harness/measurement.h"
#include "harness/parallel.h"
#include "rma/rma.h"
#include "scc/chip.h"
#include "svc/service.h"
#include "svc/traffic.h"

namespace ocb {
namespace {

// The tsan preset / pdes-check ctest target export OCB_PDES_THREADS so
// ambient tooling exercises the window loop; this file picks its thread
// counts explicitly and needs the serial baselines to stay serial, so
// drop any inherited value up front (EnvVariablePopulatesSessions sets
// and restores its own).
class ClearPdesEnv : public ::testing::Environment {
 public:
  void SetUp() override { unsetenv("OCB_PDES_THREADS"); }
};
const ::testing::Environment* const kClearPdesEnv =
    ::testing::AddGlobalTestEnvironment(new ClearPdesEnv);

constexpr unsigned kThreadCounts[] = {1, 2, 4, 8};

harness::BcastRunResult run_algo(const std::string& name, unsigned pdes_threads,
                                 std::size_t lines) {
  harness::BcastRunSpec spec;
  spec.algorithm_name = name;
  spec.params.k = 7;
  spec.message_bytes = lines * kCacheLineBytes;
  spec.iterations = 2;
  spec.warmup = 1;
  spec.config.pdes_threads = pdes_threads;
  return harness::run_broadcast(spec);
}

void expect_same_timeline(const harness::BcastRunResult& a,
                          const harness::BcastRunResult& b,
                          const std::string& label) {
  EXPECT_EQ(a.end_time, b.end_time) << label;
  ASSERT_EQ(a.latency_us.count(), b.latency_us.count()) << label;
  for (std::size_t i = 0; i < a.latency_us.count(); ++i) {
    EXPECT_DOUBLE_EQ(a.latency_us.samples()[i], b.latency_us.samples()[i])
        << label << " iteration " << i;
  }
  EXPECT_TRUE(a.content_ok) << label;
  EXPECT_TRUE(b.content_ok) << label;
}

/// classic vs PDES on a contended workload: equal up to the (unmodelled
/// under PDES) mesh link-serialization delays — a sub-1% haircut.
void expect_near_timeline(const harness::BcastRunResult& classic,
                          const harness::BcastRunResult& pdes,
                          const std::string& label) {
  constexpr double kRelTol = 0.01;
  EXPECT_NEAR(static_cast<double>(pdes.end_time),
              static_cast<double>(classic.end_time),
              kRelTol * static_cast<double>(classic.end_time))
      << label;
  ASSERT_EQ(classic.latency_us.count(), pdes.latency_us.count()) << label;
  for (std::size_t i = 0; i < classic.latency_us.count(); ++i) {
    EXPECT_NEAR(pdes.latency_us.samples()[i], classic.latency_us.samples()[i],
                kRelTol * classic.latency_us.samples()[i])
        << label << " iteration " << i;
  }
  EXPECT_TRUE(classic.content_ok) << label;
  EXPECT_TRUE(pdes.content_ok) << label;
}

TEST(PdesParity, RegistryAlgorithmsAcrossThreadCounts) {
  for (const std::string& name : coll::names()) {
    SCOPED_TRACE(name);
    const harness::BcastRunResult serial = run_algo(name, 0, 128);
    ASSERT_EQ(serial.pdes_threads, 0u);

    const harness::BcastRunResult anchor = run_algo(name, 1, 128);
    ASSERT_EQ(anchor.pdes_threads, 1u)
        << "PDES-eligible run did not take the PDES loop";

    // Classic vs PDES: near-identical timeline (link serialization is the
    // only unmodelled term) from fewer events (fused hops).
    expect_near_timeline(serial, anchor, name + " classic vs pdes(1)");
    EXPECT_LE(anchor.events, serial.events) << name;

    // pdes(N) vs pdes(1): bit-identical, including the event count.
    for (const unsigned threads : kThreadCounts) {
      if (threads == 1) continue;
      const harness::BcastRunResult run = run_algo(name, threads, 128);
      EXPECT_EQ(run.pdes_threads, threads);
      expect_same_timeline(anchor, run,
                           name + " pdes(1) vs pdes(" +
                               std::to_string(threads) + ")");
      EXPECT_EQ(anchor.events, run.events) << name << " threads=" << threads;
    }
  }
}

TEST(PdesParity, SessionReuseMatchesAcrossThreadCounts) {
  // BcastSession reuses one chip (and engine) across run() calls; the
  // PDES loop must leave the engine in the same state the serial loop
  // does, so a second run on the same session stays in parity too.
  auto two_runs = [](unsigned pdes_threads) {
    harness::BcastRunSpec spec;
    spec.algorithm_name = "ocbcast";
    spec.message_bytes = 64 * kCacheLineBytes;
    spec.iterations = 2;
    spec.warmup = 0;
    spec.config.pdes_threads = pdes_threads;
    harness::BcastSession session(spec);
    const harness::BcastRunResult first = session.run();
    const harness::BcastRunResult second = session.run();
    return std::pair{first, second};
  };
  const auto [serial1, serial2] = two_runs(0);
  const auto [anchor1, anchor2] = two_runs(1);
  const auto [pdes1, pdes2] = two_runs(8);
  expect_same_timeline(anchor1, pdes1, "first run, pdes(1) vs pdes(8)");
  expect_same_timeline(anchor2, pdes2, "second run, pdes(1) vs pdes(8)");
  expect_near_timeline(serial1, pdes1, "first run, classic vs pdes");
  expect_near_timeline(serial2, pdes2, "second run, classic vs pdes");
}

TEST(PdesParity, UncontendedWorkloadMatchesSerialExactly) {
  // One actor, per-line reference path (coalescing off): no port queueing
  // and no link ever carries two packets close enough to serialize, so
  // the fused-hop algebra must reproduce the serial timestamps to the
  // picosecond — this is the exactness anchor behind the tolerance used
  // for the contended collectives above.
  auto run_ops = [](unsigned pdes_threads) {
    scc::SccConfig cfg;
    cfg.coalescing = false;
    cfg.pdes_threads = pdes_threads;
    scc::SccChip chip(cfg);
    std::vector<sim::Time> completions;
    chip.spawn(0, [&](scc::Core& me) -> sim::Task<void> {
      for (int it = 0; it < 8; ++it) {
        co_await rma::get_mpb_to_mpb(me, 0, rma::MpbAddr{47, 0}, 16);
        completions.push_back(me.now());
        co_await rma::put_mpb_to_mpb(me, rma::MpbAddr{23, 0}, 0, 16);
        completions.push_back(me.now());
        co_await rma::put_mem_to_mpb(me, rma::MpbAddr{11, 0},
                                     static_cast<std::size_t>(it) * 512, 16);
        completions.push_back(me.now());
      }
    });
    const sim::RunResult run = chip.run();
    EXPECT_TRUE(run.completed());
    EXPECT_EQ(run.pdes_threads, pdes_threads);
    completions.push_back(run.end_time);
    return completions;
  };
  const std::vector<sim::Time> serial = run_ops(0);
  const std::vector<sim::Time> pdes = run_ops(2);
  ASSERT_EQ(serial.size(), pdes.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], pdes[i]) << "completion " << i;
  }
}

TEST(PdesParity, FaultInjectionFallsBackSerial) {
  // Observers (the fault injector) and a bounded event budget both make a
  // run ineligible; OCB_PDES_THREADS must therefore be unobservable in
  // fault outcomes — byte for byte, event for event.
  std::vector<harness::FaultRunOutcome> outcomes;
  for (const unsigned threads : {0u, 4u}) {
    harness::FaultRunSpec spec;
    spec.plan.seed = 7;
    spec.plan.rates.mpb_read = 1e-4;
    spec.plan.crashes.push_back({.core = 3, .at = 20 * sim::kMicrosecond});
    spec.message_bytes = 16 * 1024;
    spec.config.pdes_threads = threads;
    outcomes.push_back(harness::run_fault_once(spec));
  }
  const harness::FaultRunOutcome& a = outcomes[0];
  const harness::FaultRunOutcome& b = outcomes[1];
  EXPECT_TRUE(a.all_survivors_correct());
  EXPECT_EQ(a.drained, b.drained);
  EXPECT_EQ(a.crashed, b.crashed);
  EXPECT_EQ(a.correct, b.correct);
  EXPECT_EQ(a.gave_up, b.gave_up);
  EXPECT_EQ(a.events, b.events);
  EXPECT_DOUBLE_EQ(a.latency_us, b.latency_us);
  EXPECT_EQ(a.injections.total(), b.injections.total());
}

TEST(PdesParity, ServiceMixedLoadFallsBackSerial) {
  // The broadcast service spawns participants mid-run
  // (note_dynamic_spawning), so its chips always use the serial loop and
  // its SLO metrics cannot depend on OCB_PDES_THREADS.
  auto run_with = [](unsigned threads) {
    svc::ServiceConfig config;
    config.parties = kNumCores;
    config.slots = 2;
    config.slot_lines = 120;
    config.chip.pdes_threads = threads;
    svc::TrafficSpec traffic;
    traffic.requests = 8;
    traffic.mean_gap_ns = 30'000;
    traffic.sizes = {{kCacheLineBytes, 2}, {4096, 1}};
    traffic.parties = config.parties;
    traffic.seed = 2026;
    return svc::run_service(config, traffic);
  };
  const svc::ServiceMetrics a = run_with(0);
  const svc::ServiceMetrics b = run_with(8);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.delivered_bytes, b.delivered_bytes);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.engine_events, b.engine_events);
  EXPECT_EQ(a.latency_ns.p50(), b.latency_ns.p50());
  EXPECT_EQ(a.latency_ns.p99(), b.latency_ns.p99());
  EXPECT_TRUE(a.content_ok);
  EXPECT_TRUE(b.content_ok);
}

TEST(PdesBudgetSplit, ReplicationWinsInsideParallelMap) {
  // A chip built inside a parallel_map worker must run serial even when
  // PDES threads are explicitly configured — sweep replication owns the
  // thread budget (harness/parallel.h).
  auto measure = [] {
    harness::BcastRunSpec spec;
    spec.algorithm_name = "binomial";
    spec.message_bytes = 8 * kCacheLineBytes;
    spec.iterations = 1;
    spec.warmup = 0;
    spec.config.pdes_threads = 4;
    return harness::run_broadcast(spec);
  };

  const harness::BcastRunResult outside = measure();
  EXPECT_EQ(outside.pdes_threads, 4u);

  const auto inside = harness::parallel_map(
      2, [&](std::size_t) { return measure(); }, /*threads=*/2);
  for (const harness::BcastRunResult& run : inside) {
    EXPECT_EQ(run.pdes_threads, 0u)
        << "nested chip run did not drop to the serial loop";
    expect_same_timeline(outside, run, "outside vs inside parallel_map");
  }
}

TEST(PdesBudgetSplit, EnvVariablePopulatesSessions) {
  // OCB_PDES_THREADS feeds harness-built chips whose spec left
  // pdes_threads at 0 — but never inside a sweep worker.
  ASSERT_EQ(setenv("OCB_PDES_THREADS", "2", /*overwrite=*/1), 0);
  EXPECT_EQ(harness::pdes_threads(), 2u);
  harness::BcastRunSpec spec;
  spec.algorithm_name = "binomial";
  spec.message_bytes = 8 * kCacheLineBytes;
  spec.iterations = 1;
  spec.warmup = 0;
  const harness::BcastRunResult from_env = harness::run_broadcast(spec);
  EXPECT_EQ(from_env.pdes_threads, 2u);
  const auto nested = harness::parallel_map(
      2, [&](std::size_t) { return harness::run_broadcast(spec); },
      /*threads=*/2);
  for (const harness::BcastRunResult& run : nested) {
    EXPECT_EQ(run.pdes_threads, 0u);
  }
  ASSERT_EQ(unsetenv("OCB_PDES_THREADS"), 0);
  EXPECT_EQ(harness::pdes_threads(), 0u);
}

}  // namespace
}  // namespace ocb
