// Protocol robustness under randomized timing.
//
// The simulator is deterministic, so a single run only exercises one
// interleaving of every flag/buffer protocol. These tests enable core-
// overhead jitter and sweep seeds, re-verifying delivered bytes each time
// — a lightweight schedule fuzzer for the OC-Bcast, two-sided,
// scatter-allgather and one-sided s-ag protocols (deadlocks surface as
// stalled processes, races as corrupted payloads).
#include <gtest/gtest.h>

#include <tuple>

#include "harness/measurement.h"

namespace ocb {
namespace {

harness::BcastRunResult jittered_run(core::BcastKind kind, int k,
                                     std::size_t lines, std::uint64_t seed,
                                     CoreId root = 0) {
  harness::BcastRunSpec spec;
  spec.algorithm.kind = kind;
  spec.algorithm.k = k;
  spec.message_bytes = lines * kCacheLineBytes;
  spec.iterations = 2;
  spec.warmup = 1;
  spec.root = root;
  spec.config.jitter = 60 * sim::kNanosecond;
  spec.config.seed = seed;
  return run_broadcast(spec);
}

using Case = std::tuple<int, std::uint64_t>;  // algorithm index, seed
class JitterSweep : public ::testing::TestWithParam<Case> {};

TEST_P(JitterSweep, ContentSurvivesScheduleNoise) {
  const auto [algo, seed] = GetParam();
  struct Config {
    core::BcastKind kind;
    int k;
  };
  constexpr Config kConfigs[] = {
      {core::BcastKind::kOcBcast, 2},   {core::BcastKind::kOcBcast, 7},
      {core::BcastKind::kOcBcast, 47},  {core::BcastKind::kBinomial, 0},
      {core::BcastKind::kScatterAllgather, 0},
      {core::BcastKind::kOneSidedScatterAllgather, 0},
  };
  const Config& cfg = kConfigs[algo];
  const harness::BcastRunResult r =
      jittered_run(cfg.kind, cfg.k == 0 ? 7 : cfg.k, /*lines=*/210, seed);
  EXPECT_TRUE(r.content_ok);
  EXPECT_GT(r.latency_us.mean(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AlgorithmsBySeed, JitterSweep,
                         ::testing::Combine(::testing::Range(0, 6),
                                            ::testing::Values(1u, 2u, 3u, 4u,
                                                              5u)));

TEST(JitterSweep, RotatedRootsUnderNoise) {
  for (std::uint64_t seed : {11u, 12u}) {
    for (CoreId root : {17, 47}) {
      EXPECT_TRUE(jittered_run(core::BcastKind::kOcBcast, 7, 130, seed, root)
                      .content_ok)
          << "seed " << seed << " root " << root;
      EXPECT_TRUE(jittered_run(core::BcastKind::kOneSidedScatterAllgather, 7, 130,
                               seed, root)
                      .content_ok)
          << "seed " << seed << " root " << root;
    }
  }
}

TEST(JitterSweep, JitterOnlyAddsTime) {
  // Jitter is strictly non-negative, so a jittered run can never beat the
  // noise-free one.
  harness::BcastRunSpec spec;
  spec.message_bytes = 96 * kCacheLineBytes;
  spec.iterations = 2;
  const double clean = run_broadcast(spec).latency_us.mean();
  spec.config.jitter = 100 * sim::kNanosecond;
  for (std::uint64_t seed : {1u, 7u, 23u}) {
    spec.config.seed = seed;
    EXPECT_GT(run_broadcast(spec).latency_us.mean(), clean) << seed;
  }
}

TEST(JitterSweep, DistinctSeedsGiveDistinctSchedules) {
  harness::BcastRunSpec spec;
  spec.message_bytes = 50 * kCacheLineBytes;
  spec.iterations = 2;
  spec.config.jitter = 60 * sim::kNanosecond;
  spec.config.seed = 100;
  const double a = run_broadcast(spec).latency_us.mean();
  spec.config.seed = 101;
  const double b = run_broadcast(spec).latency_us.mean();
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace ocb
