// Protocol robustness under randomized timing.
//
// The simulator is deterministic, so a single run only exercises one
// interleaving of every flag/buffer protocol. These tests enable core-
// overhead jitter and sweep seeds, re-verifying delivered bytes each time
// — a lightweight schedule fuzzer for the OC-Bcast, two-sided,
// scatter-allgather and one-sided s-ag protocols (deadlocks surface as
// stalled processes, races as corrupted payloads).
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <tuple>
#include <vector>

#include "core/ocreduce.h"
#include "harness/measurement.h"
#include "harness/parallel.h"
#include "rma/barrier.h"

namespace ocb {
namespace {

harness::BcastRunResult jittered_run(core::BcastKind kind, int k,
                                     std::size_t lines, std::uint64_t seed,
                                     CoreId root = 0) {
  harness::BcastRunSpec spec;
  spec.algorithm.kind = kind;
  spec.algorithm.k = k;
  spec.message_bytes = lines * kCacheLineBytes;
  spec.iterations = 2;
  spec.warmup = 1;
  spec.root = root;
  spec.config.jitter = 60 * sim::kNanosecond;
  spec.config.seed = seed;
  return run_broadcast(spec);
}

using Case = std::tuple<int, std::uint64_t>;  // algorithm index, seed
class JitterSweep : public ::testing::TestWithParam<Case> {};

struct SweepConfig {
  core::BcastKind kind;
  int k;
};
constexpr SweepConfig kSweepConfigs[] = {
    {core::BcastKind::kOcBcast, 2},   {core::BcastKind::kOcBcast, 7},
    {core::BcastKind::kOcBcast, 47},  {core::BcastKind::kBinomial, 0},
    {core::BcastKind::kScatterAllgather, 0},
    {core::BcastKind::kOneSidedScatterAllgather, 0},
    {core::BcastKind::kFtOcBcast, 7},
};
constexpr std::uint64_t kSweepSeeds[] = {1, 2, 3, 4, 5};

// All (algorithm, seed) combos are independent chips; precompute the whole
// grid on the sweep pool the first time any combo is requested, then let
// each TEST_P assert on its slice.
const harness::BcastRunResult& sweep_result(int algo, std::uint64_t seed) {
  static const std::vector<harness::BcastRunResult> grid =
      harness::parallel_map(
          std::size(kSweepConfigs) * std::size(kSweepSeeds),
          [](std::size_t i) {
            const SweepConfig& cfg = kSweepConfigs[i / std::size(kSweepSeeds)];
            const std::uint64_t s = kSweepSeeds[i % std::size(kSweepSeeds)];
            return jittered_run(cfg.kind, cfg.k == 0 ? 7 : cfg.k,
                                /*lines=*/210, s);
          });
  const std::size_t seed_idx = static_cast<std::size_t>(seed - kSweepSeeds[0]);
  return grid[static_cast<std::size_t>(algo) * std::size(kSweepSeeds) +
              seed_idx];
}

TEST_P(JitterSweep, ContentSurvivesScheduleNoise) {
  const auto [algo, seed] = GetParam();
  const harness::BcastRunResult& r = sweep_result(algo, seed);
  EXPECT_TRUE(r.content_ok);
  EXPECT_GT(r.latency_us.mean(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AlgorithmsBySeed, JitterSweep,
                         ::testing::Combine(::testing::Range(0, 7),
                                            ::testing::Values(1u, 2u, 3u, 4u,
                                                              5u)));

TEST(JitterSweep, RotatedRootsUnderNoise) {
  for (std::uint64_t seed : {11u, 12u}) {
    for (CoreId root : {17, 47}) {
      EXPECT_TRUE(jittered_run(core::BcastKind::kOcBcast, 7, 130, seed, root)
                      .content_ok)
          << "seed " << seed << " root " << root;
      EXPECT_TRUE(jittered_run(core::BcastKind::kOneSidedScatterAllgather, 7, 130,
                               seed, root)
                      .content_ok)
          << "seed " << seed << " root " << root;
    }
  }
}

TEST(JitterSweep, JitterOnlyAddsTime) {
  // Jitter is strictly non-negative, so a jittered run can never beat the
  // noise-free one.
  harness::BcastRunSpec spec;
  spec.message_bytes = 96 * kCacheLineBytes;
  spec.iterations = 2;
  const double clean = run_broadcast(spec).latency_us.mean();
  spec.config.jitter = 100 * sim::kNanosecond;
  for (std::uint64_t seed : {1u, 7u, 23u}) {
    spec.config.seed = seed;
    EXPECT_GT(run_broadcast(spec).latency_us.mean(), clean) << seed;
  }
}

// OC-Reduce under the same schedule fuzzing: every seed must produce the
// exact host-computed reduction at the root (sums of integers stored in
// doubles, so floating-point associativity cannot blur the comparison).
TEST(JitterSweep, ReduceSurvivesScheduleNoise) {
  constexpr std::size_t kCount = 512;  // 128 lines of doubles
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    scc::SccConfig cfg;
    cfg.jitter = 60 * sim::kNanosecond;
    cfg.seed = seed;
    scc::SccChip chip(cfg);
    core::OcReduce reduce(chip);
    std::vector<double> expected(kCount, 0.0);
    for (CoreId c = 0; c < kNumCores; ++c) {
      auto region = chip.memory(c).host_bytes(0, kCount * sizeof(double));
      for (std::size_t i = 0; i < kCount; ++i) {
        const double v = static_cast<double>((c * 131 + i * 17) % 1000);
        std::memcpy(region.data() + i * sizeof(double), &v, sizeof(double));
        expected[i] += v;
      }
    }
    const std::size_t out_off = kCount * sizeof(double);
    for (CoreId c = 0; c < kNumCores; ++c) {
      chip.spawn(c, [&reduce, out_off](scc::Core& me) -> sim::Task<void> {
        co_await reduce.run(me, 0, 0, out_off, kCount, core::ReduceOp::kSum);
      });
    }
    ASSERT_TRUE(chip.run().completed()) << "seed " << seed;
    auto result = chip.memory(0).host_bytes(out_off, kCount * sizeof(double));
    for (std::size_t i = 0; i < kCount; ++i) {
      double got;
      std::memcpy(&got, result.data() + i * sizeof(double), sizeof(double));
      ASSERT_EQ(got, expected[i]) << "seed " << seed << " element " << i;
    }
  }
}

// The RMA dissemination barrier under jitter: after any wait() returns,
// every other core must have arrived at that round — no core may slip
// through early no matter how the schedule lands.
TEST(JitterSweep, BarrierHoldsUnderScheduleNoise) {
  constexpr int kRounds = 6;
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    scc::SccConfig cfg;
    cfg.jitter = 80 * sim::kNanosecond;
    cfg.seed = seed;
    scc::SccChip chip(cfg);
    rma::FlagBarrier barrier(chip, 0, kNumCores);
    std::array<int, kRounds> arrived{};
    bool violated = false;
    for (CoreId c = 0; c < kNumCores; ++c) {
      chip.spawn(c, [&, c](scc::Core& me) -> sim::Task<void> {
        for (int r = 0; r < kRounds; ++r) {
          // Desynchronize arrivals (deterministically per core/round).
          co_await me.busy((static_cast<sim::Duration>(c) * 37 +
                            static_cast<sim::Duration>(r) * 101) %
                           (2 * sim::kMicrosecond));
          ++arrived[static_cast<std::size_t>(r)];
          co_await barrier.wait(me);
          if (arrived[static_cast<std::size_t>(r)] != kNumCores) {
            violated = true;
          }
        }
      });
    }
    ASSERT_TRUE(chip.run().completed()) << "seed " << seed;
    EXPECT_FALSE(violated) << "seed " << seed;
    for (int r = 0; r < kRounds; ++r) {
      EXPECT_EQ(arrived[static_cast<std::size_t>(r)], kNumCores);
    }
  }
}

TEST(JitterSweep, DistinctSeedsGiveDistinctSchedules) {
  harness::BcastRunSpec spec;
  spec.message_bytes = 50 * kCacheLineBytes;
  spec.iterations = 2;
  spec.config.jitter = 60 * sim::kNanosecond;
  spec.config.seed = 100;
  const double a = run_broadcast(spec).latency_us.mean();
  spec.config.seed = 101;
  const double b = run_broadcast(spec).latency_us.mean();
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace ocb
