// ocb::check acceptance tests.
//
// Covers the TransactionObserver chain redesign (add/remove, write-commit
// voting, coalescing interlock, trace-sink coexistence) and the
// happens-before race checker built on it: every shipped collective must
// run violation-free across a message-size/root grid, a deliberately racy
// binomial mutation (one flag wait removed) must be flagged with full
// provenance, the synchronization primitives (flags, barrier, interrupts,
// two-sided, reduce) must each establish the edges the checker relies on,
// and the FT broadcast must stay race-free under crash+corruption fault
// sweeps — with the checker provably not perturbing the simulated timeline.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "check/checker.h"
#include "coll/registry.h"
#include "core/ocreduce.h"
#include "harness/fault_sweep.h"
#include "harness/measurement.h"
#include "rma/barrier.h"
#include "rma/flags.h"
#include "rma/nonblocking.h"
#include "rma/rma.h"
#include "rma/twosided.h"
#include "scc/chip.h"
#include "scc/trace_json.h"

namespace ocb {
namespace {

// --- observer chain ---------------------------------------------------------

struct CountingObserver final : scc::TransactionObserver {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t completes = 0;
  std::uint64_t syncs = 0;

  void on_read(const scc::LineTxn&, CacheLine&) override { ++reads; }
  bool on_write(const scc::LineTxn&, CacheLine&) override {
    ++writes;
    return true;
  }
  void on_complete(const scc::TraceEvent&) override { ++completes; }
  void on_sync(const scc::SyncEvent&) override { ++syncs; }
};

/// Vetoes every MPB write to `line` (commit = AND over the chain).
struct SuppressLineObserver final : scc::TransactionObserver {
  std::size_t line;
  explicit SuppressLineObserver(std::size_t l) : line(l) {}
  bool on_write(const scc::LineTxn& txn, CacheLine&) override {
    return !(txn.op == scc::TraceOp::kMpbWrite && txn.index == line);
  }
};

TEST(ObserverChain, AddRemoveTogglesCoalescingAndObserving) {
  scc::SccChip chip;  // default config: coalescing on, jitter 0
  EXPECT_FALSE(chip.observing());
  EXPECT_TRUE(chip.coalescing_active());

  CountingObserver a;
  CountingObserver b;
  chip.add_observer(&a);
  EXPECT_TRUE(chip.observing());
  EXPECT_FALSE(chip.coalescing_active());
  chip.add_observer(&b);
  chip.remove_observer(&a);
  EXPECT_TRUE(chip.observing());  // b still installed
  chip.remove_observer(&b);
  EXPECT_FALSE(chip.observing());
  EXPECT_TRUE(chip.coalescing_active());

  // The set_trace_sink sugar is itself a chain member — and a bulk-capable
  // one, so unlike the default-capability counters above it keeps the
  // coalesced fast path on (scc/observer.h capability model).
  scc::JsonTraceCollector trace;
  chip.set_trace_sink(trace.sink());
  EXPECT_TRUE(chip.observing());
  EXPECT_TRUE(chip.coalescing_active());
  chip.set_trace_sink({});
  EXPECT_FALSE(chip.observing());
  EXPECT_TRUE(chip.coalescing_active());
}

TEST(ObserverChain, ObserversSeeTransactionsAndVotesAnd) {
  scc::SccChip chip;
  CountingObserver counter;
  SuppressLineObserver suppress(5);
  chip.add_observer(&counter);
  chip.add_observer(&suppress);

  chip.spawn(0, [&](scc::Core& me) -> sim::Task<void> {
    const CacheLine payload = rma::encode_flag(0x1234);
    co_await me.mpb_write_line(1, 4, payload);  // commits
    co_await me.mpb_write_line(1, 5, payload);  // suppressed
    CacheLine got4;
    CacheLine got5;
    co_await me.mpb_read_line(1, 4, got4);
    co_await me.mpb_read_line(1, 5, got5);
    EXPECT_EQ(rma::decode_flag(got4), 0x1234u);
    EXPECT_EQ(rma::decode_flag(got5), 0u);  // write never landed
  });
  ASSERT_TRUE(chip.run().completed());

  EXPECT_EQ(counter.writes, 2u);
  EXPECT_EQ(counter.reads, 2u);
  EXPECT_EQ(counter.completes, 4u);
}

// --- registry ---------------------------------------------------------------

TEST(CheckRegistry, ShipsTheBuiltins) {
  const std::vector<std::string> builtins = {
      "binomial", "ft-ocbcast", "ocbcast", "onesided-sag", "scatter-allgather"};
  for (const std::string& name : builtins) {
    EXPECT_TRUE(coll::registered(name)) << name;
  }
  EXPECT_FALSE(coll::registered("no-such-algorithm"));
  const std::vector<std::string> all = coll::names();
  for (const std::string& name : builtins) {
    EXPECT_NE(std::find(all.begin(), all.end(), name), all.end()) << name;
  }
  scc::SccChip chip;
  auto algo = coll::make("ocbcast", chip, {.k = 3});
  EXPECT_EQ(algo->parties(), kNumCores);
  EXPECT_NE(algo->name().find("3"), std::string::npos);
}

TEST(CheckRegistry, UnknownNameErrorListsTheRegistry) {
  scc::SccChip chip;
  try {
    coll::make("no-such-algorithm", chip);
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("no-such-algorithm"), std::string::npos)
        << "names the offending key: " << msg;
    for (const std::string& name : coll::names()) {
      EXPECT_NE(msg.find(name), std::string::npos)
          << "lists registered algorithm " << name << ": " << msg;
    }
  }
}

// --- the grid: every shipped collective is race-free ------------------------

TEST(CheckGrid, ShippedCollectivesAreRaceFree) {
  const std::vector<std::string> algos = {
      "ocbcast", "binomial", "scatter-allgather", "onesided-sag", "ft-ocbcast"};
  const std::size_t sizes[] = {kCacheLineBytes, 2048, 16 * 1024};
  const CoreId roots[] = {0, 7};
  for (const std::string& name : algos) {
    for (std::size_t bytes : sizes) {
      for (CoreId root : roots) {
        harness::BcastRunSpec spec;
        spec.algorithm_name = name;
        spec.message_bytes = bytes;
        spec.root = root;
        spec.iterations = 2;
        spec.warmup = 1;
        spec.check = true;
        const harness::BcastRunResult out = harness::run_broadcast(spec);
        EXPECT_TRUE(out.content_ok)
            << name << " bytes=" << bytes << " root=" << root;
        EXPECT_EQ(out.race_violations, 0u)
            << name << " bytes=" << bytes << " root=" << root << "\n"
            << out.race_report;
      }
    }
  }
}

// --- the mutation: a removed flag wait must be flagged ----------------------

/// Binomial broadcast with the receive-side `sent` wait deliberately
/// removed: the receiver posts `ready` and immediately reads the payload
/// lines its parent is still (or not yet!) writing. Byte content is
/// garbage (run with verify=false); the checker must see the race.
class RacyBinomial final : public coll::Collective {
 public:
  static constexpr std::size_t kReadyLine = 0;
  static constexpr std::size_t kSentLine = 1;
  static constexpr std::size_t kPayloadLine = 2;

  RacyBinomial(scc::SccChip& chip, int parties)
      : chip_(&chip), parties_(parties) {}

  std::string name() const override { return "racy-binomial"; }
  int parties() const override { return parties_; }

  sim::Task<void> run(scc::Core& self, CoreId root, std::size_t offset,
                      std::size_t bytes) override {
    const std::size_t lines = cache_lines_for(bytes);
    const int p = parties_;
    const int rel = (self.id() - root + p) % p;
    const std::uint64_t s = ++round_[static_cast<std::size_t>(self.id())];

    if (rel != 0) {
      int parent_rel = 0;
      for (int bit = 1; bit < p; bit <<= 1) {
        if (rel & bit) {
          parent_rel = rel & ~bit;
          break;
        }
      }
      const CoreId parent = static_cast<CoreId>((parent_rel + root) % p);
      co_await rma::set_flag(self, {self.id(), kReadyLine},
                             rma::pack_flag(parent, s));
      // MUTATION UNDER TEST: the protocol should wait for the parent's
      // `sent == pack(parent, s)` here before touching the payload.
      co_await rma::get_mpb_to_mem(self, offset, {self.id(), kPayloadLine},
                                   lines);
    }

    for (int bit = 1; bit < p; bit <<= 1) {
      if (rel & bit) break;  // bits above the parent edge are not children
      const int child_rel = rel | bit;
      if (child_rel == rel || child_rel >= p) continue;
      const CoreId child = static_cast<CoreId>((child_rel + root) % p);
      co_await rma::wait_flag_equal(self, {child, kReadyLine},
                                    rma::pack_flag(self.id(), s));
      co_await rma::put_mem_to_mpb(self, {child, kPayloadLine}, offset, lines);
      co_await rma::set_flag(self, {child, kSentLine},
                             rma::pack_flag(self.id(), s));
    }
  }

 private:
  scc::SccChip* chip_;
  int parties_;
  std::array<std::uint64_t, kNumCores> round_{};
};

TEST(CheckMutation, RacyBinomialIsFlagged) {
  coll::register_collective(
      "racy-binomial", [](scc::SccChip& chip, const coll::Params& params) {
        return std::make_unique<RacyBinomial>(chip, params.parties);
      });

  harness::BcastRunSpec spec;
  spec.algorithm_name = "racy-binomial";
  spec.params.parties = 8;
  spec.message_bytes = 8 * kCacheLineBytes;
  spec.iterations = 1;
  spec.warmup = 0;
  spec.verify = false;  // the whole point is that the bytes are not safe
  spec.check = true;

  harness::BcastSession session(spec);
  const harness::BcastRunResult out = session.run();
  EXPECT_GE(out.race_violations, 1u);
  EXPECT_FALSE(out.race_report.empty());

  // Provenance: the contested line is a payload line of some receiver,
  // the conflict involves a put and a get from different cores, and both
  // sides carry their announced collective stage.
  const check::RaceChecker* checker = session.checker();
  ASSERT_NE(checker, nullptr);
  ASSERT_FALSE(checker->violations().empty());
  const check::Violation& v = checker->violations().front();
  EXPECT_GE(v.line, RacyBinomial::kPayloadLine);
  EXPECT_NE(v.first_core, v.second_core);
  EXPECT_NE(v.kind, check::Violation::Kind::kPutPut);
  EXPECT_LT(v.first_seq, v.second_seq);
  EXPECT_LE(v.first_time, v.second_time);

  // The violations export as chrome://tracing flow arrows (cat "race").
  scc::JsonTraceCollector trace;
  checker->add_flows_to(trace);
  EXPECT_EQ(trace.flows().size(), checker->violations().size());
  const std::string json = trace.to_json();
  EXPECT_NE(json.find("\"cat\":\"race\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);

  // Control arm: the unmutated binomial in the identical configuration is
  // clean (the grid covers defaults; this pins the 8-party shape too).
  harness::BcastRunSpec clean = spec;
  clean.algorithm_name = "binomial";
  clean.verify = true;
  const harness::BcastRunResult ok = harness::run_broadcast(clean);
  EXPECT_TRUE(ok.content_ok);
  EXPECT_EQ(ok.race_violations, 0u) << ok.race_report;
}

// --- primitive happens-before edges -----------------------------------------

TEST(CheckUnit, UnsynchronizedSharingIsFlagged) {
  scc::SccChip chip;
  check::RaceChecker checker(chip);
  chip.add_observer(&checker);

  // Core 0 writes a line of core 1's MPB; core 1 reads it back with no
  // ordering edge whatsoever.
  chip.spawn(0, [&](scc::Core& me) -> sim::Task<void> {
    me.set_stage("writer-side");
    co_await me.mpb_write_line(1, 100, rma::encode_flag(42));
  });
  chip.spawn(1, [&](scc::Core& me) -> sim::Task<void> {
    me.set_stage("reader-side");
    CacheLine cl;
    co_await me.mpb_read_line(1, 100, cl);
  });
  ASSERT_TRUE(chip.run().completed());

  ASSERT_GE(checker.total_detected(), 1u);
  const check::Violation& v = checker.violations().front();
  EXPECT_EQ(v.owner, 1);
  EXPECT_EQ(v.line, 100u);
  EXPECT_NE(v.first_core, v.second_core);
  EXPECT_STRNE(v.first_stage, "");
  EXPECT_STRNE(v.second_stage, "");
  EXPECT_NE(checker.report().find("mpb[1]:100"), std::string::npos);
}

TEST(CheckUnit, FlagEdgeOrdersData) {
  scc::SccChip chip;
  check::RaceChecker checker(chip);
  chip.add_observer(&checker);

  // The same sharing pattern, now with a set_flag/wait_flag edge between
  // the write and the read: no violation.
  chip.spawn(0, [&](scc::Core& me) -> sim::Task<void> {
    co_await me.mpb_write_line(1, 100, rma::encode_flag(42));
    co_await rma::set_flag(me, {1, 0}, 1);
  });
  chip.spawn(1, [&](scc::Core& me) -> sim::Task<void> {
    co_await rma::wait_flag_equal(me, {1, 0}, 1);
    CacheLine cl;
    co_await me.mpb_read_line(1, 100, cl);
    EXPECT_EQ(rma::decode_flag(cl), 42u);
  });
  ASSERT_TRUE(chip.run().completed());
  EXPECT_EQ(checker.total_detected(), 0u) << checker.report();
}

TEST(CheckUnit, BarrierOrdersDataTransitively) {
  // Dissemination-barrier edges are pairwise; cross-core ordering of data
  // around a full barrier only holds through log2(n) hops of transitivity,
  // which exercises the vector-clock joins end to end.
  scc::SccChip chip;
  check::RaceChecker checker(chip);
  chip.add_observer(&checker);

  constexpr int kParties = 8;
  rma::FlagBarrier barrier(chip, /*base_line=*/0, kParties);
  for (CoreId c = 0; c < kParties; ++c) {
    chip.spawn(c, [&, c](scc::Core& me) -> sim::Task<void> {
      if (c == 0) {
        // Publish into core 7's MPB before the barrier...
        co_await me.mpb_write_line(7, 200, rma::encode_flag(7777));
      }
      co_await barrier.wait(me);
      if (c == 7) {
        // ...consume it after: ordered via core 0 -> ... -> core 7 chains.
        CacheLine cl;
        co_await me.mpb_read_line(7, 200, cl);
        EXPECT_EQ(rma::decode_flag(cl), 7777u);
      }
    });
  }
  ASSERT_TRUE(chip.run().completed());
  EXPECT_EQ(checker.total_detected(), 0u) << checker.report();
}

TEST(CheckUnit, InterruptEdgeOrdersData) {
  scc::SccChip chip;
  check::RaceChecker checker(chip);
  chip.add_observer(&checker);

  chip.spawn(0, [&](scc::Core& me) -> sim::Task<void> {
    co_await me.mpb_write_line(1, 64, rma::encode_flag(9));
    co_await me.send_interrupt(1);
  });
  chip.spawn(1, [&](scc::Core& me) -> sim::Task<void> {
    co_await me.wait_interrupt();
    CacheLine cl;
    co_await me.mpb_read_line(1, 64, cl);
    EXPECT_EQ(rma::decode_flag(cl), 9u);
  });
  ASSERT_TRUE(chip.run().completed());
  EXPECT_EQ(checker.total_detected(), 0u) << checker.report();
}

TEST(CheckUnit, TwoSidedIsRaceFree) {
  scc::SccChip chip;
  check::RaceChecker checker(chip);
  chip.add_observer(&checker);

  const std::size_t bytes = 4096;
  auto src = chip.memory(0).host_bytes(0, bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    src[i] = static_cast<std::byte>(i * 131 + 7);
  }

  rma::TwoSided ts(chip);
  chip.spawn(0, [&](scc::Core& me) -> sim::Task<void> {
    co_await ts.send(me, 1, 0, bytes);
  });
  chip.spawn(1, [&](scc::Core& me) -> sim::Task<void> {
    co_await ts.recv(me, 0, 0, bytes);
  });
  ASSERT_TRUE(chip.run().completed());

  const auto got = chip.memory(1).host_bytes(0, bytes);
  EXPECT_TRUE(std::equal(src.begin(), src.end(), got.begin()));
  EXPECT_EQ(checker.total_detected(), 0u) << checker.report();
}

TEST(CheckUnit, AsyncTwoSidedIsRaceFree) {
  // The iRCCE-style engine polls flag lines with raw reads (its test()
  // probes); read_flag's acquire-on-every-observed-value covers it.
  scc::SccChip chip;
  check::RaceChecker checker(chip);
  chip.add_observer(&checker);

  const std::size_t bytes = 2048;
  auto src = chip.memory(2).host_bytes(0, bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    src[i] = static_cast<std::byte>(i ^ 0x5a);
  }

  rma::AsyncTwoSided async(chip);
  chip.spawn(2, [&](scc::Core& me) -> sim::Task<void> {
    auto req = async.isend(me, 3, 0, bytes);
    while (true) {
      const bool done = co_await async.test(me, req);
      if (done) break;
      co_await me.busy(500 * sim::kNanosecond);
    }
  });
  chip.spawn(3, [&](scc::Core& me) -> sim::Task<void> {
    auto req = async.irecv(me, 2, 0, bytes);
    co_await async.wait(me, req);
  });
  ASSERT_TRUE(chip.run().completed());

  const auto got = chip.memory(3).host_bytes(0, bytes);
  EXPECT_TRUE(std::equal(src.begin(), src.end(), got.begin()));
  EXPECT_EQ(checker.total_detected(), 0u) << checker.report();
}

TEST(CheckUnit, OcReduceIsRaceFree) {
  scc::SccChip chip;
  check::RaceChecker checker(chip);
  chip.add_observer(&checker);

  const std::size_t count = 256;  // doubles; 64 lines, single chunk
  const std::size_t out_offset = 16 * 1024;
  for (CoreId c = 0; c < kNumCores; ++c) {
    auto region = chip.memory(c).host_bytes(0, count * sizeof(double));
    for (std::size_t i = 0; i < count; ++i) {
      const double v = static_cast<double>(c + 1);
      std::memcpy(region.data() + i * sizeof(double), &v, sizeof v);
    }
  }

  core::OcReduce reduce(chip);
  for (CoreId c = 0; c < kNumCores; ++c) {
    chip.spawn(c, [&](scc::Core& me) -> sim::Task<void> {
      co_await reduce.run(me, 0, 0, out_offset, count, core::ReduceOp::kSum);
    });
  }
  ASSERT_TRUE(chip.run().completed());

  const double expected = kNumCores * (kNumCores + 1) / 2.0;  // sum of c+1
  const auto out = chip.memory(0).host_bytes(out_offset, count * sizeof(double));
  for (std::size_t i : {std::size_t{0}, count / 2, count - 1}) {
    double got;
    std::memcpy(&got, out.data() + i * sizeof(double), sizeof got);
    EXPECT_EQ(got, expected) << "element " << i;
  }
  EXPECT_EQ(checker.total_detected(), 0u) << checker.report();
}

// --- FT-OC-Bcast under faults, with the checker on --------------------------

TEST(CheckFault, FtBcastSweepIsRaceFreeUnderFaults) {
  harness::FaultRunSpec spec;
  spec.message_bytes = 64 * 1024;
  spec.ft.parties = kNumCores;
  spec.plan.rates.mpb_read = 1e-4;
  spec.plan.crashes.push_back({.core = 5, .at = 30 * sim::kMicrosecond});
  spec.check_races = true;

  for (std::uint64_t seed : {3u, 4u, 5u}) {
    spec.plan.seed = seed;
    const harness::FaultRunOutcome out = harness::run_fault_once(spec);
    EXPECT_TRUE(out.all_survivors_correct()) << "seed " << seed;
    EXPECT_EQ(out.crashed, 1) << "seed " << seed;
    EXPECT_EQ(out.race_violations, 0u)
        << "seed " << seed << "\n" << out.race_report;
  }
}

TEST(CheckFault, CheckerIsPassive) {
  // Installing the checker must not perturb the simulated timeline or the
  // injector's deterministic decision stream: identical spec with and
  // without check_races produces a bit-identical outcome.
  harness::FaultRunSpec spec;
  spec.message_bytes = 64 * 1024;
  spec.ft.parties = kNumCores;
  spec.plan.seed = 17;
  spec.plan.rates.mpb_read = 1e-4;
  spec.plan.crashes.push_back({.core = 9, .at = 40 * sim::kMicrosecond});

  spec.check_races = false;
  const harness::FaultRunOutcome plain = harness::run_fault_once(spec);
  spec.check_races = true;
  const harness::FaultRunOutcome checked = harness::run_fault_once(spec);

  EXPECT_EQ(plain.events, checked.events);
  EXPECT_EQ(plain.latency_us, checked.latency_us);
  EXPECT_EQ(plain.injections.reads_corrupted, checked.injections.reads_corrupted);
  EXPECT_EQ(plain.injections.crashes_applied, checked.injections.crashes_applied);
  EXPECT_EQ(plain.correct, checked.correct);
  EXPECT_EQ(checked.race_violations, 0u) << checked.race_report;
}

}  // namespace
}  // namespace ocb
