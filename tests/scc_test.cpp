// Unit tests for the assembled chip: configuration validation, wiring, and
// — crucially — per-cache-line transaction timings matching the Figure 2
// model identities the simulator is calibrated to.
#include <gtest/gtest.h>

#include "noc/memctrl.h"
#include "scc/chip.h"

namespace ocb::scc {
namespace {

CacheLine line_of(std::uint8_t fill) {
  CacheLine cl;
  cl.bytes.fill(std::byte{fill});
  return cl;
}

/// Runs a single-core program and returns its duration.
template <typename Fn>
sim::Duration timed_program(SccChip& chip, CoreId core, Fn&& body) {
  sim::Duration elapsed = 0;
  chip.spawn(core, [&elapsed, body = std::forward<Fn>(body)](
                       Core& me) mutable -> sim::Task<void> {
    const sim::Time t0 = me.now();
    co_await body(me);
    elapsed = me.now() - t0;
  });
  const sim::RunResult r = chip.run();
  EXPECT_TRUE(r.completed());
  return elapsed;
}

TEST(SccConfig, DefaultsMatchTable1Aggregates) {
  const SccConfig cfg;
  EXPECT_EQ(cfg.o_mpb(), 126u * sim::kNanosecond);
  EXPECT_EQ(cfg.o_mem_read(), 208u * sim::kNanosecond);
  EXPECT_EQ(cfg.o_mem_write(), 461u * sim::kNanosecond);
  EXPECT_EQ(cfg.l_hop, 5u * sim::kNanosecond);
  EXPECT_EQ(cfg.o_put_mpb, 69u * sim::kNanosecond);
  EXPECT_EQ(cfg.o_get_mpb, 330u * sim::kNanosecond);
  EXPECT_EQ(cfg.o_put_mem, 190u * sim::kNanosecond);
  EXPECT_EQ(cfg.o_get_mem, 95u * sim::kNanosecond);
}

TEST(SccConfig, ValidationCatchesNonsense) {
  SccConfig cfg;
  cfg.l_hop = 0;
  EXPECT_THROW(cfg.validate(), PreconditionError);
  cfg = SccConfig{};
  cfg.link_occupancy = cfg.l_hop + 1;
  EXPECT_THROW(cfg.validate(), PreconditionError);
  cfg = SccConfig{};
  cfg.private_memory_limit = 1024;
  EXPECT_THROW(cfg.validate(), PreconditionError);
  EXPECT_NO_THROW(SccConfig{}.validate());
}

TEST(SccChip, WiringAccessorsBoundsChecked) {
  SccChip chip;
  EXPECT_NO_THROW(chip.core(0));
  EXPECT_NO_THROW(chip.core(47));
  EXPECT_THROW(chip.core(48), PreconditionError);
  EXPECT_THROW(chip.mpb(-1), PreconditionError);
  EXPECT_THROW(chip.mpb_port(24), PreconditionError);
  EXPECT_THROW(chip.mc_port(4), PreconditionError);
  EXPECT_THROW(chip.memory(48), PreconditionError);
}

TEST(SccChip, CoreIdentityAndDistances) {
  SccChip chip;
  for (CoreId c = 0; c < kNumCores; ++c) {
    EXPECT_EQ(chip.core(c).id(), c);
    EXPECT_EQ(chip.core(c).tile(), noc::tile_of_core(c));
    EXPECT_EQ(chip.core(c).mem_distance(), noc::mem_distance(c));
    EXPECT_EQ(chip.core(c).mpb_distance(c), 1);
  }
  EXPECT_EQ(chip.core(0).mpb_distance(47), 9);
  EXPECT_EQ(chip.core(0).mpb_distance(1), 1) << "tile-mate is one router away";
}

// The calibration identities: measured single-line completion must equal
// the Figure 2 formulas with Table 1 parameters, for every distance.
class LineTimingAtDistance : public ::testing::TestWithParam<int> {};

TEST_P(LineTimingAtDistance, MpbReadCompletion) {
  const int d = GetParam();
  SccChip chip;
  // Find a pair of distinct cores at distance d.
  CoreId reader = -1, owner = -1;
  for (CoreId a = 0; a < kNumCores && reader < 0; ++a) {
    for (CoreId b = 0; b < kNumCores; ++b) {
      if (a != b && chip.core(a).mpb_distance(b) == d) {
        reader = a;
        owner = b;
        break;
      }
    }
  }
  ASSERT_GE(reader, 0);
  const sim::Duration t = timed_program(chip, reader, [owner](Core& me) {
    return [](Core& c, CoreId o) -> sim::Task<void> {
      CacheLine cl;
      co_await c.mpb_read_line(o, 0, cl);
    }(me, owner);
  });
  const SccConfig cfg;
  EXPECT_EQ(t, cfg.o_mpb() + 2u * static_cast<sim::Duration>(d) * cfg.l_hop);
}

TEST_P(LineTimingAtDistance, MpbWriteCompletion) {
  const int d = GetParam();
  SccChip chip;
  CoreId writer = -1, owner = -1;
  for (CoreId a = 0; a < kNumCores && writer < 0; ++a) {
    for (CoreId b = 0; b < kNumCores; ++b) {
      if (a != b && chip.core(a).mpb_distance(b) == d) {
        writer = a;
        owner = b;
        break;
      }
    }
  }
  ASSERT_GE(writer, 0);
  const sim::Duration t = timed_program(chip, writer, [owner](Core& me) {
    return [](Core& c, CoreId o) -> sim::Task<void> {
      co_await c.mpb_write_line(o, 0, CacheLine{});
    }(me, owner);
  });
  const SccConfig cfg;
  EXPECT_EQ(t, cfg.o_mpb() + 2u * static_cast<sim::Duration>(d) * cfg.l_hop);
}

INSTANTIATE_TEST_SUITE_P(Distances1To9, LineTimingAtDistance,
                         ::testing::Range(1, 10));

class MemTimingAtDistance : public ::testing::TestWithParam<int> {};

TEST_P(MemTimingAtDistance, MemReadAndWriteCompletion) {
  const int d = GetParam();
  CoreId core = -1;
  for (CoreId c = 0; c < kNumCores; ++c) {
    if (noc::mem_distance(c) == d) {
      core = c;
      break;
    }
  }
  ASSERT_GE(core, 0);
  SccConfig cfg;
  cfg.cache_enabled = false;  // isolate the off-chip path
  SccChip chip(cfg);
  sim::Duration read_t = 0, write_t = 0;
  chip.spawn(core, [&](Core& me) -> sim::Task<void> {
    CacheLine cl;
    sim::Time t0 = me.now();
    co_await me.mem_read_line(0, cl);
    read_t = me.now() - t0;
    t0 = me.now();
    co_await me.mem_write_line(0, cl);
    write_t = me.now() - t0;
  });
  ASSERT_TRUE(chip.run().completed());
  EXPECT_EQ(read_t, cfg.o_mem_read() + 2u * static_cast<sim::Duration>(d) * cfg.l_hop);
  EXPECT_EQ(write_t, cfg.o_mem_write() + 2u * static_cast<sim::Duration>(d) * cfg.l_hop);
}

INSTANTIATE_TEST_SUITE_P(Distances1To4, MemTimingAtDistance, ::testing::Range(1, 5));

TEST(SccChip, DataMovesThroughMpb) {
  SccChip chip;
  chip.spawn(3, [](Core& me) -> sim::Task<void> {
    co_await me.mpb_write_line(40, 17, line_of(0x77));
  });
  ASSERT_TRUE(chip.run().completed());
  EXPECT_EQ(chip.mpb(40).load(17), line_of(0x77));
}

TEST(SccChip, CacheHitIsCheap) {
  SccChip chip;  // cache on by default
  sim::Duration first = 0, second = 0;
  chip.spawn(0, [&](Core& me) -> sim::Task<void> {
    CacheLine cl;
    sim::Time t0 = me.now();
    co_await me.mem_read_line(0, cl);
    first = me.now() - t0;
    t0 = me.now();
    co_await me.mem_read_line(0, cl);
    second = me.now() - t0;
  });
  ASSERT_TRUE(chip.run().completed());
  const SccConfig cfg;
  EXPECT_GT(first, cfg.o_mem_core_read);
  EXPECT_EQ(second, cfg.o_cache_hit);
}

TEST(SccChip, WriteAllocateWarmsCache) {
  SccChip chip;
  sim::Duration read_after_write = 0;
  chip.spawn(0, [&](Core& me) -> sim::Task<void> {
    co_await me.mem_write_line(64, line_of(1));
    const sim::Time t0 = me.now();
    CacheLine cl;
    co_await me.mem_read_line(64, cl);
    read_after_write = me.now() - t0;
  });
  ASSERT_TRUE(chip.run().completed());
  EXPECT_EQ(read_after_write, SccConfig{}.o_cache_hit)
      << "a just-written line must be a cache hit (the §5.2.2 resend effect)";
}

TEST(SccChip, CacheEvictsBeyondCapacity) {
  SccConfig cfg;
  cfg.cache_capacity_lines = 4;
  SccChip chip(cfg);
  sim::Duration reread = 0;
  chip.spawn(0, [&](Core& me) -> sim::Task<void> {
    CacheLine cl;
    for (std::size_t i = 0; i < 8; ++i) {
      co_await me.mem_read_line(i * kCacheLineBytes, cl);
    }
    const sim::Time t0 = me.now();
    co_await me.mem_read_line(0, cl);  // line 0 was evicted
    reread = me.now() - t0;
  });
  ASSERT_TRUE(chip.run().completed());
  EXPECT_GT(reread, cfg.o_mem_core_read);
}

TEST(SccChip, DisabledCacheAlwaysPaysFullCost) {
  SccConfig cfg;
  cfg.cache_enabled = false;
  SccChip chip(cfg);
  sim::Duration second = 0;
  chip.spawn(0, [&](Core& me) -> sim::Task<void> {
    CacheLine cl;
    co_await me.mem_read_line(0, cl);
    const sim::Time t0 = me.now();
    co_await me.mem_read_line(0, cl);
    second = me.now() - t0;
  });
  ASSERT_TRUE(chip.run().completed());
  EXPECT_GT(second, cfg.o_mem_core_read);
}

TEST(SccChip, JitterIsDeterministicPerSeed) {
  auto run_once = [](std::uint64_t seed) {
    SccConfig cfg;
    cfg.jitter = 20 * sim::kNanosecond;
    cfg.seed = seed;
    SccChip chip(cfg);
    sim::Duration total = 0;
    chip.spawn(5, [&](Core& me) -> sim::Task<void> {
      CacheLine cl;
      const sim::Time t0 = me.now();
      for (int i = 0; i < 16; ++i) co_await me.mpb_read_line(20, 0, cl);
      total = me.now() - t0;
    });
    EXPECT_TRUE(chip.run().completed());
    return total;
  };
  EXPECT_EQ(run_once(1), run_once(1));
  EXPECT_NE(run_once(1), run_once(2));
}

TEST(SccChip, LambdaCapturesSurviveSpawn) {
  SccChip chip;
  int value = 7;
  int result = 0;
  chip.spawn(0, [&result, value](Core& me) -> sim::Task<void> {
    co_await me.busy(100);
    result = value * 2;
  });
  ASSERT_TRUE(chip.run().completed());
  EXPECT_EQ(result, 14);
}

TEST(SccConfig, ScaledDividesTheRightGroups) {
  const SccConfig base;
  const SccConfig fast = base.scaled(/*core=*/2.0, /*mesh=*/4.0, /*mem=*/1.0);
  EXPECT_EQ(fast.o_mpb_core, base.o_mpb_core / 2);
  EXPECT_EQ(fast.o_get_mpb, base.o_get_mpb / 2);
  EXPECT_EQ(fast.o_irq_entry, base.o_irq_entry / 2);
  EXPECT_EQ(fast.l_hop, base.l_hop / 4);
  EXPECT_EQ(fast.t_mpb_port, base.t_mpb_port / 4);
  EXPECT_EQ(fast.o_mem_core_read, base.o_mem_core_read);
  EXPECT_EQ(fast.o_mem_core_write, base.o_mem_core_write);
  EXPECT_LE(fast.link_occupancy, fast.l_hop) << "cut-through invariant kept";
  EXPECT_NO_THROW(fast.validate());
}

TEST(SccConfig, ScaledIdentityIsIdentity) {
  const SccConfig base;
  const SccConfig same = base.scaled(1.0, 1.0, 1.0);
  EXPECT_EQ(same.o_mpb(), base.o_mpb());
  EXPECT_EQ(same.l_hop, base.l_hop);
  EXPECT_EQ(same.o_mem_read(), base.o_mem_read());
}

TEST(SccConfig, ScaledClampsToOnePicosecond) {
  const SccConfig tiny = SccConfig{}.scaled(1e9, 1e9, 1e9);
  EXPECT_GE(tiny.l_hop, 1u);
  EXPECT_GE(tiny.o_mpb_core, 1u);
  EXPECT_NO_THROW(tiny.validate());
}

TEST(SccConfig, ScaledRejectsNonPositiveSpeedups) {
  EXPECT_THROW(SccConfig{}.scaled(0.0, 1.0, 1.0), PreconditionError);
  EXPECT_THROW(SccConfig{}.scaled(1.0, -1.0, 1.0), PreconditionError);
}

TEST(DataCache, LruSemantics) {
  DataCache cache(2);
  cache.insert(1);
  cache.insert(2);
  EXPECT_TRUE(cache.lookup(1));  // refreshes 1; LRU order now [1, 2]
  cache.insert(3);               // evicts 2
  EXPECT_TRUE(cache.lookup(1));
  EXPECT_FALSE(cache.lookup(2));
  EXPECT_TRUE(cache.lookup(3));
  EXPECT_EQ(cache.size(), 2u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.lookup(1));
}

TEST(DataCache, ReinsertRefreshes) {
  DataCache cache(2);
  cache.insert(1);
  cache.insert(2);
  cache.insert(1);  // refresh, not duplicate
  cache.insert(3);  // evicts 2
  EXPECT_TRUE(cache.lookup(1));
  EXPECT_FALSE(cache.lookup(2));
}

}  // namespace
}  // namespace ocb::scc
