// Tests for the analytical model: Figure 2 primitives against
// hand-computed Table 1 arithmetic, Formulas 13-16, and the reconstructed
// complete broadcast model's qualitative properties.
#include <gtest/gtest.h>

#include "common/require.h"
#include "model/broadcast_model.h"
#include "model/primitives.h"
#include "model/reduce_model.h"

namespace ocb::model {
namespace {

constexpr sim::Duration ns(std::uint64_t v) { return v * sim::kNanosecond; }

TEST(Primitives, SingleLineFormulasMatchHandComputation) {
  const ModelParams p = ModelParams::paper();
  // C_r^mpb(1) = 126 + 2*5 = 136 ns; at d=9: 126 + 90 = 216 ns.
  EXPECT_EQ(mpb_read_completion(p, 1), ns(136));
  EXPECT_EQ(mpb_read_completion(p, 9), ns(216));
  // Write latency vs completion differ by d*L_hop.
  EXPECT_EQ(mpb_write_latency(p, 3), ns(126 + 15));
  EXPECT_EQ(mpb_write_completion(p, 3), ns(126 + 30));
  // Memory: o_mem_r = 208, o_mem_w = 461.
  EXPECT_EQ(mem_read_completion(p, 4), ns(208 + 40));
  EXPECT_EQ(mem_write_latency(p, 2), ns(461 + 10));
  EXPECT_EQ(mem_write_completion(p, 2), ns(461 + 20));
}

TEST(Primitives, PutFormulas) {
  const ModelParams p = ModelParams::paper();
  // Formula 7, m=4, d_dst=2:
  // 69 + 4*(126+10) + 4*(126+20) = 69 + 544 + 584 = 1197 ns.
  EXPECT_EQ(put_from_mpb_completion(p, 4, 2), ns(1197));
  // Formula 9 (latency): completion - d_dst*L_hop = 1197 - 10.
  EXPECT_EQ(put_from_mpb_latency(p, 4, 2), ns(1187));
  // Formula 8, m=2, d_src=3, d_dst=1:
  // 190 + 2*(208+30) + 2*(126+10) = 190 + 476 + 272 = 938 ns.
  EXPECT_EQ(put_from_mem_completion(p, 2, 3, 1), ns(938));
  EXPECT_EQ(put_from_mem_latency(p, 2, 3, 1), ns(938 - 5));
}

TEST(Primitives, GetFormulas) {
  const ModelParams p = ModelParams::paper();
  // Formula 11, m=96, d_src=1: 330 + 96*136 + 96*136 = 26442 ns.
  EXPECT_EQ(get_to_mpb_completion(p, 96, 1), ns(26'442));
  // Formula 12, m=96, d_src=1, d_dst=1: 95 + 96*136 + 96*471 = 58367 ns.
  EXPECT_EQ(get_to_mem_completion(p, 96, 1, 1), ns(58'367));
}

TEST(Primitives, DistanceMustBePositive) {
  const ModelParams p = ModelParams::paper();
  EXPECT_THROW(mpb_read_completion(p, 0), PreconditionError);
  EXPECT_THROW(put_from_mpb_latency(p, 0, 1), PreconditionError);
}

TEST(TreeDepths, ClosedForms) {
  EXPECT_EQ(kary_depth(48, 7), 2);
  EXPECT_EQ(kary_depth(48, 47), 1);
  EXPECT_EQ(kary_depth(48, 2), 5);
  EXPECT_EQ(binomial_rounds(48), 6);
  EXPECT_EQ(binomial_rounds(2), 1);
  EXPECT_EQ(binomial_rounds(64), 6);
  EXPECT_EQ(binomial_rounds(65), 7);
}

TEST(Formula15, MatchesPaperScale) {
  BroadcastModel m(ModelParams::paper(), {});
  // 32 B / (2*136 + 136 + 471) ns = 32/0.879us = 36.4 MB/s; the paper's
  // Table 2 reports 34-36 MB/s from the complete formulas.
  EXPECT_NEAR(m.formula15_throughput_mbps(), 36.4, 0.1);
}

TEST(Formula16, MatchesPaperScale) {
  BroadcastModel m(ModelParams::paper(), {});
  // Paper Table 2: 13.38 MB/s for two-sided scatter-allgather.
  EXPECT_NEAR(m.formula16_throughput_mbps(), 13.1, 0.2);
}

TEST(Formula13, CriticalPathStructure) {
  BroadcastModel m(ModelParams::paper(), {});
  const ModelParams p = ModelParams::paper();
  // k=47: exactly one tree level.
  EXPECT_EQ(m.ocbcast_critical_path(10, 47),
            put_from_mem_completion(p, 10, 1, 1) + get_to_mpb_completion(p, 10, 1) +
                get_to_mem_completion(p, 10, 1, 1));
  // k=7 has two levels; the extra level costs one more MPB-to-MPB get.
  EXPECT_EQ(m.ocbcast_critical_path(10, 7) - m.ocbcast_critical_path(10, 47),
            get_to_mpb_completion(p, 10, 1));
}

TEST(Formula14, LinearInMessageSize) {
  BroadcastModel m(ModelParams::paper(), {});
  const sim::Duration one = m.binomial_critical_path(1);
  EXPECT_EQ(m.binomial_critical_path(10), 10 * one);
  // Per line: 6*(136+136+471) + 218 = 4676 ns.
  EXPECT_EQ(one, ns(4'676));
}

// --- reconstructed complete model ------------------------------------------

TEST(CompleteModel, LatencyMonotoneInMessageSize) {
  BroadcastModel m(ModelParams::paper(), {});
  sim::Duration prev = 0;
  for (std::size_t lines : {1u, 8u, 32u, 96u, 97u, 192u, 500u}) {
    const sim::Duration lat = m.ocbcast_latency(lines, 7);
    EXPECT_GT(lat, prev) << lines;
    prev = lat;
  }
}

TEST(CompleteModel, K7BeatsBinomialAtAllSmallSizes) {
  // The paper's headline: OC-Bcast dominates the binomial tree (Fig. 6).
  BroadcastModel m(ModelParams::paper(), {});
  for (std::size_t lines = 1; lines <= 192; lines += 13) {
    EXPECT_LT(m.ocbcast_latency(lines, 7), m.binomial_latency(lines))
        << "at " << lines << " lines";
  }
}

TEST(CompleteModel, GapGrowsWithMessageSize) {
  BroadcastModel m(ModelParams::paper(), {});
  const double r1 = static_cast<double>(m.binomial_latency(1)) /
                    static_cast<double>(m.ocbcast_latency(1, 7));
  const double r192 = static_cast<double>(m.binomial_latency(192)) /
                      static_cast<double>(m.ocbcast_latency(192, 7));
  EXPECT_GT(r192, r1) << "the advantage increases with size (Fig. 6a)";
}

TEST(CompleteModel, K47SlowestForTinyMessages) {
  // Fig. 6b: for very small messages k=47 loses to k=7 because the root
  // polls 47 doneFlags.
  BroadcastModel m(ModelParams::paper(), {});
  EXPECT_GT(m.ocbcast_latency(1, 47), m.ocbcast_latency(1, 7));
}

TEST(CompleteModel, LargerKReducesLatencyForMediumMessages) {
  // Fig. 8a observation: k=7 is ~25% better than k=2 at 96..192 lines.
  BroadcastModel m(ModelParams::paper(), {});
  const double k2 = static_cast<double>(m.ocbcast_latency(144, 2));
  const double k7 = static_cast<double>(m.ocbcast_latency(144, 7));
  EXPECT_LT(k7, k2);
  EXPECT_GT((k2 - k7) / k2, 0.10) << "meaningfully better, not marginal";
}

TEST(CompleteModel, ThroughputNearFormula15) {
  BroadcastModel m(ModelParams::paper(), {});
  for (int k : {2, 7, 47}) {
    const double t = m.ocbcast_throughput_mbps(k);
    EXPECT_GT(t, 30.0) << "k=" << k;
    EXPECT_LT(t, m.formula15_throughput_mbps() * 1.02) << "k=" << k;
  }
}

TEST(CompleteModel, ThroughputTriplesScatterAllgather) {
  BroadcastModel m(ModelParams::paper(), {});
  const double ratio = m.ocbcast_throughput_mbps(7) / m.formula16_throughput_mbps();
  EXPECT_GT(ratio, 2.5) << "Table 2: almost 3x";
  EXPECT_LT(ratio, 3.5);
}

TEST(CompleteModel, DoubleBufferingImprovesMediumMessageLatency) {
  // §4.2 at fixed MPB budget: one 192-line buffer vs two 96-line buffers.
  BroadcastModelOptions single;
  single.double_buffering = false;
  single.chunk_lines = 192;
  BroadcastModel with(ModelParams::paper(), {});
  BroadcastModel without(ModelParams::paper(), single);
  for (std::size_t lines : {150u, 192u, 384u}) {
    EXPECT_LT(with.ocbcast_latency(lines, 7), without.ocbcast_latency(lines, 7))
        << lines;
  }
}

TEST(CompleteModel, PeakThroughputInsensitiveToBuffering) {
  // Formula 15 contains no buffering term; the reconstructed model agrees:
  // the steady-state bottleneck is each core's serial per-line copy cost.
  BroadcastModelOptions single;
  single.double_buffering = false;
  single.chunk_lines = 192;
  BroadcastModel with(ModelParams::paper(), {});
  BroadcastModel without(ModelParams::paper(), single);
  EXPECT_NEAR(with.ocbcast_throughput_mbps(7) / without.ocbcast_throughput_mbps(7),
              1.0, 0.10);
}

TEST(CompleteModel, LeafDirectHelpsLatency) {
  BroadcastModelOptions direct;
  direct.leaf_direct_to_memory = true;
  BroadcastModel base(ModelParams::paper(), {});
  BroadcastModel opt(ModelParams::paper(), direct);
  EXPECT_LT(opt.ocbcast_latency(96, 7), base.ocbcast_latency(96, 7));
}

TEST(CompleteModel, SlopeChangesAtChunkBoundary) {
  // Fig. 6a: the latency slope flattens past M_oc because of pipelining.
  BroadcastModel m(ModelParams::paper(), {});
  const auto lat = [&](std::size_t l) {
    return static_cast<double>(m.ocbcast_latency(l, 7));
  };
  const double slope_below = (lat(90) - lat(60)) / 30.0;
  const double slope_above = (lat(180) - lat(150)) / 30.0;
  EXPECT_LT(slope_above, slope_below);
}

TEST(CompleteModel, NodeReturnsCoverAllCores) {
  BroadcastModel m(ModelParams::paper(), {});
  const ModeledBroadcast mb = m.ocbcast(96, 7);
  EXPECT_EQ(mb.node_return.size(), 48u);
  for (sim::Duration d : mb.node_return) {
    EXPECT_GT(d, 0u);
    EXPECT_LE(d, mb.latency);
  }
}

TEST(CompleteModel, BinomialCacheAssumptionMatters) {
  // With a cold cache the binomial tree pays full memory reads per resend.
  BroadcastModelOptions cold;
  cold.cache_capacity_lines = 0;
  BroadcastModel warm(ModelParams::paper(), {});
  BroadcastModel coldm(ModelParams::paper(), cold);
  EXPECT_GT(coldm.binomial_latency(96), warm.binomial_latency(96));
}

TEST(CompleteModel, RejectsDegenerateInputs) {
  BroadcastModel m(ModelParams::paper(), {});
  EXPECT_THROW(m.ocbcast_latency(0, 7), PreconditionError);
  BroadcastModelOptions one;
  one.parties = 1;
  EXPECT_THROW(BroadcastModel(ModelParams::paper(), one), PreconditionError);
}

TEST(ReduceModel, ThroughputOptimumIsSmallFanout) {
  // The k*m ingest term makes throughput peak at k = 2 on SCC parameters
  // (k = 1 wins the per-chunk ingest but pays an O(P)-deep pipeline whose
  // end-to-end latency term never amortizes fully at finite sizes).
  ReduceModel m(ModelParams::paper(), {});
  const int best = m.best_throughput_fanout();
  EXPECT_GE(best, 1);
  EXPECT_LE(best, 3) << "reduction favours small fan-outs";
  EXPECT_GT(m.throughput_mbps(2), m.throughput_mbps(7));
  EXPECT_GT(m.throughput_mbps(7), m.throughput_mbps(47));
}

TEST(ReduceModel, ChainHasWorstSmallMessageLatency) {
  ReduceModel m(ModelParams::paper(), {});
  EXPECT_GT(m.latency(16, 1), m.latency(16, 2));
  EXPECT_GT(m.latency(16, 1), m.latency(16, 7));
}

TEST(ReduceModel, LatencyMonotoneInCount) {
  ReduceModel m(ModelParams::paper(), {});
  sim::Duration prev = 0;
  for (std::size_t count : {1u, 64u, 384u, 385u, 4096u}) {
    const sim::Duration lat = m.latency(count, 2);
    EXPECT_GT(lat, prev) << count;
    prev = lat;
  }
}

TEST(ReduceModel, MirrorsTheSimulatedFanoutOrdering) {
  // Qualitative agreement with bench_extension_collectives' measured sweep
  // (throughput: k=2 > k=7 > k=16 > k=47; small-message latency: k=2
  // beats both extremes).
  ReduceModel m(ModelParams::paper(), {});
  EXPECT_GT(m.throughput_mbps(2), m.throughput_mbps(16));
  EXPECT_GT(m.throughput_mbps(16), m.throughput_mbps(47));
  EXPECT_LT(m.latency(16, 2), m.latency(16, 47));
}

TEST(ReduceModel, RejectsDegenerateInputs) {
  ReduceModel m(ModelParams::paper(), {});
  EXPECT_THROW(m.latency(0, 2), PreconditionError);
  EXPECT_THROW(m.latency(16, 0), PreconditionError);
  EXPECT_THROW(m.latency(16, 48), PreconditionError);
}

}  // namespace
}  // namespace ocb::model
