// Unit tests for the coroutine Task type: laziness, value/exception
// propagation, nesting via symmetric transfer, frame ownership.
#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/engine.h"
#include "sim/task.h"

namespace ocb::sim {
namespace {

Task<int> immediate_value(int v) { co_return v; }

Task<int> add_chain(int depth) {
  if (depth == 0) co_return 0;
  co_return 1 + co_await add_chain(depth - 1);
}

Task<void> set_when_run(bool* flag) {
  *flag = true;
  co_return;
}

Task<int> throws_logic() {
  throw std::logic_error("boom");
  co_return 0;  // unreachable
}

Task<int> rethrows_from_child() {
  co_return co_await throws_logic();
}

Task<void> driver(Engine& e, int* out, int depth) {
  (void)e;
  *out = co_await add_chain(depth);
}

TEST(Task, IsLazy) {
  Engine e;
  bool ran = false;
  Task<void> t = set_when_run(&ran);
  EXPECT_FALSE(ran) << "creating a Task must not start it";
  e.spawn(std::move(t));
  EXPECT_FALSE(ran) << "spawn schedules but does not run";
  e.run();
  EXPECT_TRUE(ran);
}

TEST(Task, ValuePropagates) {
  Engine e;
  int out = 0;
  e.spawn([](Engine&, int* o) -> Task<void> { *o = co_await immediate_value(41) + 1; }(e, &out));
  e.run();
  EXPECT_EQ(out, 42);
}

TEST(Task, DeepNestingDoesNotOverflowStack) {
  // 100k frames: only feasible with symmetric transfer, not native calls.
  Engine e;
  int out = 0;
  e.spawn(driver(e, &out, 100'000));
  e.run();
  EXPECT_EQ(out, 100'000);
}

TEST(Task, ExceptionPropagatesThroughAwait) {
  Engine e;
  bool caught = false;
  e.spawn([](bool* c) -> Task<void> {
    try {
      co_await rethrows_from_child();
    } catch (const std::logic_error&) {
      *c = true;
    }
  }(&caught));
  e.run();
  EXPECT_TRUE(caught);
}

TEST(Task, UncaughtExceptionSurfacesFromRun) {
  Engine e;
  e.spawn([]() -> Task<void> { co_await throws_logic(); }());
  EXPECT_THROW(e.run(), std::logic_error);
}

TEST(Task, MoveTransfersOwnership) {
  Task<int> a = immediate_value(5);
  EXPECT_TRUE(a.valid());
  Task<int> b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): testing moved-from state
  EXPECT_TRUE(b.valid());
  a = std::move(b);
  EXPECT_TRUE(a.valid());
  EXPECT_FALSE(b.valid());  // NOLINT(bugprone-use-after-move)
}

TEST(Task, AwaitingEmptyTaskThrows) {
  Engine e;
  bool threw = false;
  e.spawn([](bool* t) -> Task<void> {
    Task<int> moved_from = immediate_value(1);
    Task<int> sink = std::move(moved_from);
    (void)sink;
    try {
      co_await moved_from;  // NOLINT(bugprone-use-after-move): deliberate
    } catch (const PreconditionError&) {
      *t = true;
    }
  }(&threw));
  e.run();
  EXPECT_TRUE(threw);
}

TEST(Task, DestroyingUnstartedTaskIsClean) {
  { Task<int> t = immediate_value(1); }  // never awaited; frame destroyed
  SUCCEED();
}

TEST(Task, VoidTaskCompletes) {
  Engine e;
  int count = 0;
  e.spawn([](Engine& eng, int* c) -> Task<void> {
    co_await eng.sleep(10);
    ++*c;
    co_await eng.sleep(10);
    ++*c;
  }(e, &count));
  const RunResult r = e.run();
  EXPECT_EQ(count, 2);
  EXPECT_EQ(r.end_time, 20u);
  EXPECT_TRUE(r.completed());
}

}  // namespace
}  // namespace ocb::sim
