// Unit tests for the RCCE-style two-sided layer: matched send/recv
// integrity, chunking, serialization of concurrent senders, layout checks.
#include <gtest/gtest.h>

#include "rma/twosided.h"

namespace ocb::rma {
namespace {

void seed(scc::SccChip& chip, CoreId core, std::size_t offset, std::size_t bytes,
          std::uint8_t tag) {
  auto w = chip.memory(core).host_bytes(offset, bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    w[i] = static_cast<std::byte>(tag + i * 13 + (i >> 8));
  }
}

bool check(scc::SccChip& chip, CoreId core, std::size_t offset, std::size_t bytes,
           std::uint8_t tag) {
  const auto r = chip.memory(core).host_bytes(offset, bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    if (r[i] != static_cast<std::byte>(tag + i * 13 + (i >> 8))) return false;
  }
  return true;
}

class TwoSidedSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TwoSidedSizes, PairRoundTrip) {
  const std::size_t bytes = GetParam();
  scc::SccChip chip;
  TwoSided ts(chip);
  seed(chip, 5, 0, bytes, 0x21);
  chip.spawn(5, [&, bytes](scc::Core& me) -> sim::Task<void> {
    co_await ts.send(me, 17, 0, bytes);
  });
  chip.spawn(17, [&, bytes](scc::Core& me) -> sim::Task<void> {
    co_await ts.recv(me, 5, 64, bytes);
  });
  ASSERT_TRUE(chip.run().completed());
  EXPECT_TRUE(check(chip, 17, 64, bytes, 0x21));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, TwoSidedSizes,
    ::testing::Values(1,                 // sub-line
                      31, 32, 33,        // around one line
                      251 * 32,          // exactly one chunk
                      251 * 32 + 1,      // chunk + 1 byte
                      3 * 251 * 32 + 17, // several chunks, ragged tail
                      100 * 1024));      // 100 KiB

TEST(TwoSided, ReceiverFirstThenSender) {
  scc::SccChip chip;
  TwoSided ts(chip);
  seed(chip, 0, 0, 4096, 0x01);
  chip.spawn(1, [&](scc::Core& me) -> sim::Task<void> {
    co_await ts.recv(me, 0, 0, 4096);
  });
  chip.spawn(0, [&](scc::Core& me) -> sim::Task<void> {
    co_await me.busy(50 * sim::kMicrosecond);  // sender arrives late
    co_await ts.send(me, 1, 0, 4096);
  });
  ASSERT_TRUE(chip.run().completed());
  EXPECT_TRUE(check(chip, 1, 0, 4096, 0x01));
}

TEST(TwoSided, BackToBackMessagesSamePair) {
  scc::SccChip chip;
  TwoSided ts(chip);
  seed(chip, 2, 0, 512, 0x10);
  seed(chip, 2, 1024, 512, 0x55);
  chip.spawn(2, [&](scc::Core& me) -> sim::Task<void> {
    co_await ts.send(me, 3, 0, 512);
    co_await ts.send(me, 3, 1024, 512);
  });
  chip.spawn(3, [&](scc::Core& me) -> sim::Task<void> {
    co_await ts.recv(me, 2, 0, 512);
    co_await ts.recv(me, 2, 1024, 512);
  });
  ASSERT_TRUE(chip.run().completed());
  EXPECT_TRUE(check(chip, 3, 0, 512, 0x10));
  EXPECT_TRUE(check(chip, 3, 1024, 512, 0x55));
}

TEST(TwoSided, ConcurrentSendersSerializeByReceiverOrder) {
  // Two senders target one receiver; the receiver chooses the order. The
  // rendezvous protocol must deliver both intact with no interleaving.
  scc::SccChip chip;
  TwoSided ts(chip);
  seed(chip, 10, 0, 2048, 0xA0);
  seed(chip, 20, 0, 2048, 0xB0);
  for (CoreId s : {10, 20}) {
    chip.spawn(s, [&](scc::Core& me) -> sim::Task<void> {
      co_await ts.send(me, 30, 0, 2048);
    });
  }
  chip.spawn(30, [&](scc::Core& me) -> sim::Task<void> {
    co_await ts.recv(me, 20, 0, 2048);      // deliberately "second" spawner first
    co_await ts.recv(me, 10, 4096, 2048);
  });
  ASSERT_TRUE(chip.run().completed());
  EXPECT_TRUE(check(chip, 30, 0, 2048, 0xB0));
  EXPECT_TRUE(check(chip, 30, 4096, 2048, 0xA0));
}

TEST(TwoSided, BidirectionalExchangeNoDeadlockWithOrdering) {
  // The ring pattern of the allgather phase: each side sends and receives.
  // One side must post its recv first (here: core 1).
  scc::SccChip chip;
  TwoSided ts(chip);
  seed(chip, 0, 0, 1024, 0x0A);
  seed(chip, 1, 0, 1024, 0x0B);
  chip.spawn(0, [&](scc::Core& me) -> sim::Task<void> {
    co_await ts.send(me, 1, 0, 1024);
    co_await ts.recv(me, 1, 4096, 1024);
  });
  chip.spawn(1, [&](scc::Core& me) -> sim::Task<void> {
    co_await ts.recv(me, 0, 4096, 1024);
    co_await ts.send(me, 0, 0, 1024);
  });
  ASSERT_TRUE(chip.run().completed());
  EXPECT_TRUE(check(chip, 1, 4096, 1024, 0x0A));
  EXPECT_TRUE(check(chip, 0, 4096, 1024, 0x0B));
}

TEST(TwoSided, RejectsBadArguments) {
  scc::SccChip chip;
  TwoSided ts(chip);
  bool self_send = false, empty = false;
  chip.spawn(0, [&](scc::Core& me) -> sim::Task<void> {
    try {
      co_await ts.send(me, 0, 0, 32);
    } catch (const PreconditionError&) {
      self_send = true;
    }
    try {
      co_await ts.recv(me, 1, 0, 0);
    } catch (const PreconditionError&) {
      empty = true;
    }
  });
  ASSERT_TRUE(chip.run().completed());
  EXPECT_TRUE(self_send);
  EXPECT_TRUE(empty);
}

TEST(TwoSidedLayout, Validation) {
  TwoSidedLayout ok;
  EXPECT_NO_THROW(ok.validate());

  TwoSidedLayout overlap;
  overlap.ready_line = 10;  // inside payload (2..252)
  EXPECT_THROW(overlap.validate(), PreconditionError);

  TwoSidedLayout same;
  same.sent_line = same.ready_line;
  EXPECT_THROW(same.validate(), PreconditionError);

  TwoSidedLayout huge;
  huge.payload_lines = 255;
  EXPECT_THROW(huge.validate(), PreconditionError);
}

TEST(TwoSided, CustomLayoutWorks) {
  TwoSidedLayout layout;
  layout.ready_line = 6;  // e.g. barrier flags occupy 0..5
  layout.sent_line = 7;
  layout.payload_line = 8;
  layout.payload_lines = 248;
  scc::SccChip chip;
  TwoSided ts(chip, layout);
  seed(chip, 0, 0, 9000, 0x33);
  chip.spawn(0, [&](scc::Core& me) -> sim::Task<void> {
    co_await ts.send(me, 1, 0, 9000);
  });
  chip.spawn(1, [&](scc::Core& me) -> sim::Task<void> {
    co_await ts.recv(me, 0, 0, 9000);
  });
  ASSERT_TRUE(chip.run().completed());
  EXPECT_TRUE(check(chip, 1, 0, 9000, 0x33));
}

TEST(TwoSided, ChunkingUsesPayloadBufferOnly) {
  // A transfer larger than the buffer must not touch lines outside the
  // payload region (flag lines are checked by value elsewhere; here we
  // check the lines above the region stay untouched).
  TwoSidedLayout layout;
  layout.payload_lines = 16;
  scc::SccChip chip;
  TwoSided ts(chip, layout);
  seed(chip, 0, 0, 64 * 32, 0x44);
  chip.spawn(0, [&](scc::Core& me) -> sim::Task<void> {
    co_await ts.send(me, 1, 0, 64 * 32);
  });
  chip.spawn(1, [&](scc::Core& me) -> sim::Task<void> {
    co_await ts.recv(me, 0, 0, 64 * 32);
  });
  ASSERT_TRUE(chip.run().completed());
  EXPECT_TRUE(check(chip, 1, 0, 64 * 32, 0x44));
  for (std::size_t line = 18; line < kMpbCacheLines; ++line) {
    EXPECT_EQ(chip.mpb(1).load(line), CacheLine{}) << "line " << line;
  }
}

}  // namespace
}  // namespace ocb::rma
