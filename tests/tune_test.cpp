// Tests for the design-space autotuner: decision tables (coll/decision.h),
// the adaptive collective (coll/adaptive.h), and the offline explorer
// (tune/explorer.h).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "coll/adaptive.h"
#include "coll/decision.h"
#include "coll/registry.h"
#include "common/require.h"
#include "harness/measurement.h"
#include "scc/chip.h"
#include "tune/explorer.h"

namespace ocb {
namespace {

constexpr std::size_t kNoLimit = static_cast<std::size_t>(-1);

// --- decision tables --------------------------------------------------------

TEST(Decision, ChoiceKeyAndApply) {
  const coll::Choice c{"ocbcast", 2, 48, false};
  EXPECT_EQ(c.key(), "ocbcast/k2/c48/db0");
  coll::Params base;
  base.parties = 17;
  base.leaf_direct_to_memory = true;
  const coll::Params applied = c.apply(base);
  EXPECT_EQ(applied.k, 2);
  EXPECT_EQ(applied.chunk_lines, 48u);
  EXPECT_FALSE(applied.double_buffering);
  // Everything a choice does not pin passes through untouched.
  EXPECT_EQ(applied.parties, 17);
  EXPECT_TRUE(applied.leaf_direct_to_memory);
}

TEST(Decision, LookupIsFirstMatchInOrder) {
  const coll::DecisionTable table({
      coll::DecisionRule{4, kNumCores, 0.0, coll::Choice{"binomial", 2, 48, false}},
      coll::DecisionRule{kNoLimit, kNumCores, 0.0,
                         coll::Choice{"ocbcast", 7, 96, true}},
      coll::DecisionRule{kNoLimit, kNumCores, 1.0,
                         coll::Choice{"ft-ocbcast", 7, 96, true}},
  });
  EXPECT_EQ(table.lookup(1, 48, 0.0).algorithm, "binomial");
  EXPECT_EQ(table.lookup(4, 48, 0.0).algorithm, "binomial");
  EXPECT_EQ(table.lookup(5, 48, 0.0).algorithm, "ocbcast");
  // A faulty query skips every zero-fault band.
  EXPECT_EQ(table.lookup(1, 48, 0.01).algorithm, "ft-ocbcast");
}

TEST(Decision, ConstructorRequiresCatchAll) {
  EXPECT_THROW(coll::DecisionTable({}), PreconditionError);
  // Last rule bounded in size: not a catch-all.
  EXPECT_THROW(coll::DecisionTable({coll::DecisionRule{
                   192, kNumCores, 1.0, coll::Choice{}}}),
               PreconditionError);
  // Last rule bounded in fault rate: not a catch-all.
  EXPECT_THROW(coll::DecisionTable({coll::DecisionRule{
                   kNoLimit, kNumCores, 0.0, coll::Choice{}}}),
               PreconditionError);
}

TEST(Decision, JsonRoundTripIsIdentity) {
  const coll::DecisionTable table({
      coll::DecisionRule{96, kNumCores, 0.0, coll::Choice{"ocbcast", 2, 48, false}},
      coll::DecisionRule{kNoLimit, kNumCores, 0.125,
                         coll::Choice{"ocbcast", 7, 96, true}},
      coll::DecisionRule{kNoLimit, kNumCores, 1.0,
                         coll::Choice{"ft-ocbcast", 47, 96, true}},
  });
  const std::string json = table.to_json();
  EXPECT_NE(json.find("ocb-tune-decision-v1"), std::string::npos);
  const coll::DecisionTable back = coll::DecisionTable::from_json(json);
  EXPECT_EQ(back.to_json(), json);
  ASSERT_EQ(back.rules().size(), 3u);
  EXPECT_EQ(back.rules()[0].max_lines, 96u);
  EXPECT_EQ(back.rules()[1].max_fault_rate, 0.125);
  EXPECT_EQ(back.rules()[2].choice.key(), "ft-ocbcast/k47/c96/db1");
}

TEST(Decision, FromJsonRejectsWrongSchema) {
  EXPECT_THROW(coll::DecisionTable::from_json("{\"schema\": \"other\"}"),
               PreconditionError);
}

TEST(Decision, BakedInCoversTheWholeSpace) {
  const coll::DecisionTable& table = coll::DecisionTable::baked_in();
  EXPECT_EQ(table.lookup(1, 48, 0.0).algorithm, "ocbcast");
  EXPECT_EQ(table.lookup(32768, 48, 0.0).algorithm, "ocbcast");
  EXPECT_EQ(table.lookup(1, 48, 0.5).algorithm, "ft-ocbcast");
  EXPECT_EQ(table.lookup(kNoLimit, 48, 1.0).algorithm, "ft-ocbcast");
}

// --- the adaptive collective ------------------------------------------------

void seed(scc::SccChip& chip, CoreId core, std::size_t offset,
          std::size_t bytes, std::uint64_t salt) {
  auto w = chip.memory(core).host_bytes(offset, bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    w[i] = static_cast<std::byte>((i * 37 + salt) & 0xff);
  }
}

bool delivered(scc::SccChip& chip, CoreId root, int parties,
               std::size_t offset, std::size_t bytes) {
  const auto want = chip.memory(root).host_bytes(offset, bytes);
  for (CoreId c = 0; c < parties; ++c) {
    if (c == root) continue;
    const auto got = chip.memory(c).host_bytes(offset, bytes);
    if (!std::equal(want.begin(), want.end(), got.begin())) return false;
  }
  return true;
}

TEST(Adaptive, RegistersAsAdaptiveIdempotently) {
  coll::register_adaptive();
  coll::register_adaptive();  // second call is a no-op, not a collision
  EXPECT_TRUE(coll::registered("adaptive"));
  scc::SccChip chip;
  auto algo = coll::make("adaptive", chip);
  EXPECT_EQ(algo->name(), "adaptive");
  EXPECT_EQ(algo->parties(), kNumCores);
}

TEST(Adaptive, DeliversViaHarnessAtSmallAndLargeSizes) {
  coll::register_adaptive();
  for (const std::size_t bytes : {std::size_t{32}, std::size_t{8192}}) {
    harness::BcastRunSpec spec;
    spec.algorithm_name = "adaptive";
    spec.message_bytes = bytes;
    spec.iterations = 2;
    const harness::BcastRunResult r = harness::run_broadcast(spec);
    EXPECT_TRUE(r.content_ok) << bytes;
    EXPECT_GT(r.latency_us.mean(), 0.0) << bytes;
  }
}

TEST(Adaptive, SwitchesDelegateAcrossSizeBandsAndRecordsSelections) {
  // A table whose bands disagree: tiny messages go to binomial, the rest
  // to OC-Bcast — two rounds at different sizes must switch delegates.
  coll::DecisionTable table({
      coll::DecisionRule{2, kNumCores, 1.0, coll::Choice{"binomial", 2, 48, false}},
      coll::DecisionRule{kNoLimit, kNumCores, 1.0,
                         coll::Choice{"ocbcast", 7, 96, true}},
  });
  scc::SccChip chip;
  coll::AdaptiveBcast bcast(chip, coll::Params{}, std::move(table));

  const std::size_t small_bytes = 2 * kCacheLineBytes;
  const std::size_t big_bytes = 300 * kCacheLineBytes;
  seed(chip, 0, 0, small_bytes, 5);
  seed(chip, 0, 4096, big_bytes, 9);
  for (CoreId c = 0; c < kNumCores; ++c) {
    chip.spawn(c, [&bcast, small_bytes, big_bytes](
                      scc::Core& me) -> sim::Task<void> {
      co_await bcast.run(me, 0, 0, small_bytes);
      co_await bcast.run(me, 0, 4096, big_bytes);
    });
  }
  ASSERT_TRUE(chip.run().completed());
  EXPECT_TRUE(delivered(chip, 0, kNumCores, 0, small_bytes));
  EXPECT_TRUE(delivered(chip, 0, kNumCores, 4096, big_bytes));

  ASSERT_EQ(bcast.selections().size(), 2u);
  EXPECT_EQ(bcast.selections()[0].choice.algorithm, "binomial");
  EXPECT_EQ(bcast.selections()[0].lines, 2u);
  EXPECT_EQ(bcast.selections()[1].choice.algorithm, "ocbcast");
  EXPECT_EQ(bcast.selections()[1].lines, 300u);
}

TEST(Adaptive, FaultRateSteersToTheFtBand) {
  coll::register_adaptive();
  harness::BcastRunSpec spec;
  spec.algorithm_name = "adaptive";
  spec.params.observed_fault_rate = 0.01;
  spec.message_bytes = 4096;
  spec.iterations = 1;
  const harness::BcastRunResult r = harness::run_broadcast(spec);
  EXPECT_TRUE(r.content_ok);
}

TEST(Adaptive, CustomTableArrivesThroughParams) {
  coll::register_adaptive();
  coll::DecisionTable table({
      coll::DecisionRule{kNoLimit, kNumCores, 1.0,
                         coll::Choice{"scatter-allgather", 7, 96, true}},
  });
  harness::BcastRunSpec spec;
  spec.algorithm_name = "adaptive";
  spec.params.adaptive_table_json = table.to_json();
  spec.message_bytes = 48 * kCacheLineBytes;
  spec.iterations = 1;
  const harness::BcastRunResult r = harness::run_broadcast(spec);
  EXPECT_TRUE(r.content_ok);
}

TEST(Adaptive, RefusesServiceSlotLeases) {
  scc::SccChip chip;
  coll::Params params;
  params.mpb_base_line = 16;
  EXPECT_THROW(coll::AdaptiveBcast(chip, params), PreconditionError);
}

// --- the offline explorer ---------------------------------------------------

tune::ExplorerOptions tiny_grid() {
  tune::ExplorerOptions o;
  o.algorithms = {"ocbcast", "binomial"};
  o.sizes_lines = {1, 96};
  o.fanouts = {2, 7};
  o.chunk_grid = {96};
  o.buffering_grid = {true};
  o.iterations = 2;
  return o;
}

TEST(Explorer, TinyGridMeasuresEveryFeasiblePoint) {
  const tune::ExploreResult r = tune::explore(tiny_grid());
  // 2 sizes x (2 ocbcast shapes + 1 binomial) = 6 points.
  ASSERT_EQ(r.points.size(), 6u);
  for (const tune::PointResult& p : r.points) {
    EXPECT_TRUE(p.content_ok) << p.point.label();
    EXPECT_GT(p.latency_us, 0.0) << p.point.label();
    EXPECT_GT(p.throughput_mbps, 0.0) << p.point.label();
    EXPECT_EQ(p.resilience, -1.0) << p.point.label();  // no fault axis
  }
  // Each size has at least one front member, and front members are exactly
  // the points flagged pareto.
  ASSERT_FALSE(r.front.empty());
  for (const std::size_t lines : {std::size_t{1}, std::size_t{96}}) {
    EXPECT_TRUE(std::any_of(r.front.begin(), r.front.end(), [&](std::size_t i) {
      return r.points[i].point.lines == lines;
    })) << lines;
  }
  for (std::size_t i = 0; i < r.points.size(); ++i) {
    const bool in_front =
        std::find(r.front.begin(), r.front.end(), i) != r.front.end();
    EXPECT_EQ(r.points[i].pareto, in_front) << i;
  }
}

TEST(Explorer, FrontMembersAreUndominatedWithinTheirSize) {
  const tune::ExploreResult r = tune::explore(tiny_grid());
  for (const std::size_t fi : r.front) {
    const tune::PointResult& f = r.points[fi];
    for (const tune::PointResult& other : r.points) {
      if (other.point.lines != f.point.lines) continue;
      const bool strictly_better = other.latency_us < f.latency_us &&
                                   other.throughput_mbps > f.throughput_mbps;
      EXPECT_FALSE(strictly_better)
          << other.point.label() << " dominates front member "
          << f.point.label();
    }
  }
}

TEST(Explorer, DerivedTableDelegatesToThePerSizeWinner) {
  const tune::ExploreResult r = tune::explore(tiny_grid());
  const coll::DecisionTable table = tune::derive_table(r);
  for (const std::size_t lines : {std::size_t{1}, std::size_t{96}}) {
    double best = 0.0;
    std::string best_key;
    for (const tune::PointResult& p : r.points) {
      if (p.point.lines != lines || !p.content_ok) continue;
      if (best_key.empty() || p.latency_us < best) {
        best = p.latency_us;
        best_key = p.point.choice().key();
      }
    }
    EXPECT_EQ(table.lookup(lines, 48, 0.0).key(), best_key) << lines;
  }
  // Without fault data the fault catch-all routes to the FT protocol.
  EXPECT_EQ(table.lookup(1, 48, 0.5).algorithm, "ft-ocbcast");
}

TEST(Explorer, JsonRecordIsVersionedAndCarriesTheTable) {
  const tune::ExploreResult r = tune::explore(tiny_grid());
  const std::string json = tune::to_json(r);
  EXPECT_NE(json.find("\"ocb-tune-pareto-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"ocb-tune-decision-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"pareto\": true"), std::string::npos);
  // The embedded decision table parses back on its own.
  const std::size_t at = json.find("\"decision_table\":");
  ASSERT_NE(at, std::string::npos);
  const coll::DecisionTable table =
      coll::DecisionTable::from_json(json.substr(at));
  EXPECT_FALSE(table.rules().empty());
  // The report renders every point plus the derived table.
  const std::string report = tune::render_report(r);
  EXPECT_NE(report.find("ocbcast"), std::string::npos);
  EXPECT_NE(report.find("ocb-tune-decision-v1"), std::string::npos);
}

TEST(Explorer, ResilienceAxisScoresFtAboveUnprotected) {
  tune::ExplorerOptions o;
  o.algorithms = {"ocbcast", "ft-ocbcast"};
  o.sizes_lines = {8};
  o.fanouts = {7};
  o.chunk_grid = {96};
  o.buffering_grid = {true};
  o.iterations = 1;
  o.fault_rate = 0.02;  // per-MPB-read corruption probability
  o.fault_seeds = {1, 2};
  const tune::ExploreResult r = tune::explore(o);
  ASSERT_EQ(r.points.size(), 2u);
  double ocb = -2.0, ft = -2.0;
  for (const tune::PointResult& p : r.points) {
    (p.point.algorithm == "ft-ocbcast" ? ft : ocb) = p.resilience;
  }
  // The checksummed protocol survives read corruption; plain OC-Bcast is
  // at the injector's mercy.
  EXPECT_EQ(ft, 1.0);
  EXPECT_GE(ocb, 0.0);
  EXPECT_LE(ocb, 1.0);
  // And the derived fault band picks it.
  const coll::DecisionTable table = tune::derive_table(r);
  EXPECT_EQ(table.lookup(8, 48, 0.02).algorithm, "ft-ocbcast");
}

TEST(Explorer, RejectsEmptyAndUnknownGrids) {
  tune::ExplorerOptions empty;
  EXPECT_THROW(tune::explore(empty), PreconditionError);
  tune::ExplorerOptions unknown = tiny_grid();
  unknown.algorithms = {"no-such-algorithm"};
  EXPECT_THROW(tune::explore(unknown), PreconditionError);
}

}  // namespace
}  // namespace ocb
