// Tests for least-squares fitting and Table 1 parameter recovery.
#include <gtest/gtest.h>

#include "common/require.h"
#include "common/rng.h"
#include "model/fit.h"
#include "model/primitives.h"

namespace ocb::model {
namespace {

TEST(LeastSquares, ExactLinearSystem) {
  // y = 2*x0 + 3*x1 - 1*x2
  const std::vector<std::vector<double>> rows{
      {1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {1, 1, 1}, {2, 1, 0}};
  const std::vector<double> rhs{2, 3, -1, 4, 7};
  const auto x = least_squares(rows, rhs);
  ASSERT_EQ(x.size(), 3u);
  EXPECT_NEAR(x[0], 2.0, 1e-9);
  EXPECT_NEAR(x[1], 3.0, 1e-9);
  EXPECT_NEAR(x[2], -1.0, 1e-9);
}

TEST(LeastSquares, OverdeterminedNoisyAveragesOut) {
  Xoshiro256 rng(11);
  std::vector<std::vector<double>> rows;
  std::vector<double> rhs;
  for (int i = 0; i < 500; ++i) {
    const double a = rng.next_double() * 10;
    const double b = rng.next_double() * 10;
    rows.push_back({a, b, 1.0});
    const double noise = (rng.next_double() - 0.5) * 0.01;
    rhs.push_back(1.5 * a - 0.7 * b + 4.0 + noise);
  }
  const auto x = least_squares(rows, rhs);
  EXPECT_NEAR(x[0], 1.5, 1e-2);
  EXPECT_NEAR(x[1], -0.7, 1e-2);
  EXPECT_NEAR(x[2], 4.0, 1e-2);
}

TEST(LeastSquares, SingularSystemThrows) {
  // Second column is a multiple of the first.
  const std::vector<std::vector<double>> rows{{1, 2}, {2, 4}, {3, 6}};
  const std::vector<double> rhs{1, 2, 3};
  EXPECT_THROW(least_squares(rows, rhs), PreconditionError);
}

TEST(LeastSquares, InputValidation) {
  EXPECT_THROW(least_squares({}, {}), PreconditionError);
  EXPECT_THROW(least_squares({{1.0}}, {1.0, 2.0}), PreconditionError);
  EXPECT_THROW(least_squares({{1.0}, {1.0, 2.0}}, {1.0, 2.0}), PreconditionError);
}

std::vector<OpSample> samples_from_model(const ModelParams& p) {
  std::vector<OpSample> samples;
  for (std::size_t m : {1u, 4u, 8u, 16u}) {
    for (int d = 1; d <= 9; d += 2) {
      samples.push_back({OpSample::Kind::kPutFromMpb, m, 1, d,
                         sim::to_us(put_from_mpb_completion(p, m, d))});
      samples.push_back({OpSample::Kind::kGetToMpb, m, d, 1,
                         sim::to_us(get_to_mpb_completion(p, m, d))});
    }
    for (int d = 1; d <= 4; ++d) {
      samples.push_back({OpSample::Kind::kPutFromMem, m, d, 1,
                         sim::to_us(put_from_mem_completion(p, m, d, 1))});
      samples.push_back({OpSample::Kind::kGetToMem, m, 1, d,
                         sim::to_us(get_to_mem_completion(p, m, 1, d))});
    }
  }
  return samples;
}

TEST(Fit, RecoversPaperParametersExactly) {
  const ModelParams truth = ModelParams::paper();
  const FitResult fit = fit_model_params(samples_from_model(truth));
  EXPECT_EQ(fit.params.l_hop, truth.l_hop);
  EXPECT_EQ(fit.params.o_mpb, truth.o_mpb);
  EXPECT_EQ(fit.params.o_mem_r, truth.o_mem_r);
  EXPECT_EQ(fit.params.o_mem_w, truth.o_mem_w);
  EXPECT_EQ(fit.params.o_put_mpb, truth.o_put_mpb);
  EXPECT_EQ(fit.params.o_get_mpb, truth.o_get_mpb);
  EXPECT_EQ(fit.params.o_put_mem, truth.o_put_mem);
  EXPECT_EQ(fit.params.o_get_mem, truth.o_get_mem);
  EXPECT_LT(fit.max_relative_error, 1e-6);
}

TEST(Fit, RecoversPerturbedParameters) {
  ModelParams truth;
  truth.l_hop = 7 * sim::kNanosecond;
  truth.o_mpb = 200 * sim::kNanosecond;
  truth.o_mem_r = 300 * sim::kNanosecond;
  truth.o_mem_w = 500 * sim::kNanosecond;
  truth.o_put_mpb = 10 * sim::kNanosecond;
  truth.o_get_mpb = 20 * sim::kNanosecond;
  truth.o_put_mem = 30 * sim::kNanosecond;
  truth.o_get_mem = 40 * sim::kNanosecond;
  const FitResult fit = fit_model_params(samples_from_model(truth));
  EXPECT_EQ(fit.params.l_hop, truth.l_hop);
  EXPECT_EQ(fit.params.o_get_mpb, truth.o_get_mpb);
  EXPECT_EQ(fit.params.o_mem_w, truth.o_mem_w);
}

TEST(Fit, SingleOpKindIsSingular) {
  // Put-from-MPB samples alone cannot identify the memory parameters.
  const ModelParams p = ModelParams::paper();
  std::vector<OpSample> samples;
  for (int d = 1; d <= 9; ++d) {
    samples.push_back({OpSample::Kind::kPutFromMpb, 4, 1, d,
                       sim::to_us(put_from_mpb_completion(p, 4, d))});
  }
  EXPECT_THROW(fit_model_params(samples), PreconditionError);
}

}  // namespace
}  // namespace ocb::model
