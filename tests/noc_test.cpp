// Unit and property tests for the NoC: geometry, X-Y routing, mesh timing,
// memory-controller placement.
#include <gtest/gtest.h>

#include "noc/geometry.h"
#include "noc/memctrl.h"
#include "noc/mesh.h"
#include "noc/routing.h"
#include "sim/engine.h"

namespace ocb::noc {
namespace {

TEST(Geometry, TileIndexRoundTrip) {
  for (int i = 0; i < kNumTiles; ++i) {
    EXPECT_EQ(tile_index(tile_coord(i)), i);
  }
  EXPECT_EQ(tile_index(TileCoord{0, 0}), 0);
  EXPECT_EQ(tile_index(TileCoord{5, 0}), 5);
  EXPECT_EQ(tile_index(TileCoord{0, 1}), 6);
  EXPECT_EQ(tile_index(TileCoord{5, 3}), 23);
}

TEST(Geometry, CoresPairPerTile) {
  for (CoreId c = 0; c < kNumCores; ++c) {
    EXPECT_EQ(tile_index_of_core(c), c / 2);
  }
  EXPECT_EQ(first_core_of_tile(0), 0);
  EXPECT_EQ(first_core_of_tile(23), 46);
  EXPECT_EQ(tile_of_core(0), (TileCoord{0, 0}));
  EXPECT_EQ(tile_of_core(47), (TileCoord{5, 3}));
}

TEST(Geometry, BoundsChecked) {
  EXPECT_THROW(tile_index(TileCoord{6, 0}), PreconditionError);
  EXPECT_THROW(tile_index(TileCoord{0, 4}), PreconditionError);
  EXPECT_THROW(tile_coord(24), PreconditionError);
  EXPECT_THROW(tile_of_core(48), PreconditionError);
  EXPECT_THROW(tile_of_core(-1), PreconditionError);
}

TEST(Geometry, RoutersTraversedIsManhattanPlusOne) {
  EXPECT_EQ(routers_traversed(TileCoord{0, 0}, TileCoord{0, 0}), 1);
  EXPECT_EQ(routers_traversed(TileCoord{0, 0}, TileCoord{5, 3}), 9);
  EXPECT_EQ(routers_traversed(TileCoord{2, 2}, TileCoord{3, 2}), 2);
}

TEST(Geometry, MaxDistanceOnMeshIsNine) {
  int max_d = 0;
  for (int a = 0; a < kNumTiles; ++a) {
    for (int b = 0; b < kNumTiles; ++b) {
      max_d = std::max(max_d, routers_traversed(tile_coord(a), tile_coord(b)));
    }
  }
  EXPECT_EQ(max_d, 9) << "the paper's Figure 3 spans 1..9 hops";
}

// Property: every route is a valid X-then-Y path of the right length.
class XyRouteProperty : public ::testing::TestWithParam<int> {};

TEST_P(XyRouteProperty, RouteShape) {
  const TileCoord src = tile_coord(GetParam() / kNumTiles);
  const TileCoord dst = tile_coord(GetParam() % kNumTiles);
  const auto route = xy_route(src, dst);
  ASSERT_EQ(static_cast<int>(route.size()), manhattan(src, dst) + 1);
  EXPECT_EQ(route.front(), src);
  EXPECT_EQ(route.back(), dst);
  bool seen_y_move = false;
  for (std::size_t i = 0; i + 1 < route.size(); ++i) {
    EXPECT_EQ(manhattan(route[i], route[i + 1]), 1) << "adjacent steps only";
    const bool x_move = route[i].x != route[i + 1].x;
    if (x_move) {
      EXPECT_FALSE(seen_y_move) << "X-Y routing: all X steps before any Y step";
    } else {
      seen_y_move = true;
    }
  }
  const auto links = xy_route_links(src, dst);
  EXPECT_EQ(links.size(), route.size() - 1);
  for (LinkId l : links) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, kNumLinkSlots);
  }
}

INSTANTIATE_TEST_SUITE_P(AllTilePairs, XyRouteProperty,
                         ::testing::Range(0, kNumTiles * kNumTiles));

TEST(Routing, LinkIdsUniquePerDirectedEdge) {
  EXPECT_NE(link_id(TileCoord{2, 2}, Direction::kEast),
            link_id(TileCoord{3, 2}, Direction::kWest));
  EXPECT_THROW(link_id(TileCoord{5, 0}, Direction::kEast), PreconditionError);
  EXPECT_THROW(link_id(TileCoord{0, 0}, Direction::kWest), PreconditionError);
  EXPECT_THROW(link_id(TileCoord{0, 0}, Direction::kNorth), PreconditionError);
  EXPECT_THROW(link_id(TileCoord{0, 3}, Direction::kSouth), PreconditionError);
}

TEST(Routing, RouteUsesLinkMatchesPaperStressPattern) {
  // §3.3: a get by (5,1) from (0,2) moves data (0,2) -> (5,1); X-first
  // routing crosses (2,2)->(3,2).
  EXPECT_TRUE(route_uses_link(TileCoord{0, 2}, TileCoord{5, 1}, TileCoord{2, 2},
                              TileCoord{3, 2}));
  // The reverse direction uses the opposite link.
  EXPECT_FALSE(route_uses_link(TileCoord{5, 2}, TileCoord{0, 1}, TileCoord{2, 2},
                               TileCoord{3, 2}));
  EXPECT_TRUE(route_uses_link(TileCoord{5, 2}, TileCoord{0, 1}, TileCoord{3, 2},
                              TileCoord{2, 2}));
  EXPECT_THROW(route_uses_link(TileCoord{0, 0}, TileCoord{1, 0}, TileCoord{0, 0},
                               TileCoord{2, 0}),
               PreconditionError);
}

TEST(Mesh, UncontendedLatencyIsRoutersTimesLhop) {
  sim::Engine e;
  Mesh mesh(e, /*l_hop=*/5000, /*link_occupancy=*/2500);
  // Space departures far enough apart that earlier packets cannot congest
  // later ones (each holds a link for only 2.5 us total here).
  sim::Time depart = 0;
  for (int a = 0; a < kNumTiles; ++a) {
    for (int b = 0; b < kNumTiles; ++b) {
      depart += 1'000'000;
      const TileCoord src = tile_coord(a);
      const TileCoord dst = tile_coord(b);
      const sim::Time arrival = mesh.reserve_path(depart, src, dst);
      EXPECT_EQ(arrival, depart + 5000u * static_cast<sim::Time>(
                                      routers_traversed(src, dst)));
    }
  }
}

TEST(Mesh, OversubscribedLinkQueues) {
  sim::Engine e;
  Mesh mesh(e, 5000, 2500);
  // Two packets enter the same link at the same instant: the second is
  // delayed by the first's serialization time.
  const sim::Time a = mesh.reserve_path(0, TileCoord{0, 0}, TileCoord{1, 0});
  const sim::Time b = mesh.reserve_path(0, TileCoord{0, 0}, TileCoord{1, 0});
  EXPECT_EQ(a, 10000u);
  EXPECT_EQ(b, 12500u);
}

TEST(Mesh, DisjointLinksDoNotInteract) {
  sim::Engine e;
  Mesh mesh(e, 5000, 2500);
  mesh.reserve_path(0, TileCoord{0, 0}, TileCoord{1, 0});
  const sim::Time b = mesh.reserve_path(0, TileCoord{0, 1}, TileCoord{1, 1});
  EXPECT_EQ(b, 10000u);
}

TEST(Mesh, LinkStatsCount) {
  sim::Engine e;
  Mesh mesh(e, 5000, 2500);
  const LinkId east00 = link_id(TileCoord{0, 0}, Direction::kEast);
  EXPECT_EQ(mesh.link_packets(east00), 0u);
  mesh.reserve_path(0, TileCoord{0, 0}, TileCoord{2, 0});
  EXPECT_EQ(mesh.link_packets(east00), 1u);
  EXPECT_EQ(mesh.link_total_occupancy(east00), 2500u);
}

TEST(Mesh, TraverseAwaitableAdvancesClock) {
  sim::Engine e;
  Mesh mesh(e, 5000, 2500);
  sim::Time done = 0;
  e.spawn([](sim::Engine& eng, Mesh& m, sim::Time* out) -> sim::Task<void> {
    co_await m.traverse(TileCoord{0, 0}, TileCoord{5, 3});
    *out = eng.now();
  }(e, mesh, &done));
  e.run();
  EXPECT_EQ(done, 9u * 5000u);
}

TEST(Mesh, RejectsBadConfig) {
  sim::Engine e;
  EXPECT_THROW(Mesh(e, 0, 0), PreconditionError);
  EXPECT_THROW(Mesh(e, 5000, 6000), PreconditionError);  // occupancy > L_hop
}

TEST(MemCtrl, QuadrantAssignment) {
  EXPECT_EQ(mc_index_for_core(0), 0);                       // tile (0,0)
  EXPECT_EQ(mc_tile_for_core(0), (TileCoord{0, 0}));
  EXPECT_EQ(mc_index_for_core(11), 1);                      // tile (5,0)
  EXPECT_EQ(mc_tile_for_core(11), (TileCoord{5, 0}));
  EXPECT_EQ(mc_index_for_core(24), 2);                      // tile (0,2)
  EXPECT_EQ(mc_tile_for_core(24), (TileCoord{0, 2}));
  EXPECT_EQ(mc_index_for_core(47), 3);                      // tile (5,3)
  EXPECT_EQ(mc_tile_for_core(47), (TileCoord{5, 2}));
}

TEST(MemCtrl, DistancesSpanOneToFour) {
  // The paper's Figure 3 memory panels span exactly 1..4 hops.
  int min_d = 99;
  int max_d = 0;
  for (CoreId c = 0; c < kNumCores; ++c) {
    const int d = mem_distance(c);
    min_d = std::min(min_d, d);
    max_d = std::max(max_d, d);
    EXPECT_GE(d, 1);
    EXPECT_LE(d, 4);
  }
  EXPECT_EQ(min_d, 1);
  EXPECT_EQ(max_d, 4);
}

TEST(MemCtrl, EveryQuadrantHasTwelveCores) {
  std::array<int, kNumMemoryControllers> counts{};
  for (CoreId c = 0; c < kNumCores; ++c) ++counts[static_cast<std::size_t>(mc_index_for_core(c))];
  for (int n : counts) EXPECT_EQ(n, 12);
}

}  // namespace
}  // namespace ocb::noc
