// Unit tests for src/common: types, rng, stats, format, require.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "common/format.h"
#include "common/require.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/types.h"

namespace ocb {
namespace {

TEST(Require, ThrowsWithMessage) {
  try {
    OCB_REQUIRE(1 == 2, "math broke");
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("math broke"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Require, PassesSilently) {
  EXPECT_NO_THROW(OCB_REQUIRE(true, "never"));
}

TEST(Types, CacheLinesFor) {
  EXPECT_EQ(cache_lines_for(0), 0u);
  EXPECT_EQ(cache_lines_for(1), 1u);
  EXPECT_EQ(cache_lines_for(32), 1u);
  EXPECT_EQ(cache_lines_for(33), 2u);
  EXPECT_EQ(cache_lines_for(64), 2u);
  EXPECT_EQ(cache_lines_for(1 << 20), 32768u);
}

TEST(Types, CacheLineRoundTrip) {
  std::array<std::byte, 20> src{};
  for (std::size_t i = 0; i < src.size(); ++i) src[i] = static_cast<std::byte>(i + 1);
  const CacheLine cl = cache_line_from(src);
  for (std::size_t i = 0; i < src.size(); ++i) EXPECT_EQ(cl.bytes[i], src[i]);
  for (std::size_t i = src.size(); i < kCacheLineBytes; ++i) {
    EXPECT_EQ(cl.bytes[i], std::byte{0}) << "tail must be zero-padded";
  }
  std::array<std::byte, 10> dst{};
  cache_line_to(cl, dst);
  EXPECT_TRUE(std::memcmp(dst.data(), src.data(), dst.size()) == 0);
}

TEST(Types, CacheLineEquality) {
  CacheLine a, b;
  EXPECT_EQ(a, b);
  b.bytes[31] = std::byte{1};
  EXPECT_NE(a, b);
}

TEST(Rng, Deterministic) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowInRange) {
  Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 10ull, 48ull, 1000000007ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowCoversValues) {
  Xoshiro256 rng(3);
  std::array<int, 8> hits{};
  for (int i = 0; i < 4000; ++i) ++hits[rng.next_below(8)];
  for (int h : hits) EXPECT_GT(h, 300);  // roughly uniform
}

TEST(Rng, DoubleInUnitInterval) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RunningStats, Moments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyThrows) {
  RunningStats s;
  EXPECT_THROW(s.mean(), PreconditionError);
  EXPECT_THROW(s.min(), PreconditionError);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(SampleStats, Percentiles) {
  SampleStats s;
  for (int i = 100; i >= 1; --i) s.add(i);  // unsorted insert
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.median(), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(99), 99.0);
  EXPECT_THROW(s.percentile(101), PreconditionError);
}

TEST(SampleStats, AddAfterPercentileStillSorted) {
  SampleStats s;
  s.add(3.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.median(), 1.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 3.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 2.0);
}

TEST(LatencyHistogram, SmallValuesAreExact) {
  LatencyHistogram h;
  for (std::uint64_t v = 0; v < 8; ++v) {
    EXPECT_EQ(LatencyHistogram::bucket_index(v), v);
    EXPECT_EQ(LatencyHistogram::bucket_lower_bound(v), v);
    h.add(v);
  }
  EXPECT_EQ(h.count(), 8u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 7u);
  EXPECT_DOUBLE_EQ(h.mean(), 3.5);
  EXPECT_EQ(h.quantile(1.0), 7u);
}

TEST(LatencyHistogram, BucketsAreMonotoneAndSelfConsistent) {
  // Every bucket's lower bound maps back to that bucket, and sample values
  // never land below their bucket's lower bound.
  for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    EXPECT_EQ(LatencyHistogram::bucket_index(
                  LatencyHistogram::bucket_lower_bound(i)),
              i)
        << "bucket " << i;
    if (i > 0) {
      EXPECT_GT(LatencyHistogram::bucket_lower_bound(i),
                LatencyHistogram::bucket_lower_bound(i - 1));
    }
  }
  for (std::uint64_t v : {9ull, 100ull, 4096ull, 123456789ull, ~0ull}) {
    const std::size_t b = LatencyHistogram::bucket_index(v);
    EXPECT_LE(LatencyHistogram::bucket_lower_bound(b), v);
    if (b + 1 < LatencyHistogram::kBuckets) {
      EXPECT_GT(LatencyHistogram::bucket_lower_bound(b + 1), v);
    }
  }
}

TEST(LatencyHistogram, QuantilesWithinRelativeError) {
  // 8 sub-buckets per octave bound the quantile's understatement to one
  // eighth of the value.
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 10'000; ++v) h.add(v);
  EXPECT_EQ(h.count(), 10'000u);
  const std::uint64_t p50 = h.p50();
  const std::uint64_t p99 = h.p99();
  const std::uint64_t p999 = h.p999();
  EXPECT_LE(p50, 5'000u);
  EXPECT_GE(p50, 5'000u * 7 / 8);
  EXPECT_LE(p99, 9'900u);
  EXPECT_GE(p99, 9'900u * 7 / 8);
  EXPECT_LE(p999, 9'990u);
  EXPECT_GE(p999, 9'990u * 7 / 8);
  EXPECT_GE(p999, p99);
  EXPECT_GE(p99, p50);
}

TEST(LatencyHistogram, EmptyAndErrors) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_THROW(h.quantile(0.5), PreconditionError) << "no samples";
  h.add(5);
  EXPECT_THROW(h.quantile(0.0), PreconditionError);
  EXPECT_THROW(h.quantile(1.5), PreconditionError);
  EXPECT_EQ(h.quantile(0.5), 5u);
}

TEST(LatencyHistogram, MergeMatchesCombinedStream) {
  LatencyHistogram a, b, both;
  for (std::uint64_t v = 0; v < 500; v += 3) {
    a.add(v);
    both.add(v);
  }
  for (std::uint64_t v = 1'000; v < 100'000; v += 997) {
    b.add(v);
    both.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_EQ(a.min(), both.min());
  EXPECT_EQ(a.max(), both.max());
  EXPECT_DOUBLE_EQ(a.mean(), both.mean());
  EXPECT_EQ(a.p50(), both.p50());
  EXPECT_EQ(a.p99(), both.p99());
  EXPECT_EQ(a.p999(), both.p999());
}

TEST(LatencyHistogram, MergeWithEmptyHistogram) {
  LatencyHistogram empty, filled;
  filled.add(7);
  filled.add(1'000);

  // Empty `other`: its min_ sentinel (~0) must not leak into the target.
  LatencyHistogram a = filled;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 7u);
  EXPECT_EQ(a.max(), 1'000u);
  EXPECT_DOUBLE_EQ(a.mean(), filled.mean());

  // Empty `this`: adopts other's stats wholesale.
  LatencyHistogram b;
  b.merge(filled);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.min(), 7u);
  EXPECT_EQ(b.p50(), filled.p50());

  // Empty + empty stays empty (and min() keeps reporting 0, not the
  // sentinel).
  LatencyHistogram c;
  c.merge(empty);
  EXPECT_EQ(c.count(), 0u);
  EXPECT_EQ(c.min(), 0u);
  EXPECT_THROW(c.quantile(0.5), PreconditionError);
}

TEST(LatencyHistogram, QuantileAtSubBucketBoundaries) {
  // Samples sitting exactly on sub-bucket lower edges must be reported
  // exactly: for e=4 the edges are 16, 18, 20, ..., 30 (width 2).
  LatencyHistogram h;
  std::vector<std::uint64_t> edges;
  for (std::uint64_t v = 16; v < 32; v += 2) {
    ASSERT_EQ(LatencyHistogram::bucket_lower_bound(
                  LatencyHistogram::bucket_index(v)),
              v);
    h.add(v);
    edges.push_back(v);
  }
  // Nearest-rank: quantile i/8 is the i-th edge.
  for (std::size_t i = 1; i <= edges.size(); ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(edges.size());
    EXPECT_EQ(h.quantile(q), edges[i - 1]) << "q=" << q;
  }
  // One past an edge falls into the same bucket and reports its lower edge.
  LatencyHistogram h2;
  h2.add(17);
  EXPECT_EQ(h2.quantile(1.0), 16u);
}

TEST(LatencyHistogram, NearTwo63SamplesUseLastBuckets) {
  const std::uint64_t two62 = 1ULL << 62;
  const std::uint64_t two63 = 1ULL << 63;
  // 2^63 opens the last power-of-two range; ~0 lands in the very last
  // bucket.
  EXPECT_EQ(LatencyHistogram::bucket_index(two63),
            LatencyHistogram::kBuckets - LatencyHistogram::kSubBuckets);
  EXPECT_EQ(LatencyHistogram::bucket_index(~0ULL),
            LatencyHistogram::kBuckets - 1);

  LatencyHistogram h;
  h.add(two63);
  h.add(two63);
  h.add(two62);
  EXPECT_EQ(h.max(), two63);
  EXPECT_EQ(h.quantile(1.0), two63);
  // The sample sum (2.5 * 2^63) exceeds 2^64: a u64 accumulator would have
  // wrapped and reported a tiny mean. The widened accumulation keeps it.
  const double expected =
      (2.0 * static_cast<double>(two63) + static_cast<double>(two62)) / 3.0;
  EXPECT_DOUBLE_EQ(h.mean(), expected);
  EXPECT_GT(h.mean(), static_cast<double>(two62));
}

TEST(LatencyHistogram, QuantilesInvariantUnderMergeOrder) {
  // Three disjoint streams merged in every order must agree bit-for-bit on
  // every quantile (sweep aggregation relies on this).
  auto make = [](std::uint64_t lo, std::uint64_t hi, std::uint64_t step) {
    LatencyHistogram h;
    for (std::uint64_t v = lo; v < hi; v += step) h.add(v);
    return h;
  };
  const LatencyHistogram a = make(1, 400, 7);
  const LatencyHistogram b = make(350, 20'000, 113);
  const LatencyHistogram c = make(5, 3'000'000, 7919);

  auto merged = [](const LatencyHistogram& x, const LatencyHistogram& y,
                   const LatencyHistogram& z) {
    LatencyHistogram m = x;
    m.merge(y);
    m.merge(z);
    return m;
  };
  const LatencyHistogram abc = merged(a, b, c);
  const LatencyHistogram cab = merged(c, a, b);
  const LatencyHistogram bca = merged(b, c, a);
  for (double q : {0.001, 0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(abc.quantile(q), cab.quantile(q)) << "q=" << q;
    EXPECT_EQ(abc.quantile(q), bca.quantile(q)) << "q=" << q;
  }
  EXPECT_EQ(abc.min(), bca.min());
  EXPECT_EQ(abc.max(), bca.max());
  EXPECT_DOUBLE_EQ(abc.mean(), cab.mean());
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"a", "long-header"});
  t.add_row({"xxxx", "1"});
  t.add_row({"y"});
  const std::string out = t.str();
  EXPECT_NE(out.find("a     long-header"), std::string::npos);
  EXPECT_NE(out.find("xxxx  1"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Format, Fixed) {
  EXPECT_EQ(fmt_fixed(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_fixed(-0.5, 1), "-0.5");
  EXPECT_EQ(fmt_us_from_ps(1'500'000), "1.500");
}

TEST(Format, CsvRoundTrip) {
  const std::string path = (std::filesystem::temp_directory_path() /
                            "ocb_format_test.csv").string();
  write_csv(path, {"h1", "h2"}, {{"1", "a"}, {"2", "b"}});
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "h1,h2");
  std::getline(in, line);
  EXPECT_EQ(line, "1,a");
  std::filesystem::remove(path);
}

TEST(Format, CsvBadPathThrows) {
  EXPECT_THROW(write_csv("/nonexistent-dir-xyz/file.csv", {"h"}, {}),
               PreconditionError);
}

}  // namespace
}  // namespace ocb
