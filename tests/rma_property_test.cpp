// Exhaustive RMA property sweeps: for EVERY router distance and a grid of
// sizes, the simulated completion time of each op kind must equal its
// Figure 2 formula exactly, and moved bytes must survive bit-for-bit with
// random payloads.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.h"
#include "harness/measurement.h"
#include "model/primitives.h"
#include "rma/flags.h"
#include "rma/rma.h"

namespace ocb {
namespace {

using Case = std::tuple<int, std::size_t>;  // distance, lines
class RmaTimingSweep : public ::testing::TestWithParam<Case> {};

TEST_P(RmaTimingSweep, AllFourOpsMatchTheModelExactly) {
  const auto [d, lines] = GetParam();
  const model::ModelParams p = model::ModelParams::paper();
  scc::SccConfig cfg;
  cfg.cache_enabled = false;
  const auto [actor, target] = harness::core_pair_at_mpb_distance(d);

  EXPECT_DOUBLE_EQ(
      harness::measure_op_completion_us(cfg, harness::OpKind::kGetMpbToMpb, actor,
                                        target, lines, 2),
      sim::to_us(model::get_to_mpb_completion(p, lines, d)));
  EXPECT_DOUBLE_EQ(
      harness::measure_op_completion_us(cfg, harness::OpKind::kPutMpbToMpb, actor,
                                        target, lines, 2),
      sim::to_us(model::put_from_mpb_completion(p, lines, d)));

  if (d <= 4) {
    const CoreId c = harness::core_at_mem_distance(d);
    EXPECT_DOUBLE_EQ(
        harness::measure_op_completion_us(cfg, harness::OpKind::kPutMemToMpb, c, c,
                                          lines, 2),
        sim::to_us(model::put_from_mem_completion(p, lines, d, 1)));
    EXPECT_DOUBLE_EQ(
        harness::measure_op_completion_us(cfg, harness::OpKind::kGetMpbToMem, c, c,
                                          lines, 2),
        sim::to_us(model::get_to_mem_completion(p, lines, 1, d)));
  }
}

INSTANTIATE_TEST_SUITE_P(DistancesTimesSizes, RmaTimingSweep,
                         ::testing::Combine(::testing::Range(1, 10),
                                            ::testing::Values(1, 2, 3, 5, 8, 16,
                                                              32, 96)));

// Random-payload integrity through a put+get round trip across the chip.
class RmaIntegritySweep : public ::testing::TestWithParam<int> {};

TEST_P(RmaIntegritySweep, RandomBytesSurviveRoundTrip) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  Xoshiro256 rng(seed);
  scc::SccChip chip;
  const auto src = static_cast<CoreId>(rng.next_below(kNumCores));
  auto dst = static_cast<CoreId>(rng.next_below(kNumCores));
  if (dst == src) dst = (dst + 1) % kNumCores;
  const auto via = static_cast<CoreId>(rng.next_below(kNumCores));
  const std::size_t lines = 1 + rng.next_below(96);
  const std::size_t bytes = lines * kCacheLineBytes;

  auto w = chip.memory(src).host_bytes(0, bytes);
  for (auto& b : w) b = static_cast<std::byte>(rng.next() & 0xff);

  // src: memory -> via's MPB; dst: via's MPB -> memory.
  bool src_done = false;
  chip.spawn(src, [&, via, lines](scc::Core& me) -> sim::Task<void> {
    co_await rma::put_mem_to_mpb(me, rma::MpbAddr{via, 10}, 0, lines);
    co_await rma::set_flag(me, rma::MpbAddr{dst, 0}, 1);
    src_done = true;
  });
  chip.spawn(dst, [&, via, lines](scc::Core& me) -> sim::Task<void> {
    co_await rma::wait_flag_at_least(me, rma::MpbAddr{me.id(), 0}, 1);
    co_await rma::get_mpb_to_mem(me, 4096, rma::MpbAddr{via, 10}, lines);
  });
  ASSERT_TRUE(chip.run().completed());
  EXPECT_TRUE(src_done);
  const auto got = chip.memory(dst).host_bytes(4096, bytes);
  const auto want = chip.memory(src).host_bytes(0, bytes);
  EXPECT_TRUE(std::equal(want.begin(), want.end(), got.begin()))
      << "seed " << seed << " src " << src << " dst " << dst << " via " << via;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RmaIntegritySweep, ::testing::Range(0, 24));

// Broadcast delivery for every legal fan-out.
class OcBcastFanoutSweep : public ::testing::TestWithParam<int> {};

TEST_P(OcBcastFanoutSweep, EveryFanoutDelivers) {
  const int k = GetParam();
  harness::BcastRunSpec spec;
  spec.algorithm.k = k;
  spec.message_bytes = 200 * kCacheLineBytes;
  spec.iterations = 1;
  spec.warmup = 0;
  const harness::BcastRunResult r = run_broadcast(spec);
  EXPECT_TRUE(r.content_ok) << "k=" << k;
  EXPECT_GT(r.latency_us.mean(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllFanouts, OcBcastFanoutSweep, ::testing::Range(1, 48));

}  // namespace
}  // namespace ocb
